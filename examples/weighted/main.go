// Weighted multipathing (§3.3): approximate fractional path weights by
// duplicating shadow-MAC labels in the sender's round-robin sequence —
// the paper's p1,p2,p3,p2 example — and watch the fabric's per-spine
// load follow the weights.
//
//	go run ./examples/weighted
package main

import (
	"fmt"

	"presto/internal/cluster"
	"presto/internal/sim"
	"presto/internal/topo"
)

func main() {
	c := cluster.New(cluster.Config{
		Topology: topo.TwoTierClos(3, 2, 1, 1, topo.LinkConfig{}),
		Scheme:   cluster.Presto,
		Seed:     1,
	})

	// Push weights 0.25 / 0.5 / 0.25 for host 0 -> host 1 via the
	// controller's duplication helper.
	if !c.Ctrl.SetWeightedMapping(0, 1, []float64{0.25, 0.5, 0.25}, 8) {
		panic("weighted mapping rejected")
	}
	fmt.Println("label sequence pushed to host 0's vSwitch:")
	for i, m := range c.Hosts[0].VS.Mapping(1) {
		fmt.Printf("  slot %d -> spanning tree %d\n", i, m.ShadowTree())
	}

	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	c.Eng.Run(100 * sim.Millisecond)

	fmt.Println("\npackets forwarded per spine after 100 ms:")
	var total uint64
	for _, s := range c.Topo.Spines {
		total += c.Net.Switch(s).RxPackets
	}
	for i, s := range c.Topo.Spines {
		rx := c.Net.Switch(s).RxPackets
		fmt.Printf("  S%d: %7d packets (%.0f%%)\n", i+1, rx, float64(rx)/float64(total)*100)
	}
	fmt.Println("\nexpected split: 25% / 50% / 25% — WCMP semantics with zero")
	fmt.Println("switch state, realized entirely at the network edge.")
}
