// Trace-driven workload (§6, Table 1): heavy-tailed flow sizes from
// every server to random cross-rack destinations. Presto's flowcell
// spraying flattens the mice FCT tail that ECMP's elephant collisions
// create.
//
//	go run ./examples/tracedriven
package main

import (
	"fmt"

	"presto"
	"presto/internal/sim"
)

func main() {
	opt := presto.Options{
		Seed:     3,
		Warmup:   30 * sim.Millisecond,
		Duration: 250 * sim.Millisecond,
	}
	systems := []presto.System{presto.SysECMP, presto.SysPresto, presto.SysOptimal}
	results := make(map[presto.System]presto.TraceResult)
	for _, sys := range systems {
		results[sys] = presto.RunTrace(sys, opt)
	}

	base := results[presto.SysECMP].MiceFCT
	fmt.Println("mice (<100 KB) flow completion time, trace-driven workload:")
	fmt.Printf("%-12s %10s %10s %10s\n", "percentile", "ECMP(ms)", "Presto", "Optimal")
	for _, p := range []float64{50, 90, 99, 99.9} {
		b := base.Percentile(p)
		rel := func(sys presto.System) string {
			if b <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%+.0f%%", (results[sys].MiceFCT.Percentile(p)/b-1)*100)
		}
		fmt.Printf("%-12g %10.3f %10s %10s\n", p, b, rel(presto.SysPresto), rel(presto.SysOptimal))
	}
	fmt.Printf("\nelephant (>1 MB) goodput: ECMP %.2f, Presto %.2f, Optimal %.2f Gbps\n",
		results[presto.SysECMP].ElephantTput,
		results[presto.SysPresto].ElephantTput,
		results[presto.SysOptimal].ElephantTput)
	fmt.Println("(paper, Table 1: Presto cuts the 99th/99.9th percentile by 56%/60%)")
}
