// Trace-driven workload (§6, Table 1) from a committed spec file:
// the `mice-heavy` spec mixes a Poisson stream of heavy-tailed mice
// (empirical CDC-style CDF) with Pareto elephants, all to random
// cross-rack destinations. Presto's flowcell spraying flattens the
// mice FCT tail that ECMP's elephant collisions create.
//
// The same spec drives every front-end (`prestosim -workload
// examples/specs/mice-heavy.json`, `experiments -workload ...`, a
// prestod job), and cmd/capture can record any run into a flow log
// that a spec trace source replays bit-exactly.
//
//	go run ./examples/tracedriven       # from the repository root
package main

import (
	"fmt"
	"os"

	"presto"
	"presto/internal/sim"
	wspec "presto/internal/workload/spec"
)

func main() {
	ws, err := wspec.Load("examples/specs/mice-heavy.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, "run from the repository root:", err)
		os.Exit(1)
	}
	opt := presto.Options{
		Seed:     3,
		Warmup:   30 * sim.Millisecond,
		Duration: 250 * sim.Millisecond,
	}
	systems := []presto.System{presto.SysECMP, presto.SysPresto, presto.SysOptimal}
	results := make(map[presto.System]presto.LoadResult)
	for _, sys := range systems {
		r, _, err := presto.RunSpecWorkload(sys, ws, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results[sys] = r
	}

	base := results[presto.SysECMP].FCT
	fmt.Printf("flow completion time, workload %s (spec %s):\n", ws.Name, ws.Hash())
	fmt.Printf("%-12s %10s %10s %10s\n", "percentile", "ECMP(ms)", "Presto", "Optimal")
	for _, p := range []float64{50, 90, 99, 99.9} {
		b := base.Percentile(p)
		rel := func(sys presto.System) string {
			if b <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%+.0f%%", (results[sys].FCT.Percentile(p)/b-1)*100)
		}
		fmt.Printf("%-12g %10.3f %10s %10s\n", p, b, rel(presto.SysPresto), rel(presto.SysOptimal))
	}
	fmt.Println("\n(paper, Table 1: Presto cuts the 99th/99.9th percentile by 56%/60%)")
}
