// Quickstart: load the committed `elephants` workload spec (the
// paper's stride pattern as data, not code), run it on the 16-host
// testbed under ECMP and under Presto, and compare throughput and
// tail latency — the headline result of the paper in ~30 lines.
//
//	go run ./examples/quickstart        # from the repository root
package main

import (
	"fmt"
	"os"
	"time"

	"presto"
	"presto/internal/sim"
	wspec "presto/internal/workload/spec"
)

func main() {
	ws, err := wspec.Load("examples/specs/elephants.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, "run from the repository root:", err)
		os.Exit(1)
	}
	opt := presto.Options{
		Seed:     42,
		Warmup:   50 * sim.Millisecond,
		Duration: 150 * sim.Millisecond,
	}

	fmt.Printf("workload %s (spec %s) on a 4-spine/4-leaf/16-host 10G Clos:\n", ws.Name, ws.Hash())
	for _, sys := range []presto.System{presto.SysECMP, presto.SysPresto, presto.SysOptimal} {
		start := time.Now()
		r, _, err := presto.RunSpecWorkload(sys, ws, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-8v  %.2f Gbps/flow (fairness %.3f)   RTT p99.9 = %.2f ms   (%v)\n",
			sys, r.MeanTput, r.Fairness, r.RTT.Percentile(99.9),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("Presto sprays 64 KB flowcells over disjoint spanning trees and")
	fmt.Println("masks the resulting reordering in the receive-offload layer, so")
	fmt.Println("it tracks the optimal non-blocking switch; ECMP loses throughput")
	fmt.Println("to hash collisions and its latency tail to the induced queueing.")
	fmt.Println()
	fmt.Println("The workload is data, not code: edit examples/specs/*.json or")
	fmt.Println("write your own presto-workload/1 spec and hand it to any")
	fmt.Println("front-end via -workload, or to prestod in a job request.")
}
