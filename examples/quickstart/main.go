// Quickstart: build the paper's 16-host testbed, run the stride
// workload under ECMP and under Presto, and compare throughput and
// tail latency — the headline result of the paper in ~30 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"presto"
	"presto/internal/sim"
)

func main() {
	opt := presto.Options{
		Seed:     42,
		Warmup:   50 * sim.Millisecond,
		Duration: 150 * sim.Millisecond,
	}

	fmt.Println("stride(8) on a 4-spine/4-leaf/16-host 10G Clos:")
	for _, sys := range []presto.System{presto.SysECMP, presto.SysPresto, presto.SysOptimal} {
		start := time.Now()
		r := presto.RunWorkload(sys, presto.Stride, opt)
		fmt.Printf("  %-8v  %.2f Gbps/flow   RTT p99.9 = %.2f ms   mice FCT p99.9 = %.2f ms   (%v)\n",
			sys, r.MeanTput, r.RTT.Percentile(99.9), r.FCT.Percentile(99.9),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	fmt.Println("Presto sprays 64 KB flowcells over disjoint spanning trees and")
	fmt.Println("masks the resulting reordering in the receive-offload layer, so")
	fmt.Println("it tracks the optimal non-blocking switch; ECMP loses throughput")
	fmt.Println("to hash collisions and its latency tail to the induced queueing.")
}
