// Failover walkthrough (§3.3, Figures 17/18): run Presto elephants
// across the testbed, kill the S1-L1 link mid-run, and watch the
// three stages — black hole, hardware fast failover (label rewrite to
// a backup tree), and the controller's weighted multipathing update.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"presto"
	"presto/internal/sim"
)

func main() {
	opt := presto.Options{
		Seed:     7,
		Warmup:   40 * sim.Millisecond,
		Duration: 240 * sim.Millisecond,
	}
	for _, w := range []presto.FailoverWorkload{
		presto.FailL1L4, presto.FailL4L1, presto.FailStride, presto.FailBijection,
	} {
		r := presto.RunFailover(w, opt)
		fmt.Printf("%-10v symmetry=%.2f Gbps  failover=%.2f Gbps  weighted=%.2f Gbps\n",
			w, r.SymmetryTput, r.FailoverTput, r.WeightedTput)
		fmt.Printf("           RTT p99: %.2f -> %.2f -> %.2f ms\n",
			r.SymmetryRTT.Percentile(99), r.FailoverRTT.Percentile(99), r.WeightedRTT.Percentile(99))
	}
	fmt.Println()
	fmt.Println("Stage 1 uses all four spanning trees. After the S1-L1 link dies,")
	fmt.Println("switches locally rewrite tree-0 labels to a backup tree (stage 2);")
	fmt.Println("50 ms later the controller prunes tree 0 from the affected")
	fmt.Println("senders' label lists and traffic rebalances (stage 3).")
}
