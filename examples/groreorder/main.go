// GRO microbenchmark (§5, Figure 5): spray two flows' flowcells over
// two paths and receive them through official GRO versus Presto GRO.
// Official GRO suffers small segment flooding — tiny segments, high
// CPU, reordering exposed to TCP — while Presto GRO masks everything.
//
//	go run ./examples/groreorder
package main

import (
	"fmt"

	"presto"
	"presto/internal/sim"
)

func main() {
	opt := presto.Options{
		Seed:     5,
		Warmup:   40 * sim.Millisecond,
		Duration: 150 * sim.Millisecond,
	}
	off := presto.RunGROMicrobench(true, opt)
	pre := presto.RunGROMicrobench(false, opt)

	fmt.Println("two flows sprayed over two spine paths (Figure 4b topology):")
	fmt.Println()
	show := func(name string, r presto.GROResult) {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  out-of-order segments seen by TCP: p50=%.0f p90=%.0f max=%.0f\n",
			r.OOOCounts.Percentile(50), r.OOOCounts.Percentile(90), r.OOOCounts.Max())
		fmt.Printf("  pushed segment size: mean %.1f KB (p90 %.1f KB)\n",
			r.SegSizes.Mean(), r.SegSizes.Percentile(90))
		fmt.Printf("  goodput %.2f Gbps at %.0f%% receiver CPU\n\n", r.MeanTput, r.CPUUtil*100)
	}
	show("Official GRO", off)
	show("Presto GRO (Algorithm 2)", pre)
	fmt.Println("paper's measured points: official 4.6 Gbps @ 86% CPU,")
	fmt.Println("presto 9.3 Gbps @ 69% CPU, reordering fully masked.")

	gbps, cpu := presto.GRODisabledThroughput(opt)
	fmt.Printf("\nfor reference, GRO disabled entirely: %.2f Gbps @ %.0f%% CPU\n", gbps, cpu*100)
	fmt.Println("(paper cites 5.7-7.1 Gbps at 100% CPU)")
}
