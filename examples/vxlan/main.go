// VXLAN compatibility (§3.1): Presto's label switching works in
// virtualized networks because the shadow MAC rides the *outer*
// Ethernet header of the VXLAN encapsulation, and the flowcell ID can
// ride the VXLAN reserved bits (the NVO3 draft the paper cites). This
// example encapsulates a tenant packet, shows the byte layout, and
// round-trips it through the wire codec.
//
//	go run ./examples/vxlan
package main

import (
	"fmt"

	"presto/internal/packet"
)

func main() {
	inner := &packet.Packet{
		SrcMAC:  packet.HostMAC(3),
		DstMAC:  packet.HostMAC(7), // tenant frame keeps real MACs
		Flow:    packet.FlowKey{Src: packet.Addr{Host: 3, Port: 40000}, Dst: packet.Addr{Host: 7, Port: 443}},
		Seq:     1,
		Flags:   packet.FlagACK | packet.FlagPSH,
		Payload: 1200,
	}
	v := &packet.VXLAN{
		OuterSrc:     packet.HostMAC(3),
		OuterDst:     packet.ShadowMAC(7, 2), // the label: spanning tree 2
		OuterSrcHost: 3,
		OuterDstHost: 7,
		VNI:          42,
		FlowcellID:   1234, // stashed in the VXLAN reserved bits
		Inner:        inner,
	}
	frame := packet.MarshalVXLAN(v)
	fmt.Printf("encapsulated frame: %d bytes (%d tenant + %d VXLAN overhead)\n",
		len(frame), len(packet.Marshal(inner)), packet.OuterOverhead)
	fmt.Printf("outer dst MAC (the forwarding label): %v\n", v.OuterDst)
	fmt.Printf("  -> shadow label? %v  tree=%d\n", v.OuterDst.IsShadow(), v.OuterDst.ShadowTree())

	got, err := packet.UnmarshalVXLAN(frame)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndecapsulated: VNI=%d flowcell=%d inner flow %v (seq=%d, %dB)\n",
		got.VNI, got.FlowcellID, got.Inner.Flow, got.Inner.Seq, got.Inner.Payload)
	fmt.Println("\nswitches forward on the outer label only; the tenant's frame —")
	fmt.Println("addresses, options, payload — is untouched, so Presto composes")
	fmt.Println("with L2/L3 network virtualization as the paper argues.")
}
