// Serving: run an experiment campaign through an in-process prestod
// server — submit, follow the event stream, and fetch the report —
// using the same server.Client that cmd/prestoctl wraps. The daemon's
// artifacts are byte-identical to a direct presto.RunCampaign of the
// same spec, so serving is a deployment choice, not a results fork.
//
//	go run ./examples/serving
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"presto"
	"presto/internal/campaign"
	"presto/internal/server"
	"presto/internal/sim"
)

func main() {
	// The daemon core is an http.Handler; embedding it takes a spec
	// builder (how job requests become campaigns) and a data dir.
	srv, err := server.New(server.Config{
		SpecBuilder: buildSpec,
		Workers:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close() //prestolint:allow errdrop -- example exits right after; the server logs its own shutdown failures

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv) }()
	fmt.Printf("prestod serving on %s\n\n", ln.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := &server.Client{BaseURL: "http://" + ln.Addr().String()}

	// Submit the GRO microbenchmark (fig5) with two seed replicas.
	st, err := c.Submit(ctx, server.JobRequest{
		Experiments: "fig5",
		Seeds:       2,
		Parallelism: 4,
		Duration:    server.Duration(20 * time.Millisecond),
		Warmup:      server.Duration(5 * time.Millisecond),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%d cells x %d replicas)\n", st.ID, st.Cells, st.Replicas/max(st.Cells, 1))

	// Follow the live event stream: state transitions and per-replica
	// progress lines, exactly what `prestoctl events` prints.
	err = c.Events(ctx, st.ID, 0, func(ev server.Event) error {
		switch ev.Type {
		case "state":
			fmt.Printf("  [%s] -> %s\n", ev.Job, ev.State)
		case "progress":
			fmt.Printf("  [%s] %s\n", ev.Job, ev.Line)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	if final.State != server.StateDone {
		log.Fatalf("job %s: %s", final.State, final.Error)
	}

	// Fetch the report and read a headline number out of it.
	raw, err := c.Artifact(ctx, st.ID, "report.json")
	if err != nil {
		log.Fatal(err)
	}
	var report struct {
		SpecHash string `json:"spec_hash"`
		Cells    []struct {
			ID        string                     `json:"id"`
			Envelopes map[string]json.RawMessage `json:"envelopes"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreport.json: spec %s, %d cells, %d bytes\n", report.SpecHash, len(report.Cells), len(raw))
	for _, cell := range report.Cells {
		fmt.Printf("  %s  tput_gbps envelope %s\n", cell.ID, cell.Envelopes["tput_gbps"])
	}
	fmt.Println("\nThe same bytes come out of `experiments -run fig5 -seeds 2 -out DIR`:")
	fmt.Println("results depend on the spec, never on where or how wide it ran.")
}

// buildSpec maps job requests onto real experiment campaigns — the
// in-process equivalent of cmd/prestod's builder.
func buildSpec(req server.JobRequest) (*campaign.Spec, error) {
	spec, err := presto.CampaignSpec(req.Experiments, presto.Options{
		Duration: sim.FromDuration(time.Duration(req.Duration)),
		Warmup:   sim.FromDuration(time.Duration(req.Warmup)),
	})
	if err != nil {
		return nil, err
	}
	seeds := req.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	spec.Seeds = campaign.Seeds(1, seeds)
	spec.Parallelism = req.Parallelism
	spec.CellTimeout = time.Minute
	return spec, nil
}
