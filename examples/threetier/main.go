// Three-tier scaling: the paper's deployments are 2-tier Clos (§3.1),
// but the same label-switching idea extends to pod-based 3-tier
// fabrics — one spanning tree per core switch, flowcells sprayed over
// all of them. This example runs Presto vs ECMP across pods and shows
// per-core load balance.
//
//	go run ./examples/threetier
package main

import (
	"fmt"

	"presto/internal/cluster"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

func main() {
	build := func(scheme cluster.Scheme) *cluster.Cluster {
		return cluster.New(cluster.Config{
			// 3 pods x (2 aggs + 2 leaves x 2 hosts) + 2 cores.
			Topology: topo.ThreeTierClos(3, 2, 2, 2, topo.LinkConfig{}),
			Scheme:   scheme,
			Seed:     11,
		})
	}

	for _, scheme := range []cluster.Scheme{cluster.ECMP, cluster.Presto} {
		c := build(scheme)
		n := c.Topo.NumHosts()
		// Cross-pod stride: host i -> host (i + hosts/3) mod hosts.
		var conns []*cluster.Conn
		for i := 0; i < n; i++ {
			conn := c.Dial(packet.HostID(i), packet.HostID((i+n/3)%n))
			conn.SetUnlimited(true)
			conns = append(conns, conn)
		}
		const dur = 80 * sim.Millisecond
		c.Eng.Run(dur)
		var total float64
		for _, conn := range conns {
			total += float64(conn.Delivered()) * 8 / dur.Seconds() / 1e9
		}
		fmt.Printf("%-7v %.2f Gbps/flow across pods", scheme, total/float64(n))
		if scheme == cluster.Presto {
			fmt.Printf("   per-core packets:")
			for _, core := range c.Topo.Cores {
				fmt.Printf(" %d", c.Net.Switch(core).RxPackets)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nPresto sprays flowcells over one spanning tree per core;")
	fmt.Println("cores carry near-identical load while ECMP collides flows.")
}
