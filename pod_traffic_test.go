package presto

import (
	"testing"

	"presto/internal/sim"
)

// TestRunPodTrafficShardedMatchesSerial pins the experiment-level
// bit-identity contract: the same pod workload must produce exactly
// equal results — down to float bit patterns — for every shard count.
func TestRunPodTrafficShardedMatchesSerial(t *testing.T) {
	opt := Options{Seed: 11, Warmup: 2 * sim.Millisecond, Duration: 5 * sim.Millisecond}
	for _, sys := range []System{SysPresto, SysECMP} {
		opt.Shards = 1
		want := RunPodTraffic(sys, 3, 1, opt)
		for _, shards := range []int{2, 3} {
			opt.Shards = shards
			got := RunPodTraffic(sys, 3, 1, opt)
			if got.Shards != shards {
				t.Fatalf("%v: run used %d shards, want %d", sys, got.Shards, shards)
			}
			got.Shards = want.Shards
			if got != want {
				t.Fatalf("%v with %d shards diverged from serial:\nserial:  %+v\nsharded: %+v",
					sys, shards, want, got)
			}
		}
	}
}

// TestPodTraffic1000Hosts is the scale goal: a 1000-host 3-tier Clos
// (25 pods × 2 leaves × 20 hosts) completes under the sharded engine
// and moves traffic on every elephant.
func TestPodTraffic1000Hosts(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-host run skipped in -short mode")
	}
	opt := Options{
		Seed:     3,
		Warmup:   200 * sim.Microsecond,
		Duration: sim.Millisecond,
		Shards:   25,
	}
	res := RunPodTraffic(SysPresto, 25, 20, opt)
	if res.Hosts != 1000 {
		t.Fatalf("topology has %d hosts, want 1000", res.Hosts)
	}
	if res.Shards != 25 {
		t.Fatalf("run used %d shards, want 25", res.Shards)
	}
	if res.MeanTput <= 0 {
		t.Fatalf("mean throughput %.3f Gbps, want > 0", res.MeanTput)
	}
	if res.Delivered == 0 || res.Events == 0 {
		t.Fatalf("no traffic moved: delivered=%d events=%d", res.Delivered, res.Events)
	}
}
