package presto

// Ablation benchmarks for the design choices §2.1/§3.2 argue for:
// flowcell granularity (64 KB = max TSO), the adaptive GRO hold
// (alpha), per-packet spraying without TSO, and the event engine's
// raw throughput. Run with e.g.
//
//	go test -bench=Ablation -benchmem

import (
	"fmt"
	"testing"

	"presto/internal/cluster"
	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/sim"
	"presto/internal/tcp"
	"presto/internal/workload"
)

func fabricConfigWithBuffers(bytes int) fabric.Config {
	return fabric.Config{SwitchQueueBytes: bytes}
}

// BenchmarkAblationFlowcellSize sweeps the flowcell threshold: smaller
// cells balance better but reorder more and amortize TSO worse; larger
// cells approach flowlet-style collision behaviour. 64 KB (the paper's
// choice) should sit at the sweet spot.
func BenchmarkAblationFlowcellSize(b *testing.B) {
	for _, kb := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Config{
					Topology:      Testbed(),
					Scheme:        cluster.Presto,
					Seed:          uint64(i + 1),
					FlowcellBytes: kb << 10,
				})
				el := workload.Stride(c, 8)
				c.Eng.Run(20 * sim.Millisecond)
				el.ResetBaseline(c.Eng.Now())
				c.Eng.Run(70 * sim.Millisecond)
				b.ReportMetric(el.Mean(c.Eng.Now()), "Gbps")
			}
		})
	}
}

// BenchmarkAblationGROAlpha sweeps the adaptive hold multiplier: too
// small misreads reordering as loss (spurious pushes), too large
// delays genuine loss recovery at flowcell boundaries.
func BenchmarkAblationGROAlpha(b *testing.B) {
	for _, alpha := range []float64{0.5, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Config{
					Topology:  Testbed(),
					Scheme:    cluster.Presto,
					Seed:      uint64(i + 1),
					GROConfig: gro.PrestoConfig{Alpha: alpha},
				})
				el := workload.Stride(c, 8)
				c.Eng.Run(20 * sim.Millisecond)
				el.ResetBaseline(c.Eng.Now())
				c.Eng.Run(70 * sim.Millisecond)
				var fires uint64
				for _, h := range c.Hosts {
					fires += h.NIC.GRO().Stats().TimeoutFires
				}
				b.ReportMetric(el.Mean(c.Eng.Now()), "Gbps")
				b.ReportMetric(float64(fires), "gro-timeouts")
			}
		})
	}
}

// BenchmarkAblationPerPacket compares per-packet spraying (TSO off,
// §2.1's rejected design) against flowcells: the CPU model charges the
// full per-segment cost for every MTU packet.
func BenchmarkAblationPerPacket(b *testing.B) {
	for _, sys := range []System{SysPerPacket, SysPresto} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RunScalability(sys, 4, benchOpt(uint64(i)))
				b.ReportMetric(r.MeanTput, "Gbps")
			}
		})
	}
}

// BenchmarkAblationSwitchBuffers sweeps port buffer depth: shallow
// buffers turn congestion into loss (RTO tails), deep ones into
// latency.
func BenchmarkAblationSwitchBuffers(b *testing.B) {
	for _, kb := range []int{256, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.New(cluster.Config{
					Topology: Testbed(),
					Scheme:   cluster.Presto,
					Seed:     uint64(i + 1),
					Fabric:   fabricConfigWithBuffers(kb << 10),
				})
				el := workload.Stride(c, 8)
				c.Eng.Run(20 * sim.Millisecond)
				el.ResetBaseline(c.Eng.Now())
				c.Eng.Run(70 * sim.Millisecond)
				b.ReportMetric(el.Mean(c.Eng.Now()), "Gbps")
				b.ReportMetric(c.Net.LossRate()*100, "loss%")
			}
		})
	}
}

// BenchmarkEngineEventThroughput measures the raw discrete-event
// engine: how many self-rescheduling timer events per second the
// substrate sustains.
func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(sim.Microsecond, tick)
		}
	}
	eng.Schedule(0, tick)
	b.ResetTimer()
	eng.RunAll()
}

// BenchmarkFabricPacketForwarding measures the per-packet cost of the
// fabric (pipe + switch) without transport on top.
func BenchmarkFabricPacketForwarding(b *testing.B) {
	c := cluster.New(cluster.Config{Topology: Testbed(), Scheme: cluster.Presto, Seed: 1})
	conn := c.Dial(0, 8)
	conn.SetUnlimited(true)
	b.ResetTimer()
	// Each iteration simulates 1 ms of a line-rate flow (~800 packets
	// through 4 hops).
	for i := 0; i < b.N; i++ {
		c.Eng.Run(c.Eng.Now() + sim.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(c.Eng.Executed)/float64(b.N), "events/iter")
}

// BenchmarkAblationDCTCP compares Presto over CUBIC against Presto
// over DCTCP (ECN marking at K=200 KB ≈ C·RTT for this fabric's
// ~150 µs effective RTT): same goodput, shorter queues — evidence
// that edge-based load balancing composes with modern congestion
// control.
func BenchmarkAblationDCTCP(b *testing.B) {
	for _, cc := range []string{"cubic", "dctcp"} {
		b.Run(cc, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ecn := 0
				if cc == "dctcp" {
					ecn = 200 << 10
				}
				c := cluster.New(cluster.Config{
					Topology: Testbed(),
					Scheme:   cluster.Presto,
					Seed:     uint64(i + 1),
					TCP:      tcp.Config{CC: cc},
					Fabric:   fabric.Config{ECNThresholdBytes: ecn},
				})
				el := workload.Stride(c, 8)
				p := c.NewProber(0, 8, sim.Millisecond)
				p.Start()
				c.Eng.Run(20 * sim.Millisecond)
				el.ResetBaseline(c.Eng.Now())
				c.Eng.Run(70 * sim.Millisecond)
				b.ReportMetric(el.Mean(c.Eng.Now()), "Gbps")
				b.ReportMetric(p.Samples.Percentile(99), "rtt-p99-ms")
			}
		})
	}
}

// BenchmarkAblationTunnelMode compares per-host shadow MACs against
// switch-to-switch tunnel labels (identical datapath behaviour, far
// fewer rules).
func BenchmarkAblationTunnelMode(b *testing.B) {
	for _, tunnel := range []bool{false, true} {
		name := "per-host-labels"
		if tunnel {
			name = "tunnel-labels"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cluster.Config{Topology: Testbed(), Scheme: cluster.Presto, Seed: uint64(i + 1)}
				cfg.Ctrl.TunnelMode = tunnel
				c := cluster.New(cfg)
				el := workload.Stride(c, 8)
				c.Eng.Run(20 * sim.Millisecond)
				el.ResetBaseline(c.Eng.Now())
				c.Eng.Run(70 * sim.Millisecond)
				rules := 0
				for _, leaf := range c.Topo.Leaves {
					rules += c.Net.Switch(leaf).LabelCount()
				}
				b.ReportMetric(el.Mean(c.Eng.Now()), "Gbps")
				b.ReportMetric(float64(rules), "leaf-rules")
			}
		})
	}
}
