// Package presto is a full reproduction of "Presto: Edge-based Load
// Balancing for Fast Datacenter Networks" (He et al., SIGCOMM 2015)
// on a deterministic discrete-event network simulator.
//
// The package exposes the experiment harness used by the examples,
// the cmd/experiments binary, and the benchmarks: one runner per
// table and figure in the paper's evaluation. The building blocks —
// flowcell spraying (Algorithm 1), the modified GRO flush (Algorithm
// 2), shadow-MAC spanning trees, the Clos fabric, TCP/MPTCP — live in
// the internal packages and are assembled by internal/cluster.
package presto

import (
	"strings"

	"presto/internal/cluster"
	"presto/internal/packet"
	"presto/internal/scheme"
	"presto/internal/sim"
	"presto/internal/telemetry"
	"presto/internal/topo"
)

// System is a complete load-balancing configuration compared in the
// evaluation (§4): a registry scheme (plus parameter overrides), the
// receive offload and transport it declares, and the topology
// baseline. Systems are comparable values — the historical enum-like
// variables below keep their display names (and therefore campaign
// cell IDs) byte-stable — and any registry scheme becomes a System
// via SystemFor.
type System struct {
	scheme string // registry name ("" is invalid; use SystemFor or the vars below)
	params string // canonical "k=v,k=v" overrides ("" = schema defaults)
	// display is the historical name ("ECMP", "Flowlet-100us", …);
	// empty for registry-derived systems, which render as the spec.
	display string
	// optimal swaps the run topology for the single non-blocking
	// switch baseline.
	optimal bool
}

// The systems of §4/§5.
var (
	// SysECMP pins each flow to one random end-to-end path.
	SysECMP = System{scheme: "ecmp", display: "ECMP"}
	// SysMPTCP runs 8 ECMP-pinned subflows with coupled congestion
	// control.
	SysMPTCP = System{scheme: "mptcp", display: "MPTCP"}
	// SysPresto is the paper's contribution: 64 KB flowcell spraying +
	// Presto GRO.
	SysPresto = System{scheme: "presto", display: "Presto"}
	// SysOptimal attaches all hosts to one non-blocking switch.
	SysOptimal = System{scheme: "ecmp", display: "Optimal", optimal: true}
	// SysFlowlet100 switches flowlets at a 100 µs inactivity gap.
	SysFlowlet100 = System{scheme: "flowlet", params: "gap=100us", display: "Flowlet-100us"}
	// SysFlowlet500 switches flowlets at a 500 µs inactivity gap.
	SysFlowlet500 = System{scheme: "flowlet", params: "gap=500us", display: "Flowlet-500us"}
	// SysPrestoECMP sprays flowcells per hop via switch ECMP hashing.
	SysPrestoECMP = System{scheme: "presto-ecmp", display: "Presto+ECMP"}
	// SysPerPacket sprays every MTU packet (TSO off).
	SysPerPacket = System{scheme: "per-packet", display: "PerPacket"}
)

// SystemFor builds a System from a registry scheme spec
// ("diffflow", "presto:cell=32KB", …), validating the name and
// parameters against the registry.
func SystemFor(spec string) (System, error) {
	name, params, err := scheme.ParseSpec(spec)
	if err != nil {
		return System{}, err
	}
	canon := scheme.CanonicalSpec(name, params)
	sys := System{scheme: name}
	if canon != name {
		sys.params = strings.TrimPrefix(canon, name+":")
	}
	return sys, nil
}

// SchemeSystems returns one default-parameter System per registered
// scheme, in sorted registry order.
func SchemeSystems() []System {
	names := scheme.Names()
	out := make([]System, len(names))
	for i, n := range names {
		out[i] = System{scheme: n}
	}
	return out
}

// SchemeName returns the registry scheme the system runs.
func (s System) SchemeName() string { return s.scheme }

func (s System) String() string {
	if s.display != "" {
		return s.display
	}
	if s.params != "" {
		return s.scheme + ":" + s.params
	}
	return s.scheme
}

// paramMap expands the canonical param string back into raw values
// for cluster.Config.SchemeParams.
func (s System) paramMap() map[string]string {
	if s.params == "" {
		return nil
	}
	m := make(map[string]string)
	for _, kv := range strings.Split(s.params, ",") {
		if eq := strings.IndexByte(kv, '='); eq > 0 {
			m[kv[:eq]] = kv[eq+1:]
		}
	}
	return m
}

// Options tunes an experiment run. Zero values take defaults sized
// for simulation (the paper runs 10 s × 20 repetitions on hardware;
// the simulator's deterministic steady state needs far less).
type Options struct {
	Seed     uint64
	Warmup   sim.Time // excluded from measurement (default 50 ms)
	Duration sim.Time // measurement window (default 200 ms)

	MiceSize      int      // bytes per mouse (default 50 KB, §4)
	MiceResp      int      // app-level ack size (default 100 B)
	MiceInterval  sim.Time // per-pair spacing (paper: 100 ms; default 5 ms to gather tail samples in a short window)
	ProbeInterval sim.Time // RTT probe spacing (default 1 ms)

	// GROOverride forces a receive-offload handler regardless of the
	// system's natural choice (Figure 5 pairs Presto spraying with
	// official GRO).
	GROOverride cluster.GROKind

	// Telemetry, when non-nil, wires event tracing and snapshot probes
	// through the run's cluster; the run's snapshot is attached to the
	// result. Nil (the default) adds zero overhead and leaves results
	// bit-identical.
	Telemetry *telemetry.Registry

	// Shards partitions the engine into per-pod shards with
	// conservative lookahead synchronization; results stay
	// bit-identical to the serial engine. Honored by pod-scale
	// experiments (RunPodTraffic); the figure-specific runners above
	// always execute serially — their probers, link failures, and
	// telemetry hooks are cross-shard by nature. 0 or 1 = serial.
	Shards int
}

func (o *Options) fill() {
	if o.Warmup == 0 {
		o.Warmup = 50 * sim.Millisecond
	}
	if o.Duration == 0 {
		o.Duration = 200 * sim.Millisecond
	}
	if o.MiceSize == 0 {
		o.MiceSize = 50_000
	}
	if o.MiceResp == 0 {
		o.MiceResp = 100
	}
	if o.MiceInterval == 0 {
		o.MiceInterval = 5 * sim.Millisecond
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = sim.Millisecond
	}
}

// Testbed returns the paper's Figure 3 topology: a 2-tier Clos with 4
// spines, 4 leaves, and 16 hosts, all 10 Gbps.
func Testbed() *topo.Topology {
	return topo.TwoTierClos(4, 4, 4, 1, topo.LinkConfig{})
}

// ScalabilityTopo returns Figure 4a's topology: 2 leaves and `paths`
// spines, with one host per (leaf, flow).
func ScalabilityTopo(paths int) *topo.Topology {
	return topo.TwoTierClos(paths, 2, paths, 1, topo.LinkConfig{})
}

// OversubTopo returns Figure 4b's topology: 2 spines, 2 leaves, and
// `flows` hosts per leaf (oversubscription = flows/2).
func OversubTopo(flows int) *topo.Topology {
	return topo.TwoTierClos(2, 2, flows, 1, topo.LinkConfig{})
}

// OptimalTopo returns a single non-blocking switch with the given
// host count.
func OptimalTopo(hosts int) *topo.Topology {
	return topo.SingleSwitch(hosts, topo.LinkConfig{})
}

// buildCluster assembles a cluster for a system on a topology.
func buildCluster(sys System, tp *topo.Topology, opt Options) *cluster.Cluster {
	return cluster.New(clusterConfigFor(sys, tp, opt))
}

// clusterConfigFor maps a system onto a cluster configuration
// (callers that support sharding set Shards on the result).
func clusterConfigFor(sys System, tp *topo.Topology, opt Options) cluster.Config {
	return cluster.Config{
		Topology:     tp,
		Seed:         opt.Seed,
		GRO:          opt.GROOverride,
		Telemetry:    opt.Telemetry,
		Scheme:       cluster.Scheme(sys.scheme),
		SchemeParams: sys.paramMap(),
	}
}

// topoFor returns the topology a system runs on, given the Clos the
// non-optimal systems use: Optimal swaps in a single switch with the
// same host count.
func topoFor(sys System, clos func() *topo.Topology) *topo.Topology {
	if sys.optimal {
		return topo.SingleSwitch(clos().NumHosts(), topo.LinkConfig{})
	}
	return clos()
}

// hostPairs builds (i, i+offset) pairs over n hosts.
func hostPairs(n, offset int) [][2]packet.HostID {
	out := make([][2]packet.HostID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, [2]packet.HostID{packet.HostID(i), packet.HostID((i + offset) % n)})
	}
	return out
}
