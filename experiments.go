package presto

import (
	"sort"

	"presto/internal/cluster"
	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
	"presto/internal/topo"
	"presto/internal/workload"
)

// WorkloadKind selects one of §4's synthetic traffic patterns.
type WorkloadKind int

// The synthetic workloads of §4.
const (
	Stride WorkloadKind = iota
	Shuffle
	Random
	Bijection
)

func (w WorkloadKind) String() string {
	switch w {
	case Stride:
		return "stride"
	case Shuffle:
		return "shuffle"
	case Random:
		return "random"
	case Bijection:
		return "bijection"
	}
	return "?"
}

// LoadResult is the common output of throughput/latency experiments.
type LoadResult struct {
	System       System
	Seed         uint64        // the RNG seed the run used (replay: pass it back via Options.Seed)
	MeanTput     float64       // average per-flow goodput, Gbps
	RTT          *metrics.Dist // probe round-trip times, ms
	FCT          *metrics.Dist // mice flow completion times, ms
	LossRate     float64       // switch-counter loss fraction
	Fairness     float64       // Jain's index over elephant goodputs
	MiceTimeouts int           // mice that hit an RTO

	// Telemetry is the run's component snapshot (nil unless
	// Options.Telemetry was set).
	Telemetry *telemetry.Snapshot
}

// RunScalability runs the Figure 4a benchmark (Figures 7, 8, 9): as
// many host pairs as spine paths, each pair an elephant, with RTT
// probes and switch loss counters.
func RunScalability(sys System, paths int, opt Options) LoadResult {
	opt.fill()
	tp := topoFor(sys, func() *topo.Topology { return ScalabilityTopo(paths) })
	c := buildCluster(sys, tp, opt)
	el := workload.PairsN(c, paths)
	probers := workload.StartProbers(c, pairsOf(el), opt.ProbeInterval)
	return measureLoad(sys, c, el, probers, nil, opt)
}

// RunOversubscription runs the Figure 4b benchmark (Figures 10, 11,
// 12): 2 spines, `flows` pairs, oversubscription = flows/2.
func RunOversubscription(sys System, flows int, opt Options) LoadResult {
	opt.fill()
	tp := topoFor(sys, func() *topo.Topology { return OversubTopo(flows) })
	c := buildCluster(sys, tp, opt)
	el := workload.PairsN(c, flows)
	probers := workload.StartProbers(c, pairsOf(el), opt.ProbeInterval)
	return measureLoad(sys, c, el, probers, nil, opt)
}

// ShuffleBytes is the per-peer transfer size for the shuffle workload
// (the paper moves 1 GB per peer over 10 s; the simulator's shorter
// window moves proportionally less).
const ShuffleBytes = 8 << 20

// RunWorkload runs a synthetic workload on the 16-host testbed
// (Figures 13, 14, 15, 16): elephants per the pattern, 50 KB mice with
// application-level ACKs, and RTT probes.
func RunWorkload(sys System, kind WorkloadKind, opt Options) LoadResult {
	opt.fill()
	tp := topoFor(sys, Testbed)
	c := buildCluster(sys, tp, opt)

	var el *workload.Elephants
	var sh *workload.Shuffle
	switch kind {
	case Stride:
		el = workload.Stride(c, 8)
	case Random:
		el = workload.Random(c, c.RNG())
	case Bijection:
		el = workload.RandomBijection(c, c.RNG())
	case Shuffle:
		sh = workload.StartShuffle(c, c.RNG(), ShuffleBytes)
	}

	micePairs := hostPairs(16, 8)
	if el != nil {
		micePairs = pairsOf(el)
	}
	probers := workload.StartProbers(c, micePairs, opt.ProbeInterval)
	mice := workload.StartMice(c, micePairs, opt.MiceSize, opt.MiceResp, opt.MiceInterval, opt.Warmup+opt.Duration)

	res := measureLoad(sys, c, el, probers, mice, opt)
	if sh != nil {
		res.MeanTput = sh.Tputs.Mean()
		res.Fairness = metrics.JainIndex(sh.Tputs.Samples())
	}
	return res
}

// measureLoad warms up, measures for the duration, and harvests
// metrics.
func measureLoad(sys System, c *cluster.Cluster, el *workload.Elephants, probers []*cluster.Prober, mice *workload.MiceResult, opt Options) LoadResult {
	c.Eng.Run(opt.Warmup)
	if el != nil {
		el.ResetBaseline(c.Eng.Now())
	}
	c.Eng.Run(opt.Warmup + opt.Duration)
	res := LoadResult{System: sys, Seed: opt.Seed, LossRate: c.Net.LossRate(), Fairness: 1}
	if el != nil {
		res.MeanTput = el.Mean(c.Eng.Now())
		res.Fairness = el.Fairness(c.Eng.Now())
	}
	res.RTT = workload.CollectRTT(probers)
	if mice != nil {
		res.FCT = &mice.FCT
		res.MiceTimeouts = mice.Timeouts
	}
	res.Telemetry = c.Telemetry().Snapshot(c.Eng.Now())
	return res
}

func pairsOf(el *workload.Elephants) [][2]packet.HostID {
	out := make([][2]packet.HostID, 0, len(el.Conns))
	for _, c := range el.Conns {
		out = append(out, [2]packet.HostID{c.Src, c.Dst})
	}
	return out
}

// GROResult is the Figure 5 microbenchmark output.
type GROResult struct {
	Official bool
	Seed     uint64 // RNG seed of the run
	// OOOCounts is the per-flowcell out-of-order segment count
	// distribution exposed to TCP (Figure 5a; all-zero = masked).
	OOOCounts *metrics.Dist
	// SegSizes is the distribution of segment sizes pushed up the
	// stack, in KB (Figure 5b).
	SegSizes *metrics.Dist
	MeanTput float64 // Gbps
	CPUUtil  float64 // receiver CPU utilization
}

// RunGROMicrobench reproduces Figure 5: two flows sprayed over two
// paths (Figure 4b topology), received through official or Presto
// GRO.
func RunGROMicrobench(official bool, opt Options) GROResult {
	opt.fill()
	kind := cluster.GROPresto
	if official {
		kind = cluster.GROOfficial
	}
	c := cluster.New(cluster.Config{
		Topology:        OversubTopo(2),
		Scheme:          cluster.Presto,
		Seed:            opt.Seed,
		GRO:             kind,
		RecordFlowcells: true,
	})
	el := workload.PairsN(c, 2)
	c.Eng.Run(opt.Warmup)
	el.ResetBaseline(c.Eng.Now())
	busy0 := make([]sim.Time, len(el.Conns))
	for i, conn := range el.Conns {
		busy0[i] = c.Hosts[conn.Dst].NIC.Stats.BusyTime
		// Measure reordering over steady state, like the paper's runs:
		// slow-start overshoot during warmup is excluded.
		conn.Receiver().ResetFlowcellLog()
	}
	start := c.Eng.Now()
	c.Eng.Run(opt.Warmup + opt.Duration)

	res := GROResult{Official: official, Seed: opt.Seed, OOOCounts: &metrics.Dist{}, SegSizes: &metrics.Dist{}}
	res.MeanTput = el.Mean(c.Eng.Now())
	var util float64
	for i, conn := range el.Conns {
		for _, n := range conn.Receiver().OutOfOrderCounts() {
			res.OOOCounts.Add(float64(n))
		}
		st := c.Hosts[conn.Dst].NIC.GRO().Stats()
		for _, v := range st.SegSizes.Samples() {
			res.SegSizes.Add(v / 1024)
		}
		util += c.Hosts[conn.Dst].NIC.Utilization(busy0[i], start)
	}
	res.CPUUtil = util / float64(len(el.Conns))
	return res
}

// CPUResult is the Figure 6 output: receiver CPU utilization over
// time at line rate.
type CPUResult struct {
	Presto   bool
	Seed     uint64         // RNG seed of the run
	Series   metrics.Series // (seconds, mean receiver utilization)
	Mean     float64
	MeanTput float64
}

// RunCPUOverhead reproduces Figure 6: stride at line rate; Presto
// (spraying + Presto GRO on the Clos) versus official GRO with no
// reordering (same stride on the non-blocking switch). Utilization is
// sampled periodically across all receivers.
func RunCPUOverhead(prestoGRO bool, opt Options) CPUResult {
	opt.fill()
	sys := SysPresto
	if !prestoGRO {
		sys = SysOptimal
	}
	tp := topoFor(sys, Testbed)
	c := buildCluster(sys, tp, opt)
	el := workload.Stride(c, 8)

	res := CPUResult{Presto: prestoGRO, Seed: opt.Seed}
	sample := 10 * sim.Millisecond
	lastBusy := make([]sim.Time, len(c.Hosts))
	var tick func()
	tick = func() {
		now := c.Eng.Now()
		if now >= opt.Warmup {
			var u float64
			for i, h := range c.Hosts {
				u += float64(h.NIC.Stats.BusyTime-lastBusy[i]) / float64(sample)
			}
			res.Series.Add(now.Seconds(), u/float64(len(c.Hosts))*100)
		}
		for i, h := range c.Hosts {
			lastBusy[i] = h.NIC.Stats.BusyTime
		}
		if now < opt.Warmup+opt.Duration {
			c.Eng.Schedule(sample, tick)
		}
	}
	c.Eng.Schedule(sample, tick)

	c.Eng.Run(opt.Warmup)
	el.ResetBaseline(c.Eng.Now())
	c.Eng.Run(opt.Warmup + opt.Duration)
	res.Mean = res.Series.Mean()
	res.MeanTput = el.Mean(c.Eng.Now())
	return res
}

// FlowletSizeResult is the Figure 1 output.
type FlowletSizeResult struct {
	Competing int
	Seed      uint64 // RNG seed of the run
	// TopSizes holds the ten largest flowlet sizes in MB, descending.
	TopSizes []float64
	// LargestFraction is the share of the transfer carried by the
	// single largest flowlet.
	LargestFraction float64
	// Count is the total number of flowlets.
	Count int
}

// RunFlowletSizes reproduces Figure 1: a large transfer to a receiver
// shared with `competing` background elephants on a single switch,
// chopped into flowlets by the given inactivity gap.
func RunFlowletSizes(competing int, gap sim.Time, transferBytes int, opt Options) FlowletSizeResult {
	opt.fill()
	c := cluster.New(cluster.Config{
		Topology:   OptimalTopo(2 + competing),
		Scheme:     cluster.Flowlet,
		FlowletGap: gap,
		Seed:       opt.Seed,
	})
	// Background elephants from hosts 2.. to the shared receiver 1.
	for i := 0; i < competing; i++ {
		bg := c.Dial(packet.HostID(2+i), 1)
		bg.SetUnlimited(true)
	}
	conn := c.Dial(0, 1)
	// The background elephants never finish; stop the engine when the
	// measured transfer has fully arrived.
	conn.OnDelivered = func(total uint64) {
		if total >= uint64(transferBytes) {
			c.Eng.Stop()
		}
	}
	conn.Write(transferBytes)
	c.Eng.RunAll()

	fl := c.Hosts[0].VS.Policy().(interface {
		FlowletSizes(packet.FlowKey) []int
	})
	sizes := fl.FlowletSizes(conn.Flows()[0])
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	res := FlowletSizeResult{Competing: competing, Seed: opt.Seed, Count: len(sizes)}
	total := 0
	for _, s := range sizes {
		total += s
	}
	for i, s := range sizes {
		if i >= 10 {
			break
		}
		res.TopSizes = append(res.TopSizes, float64(s)/1e6)
	}
	if total > 0 && len(sizes) > 0 {
		res.LargestFraction = float64(sizes[0]) / float64(total)
	}
	return res
}

// TraceResult is the Table 1 output.
type TraceResult struct {
	System       System
	Seed         uint64        // RNG seed of the run
	MiceFCT      *metrics.Dist // ms
	ElephantTput float64       // mean Gbps of >1 MB flows
	Flows        int
}

// TraceInterarrival is the default per-host mean flow inter-arrival
// for the trace-driven workload.
const TraceInterarrival = 4 * sim.Millisecond

// RunTrace reproduces the Table 1 trace-driven workload: heavy-tailed
// flow sizes (×10 scaling, §6) from every server to random cross-rack
// destinations.
func RunTrace(sys System, opt Options) TraceResult {
	opt.fill()
	tp := topoFor(sys, Testbed)
	c := buildCluster(sys, tp, opt)
	until := opt.Warmup + opt.Duration
	tr := workload.StartTrace(c, c.RNG(), TraceInterarrival, 10, until)
	c.Eng.Run(until + 100*sim.Millisecond) // drain stragglers
	return TraceResult{
		System:       sys,
		Seed:         opt.Seed,
		MiceFCT:      &tr.MiceFCT,
		ElephantTput: tr.ElephantTps.Mean(),
		Flows:        tr.Flows,
	}
}

// NorthSouthResult is the Table 2 output.
type NorthSouthResult struct {
	System       System
	Seed         uint64        // RNG seed of the run
	MiceFCT      *metrics.Dist // east-west mice, ms
	MeanTput     float64       // east-west elephants, Gbps
	MiceTimeouts int
}

// RunNorthSouth reproduces Table 2: one 100 Mbps remote user per
// spine, every server firing north-south flows every millisecond
// (ECMP-routed per hop), under a stride east-west workload.
func RunNorthSouth(sys System, opt Options) NorthSouthResult {
	opt.fill()
	var tp *topo.Topology
	var remotes []packet.HostID
	if sys == SysOptimal {
		tp = OptimalTopo(16)
		for i := 0; i < 4; i++ {
			h := tp.AddLeafHost(tp.Leaves[0], 100e6, 5*sim.Microsecond)
			tp.MarkRemote(h)
			remotes = append(remotes, h)
		}
	} else {
		tp = Testbed()
		for _, s := range tp.Spines {
			remotes = append(remotes, tp.AddSpineHost(s, 100e6, 5*sim.Microsecond))
		}
	}
	c := buildCluster(sys, tp, opt)
	until := opt.Warmup + opt.Duration
	workload.StartNorthSouth(c, c.RNG(), remotes, sim.Millisecond, until)
	el := workload.Stride(c, 8)
	mice := workload.StartMice(c, hostPairs(16, 8), opt.MiceSize, opt.MiceResp, opt.MiceInterval, until)
	c.Eng.Run(opt.Warmup)
	el.ResetBaseline(c.Eng.Now())
	c.Eng.Run(until)
	return NorthSouthResult{
		System:       sys,
		Seed:         opt.Seed,
		MiceFCT:      &mice.FCT,
		MeanTput:     el.Mean(c.Eng.Now()),
		MiceTimeouts: mice.Timeouts,
	}
}

// FailoverWorkload selects the traffic pattern of Figure 17.
type FailoverWorkload int

// Figure 17's workloads.
const (
	FailL1L4 FailoverWorkload = iota // every L1 host to one L4 host
	FailL4L1
	FailStride
	FailBijection
)

func (f FailoverWorkload) String() string {
	switch f {
	case FailL1L4:
		return "L1->L4"
	case FailL4L1:
		return "L4->L1"
	case FailStride:
		return "stride"
	case FailBijection:
		return "bijection"
	}
	return "?"
}

// FailoverResult is the Figures 17/18 output: Presto's behaviour in
// the symmetry, fast-failover, and weighted-multipathing stages after
// the S1-L1 link dies.
type FailoverResult struct {
	Workload FailoverWorkload
	Seed     uint64 // RNG seed of the run
	// Mean per-flow goodput (Gbps) in each stage.
	SymmetryTput, FailoverTput, WeightedTput float64
	// RTT distributions (ms) per stage.
	SymmetryRTT, FailoverRTT, WeightedRTT *metrics.Dist
}

// RunFailover reproduces Figures 17 and 18 on the testbed with
// Presto: measure under symmetry, kill the S1-L1 link, measure the
// hardware-failover stage, then the controller's weighted stage.
func RunFailover(w FailoverWorkload, opt Options) FailoverResult {
	opt.fill()
	c := buildCluster(SysPresto, Testbed(), opt)

	var el *workload.Elephants
	switch w {
	case FailL1L4:
		el = elephantsBetween(c, []int{0, 1, 2, 3}, []int{12, 13, 14, 15})
	case FailL4L1:
		el = elephantsBetween(c, []int{12, 13, 14, 15}, []int{0, 1, 2, 3})
	case FailStride:
		el = workload.Stride(c, 8)
	case FailBijection:
		el = workload.RandomBijection(c, c.RNG())
	}
	probers := workload.StartProbers(c, pairsOf(el), opt.ProbeInterval)

	stage := opt.Duration / 3
	if stage < 20*sim.Millisecond {
		stage = 20 * sim.Millisecond
	}

	res := FailoverResult{Workload: w, Seed: opt.Seed}
	// Stage 1: symmetry.
	c.Eng.Run(opt.Warmup)
	el.ResetBaseline(c.Eng.Now())
	symStart := c.Eng.Now()
	c.Eng.Run(opt.Warmup + stage)
	res.SymmetryTput = el.Mean(c.Eng.Now())
	res.SymmetryRTT = rttWindow(probers, symStart, c.Eng.Now())

	// Failure: S1-L1 goes down. Hardware failover activates after the
	// fabric's latency (5 ms); the controller's weighted mappings land
	// after its 50 ms control loop.
	bad := c.Ctrl.Trees()[0].LeafLink[c.Topo.Leaves[0]]
	failAt := c.Eng.Now()
	c.FailLink(bad)

	// Stage 2: fast failover (after activation, before the controller
	// update).
	c.Eng.Run(failAt + 6*sim.Millisecond)
	el.ResetBaseline(c.Eng.Now())
	foStart := c.Eng.Now()
	c.Eng.Run(failAt + 48*sim.Millisecond)
	res.FailoverTput = el.Mean(c.Eng.Now())
	res.FailoverRTT = rttWindow(probers, foStart, c.Eng.Now())

	// Stage 3: weighted multipathing.
	c.Eng.Run(failAt + 60*sim.Millisecond)
	el.ResetBaseline(c.Eng.Now())
	wStart := c.Eng.Now()
	c.Eng.Run(failAt + 60*sim.Millisecond + stage)
	res.WeightedTput = el.Mean(c.Eng.Now())
	res.WeightedRTT = rttWindow(probers, wStart, c.Eng.Now())
	return res
}

func elephantsBetween(c *cluster.Cluster, srcs, dsts []int) *workload.Elephants {
	pairs := make([][2]packet.HostID, 0, len(srcs))
	for i := range srcs {
		pairs = append(pairs, [2]packet.HostID{packet.HostID(srcs[i]), packet.HostID(dsts[i%len(dsts)])})
	}
	return workload.Pairs(c, pairs)
}

// rttWindow extracts probe samples completed within [from, to).
func rttWindow(probers []*cluster.Prober, from, to sim.Time) *metrics.Dist {
	d := &metrics.Dist{}
	for _, p := range probers {
		for i, at := range p.SampleAt {
			if at >= from && at < to {
				d.Add(p.RTTs[i])
			}
		}
	}
	return d
}

// GRODisabledThroughput measures the no-receive-offload wall (§2.2's
// ~5.5-7 Gbps at 100% CPU): one elephant with GRO disabled at the
// receiver.
func GRODisabledThroughput(opt Options) (gbps, cpu float64) {
	opt.fill()
	c := cluster.New(cluster.Config{
		Topology: OptimalTopo(2),
		Scheme:   cluster.ECMP,
		Seed:     opt.Seed,
		GRO:      cluster.GRONone,
	})
	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	c.Eng.Run(opt.Warmup)
	base := conn.Delivered()
	busy := c.Hosts[1].NIC.Stats.BusyTime
	start := c.Eng.Now()
	c.Eng.Run(opt.Warmup + opt.Duration)
	dur := (c.Eng.Now() - start).Seconds()
	gbps = float64(conn.Delivered()-base) * 8 / dur / 1e9
	cpu = c.Hosts[1].NIC.Utilization(busy, start)
	return gbps, cpu
}
