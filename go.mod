module presto

go 1.22

// Tool dependency (see tools.go): staticcheck 2025.1.1. Only the
// tools-tagged file imports it, so ordinary builds and tests never
// download it.
require honnef.co/go/tools v0.6.1
