package presto

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"presto/internal/cluster"
	"presto/internal/sim"
	"presto/internal/telemetry"
	"presto/internal/workload"
)

func shortOpt(reg *telemetry.Registry) Options {
	return Options{
		Seed:      42,
		Warmup:    10 * sim.Millisecond,
		Duration:  20 * sim.Millisecond,
		Telemetry: reg,
	}
}

// sameLoadResult asserts every workload metric of two runs is
// bit-identical — the core of the telemetry determinism regression.
func sameLoadResult(t *testing.T, plain, traced LoadResult) {
	t.Helper()
	if plain.MeanTput != traced.MeanTput {
		t.Errorf("MeanTput diverged: %v vs %v", plain.MeanTput, traced.MeanTput)
	}
	if plain.LossRate != traced.LossRate {
		t.Errorf("LossRate diverged: %v vs %v", plain.LossRate, traced.LossRate)
	}
	if plain.Fairness != traced.Fairness {
		t.Errorf("Fairness diverged: %v vs %v", plain.Fairness, traced.Fairness)
	}
	if plain.MiceTimeouts != traced.MiceTimeouts {
		t.Errorf("MiceTimeouts diverged: %d vs %d", plain.MiceTimeouts, traced.MiceTimeouts)
	}
	a, b := plain.RTT.Samples(), traced.RTT.Samples()
	if len(a) != len(b) {
		t.Fatalf("RTT sample counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RTT sample %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	fa, fb := plain.FCT.Samples(), traced.FCT.Samples()
	if len(fa) != len(fb) {
		t.Fatalf("FCT sample counts diverged: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("FCT sample %d diverged: %v vs %v", i, fa[i], fb[i])
		}
	}
}

// TestTelemetryDoesNotPerturbResults is the determinism regression
// test: the same seed must produce bit-identical metrics whether the
// telemetry layer (tracer + probes + link monitor) is on or off.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain := RunWorkload(SysPresto, Stride, shortOpt(nil))
	reg := telemetry.NewRegistry(telemetry.NewTracer())
	traced := RunWorkload(SysPresto, Stride, shortOpt(reg))

	sameLoadResult(t, plain, traced)
	if traced.Telemetry == nil {
		t.Fatal("traced run has no snapshot")
	}
	if plain.Telemetry != nil {
		t.Fatal("plain run unexpectedly has a snapshot")
	}
	if len(reg.Tracer().Events()) == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestTelemetryBoundedModesDoNotPerturbResults extends the
// determinism regression to the bounded-memory paths: a small
// ring-buffer tracer spilling compressed JSONL to disk must leave
// every workload metric bit-identical to an untraced run.
func TestTelemetryBoundedModesDoNotPerturbResults(t *testing.T) {
	plain := RunWorkload(SysPresto, Stride, shortOpt(nil))

	tr := telemetry.NewTracer()
	tr.SetRing(512)
	spillPath := filepath.Join(t.TempDir(), "trace.jsonl.gz")
	if err := tr.SpillTo(spillPath); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry(tr)
	traced := RunWorkload(SysPresto, Stride, shortOpt(reg))
	if err := tr.CloseSpill(); err != nil {
		t.Fatal(err)
	}

	sameLoadResult(t, plain, traced)

	if err := tr.SpillError(); err != nil {
		t.Fatalf("spill sink failed: %v", err)
	}
	if tr.Spilled() == 0 {
		t.Fatal("a 512-slot ring over a full run spilled nothing")
	}
	if tr.Overwritten() != 0 {
		t.Errorf("spill mode overwrote %d events; spill should preempt the ring", tr.Overwritten())
	}
	// The spill file alone is the complete trace: gzip JSONL, one
	// event per line, Spilled() lines in total.
	f, err := os.Open(spillPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var lines uint64
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("spill line %d is not JSON: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != tr.Spilled() {
		t.Errorf("spill file has %d events, tracer spilled %d", lines, tr.Spilled())
	}
	if len(tr.Events()) != 0 {
		t.Errorf("CloseSpill left %d events buffered", len(tr.Events()))
	}
}

// TestIncrementalSnapshotsDoNotPerturbRun drives the same seeded
// cluster twice — once plain, once with an incremental snapshot
// stream sampled between engine chunks — and checks the switch-level
// counters stay bit-identical while the reassembled decoder state
// matches a full snapshot taken at the end.
func TestIncrementalSnapshotsDoNotPerturbRun(t *testing.T) {
	const horizon = 30 * sim.Millisecond

	ref := cluster.New(cluster.Config{
		Topology: Testbed(),
		Scheme:   cluster.Presto,
		Seed:     42,
	})
	workload.Stride(ref, 8)
	ref.Eng.Run(horizon)

	reg := telemetry.NewRegistry(telemetry.NewTracer())
	c := cluster.New(cluster.Config{
		Topology:  Testbed(),
		Scheme:    cluster.Presto,
		Seed:      42,
		Telemetry: reg,
	})
	workload.Stride(c, 8)
	ss := reg.Stream(4)
	dec := telemetry.NewStreamDecoder()
	var deltas, keyframes int
	for until := 2 * sim.Millisecond; until <= horizon; until += 2 * sim.Millisecond {
		c.Eng.Run(until)
		d := ss.Next(c.Eng.Now())
		if err := dec.Apply(d); err != nil {
			t.Fatalf("delta %d: %v", deltas, err)
		}
		deltas++
		if d.Keyframe {
			keyframes++
		}
	}
	if keyframes < 2 {
		t.Fatalf("expected periodic keyframes over %d deltas, got %d", deltas, keyframes)
	}

	for i, h := range ref.Hosts {
		th := c.Hosts[i]
		if h.VS.Stats.Flowcells != th.VS.Stats.Flowcells {
			t.Errorf("host %d flowcells diverged: %d vs %d", i, h.VS.Stats.Flowcells, th.VS.Stats.Flowcells)
		}
		if h.NIC.GRO().Stats().SegmentsOut != th.NIC.GRO().Stats().SegmentsOut {
			t.Errorf("host %d GRO segments diverged: %d vs %d",
				i, h.NIC.GRO().Stats().SegmentsOut, th.NIC.GRO().Stats().SegmentsOut)
		}
	}

	// The incrementally reassembled state equals a full snapshot taken
	// at the same instant (both sides normalized through JSON so Go
	// integer widths don't matter).
	wantNorm := normalizeJSON(t, reg.Snapshot(c.Eng.Now()).Flat())
	gotNorm := normalizeJSON(t, dec.State())
	if !bytes.Equal(wantNorm, gotNorm) {
		t.Errorf("decoder state != full snapshot\n got: %.400s\nwant: %.400s", gotNorm, wantNorm)
	}
}

// normalizeJSON round-trips v through JSON so numeric types erase to
// float64 and map keys sort, yielding comparable bytes.
func normalizeJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var norm any
	if err := json.Unmarshal(raw, &norm); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTelemetryCountersConsistent pins the accounting invariants: each
// vSwitch's per-path flowcell counts sum to its total emitted
// flowcells, and each GRO handler's per-reason flush counts sum to its
// total segments pushed up.
func TestTelemetryCountersConsistent(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.NewTracer())
	c := cluster.New(cluster.Config{
		Topology:  Testbed(),
		Scheme:    cluster.Presto,
		Seed:      42,
		Telemetry: reg,
	})
	workload.Stride(c, 8)
	c.Eng.Run(30 * sim.Millisecond)

	var totalCells uint64
	for _, h := range c.Hosts {
		var pathSum uint64
		for _, n := range h.VS.PathFlowcells() {
			pathSum += n
		}
		if pathSum != h.VS.Stats.Flowcells {
			t.Errorf("host %d: per-path flowcells sum %d != total %d",
				h.ID, pathSum, h.VS.Stats.Flowcells)
		}
		totalCells += h.VS.Stats.Flowcells

		st := h.NIC.GRO().Stats()
		var reasonSum uint64
		for _, n := range st.FlushReasons {
			reasonSum += n
		}
		if reasonSum != st.SegmentsOut {
			t.Errorf("host %d: flush reasons sum %d != segments out %d",
				h.ID, reasonSum, st.SegmentsOut)
		}
	}
	if totalCells == 0 {
		t.Fatal("no flowcells emitted under Presto stride")
	}

	// The traced FlowcellEmit events must agree with the counters.
	if got := reg.Tracer().CountKind(telemetry.KindFlowcellEmit); uint64(got) != totalCells {
		t.Errorf("traced FlowcellEmit events %d != counted flowcells %d", got, totalCells)
	}

	// And the snapshot must carry the same numbers through the probes.
	snap := reg.Snapshot(c.Eng.Now())
	vs0 := snap.Components["host0/vswitch"]
	if vs0 == nil {
		t.Fatal("snapshot missing host0/vswitch probe")
	}
	if vs0["flowcells"].(uint64) != c.Hosts[0].VS.Stats.Flowcells {
		t.Errorf("snapshot flowcells %v != live %d", vs0["flowcells"], c.Hosts[0].VS.Stats.Flowcells)
	}
}

// TestTraceExportFromRun drives a full Presto run and checks the Chrome
// trace export carries the load-bearing event types with populated
// arguments.
func TestTraceExportFromRun(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.NewTracer())
	RunWorkload(SysPresto, Stride, shortOpt(reg))

	var buf bytes.Buffer
	if err := reg.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var flowcells, flushes int
	for _, ev := range out.TraceEvents {
		if ev.Phase != "i" {
			continue
		}
		switch ev.Name {
		case "FlowcellEmit":
			flowcells++
		case "GROFlush":
			if r, _ := ev.Args["reason"].(string); r == "" {
				t.Fatalf("GROFlush without reason: %v", ev.Args)
			}
			flushes++
		}
	}
	if flowcells == 0 {
		t.Error("trace has no FlowcellEmit events")
	}
	if flushes == 0 {
		t.Error("trace has no GROFlush events")
	}
}

// TestEngineProbeCountsWork sanity-checks the engine probe fields the
// snapshot reports.
func TestEngineProbeCountsWork(t *testing.T) {
	reg := telemetry.NewRegistry(nil)
	c := cluster.New(cluster.Config{
		Topology:  Testbed(),
		Scheme:    cluster.Presto,
		Seed:      1,
		Telemetry: reg,
	})
	workload.Stride(c, 8)
	c.Eng.Run(5 * sim.Millisecond)
	snap := reg.Snapshot(c.Eng.Now())
	eng := snap.Components["engine"]
	if eng == nil {
		t.Fatal("no engine probe")
	}
	if eng["events"].(uint64) == 0 {
		t.Error("engine executed no events")
	}
	if eng["peak_pending"].(int) <= 0 {
		t.Error("peak heap depth not tracked")
	}
}
