package presto

import (
	"bytes"
	"encoding/json"
	"testing"

	"presto/internal/cluster"
	"presto/internal/sim"
	"presto/internal/telemetry"
	"presto/internal/workload"
)

func shortOpt(reg *telemetry.Registry) Options {
	return Options{
		Seed:      42,
		Warmup:    10 * sim.Millisecond,
		Duration:  20 * sim.Millisecond,
		Telemetry: reg,
	}
}

// TestTelemetryDoesNotPerturbResults is the determinism regression
// test: the same seed must produce bit-identical metrics whether the
// telemetry layer (tracer + probes + link monitor) is on or off.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain := RunWorkload(SysPresto, Stride, shortOpt(nil))
	reg := telemetry.NewRegistry(telemetry.NewTracer())
	traced := RunWorkload(SysPresto, Stride, shortOpt(reg))

	if plain.MeanTput != traced.MeanTput {
		t.Errorf("MeanTput diverged: %v vs %v", plain.MeanTput, traced.MeanTput)
	}
	if plain.LossRate != traced.LossRate {
		t.Errorf("LossRate diverged: %v vs %v", plain.LossRate, traced.LossRate)
	}
	if plain.Fairness != traced.Fairness {
		t.Errorf("Fairness diverged: %v vs %v", plain.Fairness, traced.Fairness)
	}
	if plain.MiceTimeouts != traced.MiceTimeouts {
		t.Errorf("MiceTimeouts diverged: %d vs %d", plain.MiceTimeouts, traced.MiceTimeouts)
	}
	a, b := plain.RTT.Samples(), traced.RTT.Samples()
	if len(a) != len(b) {
		t.Fatalf("RTT sample counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RTT sample %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	fa, fb := plain.FCT.Samples(), traced.FCT.Samples()
	if len(fa) != len(fb) {
		t.Fatalf("FCT sample counts diverged: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("FCT sample %d diverged: %v vs %v", i, fa[i], fb[i])
		}
	}
	if traced.Telemetry == nil {
		t.Fatal("traced run has no snapshot")
	}
	if plain.Telemetry != nil {
		t.Fatal("plain run unexpectedly has a snapshot")
	}
	if len(reg.Tracer().Events()) == 0 {
		t.Fatal("traced run recorded no events")
	}
}

// TestTelemetryCountersConsistent pins the accounting invariants: each
// vSwitch's per-path flowcell counts sum to its total emitted
// flowcells, and each GRO handler's per-reason flush counts sum to its
// total segments pushed up.
func TestTelemetryCountersConsistent(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.NewTracer())
	c := cluster.New(cluster.Config{
		Topology:  Testbed(),
		Scheme:    cluster.Presto,
		Seed:      42,
		Telemetry: reg,
	})
	workload.Stride(c, 8)
	c.Eng.Run(30 * sim.Millisecond)

	var totalCells uint64
	for _, h := range c.Hosts {
		var pathSum uint64
		for _, n := range h.VS.PathFlowcells() {
			pathSum += n
		}
		if pathSum != h.VS.Stats.Flowcells {
			t.Errorf("host %d: per-path flowcells sum %d != total %d",
				h.ID, pathSum, h.VS.Stats.Flowcells)
		}
		totalCells += h.VS.Stats.Flowcells

		st := h.NIC.GRO().Stats()
		var reasonSum uint64
		for _, n := range st.FlushReasons {
			reasonSum += n
		}
		if reasonSum != st.SegmentsOut {
			t.Errorf("host %d: flush reasons sum %d != segments out %d",
				h.ID, reasonSum, st.SegmentsOut)
		}
	}
	if totalCells == 0 {
		t.Fatal("no flowcells emitted under Presto stride")
	}

	// The traced FlowcellEmit events must agree with the counters.
	if got := reg.Tracer().CountKind(telemetry.KindFlowcellEmit); uint64(got) != totalCells {
		t.Errorf("traced FlowcellEmit events %d != counted flowcells %d", got, totalCells)
	}

	// And the snapshot must carry the same numbers through the probes.
	snap := reg.Snapshot(c.Eng.Now())
	vs0 := snap.Components["host0/vswitch"]
	if vs0 == nil {
		t.Fatal("snapshot missing host0/vswitch probe")
	}
	if vs0["flowcells"].(uint64) != c.Hosts[0].VS.Stats.Flowcells {
		t.Errorf("snapshot flowcells %v != live %d", vs0["flowcells"], c.Hosts[0].VS.Stats.Flowcells)
	}
}

// TestTraceExportFromRun drives a full Presto run and checks the Chrome
// trace export carries the load-bearing event types with populated
// arguments.
func TestTraceExportFromRun(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.NewTracer())
	RunWorkload(SysPresto, Stride, shortOpt(reg))

	var buf bytes.Buffer
	if err := reg.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var flowcells, flushes int
	for _, ev := range out.TraceEvents {
		if ev.Phase != "i" {
			continue
		}
		switch ev.Name {
		case "FlowcellEmit":
			flowcells++
		case "GROFlush":
			if r, _ := ev.Args["reason"].(string); r == "" {
				t.Fatalf("GROFlush without reason: %v", ev.Args)
			}
			flushes++
		}
	}
	if flowcells == 0 {
		t.Error("trace has no FlowcellEmit events")
	}
	if flushes == 0 {
		t.Error("trace has no GROFlush events")
	}
}

// TestEngineProbeCountsWork sanity-checks the engine probe fields the
// snapshot reports.
func TestEngineProbeCountsWork(t *testing.T) {
	reg := telemetry.NewRegistry(nil)
	c := cluster.New(cluster.Config{
		Topology:  Testbed(),
		Scheme:    cluster.Presto,
		Seed:      1,
		Telemetry: reg,
	})
	workload.Stride(c, 8)
	c.Eng.Run(5 * sim.Millisecond)
	snap := reg.Snapshot(c.Eng.Now())
	eng := snap.Components["engine"]
	if eng == nil {
		t.Fatal("no engine probe")
	}
	if eng["events"].(uint64) == 0 {
		t.Error("engine executed no events")
	}
	if eng["peak_pending"].(int) <= 0 {
		t.Error("peak heap depth not tracked")
	}
}
