package presto

import (
	"fmt"

	"presto/internal/campaign"
	"presto/internal/scheme"
	"presto/internal/topo"
	wspec "presto/internal/workload/spec"
)

// The scheme matrix is the standing scheme × workload × topology
// comparison the ROADMAP calls for: every registered load-balancing
// scheme runs the same declarative workloads on both a 2-tier Clos
// and a low-diameter leaf mesh, and the campaign renders mean FCT,
// p99 FCT, and throughput per cell. The golden gate in CI turns the
// matrix into a regression fence for every scheme at once.

// matrixWorkloads are the workload-spec presets in the matrix grid,
// in render order.
var matrixWorkloads = []string{"elephants", "mice-heavy", "incast32"}

// matrixTopos are the topology columns: the paper's Figure 3 Clos and
// a 4-leaf mesh with the same server count.
var matrixTopos = []struct {
	name  string
	build func() *topo.Topology
}{
	{"clos", Testbed},
	{"mesh", func() *topo.Topology { return topo.LeafMesh(4, 4, topo.LinkConfig{}) }},
}

// SchemeMatrixTopos lists the topology column names in render order.
func SchemeMatrixTopos() []string {
	out := make([]string, len(matrixTopos))
	for i, t := range matrixTopos {
		out[i] = t.name
	}
	return out
}

// SchemeMatrixWorkloads lists the workload rows in render order.
func SchemeMatrixWorkloads() []string { return append([]string(nil), matrixWorkloads...) }

// SchemeMatrixCellID names one matrix cell; IDs are part of the
// golden-gate contract, so the format is frozen.
func SchemeMatrixCellID(schemeName, workload, topoName string) string {
	return fmt.Sprintf("scheme-matrix/scheme=%s/wl=%s/topo=%s", schemeName, workload, topoName)
}

// schemeMatrixCell builds one (scheme, workload, topology) cell.
func schemeMatrixCell(sys System, ws *wspec.Spec, topoName string, build func() *topo.Topology, opt Options) campaign.Cell {
	return campaign.Cell{
		Experiment: "scheme-matrix",
		ID:         SchemeMatrixCellID(sys.SchemeName(), ws.Name, topoName),
		Workload:   ws.Hash(),
		Run: func(seed uint64) (campaign.Result, error) {
			o := opt
			o.Seed = seed
			r, _, err := RunSpecWorkloadOn(sys, build(), ws, o)
			if err != nil {
				return campaign.Result{}, err
			}
			res := loadCellResult(r)
			if r.FCT != nil && r.FCT.N() > 0 {
				res.Metrics["fct_ms_mean"] = r.FCT.Mean()
			}
			return res, nil
		},
	}
}

// schemeMatrixCells builds the full grid over every registered scheme
// (sorted registry order — deterministic by construction).
func schemeMatrixCells(opt Options) []campaign.Cell {
	cells, err := SchemeMatrixCells(nil, opt)
	if err != nil {
		// The built-in grid uses only registry names and preset
		// workloads; failure here is a programming error.
		panic("presto: scheme matrix: " + err.Error())
	}
	return cells
}

// SchemeMatrixCells builds matrix cells for the given scheme specs
// (registry names, optionally with params). nil means every
// registered scheme with default parameters, in sorted order.
func SchemeMatrixCells(schemes []string, opt Options) ([]campaign.Cell, error) {
	opt.fill()
	var systems []System
	if len(schemes) == 0 {
		systems = SchemeSystems()
	} else {
		for _, s := range schemes {
			sys, err := SystemFor(s)
			if err != nil {
				return nil, err
			}
			systems = append(systems, sys)
		}
	}
	var cells []campaign.Cell
	for _, sys := range systems {
		for _, wl := range matrixWorkloads {
			ws, err := wspec.Preset(wl)
			if err != nil {
				return nil, err
			}
			for _, mt := range matrixTopos {
				cells = append(cells, schemeMatrixCell(sys, ws, mt.name, mt.build, opt))
			}
		}
	}
	return cells, nil
}

// SchemeMatrixSpec assembles the scheme-matrix campaign. nil schemes
// means the whole registry; the spec's Seeds/Parallelism/... are left
// for the caller, like CampaignSpec.
func SchemeMatrixSpec(schemes []string, opt Options) (*campaign.Spec, error) {
	opt.fill()
	cells, err := SchemeMatrixCells(schemes, opt)
	if err != nil {
		return nil, err
	}
	name := "scheme-matrix"
	if len(schemes) > 0 {
		name += "/" + fmt.Sprint(len(schemes)) + "-schemes"
	}
	return &campaign.Spec{
		Name: name,
		Params: map[string]string{
			"duration": opt.Duration.String(),
			"warmup":   opt.Warmup.String(),
			"schemes":  fmt.Sprint(len(cells) / (len(matrixWorkloads) * len(matrixTopos))),
		},
		Cells: cells,
	}, nil
}

// RunSchemeMatrix builds and executes the scheme-matrix campaign over
// the given scheme specs (nil = the whole registry) with the given
// seed replication.
func RunSchemeMatrix(schemes []string, seeds int, opt Options) (*campaign.Report, error) {
	spec, err := SchemeMatrixSpec(schemes, opt)
	if err != nil {
		return nil, err
	}
	if seeds > 0 {
		spec.Seeds = campaign.Seeds(1, seeds)
	}
	return campaign.Run(spec)
}

// SchemeNames exposes the registry listing (sorted) to front-ends
// that do not import internal/scheme.
func SchemeNames() []string { return scheme.Names() }
