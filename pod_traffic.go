package presto

import (
	"presto/internal/cluster"
	"presto/internal/packet"
	"presto/internal/topo"
	"presto/internal/workload"
)

// PodTopo returns a pod-based 3-tier Clos for the pod-scale
// experiment: `pods` pods of 2 aggregation switches and 2 leaves
// each, `hostsPerLeaf` hosts per leaf (2·pods·hostsPerLeaf hosts
// total), wired to 2 cores.
func PodTopo(pods, hostsPerLeaf int) *topo.Topology {
	return topo.ThreeTierClos(pods, 2, 2, hostsPerLeaf, topo.LinkConfig{})
}

// PodTrafficResult is the output of the pod-scale experiment.
type PodTrafficResult struct {
	System System
	Seed   uint64
	Pods   int
	Hosts  int
	// Shards is the number of engine shards the run actually used
	// (requests above the pod count are capped).
	Shards   int
	MeanTput float64 // mean per-elephant goodput, Gbps
	Fairness float64 // Jain's index over elephant goodputs
	LossRate float64 // switch-counter loss fraction
	// Delivered counts packets handed to host NICs; Events counts
	// engine events executed across all shards. Both are bit-identical
	// across shard counts.
	Delivered uint64
	Events    uint64
}

// RunPodTraffic drives one cross-pod elephant per host (each host
// sends to the same-position host one pod over) on a pod-based 3-tier
// Clos — the datacenter-scale pattern the sharded engine exists for.
// Options.Shards selects the engine partitioning; any shard count
// produces bit-identical results, so the knob only trades wall-clock
// time.
func RunPodTraffic(sys System, pods, hostsPerLeaf int, opt Options) PodTrafficResult {
	opt.fill()
	tp := topoFor(sys, func() *topo.Topology { return PodTopo(pods, hostsPerLeaf) })
	cfg := clusterConfigFor(sys, tp, opt)
	cfg.Shards = opt.Shards
	c := cluster.New(cfg)

	n := tp.NumHosts()
	perPod := n / pods
	pairs := make([][2]packet.HostID, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]packet.HostID{packet.HostID(i), packet.HostID((i + perPod) % n)})
	}
	el := workload.Pairs(c, pairs)

	c.Run(opt.Warmup)
	el.ResetBaseline(c.Now())
	c.Run(opt.Warmup + opt.Duration)
	return PodTrafficResult{
		System:    sys,
		Seed:      opt.Seed,
		Pods:      pods,
		Hosts:     n,
		Shards:    c.Shards(),
		MeanTput:  el.Mean(c.Now()),
		Fairness:  el.Fairness(c.Now()),
		LossRate:  c.Net.LossRate(),
		Delivered: c.Net.TotalDelivered(),
		Events:    c.Executed(),
	}
}
