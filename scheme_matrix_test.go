package presto

import (
	"strings"
	"testing"

	"presto/internal/sim"
)

func TestSchemeMatrixSpecCoversRegistry(t *testing.T) {
	spec, err := SchemeMatrixSpec(nil, fastOpt(1))
	if err != nil {
		t.Fatal(err)
	}
	schemes := SchemeNames()
	want := len(schemes) * len(SchemeMatrixWorkloads()) * len(SchemeMatrixTopos())
	if len(spec.Cells) != want {
		t.Fatalf("%d cells, want %d (schemes × workloads × topos)", len(spec.Cells), want)
	}
	// Cell IDs are the golden-gate contract: scheme-matrix/scheme=S/wl=W/topo=T,
	// iterated scheme-major in sorted registry order.
	i := 0
	for _, s := range schemes {
		for _, wl := range SchemeMatrixWorkloads() {
			for _, tp := range SchemeMatrixTopos() {
				if got, want := spec.Cells[i].ID, SchemeMatrixCellID(s, wl, tp); got != want {
					t.Fatalf("cell %d ID %q, want %q", i, got, want)
				}
				i++
			}
		}
	}
}

func TestSchemeMatrixRejectsUnknownScheme(t *testing.T) {
	if _, err := SchemeMatrixSpec([]string{"nosuch"}, fastOpt(1)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := SchemeMatrixSpec([]string{"presto:bogus=1"}, fastOpt(1)); err == nil {
		t.Fatal("bad param accepted")
	}
}

// TestNewSchemesSelectableByName pins the acceptance criterion: each
// of the four new policies resolves through SystemFor — with and
// without parameters — to a runnable system.
func TestNewSchemesSelectableByName(t *testing.T) {
	for _, spec := range []string{
		"diffflow", "diffflow:threshold=512KB,cell=32KB",
		"sprinklers", "sprinklers:min-stripe=128KB",
		"rdna-balance", "rdna-balance:isolated-frac=0.5",
		"spritz", "spritz:cell=32KB",
	} {
		sys, err := SystemFor(spec)
		if err != nil {
			t.Fatalf("SystemFor(%q): %v", spec, err)
		}
		if !strings.HasPrefix(spec, sys.SchemeName()) {
			t.Errorf("SystemFor(%q) resolved to scheme %q", spec, sys.SchemeName())
		}
	}
}

// TestSchemeMatrixRunsOneScheme executes a single-scheme slice of the
// matrix end to end: all three workloads on both topologies must
// produce results (throughput for elephants, FCT samples for mice
// workloads) on clos and mesh alike.
func TestSchemeMatrixRunsOneScheme(t *testing.T) {
	opt := Options{Seed: 1, Warmup: 5 * sim.Millisecond, Duration: 20 * sim.Millisecond}
	rep, err := RunSchemeMatrix([]string{"diffflow"}, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if failed := rep.FailedReplicas(); len(failed) > 0 {
		t.Fatalf("failed replicas: %v", failed)
	}
	for _, tp := range SchemeMatrixTopos() {
		if e, ok := rep.Envelope(SchemeMatrixCellID("diffflow", "elephants", tp), "tput_gbps"); !ok || e.Mean <= 0 {
			t.Errorf("elephants on %s: no throughput (%v, %v)", tp, e, ok)
		}
		for _, wl := range []string{"mice-heavy", "incast32"} {
			if e, ok := rep.Envelope(SchemeMatrixCellID("diffflow", wl, tp), "fct_ms_mean"); !ok || e.Mean <= 0 {
				t.Errorf("%s on %s: no FCT (%v, %v)", wl, tp, e, ok)
			}
		}
	}
}
