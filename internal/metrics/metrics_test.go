package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.N() != 0 || d.Mean() != 0 || d.Percentile(50) != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty Dist should return zeros")
	}
	if d.CDF(10) != nil {
		t.Fatal("empty Dist CDF should be nil")
	}
}

func TestDistPercentiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {99, 99.01},
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > 0.011 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistMeanMinMaxStddev(t *testing.T) {
	var d Dist
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		d.Add(v)
	}
	if d.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", d.Mean())
	}
	if d.Min() != 2 || d.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", d.Min(), d.Max())
	}
	if d.Stddev() != 2 {
		t.Errorf("Stddev = %v, want 2", d.Stddev())
	}
}

func TestDistAddAfterQueryResorts(t *testing.T) {
	var d Dist
	d.Add(10)
	_ = d.Median()
	d.Add(1)
	if d.Min() != 1 {
		t.Fatal("Dist failed to re-sort after Add following a query")
	}
}

func TestDistFractionBelow(t *testing.T) {
	var d Dist
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	if got := d.FractionBelow(5); got != 0.5 {
		t.Errorf("FractionBelow(5) = %v, want 0.5", got)
	}
	if got := d.FractionBelow(0.5); got != 0 {
		t.Errorf("FractionBelow(0.5) = %v, want 0", got)
	}
	if got := d.FractionBelow(10); got != 1 {
		t.Errorf("FractionBelow(10) = %v, want 1", got)
	}
}

func TestDistCDFMonotonic(t *testing.T) {
	prop := func(vals []float64) bool {
		var d Dist
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
		}
		cdf := d.CDF(16)
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
				return false
			}
		}
		if n := len(cdf); n > 0 && cdf[n-1].Fraction != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is bounded by min/max and monotone in p.
func TestDistPercentileProperty(t *testing.T) {
	prop := func(vals []float64, a, b uint8) bool {
		var d Dist
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Add(v)
		}
		if d.N() == 0 {
			return true
		}
		p1 := float64(a) / 255 * 100
		p2 := float64(b) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := d.Percentile(p1), d.Percentile(p2)
		return v1 <= v2 && v1 >= d.Min() && v2 <= d.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single hog of 4: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty: %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all zero: %v, want 1", got)
	}
}

// Property: Jain's index is within (0, 1] and scale-invariant.
func TestJainIndexProperty(t *testing.T) {
	prop := func(raw []uint16, scale uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			xs = append(xs, float64(v))
		}
		j := JainIndex(xs)
		if j <= 0 || j > 1+1e-12 {
			return false
		}
		k := float64(scale%10) + 0.5
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * k
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Initialized() {
		t.Fatal("zero EWMA should be uninitialized")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first observation should seed: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := EWMA{Alpha: 0.25}
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA failed to converge: %v", e.Value())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 20)
	if s.N() != 2 || s.Mean() != 15 {
		t.Fatalf("Series N=%d mean=%v, want 2/15", s.N(), s.Mean())
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"Scheme", "Tput"}}
	tb.AddRow("ECMP", "5.7")
	tb.AddRow("Presto", "9.3")
	out := tb.String()
	if out == "" {
		t.Fatal("empty table output")
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", lines, out)
	}
}

func TestDistSamplesSorted(t *testing.T) {
	var d Dist
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	if !sort.Float64sAreSorted(d.Samples()) {
		t.Fatal("Samples() not sorted")
	}
}

func TestRenderQuantileBars(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	out := RenderQuantileBars(&d, []float64{50, 99}, 20, "ms")
	if out == "" || len(out) < 20 {
		t.Fatalf("render too short: %q", out)
	}
	var empty Dist
	if RenderQuantileBars(&empty, []float64{50}, 20, "") != "(no samples)\n" {
		t.Fatal("empty dist render wrong")
	}
}

func TestSamplesReturnsCopy(t *testing.T) {
	var d Dist
	d.Add(3)
	d.Add(1)
	d.Add(2)
	s := d.Samples()
	s[0] = 999
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("mutating Samples() corrupted the distribution: min=%v, want 1", got)
	}
	if got := d.Samples()[0]; got != 1 {
		t.Fatalf("second Samples() call sees mutation: %v", got)
	}
}

func TestRenderQuantileBarsNegativeValues(t *testing.T) {
	var d Dist
	d.Add(-5)
	d.Add(-2)
	d.Add(3)
	// Must not panic (a negative percentile over a positive max used to
	// produce a negative strings.Repeat count).
	out := RenderQuantileBars(&d, []float64{50, 99}, 20, "ms")
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestRenderQuantileBarsAllNegative(t *testing.T) {
	var d Dist
	d.Add(-5)
	d.Add(-1)
	out := RenderQuantileBars(&d, []float64{50, 90, 99}, 20, "ms")
	if out == "" {
		t.Fatal("empty render")
	}
}
