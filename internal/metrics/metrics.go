// Package metrics provides the measurement primitives the evaluation
// harness uses: sample distributions with percentiles/CDFs, Jain's
// fairness index, exponentially-weighted moving averages, counters, and
// periodic time-series samplers. All of it is allocation-light and has
// no dependencies beyond the standard library.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dist is an online collection of float64 samples supporting percentile
// queries. The zero value is ready to use and stores samples exactly.
//
// Memory modes: the zero value keeps every raw sample (exact
// percentiles, O(samples) memory). NewSketchDist starts sketch-backed
// from the first sample, and SpillAt arms a threshold past which the
// raw samples fold into a quantile sketch — both drop memory to
// O(buckets) at the cost of percentiles being approximate within the
// sketch's relative-error bound (see Sketch). Mean, min, max, stddev,
// and counts stay exact in every mode.
//
// NaN and ±Inf samples are rejected by Add in all modes: a single NaN
// would otherwise poison sorting, percentiles, and the mean.
type Dist struct {
	samples []float64
	sorted  bool

	sketch     *Sketch // non-nil: sketch-backed, samples is empty
	spillAt    int     // >0: fold samples into a sketch at this count
	spillAlpha float64
}

// NewSketchDist returns a Dist that is sketch-backed from the start:
// O(buckets) memory, percentiles within alpha relative error
// (DefaultSketchAlpha when alpha is out of range).
func NewSketchDist(alpha float64) *Dist {
	return &Dist{sketch: NewSketch(alpha)}
}

// SpillAt arms threshold-based spilling: once n samples have
// accumulated, the raw samples fold into a sketch with the given alpha
// and the Dist stays sketch-backed. n <= 0 disarms. Calling it on an
// already sketch-backed Dist is a no-op.
func (d *Dist) SpillAt(n int, alpha float64) {
	d.spillAt = n
	d.spillAlpha = alpha
	d.maybeSpill()
}

// SketchBacked reports whether the Dist has dropped its raw samples
// for a sketch (percentiles are approximate, Samples returns nil).
func (d *Dist) SketchBacked() bool { return d.sketch != nil }

// Sketch returns a quantile sketch of the distribution at the given
// alpha: a fresh sketch of the raw samples, or — when sketch-backed —
// the live sketch's clone, re-bucketed if its alpha differs from the
// request (see Sketch.Rebucket for the compounded error bound), so
// the result always merges cleanly with peers built at alpha. An
// out-of-range alpha means "whatever the backing sketch has" (raw
// samples fall back to DefaultSketchAlpha). Returns nil for an empty
// Dist.
func (d *Dist) Sketch(alpha float64) *Sketch {
	if d.sketch != nil {
		return d.sketch.Rebucket(alpha)
	}
	if len(d.samples) == 0 {
		return nil
	}
	s := NewSketch(alpha)
	for _, v := range d.samples {
		s.Add(v)
	}
	return s
}

// maybeSpill folds raw samples into the sketch once the armed
// threshold is reached.
func (d *Dist) maybeSpill() {
	if d.sketch != nil || d.spillAt <= 0 || len(d.samples) < d.spillAt {
		return
	}
	d.sketch = NewSketch(d.spillAlpha)
	for _, v := range d.samples {
		d.sketch.Add(v)
	}
	d.samples = nil
	d.sorted = false
}

// Add appends a sample. NaN and ±Inf are silently dropped.
func (d *Dist) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if d.sketch != nil {
		d.sketch.Add(v)
		return
	}
	d.samples = append(d.samples, v)
	d.sorted = false
	d.maybeSpill()
}

// N returns the number of samples.
func (d *Dist) N() int {
	if d.sketch != nil {
		return d.sketch.N()
	}
	return len(d.samples)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (d *Dist) Mean() float64 {
	if d.sketch != nil {
		return d.sketch.Mean()
	}
	if len(d.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Min returns the smallest sample, or 0 if empty.
func (d *Dist) Min() float64 {
	if d.sketch != nil {
		return d.sketch.Min()
	}
	d.sort()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (d *Dist) Max() float64 {
	if d.sketch != nil {
		return d.sketch.Max()
	}
	d.sort()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Stddev returns the population standard deviation, or 0 if empty.
func (d *Dist) Stddev() float64 {
	if d.sketch != nil {
		return d.sketch.Stddev()
	}
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	ss := 0.0
	for _, v := range d.samples {
		dv := v - mean
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks (exact mode) or the sketch's
// bounded-relative-error estimate (sketch mode). Returns 0 if empty.
func (d *Dist) Percentile(p float64) float64 {
	if d.sketch != nil {
		return d.sketch.Percentile(p)
	}
	d.sort()
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return d.samples[0]
	}
	if p >= 100 {
		return d.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.samples[lo]
	}
	frac := rank - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// CDF returns (value, cumulative-fraction) pairs at up to points evenly
// spaced ranks, suitable for plotting a CDF. Returns nil if empty. In
// sketch mode the values are quantile estimates at the same ranks.
func (d *Dist) CDF(points int) []CDFPoint {
	if d.sketch != nil {
		return d.sketchCDF(points)
	}
	d.sort()
	n := len(d.samples)
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / max(points-1, 1)
		out = append(out, CDFPoint{
			Value:    d.samples[idx],
			Fraction: float64(idx+1) / float64(n),
		})
	}
	return out
}

// sketchCDF synthesizes CDF points from sketch quantiles at evenly
// spaced ranks.
func (d *Dist) sketchCDF(points int) []CDFPoint {
	n := d.sketch.N()
	if n == 0 || points <= 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (n - 1) / max(points-1, 1)
		out = append(out, CDFPoint{
			Value:    d.sketch.Quantile(float64(idx) / float64(max(n-1, 1))),
			Fraction: float64(idx+1) / float64(n),
		})
	}
	return out
}

// FractionBelow returns the fraction of samples <= v (approximate in
// sketch mode).
func (d *Dist) FractionBelow(v float64) float64 {
	if d.sketch != nil {
		return d.sketch.FractionBelow(v)
	}
	d.sort()
	if len(d.samples) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(d.samples, math.Nextafter(v, math.Inf(1)))
	return float64(i) / float64(len(d.samples))
}

// Samples returns a copy of the sorted samples; mutating it cannot
// corrupt the distribution's internal state. A sketch-backed Dist has
// no raw samples and returns nil — callers that need values at scale
// should query Percentile/CDF instead.
func (d *Dist) Samples() []float64 {
	if d.sketch != nil {
		return nil
	}
	d.sort()
	out := make([]float64, len(d.samples))
	copy(out, d.samples)
	return out
}

// Summary formats mean and key percentiles in the given unit.
func (d *Dist) Summary(unit string) string {
	return fmt.Sprintf("n=%d mean=%.3f%s p50=%.3f%s p90=%.3f%s p99=%.3f%s p99.9=%.3f%s",
		d.N(), d.Mean(), unit, d.Percentile(50), unit, d.Percentile(90), unit,
		d.Percentile(99), unit, d.Percentile(99.9), unit)
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// JainIndex computes Jain's fairness index over throughputs:
// (Σx)² / (n·Σx²). 1.0 is perfectly fair; 1/n is maximally unfair.
// Returns 1 for empty or all-zero input (nothing to be unfair about).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// EWMA is an exponentially weighted moving average. The zero value has
// no observations; the first Observe seeds the average directly.
type EWMA struct {
	Alpha float64 // smoothing factor in (0,1]; weight of the new sample
	value float64
	init  bool
}

// Observe folds a new sample into the average.
func (e *EWMA) Observe(v float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.25
	}
	if !e.init {
		e.value = v
		e.init = true
		return
	}
	e.value = a*v + (1-a)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.init }

// Counter is a monotonically increasing count with a name.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds n to the counter.
func (c *Counter) Inc(n uint64) { c.Value += n }

// Series is an append-only (time, value) series for time-series plots
// such as the paper's Figure 6 CPU-usage graph.
type Series struct {
	Times  []float64
	Values []float64
}

// Add appends a point.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Mean returns the mean of the values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// N returns the number of points.
func (s *Series) N() int { return len(s.Values) }

// RenderQuantileBars draws a terminal-friendly view of a distribution:
// one bar per percentile, scaled to the distribution's maximum — the
// textual stand-in for the paper's CDF figures.
func RenderQuantileBars(d *Dist, percentiles []float64, width int, unit string) string {
	if d.N() == 0 {
		return "(no samples)\n"
	}
	if width < 10 {
		width = 10
	}
	max := d.Max()
	var b strings.Builder
	for _, p := range percentiles {
		v := d.Percentile(p)
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		if n < 0 {
			// Negative samples (e.g. a distribution of deltas) must not
			// produce a negative bar width: strings.Repeat panics.
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%6.1f%% |%-*s| %.3f%s\n", p, width, strings.Repeat("*", n), v, unit)
	}
	return b.String()
}

// Table renders rows of labeled values as an aligned text table; the
// experiment harness uses it to print paper-style tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with space-padded columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			// Pad all but the last column (no trailing whitespace).
			if i < len(widths) && i < len(cells)-1 {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
