// Quantile sketches: a DDSketch-style mergeable summary with
// relative-error-bounded quantiles in O(buckets) memory, the
// bounded-memory backend behind Dist's sketch mode. At the paper's
// million-flow scale the raw-sample Dist dominates observability
// memory; the sketch replaces O(samples) storage with a few hundred
// logarithmic buckets while keeping every quantile within a
// guaranteed relative error of the exact answer.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultSketchAlpha is the relative accuracy used when callers do not
// choose one: quantile estimates are within ±1% of an exact sample at
// the queried rank.
const DefaultSketchAlpha = 0.01

// Sketch is a mergeable quantile summary with bounded relative error
// (DDSketch-style logarithmic buckets). For every quantile q,
// Quantile(q) returns a value v̂ with |v̂ - v| <= Alpha()*|v| where v is
// an exact sample at q's rank — for any input, using one bucket
// counter per distinct power of gamma=(1+α)/(1-α) the samples span.
//
// Sum, mean, min, max, and counts are tracked exactly; only quantile
// values are approximate. Sketches with equal Alpha merge losslessly:
// merging is commutative and associative, and a merge of shards equals
// the sketch of the concatenated stream.
//
// The zero value is not ready to use; call NewSketch. A nil *Sketch is
// tolerated by its read-only methods (they return zeros).
type Sketch struct {
	alpha    float64 // relative accuracy bound in (0,1)
	gamma    float64 // (1+alpha)/(1-alpha)
	logGamma float64 // cached log(gamma)

	pos  map[int]uint64 // bucket key -> count, values > 0
	neg  map[int]uint64 // bucket key -> count of -value, values < 0
	zero uint64         // exact zeros

	n          uint64
	sum, sumsq float64
	min, max   float64
}

// NewSketch returns an empty sketch with the given relative accuracy
// alpha in (0, 1); out-of-range values fall back to
// DefaultSketchAlpha.
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		alpha = DefaultSketchAlpha
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:    alpha,
		gamma:    gamma,
		logGamma: math.Log(gamma),
		pos:      make(map[int]uint64),
		neg:      make(map[int]uint64),
		min:      math.Inf(1),
		max:      math.Inf(-1),
	}
}

// Alpha returns the sketch's relative accuracy bound.
func (s *Sketch) Alpha() float64 {
	if s == nil {
		return 0
	}
	return s.alpha
}

// N returns the number of samples added.
func (s *Sketch) N() int {
	if s == nil {
		return 0
	}
	return int(s.n)
}

// Sum returns the exact sum of all samples.
func (s *Sketch) Sum() float64 {
	if s == nil {
		return 0
	}
	return s.sum
}

// Mean returns the exact arithmetic mean, or 0 if empty.
func (s *Sketch) Mean() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Stddev returns the exact population standard deviation, or 0 if
// empty.
func (s *Sketch) Stddev() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	mean := s.sum / float64(s.n)
	v := s.sumsq/float64(s.n) - mean*mean
	if v < 0 {
		v = 0 // float cancellation on near-constant streams
	}
	return math.Sqrt(v)
}

// Min returns the exact smallest sample, or 0 if empty.
func (s *Sketch) Min() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact largest sample, or 0 if empty.
func (s *Sketch) Max() float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	return s.max
}

// Buckets returns the number of occupied buckets — the sketch's memory
// footprint in counters (plus the zero bucket when occupied).
func (s *Sketch) Buckets() int {
	if s == nil {
		return 0
	}
	b := len(s.pos) + len(s.neg)
	if s.zero > 0 {
		b++
	}
	return b
}

// key maps a positive value to its logarithmic bucket: the unique k
// with gamma^(k-1) < v <= gamma^k.
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// bucketValue reconstructs the representative value of bucket k:
// 2*gamma^k/(gamma+1), within alpha relative error of every value the
// bucket covers.
func (s *Sketch) bucketValue(k int) float64 {
	return 2 * math.Exp(float64(k)*s.logGamma) / (s.gamma + 1)
}

// Add folds one sample into the sketch. NaN and ±Inf are rejected
// (returning false) so a single bad measurement cannot poison the
// summary.
func (s *Sketch) Add(v float64) bool { return s.AddN(v, 1) }

// AddN folds n copies of one sample into the sketch.
func (s *Sketch) AddN(v float64, n uint64) bool {
	if n == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	switch {
	case v > 0:
		s.pos[s.key(v)] += n
	case v < 0:
		s.neg[s.key(-v)] += n
	default:
		s.zero += n
	}
	s.n += n
	fn := float64(n)
	s.sum += v * fn
	s.sumsq += v * v * fn
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	return true
}

// Merge folds o into s. Both sketches must share the same alpha —
// bucket boundaries are alpha-derived, so cross-alpha merges cannot
// preserve the error bound. Merging is commutative and associative; a
// nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if o.alpha != s.alpha {
		return fmt.Errorf("metrics: merging sketches with different alpha (%g vs %g)", s.alpha, o.alpha)
	}
	for k, c := range o.pos {
		s.pos[k] += c
	}
	for k, c := range o.neg {
		s.neg[k] += c
	}
	s.zero += o.zero
	s.n += o.n
	s.sum += o.sum
	s.sumsq += o.sumsq
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	return nil
}

// Rebucket returns a copy of the sketch re-bucketed at a different
// relative accuracy, so sketches built at mismatched alphas can still
// be merged. Counts, sum, mean, min, and max carry over exactly; each
// bucket's representative value is re-hashed into the target grid, so
// the quantile error bound of the result loosens to roughly
// s.Alpha() + alpha (the two grids' errors compound). With the same
// alpha (or an out-of-range one) this is just Clone.
func (s *Sketch) Rebucket(alpha float64) *Sketch {
	if s == nil {
		return nil
	}
	if alpha == s.alpha || !(alpha > 0 && alpha < 1) {
		return s.Clone()
	}
	r := NewSketch(alpha)
	for k, c := range s.pos {
		r.pos[r.key(s.bucketValue(k))] += c
	}
	for k, c := range s.neg {
		r.neg[r.key(s.bucketValue(k))] += c
	}
	r.zero = s.zero
	r.n = s.n
	r.sum = s.sum
	r.sumsq = s.sumsq
	r.min = s.min
	r.max = s.max
	return r
}

// Clone returns an independent deep copy (nil for a nil receiver).
func (s *Sketch) Clone() *Sketch {
	if s == nil {
		return nil
	}
	c := *s
	c.pos = make(map[int]uint64, len(s.pos))
	for k, v := range s.pos {
		c.pos[k] = v
	}
	c.neg = make(map[int]uint64, len(s.neg))
	for k, v := range s.neg {
		c.neg[k] = v
	}
	return &c
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]) with
// relative error at most Alpha() against an exact sample at rank
// floor(q*(N-1)). Returns 0 if empty; q is clamped to [0,1].
func (s *Sketch) Quantile(q float64) float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := uint64(q * float64(s.n-1)) // 0-based target rank

	// Walk the value order: negatives from most-negative (largest |v|
	// bucket key) to least, then zeros, then positives ascending.
	cum := uint64(0)
	for _, k := range s.sortedKeys(s.neg, true) {
		cum += s.neg[k]
		if rank < cum {
			return clamp(-s.bucketValue(k), s.min, s.max)
		}
	}
	cum += s.zero
	if rank < cum {
		return 0
	}
	for _, k := range s.sortedKeys(s.pos, false) {
		cum += s.pos[k]
		if rank < cum {
			return clamp(s.bucketValue(k), s.min, s.max)
		}
	}
	return s.max
}

// Percentile is Quantile with p in [0,100] — the Dist-compatible
// spelling.
func (s *Sketch) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// FractionBelow returns the approximate fraction of samples <= v.
func (s *Sketch) FractionBelow(v float64) float64 {
	if s == nil || s.n == 0 {
		return 0
	}
	var cum uint64
	switch {
	case v >= 0:
		for _, c := range s.neg {
			cum += c
		}
		cum += s.zero
		if v > 0 {
			kv := s.key(v)
			for k, c := range s.pos {
				if k <= kv {
					cum += c
				}
			}
		}
	default:
		kv := s.key(-v)
		for k, c := range s.neg {
			if k >= kv {
				cum += c
			}
		}
	}
	return float64(cum) / float64(s.n)
}

// sortedKeys returns m's keys sorted ascending (or descending), so
// quantile walks and serialization never depend on map iteration
// order.
func (s *Sketch) sortedKeys(m map[int]uint64, desc bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if desc {
		for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
			keys[i], keys[j] = keys[j], keys[i]
		}
	}
	return keys
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// sketchJSON is the wire form ("presto-sketch/1"): buckets as sorted
// [key, count] pairs so the encoding is deterministic and
// round-trippable — campaign artifacts and the golden gate can carry
// sketches and re-query them.
type sketchJSON struct {
	Schema string     `json:"schema"`
	Alpha  float64    `json:"alpha"`
	N      uint64     `json:"n"`
	Sum    float64    `json:"sum"`
	SumSq  float64    `json:"sumsq"`
	Min    *float64   `json:"min,omitempty"`
	Max    *float64   `json:"max,omitempty"`
	Zero   uint64     `json:"zero,omitempty"`
	Pos    [][2]int64 `json:"pos,omitempty"`
	Neg    [][2]int64 `json:"neg,omitempty"`
}

const sketchSchema = "presto-sketch/1"

func bucketPairs(s *Sketch, m map[int]uint64) [][2]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make([][2]int64, 0, len(m))
	for _, k := range s.sortedKeys(m, false) {
		out = append(out, [2]int64{int64(k), int64(m[k])})
	}
	return out
}

// MarshalJSON encodes the sketch deterministically (buckets sorted by
// key).
func (s *Sketch) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	j := sketchJSON{
		Schema: sketchSchema,
		Alpha:  s.alpha,
		N:      s.n,
		Sum:    s.sum,
		SumSq:  s.sumsq,
		Zero:   s.zero,
		Pos:    bucketPairs(s, s.pos),
		Neg:    bucketPairs(s, s.neg),
	}
	if s.n > 0 {
		mn, mx := s.min, s.max
		j.Min, j.Max = &mn, &mx
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a sketch previously produced by MarshalJSON.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var j sketchJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Schema != sketchSchema {
		return fmt.Errorf("metrics: sketch schema %q, want %q", j.Schema, sketchSchema)
	}
	if !(j.Alpha > 0 && j.Alpha < 1) {
		return fmt.Errorf("metrics: sketch alpha %g out of (0,1)", j.Alpha)
	}
	fresh := NewSketch(j.Alpha)
	*s = *fresh
	s.n = j.N
	s.sum = j.Sum
	s.sumsq = j.SumSq
	s.zero = j.Zero
	if j.Min != nil {
		s.min = *j.Min
	}
	if j.Max != nil {
		s.max = *j.Max
	}
	load := func(dst map[int]uint64, pairs [][2]int64) error {
		for _, p := range pairs {
			if p[1] < 0 {
				return fmt.Errorf("metrics: malformed sketch bucket %v", p)
			}
			dst[int(p[0])] += uint64(p[1])
		}
		return nil
	}
	if err := load(s.pos, j.Pos); err != nil {
		return err
	}
	if err := load(s.neg, j.Neg); err != nil {
		return err
	}
	// Cross-field consistency: a hand-edited or truncated artifact must
	// fail loudly here, not yield silently wrong quantiles later.
	var mass uint64
	for _, c := range s.pos {
		mass += c
	}
	for _, c := range s.neg {
		mass += c
	}
	mass += s.zero
	if mass != s.n {
		return fmt.Errorf("metrics: sketch n=%d disagrees with bucket mass %d", s.n, mass)
	}
	if s.n > 0 {
		if j.Min == nil || j.Max == nil {
			return fmt.Errorf("metrics: sketch with n=%d is missing min/max", s.n)
		}
		if !(s.min <= s.max) {
			return fmt.Errorf("metrics: sketch min %g > max %g", s.min, s.max)
		}
	}
	return nil
}
