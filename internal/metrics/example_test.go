package metrics_test

import (
	"fmt"

	"presto/internal/metrics"
)

func ExampleDist() {
	var d metrics.Dist
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	fmt.Printf("p50=%.0f p99=%.0f max=%.0f\n", d.Percentile(50), d.Percentile(99), d.Max())
	// Output: p50=500 p99=990 max=1000
}

func ExampleJainIndex() {
	fair := metrics.JainIndex([]float64{9.3, 9.3, 9.3, 9.3})
	unfair := metrics.JainIndex([]float64{9.3, 1.0, 1.0, 1.0})
	fmt.Printf("fair=%.2f unfair=%.2f\n", fair, unfair)
	// Output: fair=1.00 unfair=0.42
}

func ExampleTable() {
	t := metrics.Table{Header: []string{"scheme", "Gbps"}}
	t.AddRow("ECMP", "5.7")
	t.AddRow("Presto", "9.3")
	fmt.Print(t.String())
	// Output:
	// scheme  Gbps
	// ECMP    5.7
	// Presto  9.3
}
