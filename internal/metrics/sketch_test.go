package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// adversarialSamples generates n samples engineered to stress the
// sketch's bucket mapping: ten orders of magnitude, heavy tails,
// exact duplicates, zeros, negatives, and denormal-adjacent tinies.
func adversarialSamples(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, n)
	for len(out) < n {
		switch rng.Intn(8) {
		case 0: // log-uniform across ten decades
			out = append(out, math.Pow(10, rng.Float64()*10-5))
		case 1: // heavy tail (Pareto-ish)
			out = append(out, 1/math.Pow(rng.Float64()+1e-9, 2))
		case 2: // exact duplicates in a run
			v := rng.Float64() * 100
			for i := 0; i < 16 && len(out) < n; i++ {
				out = append(out, v)
			}
		case 3: // zeros
			out = append(out, 0)
		case 4: // negatives across decades
			out = append(out, -math.Pow(10, rng.Float64()*6-3))
		case 5: // near-identical cluster around 1.0 (bucket boundary stress)
			out = append(out, 1+rng.Float64()*1e-6)
		case 6: // tiny positives
			out = append(out, math.Pow(10, -rng.Float64()*30))
		default: // plain uniform
			out = append(out, rng.Float64()*1e4)
		}
	}
	return out[:n]
}

// relErr computes |got-want|/|want| (absolute when want == 0).
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if want == 0 {
		return d
	}
	return d / math.Abs(want)
}

// TestSketchRelativeErrorBound is the headline property: on >= 1e6
// adversarial samples, every quantile estimate stays within the
// documented alpha of the exact sample at the same rank, while the
// sketch holds orders of magnitude fewer counters than samples.
func TestSketchRelativeErrorBound(t *testing.T) {
	const n = 1_000_000
	const alpha = 0.01
	samples := adversarialSamples(n, 1)

	s := NewSketch(alpha)
	exact := append([]float64(nil), samples...)
	for _, v := range samples {
		if !s.Add(v) {
			t.Fatalf("Add(%v) rejected a finite sample", v)
		}
	}
	sort.Float64s(exact)

	if s.N() != n {
		t.Fatalf("N = %d, want %d", s.N(), n)
	}
	if got := s.Buckets(); got > 5000 {
		t.Fatalf("sketch uses %d buckets for %d samples; memory bound broken", got, n)
	}

	for _, q := range []float64{0, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 0.9999, 1} {
		rank := int(q * float64(n-1))
		want := exact[rank]
		got := s.Quantile(q)
		if re := relErr(got, want); re > alpha+1e-9 {
			t.Errorf("Quantile(%v) = %v, exact rank value %v, relative error %.4g > alpha %.4g",
				q, got, want, re, alpha)
		}
	}

	// Exact moments survive the sketching.
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if re := relErr(s.Sum(), sum); re > 1e-9 {
		t.Errorf("Sum drifted: %v vs %v", s.Sum(), sum)
	}
	if s.Min() != exact[0] || s.Max() != exact[n-1] {
		t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min(), s.Max(), exact[0], exact[n-1])
	}
}

// TestSketchMergeCommutativeAssociative checks merge(a,b) == merge(b,a)
// and merge(merge(a,b),c) == merge(a,merge(b,c)) on every quantile.
func TestSketchMergeCommutativeAssociative(t *testing.T) {
	const alpha = 0.02
	build := func(seed int64, n int) *Sketch {
		s := NewSketch(alpha)
		for _, v := range adversarialSamples(n, seed) {
			s.Add(v)
		}
		return s
	}
	a, b, c := build(10, 40_000), build(11, 25_000), build(12, 33_000)

	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	abc1 := ab.Clone()
	if err := abc1.Merge(c); err != nil {
		t.Fatal(err)
	}
	bc := b.Clone()
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	abc2 := a.Clone()
	if err := abc2.Merge(bc); err != nil {
		t.Fatal(err)
	}

	qs := []float64{0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1}
	for _, q := range qs {
		if x, y := ab.Quantile(q), ba.Quantile(q); x != y {
			t.Errorf("commutativity: q=%v: %v vs %v", q, x, y)
		}
		if x, y := abc1.Quantile(q), abc2.Quantile(q); x != y {
			t.Errorf("associativity: q=%v: %v vs %v", q, x, y)
		}
	}
	if ab.N() != a.N()+b.N() {
		t.Errorf("merged N = %d, want %d", ab.N(), a.N()+b.N())
	}
}

// TestSketchShardedMergeEqualsSingleStream: splitting one stream across
// k shards and merging must give bit-identical quantiles to sketching
// the stream directly — the property the campaign runner relies on to
// merge per-replica sketches.
func TestSketchShardedMergeEqualsSingleStream(t *testing.T) {
	const alpha = 0.01
	samples := adversarialSamples(200_000, 7)

	single := NewSketch(alpha)
	for _, v := range samples {
		single.Add(v)
	}

	const shards = 7
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = NewSketch(alpha)
	}
	for i, v := range samples {
		parts[i%shards].Add(v)
	}
	merged := NewSketch(alpha)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}

	if merged.N() != single.N() || merged.Min() != single.Min() || merged.Max() != single.Max() {
		t.Fatalf("shard merge lost counts or extremes")
	}
	for q := 0.0; q <= 1.0; q += 0.005 {
		if a, b := merged.Quantile(q), single.Quantile(q); a != b {
			t.Fatalf("q=%v: sharded %v != single-stream %v", q, a, b)
		}
	}
}

func TestSketchMergeAlphaMismatch(t *testing.T) {
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different alpha must error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge should be a no-op: %v", err)
	}
	if err := a.Merge(NewSketch(0.5)); err != nil {
		t.Fatalf("empty merge should be a no-op regardless of alpha: %v", err)
	}
}

func TestSketchRejectsNonFinite(t *testing.T) {
	s := NewSketch(0.01)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if s.Add(v) {
			t.Errorf("Add(%v) accepted", v)
		}
	}
	if s.N() != 0 {
		t.Fatalf("non-finite samples counted: N=%d", s.N())
	}
	s.Add(1)
	if s.N() != 1 || s.Quantile(0.5) == 0 {
		t.Fatal("finite sample after rejects mishandled")
	}
}

// TestSketchJSONRoundTrip: marshal → unmarshal must preserve every
// quantile bit-identically and the encoding must be deterministic.
func TestSketchJSONRoundTrip(t *testing.T) {
	s := NewSketch(0.01)
	for _, v := range adversarialSamples(50_000, 3) {
		s.Add(v)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("sketch JSON encoding is not deterministic")
	}

	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != s.N() || back.Sum() != s.Sum() || back.Min() != s.Min() || back.Max() != s.Max() {
		t.Fatalf("round trip lost exact stats: N %d/%d sum %v/%v", back.N(), s.N(), back.Sum(), s.Sum())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if a, b := back.Quantile(q), s.Quantile(q); a != b {
			t.Fatalf("q=%v diverged after round trip: %v vs %v", q, a, b)
		}
	}
	// A decoded sketch must keep merging with live ones.
	if err := back.Merge(s); err != nil {
		t.Fatal(err)
	}
	if back.N() != 2*s.N() {
		t.Fatal("decoded sketch cannot merge")
	}
}

func TestSketchJSONRejectsBadInput(t *testing.T) {
	var s Sketch
	for _, bad := range []string{
		`{"schema":"other/1","alpha":0.01}`,
		`{"schema":"presto-sketch/1","alpha":0}`,
		`{"schema":"presto-sketch/1","alpha":1.5}`,
		`{"schema":"presto-sketch/1","alpha":0.01,"pos":[[1,-2]]}`,
		// n disagrees with zero + bucket mass.
		`{"schema":"presto-sketch/1","alpha":0.01,"n":5,"min":1,"max":2,"pos":[[1,2]]}`,
		// min > max.
		`{"schema":"presto-sketch/1","alpha":0.01,"n":2,"min":3,"max":1,"pos":[[1,2]]}`,
		// Non-empty but missing min/max.
		`{"schema":"presto-sketch/1","alpha":0.01,"n":2,"pos":[[1,2]]}`,
	} {
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("accepted bad sketch %s", bad)
		}
	}
}

func TestSketchEmptyAndNil(t *testing.T) {
	var nilS *Sketch
	if nilS.N() != 0 || nilS.Quantile(0.5) != 0 || nilS.Mean() != 0 || nilS.Buckets() != 0 {
		t.Fatal("nil sketch reads must return zeros")
	}
	s := NewSketch(0.01)
	if s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch reads must return zeros")
	}
}

func TestSketchNegativeOnly(t *testing.T) {
	s := NewSketch(0.01)
	exact := make([]float64, 0, 1000)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		v := -math.Pow(10, rng.Float64()*4-2)
		s.Add(v)
		exact = append(exact, v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		rank := int(q * float64(len(exact)-1))
		if re := relErr(s.Quantile(q), exact[rank]); re > 0.01+1e-9 {
			t.Errorf("negative-only q=%v relative error %.4g", q, re)
		}
	}
}

// TestSketchRebucket: re-bucketing to a different alpha must keep the
// exact stats bit-identical, keep quantiles within the compounded
// bound alpha_old + alpha_new, and make the result mergeable with
// sketches built natively at the target alpha.
func TestSketchRebucket(t *testing.T) {
	const from, to = 0.005, 0.02
	samples := adversarialSamples(100_000, 11)
	src := NewSketch(from)
	for _, v := range samples {
		src.Add(v)
	}
	r := src.Rebucket(to)
	if r.Alpha() != to {
		t.Fatalf("Alpha = %v, want %v", r.Alpha(), to)
	}
	if r.N() != src.N() || r.Sum() != src.Sum() || r.Min() != src.Min() || r.Max() != src.Max() {
		t.Fatal("exact stats drifted through Rebucket")
	}
	exact := append([]float64(nil), samples...)
	sort.Float64s(exact)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		rank := int(q * float64(len(exact)-1))
		if re := relErr(r.Quantile(q), exact[rank]); re > from+to+1e-9 {
			t.Errorf("q=%v relative error %.4g > %.4g after rebucket", q, re, from+to)
		}
	}
	if err := NewSketch(to).Merge(r); err != nil {
		t.Fatalf("rebucketed sketch does not merge at target alpha: %v", err)
	}
	// Same (or invalid) alpha degenerates to an independent clone.
	c := src.Rebucket(from)
	c.Add(1)
	if c.N() != src.N()+1 || src.Quantile(0.5) != src.Rebucket(0).Quantile(0.5) {
		t.Fatal("same-alpha Rebucket must be an independent clone")
	}
	if (*Sketch)(nil).Rebucket(0.01) != nil {
		t.Fatal("nil Rebucket must be nil")
	}
}

// --- Dist sketch mode -------------------------------------------------

func TestDistAddRejectsNonFinite(t *testing.T) {
	var d Dist
	d.Add(3)
	d.Add(math.NaN())
	d.Add(math.Inf(1))
	d.Add(math.Inf(-1))
	d.Add(1)
	if d.N() != 2 {
		t.Fatalf("N = %d, want 2 (non-finite samples must be dropped)", d.N())
	}
	if d.Min() != 1 || d.Max() != 3 {
		t.Fatalf("Min/Max = %v/%v, want 1/3", d.Min(), d.Max())
	}
	if got := d.Mean(); math.IsNaN(got) || got != 2 {
		t.Fatalf("Mean = %v, want 2 (NaN poisoned the mean)", got)
	}
	if got := d.Percentile(50); math.IsNaN(got) {
		t.Fatalf("Percentile(50) = NaN")
	}
	// Sketch mode rejects too.
	sd := NewSketchDist(0.01)
	sd.Add(math.NaN())
	sd.Add(2)
	if sd.N() != 1 {
		t.Fatalf("sketch-backed N = %d, want 1", sd.N())
	}
}

func TestDistSketchModeMatchesExactWithinAlpha(t *testing.T) {
	const alpha = 0.01
	var exact Dist
	sk := NewSketchDist(alpha)
	samples := adversarialSamples(100_000, 9)
	for _, v := range samples {
		exact.Add(v)
		sk.Add(v)
	}
	if !sk.SketchBacked() || exact.SketchBacked() {
		t.Fatal("mode flags wrong")
	}
	if sk.N() != exact.N() || sk.Mean() != exact.Mean() || sk.Min() != exact.Min() || sk.Max() != exact.Max() {
		t.Fatal("exact stats must match in sketch mode")
	}
	sorted := exact.Samples()
	for _, p := range []float64{1, 10, 50, 90, 99, 99.9} {
		rank := int(p / 100 * float64(len(sorted)-1))
		if re := relErr(sk.Percentile(p), sorted[rank]); re > alpha+1e-9 {
			t.Errorf("p%v: relative error %.4g > %v", p, re, alpha)
		}
	}
	if sk.Samples() != nil {
		t.Fatal("sketch-backed Samples() must be nil")
	}
	if cdf := sk.CDF(16); len(cdf) != 16 {
		t.Fatalf("sketch CDF has %d points, want 16", len(cdf))
	} else {
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
				t.Fatal("sketch CDF not monotonic")
			}
		}
	}
	if s := sk.Summary("ms"); s == "" {
		t.Fatal("empty summary")
	}
}

func TestDistSpillAtThreshold(t *testing.T) {
	var d Dist
	d.SpillAt(1000, 0.01)
	for i := 0; i < 999; i++ {
		d.Add(float64(i))
	}
	if d.SketchBacked() {
		t.Fatal("spilled before threshold")
	}
	d.Add(999)
	if !d.SketchBacked() {
		t.Fatal("did not spill at threshold")
	}
	for i := 1000; i < 2000; i++ {
		d.Add(float64(i))
	}
	if d.N() != 2000 {
		t.Fatalf("N = %d, want 2000", d.N())
	}
	if re := relErr(d.Percentile(50), 999.5); re > 0.011 {
		t.Fatalf("post-spill p50 = %v, relative error %.4g", d.Percentile(50), re)
	}
	if d.Mean() != 999.5 {
		t.Fatalf("post-spill mean = %v, want 999.5 (exact)", d.Mean())
	}
	// Arming after the fact spills immediately.
	var d2 Dist
	for i := 0; i < 50; i++ {
		d2.Add(float64(i))
	}
	d2.SpillAt(10, 0.01)
	if !d2.SketchBacked() {
		t.Fatal("SpillAt on an over-threshold Dist must spill immediately")
	}
}

func TestDistSketchAccessor(t *testing.T) {
	var d Dist
	if d.Sketch(0.01) != nil {
		t.Fatal("empty Dist sketch must be nil")
	}
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	s := d.Sketch(0.01)
	if s.N() != 100 || relErr(s.Quantile(0.5), 50) > 0.011 {
		t.Fatalf("derived sketch wrong: N=%d p50=%v", s.N(), s.Quantile(0.5))
	}
	// Clone independence for sketch-backed mode.
	sd := NewSketchDist(0.01)
	sd.Add(1)
	c := sd.Sketch(0)
	c.Add(2)
	if sd.N() != 1 {
		t.Fatal("Sketch() exposed live internal state")
	}
	// A sketch-backed Dist must honor the requested alpha so the
	// result merges with peers built at that alpha (re-bucketing when
	// the backing alpha differs).
	other := NewSketchDist(0.05)
	for i := 1; i <= 100; i++ {
		other.Add(float64(i))
	}
	got := other.Sketch(0.01)
	if got.Alpha() != 0.01 {
		t.Fatalf("Sketch(0.01) on an alpha=0.05 Dist returned alpha %v", got.Alpha())
	}
	if err := d.Sketch(0.01).Merge(got); err != nil {
		t.Fatalf("cross-Dist merge at a common alpha failed: %v", err)
	}
}

// --- benchmarks: sorted-flag caching and sketch throughput ------------

// BenchmarkDistPercentileCached proves repeated percentile queries on
// an unchanged Dist do not re-sort: with 1e6 samples a re-sort costs
// ~100ms while the cached path is a few ns.
func BenchmarkDistPercentileCached(b *testing.B) {
	var d Dist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000_000; i++ {
		d.Add(rng.Float64())
	}
	d.Percentile(50) // prime the sort
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Percentile(99)
		d.Percentile(99.9)
		_ = d.CDF(16)
		_ = d.Max()
	}
}

// BenchmarkDistPercentileResort is the contrast case: an Add between
// queries invalidates the cache and forces a re-sort per iteration.
func BenchmarkDistPercentileResort(b *testing.B) {
	var d Dist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		d.Add(rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(rng.Float64())
		d.Percentile(99)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch(0.01)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = math.Pow(10, rng.Float64()*6-3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&4095])
	}
}

func BenchmarkSketchQuantile(b *testing.B) {
	s := NewSketch(0.01)
	for _, v := range adversarialSamples(1_000_000, 2) {
		s.Add(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.99)
	}
}
