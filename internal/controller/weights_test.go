package controller

import (
	"testing"
	"testing/quick"

	"presto/internal/fabric"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

func countLabels(seq []packet.MAC) map[packet.MAC]int {
	m := map[packet.MAC]int{}
	for _, l := range seq {
		m[l]++
	}
	return m
}

func TestWeightedLabelsPaperExample(t *testing.T) {
	// §3.3: weights 0.25/0.5/0.25 over p1,p2,p3 -> p2 appears twice in
	// a 4-slot sequence.
	p1, p2, p3 := packet.ShadowMAC(1, 0), packet.ShadowMAC(1, 1), packet.ShadowMAC(1, 2)
	seq := WeightedLabels([]packet.MAC{p1, p2, p3}, []float64{0.25, 0.5, 0.25}, 8)
	if len(seq) != 4 {
		t.Fatalf("sequence length %d, want 4: %v", len(seq), seq)
	}
	c := countLabels(seq)
	if c[p1] != 1 || c[p2] != 2 || c[p3] != 1 {
		t.Fatalf("counts %v, want 1/2/1", c)
	}
	// Duplicates interleaved, not adjacent.
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			t.Fatalf("adjacent duplicates in %v", seq)
		}
	}
}

func TestWeightedLabelsEqualWeights(t *testing.T) {
	p1, p2 := packet.ShadowMAC(1, 0), packet.ShadowMAC(1, 1)
	seq := WeightedLabels([]packet.MAC{p1, p2}, []float64{1, 1}, 16)
	c := countLabels(seq)
	if c[p1] != c[p2] {
		t.Fatalf("equal weights uneven: %v", c)
	}
}

func TestWeightedLabelsDegenerate(t *testing.T) {
	p1 := packet.ShadowMAC(1, 0)
	if WeightedLabels(nil, nil, 4) != nil {
		t.Fatal("nil input should return nil")
	}
	if WeightedLabels([]packet.MAC{p1}, []float64{0}, 4) != nil {
		t.Fatal("all-zero weights should return nil")
	}
	if got := WeightedLabels([]packet.MAC{p1}, []float64{5}, 4); len(got) != 1 {
		t.Fatalf("single label: %v", got)
	}
}

// Property: realized label frequencies approximate the requested
// weights within the resolution of the slot budget.
func TestWeightedLabelsAccuracyProperty(t *testing.T) {
	prop := func(w1, w2, w3 uint8) bool {
		ws := []float64{float64(w1%9) + 1, float64(w2%9) + 1, float64(w3%9) + 1}
		labels := []packet.MAC{packet.ShadowMAC(1, 0), packet.ShadowMAC(1, 1), packet.ShadowMAC(1, 2)}
		seq := WeightedLabels(labels, ws, 32)
		if len(seq) == 0 || len(seq) > 32 {
			return false
		}
		counts := countLabels(seq)
		sum := ws[0] + ws[1] + ws[2]
		for i, l := range labels {
			got := float64(counts[l]) / float64(len(seq))
			want := ws[i] / sum
			if got < want-0.15 || got > want+0.15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetWeightedMapping(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(3, 2, 1, 1, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	c := New(eng, net, Config{})
	vs := vswitch.New(eng, 0, nullSender{}, vswitch.NewPresto())
	c.RegisterVSwitch(vs)
	c.InstallAll()
	if !c.SetWeightedMapping(0, 1, []float64{0.5, 0.25, 0.25}, 8) {
		t.Fatal("SetWeightedMapping failed")
	}
	seq := vs.Mapping(1)
	counts := map[int]int{}
	for _, m := range seq {
		counts[m.ShadowTree()]++
	}
	if counts[0] != 2*counts[1] || counts[1] != counts[2] {
		t.Fatalf("weighted mapping counts: %v", counts)
	}
	// Wrong weight count is rejected.
	if c.SetWeightedMapping(0, 1, []float64{1}, 8) {
		t.Fatal("mismatched weights accepted")
	}
}
