package controller

import (
	"testing"

	"presto/internal/fabric"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

type nullSender struct{}

func (nullSender) SendSegment(*packet.Segment) {}

func rig(t *testing.T, spines, leaves, hostsPer int) (*sim.Engine, *fabric.Network, *Controller, map[packet.HostID]*vswitch.VSwitch) {
	t.Helper()
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(spines, leaves, hostsPer, 1, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	c := New(eng, net, Config{})
	vss := make(map[packet.HostID]*vswitch.VSwitch)
	for i := 0; i < tp.NumHosts(); i++ {
		h := packet.HostID(i)
		vs := vswitch.New(eng, h, nullSender{}, vswitch.NewPresto())
		vss[h] = vs
		c.RegisterVSwitch(vs)
	}
	return eng, net, c, vss
}

func TestInstallAllPushesMappings(t *testing.T) {
	_, _, c, vss := rig(t, 4, 4, 4)
	c.InstallAll()
	if len(c.Trees()) != 4 {
		t.Fatalf("%d trees", len(c.Trees()))
	}
	// Cross-leaf destination: 4 labels (one per tree).
	macs := vss[0].Mapping(12)
	if len(macs) != 4 {
		t.Fatalf("host0->host12 has %d labels, want 4", len(macs))
	}
	for i, m := range macs {
		if !m.IsShadow() || m.Host() != 12 || m.ShadowTree() != i {
			t.Fatalf("label %d = %v", i, m)
		}
	}
	// Same-leaf destination: no labels.
	if got := vss[0].Mapping(1); len(got) != 0 {
		t.Fatalf("same-leaf mapping = %v, want none", got)
	}
}

func TestInstallAllInstallsSwitchLabels(t *testing.T) {
	_, net, c, _ := rig(t, 4, 4, 4)
	c.InstallAll()
	// Each leaf holds one entry per (host, tree): 16*4 = 64.
	for _, leaf := range net.Topo.Leaves {
		if got := net.Switch(leaf).LabelCount(); got != 64 {
			t.Fatalf("leaf label count = %d, want 64", got)
		}
	}
	// Each spine holds entries for its own tree only: 16.
	for _, s := range net.Topo.Spines {
		if got := net.Switch(s).LabelCount(); got != 16 {
			t.Fatalf("spine label count = %d, want 16", got)
		}
	}
}

func TestEndToEndDeliveryOnAllTrees(t *testing.T) {
	eng, net, c, _ := rig(t, 4, 4, 1)
	c.InstallAll()
	got := 0
	net.AttachHost(3, handlerFunc(func(p *packet.Packet) { got++ }))
	for _, tr := range c.Trees() {
		p := &packet.Packet{
			SrcMAC:  packet.HostMAC(0),
			DstMAC:  packet.ShadowMAC(3, tr.Index),
			Flow:    packet.FlowKey{Src: packet.Addr{Host: 0, Port: 1}, Dst: packet.Addr{Host: 3, Port: 2}},
			Payload: 100,
		}
		net.SendFromHost(0, p)
	}
	eng.RunAll()
	if got != 4 {
		t.Fatalf("delivered %d, want 4", got)
	}
}

type handlerFunc func(*packet.Packet)

func (f handlerFunc) HandlePacket(p *packet.Packet) { f(p) }

func TestFailurePrunesAffectedMappings(t *testing.T) {
	eng, net, c, vss := rig(t, 4, 4, 2)
	c.InstallAll()
	// Fail the tree-0 link between its spine and leaf 0.
	tr0 := c.Trees()[0]
	bad := tr0.LeafLink[net.Topo.Leaves[0]]
	net.FailLink(bad)
	c.HandleLinkFailure(bad)

	// Before the update latency: mappings unchanged.
	if got := vss[0].Mapping(6); len(got) != 4 {
		t.Fatalf("mappings changed early: %d", len(got))
	}
	eng.Run(sim.Second)

	// Host0 (leaf0) -> host6 (leaf3): tree 0 unusable (srcLeaf side).
	macs := vss[0].Mapping(6)
	if len(macs) != 3 {
		t.Fatalf("pruned mapping has %d labels, want 3", len(macs))
	}
	for _, m := range macs {
		if m.ShadowTree() == 0 {
			t.Fatal("broken tree still mapped")
		}
	}
	// Reverse direction (into leaf0) equally pruned.
	if got := vss[6].Mapping(0); len(got) != 3 {
		t.Fatalf("reverse mapping has %d labels", len(got))
	}
	// Unaffected pair (leaf1 <-> leaf2) keeps all four trees.
	if got := vss[2].Mapping(4); len(got) != 4 {
		t.Fatalf("unaffected mapping has %d labels, want 4", len(got))
	}
}

func TestRestoreReinstatesMappings(t *testing.T) {
	eng, net, c, vss := rig(t, 2, 2, 1)
	c.InstallAll()
	bad := c.Trees()[0].LeafLink[net.Topo.Leaves[0]]
	net.FailLink(bad)
	c.HandleLinkFailure(bad)
	eng.Run(sim.Second)
	if got := vss[0].Mapping(1); len(got) != 1 {
		t.Fatalf("after failure: %d labels", len(got))
	}
	net.RestoreLink(bad)
	c.HandleLinkRestore(bad)
	eng.Run(2 * sim.Second)
	if got := vss[0].Mapping(1); len(got) != 2 {
		t.Fatalf("after restore: %d labels, want 2", len(got))
	}
}

func TestSingleSwitchTopologyNoLabels(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.SingleSwitch(4, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	c := New(eng, net, Config{})
	vs := vswitch.New(eng, 0, nullSender{}, vswitch.NewPresto())
	c.RegisterVSwitch(vs)
	c.InstallAll()
	if got := vs.Mapping(3); len(got) != 0 {
		t.Fatalf("single switch should use real MACs, got %v", got)
	}
}

func TestTunnelModeRuleCounts(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(4, 4, 4, 1, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	c := New(eng, net, Config{TunnelMode: true})
	vs := vswitch.New(eng, 0, nullSender{}, vswitch.NewPresto())
	c.RegisterVSwitch(vs)
	c.InstallAll()
	// Per-host mode needs 16 hosts x 4 trees = 64 entries per leaf;
	// tunnel mode needs (4-1 destination leaves) x 4 trees = 12.
	for _, leaf := range tp.Leaves {
		if got := net.Switch(leaf).LabelCount(); got != 12 {
			t.Fatalf("tunnel leaf label count = %d, want 12", got)
		}
	}
	// Spines hold one entry per destination leaf for their own tree.
	for _, s := range tp.Spines {
		if got := net.Switch(s).LabelCount(); got != 4 {
			t.Fatalf("tunnel spine label count = %d, want 4", got)
		}
	}
	// Mappings hand out tunnel labels.
	macs := vs.Mapping(12)
	if len(macs) != 4 {
		t.Fatalf("%d labels", len(macs))
	}
	for _, m := range macs {
		if !m.IsTunnel() || m.TunnelLeaf() != 3 {
			t.Fatalf("bad tunnel label %v", m)
		}
	}
}

func TestTunnelModeEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	c := New(eng, net, Config{TunnelMode: true})
	c.InstallAll()
	got := 0
	net.AttachHost(3, handlerFunc(func(p *packet.Packet) { got++ }))
	for _, tr := range c.Trees() {
		p := &packet.Packet{
			SrcMAC:  packet.HostMAC(0),
			DstMAC:  packet.TunnelMAC(1, tr.Index), // leaf 1 hosts 2,3
			Flow:    packet.FlowKey{Src: packet.Addr{Host: 0, Port: 1}, Dst: packet.Addr{Host: 3, Port: 2}},
			Payload: 100,
		}
		net.SendFromHost(0, p)
	}
	eng.RunAll()
	if got != len(c.Trees()) {
		t.Fatalf("delivered %d, want %d", got, len(c.Trees()))
	}
}
