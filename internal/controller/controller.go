// Package controller implements Presto's centralized controller
// (§3.1, §3.3): it partitions a 2-tier Clos into disjoint spanning
// trees (one per spine × parallel link), assigns each host one shadow
// MAC per tree, installs the label-forwarding rules into the switches,
// and pushes destination→label-list mappings to the edge vSwitches.
//
// On failure it relies on the fabric's hardware fast failover for the
// first milliseconds, then — after its own (slower) reaction latency —
// recomputes weighted mappings that exclude trees broken for each
// source/destination leaf pair and disseminates them to the edge.
package controller

import (
	"presto/internal/fabric"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

// Config tunes controller behaviour.
type Config struct {
	// UpdateLatency is how long after a failure the controller's new
	// weighted mappings reach the vSwitches (the failover→weighted
	// stage boundary in Figure 17). Hardware failover covers the gap.
	UpdateLatency sim.Time
	// TunnelMode installs switch-to-switch tunnel labels — one per
	// (destination leaf, tree) — instead of per-host shadow MACs,
	// trading O(|vSwitches| x |paths|) rules for
	// O(|switches| x |paths|) (§3.1's scalability extension, as in
	// MOOSE/NetLord). The destination edge switch forwards on L3.
	TunnelMode bool
	// TreeWeights, when set, weights the usable trees for each
	// (source leaf, destination leaf) pair; the controller encodes the
	// weights as duplicated labels in the pushed mapping (the §3.3
	// mechanism). Schemes provide this through their registry hooks.
	TreeWeights func(tp *topo.Topology, trees []topo.Tree, srcLeaf, dstLeaf topo.NodeID) []float64
	// WeightSlots bounds the expanded label list length (0 = 16).
	WeightSlots int
}

// DefaultConfig uses a 50 ms control loop — fast for a controller,
// slow next to hardware failover, as in §3.3.
func DefaultConfig() Config { return Config{UpdateLatency: 50 * sim.Millisecond} }

// Controller is the central brain.
type Controller struct {
	eng  *sim.Engine
	net  *fabric.Network
	topo *topo.Topology
	cfg  Config

	trees     []topo.Tree
	vswitches map[packet.HostID]*vswitch.VSwitch

	// Updates counts mapping pushes (initial install + failure
	// recomputes).
	Updates int
}

// New creates a controller for the given running fabric.
func New(eng *sim.Engine, net *fabric.Network, cfg Config) *Controller {
	if cfg.UpdateLatency == 0 {
		cfg.UpdateLatency = DefaultConfig().UpdateLatency
	}
	return &Controller{
		eng:       eng,
		net:       net,
		topo:      net.Topo,
		cfg:       cfg,
		vswitches: make(map[packet.HostID]*vswitch.VSwitch),
	}
}

// RegisterVSwitch attaches an edge vSwitch to the controller.
func (c *Controller) RegisterVSwitch(vs *vswitch.VSwitch) {
	c.vswitches[vs.Host] = vs
}

// Trees returns the allocated spanning trees (stable indices).
func (c *Controller) Trees() []topo.Tree { return c.trees }

// InstallAll allocates the spanning trees, installs one label per
// (host, tree) at every switch on each tree, and pushes the initial
// destination→labels mappings to all registered vSwitches.
func (c *Controller) InstallAll() {
	// RootedTrees covers every shape: Route-table trees for 3-tier and
	// leaf-mesh topologies, LeafLink trees for 2-tier/single-switch.
	c.trees = c.topo.RootedTrees()
	if c.cfg.TunnelMode {
		c.installTunnels()
		c.pushMappings()
		return
	}
	if len(c.trees) > 0 && c.trees[0].Route != nil {
		c.installRooted()
		c.pushMappings()
		return
	}
	for _, tr := range c.trees {
		for _, hostNode := range c.topo.Hosts {
			host := c.topo.Nodes[hostNode].Host
			if c.topo.SpineAttached(host) {
				// Remote users hang off spines and are reached by
				// L3/real-MAC forwarding, never labels (§6).
				continue
			}
			label := packet.ShadowMAC(host, tr.Index)
			hostLeaf := c.topo.LeafOf(host)
			for _, leaf := range c.topo.Leaves {
				sw := c.net.Switch(leaf)
				if leaf == hostLeaf {
					sw.InstallLabel(label, c.topo.HostLink(host))
				} else if lid, ok := tr.LeafLink[leaf]; ok {
					sw.InstallLabel(label, lid)
				}
				sw.SetNumTrees(len(c.trees))
			}
			if len(c.topo.Spines) > 0 {
				if lid, ok := tr.LeafLink[hostLeaf]; ok {
					sw := c.net.Switch(tr.Spine)
					sw.InstallLabel(label, lid)
					sw.SetNumTrees(len(c.trees))
				}
			}
		}
	}
	c.pushMappings()
}

// installRooted installs per-host labels along rooted (3-tier) trees:
// at every switch the tree's Route covers, the label's egress is the
// tree edge toward the host's leaf; the host's own leaf forwards to
// the host port.
func (c *Controller) installRooted() {
	for _, tr := range c.trees {
		for _, hostNode := range c.topo.Hosts {
			host := c.topo.Nodes[hostNode].Host
			if c.topo.SpineAttached(host) {
				continue
			}
			label := packet.ShadowMAC(host, tr.Index)
			hostLeaf := c.topo.LeafOf(host)
			for sw := range tr.Route {
				node := c.net.Switch(sw)
				node.SetNumTrees(len(c.trees))
				if sw == hostLeaf {
					node.InstallLabel(label, c.topo.HostLink(host))
					continue
				}
				if lid, ok := tr.NextLink(sw, hostLeaf); ok {
					node.InstallLabel(label, lid)
				}
			}
			// The host's leaf may not appear in Route (it has no
			// forwarding decisions for other leaves' traffic in tiny
			// topologies); ensure the terminal entry exists.
			leafSw := c.net.Switch(hostLeaf)
			leafSw.InstallLabel(label, c.topo.HostLink(host))
			leafSw.SetNumTrees(len(c.trees))
		}
	}
}

// installTunnels installs one label per (destination leaf, tree):
// uplink entries at every other leaf, a downlink entry at the tree's
// spine, and nothing at the terminal leaf (it forwards on L3).
func (c *Controller) installTunnels() {
	for _, tr := range c.trees {
		for di, dstLeaf := range c.topo.Leaves {
			label := packet.TunnelMAC(di, tr.Index)
			for _, leaf := range c.topo.Leaves {
				sw := c.net.Switch(leaf)
				sw.SetNumTrees(len(c.trees))
				if leaf == dstLeaf {
					continue
				}
				if lid, ok := tr.LeafLink[leaf]; ok {
					sw.InstallLabel(label, lid)
				}
			}
			if len(c.topo.Spines) > 0 {
				sw := c.net.Switch(tr.Spine)
				sw.InstallLabel(label, tr.LeafLink[dstLeaf])
				sw.SetNumTrees(len(c.trees))
			}
		}
	}
}

// leafIndex returns the position of a leaf node in Topology.Leaves.
func (c *Controller) leafIndex(leaf topo.NodeID) int {
	for i, l := range c.topo.Leaves {
		if l == leaf {
			return i
		}
	}
	return -1
}

// treeUsable reports whether tree tr currently connects the two
// leaves: every link on the tree path from srcLeaf to dstLeaf is up.
func (c *Controller) treeUsable(tr topo.Tree, srcLeaf, dstLeaf topo.NodeID) bool {
	if len(tr.LeafLink) == 0 && tr.Route == nil {
		return true // degenerate single-switch tree
	}
	at := srcLeaf
	for hops := 0; at != dstLeaf && hops < 8; hops++ {
		lid, ok := tr.NextLink(at, dstLeaf)
		if !ok || !c.net.LinkUp(lid) {
			return false
		}
		at = c.topo.Links[lid].Other(at)
	}
	return at == dstLeaf
}

// pushMappings (re)computes and disseminates per-destination label
// lists for every registered vSwitch, excluding trees broken for that
// source/destination pair. Equal weights across surviving trees; the
// duplication mechanism of §3.3 is available through
// vswitch.SetMapping for custom weighting.
func (c *Controller) pushMappings() {
	c.Updates++
	for srcHost, vs := range c.vswitches {
		srcLeaf := c.topo.LeafOf(srcHost)
		for _, dstNode := range c.topo.Hosts {
			dst := c.topo.Nodes[dstNode].Host
			if dst == srcHost {
				continue
			}
			if c.topo.SpineAttached(srcHost) || c.topo.SpineAttached(dst) {
				// Remote users (either end) use plain L3 forwarding.
				vs.SetMapping(dst, nil)
				continue
			}
			if c.topo.SameLeaf(srcHost, dst) || !c.topo.HasFabric() {
				// Direct: a single minimal path; no multipathing needed.
				vs.SetMapping(dst, nil)
				continue
			}
			dstLeaf := c.topo.LeafOf(dst)
			var macs []packet.MAC
			var usable []topo.Tree
			for _, tr := range c.trees {
				if c.treeUsable(tr, srcLeaf, dstLeaf) {
					usable = append(usable, tr)
					if c.cfg.TunnelMode {
						macs = append(macs, packet.TunnelMAC(c.leafIndex(dstLeaf), tr.Index))
					} else {
						macs = append(macs, packet.ShadowMAC(dst, tr.Index))
					}
				}
			}
			if c.cfg.TreeWeights != nil && len(macs) > 1 {
				slots := c.cfg.WeightSlots
				if slots <= 0 {
					slots = 16
				}
				w := c.cfg.TreeWeights(c.topo, usable, srcLeaf, dstLeaf)
				if seq := WeightedLabels(macs, w, slots); seq != nil {
					macs = seq
				}
			}
			vs.SetMapping(dst, macs)
		}
	}
}

// HandleLinkFailure is invoked when the fabric loses a link (the
// cluster wires fabric failures to this). The weighted-multipathing
// update lands after UpdateLatency; until then, senders keep spraying
// over the old label lists and the switches' fast failover detours
// the broken tree.
func (c *Controller) HandleLinkFailure(id topo.LinkID) {
	c.eng.Schedule(c.cfg.UpdateLatency, c.pushMappings)
}

// HandleLinkRestore re-includes recovered trees after the same
// control-loop latency.
func (c *Controller) HandleLinkRestore(id topo.LinkID) {
	c.eng.Schedule(c.cfg.UpdateLatency, c.pushMappings)
}
