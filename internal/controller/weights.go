package controller

import (
	"math"

	"presto/internal/packet"
)

// WeightedLabels approximates fractional path weights by duplicating
// labels in the round-robin sequence the vSwitch iterates over — the
// §3.3 mechanism: weights {0.25, 0.5, 0.25} over paths {p1, p2, p3}
// become the sequence p1, p2, p3, p2. maxSlots bounds the sequence
// length (on-datapath state); weights are scaled to the smallest
// integer counts that fit.
func WeightedLabels(labels []packet.MAC, weights []float64, maxSlots int) []packet.MAC {
	if len(labels) == 0 || len(labels) != len(weights) {
		return nil
	}
	if maxSlots < len(labels) {
		maxSlots = len(labels)
	}
	// Normalize, dropping non-positive weights.
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 {
		return nil
	}
	// Find the smallest total count <= maxSlots that represents the
	// ratios well: try increasing totals and keep the first whose
	// rounding error is small, falling back to the best seen.
	best := []int(nil)
	bestErr := math.Inf(1)
	for total := len(labels); total <= maxSlots; total++ {
		counts := make([]int, len(labels))
		errAcc := 0.0
		used := 0
		for i, w := range weights {
			if w <= 0 {
				continue
			}
			exact := w / sum * float64(total)
			c := int(math.Round(exact))
			if c < 1 {
				c = 1
			}
			counts[i] = c
			used += c
			errAcc += math.Abs(exact - float64(c))
		}
		if used > maxSlots {
			continue
		}
		if errAcc < bestErr-1e-12 {
			bestErr = errAcc
			best = counts
			if errAcc < 1e-9 {
				break
			}
		}
	}
	if best == nil {
		return labels
	}
	// Interleave round-robin style (largest remaining first) so the
	// duplicated sequence spreads bursts instead of clustering them.
	remaining := append([]int(nil), best...)
	var seq []packet.MAC
	for {
		idx, max := -1, 0
		for i, r := range remaining {
			if r > max {
				idx, max = i, r
			}
		}
		if idx < 0 {
			break
		}
		seq = append(seq, labels[idx])
		remaining[idx]--
		// Rotate start position by moving found counts down evenly:
		// pick next-largest each round, which interleaves naturally.
	}
	return seq
}

// SetWeightedMapping computes and pushes a weighted label list for one
// (source vSwitch, destination host) pair. Weights follow the order of
// the controller's usable trees for that pair.
func (c *Controller) SetWeightedMapping(src, dst packet.HostID, weights []float64, maxSlots int) bool {
	vs, ok := c.vswitches[src]
	if !ok {
		return false
	}
	srcLeaf := c.topo.LeafOf(src)
	dstLeaf := c.topo.LeafOf(dst)
	var labels []packet.MAC
	for _, tr := range c.trees {
		if c.treeUsable(tr, srcLeaf, dstLeaf) {
			if c.cfg.TunnelMode {
				labels = append(labels, packet.TunnelMAC(c.leafIndex(dstLeaf), tr.Index))
			} else {
				labels = append(labels, packet.ShadowMAC(dst, tr.Index))
			}
		}
	}
	if len(labels) != len(weights) {
		return false
	}
	seq := WeightedLabels(labels, weights, maxSlots)
	if seq == nil {
		return false
	}
	vs.SetMapping(dst, seq)
	return true
}
