package fabric

import (
	"fmt"

	"presto/internal/sim"
)

// LinkSample is one point in a monitored link-direction time series.
type LinkSample struct {
	At          sim.Time `json:"at_ns"`
	QueuedBytes int      `json:"queued_bytes"`
	// Utilization is the fraction of the link's capacity used over the
	// interval ending at At.
	Utilization float64 `json:"utilization"`
}

// Monitor samples per-link queue depth and interval utilization on a
// fixed period. It only reads data-plane state, so enabling it shifts
// engine sequence numbers without changing any simulated outcome; it
// is started only when telemetry is requested.
type Monitor struct {
	net      *Network
	interval sim.Time
	max      int // per-series sample cap

	lastTx    map[pipeKey]uint64
	series    map[pipeKey][]LinkSample
	truncated bool
	started   bool
}

// DefaultMonitorInterval spaces samples widely enough that multi-second
// runs stay within the default cap.
const DefaultMonitorInterval = 100 * sim.Microsecond

// DefaultMonitorSamples caps each link-direction series.
const DefaultMonitorSamples = 4096

// NewMonitor creates a monitor over n. Zero interval or cap select the
// defaults.
func NewMonitor(n *Network, interval sim.Time, maxSamples int) *Monitor {
	if interval <= 0 {
		interval = DefaultMonitorInterval
	}
	if maxSamples <= 0 {
		maxSamples = DefaultMonitorSamples
	}
	return &Monitor{
		net:      n,
		interval: interval,
		max:      maxSamples,
		lastTx:   make(map[pipeKey]uint64),
		series:   make(map[pipeKey][]LinkSample),
	}
}

// Start schedules the sampling loop. Safe to call once per monitor.
func (m *Monitor) Start() {
	if m == nil || m.started {
		return
	}
	m.started = true
	for k, p := range m.net.pipes {
		m.lastTx[k] = p.TxBytes
	}
	m.net.Eng.Schedule(m.interval, m.tick)
}

func (m *Monitor) tick() {
	now := m.net.Eng.Now()
	for k, p := range m.net.pipes {
		s := m.series[k]
		if len(s) >= m.max {
			m.truncated = true
			continue
		}
		sent := p.TxBytes - m.lastTx[k]
		m.lastTx[k] = p.TxBytes
		capBits := m.interval.Seconds() * float64(p.link.BitsPerSec)
		util := 0.0
		if capBits > 0 {
			util = float64(sent*8) / capBits
		}
		m.series[k] = append(s, LinkSample{At: now, QueuedBytes: p.QueuedBytes(), Utilization: util})
	}
	m.net.Eng.Schedule(m.interval, m.tick)
}

// Truncated reports whether any series hit the sample cap.
func (m *Monitor) Truncated() bool { return m != nil && m.truncated }

// Series returns the samples for one link direction (nil if none).
func (m *Monitor) Series(link int, from int) []LinkSample {
	if m == nil {
		return nil
	}
	for k, s := range m.series {
		if int(k.link) == link && int(k.from) == from {
			return s
		}
	}
	return nil
}

// TelemetrySnapshot summarizes each monitored series: sample count,
// queue-depth watermark seen by the sampler, and peak/mean interval
// utilization. Raw series stay in memory (see Series) rather than
// bloating every snapshot.
func (m *Monitor) TelemetrySnapshot() map[string]any {
	out := make(map[string]any, len(m.series)+2)
	for k, s := range m.series {
		if len(s) == 0 {
			continue
		}
		maxQ, peakU, sumU := 0, 0.0, 0.0
		for _, pt := range s {
			if pt.QueuedBytes > maxQ {
				maxQ = pt.QueuedBytes
			}
			if pt.Utilization > peakU {
				peakU = pt.Utilization
			}
			sumU += pt.Utilization
		}
		key := fmt.Sprintf("link%d:%d->%d", k.link, k.from, m.net.Topo.Links[k.link].Other(k.from))
		out[key] = map[string]any{
			"samples":          len(s),
			"max_queued_bytes": maxQ,
			"peak_utilization": peakU,
			"mean_utilization": sumU / float64(len(s)),
		}
	}
	out["interval_ns"] = int64(m.interval)
	out["truncated"] = m.truncated
	return out
}
