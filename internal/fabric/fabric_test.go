package fabric

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

// collector is a test Handler recording delivered packets.
type collector struct {
	eng  *sim.Engine
	pkts []*packet.Packet
	at   []sim.Time
}

func (c *collector) HandlePacket(p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.at = append(c.at, c.eng.Now())
}

// installTrees hand-installs label forwarding state the way the
// controller does: one shadow MAC per (host, tree) at every switch on
// the tree.
func installTrees(n *Network) []topo.Tree {
	trees := n.Topo.Trees(nil)
	for _, tr := range trees {
		for h, hostNode := range n.Topo.Hosts {
			host := n.Topo.Nodes[hostNode].Host
			label := packet.ShadowMAC(host, tr.Index)
			hostLeaf := n.Topo.LeafOf(host)
			for _, leaf := range n.Topo.Leaves {
				sw := n.Switch(leaf)
				if leaf == hostLeaf {
					sw.InstallLabel(label, n.Topo.HostLink(host))
				} else if lid, ok := tr.LeafLink[leaf]; ok {
					sw.InstallLabel(label, lid)
				}
				sw.SetNumTrees(len(trees))
			}
			if tr.Spine >= 0 && len(n.Topo.Spines) > 0 {
				sw := n.Switch(tr.Spine)
				sw.InstallLabel(label, tr.LeafLink[hostLeaf])
				sw.SetNumTrees(len(trees))
			}
			_ = h
		}
	}
	return trees
}

func testNet(t *testing.T, spines, leaves, hostsPer int) (*sim.Engine, *Network, map[packet.HostID]*collector) {
	t.Helper()
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(spines, leaves, hostsPer, 1, topo.LinkConfig{})
	n := New(eng, tp, Config{})
	cols := make(map[packet.HostID]*collector)
	for i := 0; i < tp.NumHosts(); i++ {
		c := &collector{eng: eng}
		cols[packet.HostID(i)] = c
		n.AttachHost(packet.HostID(i), c)
	}
	return eng, n, cols
}

func mkPkt(src, dst packet.HostID, payload int) *packet.Packet {
	return &packet.Packet{
		SrcMAC:  packet.HostMAC(src),
		DstMAC:  packet.HostMAC(dst),
		Flow:    packet.FlowKey{Src: packet.Addr{Host: src, Port: 1000}, Dst: packet.Addr{Host: dst, Port: 2000}},
		Payload: payload,
	}
}

func TestPipeSerializationAndPropagation(t *testing.T) {
	eng, n, cols := testNet(t, 2, 2, 2)
	p := mkPkt(0, 1, 1000) // same leaf: host0 -> leaf -> host1
	n.SendFromHost(0, p)
	eng.RunAll()
	c := cols[1]
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(c.pkts))
	}
	// Wire size = payload + headers + eth overhead.
	wire := p.WireSize()
	ser := sim.Time(int64(wire) * 8 * int64(sim.Second) / 10e9)
	// host->leaf: ser+prop(500ns), leaf->host: ser+prop(500ns).
	want := 2*ser + 2*500*sim.Nanosecond
	if c.at[0] != want {
		t.Fatalf("delivery at %v, want %v", c.at[0], want)
	}
}

func TestPipeQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(1, 1, 3, 1, topo.LinkConfig{})
	n := New(eng, tp, Config{SwitchQueueBytes: 5000, HostQueueBytes: 1 << 20})
	c := &collector{eng: eng}
	n.AttachHost(2, c)
	// Two senders converge on host 2's port: the 2:1 incast overflows
	// the shallow output queue.
	for i := 0; i < 50; i++ {
		n.SendFromHost(0, mkPkt(0, 2, 1400))
		n.SendFromHost(1, mkPkt(1, 2, 1400))
	}
	eng.RunAll()
	if n.TotalDrops() == 0 {
		t.Fatal("expected tail drops at the shallow switch port")
	}
	if len(c.pkts)+int(n.TotalDrops()) != 100 {
		t.Fatalf("delivered %d + dropped %d != 100", len(c.pkts), n.TotalDrops())
	}
	if n.LossRate() <= 0 {
		t.Fatal("LossRate should be positive")
	}
}

func TestLabelForwardingAcrossClos(t *testing.T) {
	eng, n, cols := testNet(t, 4, 4, 4)
	trees := installTrees(n)
	if len(trees) != 4 {
		t.Fatalf("%d trees", len(trees))
	}
	// Send host 0 -> host 12 (leaf 0 -> leaf 3) over each tree.
	for _, tr := range trees {
		p := mkPkt(0, 12, 500)
		p.DstMAC = packet.ShadowMAC(12, tr.Index)
		n.SendFromHost(0, p)
	}
	eng.RunAll()
	if len(cols[12].pkts) != 4 {
		t.Fatalf("delivered %d, want 4", len(cols[12].pkts))
	}
	// Each tree's spine should have forwarded exactly one packet.
	for _, s := range n.Topo.Spines {
		if got := n.Switch(s).RxPackets; got != 1 {
			t.Errorf("spine %v forwarded %d packets, want 1", s, got)
		}
	}
	// Labels arrive intact (vSwitch, not fabric, restores real MACs).
	for _, p := range cols[12].pkts {
		if !p.DstMAC.IsShadow() {
			t.Error("fabric should not rewrite labels on delivery")
		}
	}
}

func TestRealMACForwardingECMP(t *testing.T) {
	eng, n, cols := testNet(t, 4, 2, 2)
	// host 0 (leaf 0) -> host 2 (leaf 1) with real MAC: ECMP-routed.
	for fc := uint32(0); fc < 64; fc++ {
		p := mkPkt(0, 2, 100)
		p.FlowcellID = fc
		n.SendFromHost(0, p)
	}
	eng.RunAll()
	if len(cols[2].pkts) != 64 {
		t.Fatalf("delivered %d, want 64", len(cols[2].pkts))
	}
	// Spraying on flowcell ID should hit more than one spine.
	spinesUsed := 0
	for _, s := range n.Topo.Spines {
		if n.Switch(s).RxPackets > 0 {
			spinesUsed++
		}
	}
	if spinesUsed < 2 {
		t.Fatalf("ECMP hash used %d spines, want >= 2", spinesUsed)
	}
}

func TestFailoverBlackHoleThenReroute(t *testing.T) {
	eng, n, cols := testNet(t, 2, 2, 2)
	installTrees(n)
	tree0 := n.Topo.Trees(nil)[0]
	// Fail the tree-0 link between its spine and leaf 0 at t=0.
	failed := tree0.LeafLink[n.Topo.Leaves[0]]
	n.FailLink(failed)

	// Immediately send on tree 0 from host 0 (leaf 0) to host 2
	// (leaf 1): black hole (failover not yet active).
	p1 := mkPkt(0, 2, 100)
	p1.DstMAC = packet.ShadowMAC(2, 0)
	n.SendFromHost(0, p1)
	eng.Run(1 * sim.Millisecond)
	if len(cols[2].pkts) != 0 {
		t.Fatal("packet delivered during black-hole window")
	}

	// After the failover latency (5 ms default), the leaf rewrites to
	// the backup tree and the packet gets through.
	eng.At(6*sim.Millisecond, func() {
		p2 := mkPkt(0, 2, 100)
		p2.DstMAC = packet.ShadowMAC(2, 0)
		n.SendFromHost(0, p2)
	})
	eng.RunAll()
	if len(cols[2].pkts) != 1 {
		t.Fatalf("delivered %d after failover, want 1", len(cols[2].pkts))
	}
	if got := cols[2].pkts[0].DstMAC.ShadowTree(); got != 1 {
		t.Fatalf("packet arrived on tree %d, want rewritten to 1", got)
	}
}

func TestFailoverDetourAtSpine(t *testing.T) {
	// Fail the *destination-side* downlink: sender's uplink is fine,
	// the spine must detour via another leaf.
	eng, n, cols := testNet(t, 2, 3, 1)
	installTrees(n)
	tree0 := n.Topo.Trees(nil)[0]
	dstLeaf := n.Topo.LeafOf(2) // host 2 on leaf 2
	failed := tree0.LeafLink[dstLeaf]
	n.FailLink(failed)
	eng.At(10*sim.Millisecond, func() {
		p := mkPkt(0, 2, 100)
		p.DstMAC = packet.ShadowMAC(2, 0)
		n.SendFromHost(0, p)
	})
	eng.RunAll()
	if len(cols[2].pkts) != 1 {
		t.Fatalf("delivered %d via spine detour, want 1", len(cols[2].pkts))
	}
}

func TestRestoreLink(t *testing.T) {
	eng, n, cols := testNet(t, 1, 2, 1)
	installTrees(n)
	lid := n.Topo.Trees(nil)[0].LeafLink[n.Topo.Leaves[0]]
	n.FailLink(lid)
	if n.LinkUp(lid) {
		t.Fatal("link should be down")
	}
	n.RestoreLink(lid)
	if !n.LinkUp(lid) {
		t.Fatal("link should be up")
	}
	p := mkPkt(0, 1, 100)
	p.DstMAC = packet.ShadowMAC(1, 0)
	n.SendFromHost(0, p)
	eng.RunAll()
	if len(cols[1].pkts) != 1 {
		t.Fatal("packet lost after restore")
	}
}

func TestHopGuardDropsLoops(t *testing.T) {
	eng, n, _ := testNet(t, 2, 2, 2)
	// Create an intentional two-switch label loop.
	l0, l1 := n.Topo.Leaves[0], n.Topo.Leaves[1]
	label := packet.ShadowMAC(99, 0)
	up := n.Topo.SpineLeafLinks(n.Topo.Spines[0], l0)[0]
	// leaf0 -> spine0 -> leaf0 ... : spine sends back to leaf0.
	n.Switch(l0).InstallLabel(label, up)
	n.Switch(n.Topo.Spines[0]).InstallLabel(label, up)
	_ = l1
	p := mkPkt(0, 99, 100)
	p.DstMAC = label
	n.SendFromHost(0, p)
	eng.RunAll()
	if n.TotalHopDrops() == 0 {
		t.Fatal("loop guard did not trigger")
	}
}

func TestBandwidthSharing(t *testing.T) {
	// Two senders saturating one receiver port: deliveries should be
	// spread over ~2x the serialization time of one sender's data.
	eng := sim.NewEngine()
	tp := topo.SingleSwitch(3, topo.LinkConfig{})
	n := New(eng, tp, Config{SwitchQueueBytes: 1 << 20})
	c := &collector{eng: eng}
	n.AttachHost(2, c)
	const pkts = 50
	for i := 0; i < pkts; i++ {
		n.SendFromHost(0, mkPkt(0, 2, 1400))
		n.SendFromHost(1, mkPkt(1, 2, 1400))
	}
	eng.RunAll()
	if len(c.pkts) != 2*pkts {
		t.Fatalf("delivered %d, want %d", len(c.pkts), 2*pkts)
	}
	wire := mkPkt(0, 2, 1400).WireSize()
	ser := sim.Time(int64(wire) * 8 * int64(sim.Second) / 10e9)
	minTime := ser * sim.Time(2*pkts)
	last := c.at[len(c.at)-1]
	if last < minTime {
		t.Fatalf("last delivery %v before %v: receiver port exceeded line rate", last, minTime)
	}
}

func TestRealMACForwardingToSpineHost(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.TwoTierClos(2, 2, 1, 1, topo.LinkConfig{})
	remote := tp.AddSpineHost(tp.Spines[1], 100e6, sim.Microsecond)
	n := New(eng, tp, Config{})
	c := &collector{eng: eng}
	n.AttachHost(remote, c)
	// Leaf-attached host 0 sends to the spine-attached remote user.
	n.SendFromHost(0, mkPkt(0, remote, 500))
	eng.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d to spine host, want 1", len(c.pkts))
	}
	// And the reverse direction (remote user to server).
	c2 := &collector{eng: eng}
	n.AttachHost(0, c2)
	n.SendFromHost(remote, mkPkt(remote, 0, 500))
	eng.RunAll()
	if len(c2.pkts) != 1 {
		t.Fatalf("delivered %d from spine host, want 1", len(c2.pkts))
	}
}

// Property: packet conservation — every packet injected into the
// fabric is either delivered to a host, tail-dropped at a queue,
// black-holed by a down link, or dropped by the hop guard. Nothing
// vanishes, nothing duplicates.
func TestPacketConservationProperty(t *testing.T) {
	prop := func(seed uint64, spinesRaw, hostsRaw uint8, failSome bool) bool {
		rng := sim.NewRNG(seed)
		spines := int(spinesRaw)%4 + 1
		hostsPer := int(hostsRaw)%3 + 1
		eng := sim.NewEngine()
		tp := topo.TwoTierClos(spines, 2, hostsPer, 1, topo.LinkConfig{})
		n := New(eng, tp, Config{SwitchQueueBytes: 20_000})
		installTrees(n)
		var delivered uint64
		for i := 0; i < tp.NumHosts(); i++ {
			n.AttachHost(packet.HostID(i), handlerCount{&delivered})
		}
		if failSome {
			// Fail one fabric link mid-run.
			lid := tp.SpineLeafLinks(tp.Spines[0], tp.Leaves[0])[0]
			eng.Schedule(50*sim.Microsecond, func() { n.FailLink(lid) })
		}
		const injected = 400
		trees := tp.Trees(nil)
		for i := 0; i < injected; i++ {
			src := packet.HostID(rng.Intn(tp.NumHosts()))
			dst := packet.HostID(rng.Intn(tp.NumHosts()))
			if dst == src {
				dst = (dst + 1) % packet.HostID(tp.NumHosts())
			}
			p := mkPkt(src, dst, 1200)
			switch rng.Intn(3) {
			case 0: // real MAC, per-hop ECMP
			case 1: // label
				p.DstMAC = packet.ShadowMAC(dst, trees[rng.Intn(len(trees))].Index)
			case 2: // label with a flowcell id
				p.DstMAC = packet.ShadowMAC(dst, trees[rng.Intn(len(trees))].Index)
				p.FlowcellID = uint32(i)
			}
			at := rng.Duration(200 * sim.Microsecond)
			eng.At(at, func() { n.SendFromHost(src, p) })
		}
		eng.RunAll()
		total := delivered + n.TotalDrops() + n.TotalDropsDown() + n.TotalHopDrops()
		return total == injected
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

type handlerCount struct{ n *uint64 }

func (h handlerCount) HandlePacket(*packet.Packet) { *h.n++ }
