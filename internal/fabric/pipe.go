// Package fabric simulates the dynamic data plane of a topology:
// directed link queues with serialization and propagation delay,
// output-queued switches that forward on shadow-MAC labels or ECMP
// hash groups, link failures, and hardware-style fast failover
// (label-rewrite to a backup spanning tree, §3.3).
package fabric

import (
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

// Pipe is one direction of a link: an output queue draining at the
// link rate, followed by propagation delay. Packets that would
// overflow the queue are dropped (tail drop), as in the paper's
// shallow-buffered 10 GbE switches.
type Pipe struct {
	eng  *sim.Engine
	net  *Network
	link topo.Link
	from topo.NodeID // transmitting end

	capBytes   int
	queuedWire int // wire bytes currently queued (excluding in-flight)
	queue      []*packet.Packet
	busy       bool
	down       bool

	// Counters (switch-counter analogues; loss rate in the paper is
	// measured from these).
	TxPackets  uint64
	TxBytes    uint64
	Drops      uint64 // tail drops
	DropsDown  uint64 // black-holed while the link was down
	EnqPackets uint64
	LastActive sim.Time
	// MaxQueuedBytes is the queue-depth watermark (wire bytes).
	MaxQueuedBytes int
}

// Up reports whether the pipe's link is up.
func (p *Pipe) Up() bool { return !p.down }

// QueuedBytes returns the wire bytes waiting in the queue.
func (p *Pipe) QueuedBytes() int { return p.queuedWire }

// Enqueue places pkt on the output queue, dropping it if the link is
// down or the queue is full.
func (p *Pipe) Enqueue(pkt *packet.Packet) {
	p.EnqPackets++
	if p.down {
		p.DropsDown++
		p.net.TotalDropsDown++
		p.net.tracer.QueueDrop(p.eng.Now(), int32(p.link.ID), p.queuedWire, "link-down")
		return
	}
	w := pkt.WireSize()
	if p.queuedWire+w > p.capBytes {
		p.Drops++
		p.net.TotalDrops++
		p.net.tracer.QueueDrop(p.eng.Now(), int32(p.link.ID), p.queuedWire, "tail-drop")
		return
	}
	if t := p.net.cfg.ECNThresholdBytes; t > 0 && p.queuedWire > t &&
		p.net.Topo.Nodes[p.from].Kind != topo.KindHost {
		pkt.CE = true
	}
	p.queuedWire += w
	if p.queuedWire > p.MaxQueuedBytes {
		p.MaxQueuedBytes = p.queuedWire
	}
	p.queue = append(p.queue, pkt)
	if !p.busy {
		p.transmitNext()
	}
}

func (p *Pipe) transmitNext() {
	if len(p.queue) == 0 || p.down {
		p.busy = false
		return
	}
	p.busy = true
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	w := pkt.WireSize()
	p.queuedWire -= w
	ser := sim.Time(int64(w) * 8 * int64(sim.Second) / p.link.BitsPerSec)
	p.eng.Schedule(ser, func() {
		p.TxPackets++
		p.TxBytes += uint64(w)
		p.LastActive = p.eng.Now()
		if !p.down {
			// Propagation: the packet arrives at the far end later; the
			// queue meanwhile keeps draining.
			dst := p.link.Other(p.from)
			p.eng.Schedule(p.link.Propagation, func() { p.net.deliver(dst, pkt) })
		} else {
			p.DropsDown++
			p.net.TotalDropsDown++
		}
		p.transmitNext()
	})
}

// fail marks the pipe down and discards its queue.
func (p *Pipe) fail() {
	p.down = true
	p.DropsDown += uint64(len(p.queue))
	p.net.TotalDropsDown += uint64(len(p.queue))
	p.queue = nil
	p.queuedWire = 0
}

// restore brings the pipe back up.
func (p *Pipe) restore() {
	p.down = false
	if !p.busy {
		p.transmitNext()
	}
}
