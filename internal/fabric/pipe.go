// Package fabric simulates the dynamic data plane of a topology:
// directed link queues with serialization and propagation delay,
// output-queued switches that forward on shadow-MAC labels or ECMP
// hash groups, link failures, and hardware-style fast failover
// (label-rewrite to a backup spanning tree, §3.3).
package fabric

import (
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

// Pipe is one direction of a link: an output queue draining at the
// link rate, followed by propagation delay. Packets that would
// overflow the queue are dropped (tail drop), as in the paper's
// shallow-buffered 10 GbE switches.
type Pipe struct {
	eng  *sim.Engine // engine of the transmitting end's shard
	net  *Network
	link topo.Link
	from topo.NodeID // transmitting end
	dst  topo.NodeID // receiving end
	// dstShard is the receiving end's shard when it differs from the
	// transmitting end's (-1 when both ends share an engine): delivery
	// then crosses via ShardGroup.Send instead of a local schedule.
	dstShard int
	ctr      *shardCounters // aggregate bucket of the transmitting shard

	capBytes   int
	queuedWire int // wire bytes currently queued (excluding in-flight)
	queue      []*packet.Packet
	busy       bool
	down       bool

	// Counters (switch-counter analogues; loss rate in the paper is
	// measured from these).
	TxPackets  uint64
	TxBytes    uint64
	Drops      uint64 // tail drops
	DropsDown  uint64 // black-holed while the link was down
	EnqPackets uint64
	LastActive sim.Time
	// MaxQueuedBytes is the queue-depth watermark (wire bytes).
	MaxQueuedBytes int
}

// Up reports whether the pipe's link is up.
func (p *Pipe) Up() bool { return !p.down }

// QueuedBytes returns the wire bytes waiting in the queue.
func (p *Pipe) QueuedBytes() int { return p.queuedWire }

// Enqueue places pkt on the output queue, dropping it if the link is
// down or the queue is full.
func (p *Pipe) Enqueue(pkt *packet.Packet) {
	p.EnqPackets++
	if p.down {
		p.DropsDown++
		p.ctr.dropsDown++
		p.net.tracer.QueueDrop(p.eng.Now(), int32(p.link.ID), p.queuedWire, "link-down")
		return
	}
	w := pkt.WireSize()
	if p.queuedWire+w > p.capBytes {
		p.Drops++
		p.ctr.drops++
		p.net.tracer.QueueDrop(p.eng.Now(), int32(p.link.ID), p.queuedWire, "tail-drop")
		return
	}
	if t := p.net.cfg.ECNThresholdBytes; t > 0 && p.queuedWire > t &&
		p.net.Topo.Nodes[p.from].Kind != topo.KindHost {
		pkt.CE = true
	}
	p.queuedWire += w
	if p.queuedWire > p.MaxQueuedBytes {
		p.MaxQueuedBytes = p.queuedWire
	}
	p.queue = append(p.queue, pkt)
	if !p.busy {
		p.transmitNext()
	}
}

func (p *Pipe) transmitNext() {
	if len(p.queue) == 0 || p.down {
		p.busy = false
		return
	}
	p.busy = true
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	w := pkt.WireSize()
	p.queuedWire -= w
	ser := sim.Time(int64(w) * 8 * int64(sim.Second) / p.link.BitsPerSec)
	p.eng.Schedule(ser, func() {
		p.TxPackets++
		p.TxBytes += uint64(w)
		p.LastActive = p.eng.Now()
		if !p.down {
			// Propagation: the packet arrives at the far end later; the
			// queue meanwhile keeps draining. A shard boundary rides the
			// group's handoff path (propagation >= lookahead is checked
			// at construction, so the send is always window-legal).
			dst := p.dst
			if p.dstShard < 0 {
				p.eng.Schedule(p.link.Propagation, func() { p.net.deliver(dst, pkt) })
			} else {
				p.net.group.Send(p.eng, p.dstShard, p.link.Propagation, func() { p.net.deliver(dst, pkt) })
			}
		} else {
			p.DropsDown++
			p.ctr.dropsDown++
		}
		p.transmitNext()
	})
}

// fail marks the pipe down and discards its queue.
func (p *Pipe) fail() {
	p.down = true
	p.DropsDown += uint64(len(p.queue))
	p.ctr.dropsDown += uint64(len(p.queue))
	p.queue = nil
	p.queuedWire = 0
}

// restore brings the pipe back up.
func (p *Pipe) restore() {
	p.down = false
	if !p.busy {
		p.transmitNext()
	}
}
