package fabric

import (
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

// maxHops bounds forwarding steps per packet; exceeding it drops the
// packet (loop guard for pathological failure combinations).
const maxHops = 16

// Switch is one leaf or spine. It forwards on shadow-MAC labels using
// controller-installed exact-match L2 entries, and on real MACs using
// topology-derived routing with ECMP hash groups (used by the
// Presto+ECMP per-hop variant and by north-south traffic).
type Switch struct {
	net  *Network
	node topo.Node
	eng  *sim.Engine    // engine of this switch's shard
	ctr  *shardCounters // aggregate bucket of this switch's shard

	// labelTable maps shadow-MAC labels to egress links, installed by
	// the controller (§3.1: "installs the relevant forwarding rules").
	labelTable map[packet.MAC]topo.LinkID
	// numTrees is the number of allocated spanning trees, used to
	// cycle to a backup tree during fast failover.
	numTrees int

	// RxPackets counts packets this switch forwarded.
	RxPackets uint64
	// FailoverRewrites counts packets relabeled onto a backup tree by
	// the fast-failover rule.
	FailoverRewrites uint64
}

func newSwitch(n *Network, node topo.Node) *Switch {
	return &Switch{
		net:        n,
		node:       node,
		eng:        n.EngineFor(node.ID),
		ctr:        n.counterOf(node.ID),
		labelTable: make(map[packet.MAC]topo.LinkID),
	}
}

// InstallLabel adds (or replaces) a shadow-MAC forwarding entry.
func (s *Switch) InstallLabel(label packet.MAC, egress topo.LinkID) {
	s.labelTable[label] = egress
}

// RemoveLabel deletes a label entry.
func (s *Switch) RemoveLabel(label packet.MAC) { delete(s.labelTable, label) }

// SetNumTrees tells the switch how many trees exist (for backup-tree
// rewriting).
func (s *Switch) SetNumTrees(n int) { s.numTrees = n }

// LabelCount returns the number of installed label entries.
func (s *Switch) LabelCount() int { return len(s.labelTable) }

func (s *Switch) forward(p *packet.Packet) {
	s.RxPackets++
	p.Hops++
	if p.Hops > maxHops {
		s.ctr.hopDrops++
		return
	}
	if p.DstMAC.IsLabel() {
		s.forwardLabel(p)
		return
	}
	s.forwardRealMAC(p)
}

// labelDstLeaf resolves the destination leaf of either label kind.
func (s *Switch) labelDstLeaf(m packet.MAC) topo.NodeID {
	if m.IsTunnel() {
		return s.net.Topo.Leaves[m.TunnelLeaf()]
	}
	return s.net.Topo.LeafOf(m.Host())
}

// forwardLabel handles shadow-MAC label switching, including the fast
// failover path: when the installed egress is down and the failover
// rule has activated, the label is rewritten to a backup tree
// (pre-determined, local decision) and forwarding retries.
func (s *Switch) forwardLabel(p *packet.Packet) {
	if p.DstMAC.IsTunnel() && s.node.Kind == topo.KindLeaf &&
		s.labelDstLeaf(p.DstMAC) == s.node.ID {
		// Tunnel terminus: this is the destination edge switch —
		// forward on L3 information (§3.1), i.e. the packet's real
		// destination host.
		s.enqueue(s.net.Topo.HostLink(p.Flow.Dst.Host), p)
		return
	}
	egress, ok := s.labelTable[p.DstMAC]
	if ok {
		if s.net.LinkUp(egress) {
			s.enqueue(egress, p)
			return
		}
		if s.net.failoverActive(egress, s.eng.Now()) && s.rewriteToBackupTree(p) {
			s.FailoverRewrites++
			s.net.tracer.FailoverSwitch(s.eng.Now(), int32(s.node.ID), int32(egress), p.DstMAC.ShadowTree())
			s.forward(p)
			return
		}
		// Link down, failover not yet active (or no backup): black hole,
		// exactly what happens on hardware before the failover rule
		// fires.
		s.enqueue(egress, p)
		return
	}
	// No entry: this switch is not on the label's tree. This only
	// happens on a failover detour. Route toward the destination leaf
	// along a live shortest path if possible; otherwise hand the
	// packet to any live neighbor switch, which will route or relabel
	// it (the hop guard bounds pathological cascades).
	dstLeaf := s.labelDstLeaf(p.DstMAC)
	if s.node.ID == dstLeaf {
		// Final hop: deliver on the host port.
		host := p.Flow.Dst.Host
		if p.DstMAC.IsShadow() {
			host = p.DstMAC.Host()
		}
		s.enqueue(s.net.Topo.HostLink(host), p)
		return
	}
	for _, lid := range s.net.Topo.NextLinksTo(s.node.ID, dstLeaf) {
		if s.net.LinkUp(lid) {
			s.enqueue(lid, p)
			return
		}
	}
	for _, lid := range s.net.Topo.LinksAt(s.node.ID) {
		other := s.net.Topo.Links[lid].Other(s.node.ID)
		if s.net.Topo.Nodes[other].Kind != topo.KindHost && s.net.LinkUp(lid) {
			s.enqueue(lid, p)
			return
		}
	}
	s.ctr.hopDrops++
}

// rewriteToBackupTree rewrites the packet's label to the next tree
// that either has a live local egress or is simply different (letting
// downstream switches route it). Reports whether a rewrite happened.
func (s *Switch) rewriteToBackupTree(p *packet.Packet) bool {
	if s.numTrees <= 1 {
		return false
	}
	cur := p.DstMAC.ShadowTree()
	relabel := func(t int) packet.MAC {
		if p.DstMAC.IsTunnel() {
			return packet.TunnelMAC(p.DstMAC.TunnelLeaf(), t)
		}
		return packet.ShadowMAC(p.DstMAC.Host(), t)
	}
	// Prefer a tree whose local egress is installed and up.
	for i := 1; i < s.numTrees; i++ {
		t := (cur + i) % s.numTrees
		label := relabel(t)
		if e, ok := s.labelTable[label]; ok && s.net.LinkUp(e) {
			p.DstMAC = label
			return true
		}
	}
	// Otherwise any other tree; switches without an entry detour it.
	p.DstMAC = relabel((cur + 1) % s.numTrees)
	return true
}

// forwardRealMAC routes packets that carry the destination's real MAC:
// host port on the destination leaf, ECMP hash over live uplinks
// elsewhere. The hash covers the flow key and the flowcell ID, so the
// Presto+ECMP variant sprays flowcells per hop while plain flows stay
// pinned.
func (s *Switch) forwardRealMAC(p *packet.Packet) {
	t := s.net.Topo
	dst := p.DstMAC.Host()
	attach := t.LeafOf(dst)
	if s.node.ID == attach {
		s.enqueue(t.HostLink(dst), p)
		return
	}
	// Equal-cost next hops toward the destination's attachment point
	// (leaf for servers, spine for remote users), topology-agnostic.
	candidates := t.NextLinksTo(s.node.ID, attach)
	lid, ok := pickECMP(s.net, candidates, p, s.eng.Now())
	if !ok {
		s.ctr.hopDrops++
		return
	}
	s.enqueue(lid, p)
}

// pickECMP hashes the packet onto one of the candidate links. Links
// whose failover rule has activated are excluded from the group
// (hardware ECMP prunes dead members after detection); before
// activation, dead links still attract (and black-hole) traffic.
func pickECMP(n *Network, candidates []topo.LinkID, p *packet.Packet, now sim.Time) (topo.LinkID, bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	live := candidates[:0:0]
	for _, c := range candidates {
		if n.LinkUp(c) || !n.failoverActive(c, now) {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return 0, false
	}
	h := p.Flow.Hash()
	h ^= p.FlowcellID * 2654435761 // Knuth multiplicative mix
	h ^= h >> 13
	h *= 0x5bd1e995
	h ^= h >> 15
	return live[int(h)%len(live)], true
}

// upLinkTo returns a live link from this spine to the given leaf.
func (s *Switch) upLinkTo(leaf topo.NodeID) (topo.LinkID, bool) {
	for _, lid := range s.net.Topo.SpineLeafLinks(s.node.ID, leaf) {
		if s.net.LinkUp(lid) {
			return lid, true
		}
	}
	return 0, false
}

func (s *Switch) enqueue(lid topo.LinkID, p *packet.Packet) {
	s.net.Pipe(lid, s.node.ID).Enqueue(p)
}
