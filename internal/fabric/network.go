package fabric

import (
	"fmt"
	"sort"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
	"presto/internal/topo"
)

// Handler receives packets delivered to a host's NIC.
type Handler interface {
	HandlePacket(p *packet.Packet)
}

// Config sets the dynamic parameters of the fabric.
type Config struct {
	// SwitchQueueBytes is the per-port output buffer at switches. The
	// testbed's G8264 switches draw on a multi-megabyte shared buffer;
	// the default matches the multi-millisecond RTT tails the paper
	// measures under congestion (Figures 8, 11).
	SwitchQueueBytes int
	// HostQueueBytes is the host NIC's transmit queue (driver ring),
	// deeper than a switch port.
	HostQueueBytes int
	// FailoverLatency is the time between a link failing and the
	// hardware fast-failover rule activating ("several to tens of
	// milliseconds", §3.3). Until it elapses, traffic to the dead port
	// is black-holed.
	FailoverLatency sim.Time
	// DisableFailover turns off backup-tree rewriting at switches
	// (Presto leverages failover; plain ECMP fabrics may not). The
	// zero value leaves failover enabled.
	DisableFailover bool
	// ECNThresholdBytes makes switch ports mark Congestion Experienced
	// on packets that arrive to a queue deeper than this (DCTCP-style
	// marking). Zero disables marking. Host access pipes never mark.
	ECNThresholdBytes int
}

// DefaultConfig returns testbed-like defaults.
func DefaultConfig() Config {
	return Config{
		SwitchQueueBytes: 2 << 20,
		HostQueueBytes:   4 * 1024 * 1024,
		FailoverLatency:  5 * sim.Millisecond,
	}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.SwitchQueueBytes == 0 {
		c.SwitchQueueBytes = d.SwitchQueueBytes
	}
	if c.HostQueueBytes == 0 {
		c.HostQueueBytes = d.HostQueueBytes
	}
	if c.FailoverLatency == 0 {
		c.FailoverLatency = d.FailoverLatency
	}
}

type pipeKey struct {
	link topo.LinkID
	from topo.NodeID
}

// shardCounters holds one shard's slice of the aggregate drop and
// delivery counts. Each pipe and switch increments the bucket of the
// shard its node runs on, so counting never crosses goroutines; the
// Total* accessors sum the buckets. Padding keeps concurrently-written
// buckets on separate cache lines.
type shardCounters struct {
	drops     uint64 // queue-overflow drops
	dropsDown uint64 // failure black-hole drops
	delivered uint64 // packets handed to host NICs
	hopDrops  uint64 // loop-guard drops
	_         [4]uint64
}

// Network is the running data plane for a Topology.
type Network struct {
	// Eng drives the whole fabric in serial mode; it is nil for a
	// sharded network, where every node runs on its shard's engine
	// (see EngineFor).
	Eng  *sim.Engine
	Topo *topo.Topology
	cfg  Config

	// Sharded mode (NewSharded): the shard group, the node→shard
	// assignment, and one counter bucket per shard. Serial networks
	// keep group/shardOf nil and a single bucket.
	group    *sim.ShardGroup
	shardOf  []int32
	counters []shardCounters

	pipes    map[pipeKey]*Pipe
	switches map[topo.NodeID]*Switch
	hosts    map[packet.HostID]Handler

	linkDownSince map[topo.LinkID]sim.Time
	tracer        *telemetry.Tracer
}

// New builds the data plane for t, driven by the single engine eng.
func New(eng *sim.Engine, t *topo.Topology, cfg Config) *Network {
	n := newNetwork(t, cfg)
	n.Eng = eng
	n.counters = make([]shardCounters, 1)
	n.populate()
	return n
}

// NewSharded builds the data plane over a shard group: every node's
// events run on the engine of its assigned shard, and packets crossing
// a shard boundary ride ShardGroup.Send with the link's propagation
// delay. shardOf maps every NodeID to a shard index. Bit-identity with
// the serial engine requires every cross-shard link's propagation to
// be at least the group's lookahead; violations panic here rather than
// reordering events mid-run.
func NewSharded(g *sim.ShardGroup, shardOf []int32, t *topo.Topology, cfg Config) *Network {
	if len(shardOf) != len(t.Nodes) {
		panic(fmt.Sprintf("fabric: shard map covers %d nodes, topology has %d", len(shardOf), len(t.Nodes)))
	}
	for id, s := range shardOf {
		if int(s) < 0 || int(s) >= g.Shards() {
			panic(fmt.Sprintf("fabric: node %d assigned to shard %d of %d", id, s, g.Shards()))
		}
	}
	for _, l := range t.Links {
		if shardOf[l.A] != shardOf[l.B] && l.Propagation < g.Lookahead() {
			panic(fmt.Sprintf("fabric: cross-shard link %d propagation %v below lookahead %v",
				l.ID, l.Propagation, g.Lookahead()))
		}
	}
	n := newNetwork(t, cfg)
	n.group = g
	n.shardOf = shardOf
	n.counters = make([]shardCounters, g.Shards())
	n.populate()
	return n
}

func newNetwork(t *topo.Topology, cfg Config) *Network {
	cfg.fill()
	return &Network{
		Topo:          t,
		cfg:           cfg,
		pipes:         make(map[pipeKey]*Pipe),
		switches:      make(map[topo.NodeID]*Switch),
		hosts:         make(map[packet.HostID]Handler),
		linkDownSince: make(map[topo.LinkID]sim.Time),
	}
}

// populate builds the pipes and switches once the engine topology
// (serial or sharded) is settled.
func (n *Network) populate() {
	t := n.Topo
	for _, l := range t.Links {
		for _, from := range []topo.NodeID{l.A, l.B} {
			capBytes := n.cfg.SwitchQueueBytes
			if t.Nodes[from].Kind == topo.KindHost {
				capBytes = n.cfg.HostQueueBytes
			}
			dst := l.Other(from)
			dstShard := -1
			if n.group != nil && n.shardOf[from] != n.shardOf[dst] {
				dstShard = int(n.shardOf[dst])
			}
			n.pipes[pipeKey{l.ID, from}] = &Pipe{
				eng: n.EngineFor(from), net: n, link: l, from: from,
				dst: dst, dstShard: dstShard,
				ctr: n.counterOf(from), capBytes: capBytes,
			}
		}
	}
	for _, node := range t.Nodes {
		if node.Kind != topo.KindHost {
			n.switches[node.ID] = newSwitch(n, node)
		}
	}
}

// EngineFor returns the engine that node's events must run on: its
// shard's engine in sharded mode, the serial engine otherwise.
func (n *Network) EngineFor(node topo.NodeID) *sim.Engine {
	if n.group == nil {
		return n.Eng
	}
	return n.group.Shard(int(n.shardOf[node]))
}

// counterOf returns the counter bucket of node's shard.
func (n *Network) counterOf(node topo.NodeID) *shardCounters {
	if n.shardOf == nil {
		return &n.counters[0]
	}
	return &n.counters[n.shardOf[node]]
}

// now returns fabric time for control-plane paths (link failures,
// telemetry snapshots) that execute between runs.
func (n *Network) now() sim.Time {
	if n.group != nil {
		return n.group.Now()
	}
	return n.Eng.Now()
}

// TotalDrops returns queue-overflow drops summed across shards.
func (n *Network) TotalDrops() uint64 {
	var s uint64
	for i := range n.counters {
		s += n.counters[i].drops
	}
	return s
}

// TotalDropsDown returns failure black-hole drops summed across shards.
func (n *Network) TotalDropsDown() uint64 {
	var s uint64
	for i := range n.counters {
		s += n.counters[i].dropsDown
	}
	return s
}

// TotalDelivered returns packets handed to host NICs, summed across
// shards.
func (n *Network) TotalDelivered() uint64 {
	var s uint64
	for i := range n.counters {
		s += n.counters[i].delivered
	}
	return s
}

// TotalHopDrops returns loop-guard drops summed across shards.
func (n *Network) TotalHopDrops() uint64 {
	var s uint64
	for i := range n.counters {
		s += n.counters[i].hopDrops
	}
	return s
}

// AttachHost registers the packet handler (NIC) for host h.
func (n *Network) AttachHost(h packet.HostID, handler Handler) {
	n.hosts[h] = handler
}

// SetTracer attaches a structured event tracer to the data plane (nil
// disables tracing, the default).
func (n *Network) SetTracer(tr *telemetry.Tracer) { n.tracer = tr }

// Switch returns the switch at node id.
func (n *Network) Switch(id topo.NodeID) *Switch { return n.switches[id] }

// Pipe returns the directed pipe of link id transmitting from node
// from.
func (n *Network) Pipe(id topo.LinkID, from topo.NodeID) *Pipe {
	return n.pipes[pipeKey{id, from}]
}

// SendFromHost injects a packet from host h onto its access link.
func (n *Network) SendFromHost(h packet.HostID, p *packet.Packet) {
	lid := n.Topo.HostLink(h)
	n.pipes[pipeKey{lid, n.Topo.HostNode(h)}].Enqueue(p)
}

// deliver hands a packet that finished propagating to its next node.
// In sharded mode it always runs on the engine of node's shard (the
// pipe either scheduled it locally or routed it through the group).
func (n *Network) deliver(node topo.NodeID, p *packet.Packet) {
	nd := n.Topo.Nodes[node]
	if nd.Kind == topo.KindHost {
		n.counterOf(node).delivered++
		if h := n.hosts[nd.Host]; h != nil {
			h.HandlePacket(p)
		}
		return
	}
	n.switches[node].forward(p)
}

// FailLink takes both directions of link id down. Switch fast-failover
// rules activate after the configured latency. On a sharded network
// link state may only change between Run calls: linkDownSince is read
// by every shard without synchronization during windows.
func (n *Network) FailLink(id topo.LinkID) {
	n.checkQuiescent("FailLink")
	if _, dead := n.linkDownSince[id]; dead {
		return
	}
	n.linkDownSince[id] = n.now()
	n.tracer.LinkDown(n.now(), int32(id))
	l := n.Topo.Links[id]
	n.pipes[pipeKey{id, l.A}].fail()
	n.pipes[pipeKey{id, l.B}].fail()
}

// RestoreLink brings link id back up. Like FailLink it is only legal
// between Run calls on a sharded network.
func (n *Network) RestoreLink(id topo.LinkID) {
	n.checkQuiescent("RestoreLink")
	if _, dead := n.linkDownSince[id]; !dead {
		return
	}
	delete(n.linkDownSince, id)
	n.tracer.LinkUp(n.now(), int32(id))
	l := n.Topo.Links[id]
	n.pipes[pipeKey{id, l.A}].restore()
	n.pipes[pipeKey{id, l.B}].restore()
}

// LinkUp reports whether link id is up.
func (n *Network) LinkUp(id topo.LinkID) bool {
	_, dead := n.linkDownSince[id]
	return !dead
}

// checkQuiescent panics if a sharded run is in progress: callers
// mutate state every shard reads without synchronization.
func (n *Network) checkQuiescent(op string) {
	if n.group != nil && n.group.Running() {
		panic("fabric: " + op + " during a sharded run; change link state between Run calls")
	}
}

// failoverActive reports whether the fast-failover rule covering link
// id has kicked in (the link has been down for at least the failover
// latency) as of the caller's clock. Switches pass their own engine's
// now so the check is shard-local.
func (n *Network) failoverActive(id topo.LinkID, now sim.Time) bool {
	since, dead := n.linkDownSince[id]
	if !dead || n.cfg.DisableFailover {
		return false
	}
	return now >= since+n.cfg.FailoverLatency
}

// DownLinks returns the currently failed links, sorted by link ID so
// the result is independent of map iteration order.
func (n *Network) DownLinks() []topo.LinkID {
	var out []topo.LinkID
	for id := range n.linkDownSince {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LossRate returns queue-overflow drops as a fraction of packets
// offered to switch ports (host access pipes excluded), mirroring the
// paper's switch-counter measurement.
func (n *Network) LossRate() float64 {
	var drops, enq uint64
	for k, p := range n.pipes {
		if n.Topo.Nodes[k.from].Kind == topo.KindHost {
			continue
		}
		drops += p.Drops
		enq += p.EnqPackets
	}
	if enq == 0 {
		return 0
	}
	return float64(drops) / float64(enq)
}

// TelemetrySnapshot implements a telemetry probe over the data plane:
// aggregate counters plus per-link-direction transmit totals, drops,
// utilization over the run so far, and the queue-depth watermark.
func (n *Network) TelemetrySnapshot() map[string]any {
	links := make(map[string]any, len(n.pipes))
	elapsed := n.now()
	for k, p := range n.pipes {
		util := 0.0
		if elapsed > 0 {
			util = float64(p.TxBytes*8) / (elapsed.Seconds() * float64(p.link.BitsPerSec))
		}
		links[fmt.Sprintf("link%d:%d->%d", k.link, k.from, p.link.Other(k.from))] = map[string]any{
			"tx_packets":      p.TxPackets,
			"tx_bytes":        p.TxBytes,
			"drops":           p.Drops,
			"drops_down":      p.DropsDown,
			"utilization":     util,
			"max_queue_bytes": p.MaxQueuedBytes,
		}
	}
	return map[string]any{
		"delivered":  n.TotalDelivered(),
		"drops":      n.TotalDrops(),
		"drops_down": n.TotalDropsDown(),
		"hop_drops":  n.TotalHopDrops(),
		"loss_rate":  n.LossRate(),
		"links":      links,
	}
}

// String summarizes counters for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("fabric{delivered=%d drops=%d down=%d hop=%d}",
		n.TotalDelivered(), n.TotalDrops(), n.TotalDropsDown(), n.TotalHopDrops())
}
