package fabric

import (
	"fmt"
	"sort"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
	"presto/internal/topo"
)

// Handler receives packets delivered to a host's NIC.
type Handler interface {
	HandlePacket(p *packet.Packet)
}

// Config sets the dynamic parameters of the fabric.
type Config struct {
	// SwitchQueueBytes is the per-port output buffer at switches. The
	// testbed's G8264 switches draw on a multi-megabyte shared buffer;
	// the default matches the multi-millisecond RTT tails the paper
	// measures under congestion (Figures 8, 11).
	SwitchQueueBytes int
	// HostQueueBytes is the host NIC's transmit queue (driver ring),
	// deeper than a switch port.
	HostQueueBytes int
	// FailoverLatency is the time between a link failing and the
	// hardware fast-failover rule activating ("several to tens of
	// milliseconds", §3.3). Until it elapses, traffic to the dead port
	// is black-holed.
	FailoverLatency sim.Time
	// DisableFailover turns off backup-tree rewriting at switches
	// (Presto leverages failover; plain ECMP fabrics may not). The
	// zero value leaves failover enabled.
	DisableFailover bool
	// ECNThresholdBytes makes switch ports mark Congestion Experienced
	// on packets that arrive to a queue deeper than this (DCTCP-style
	// marking). Zero disables marking. Host access pipes never mark.
	ECNThresholdBytes int
}

// DefaultConfig returns testbed-like defaults.
func DefaultConfig() Config {
	return Config{
		SwitchQueueBytes: 2 << 20,
		HostQueueBytes:   4 * 1024 * 1024,
		FailoverLatency:  5 * sim.Millisecond,
	}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.SwitchQueueBytes == 0 {
		c.SwitchQueueBytes = d.SwitchQueueBytes
	}
	if c.HostQueueBytes == 0 {
		c.HostQueueBytes = d.HostQueueBytes
	}
	if c.FailoverLatency == 0 {
		c.FailoverLatency = d.FailoverLatency
	}
}

type pipeKey struct {
	link topo.LinkID
	from topo.NodeID
}

// Network is the running data plane for a Topology.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Topology
	cfg  Config

	pipes    map[pipeKey]*Pipe
	switches map[topo.NodeID]*Switch
	hosts    map[packet.HostID]Handler

	// Aggregate counters.
	TotalDrops     uint64 // queue-overflow drops
	TotalDropsDown uint64 // failure black-hole drops
	TotalDelivered uint64 // packets handed to host NICs
	TotalHopDrops  uint64 // loop-guard drops

	linkDownSince map[topo.LinkID]sim.Time
	tracer        *telemetry.Tracer
}

// New builds the data plane for t.
func New(eng *sim.Engine, t *topo.Topology, cfg Config) *Network {
	cfg.fill()
	n := &Network{
		Eng:           eng,
		Topo:          t,
		cfg:           cfg,
		pipes:         make(map[pipeKey]*Pipe),
		switches:      make(map[topo.NodeID]*Switch),
		hosts:         make(map[packet.HostID]Handler),
		linkDownSince: make(map[topo.LinkID]sim.Time),
	}
	for _, l := range t.Links {
		for _, from := range []topo.NodeID{l.A, l.B} {
			capBytes := cfg.SwitchQueueBytes
			if t.Nodes[from].Kind == topo.KindHost {
				capBytes = cfg.HostQueueBytes
			}
			n.pipes[pipeKey{l.ID, from}] = &Pipe{
				eng: eng, net: n, link: l, from: from, capBytes: capBytes,
			}
		}
	}
	for _, node := range t.Nodes {
		if node.Kind != topo.KindHost {
			n.switches[node.ID] = newSwitch(n, node)
		}
	}
	return n
}

// AttachHost registers the packet handler (NIC) for host h.
func (n *Network) AttachHost(h packet.HostID, handler Handler) {
	n.hosts[h] = handler
}

// SetTracer attaches a structured event tracer to the data plane (nil
// disables tracing, the default).
func (n *Network) SetTracer(tr *telemetry.Tracer) { n.tracer = tr }

// Switch returns the switch at node id.
func (n *Network) Switch(id topo.NodeID) *Switch { return n.switches[id] }

// Pipe returns the directed pipe of link id transmitting from node
// from.
func (n *Network) Pipe(id topo.LinkID, from topo.NodeID) *Pipe {
	return n.pipes[pipeKey{id, from}]
}

// SendFromHost injects a packet from host h onto its access link.
func (n *Network) SendFromHost(h packet.HostID, p *packet.Packet) {
	lid := n.Topo.HostLink(h)
	n.pipes[pipeKey{lid, n.Topo.HostNode(h)}].Enqueue(p)
}

// deliver hands a packet that finished propagating to its next node.
func (n *Network) deliver(node topo.NodeID, p *packet.Packet) {
	nd := n.Topo.Nodes[node]
	if nd.Kind == topo.KindHost {
		n.TotalDelivered++
		if h := n.hosts[nd.Host]; h != nil {
			h.HandlePacket(p)
		}
		return
	}
	n.switches[node].forward(p)
}

// FailLink takes both directions of link id down. Switch fast-failover
// rules activate after the configured latency.
func (n *Network) FailLink(id topo.LinkID) {
	if _, dead := n.linkDownSince[id]; dead {
		return
	}
	n.linkDownSince[id] = n.Eng.Now()
	n.tracer.LinkDown(n.Eng.Now(), int32(id))
	l := n.Topo.Links[id]
	n.pipes[pipeKey{id, l.A}].fail()
	n.pipes[pipeKey{id, l.B}].fail()
}

// RestoreLink brings link id back up.
func (n *Network) RestoreLink(id topo.LinkID) {
	if _, dead := n.linkDownSince[id]; !dead {
		return
	}
	delete(n.linkDownSince, id)
	n.tracer.LinkUp(n.Eng.Now(), int32(id))
	l := n.Topo.Links[id]
	n.pipes[pipeKey{id, l.A}].restore()
	n.pipes[pipeKey{id, l.B}].restore()
}

// LinkUp reports whether link id is up.
func (n *Network) LinkUp(id topo.LinkID) bool {
	_, dead := n.linkDownSince[id]
	return !dead
}

// failoverActive reports whether the fast-failover rule covering link
// id has kicked in (the link has been down for at least the failover
// latency).
func (n *Network) failoverActive(id topo.LinkID) bool {
	since, dead := n.linkDownSince[id]
	if !dead || n.cfg.DisableFailover {
		return false
	}
	return n.Eng.Now() >= since+n.cfg.FailoverLatency
}

// DownLinks returns the currently failed links, sorted by link ID so
// the result is independent of map iteration order.
func (n *Network) DownLinks() []topo.LinkID {
	var out []topo.LinkID
	for id := range n.linkDownSince {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LossRate returns queue-overflow drops as a fraction of packets
// offered to switch ports (host access pipes excluded), mirroring the
// paper's switch-counter measurement.
func (n *Network) LossRate() float64 {
	var drops, enq uint64
	for k, p := range n.pipes {
		if n.Topo.Nodes[k.from].Kind == topo.KindHost {
			continue
		}
		drops += p.Drops
		enq += p.EnqPackets
	}
	if enq == 0 {
		return 0
	}
	return float64(drops) / float64(enq)
}

// TelemetrySnapshot implements a telemetry probe over the data plane:
// aggregate counters plus per-link-direction transmit totals, drops,
// utilization over the run so far, and the queue-depth watermark.
func (n *Network) TelemetrySnapshot() map[string]any {
	links := make(map[string]any, len(n.pipes))
	elapsed := n.Eng.Now()
	for k, p := range n.pipes {
		util := 0.0
		if elapsed > 0 {
			util = float64(p.TxBytes*8) / (elapsed.Seconds() * float64(p.link.BitsPerSec))
		}
		links[fmt.Sprintf("link%d:%d->%d", k.link, k.from, p.link.Other(k.from))] = map[string]any{
			"tx_packets":      p.TxPackets,
			"tx_bytes":        p.TxBytes,
			"drops":           p.Drops,
			"drops_down":      p.DropsDown,
			"utilization":     util,
			"max_queue_bytes": p.MaxQueuedBytes,
		}
	}
	return map[string]any{
		"delivered":  n.TotalDelivered,
		"drops":      n.TotalDrops,
		"drops_down": n.TotalDropsDown,
		"hop_drops":  n.TotalHopDrops,
		"loss_rate":  n.LossRate(),
		"links":      links,
	}
}

// String summarizes counters for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("fabric{delivered=%d drops=%d down=%d hop=%d}",
		n.TotalDelivered, n.TotalDrops, n.TotalDropsDown, n.TotalHopDrops)
}
