package sim

import "time"

// FromDuration converts a wall-clock duration to simulated time. It is
// one of the two blessed crossings between time.Duration and sim.Time
// (the other is Time.AsDuration); everywhere else the simtime analyzer
// rejects mixing the two so that wall-clock quantities cannot leak into
// the deterministic core unnoticed. Both types count nanoseconds, so
// the conversion is exact.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds())
}

// AsDuration converts a simulated timestamp or interval to a
// wall-clock duration, for harness-side reporting and flag plumbing.
// See FromDuration for the conversion policy.
func (t Time) AsDuration() time.Duration {
	return time.Duration(int64(t))
}
