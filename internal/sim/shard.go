// Shard coordinator: conservative parallel discrete-event simulation
// over a set of Engines, bit-identical to one serial Engine.
//
// A ShardGroup partitions a simulation into n shards, each owning its
// own Engine (arena, heap, clock) and running on its own goroutine
// during a window. Synchronization is classic conservative lookahead
// (null-message/time-window advancement): with T the earliest pending
// event across all shards and L the minimum cross-shard latency, every
// shard may safely execute all events with timestamp < T + L before
// re-synchronizing, because a cross-shard handoff sent at or after T
// cannot arrive before T + L. Handoffs made during a window are staged
// and enqueued into the destination shard's heap at the barrier.
//
// Bit-identity with the serial engine is the hard invariant: the same
// events fire in the same global (at, seq) order with the same seq
// values, so every downstream tie-break, RNG draw, and counter matches
// a serial run exactly. The serial seq is a single monotone counter
// incremented per schedule call — a global quantity a shard cannot
// know mid-window (it depends on how calls from all shards interleave
// in serial execution order). The group reconstructs it exactly:
//
//   - Sequential phases (setup, between Run calls): every shard engine
//     draws seqs directly from the group's shared counter, so setup
//     scheduling is trivially identical to serial.
//   - During a window, shard s hands out provisional seqs base + k
//     (base = group counter frozen at the window start, k = the
//     shard's schedule-call count this window) and journals every
//     schedule call. Provisional seqs exceed all true seqs issued so
//     far, and within one shard their relative order equals the true
//     relative order, so the shard's own heap stays correctly ordered
//     mid-window. Cross-shard interleave cannot perturb a shard's
//     in-window ordering: an event executing in this window was either
//     enqueued before the window or scheduled by a same-shard parent
//     (handoffs always land in a later window).
//   - At the barrier the coordinator k-way merges the shards' journals
//     in global execution order — (at, true seq) of the *scheduling*
//     event — and replays the schedule calls against the real counter,
//     assigning each call the seq a serial engine would have issued.
//     Queued events are rekeyed in place (provisional → true; proven
//     order-preserving, see Engine.rekey), and staged handoffs are
//     inserted into their destination heaps under their true seqs.
//
// Resolving a provisional journal key at the barrier is always
// possible: the scheduling parent belongs to the same shard and
// executed earlier in the same window, so its journal entry — and the
// true seq assigned while consuming it — precedes the child's entry in
// that shard's stream.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// execRec journals one executed event that made at least one schedule
// call: its own key at execution time (seq may be provisional) and how
// many calls it made.
type execRec struct {
	at     Time
	seq    uint64
	nCalls uint64
}

// callRec journals one schedule call. dst < 0 is a local schedule
// (rekeyed at the barrier via id); dst >= 0 is a cross-shard handoff
// carrying the callback until the barrier stages it.
type callRec struct {
	at  Time
	id  EventID
	dst int32
	fn  func()
}

// handoff is a merged cross-shard event waiting to be inserted into
// its destination heap with its true global seq.
type handoff struct {
	at  Time
	seq uint64
	fn  func()
}

// shard is the per-engine view of a ShardGroup.
type shard struct {
	g    *ShardGroup
	idx  int
	eng  *Engine
	rng  *RNG
	solo bool // single-shard group: serial fast path, no journaling

	// Window state. Owned by the shard's worker goroutine during a
	// window and by the coordinator between windows; the start channel
	// and window WaitGroup order the handoff.
	inWindow bool
	k        uint64    // schedule calls made this window
	execLog  []execRec // executed events that scheduled something
	callLog  []callRec // every schedule call, in k order
	panicked any       // callback panic captured for the coordinator

	// Barrier state (coordinator only).
	execPos int
	callPos int
	trueOf  []uint64  // trueOf[j] = true seq of provisional base+j+1
	staged  []handoff // merged handoffs destined for this shard
	start   chan Time // window dispatch; nil until a windowed Run
}

// nextSeq issues the next sequence number for a schedule call on this
// shard: provisional during a window, drawn from the group's shared
// counter otherwise.
func (sh *shard) nextSeq() uint64 {
	if sh.inWindow {
		sh.k++
		return sh.g.counter + sh.k
	}
	sh.g.counter++
	return sh.g.counter
}

// noteLocal journals an in-window local schedule so the barrier can
// rekey it to its true seq.
func (sh *shard) noteLocal(at Time, id EventID) {
	if !sh.inWindow {
		return
	}
	sh.callLog = append(sh.callLog, callRec{at: at, id: id, dst: -1})
}

// runOne executes one window on the shard, capturing a callback panic
// so the coordinator can re-raise it after the barrier instead of
// killing the process from a worker goroutine.
func (sh *shard) runOne(limit Time) {
	defer func() {
		if r := recover(); r != nil {
			sh.panicked = r
		}
	}()
	sh.eng.runWindow(limit)
}

// ShardGroup coordinates n shard Engines so that their union behaves
// bit-identically to a single serial Engine. Construct with
// NewShardGroup, wire components to the per-shard engines (Shard), use
// Send for cross-shard scheduling, and drive the whole group with
// Run/RunAll. The group is not reentrant and, like Engine, not safe
// for concurrent use — except Stop, which may be called from any
// goroutine.
type ShardGroup struct {
	shards    []*shard
	lookahead Time
	counter   uint64 // true global schedule-order counter
	now       Time
	running   bool
	stop      atomic.Bool
}

// NewShardGroup returns a group of n engines synchronized with the
// given conservative lookahead: every cross-shard Send must have delay
// >= lookahead. Per-shard RNG streams are derived deterministically
// from seed and the shard index. n == 1 is the serial fast path — no
// windows, no journaling — so a -shards 1 run is an ordinary serial
// run behind the group API.
func NewShardGroup(n int, lookahead Time, seed uint64) *ShardGroup {
	if n < 1 {
		panic("sim: NewShardGroup with n < 1")
	}
	if lookahead <= 0 && n > 1 {
		panic("sim: NewShardGroup with non-positive lookahead")
	}
	g := &ShardGroup{shards: make([]*shard, n), lookahead: lookahead}
	root := NewRNG(seed)
	for i := range g.shards {
		sh := &shard{g: g, idx: i, eng: NewEngine(), rng: root.Fork(), solo: n == 1}
		sh.eng.sh = sh
		g.shards[i] = sh
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Lookahead returns the group's conservative lookahead.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// Shard returns shard i's engine. Components living on shard i must
// schedule only on this engine (or cross-shard via Send).
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i].eng }

// RNG returns shard i's private random stream.
func (g *ShardGroup) RNG(i int) *RNG { return g.shards[i].rng }

// Now returns the group's current simulated time.
func (g *ShardGroup) Now() Time { return g.now }

// Running reports whether a windowed run is in progress. Control-plane
// callers use it to reject mid-run mutation of state that shards read
// without synchronization (e.g. fabric link status).
func (g *ShardGroup) Running() bool { return g.running }

// Executed returns the total number of events executed across shards.
func (g *ShardGroup) Executed() uint64 {
	var n uint64
	for _, sh := range g.shards {
		n += sh.eng.Executed
	}
	return n
}

// Pending returns the total number of queued events across shards.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, sh := range g.shards {
		n += sh.eng.Pending()
	}
	return n
}

// Stop makes the in-progress Run/RunAll return at the next window
// barrier (so the executed prefix is a clean serial prefix), or the
// next Run a no-op if none is in progress. Safe from any goroutine.
func (g *ShardGroup) Stop() {
	if len(g.shards) == 1 {
		g.shards[0].eng.Stop()
		return
	}
	g.stop.Store(true)
}

// Send schedules fn on shard dst after delay, from code running on
// src. Same-shard sends are plain schedules. Cross-shard sends during
// a window must respect the lookahead (delay >= Lookahead) — that
// bound is what makes the window safe to run in parallel.
func (g *ShardGroup) Send(src *Engine, dst int, delay Time, fn func()) {
	sh := src.sh
	if sh == nil || sh.g != g {
		panic("sim: Send from an engine outside this group")
	}
	if dst < 0 || dst >= len(g.shards) {
		panic(fmt.Sprintf("sim: Send to invalid shard %d of %d", dst, len(g.shards)))
	}
	if fn == nil {
		panic("sim: Send with nil fn")
	}
	if dst == sh.idx {
		src.Schedule(delay, fn)
		return
	}
	if !sh.inWindow {
		// Sequential phase: clocks are aligned, and nextSeq on the
		// destination draws from the shared counter — identical to a
		// serial Schedule.
		g.shards[dst].eng.At(src.now+delay, fn)
		return
	}
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-shard Send with delay %v below lookahead %v", delay, g.lookahead))
	}
	// Consume a provisional seq (a serial engine's Schedule would have
	// consumed one here) and journal the handoff; the barrier assigns
	// the true seq and inserts it into dst's heap.
	sh.k++
	sh.callLog = append(sh.callLog, callRec{at: src.now + delay, dst: int32(dst), fn: fn})
}

// Run executes events in global timestamp order until all queues drain
// past until, Stop is called, or the clock would pass until. Events at
// exactly until still run, and the clock advances to until when not
// stopped — the same contract as Engine.Run.
func (g *ShardGroup) Run(until Time) Time {
	if len(g.shards) == 1 {
		g.now = g.shards[0].eng.Run(until)
		return g.now
	}
	stopped := g.runWindows(until)
	if g.now < until && !stopped {
		g.now = until
	}
	g.align()
	return g.now
}

// RunAll executes events until every shard's queue drains or Stop is
// called, returning the time of the last executed event.
func (g *ShardGroup) RunAll() Time {
	if len(g.shards) == 1 {
		g.now = g.shards[0].eng.RunAll()
		return g.now
	}
	const forever = Time(1<<62 - 1)
	g.runWindows(forever)
	g.align()
	return g.now
}

// align moves every shard clock to the group clock so that sequential-
// phase scheduling (which mixes engines) sees one coherent time.
func (g *ShardGroup) align() {
	for _, sh := range g.shards {
		if sh.eng.now < g.now {
			sh.eng.now = g.now
		}
	}
}

// runWindows is the coordinator loop: pick the window [T, T+L), run it
// on every shard that has work in it (in parallel when more than one
// does), then merge journals at the barrier. Returns whether the run
// was stopped.
func (g *ShardGroup) runWindows(until Time) bool {
	if g.running {
		panic("sim: ShardGroup.Run called reentrantly")
	}
	g.running = true
	defer func() { g.running = false }()

	var windowWG sync.WaitGroup
	workers := false
	defer func() {
		for _, sh := range g.shards {
			sh.inWindow = false
			if workers && sh.start != nil {
				close(sh.start)
				sh.start = nil
			}
		}
	}()
	for _, sh := range g.shards {
		sh.inWindow = true
	}

	for {
		if g.stop.Load() {
			g.stop.Store(false)
			return true
		}
		// T = earliest pending event anywhere; the window is [T, T+L).
		var t Time
		have := false
		for _, sh := range g.shards {
			if at, ok := sh.eng.peekAt(); ok && (!have || at < t) {
				t, have = at, true
			}
		}
		if !have || t > until {
			return false
		}
		limit := t + g.lookahead
		if limit > until+1 {
			// Engine.Run's bound is inclusive; runWindow's is strict.
			limit = until + 1
		}

		active := 0
		var only *shard
		for _, sh := range g.shards {
			if at, ok := sh.eng.peekAt(); ok && at < limit {
				active++
				only = sh
			}
		}
		if active == 1 {
			// One busy shard: run it inline and skip the goroutine
			// round-trip. Journaling stays on — its calls still consume
			// seqs that the barrier turns into true ones.
			only.runOne(limit)
		} else {
			if !workers {
				g.spawnWorkers(&windowWG)
				workers = true
			}
			windowWG.Add(active)
			for _, sh := range g.shards {
				if at, ok := sh.eng.peekAt(); ok && at < limit {
					sh.start <- limit
				}
			}
			windowWG.Wait()
		}
		g.barrier()
		for _, sh := range g.shards {
			if sh.panicked != nil {
				r := sh.panicked
				sh.panicked = nil
				panic(r)
			}
			if sh.eng.now > g.now {
				g.now = sh.eng.now
			}
			// An engine-level Stop from a callback stops the group at
			// this barrier, mirroring serial Stop-at-next-event.
			if sh.eng.stopped.Load() {
				sh.eng.stopped.Store(false)
				g.stop.Store(true)
			}
		}
	}
}

// spawnWorkers starts one goroutine per shard for the duration of this
// run; each exits when runWindows closes its start channel.
func (g *ShardGroup) spawnWorkers(wg *sync.WaitGroup) {
	for _, sh := range g.shards {
		sh.start = make(chan Time)
		go func(sh *shard) {
			for limit := range sh.start {
				sh.runOne(limit)
				wg.Done()
			}
		}(sh)
	}
}

// barrier merges the shards' window journals in global execution order
// and replays their schedule calls against the true counter: local
// schedules are rekeyed in place, cross-shard handoffs are inserted
// into their destination heaps. Runs on the coordinator with all
// workers idle.
func (g *ShardGroup) barrier() {
	base := g.counter
	for {
		// K-way merge step: pick the journaled event that executed
		// earliest in global order. A provisional head key resolves
		// through trueOf — its same-shard parent was merged earlier.
		best := -1
		var bestAt Time
		var bestSeq uint64
		for i, sh := range g.shards {
			if sh.execPos >= len(sh.execLog) {
				continue
			}
			rec := sh.execLog[sh.execPos]
			seq := rec.seq
			if seq > base {
				seq = sh.trueOf[seq-base-1]
			}
			if best < 0 || rec.at < bestAt || (rec.at == bestAt && seq < bestSeq) {
				best, bestAt, bestSeq = i, rec.at, seq
			}
		}
		if best < 0 {
			break
		}
		sh := g.shards[best]
		rec := sh.execLog[sh.execPos]
		sh.execPos++
		for c := uint64(0); c < rec.nCalls; c++ {
			call := sh.callLog[sh.callPos]
			sh.callPos++
			g.counter++
			sh.trueOf = append(sh.trueOf, g.counter)
			if call.dst < 0 {
				sh.eng.rekey(call.id, g.counter)
			} else {
				d := g.shards[call.dst]
				d.staged = append(d.staged, handoff{at: call.at, seq: g.counter, fn: call.fn})
			}
		}
	}
	for _, sh := range g.shards {
		for i := range sh.staged {
			h := &sh.staged[i]
			sh.eng.insertKeyed(h.at, h.seq, h.fn)
			h.fn = nil
		}
		for i := range sh.callLog {
			sh.callLog[i].fn = nil // don't pin dead closures in the reused backing array
		}
		sh.staged = sh.staged[:0]
		sh.execLog = sh.execLog[:0]
		sh.callLog = sh.callLog[:0]
		sh.trueOf = sh.trueOf[:0]
		sh.execPos, sh.callPos, sh.k = 0, 0, 0
	}
}
