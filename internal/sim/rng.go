package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** by Blackman & Vigna). Every source of randomness in the
// simulator must be derived from one seeded RNG so that runs are
// reproducible; math/rand's global state is never used.
type RNG struct {
	s [4]uint64
}

// NewRNG returns an RNG seeded from seed via SplitMix64 so that even
// small or similar seeds produce well-mixed streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to expand the seed into four non-zero state words.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Fork returns a new RNG whose stream is independent of (but
// deterministically derived from) r. Use it to give each component its
// own stream so adding events to one component does not perturb another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inverse transform sampling (deterministic, no rejection loop).
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	if u >= 1 {
		u = 1 - 1e-16
	}
	return -math.Log(1 - u)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1 (Box–Muller, deterministic).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	if u1 <= 0 {
		u1 = 1e-16
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Duration returns a uniform Time in [0, d). It panics if d <= 0.
func (r *RNG) Duration(d Time) Time {
	return Time(r.Int63n(int64(d)))
}
