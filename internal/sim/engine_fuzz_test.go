package sim

import (
	"container/heap"
	"fmt"
	"testing"
)

// This file checks the pooled-arena 4-ary heap engine against an
// oracle: a frozen copy of the original container/heap implementation
// the repo seeded with. Both engines are driven through the same
// fuzz-derived script of schedules, cancels, and nested callbacks; any
// divergence in (label, time) firing order is a determinism break.

// ---- oracle: the seed engine, verbatim semantics ----

type oracleEvent struct {
	at       Time
	seq      uint64
	fn       func()
	index    int
	canceled bool
}

type oracleHeap []*oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *oracleHeap) Push(x any) {
	ev := x.(*oracleEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type oracleEngine struct {
	now   Time
	seq   uint64
	queue oracleHeap
}

func (e *oracleEngine) schedule(delay Time, fn func()) *oracleEvent {
	if delay < 0 {
		delay = 0
	}
	t := e.now + delay
	e.seq++
	ev := &oracleEvent{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *oracleEngine) cancel(ev *oracleEvent) bool {
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	return true
}

func (e *oracleEngine) runAll() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*oracleEvent)
		e.now = ev.at
		ev.fn()
	}
}

// ---- shared driver ----

// engineAPI abstracts the two engines so one script drives both.
type engineAPI struct {
	schedule func(delay Time, fn func()) (cancel func() bool)
	runAll   func()
	now      func() Time
}

// driveScript interprets data as a schedule/cancel script: a handful of
// root events, each callback possibly scheduling a child (tight delays,
// so same-instant ties are common) and possibly canceling an earlier
// event. It returns the (label, time) firing log.
func driveScript(data []byte, api engineAPI) []int64 {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	var log []int64
	var cancels []func() bool
	label := int64(0)
	var mk func() func()
	mk = func() func() {
		l := label
		label++
		return func() {
			log = append(log, l, int64(api.now()))
			op := next()
			if op&1 != 0 && label < 512 {
				cancels = append(cancels, api.schedule(Time(next()&15), mk()))
			}
			if op&2 != 0 && len(cancels) > 0 {
				cancels[int(next())%len(cancels)]()
			}
		}
	}
	roots := int(next())%12 + 2
	for i := 0; i < roots; i++ {
		cancels = append(cancels, api.schedule(Time(next()&7), mk()))
	}
	api.runAll()
	return log
}

func realAPI(e *Engine) engineAPI {
	return engineAPI{
		schedule: func(d Time, fn func()) func() bool {
			id := e.Schedule(d, fn)
			return func() bool { return e.Cancel(id) }
		},
		runAll: func() { e.RunAll() },
		now:    e.Now,
	}
}

func oracleAPI(e *oracleEngine) engineAPI {
	return engineAPI{
		schedule: func(d Time, fn func()) func() bool {
			ev := e.schedule(d, fn)
			return func() bool { return e.cancel(ev) }
		},
		runAll: func() { e.runAll() },
		now:    func() Time { return e.now },
	}
}

// ---- sharded engine vs serial engine ----
//
// The second fuzz target drives the same multi-domain script through a
// single serial Engine and through ShardGroups of 1, 2, 4, and 7
// shards. Domains (think: pods) map onto shards round-robin; each
// domain logs (time, rng draw) at every firing, so any divergence in
// event order, tie-breaking, or RNG stream interleave shows up as a
// log or final-state mismatch. Cross-domain sends use delays >= the
// lookahead, exactly the bound the fabric's cross-pod links guarantee.

const (
	shardFuzzDomains   = 8
	shardFuzzLookahead = Time(100)
)

// shardEnv abstracts one run — serial or sharded — over a fixed set of
// domains for driveShardScript. schedule returns a cancel closure only
// for same-domain schedules (cancels must stay shard-local).
type shardEnv struct {
	schedule func(src, dst int, delay Time, fn func()) (cancel func() bool)
	rng      func(d int) *RNG
	now      func(d int) Time
	runAll   func()
}

// driveShardScript interprets data as per-domain schedule/send/cancel
// scripts (bytes dealt round-robin so every domain has its own cursor
// and budget — callbacks touch only state owned by their domain's
// shard, keeping the parallel run race-free by construction). It
// returns the per-domain (time, draw) firing logs.
func driveShardScript(data []byte, env *shardEnv) [][]uint64 {
	const d0 = shardFuzzDomains
	scripts := make([][]byte, d0)
	for i, b := range data {
		scripts[i%d0] = append(scripts[i%d0], b)
	}
	pos := make([]int, d0)
	next := func(d int) byte {
		if pos[d] >= len(scripts[d]) {
			return 0
		}
		b := scripts[d][pos[d]]
		pos[d]++
		return b
	}

	logs := make([][]uint64, d0)
	budget := make([]int, d0)
	cancels := make([][]func() bool, d0)
	for d := range budget {
		budget[d] = 300
	}
	var mk func(d int) func()
	mk = func(d int) func() {
		return func() {
			logs[d] = append(logs[d], uint64(env.now(d)), env.rng(d).Uint64())
			if budget[d] <= 0 {
				return
			}
			op := next(d)
			if op&1 != 0 {
				budget[d]--
				if c := env.schedule(d, d, Time(next(d)&63), mk(d)); c != nil {
					cancels[d] = append(cancels[d], c)
				}
			}
			if op&2 != 0 {
				budget[d]--
				dst := int(next(d)) % d0
				env.schedule(d, dst, shardFuzzLookahead+Time(next(d)&63), mk(dst))
			}
			if op&4 != 0 && len(cancels[d]) > 0 {
				cancels[d][int(next(d))%len(cancels[d])]()
			}
		}
	}
	// Root events are seeded in the sequential phase, in the same order
	// for every engine shape.
	for d := 0; d < d0; d++ {
		n := int(next(d))%3 + 1
		for i := 0; i < n; i++ {
			env.schedule(d, d, Time(next(d)&31), mk(d))
		}
	}
	env.runAll()
	return logs
}

// shardRunResult captures everything the bit-identity claim covers:
// per-domain event logs, the post-run state of every RNG stream, the
// executed-event count, and the final clock.
type shardRunResult struct {
	logs     [][]uint64
	finals   []uint64
	executed uint64
	now      Time
}

// runShardScriptSerial is the reference: one serial Engine, with the
// same per-shard RNG stream derivation a ShardGroup of numShards would
// use (domain d draws from stream d % numShards).
func runShardScriptSerial(data []byte, numShards int, seed uint64) shardRunResult {
	eng := NewEngine()
	root := NewRNG(seed)
	streams := make([]*RNG, numShards)
	for i := range streams {
		streams[i] = root.Fork()
	}
	env := &shardEnv{
		schedule: func(src, dst int, delay Time, fn func()) func() bool {
			id := eng.Schedule(delay, fn)
			if src == dst {
				return func() bool { return eng.Cancel(id) }
			}
			return nil
		},
		rng:    func(d int) *RNG { return streams[d%numShards] },
		now:    func(d int) Time { return eng.Now() },
		runAll: func() { eng.RunAll() },
	}
	logs := driveShardScript(data, env)
	res := shardRunResult{logs: logs, executed: eng.Executed, now: eng.Now()}
	for _, r := range streams {
		res.finals = append(res.finals, r.Uint64())
	}
	return res
}

// runShardScriptGroup runs the same script on a ShardGroup.
func runShardScriptGroup(data []byte, numShards int, seed uint64) shardRunResult {
	g := NewShardGroup(numShards, shardFuzzLookahead, seed)
	shardOf := func(d int) int { return d % numShards }
	env := &shardEnv{
		schedule: func(src, dst int, delay Time, fn func()) func() bool {
			se, de := shardOf(src), shardOf(dst)
			if se != de {
				g.Send(g.Shard(se), de, delay, fn)
				return nil
			}
			id := g.Shard(de).Schedule(delay, fn)
			if src == dst {
				return func() bool { return g.Shard(de).Cancel(id) }
			}
			return nil
		},
		rng:    func(d int) *RNG { return g.RNG(shardOf(d)) },
		now:    func(d int) Time { return g.Shard(shardOf(d)).Now() },
		runAll: func() { g.RunAll() },
	}
	logs := driveShardScript(data, env)
	res := shardRunResult{logs: logs, executed: g.Executed(), now: g.Now()}
	for i := 0; i < numShards; i++ {
		res.finals = append(res.finals, g.RNG(i).Uint64())
	}
	return res
}

// diffShardResults returns a description of the first divergence
// between two runs, or "" when they are bit-identical.
func diffShardResults(want, got shardRunResult) string {
	for d := range want.logs {
		w, g := want.logs[d], got.logs[d]
		if len(w) != len(g) {
			return fmt.Sprintf("domain %d: %d records vs %d", d, len(w)/2, len(g)/2)
		}
		for i := range w {
			if w[i] != g[i] {
				return fmt.Sprintf("domain %d record %d: serial (t=%d draw=%#x) vs sharded (t=%d draw=%#x)",
					d, i/2, w[i&^1], w[i|1], g[i&^1], g[i|1])
			}
		}
	}
	for i := range want.finals {
		if want.finals[i] != got.finals[i] {
			return fmt.Sprintf("stream %d final state diverged", i)
		}
	}
	if want.executed != got.executed {
		return fmt.Sprintf("executed %d events vs %d", want.executed, got.executed)
	}
	if want.now != got.now {
		return fmt.Sprintf("final clock %v vs %v", want.now, got.now)
	}
	return ""
}

// FuzzShardedEngine asserts that a ShardGroup of 1, 2, 4, or 7 shards
// produces byte-identical per-domain event logs, final RNG states,
// executed counts, and final clocks to a serial engine, under random
// schedules with cross-shard sends and cancels from inside callbacks.
func FuzzShardedEngine(f *testing.F) {
	f.Add([]byte{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{255, 254, 253, 3, 3, 3, 7, 7, 7, 1, 0, 255, 9, 9, 2, 2, 4, 4, 6, 6})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, shards := range []int{1, 2, 4, 7} {
			want := runShardScriptSerial(data, shards, 42)
			got := runShardScriptGroup(data, shards, 42)
			if d := diffShardResults(want, got); d != "" {
				t.Fatalf("%d shards: sharded run diverged from serial: %s", shards, d)
			}
		}
	})
}

// FuzzEngineHeapOrder asserts the 4-ary arena heap pops events in
// exactly the (at, seq) order of the original container/heap engine,
// under interleaved scheduling and cancellation from inside callbacks.
func FuzzEngineHeapOrder(f *testing.F) {
	f.Add([]byte{5, 0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{12, 3, 3, 3, 3, 1, 4, 2, 9, 7, 7, 0, 1, 1, 2, 2})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := driveScript(data, realAPI(NewEngine()))
		want := driveScript(data, oracleAPI(&oracleEngine{}))
		if len(got) != len(want) {
			t.Fatalf("fired %d records, oracle fired %d", len(got)/2, len(want)/2)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("divergence at record %d: engine %v, oracle %v", i/2, got[i:i+2], want[i:i+2])
			}
		}
	})
}
