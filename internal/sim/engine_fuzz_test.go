package sim

import (
	"container/heap"
	"testing"
)

// This file checks the pooled-arena 4-ary heap engine against an
// oracle: a frozen copy of the original container/heap implementation
// the repo seeded with. Both engines are driven through the same
// fuzz-derived script of schedules, cancels, and nested callbacks; any
// divergence in (label, time) firing order is a determinism break.

// ---- oracle: the seed engine, verbatim semantics ----

type oracleEvent struct {
	at       Time
	seq      uint64
	fn       func()
	index    int
	canceled bool
}

type oracleHeap []*oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *oracleHeap) Push(x any) {
	ev := x.(*oracleEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

type oracleEngine struct {
	now   Time
	seq   uint64
	queue oracleHeap
}

func (e *oracleEngine) schedule(delay Time, fn func()) *oracleEvent {
	if delay < 0 {
		delay = 0
	}
	t := e.now + delay
	e.seq++
	ev := &oracleEvent{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *oracleEngine) cancel(ev *oracleEvent) bool {
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	return true
}

func (e *oracleEngine) runAll() {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*oracleEvent)
		e.now = ev.at
		ev.fn()
	}
}

// ---- shared driver ----

// engineAPI abstracts the two engines so one script drives both.
type engineAPI struct {
	schedule func(delay Time, fn func()) (cancel func() bool)
	runAll   func()
	now      func() Time
}

// driveScript interprets data as a schedule/cancel script: a handful of
// root events, each callback possibly scheduling a child (tight delays,
// so same-instant ties are common) and possibly canceling an earlier
// event. It returns the (label, time) firing log.
func driveScript(data []byte, api engineAPI) []int64 {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	var log []int64
	var cancels []func() bool
	label := int64(0)
	var mk func() func()
	mk = func() func() {
		l := label
		label++
		return func() {
			log = append(log, l, int64(api.now()))
			op := next()
			if op&1 != 0 && label < 512 {
				cancels = append(cancels, api.schedule(Time(next()&15), mk()))
			}
			if op&2 != 0 && len(cancels) > 0 {
				cancels[int(next())%len(cancels)]()
			}
		}
	}
	roots := int(next())%12 + 2
	for i := 0; i < roots; i++ {
		cancels = append(cancels, api.schedule(Time(next()&7), mk()))
	}
	api.runAll()
	return log
}

func realAPI(e *Engine) engineAPI {
	return engineAPI{
		schedule: func(d Time, fn func()) func() bool {
			id := e.Schedule(d, fn)
			return func() bool { return e.Cancel(id) }
		},
		runAll: func() { e.RunAll() },
		now:    e.Now,
	}
}

func oracleAPI(e *oracleEngine) engineAPI {
	return engineAPI{
		schedule: func(d Time, fn func()) func() bool {
			ev := e.schedule(d, fn)
			return func() bool { return e.cancel(ev) }
		},
		runAll: func() { e.runAll() },
		now:    func() Time { return e.now },
	}
}

// FuzzEngineHeapOrder asserts the 4-ary arena heap pops events in
// exactly the (at, seq) order of the original container/heap engine,
// under interleaved scheduling and cancellation from inside callbacks.
func FuzzEngineHeapOrder(f *testing.F) {
	f.Add([]byte{5, 0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{12, 3, 3, 3, 3, 1, 4, 2, 9, 7, 7, 0, 1, 1, 2, 2})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := driveScript(data, realAPI(NewEngine()))
		want := driveScript(data, oracleAPI(&oracleEngine{}))
		if len(got) != len(want) {
			t.Fatalf("fired %d records, oracle fired %d", len(got)/2, len(want)/2)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("divergence at record %d: engine %v, oracle %v", i/2, got[i:i+2], want[i:i+2])
			}
		}
	})
}
