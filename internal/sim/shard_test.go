package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestShardGroupMatchesSerial pins the bit-identity invariant on fixed
// scripts for a spread of shard counts (including counts that don't
// divide the domain count, so shards carry uneven load).
func TestShardGroupMatchesSerial(t *testing.T) {
	scripts := [][]byte{
		{7, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		{3, 3, 3, 3, 255, 255, 0, 0, 7, 7, 7, 7, 2, 4, 6, 8, 1, 3, 5, 7, 9, 11},
		{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255},
		{},
	}
	for si, data := range scripts {
		for _, shards := range []int{1, 2, 3, 4, 7, 8} {
			want := runShardScriptSerial(data, shards, 99)
			got := runShardScriptGroup(data, shards, 99)
			if d := diffShardResults(want, got); d != "" {
				t.Fatalf("script %d, %d shards: %s", si, shards, d)
			}
		}
	}
}

// TestShardGroupSequentialPhase checks scheduling and cross-shard sends
// while no run is in progress: they draw from the shared counter and
// behave exactly like serial schedules, including sub-lookahead delays.
func TestShardGroupSequentialPhase(t *testing.T) {
	g := NewShardGroup(2, 100, 1)
	// Logs are per-shard: callbacks may only touch state owned by
	// their own shard (a shared slice would be racy and order would
	// reflect scheduler interleaving, not simulated time).
	logs := make([][]string, 2)
	mark := func(s int, label string) func() {
		return func() { logs[s] = append(logs[s], fmt.Sprintf("%s@%v", label, g.Shard(s).Now())) }
	}
	g.Shard(0).Schedule(50, mark(0, "a"))
	// Cross-shard sends below the lookahead are legal before the run
	// starts — there is no window to protect yet.
	g.Send(g.Shard(0), 1, 10, mark(1, "b"))
	g.Send(g.Shard(1), 0, 10, mark(0, "c"))
	g.Run(200)
	if got := strings.Join(logs[0], ","); got != "c@10ns,a@50ns" {
		t.Fatalf("shard 0 log = %q, want c@10ns,a@50ns", got)
	}
	if got := strings.Join(logs[1], ","); got != "b@10ns" {
		t.Fatalf("shard 1 log = %q, want b@10ns", got)
	}
	if g.Now() != 200 {
		t.Fatalf("Now() = %v after Run(200), want 200", g.Now())
	}
	for i := 0; i < 2; i++ {
		if n := g.Shard(i).Now(); n != 200 {
			t.Fatalf("shard %d clock = %v after Run(200), want 200", i, n)
		}
	}
}

// TestShardGroupSameInstantTieBreak checks the FIFO tie-break across a
// handoff: events landing at the same instant on one shard fire in
// global schedule order even when one of them crossed a shard boundary.
func TestShardGroupSameInstantTieBreak(t *testing.T) {
	g := NewShardGroup(2, 100, 1)
	var order []string
	g.Shard(0).Schedule(10, func() {
		// Scheduled first: the handoff arriving on shard 1 at t=110.
		g.Send(g.Shard(0), 1, 100, func() { order = append(order, "handoff") })
	})
	g.Shard(1).Schedule(20, func() {
		// Scheduled second (t=20 > t=10): the local event at t=110.
		g.Shard(1).Schedule(90, func() { order = append(order, "local") })
	})
	g.RunAll()
	if got := strings.Join(order, ","); got != "handoff,local" {
		t.Fatalf("same-instant order = %q, want handoff,local (handoff was scheduled first)", got)
	}
	if g.Now() != 110 {
		t.Fatalf("Now() = %v, want 110", g.Now())
	}
}

// TestShardGroupSendBelowLookaheadPanics pins the conservative bound:
// an in-window cross-shard send under the lookahead would break the
// window safety proof, so it must panic loudly rather than reorder.
func TestShardGroupSendBelowLookaheadPanics(t *testing.T) {
	g := NewShardGroup(2, 100, 1)
	panicked := make(chan any, 1)
	g.Shard(0).Schedule(0, func() {
		defer func() { panicked <- recover() }()
		g.Send(g.Shard(0), 1, 99, func() {})
	})
	// Give shard 1 concurrent work so the window genuinely runs on
	// worker goroutines.
	g.Shard(1).Schedule(0, func() {})
	g.RunAll()
	select {
	case r := <-panicked:
		if r == nil {
			t.Fatal("cross-shard Send below lookahead did not panic")
		}
	default:
		t.Fatal("sender callback never ran")
	}
}

// TestShardGroupStopFromCallback checks window-granular stop: an
// engine-level Stop raised inside a callback halts the whole group at
// the next barrier, and a resumed run completes with a state identical
// to an uninterrupted serial run.
func TestShardGroupStopFromCallback(t *testing.T) {
	build := func() (*ShardGroup, *[][]uint64) {
		g := NewShardGroup(2, 100, 7)
		logs := make([][]uint64, 2)
		for s := 0; s < 2; s++ {
			s := s
			var tick func(n int) func()
			tick = func(n int) func() {
				return func() {
					logs[s] = append(logs[s], uint64(g.Shard(s).Now()), g.RNG(s).Uint64())
					if n > 0 {
						g.Shard(s).Schedule(30, tick(n-1))
						g.Send(g.Shard(s), 1-s, 150, func() {})
					}
				}
			}
			g.Shard(s).Schedule(Time(s), tick(20))
		}
		return g, &logs
	}

	// Reference: run to completion without stopping.
	ref, refLogs := build()
	ref.RunAll()

	g, logs := build()
	fired := false
	g.Shard(0).Schedule(200, func() {
		fired = true
		g.Shard(0).Stop()
	})
	g.Run(5000)
	if !fired {
		t.Fatal("stop trigger never fired")
	}
	if g.Executed() >= ref.Executed() {
		t.Fatalf("stop did not halt early: executed %d of %d", g.Executed(), ref.Executed())
	}
	g.RunAll()
	if g.Executed() != ref.Executed()+1 {
		t.Fatalf("resumed run executed %d events, reference %d (+1 trigger)", g.Executed(), ref.Executed())
	}
	for s := range *refLogs {
		w, got := (*refLogs)[s], (*logs)[s]
		if len(w) != len(got) {
			t.Fatalf("shard %d: %d records vs reference %d", s, len(got), len(w))
		}
		for i := range w {
			if w[i] != got[i] {
				t.Fatalf("shard %d record %d diverged after stop+resume", s, i/2)
			}
		}
	}
}

// TestShardGroupStopFromAnotherGoroutine exercises the cross-goroutine
// stop path under -race: a watcher goroutine stops a group that would
// otherwise run a long self-rescheduling chain.
func TestShardGroupStopFromAnotherGoroutine(t *testing.T) {
	g := NewShardGroup(2, 100, 1)
	progress := make(chan struct{})
	var once sync.Once
	for s := 0; s < 2; s++ {
		s := s
		var spin func()
		n := 0
		spin = func() {
			n++
			if s == 0 && n == 500 {
				once.Do(func() { close(progress) })
			}
			g.Shard(s).Schedule(1, spin)
		}
		g.Shard(s).Schedule(0, spin)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-progress
		g.Stop()
	}()
	g.RunAll()
	wg.Wait()
	if g.Executed() < 500 {
		t.Fatalf("executed %d events, want >= 500 before stop", g.Executed())
	}
	if g.Pending() == 0 {
		t.Fatal("stop consumed the pending self-rescheduling chain")
	}
}

// TestShardGroupPanicPropagates checks that a callback panic on a
// worker goroutine resurfaces from Run on the caller's goroutine
// instead of crashing the process from the worker.
func TestShardGroupPanicPropagates(t *testing.T) {
	g := NewShardGroup(2, 100, 1)
	g.Shard(0).Schedule(10, func() { panic("boom") })
	g.Shard(1).Schedule(10, func() {})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	g.RunAll()
	t.Fatal("panic did not propagate")
}

// TestShardGroupValidation pins the constructor and Send argument
// contracts.
func TestShardGroupValidation(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewShardGroup(0)", func() { NewShardGroup(0, 100, 1) })
	expectPanic("zero lookahead", func() { NewShardGroup(2, 0, 1) })
	g := NewShardGroup(2, 100, 1)
	expectPanic("bad dst", func() { g.Send(g.Shard(0), 2, 200, func() {}) })
	expectPanic("nil fn", func() { g.Send(g.Shard(0), 1, 200, nil) })
	expectPanic("foreign engine", func() { g.Send(NewEngine(), 1, 200, func() {}) })
	expectPanic("Run on shard engine", func() { g.Shard(0).Run(10) })
}
