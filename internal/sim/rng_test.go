package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(7)
	f := r.Fork()
	// The fork must not replay the parent's stream.
	a := make([]uint64, 50)
	for i := range a {
		a[i] = r.Uint64()
	}
	for i := 0; i < 50; i++ {
		v := f.Uint64()
		for _, x := range a {
			if v == x {
				t.Fatal("forked stream collided with parent stream")
			}
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRangeProperty(t *testing.T) {
	prop := func(seed uint64, n uint16) bool {
		r := NewRNG(seed)
		m := int(n)%1000 + 1
		for i := 0; i < 100; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n)%64 + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	r := NewRNG(99)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	want := n / 16
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, want)
		}
	}
}
