package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{5 * Microsecond, Microsecond, 3 * Microsecond, 2 * Microsecond} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	want := []Time{Microsecond, 2 * Microsecond, 3 * Microsecond, 5 * Microsecond}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestEngineNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(Second, func() {
		fired := false
		e.Schedule(-5*Second, func() { fired = true })
		e2at := e.Now()
		_ = e2at
		_ = fired
	})
	// Schedule an event in the past via At from inside a callback.
	var at Time = -1
	e.Schedule(2*Second, func() {
		e.At(Second, func() { at = e.Now() }) // 1s is already in the past
	})
	e.RunAll()
	if at != 2*Second {
		t.Errorf("past event fired at %v, want clamped to 2s", at)
	}
}

func TestEngineRunHonorsHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Second, func() { ran++ })
	e.Schedule(3*Second, func() { ran++ })
	e.Run(2 * Second)
	if ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunAll()
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestEngineRunAdvancesClockToHorizonWhenDrained(t *testing.T) {
	e := NewEngine()
	e.Schedule(Millisecond, func() {})
	e.Run(Second)
	if e.Now() != Second {
		t.Fatalf("Now() = %v after drain, want 1s", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(Second, func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	if e.Cancel(EventID{}) {
		t.Fatal("Cancel of zero EventID returned true")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEngineStopFromCallback(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Second, func() { ran++; e.Stop() })
	e.Schedule(2*Second, func() { ran++ })
	e.RunAll()
	if ran != 1 {
		t.Fatalf("ran %d, want 1 (Stop should halt the loop)", ran)
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	end := e.RunAll()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if end != 99*Microsecond {
		t.Fatalf("end time = %v, want 99us", end)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	e := NewEngine()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Reset(Second)
	tm.Reset(2 * Second) // supersedes the first arming
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	e.RunAll()
	if fires != 1 {
		t.Fatalf("timer fired %d times, want 1", fires)
	}
	if e.Now() != 2*Second {
		t.Fatalf("fired at %v, want 2s", e.Now())
	}
	tm.Reset(Second)
	if !tm.Stop() {
		t.Fatal("Stop returned false for armed timer")
	}
	if tm.Stop() {
		t.Fatal("Stop of disarmed timer returned true")
	}
	e.RunAll()
	if fires != 1 {
		t.Fatalf("stopped timer fired; fires = %d", fires)
	}
}

// Property: for any set of delays, events execute in sorted order of
// their absolute firing times.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Microsecond, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine clock never moves backwards regardless of the
// interleaving of scheduling and cancellation.
func TestEngineMonotonicClockProperty(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		e := NewEngine()
		rng := NewRNG(seed)
		last := Time(-1)
		ok := true
		var ids []EventID
		for i := 0; i < int(n)+1; i++ {
			id := e.Schedule(rng.Duration(Millisecond)+1, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if rng.Float64() < 0.3 {
					ids = append(ids, e.Schedule(rng.Duration(Microsecond)+1, func() {
						if e.Now() < last {
							ok = false
						}
						last = e.Now()
					}))
				}
			})
			if rng.Float64() < 0.1 {
				e.Cancel(id)
			}
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineStopBeforeRunReturnsImmediately(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Second, func() { ran++ })
	e.Stop() // no run in progress: the *next* run must be a no-op
	if got := e.Run(2 * Second); got != 0 {
		t.Fatalf("stopped Run returned %v, want 0 (clock untouched)", got)
	}
	if ran != 0 {
		t.Fatal("pre-run Stop was discarded: event executed")
	}
	// The pending stop is consumed; a subsequent run proceeds normally.
	e.RunAll()
	if ran != 1 {
		t.Fatalf("run after consumed Stop executed %d events, want 1", ran)
	}
}

func TestEngineStopBeforeRunAll(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(Microsecond, func() { ran = true })
	e.Stop()
	e.RunAll()
	if ran {
		t.Fatal("RunAll executed events despite pre-run Stop")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineCancelSameInstantFromCallback(t *testing.T) {
	e := NewEngine()
	var idB EventID
	bRan := false
	e.Schedule(Millisecond, func() {
		if !e.Cancel(idB) {
			t.Error("Cancel of a same-instant pending event returned false")
		}
	})
	idB = e.Schedule(Millisecond, func() { bRan = true })
	e.RunAll()
	if bRan {
		t.Fatal("event canceled from a same-instant callback still fired")
	}
}

func TestTimerResetInsideOwnFire(t *testing.T) {
	e := NewEngine()
	fires := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		fires++
		if tm.Armed() {
			t.Error("timer reports armed from inside its own fire")
		}
		if fires == 1 {
			tm.Reset(Millisecond)
		}
	})
	tm.Reset(Millisecond)
	end := e.RunAll()
	if fires != 2 {
		t.Fatalf("timer fired %d times, want 2", fires)
	}
	if end != 2*Millisecond {
		t.Fatalf("last fire at %v, want 2ms", end)
	}
	if tm.Armed() {
		t.Fatal("timer armed after final fire")
	}
}

func TestEventIDGenerationSurvivesSlotReuse(t *testing.T) {
	e := NewEngine()
	fired := 0
	a := e.Schedule(Second, func() { t.Error("canceled event fired") })
	if !e.Cancel(a) {
		t.Fatal("Cancel of pending event returned false")
	}
	// b reuses a's arena slot (LIFO free list); a's ID must stay dead.
	b := e.Schedule(Second, func() { fired++ })
	if e.Armed(a) {
		t.Fatal("stale EventID reports armed after slot reuse")
	}
	if !e.Armed(b) {
		t.Fatal("live EventID reports unarmed")
	}
	if e.Cancel(a) {
		t.Fatal("stale EventID canceled the slot's new occupant")
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("new occupant fired %d times, want 1", fired)
	}
	if e.Armed(b) || e.Cancel(b) {
		t.Fatal("fired event still armed/cancelable")
	}
}

func TestTimerArmedNotConfusedBySlotReuse(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	tm.Reset(Microsecond)
	e.RunAll() // timer fires; its slot returns to the free list
	// A fresh event grabs the freed slot; the timer must not claim it.
	e.Schedule(Second, func() {})
	if tm.Armed() {
		t.Fatal("fired timer reports armed after its event slot was reused")
	}
	if tm.Stop() {
		t.Fatal("Stop of fired timer canceled another event")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (unrelated event must survive)", e.Pending())
	}
}
