package sim

import (
	"testing"
	"time"
)

func TestFromDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want Time
	}{
		{0, 0},
		{time.Nanosecond, Nanosecond},
		{time.Microsecond, Microsecond},
		{time.Millisecond, Millisecond},
		{time.Second, Second},
		{-5 * time.Microsecond, -5 * Microsecond},
		{3*time.Second + 250*time.Millisecond, 3*Second + 250*Millisecond},
	}
	for _, c := range cases {
		if got := FromDuration(c.d); got != c.want {
			t.Errorf("FromDuration(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestAsDurationRoundTrip(t *testing.T) {
	for _, tm := range []Time{0, 1, Microsecond, 7 * Second, -3 * Millisecond} {
		if got := FromDuration(tm.AsDuration()); got != tm {
			t.Errorf("FromDuration(%d.AsDuration()) = %d, want identity", tm, got)
		}
	}
}
