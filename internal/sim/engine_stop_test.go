package sim

import (
	"sync"
	"testing"
)

// TestEngineStopFromAnotherGoroutine is the -race regression for the
// Stop flag: prestod's job-cancel path calls Engine.Stop from a
// goroutine other than the one inside Run, which was a data race while
// stopped was a plain bool. The engine runs a self-rescheduling chain
// that only ends when the watcher goroutine stops it.
func TestEngineStopFromAnotherGoroutine(t *testing.T) {
	e := NewEngine()
	progress := make(chan struct{})
	n := 0
	var spin func()
	spin = func() {
		n++
		if n == 1000 {
			close(progress)
		}
		e.Schedule(1, spin)
	}
	e.Schedule(0, spin)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-progress
		e.Stop()
	}()
	e.RunAll()
	wg.Wait()

	if e.Executed < 1000 {
		t.Fatalf("executed %d events, want >= 1000 before the cross-goroutine stop", e.Executed)
	}
	if e.Pending() == 0 {
		t.Fatal("the self-rescheduling chain should still be pending after Stop")
	}
	// The stop was consumed: a fresh run makes progress again.
	before := e.Executed
	e.Run(e.Now() + 10)
	if e.Executed <= before {
		t.Fatal("engine did not resume after a consumed cross-goroutine Stop")
	}
}
