// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution. It is the substrate every other package in
// this repository runs on: links, switches, NICs, GRO timers, and TCP
// retransmission timers are all events scheduled on a single Engine.
//
// Determinism: events that fire at the same instant are executed in the
// order they were scheduled (FIFO tie-break on a monotonically increasing
// sequence number), and all randomness must come from an RNG derived from
// the engine's seed. Two runs with the same seed produce identical
// results.
//
// Performance: the hot path (Schedule → dispatch) is allocation-free in
// steady state. Events live in a pooled arena (a slice of slots recycled
// through a free list) and are ordered by an intrusive 4-ary min-heap of
// slot indices, so scheduling neither boxes values into interfaces nor
// touches the garbage collector. Arena invariants, for future editors:
//
//   - A slot is in exactly one of three states: queued (pos >= 0, index
//     into heap), firing (popped this dispatch, pos == -1, not yet
//     released), or free (on the free list, pos == -1, fn == nil).
//   - EventID carries the slot's generation at allocation time. Every
//     release increments the generation, so a stale EventID — one whose
//     event fired, was canceled, or whose slot was reused — can never
//     cancel or observe the slot's next occupant.
//   - The slot is released *before* its callback runs: from inside a
//     callback, the firing event's own EventID is already dead, and a
//     Schedule there may legitimately reuse the slot.
//   - fn is cleared on release so the arena never pins dead closures.
package sim

import (
	"fmt"
	"sync/atomic"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// eventSlot is one arena cell. See the package comment for the state
// machine and generation rules.
type eventSlot struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	gen uint64 // bumped on every release; EventIDs must match to act
	fn  func()

	pos  int32 // index in Engine.heap, or -1 when firing/free
	next int32 // next free slot while on the free list
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid and safe to Cancel (a no-op). IDs are generation-
// counted: once the event fires or is canceled, the ID is dead even if
// its arena slot is reused by a later Schedule.
type EventID struct {
	slot int32
	gen  uint64
}

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with NewEngine.
type Engine struct {
	now   Time
	seq   uint64
	arena []eventSlot
	free  int32   // head of the free-slot list, -1 when empty
	heap  []int32 // 4-ary min-heap of arena indices, ordered by (at, seq)
	// sh is non-nil when the engine is one shard of a ShardGroup; it
	// redirects sequence-number draws to the group so the global
	// schedule order stays bit-identical to a serial run. See shard.go.
	sh      *shard
	running bool
	// stopped is written by Stop — which may run on another goroutine
	// (prestod job cancel, a Stop-watching test) — and read by the run
	// loop, so it must be atomic.
	stopped atomic.Bool

	// Executed counts events that have run, as a cheap progress/liveness
	// measure for tests and benchmarks.
	Executed uint64
	// PeakPending is the high-water mark of the event queue — the
	// engine's peak heap depth, exposed as a telemetry probe.
	PeakPending int
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// alloc takes a slot off the free list, growing the arena when empty.
//
//prestolint:noalloc
func (e *Engine) alloc() int32 {
	if i := e.free; i >= 0 {
		e.free = e.arena[i].next
		return i
	}
	//prestolint:allow hotalloc -- arena high-water growth is amortized; steady state reuses the free list (bench-gated 0 allocs/op)
	e.arena = append(e.arena, eventSlot{gen: 1, pos: -1, next: -1})
	return int32(len(e.arena) - 1)
}

// release retires a slot: kill its generation, drop the closure, and
// push it onto the free list.
//
//prestolint:noalloc
func (e *Engine) release(i int32) {
	s := &e.arena[i]
	s.gen++
	s.fn = nil
	s.pos = -1
	s.next = e.free
	e.free = i
}

// Schedule runs fn after delay. A negative delay is treated as zero
// (the event fires at the current instant, after already-queued events
// for that instant).
//
//prestolint:noalloc
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute time t. If t is in the past, the event
// fires at the current instant.
//
//prestolint:noalloc
func (e *Engine) At(t Time, fn func()) EventID {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < e.now {
		t = e.now
	}
	var sq uint64
	if e.sh == nil {
		e.seq++
		sq = e.seq
	} else {
		sq = e.sh.nextSeq()
	}
	i := e.alloc()
	s := &e.arena[i]
	s.at, s.seq, s.fn = t, sq, fn
	e.heapPush(i)
	if len(e.heap) > e.PeakPending {
		e.PeakPending = len(e.heap)
	}
	id := EventID{slot: i, gen: s.gen}
	if e.sh != nil {
		e.sh.noteLocal(t, id)
	}
	return id
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired, was already canceled, or is the zero EventID is a no-op.
// It reports whether the event was actually canceled.
//
//prestolint:noalloc
func (e *Engine) Cancel(id EventID) bool {
	if id.slot < 0 || int(id.slot) >= len(e.arena) {
		return false
	}
	s := &e.arena[id.slot]
	if s.gen != id.gen || s.pos < 0 {
		return false
	}
	e.heapRemove(s.pos)
	e.release(id.slot)
	return true
}

// Armed reports whether id identifies an event that is still queued:
// not yet fired, not canceled. The generation check makes this safe to
// ask about long-dead IDs even after their arena slot was reused.
func (e *Engine) Armed(id EventID) bool {
	if id.slot < 0 || int(id.slot) >= len(e.arena) {
		return false
	}
	s := &e.arena[id.slot]
	return s.gen == id.gen && s.pos >= 0
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.heap) }

// Stop makes the in-progress Run/RunAll return after the currently
// executing event completes. Safe to call from inside an event
// callback, and — because the flag is atomic — from another goroutine
// (prestod's job-cancel path stops an engine mid-run). Calling Stop
// while no run is in progress makes the next Run/RunAll return
// immediately (executing nothing); the pending stop is consumed by
// that run. On a shard-owned engine the stop takes effect at the next
// window barrier (see ShardGroup).
func (e *Engine) Stop() { e.stopped.Store(true) }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the clock would pass until. Events scheduled exactly at
// until still run. It returns the time of the last executed event (or
// the current time if nothing ran).
func (e *Engine) Run(until Time) Time {
	stopped := e.run(until)
	if e.now < until && !stopped {
		// Advance the clock to the horizon even when later events remain
		// queued: Run(until) means "simulate up to until", so callers
		// measuring elapsed time get the full window regardless of when
		// the last event before the horizon happened to fire. (This also
		// keeps Now() independent of read-only instrumentation events —
		// the telemetry determinism guarantee.)
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called, and
// returns the time of the last executed event. Unlike Run, it does not
// advance the clock past the last event.
func (e *Engine) RunAll() Time {
	const forever = Time(1<<62 - 1)
	e.run(forever)
	return e.now
}

//prestolint:noalloc
func (e *Engine) run(until Time) (stopped bool) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	if e.sh != nil && !e.sh.solo {
		panic("sim: Run on a shard-owned engine; drive it through ShardGroup.Run")
	}
	e.running = true
	// The stop flag is consumed on exit, whether it was raised mid-run
	// or before the run started (a pre-run Stop makes this run a no-op).
	//prestolint:allow hotalloc -- receiver-only capture in an open-coded defer; the compiler keeps it off the heap (bench-gated 0 allocs/op)
	defer func() { e.running = false; e.stopped.Store(false) }()

	for len(e.heap) > 0 && !e.stopped.Load() {
		top := e.heap[0]
		s := &e.arena[top]
		if s.at > until {
			break
		}
		fn := s.fn
		e.now = s.at
		e.heapPopMin()
		// Release before dispatch: the firing event's ID is dead from
		// inside its own callback, and the slot may be reused there.
		e.release(top)
		e.Executed++
		fn()
	}
	return e.stopped.Load()
}

// runWindow executes queued events with at strictly below limit. It is
// the per-shard inner loop of a ShardGroup window: the coordinator has
// already proven (via the lookahead bound) that no other shard can
// inject an event below limit, so everything under it is safe to fire.
// Unlike run, it never consumes the stop flag — a Stop raised by a
// callback is observed by the coordinator at the window barrier, so
// the whole group stops on a window boundary and the executed-event
// prefix stays identical to a serial run.
func (e *Engine) runWindow(limit Time) {
	for len(e.heap) > 0 {
		top := e.heap[0]
		s := &e.arena[top]
		if s.at >= limit {
			break
		}
		fn := s.fn
		at, sq := s.at, s.seq
		e.now = s.at
		e.heapPopMin()
		e.release(top)
		e.Executed++
		k0 := e.sh.k
		fn()
		if e.sh.k > k0 {
			// Journal only events that scheduled something: the barrier
			// merge replays schedule calls, not executions.
			e.sh.execLog = append(e.sh.execLog, execRec{at: at, seq: sq, nCalls: e.sh.k - k0})
		}
	}
}

// peekAt returns the timestamp of the earliest queued event.
func (e *Engine) peekAt() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.arena[e.heap[0]].at, true
}

// rekey rewrites a queued event's sequence number from its provisional
// window-local value to the true global one resolved at the barrier.
// Rekeying never reorders the heap: within one window a shard's
// provisional order equals its true relative order, and every true seq
// assigned at the barrier exceeds every seq issued before the window —
// so all comparator outcomes are preserved and the field can be
// overwritten in place. A dead ID (fired or canceled inside the
// window) is a no-op, exactly like Cancel.
func (e *Engine) rekey(id EventID, seq uint64) {
	if id.slot < 0 || int(id.slot) >= len(e.arena) {
		return
	}
	s := &e.arena[id.slot]
	if s.gen != id.gen {
		return
	}
	s.seq = seq
}

// insertKeyed enqueues an event with an explicit (at, seq) key — the
// barrier's path for landing a cross-shard handoff with the global
// sequence number it was assigned in the merge.
func (e *Engine) insertKeyed(at Time, seq uint64, fn func()) {
	i := e.alloc()
	s := &e.arena[i]
	s.at, s.seq, s.fn = at, seq, fn
	e.heapPush(i)
	if len(e.heap) > e.PeakPending {
		e.PeakPending = len(e.heap)
	}
}

// ---- intrusive 4-ary min-heap over arena indices ----
//
// A 4-ary layout halves the tree depth of a binary heap, and the hole-
// based sift loops below write each moved element exactly once. Order
// is (at, seq) ascending — seq is the FIFO tie-break.

// heapPush inserts slot i, sifting it up from the bottom.
//
//prestolint:noalloc
func (e *Engine) heapPush(i int32) {
	//prestolint:allow hotalloc -- heap high-water growth is amortized; the backing array is reused once at steady size
	e.heap = append(e.heap, i)
	e.siftUp(len(e.heap) - 1)
}

// heapPopMin removes the root (the earliest event). The caller has
// already read the slot's fields.
//
//prestolint:noalloc
func (e *Engine) heapPopMin() {
	h := e.heap
	n := len(h) - 1
	top := h[0]
	last := h[n]
	e.heap = h[:n]
	if n > 0 {
		e.heap[0] = last
		e.arena[last].pos = 0
		e.siftDown(0)
	}
	e.arena[top].pos = -1
}

// heapRemove deletes the element at heap position pos (Cancel's path).
//
//prestolint:noalloc
func (e *Engine) heapRemove(pos int32) {
	h := e.heap
	n := len(h) - 1
	i := int(pos)
	removed := h[i]
	last := h[n]
	e.heap = h[:n]
	if i < n {
		e.heap[i] = last
		e.arena[last].pos = pos
		e.siftDown(i)
		if e.arena[last].pos == pos {
			// Didn't move down; it may need to move up instead.
			e.siftUp(i)
		}
	}
	e.arena[removed].pos = -1
}

// siftUp restores heap order by floating the element at index i toward
// the root.
//
//prestolint:noalloc
func (e *Engine) siftUp(i int) {
	h := e.heap
	moved := h[i]
	mAt, mSeq := e.arena[moved].at, e.arena[moved].seq
	for i > 0 {
		p := (i - 1) >> 2
		ps := &e.arena[h[p]]
		if ps.at < mAt || (ps.at == mAt && ps.seq < mSeq) {
			break
		}
		h[i] = h[p]
		e.arena[h[i]].pos = int32(i)
		i = p
	}
	h[i] = moved
	e.arena[moved].pos = int32(i)
}

// siftDown restores heap order by sinking the element at index i.
//
//prestolint:noalloc
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	moved := h[i]
	mAt, mSeq := e.arena[moved].at, e.arena[moved].seq
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		bs := &e.arena[h[c]]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			s := &e.arena[h[j]]
			if s.at < bs.at || (s.at == bs.at && s.seq < bs.seq) {
				best, bs = j, s
			}
		}
		if bs.at > mAt || (bs.at == mAt && bs.seq >= mSeq) {
			break
		}
		h[i] = h[best]
		e.arena[h[i]].pos = int32(i)
		i = best
	}
	h[i] = moved
	e.arena[moved].pos = int32(i)
}

// Timer is a restartable one-shot timer bound to an Engine, analogous to
// time.Timer but in simulated time. The zero value is unusable; create
// with NewTimer.
type Timer struct {
	e  *Engine
	id EventID
	fn func()
	// fireFn is t.fire bound once at construction, so Reset does not
	// allocate a fresh method-value closure on every rearm.
	fireFn func()
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(e *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil fn")
	}
	t := &Timer{e: e, fn: fn}
	t.fireFn = t.fire
	return t
}

// Reset (re)arms the timer to fire after delay, canceling any pending
// expiration.
func (t *Timer) Reset(delay Time) {
	t.e.Cancel(t.id)
	t.id = t.e.Schedule(delay, t.fireFn)
}

// Stop disarms the timer. It reports whether a pending expiration was
// canceled.
func (t *Timer) Stop() bool {
	ok := t.e.Cancel(t.id)
	t.id = EventID{}
	return ok
}

// Armed reports whether the timer has a pending expiration. It routes
// through the engine's generation check, so a fired-then-reused event
// slot is never misreported as armed.
func (t *Timer) Armed() bool {
	return t.e.Armed(t.id)
}

func (t *Timer) fire() {
	t.id = EventID{}
	t.fn()
}
