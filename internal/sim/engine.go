// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution. It is the substrate every other package in
// this repository runs on: links, switches, NICs, GRO timers, and TCP
// retransmission timers are all events scheduled on a single Engine.
//
// Determinism: events that fire at the same instant are executed in the
// order they were scheduled (FIFO tie-break on a monotonically increasing
// sequence number), and all randomness must come from an RNG derived from
// the engine's seed. Two runs with the same seed produce identical
// results.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for events at the same instant
	fn  func()

	index    int // heap index; -1 once popped or canceled
	canceled bool
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid and safe to Cancel (a no-op).
type EventID struct{ ev *event }

// Engine is a discrete-event simulator. The zero value is not usable;
// create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	running bool
	stopped bool

	// Executed counts events that have run, as a cheap progress/liveness
	// measure for tests and benchmarks.
	Executed uint64
	// PeakPending is the high-water mark of the event queue — the
	// engine's peak heap depth, exposed as a telemetry probe.
	PeakPending int
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Schedule runs fn after delay. A negative delay is treated as zero
// (the event fires at the current instant, after already-queued events
// for that instant).
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute time t. If t is in the past, the event
// fires at the current instant.
func (e *Engine) At(t Time, fn func()) EventID {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.PeakPending {
		e.PeakPending = len(e.queue)
	}
	return EventID{ev}
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired, was already canceled, or is the zero EventID is a no-op.
// It reports whether the event was actually canceled.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	return true
}

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the currently executing event completes.
// Safe to call from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the clock would pass until. Events scheduled exactly at
// until still run. It returns the time of the last executed event (or
// the current time if nothing ran).
func (e *Engine) Run(until Time) Time {
	e.run(until)
	if e.now < until && !e.stopped {
		// Advance the clock to the horizon even when later events remain
		// queued: Run(until) means "simulate up to until", so callers
		// measuring elapsed time get the full window regardless of when
		// the last event before the horizon happened to fire. (This also
		// keeps Now() independent of read-only instrumentation events —
		// the telemetry determinism guarantee.)
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called, and
// returns the time of the last executed event. Unlike Run, it does not
// advance the clock past the last event.
func (e *Engine) RunAll() Time {
	const forever = Time(1<<62 - 1)
	e.run(forever)
	return e.now
}

func (e *Engine) run(until Time) {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
}

// Timer is a restartable one-shot timer bound to an Engine, analogous to
// time.Timer but in simulated time. The zero value is unusable; create
// with NewTimer.
type Timer struct {
	e  *Engine
	id EventID
	fn func()
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func NewTimer(e *Engine, fn func()) *Timer {
	if fn == nil {
		panic("sim: NewTimer with nil fn")
	}
	return &Timer{e: e, fn: fn}
}

// Reset (re)arms the timer to fire after delay, canceling any pending
// expiration.
func (t *Timer) Reset(delay Time) {
	t.e.Cancel(t.id)
	t.id = t.e.Schedule(delay, t.fire)
}

// Stop disarms the timer. It reports whether a pending expiration was
// canceled.
func (t *Timer) Stop() bool {
	ok := t.e.Cancel(t.id)
	t.id = EventID{}
	return ok
}

// Armed reports whether the timer has a pending expiration.
func (t *Timer) Armed() bool {
	return t.id.ev != nil && !t.id.ev.canceled && t.id.ev.index >= 0
}

func (t *Timer) fire() {
	t.id = EventID{}
	t.fn()
}
