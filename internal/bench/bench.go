// Package bench hosts the microbenchmark bodies behind the repo's perf
// trajectory. The same functions back two entry points: the standard
// `go test -bench` wrappers in bench_test.go, and cmd/prestobench,
// which runs them via testing.Benchmark and writes the machine-readable
// BENCH_*.json artifacts the CI perf gate compares against.
//
// The headline benchmarks are allocation-gated: EngineScheduleRun,
// PrestoGROFlush, and TelemetryEmitRing must report 0 allocs/op in
// steady state (the event arena, the sorted-insert GRO path, and the
// tracer's overwrite-in-place ring exist to make that true), and the
// CI bench-smoke job fails on >20% allocs/op regressions against the
// committed baseline.
package bench

import (
	"fmt"
	"testing"

	presto "presto"
	"presto/internal/gro"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
)

// Short trims the end-to-end benchmark windows; cmd/prestobench -short
// and `go test -short` both set it.
var Short bool

// Spec names one benchmark in the suite. Gated benchmarks participate
// in the CI allocs/op perf gate: their per-op allocation counts are
// window-independent, so a >20% regression against the committed
// BENCH_*.json baseline is a real hot-path change, not noise.
// ClusterEndToEnd is recorded but ungated — its allocs/op scale with
// the simulated window, which -short shrinks.
type Spec struct {
	Name  string
	Fn    func(*testing.B)
	Gated bool
}

// Suite returns the benchmark registry in canonical order.
func Suite() []Spec {
	return []Spec{
		{Name: "EngineScheduleRun", Fn: EngineScheduleRun, Gated: true},
		{Name: "EngineTimerReset", Fn: EngineTimerReset, Gated: true},
		{Name: "PrestoGROFlush", Fn: PrestoGROFlush, Gated: true},
		{Name: "PrestoGROReorderWindow", Fn: PrestoGROReorderWindow, Gated: true},
		{Name: "TelemetryEmitRing", Fn: TelemetryEmitRing, Gated: true},
		{Name: "TelemetrySnapshotDelta", Fn: TelemetrySnapshotDelta, Gated: true},
		{Name: "ClusterEndToEnd", Fn: ClusterEndToEnd, Gated: false},
		{Name: "ShardedClusterEndToEnd", Fn: ShardedClusterEndToEnd, Gated: false},
	}
}

// EngineScheduleRun measures one event through a queue held ~256 deep:
// a Schedule (arena alloc + heap push) plus a dispatch (heap pop +
// arena free) per op. Steady state must be allocation-free.
func EngineScheduleRun(b *testing.B) {
	e := sim.NewEngine()
	const depth = 256
	left := b.N
	var tick func()
	tick = func() {
		if left > 0 {
			left--
			e.Schedule(sim.Microsecond, tick)
		}
	}
	for i := 0; i < depth; i++ {
		e.Schedule(sim.Time(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.RunAll()
}

// EngineTimerReset measures the cancel+rearm path: every Reset removes
// the pending expiration from the middle of the heap and schedules a
// replacement.
func EngineTimerReset(b *testing.B) {
	e := sim.NewEngine()
	// Background population so the cancel path does real sift work.
	for i := 0; i < 64; i++ {
		e.Schedule(sim.Time(i)*sim.Millisecond, func() {})
	}
	tm := sim.NewTimer(e, func() {})
	tm.Reset(sim.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(sim.Microsecond + sim.Time(i&7))
	}
}

// devnull drops delivered segments.
type devnull struct{}

func (devnull) DeliverSegment(*packet.Segment) {}

var benchFlowTemplate = packet.FlowKey{
	Src: packet.Addr{Host: 1, Port: 4000},
	Dst: packet.Addr{Host: 2, Port: 5000},
}

func benchPacket(flow packet.FlowKey, seq uint32, fc uint32) *packet.Packet {
	return &packet.Packet{
		Flow:       flow,
		Seq:        seq,
		Payload:    packet.MSS,
		FlowcellID: fc,
		Flags:      packet.FlagACK,
	}
}

// PrestoGROFlush measures the Algorithm 2 flush walk in its hold
// steady state: 8 flows each parked on a flowcell-boundary gap, so
// every Flush walks the held lists, recomputes the adaptive deadline,
// and re-arms the hold timer without delivering anything. This is the
// per-poll cost every NIC pays while reordering is in flight; it must
// be allocation-free.
func PrestoGROFlush(b *testing.B) {
	eng := sim.NewEngine()
	g := gro.NewPresto(eng, devnull{}, gro.PrestoConfig{})
	for fl := 0; fl < 8; fl++ {
		flow := benchFlowTemplate
		flow.Src.Port = uint16(4000 + fl)
		// Flowcell 1 in order, then the head of flowcell 3: the missing
		// flowcell 2 is a boundary gap, held until the adaptive timeout.
		for i := 0; i < 4; i++ {
			g.Receive(benchPacket(flow, uint32(i*packet.MSS), 1))
		}
		g.Receive(benchPacket(flow, uint32(16*packet.MSS), 3))
	}
	g.Flush()
	if g.HeldSegments() != 8 {
		b.Fatalf("setup: held %d segments, want 8", g.HeldSegments())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Flush()
	}
}

// PrestoGROReorderWindow measures merge + sorted-insert + delivery for
// a reordered window: per op, two flowcells (64 packets) arrive
// interleaved out of order and all resolve within the poll, so the
// whole window is delivered by one Flush. Allocation here is inherent
// (each delivered segment is a fresh object); the benchmark tracks
// ns/op of the reorder-resolution path.
func PrestoGROReorderWindow(b *testing.B) {
	eng := sim.NewEngine()
	g := gro.NewPresto(eng, devnull{}, gro.PrestoConfig{})
	const cell = 32 // packets per flowcell
	seq := uint32(0)
	fc := uint32(1)
	window := func() {
		// Second half of cell fc+1 first, then cell fc, then the first
		// half of cell fc+1: both boundary gaps resolve in-poll.
		base := seq
		for i := cell / 2; i < cell; i++ {
			g.Receive(benchPacket(benchFlowTemplate, base+uint32((cell+i)*packet.MSS), fc+1))
		}
		for i := 0; i < cell; i++ {
			g.Receive(benchPacket(benchFlowTemplate, base+uint32(i*packet.MSS), fc))
		}
		for i := 0; i < cell/2; i++ {
			g.Receive(benchPacket(benchFlowTemplate, base+uint32((cell+i)*packet.MSS), fc+1))
		}
		g.Flush()
		seq += uint32(2 * cell * packet.MSS)
		fc += 2
	}
	window() // prime flow state
	if g.HeldSegments() != 0 {
		b.Fatalf("setup: %d segments held, want 0", g.HeldSegments())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		window()
	}
}

// TelemetryEmitRing measures Emit in ring mode past the wrap point:
// the tracer overwrites the oldest slot in place, so the per-event
// cost every traced component pays in a bounded-memory run must be
// allocation-free in steady state.
func TelemetryEmitRing(b *testing.B) {
	tr := telemetry.NewTracer()
	tr.SetRing(1024)
	for i := 0; i < 2048; i++ {
		tr.FlowcellEmit(sim.Time(i), 1, uint32(i), i&7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.FlowcellEmit(sim.Time(i), 1, uint32(i), i&7)
	}
}

// TelemetrySnapshotDelta measures one incremental-snapshot step over a
// mostly-quiet registry: 16 static components plus one hot counter, so
// each delta carries a single changed cell. This is the steady-state
// cost of streaming live observability at a fixed cadence; allocations
// here scale with probe count, not run length, and are gated.
func TelemetrySnapshotDelta(b *testing.B) {
	reg := telemetry.NewRegistry(nil)
	for i := 0; i < 16; i++ {
		static := map[string]any{"a": uint64(1), "b": uint64(2)}
		reg.Register(fmt.Sprintf("comp%02d", i), func() map[string]any { return static })
	}
	var hot uint64
	reg.Register("hot", func() map[string]any { return map[string]any{"n": hot} })
	ss := reg.Stream(1 << 30) // steady state: no periodic keyframes
	ss.Next(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hot++
		ss.Next(sim.Time(i + 1))
	}
}

// ClusterEndToEnd runs the Figure 5 GRO microbenchmark cluster (Presto
// spraying into Presto GRO) on a reduced window: the full stack —
// engine, TCP, fabric, NIC ring, GRO — in one number. Events/op is the
// engine's end-to-end dispatch count.
func ClusterEndToEnd(b *testing.B) {
	warmup, duration := 10*sim.Millisecond, 30*sim.Millisecond
	if Short {
		warmup, duration = 2*sim.Millisecond, 8*sim.Millisecond
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := presto.RunGROMicrobench(false, presto.Options{
			Seed:   uint64(i + 1),
			Warmup: warmup, Duration: duration,
		})
		b.ReportMetric(r.MeanTput, "Gbps")
	}
}

// ShardedClusterEndToEnd runs the pod-scale cross-pod elephant
// workload (4 pods, 2 hosts/leaf) under per-pod engine shards — the
// full sharded stack in one number: window barriers, cross-shard
// handoffs, per-shard RNG streams and counter buckets. The results are
// bit-identical to the serial engine, so this tracks only the parallel
// path's wall-clock and allocation behaviour. Ungated like
// ClusterEndToEnd: allocs/op scale with the simulated window.
func ShardedClusterEndToEnd(b *testing.B) {
	warmup, duration := 2*sim.Millisecond, 8*sim.Millisecond
	if Short {
		warmup, duration = 500*sim.Microsecond, 2*sim.Millisecond
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := presto.RunPodTraffic(presto.SysPresto, 4, 2, presto.Options{
			Seed:   uint64(i + 1),
			Warmup: warmup, Duration: duration,
			Shards: 4,
		})
		b.ReportMetric(r.MeanTput, "Gbps")
	}
}

// SpeedupWindow returns the warmup and measurement windows for the
// serial-vs-sharded speedup comparison (cmd/prestobench's
// -speedup-floor gate), trimmed in Short mode so the CI smoke job
// stays fast. The wall-clock measurement itself lives in
// cmd/prestobench: the harness layer may read the wall clock, this
// package may not (simclock analyzer).
func SpeedupWindow() (warmup, duration sim.Time) {
	if Short {
		return sim.Millisecond, 5 * sim.Millisecond
	}
	return 2 * sim.Millisecond, 20 * sim.Millisecond
}
