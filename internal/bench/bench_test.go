package bench

import "testing"

// Thin wrappers so the shared bodies run under `go test -bench` with
// the canonical names the committed BENCH_*.json baseline uses.

func BenchmarkEngineScheduleRun(b *testing.B) { Short = testing.Short(); EngineScheduleRun(b) }
func BenchmarkEngineTimerReset(b *testing.B)  { Short = testing.Short(); EngineTimerReset(b) }
func BenchmarkPrestoGROFlush(b *testing.B)    { Short = testing.Short(); PrestoGROFlush(b) }
func BenchmarkPrestoGROReorderWindow(b *testing.B) {
	Short = testing.Short()
	PrestoGROReorderWindow(b)
}
func BenchmarkTelemetryEmitRing(b *testing.B) { Short = testing.Short(); TelemetryEmitRing(b) }
func BenchmarkTelemetrySnapshotDelta(b *testing.B) {
	Short = testing.Short()
	TelemetrySnapshotDelta(b)
}
func BenchmarkClusterEndToEnd(b *testing.B) { Short = testing.Short(); ClusterEndToEnd(b) }
func BenchmarkShardedClusterEndToEnd(b *testing.B) {
	Short = testing.Short()
	ShardedClusterEndToEnd(b)
}
