// Package nic models the host network interface and driver receive
// path: TSO segmentation on transmit (the mechanism that makes 64 KB
// flowcells cheap, §2.1), and on receive an RX ring, interrupt
// coalescing, and a CPU cost model hosting a GRO handler.
//
// The CPU model is what reproduces the paper's computational results:
// processing a poll batch occupies the (single) receive core for
//
//	PerPoll + Σ(PerPacket+handler overhead) + PerByte·bytes + PerSegment·segments
//
// of simulated time, during which the ring keeps filling; sustained
// overload overflows the ring and drops packets. The constants are
// calibrated against §5: GRO disabled caps at ≈6 Gbps at 100% CPU;
// official GRO at line rate costs ≈63%, Presto GRO ≈69% (+6%); under
// reordering, official GRO's small-segment flood burns more CPU for
// half the throughput.
package nic

import (
	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
)

// CPUConfig sets the receive-path cost model.
type CPUConfig struct {
	PerPoll    sim.Time // fixed cost of a poll event
	PerPacket  sim.Time // driver + GRO merge work per packet
	PerSegment sim.Time // stack traversal per segment pushed up
	PerByteNs  float64  // ns of copy/checksum work per payload byte
	// PerEviction is the extra cost of a merge-failure push (stock GRO
	// ejecting a segment mid-merge: list churn, cold stack entry).
	// This is the computational half of the small-segment-flooding
	// collapse (§2.2) beyond the per-segment cost itself.
	PerEviction sim.Time
	// HandlerOverhead is extra per-packet work for the hosted GRO
	// algorithm (Presto's multi-segment bookkeeping costs ~6% at line
	// rate, Figure 6).
	HandlerOverhead sim.Time
}

// DefaultCPUConfig returns constants calibrated to the paper's
// measured operating points (see package comment).
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		PerPoll:     2 * sim.Microsecond,
		PerPacket:   350 * sim.Nanosecond,
		PerSegment:  1100 * sim.Nanosecond,
		PerByteNs:   0.2,
		PerEviction: 3000 * sim.Nanosecond,
	}
}

// Config tunes a NIC.
type Config struct {
	RingSize      int      // RX descriptor ring, in packets
	PollBudget    int      // max packets consumed per poll (NAPI budget)
	CoalesceCount int      // interrupt after this many packets...
	CoalesceDelay sim.Time // ...or this long after the first one
	CPU           CPUConfig
	// DisableCPUModel makes receive processing free and instantaneous
	// (for microbenchmarks isolating protocol behaviour).
	DisableCPUModel bool
}

// DefaultConfig returns 10 GbE-like settings.
func DefaultConfig() Config {
	return Config{
		RingSize:      4096,
		PollBudget:    64,
		CoalesceCount: 32,
		CoalesceDelay: 20 * sim.Microsecond,
		CPU:           DefaultCPUConfig(),
	}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.RingSize == 0 {
		c.RingSize = d.RingSize
	}
	if c.PollBudget == 0 {
		c.PollBudget = d.PollBudget
	}
	if c.CoalesceCount == 0 {
		c.CoalesceCount = d.CoalesceCount
	}
	if c.CoalesceDelay == 0 {
		c.CoalesceDelay = d.CoalesceDelay
	}
	if c.CPU == (CPUConfig{}) {
		c.CPU = d.CPU
	}
}

// Stats counts NIC activity.
type Stats struct {
	TxSegments uint64 // TSO writes accepted
	TxPackets  uint64 // MTU packets emitted
	RxPackets  uint64 // packets accepted into the ring
	RxDrops    uint64 // ring-overflow drops (receiver livelock)
	Polls      uint64
	BusyTime   sim.Time // accumulated CPU busy time
	MaxRing    int      // RX ring occupancy watermark
}

// NIC is one host's interface. It implements fabric.Handler on the
// receive side.
type NIC struct {
	eng  *sim.Engine
	net  *fabric.Network
	host packet.HostID
	cfg  Config

	gro   gro.Handler
	stage *stagingOutput

	ring     pktRing
	batch    []*packet.Packet  // reused per-poll scratch
	staged   []*packet.Segment // segments awaiting the current poll's completion
	doneFn   func()            // pollDone bound once, so poll() doesn't allocate a closure
	busy     bool
	intTimer *sim.Timer
	intArmed bool
	tracer   *telemetry.Tracer

	Stats Stats
}

// pktRing is the RX descriptor ring: a growable circular queue whose
// push/pop are allocation-free in steady state (the backing array only
// grows, by doubling, to the high-water mark).
type pktRing struct {
	buf  []*packet.Packet // power-of-two capacity
	head int
	n    int
}

// Len returns the number of queued packets.
func (r *pktRing) Len() int { return r.n }

func (r *pktRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

func (r *pktRing) pop() *packet.Packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil // release the reference; the ring must not pin packets
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *pktRing) grow() {
	cap2 := len(r.buf) * 2
	if cap2 == 0 {
		cap2 = 64
	}
	buf := make([]*packet.Packet, cap2)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// stagingOutput buffers GRO output during a poll so delivery happens
// when the batch's CPU cost has elapsed; outside a poll (GRO hold
// timers) it forwards directly. Staging buffers are recycled across
// polls (only one poll is ever outstanding per NIC).
type stagingOutput struct {
	up      gro.Output
	buf     []*packet.Segment
	staging bool
}

func (s *stagingOutput) DeliverSegment(seg *packet.Segment) {
	if s.staging {
		s.buf = append(s.buf, seg)
		return
	}
	s.up.DeliverSegment(seg)
}

// take hands the staged segments to the caller; recycle returns the
// buffer once its segments are delivered.
func (s *stagingOutput) take() []*packet.Segment {
	b := s.buf
	s.buf = nil
	return b
}

func (s *stagingOutput) recycle(b []*packet.Segment) {
	for i := range b {
		b[i] = nil // segments live on up the stack; the buffer must not pin them
	}
	if s.buf == nil {
		s.buf = b[:0]
	}
}

// New creates a NIC for host h. makeGRO constructs the receive-offload
// handler around the NIC's staging output, which forwards to up.
func New(eng *sim.Engine, net *fabric.Network, h packet.HostID, up gro.Output, makeGRO func(out gro.Output) gro.Handler, cfg Config) *NIC {
	cfg.fill()
	n := &NIC{eng: eng, net: net, host: h, cfg: cfg}
	n.stage = &stagingOutput{up: up}
	n.gro = makeGRO(n.stage)
	n.intTimer = sim.NewTimer(eng, n.interrupt)
	n.doneFn = n.pollDone
	return n
}

// GRO returns the hosted receive-offload handler.
func (n *NIC) GRO() gro.Handler { return n.gro }

// SetTracer attaches a structured event tracer to this NIC and its GRO
// handler (nil disables, the default).
func (n *NIC) SetTracer(tr *telemetry.Tracer) {
	n.tracer = tr
	n.gro.Stats().SetTracer(tr, int32(n.host))
}

// TelemetrySnapshot implements a telemetry probe: NIC counters plus the
// hosted GRO handler's flush-reason breakdown.
func (n *NIC) TelemetrySnapshot() map[string]any {
	st := n.gro.Stats()
	return map[string]any{
		"tx_segments":   n.Stats.TxSegments,
		"tx_packets":    n.Stats.TxPackets,
		"rx_packets":    n.Stats.RxPackets,
		"rx_drops":      n.Stats.RxDrops,
		"polls":         n.Stats.Polls,
		"busy_ns":       int64(n.Stats.BusyTime),
		"max_ring":      n.Stats.MaxRing,
		"gro_packets":   st.PacketsIn,
		"gro_segments":  st.SegmentsOut,
		"gro_merges":    st.Merges,
		"gro_evictions": st.Evictions,
		"gro_reasons":   st.ReasonCounts(),
	}
}

// SendSegment performs TSO: split a ≤64 KB segment into MTU packets,
// replicating the shadow MAC and flowcell ID onto each (exactly what
// the NIC hardware does with header fields, §3.1), and inject them
// onto the host's access link.
func (n *NIC) SendSegment(seg *packet.Segment) {
	n.Stats.TxSegments++
	total := seg.Len()
	if total == 0 {
		// Pure ACK / control.
		p := &packet.Packet{
			SrcMAC: seg.SrcMAC, DstMAC: seg.DstMAC,
			Flow: seg.Flow, Seq: seg.StartSeq, Ack: seg.Ack,
			Flags: seg.Flags, Sack: seg.Sack,
			FlowcellID: seg.FlowcellID, SentAt: seg.SentAt,
			Retrans: seg.Retrans, Probe: seg.Probe,
			EchoCE: seg.EchoCE, EchoTotal: seg.EchoTotal,
		}
		n.Stats.TxPackets++
		n.net.SendFromHost(n.host, p)
		return
	}
	mss := packet.MSS
	for off := 0; off < total; off += mss {
		l := total - off
		if l > mss {
			l = mss
		}
		p := &packet.Packet{
			SrcMAC: seg.SrcMAC, DstMAC: seg.DstMAC,
			Flow: seg.Flow, Seq: seg.StartSeq + uint32(off),
			Ack: seg.Ack, Flags: seg.Flags &^ packet.FlagPSH, Payload: l,
			FlowcellID: seg.FlowcellID, SentAt: seg.SentAt,
			Retrans: seg.Retrans, Probe: seg.Probe,
		}
		if off+l == total {
			p.Flags |= seg.Flags & packet.FlagPSH
		}
		n.Stats.TxPackets++
		n.net.SendFromHost(n.host, p)
	}
}

// HandlePacket implements fabric.Handler: packets arriving from the
// wire enter the RX ring.
func (n *NIC) HandlePacket(p *packet.Packet) {
	if n.ring.Len() >= n.cfg.RingSize {
		// Receiver livelock: the CPU can't drain the ring fast enough.
		n.Stats.RxDrops++
		n.tracer.RingDrop(n.eng.Now(), int32(n.host), n.ring.Len())
		return
	}
	n.ring.push(p)
	if n.ring.Len() > n.Stats.MaxRing {
		n.Stats.MaxRing = n.ring.Len()
	}
	n.Stats.RxPackets++
	if n.cfg.DisableCPUModel {
		if !n.busy {
			n.busy = true
			// Drain synchronously but still batch per event loop turn.
			n.eng.Schedule(0, n.pollFree)
		}
		return
	}
	if n.busy || n.intArmed {
		if n.intArmed && n.ring.Len() >= n.cfg.CoalesceCount {
			n.intTimer.Stop()
			n.intArmed = false
			n.interrupt()
		}
		return
	}
	// Idle: arm the coalescing timer (or fire now if a burst landed).
	if n.ring.Len() >= n.cfg.CoalesceCount {
		n.interrupt()
		return
	}
	n.intArmed = true
	n.intTimer.Reset(n.cfg.CoalesceDelay)
}

// takeBatch moves up to budget packets from the ring into the reused
// scratch slice.
func (n *NIC) takeBatch(budget int) []*packet.Packet {
	if budget > n.ring.Len() {
		budget = n.ring.Len()
	}
	n.batch = n.batch[:0]
	for i := 0; i < budget; i++ {
		n.batch = append(n.batch, n.ring.pop())
	}
	return n.batch
}

// releaseBatch clears the scratch references so processed packets are
// not pinned until the next poll.
func (n *NIC) releaseBatch() {
	for i := range n.batch {
		n.batch[i] = nil
	}
	n.batch = n.batch[:0]
}

// pollFree is the no-CPU-model drain path.
func (n *NIC) pollFree() {
	for n.ring.Len() > 0 {
		batch := n.takeBatch(n.ring.Len())
		n.Stats.Polls++
		for _, p := range batch {
			n.gro.Receive(p)
		}
		n.gro.Flush()
		n.releaseBatch()
	}
	n.busy = false
}

// interrupt starts a poll if the CPU is free.
func (n *NIC) interrupt() {
	n.intArmed = false
	if n.busy || n.ring.Len() == 0 {
		return
	}
	n.poll()
}

// poll consumes up to PollBudget packets, runs GRO over them, and
// occupies the CPU for the batch's modeled cost; the GRO output is
// delivered when the cost has elapsed (pollDone). If the ring is
// non-empty at completion, polling continues immediately (NAPI-style).
func (n *NIC) poll() {
	batch := n.takeBatch(n.cfg.PollBudget)
	n.Stats.Polls++
	n.busy = true

	st := n.gro.Stats()
	segsBefore := st.SegmentsOut + st.ControlOut
	evBefore := st.Evictions
	bytes := 0
	n.stage.staging = true
	for _, p := range batch {
		bytes += p.Payload
		n.gro.Receive(p)
	}
	n.gro.Flush()
	n.stage.staging = false
	segs := (st.SegmentsOut + st.ControlOut) - segsBefore
	evictions := st.Evictions - evBefore

	c := n.cfg.CPU
	cost := c.PerPoll +
		sim.Time(len(batch))*(c.PerPacket+c.HandlerOverhead) +
		sim.Time(segs)*c.PerSegment +
		sim.Time(evictions)*c.PerEviction +
		sim.Time(float64(bytes)*c.PerByteNs)
	n.Stats.BusyTime += cost
	n.releaseBatch()

	// The busy flag guarantees a single outstanding poll, so the staged
	// segments ride in a field and the completion callback is the
	// pre-bound doneFn — no per-poll closure.
	n.staged = n.stage.take()
	n.eng.Schedule(cost, n.doneFn)
}

// pollDone delivers the staged GRO output once the poll's CPU cost has
// elapsed, then decides whether to keep polling.
func (n *NIC) pollDone() {
	staged := n.staged
	n.staged = nil
	for _, seg := range staged {
		n.stage.up.DeliverSegment(seg)
	}
	n.stage.recycle(staged)
	n.busy = false
	// NAPI-style continuation: stay in polling mode only while the
	// backlog justifies it; otherwise return to interrupt
	// coalescing so batches stay large and the per-poll cost
	// amortizes.
	if n.ring.Len() >= n.cfg.CoalesceCount {
		n.poll()
	} else if n.ring.Len() > 0 && !n.intArmed {
		n.intArmed = true
		n.intTimer.Reset(n.cfg.CoalesceDelay)
	}
}

// Utilization returns the fraction of the window [since, now] the
// receive CPU was busy, given the busy time recorded at the window
// start.
func (n *NIC) Utilization(busyAtStart, windowStart sim.Time) float64 {
	elapsed := n.eng.Now() - windowStart
	if elapsed <= 0 {
		return 0
	}
	return float64(n.Stats.BusyTime-busyAtStart) / float64(elapsed)
}
