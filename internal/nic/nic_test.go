package nic

import (
	"testing"

	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

type segSink struct {
	segs  []*packet.Segment
	at    []sim.Time
	bytes int
}

func (s *segSink) DeliverSegment(seg *packet.Segment) {
	s.segs = append(s.segs, seg)
	s.at = append(s.at, 0)
	s.bytes += seg.Len()
}

type pktSink struct{ pkts []*packet.Packet }

func (s *pktSink) HandlePacket(p *packet.Packet) { s.pkts = append(s.pkts, p) }

func testRig(t *testing.T, cfg Config) (*sim.Engine, *fabric.Network, *NIC, *segSink) {
	t.Helper()
	eng := sim.NewEngine()
	tp := topo.SingleSwitch(2, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	sink := &segSink{}
	n := New(eng, net, 0, sink, func(out gro.Output) gro.Handler {
		return gro.NewOfficial(eng, out)
	}, cfg)
	net.AttachHost(0, n)
	return eng, net, n, sink
}

func TestTSOSplitsSegmentIntoMTUPackets(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.SingleSwitch(2, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	rx := &pktSink{}
	net.AttachHost(1, rx)
	n := New(eng, net, 0, &segSink{}, func(out gro.Output) gro.Handler {
		return gro.NewNone(eng, out)
	}, Config{})

	seg := &packet.Segment{
		SrcMAC: packet.HostMAC(0), DstMAC: packet.ShadowMAC(1, 3),
		Flow:     packet.FlowKey{Src: packet.Addr{Host: 0, Port: 1}, Dst: packet.Addr{Host: 1, Port: 2}},
		StartSeq: 1, EndSeq: 1 + 65536, FlowcellID: 7,
		Flags: packet.FlagACK | packet.FlagPSH,
	}
	n.SendSegment(seg)
	eng.RunAll()

	wantPkts := (65536 + packet.MSS - 1) / packet.MSS
	if len(rx.pkts) != wantPkts {
		t.Fatalf("TSO produced %d packets, want %d", len(rx.pkts), wantPkts)
	}
	total := 0
	for i, p := range rx.pkts {
		total += p.Payload
		if p.FlowcellID != 7 || p.DstMAC != seg.DstMAC {
			t.Fatalf("packet %d: flowcell/MAC not replicated", i)
		}
		if p.Seq != 1+uint32(i*packet.MSS) {
			t.Fatalf("packet %d: seq %d", i, p.Seq)
		}
		if p.Payload > packet.MSS {
			t.Fatalf("packet %d exceeds MSS", i)
		}
	}
	if total != 65536 {
		t.Fatalf("TSO total payload %d, want 65536", total)
	}
	// Only the last derived packet carries PSH.
	for i, p := range rx.pkts {
		isLast := i == len(rx.pkts)-1
		if p.Flags.Has(packet.FlagPSH) != isLast {
			t.Fatalf("PSH on packet %d (last=%v)", i, isLast)
		}
	}
}

func TestPureAckBecomesOnePacket(t *testing.T) {
	eng := sim.NewEngine()
	tp := topo.SingleSwitch(2, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	rx := &pktSink{}
	net.AttachHost(1, rx)
	n := New(eng, net, 0, &segSink{}, func(out gro.Output) gro.Handler {
		return gro.NewNone(eng, out)
	}, Config{})
	n.SendSegment(&packet.Segment{
		SrcMAC: packet.HostMAC(0), DstMAC: packet.HostMAC(1),
		Flow:     packet.FlowKey{Src: packet.Addr{Host: 0, Port: 1}, Dst: packet.Addr{Host: 1, Port: 2}},
		StartSeq: 10, EndSeq: 10, Flags: packet.FlagACK, Ack: 999,
		Sack: []packet.SackBlock{{Start: 1, End: 2}},
	})
	eng.RunAll()
	if len(rx.pkts) != 1 || rx.pkts[0].Payload != 0 || rx.pkts[0].Ack != 999 || len(rx.pkts[0].Sack) != 1 {
		t.Fatalf("pure ACK mangled: %+v", rx.pkts)
	}
}

func TestInterruptCoalescingByDelay(t *testing.T) {
	eng, _, n, sink := testRig(t, Config{CoalesceCount: 1000, CoalesceDelay: 30 * sim.Microsecond})
	p := &packet.Packet{
		Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
		Seq:  1, Payload: 1000, Flags: packet.FlagACK,
	}
	n.HandlePacket(p)
	eng.Run(29 * sim.Microsecond)
	if len(sink.segs) != 0 {
		t.Fatal("segment delivered before coalesce delay")
	}
	eng.RunAll()
	if len(sink.segs) != 1 {
		t.Fatalf("delivered %d segments, want 1", len(sink.segs))
	}
	if n.Stats.Polls != 1 {
		t.Fatalf("polls = %d, want 1", n.Stats.Polls)
	}
}

func TestInterruptCoalescingByCount(t *testing.T) {
	eng, _, n, sink := testRig(t, Config{CoalesceCount: 8, CoalesceDelay: sim.Second})
	for i := 0; i < 8; i++ {
		n.HandlePacket(&packet.Packet{
			Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
			Seq:  uint32(1 + i*1000), Payload: 1000, Flags: packet.FlagACK,
		})
	}
	eng.Run(sim.Millisecond) // well before the 1s delay
	if len(sink.segs) == 0 {
		t.Fatal("count-triggered interrupt did not fire")
	}
}

func TestCPUModelCapsPerPacketProcessing(t *testing.T) {
	// Feed MTU packets at 10 Gbps through a None (GRO-disabled)
	// handler: the calibrated CPU model must cap goodput around
	// 5.5-7 Gbps with ring drops (the paper's no-TSO/no-GRO wall).
	eng := sim.NewEngine()
	tp := topo.SingleSwitch(2, topo.LinkConfig{})
	net := fabric.New(eng, tp, fabric.Config{})
	sink := &segSink{}
	n := New(eng, net, 0, sink, func(out gro.Output) gro.Handler {
		return gro.NewNone(eng, out)
	}, Config{})
	net.AttachHost(0, n)

	interval := sim.Time(1230) // ~1.23us per 1538B wire packet = 10 Gbps
	const dur = 50 * sim.Millisecond
	var emit func(i int)
	seq := uint32(1)
	emit = func(i int) {
		p := &packet.Packet{
			Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
			Seq:  seq, Payload: packet.MSS, Flags: packet.FlagACK,
		}
		seq += uint32(packet.MSS)
		n.HandlePacket(p)
		if eng.Now() < dur {
			eng.Schedule(interval, func() { emit(i + 1) })
		}
	}
	eng.Schedule(0, func() { emit(0) })
	eng.Run(dur + 10*sim.Millisecond)

	gbps := float64(sink.bytes) * 8 / (dur + 10*sim.Millisecond).Seconds() / 1e9
	if gbps < 4.5 || gbps > 7.5 {
		t.Fatalf("per-packet goodput = %.2f Gbps, want the 5.5-7 Gbps wall", gbps)
	}
	if n.Stats.RxDrops == 0 {
		t.Fatal("overload should overflow the RX ring")
	}
	util := float64(n.Stats.BusyTime) / float64(eng.Now())
	if util < 0.9 {
		t.Fatalf("CPU util = %.2f, want ~1.0 under overload", util)
	}
}

func TestCPUModelLineRateWithGRO(t *testing.T) {
	// Same 10 Gbps in-order feed through official GRO: merging into
	// large segments keeps the CPU well under 100% with no drops.
	eng, _, n, sink := testRig(t, Config{})
	interval := sim.Time(1230)
	const dur = 50 * sim.Millisecond
	seq := uint32(1)
	var emit func()
	emit = func() {
		n.HandlePacket(&packet.Packet{
			Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
			Seq:  seq, Payload: packet.MSS, Flags: packet.FlagACK, FlowcellID: seq / 65536,
		})
		seq += uint32(packet.MSS)
		if eng.Now() < dur {
			eng.Schedule(interval, emit)
		}
	}
	eng.Schedule(0, emit)
	eng.Run(dur + 5*sim.Millisecond)

	if n.Stats.RxDrops != 0 {
		t.Fatalf("%d ring drops at line rate with GRO", n.Stats.RxDrops)
	}
	util := float64(n.Stats.BusyTime) / float64(eng.Now())
	if util < 0.4 || util > 0.85 {
		t.Fatalf("CPU util with GRO = %.2f, want roughly 0.6-0.7", util)
	}
	// Average delivered segment size must be much larger than one MTU.
	if avg := float64(sink.bytes) / float64(len(sink.segs)); avg < 4*float64(packet.MSS) {
		t.Fatalf("mean segment %v bytes — GRO not merging", avg)
	}
}

func TestDisableCPUModel(t *testing.T) {
	eng, _, n, sink := testRig(t, Config{DisableCPUModel: true})
	n.HandlePacket(&packet.Packet{
		Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
		Seq:  1, Payload: 500, Flags: packet.FlagACK,
	})
	eng.RunAll()
	if len(sink.segs) != 1 {
		t.Fatal("packet not delivered with CPU model disabled")
	}
	if n.Stats.BusyTime != 0 {
		t.Fatal("busy time accounted with CPU model disabled")
	}
}

func TestRingOverflowDrops(t *testing.T) {
	eng, _, n, _ := testRig(t, Config{RingSize: 16, CoalesceCount: 1000, CoalesceDelay: sim.Second})
	for i := 0; i < 40; i++ {
		n.HandlePacket(&packet.Packet{
			Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
			Seq:  uint32(1 + i*1000), Payload: 1000, Flags: packet.FlagACK,
		})
	}
	if n.Stats.RxDrops != 24 {
		t.Fatalf("drops = %d, want 24", n.Stats.RxDrops)
	}
	_ = eng
}

func TestPollDelaysDeliveryByCPUCost(t *testing.T) {
	// Segments must reach the stack only after the poll's CPU cost has
	// elapsed, in arrival order.
	eng, _, n, sink := testRig(t, Config{CoalesceCount: 4, CoalesceDelay: sim.Second})
	for i := 0; i < 4; i++ {
		n.HandlePacket(&packet.Packet{
			Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
			Seq:  uint32(1 + i*packet.MSS), Payload: packet.MSS, Flags: packet.FlagACK,
		})
	}
	// Count-triggered poll at t=0; deliveries land at t=cost>0.
	if len(sink.segs) != 0 {
		t.Fatal("segments delivered before CPU cost elapsed")
	}
	eng.RunAll()
	if len(sink.segs) == 0 {
		t.Fatal("segments never delivered")
	}
	if eng.Now() <= 0 {
		t.Fatal("no simulated CPU time consumed")
	}
	if n.Stats.BusyTime <= 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestUtilizationWindow(t *testing.T) {
	eng, _, n, _ := testRig(t, Config{})
	start := eng.Now()
	busy0 := n.Stats.BusyTime
	for i := 0; i < 64; i++ {
		n.HandlePacket(&packet.Packet{
			Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
			Seq:  uint32(1 + i*packet.MSS), Payload: packet.MSS, Flags: packet.FlagACK,
		})
	}
	eng.RunAll()
	u := n.Utilization(busy0, start)
	if u <= 0 || u > 1.01 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestEvictionCostCharged(t *testing.T) {
	// Reordered packets through official GRO must cost more CPU than
	// the same packets in order.
	run := func(reorder bool) sim.Time {
		eng, _, n, _ := testRig(t, Config{CoalesceCount: 8, CoalesceDelay: sim.Second})
		seqs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		if reorder {
			seqs = []int{0, 4, 1, 5, 2, 6, 3, 7}
		}
		for _, i := range seqs {
			n.HandlePacket(&packet.Packet{
				Flow: packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 0, Port: 2}},
				Seq:  uint32(1 + i*packet.MSS), Payload: packet.MSS, Flags: packet.FlagACK,
				FlowcellID: uint32(i / 4),
			})
		}
		eng.RunAll()
		return n.Stats.BusyTime
	}
	inOrder, reordered := run(false), run(true)
	if reordered <= inOrder {
		t.Fatalf("reordered batch cost %v <= in-order %v", reordered, inOrder)
	}
}
