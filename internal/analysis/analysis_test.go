package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func TestNormalizeImportPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"presto/internal/sim", "presto/internal/sim"},
		{"presto/internal/campaign [presto/internal/campaign.test]", "presto/internal/campaign"},
		{"presto/internal/campaign.test", "presto/internal/campaign"},
		{"presto/internal/gro_test [presto/internal/gro.test]", "presto/internal/gro"},
		{"presto.test", "presto"},
	}
	for _, c := range cases {
		if got := NormalizeImportPath(c.in); got != c.want {
			t.Errorf("NormalizeImportPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHarnessExempt(t *testing.T) {
	exempt := []string{
		"presto/cmd/prestosim",
		"presto/cmd/experiments [presto/cmd/experiments.test]",
		"presto/examples/quickstart",
		"presto/internal/campaign",
		"presto/internal/server",
		"presto/cmd/prestod",
		"presto/cmd/prestoctl [presto/cmd/prestoctl.test]",
		"badfixture/cmd/tool",
	}
	for _, p := range exempt {
		if !HarnessExempt(p) {
			t.Errorf("HarnessExempt(%q) = false, want true", p)
		}
	}
	notExempt := []string{
		"presto",
		"presto/internal/sim",
		"presto/internal/telemetry",
		"presto/internal/gro [presto/internal/gro.test]",
		"simcore",
	}
	for _, p := range notExempt {
		if HarnessExempt(p) {
			t.Errorf("HarnessExempt(%q) = true, want false", p)
		}
	}
}

func TestCollectSuppressions(t *testing.T) {
	src := `package p

func f() {
	//prestolint:allow wallclock -- profiling only
	_ = 1
	_ = 2 //prestolint:allow maporder,simtime
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sups := CollectSuppressions(fset, []*ast.File{f})
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(sups), sups)
	}
	first, second := sups[0], sups[1]
	if first.Line != 4 || len(first.Names) != 1 || first.Names[0] != "wallclock" {
		t.Errorf("first suppression = %+v, want line 4 names [wallclock]", first)
	}
	if first.Reason != "profiling only" {
		t.Errorf("first suppression reason = %q, want %q", first.Reason, "profiling only")
	}
	if second.Line != 6 || len(second.Names) != 2 ||
		second.Names[0] != "maporder" || second.Names[1] != "simtime" {
		t.Errorf("second suppression = %+v, want line 6 names [maporder simtime]", second)
	}
}

// TestMissingReasonDiagnostics checks that a bare //prestolint:allow
// (no "-- reason" tail) is itself reported as a diagnostic while a
// reasoned one is not.
func TestMissingReasonDiagnostics(t *testing.T) {
	src := `package p

func f() {
	//prestolint:allow wallclock -- profiling only
	_ = 1
	_ = 2 //prestolint:allow maporder,simtime
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := MissingReasonDiagnostics(fset, []*ast.File{f})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != SuppressionAnalyzerName {
		t.Errorf("diagnostic analyzer = %q, want %q", d.Analyzer, SuppressionAnalyzerName)
	}
	if pos := fset.Position(d.Pos); pos.Line != 6 {
		t.Errorf("diagnostic at line %d, want 6", pos.Line)
	}
}

// TestObjectFacts checks the per-pass fact store analyzers use to
// summarize functions for interprocedural reasoning.
func TestObjectFacts(t *testing.T) {
	src := `package p

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, TypesInfo: info}
	gObj := tpkg.Scope().Lookup("g")
	if gObj == nil {
		t.Fatal("lookup g failed")
	}
	if _, ok := pass.ObjectFact(gObj); ok {
		t.Error("ObjectFact before export reported ok")
	}
	type summary struct{ n int }
	pass.ExportObjectFact(gObj, summary{7})
	got, ok := pass.ObjectFact(gObj)
	if !ok || got.(summary).n != 7 {
		t.Errorf("ObjectFact = %v, %v; want {7}, true", got, ok)
	}
	if pass.PackageFact() != nil {
		t.Error("PackageFact before export non-nil")
	}
	pass.ExportPackageFact("pkg-wide")
	if pass.PackageFact() != "pkg-wide" {
		t.Errorf("PackageFact = %v, want pkg-wide", pass.PackageFact())
	}
}

// TestReportRangef checks end positions flow into the diagnostic.
func TestReportRangef(t *testing.T) {
	src := `package p

func f() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: &Analyzer{Name: "demo"},
		Fset:     fset,
		diags:    &diags,
	}
	fn := f.Decls[0]
	pass.ReportRangef(fn, "whole decl")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	if diags[0].Pos != fn.Pos() || diags[0].End != fn.End() {
		t.Errorf("diagnostic range = (%v, %v), want (%v, %v)",
			diags[0].Pos, diags[0].End, fn.Pos(), fn.End())
	}
	pass.Reportf(fn.Pos(), "point")
	if diags[1].End != token.NoPos {
		t.Errorf("Reportf set End = %v, want NoPos", diags[1].End)
	}
}
