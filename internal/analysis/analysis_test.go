package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestNormalizeImportPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"presto/internal/sim", "presto/internal/sim"},
		{"presto/internal/campaign [presto/internal/campaign.test]", "presto/internal/campaign"},
		{"presto/internal/campaign.test", "presto/internal/campaign"},
		{"presto/internal/gro_test [presto/internal/gro.test]", "presto/internal/gro"},
		{"presto.test", "presto"},
	}
	for _, c := range cases {
		if got := NormalizeImportPath(c.in); got != c.want {
			t.Errorf("NormalizeImportPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHarnessExempt(t *testing.T) {
	exempt := []string{
		"presto/cmd/prestosim",
		"presto/cmd/experiments [presto/cmd/experiments.test]",
		"presto/examples/quickstart",
		"presto/internal/campaign",
		"presto/internal/server",
		"presto/cmd/prestod",
		"presto/cmd/prestoctl [presto/cmd/prestoctl.test]",
		"badfixture/cmd/tool",
	}
	for _, p := range exempt {
		if !HarnessExempt(p) {
			t.Errorf("HarnessExempt(%q) = false, want true", p)
		}
	}
	notExempt := []string{
		"presto",
		"presto/internal/sim",
		"presto/internal/telemetry",
		"presto/internal/gro [presto/internal/gro.test]",
		"simcore",
	}
	for _, p := range notExempt {
		if HarnessExempt(p) {
			t.Errorf("HarnessExempt(%q) = true, want false", p)
		}
	}
}

func TestCollectSuppressions(t *testing.T) {
	src := `package p

func f() {
	//prestolint:allow wallclock -- profiling only
	_ = 1
	_ = 2 //prestolint:allow maporder,simtime
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sups := CollectSuppressions(fset, []*ast.File{f})
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(sups), sups)
	}
	first, second := sups[0], sups[1]
	if first.Line != 4 || len(first.Names) != 1 || first.Names[0] != "wallclock" {
		t.Errorf("first suppression = %+v, want line 4 names [wallclock]", first)
	}
	if first.Reason != "profiling only" {
		t.Errorf("first suppression reason = %q, want %q", first.Reason, "profiling only")
	}
	if second.Line != 6 || len(second.Names) != 2 ||
		second.Names[0] != "maporder" || second.Names[1] != "simtime" {
		t.Errorf("second suppression = %+v, want line 6 names [maporder simtime]", second)
	}
}
