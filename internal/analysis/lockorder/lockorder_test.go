package lockorder_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "locks")
}
