// Package lockorder builds a per-package mutex-acquisition graph and
// reports cyclic or inconsistent lock orderings.
//
// Deadlocks from inconsistent lock order are the concurrency failure
// class the serving layer is most exposed to: prestod nests the server
// job lock, the daemon log mutex, and per-job event-broker mutexes,
// and every new worker or streaming endpoint adds acquisition paths.
// A cycle in the may-hold-while-acquiring relation (A held while B is
// acquired on one path, B held while A is acquired on another) is a
// latent deadlock even if today's schedules never interleave the two
// paths.
//
// Lock identity is type-level: every instance of struct field T.mu is
// one node, as is every package-level mutex variable. Acquisitions are
// traced through sync.Mutex.Lock, sync.RWMutex.Lock/RLock (including
// promoted methods of embedded mutexes); releases through
// Unlock/RUnlock, with defer treated as function-scoped. The analysis
// is interprocedural within the package: per-function acquisition
// summaries are exported as package-level facts and folded into
// callers, so a cycle split across helper functions is still found.
//
// The type-level approximation means two distinct instances of the
// same struct locked in a hand-over-hand pattern look like a
// self-cycle; annotate such sites with
// //prestolint:allow lockorder -- reason.
package lockorder

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"presto/internal/analysis"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:    "lockorder",
	Aliases: []string{"deadlock"},
	Doc: "build the package's mutex-acquisition graph (which locks are acquired " +
		"while which others are held, including through same-package calls) and " +
		"report cycles: inconsistent lock orderings are latent deadlocks",
	Run: run,
}

// lockUse is one direct acquisition with the locks held at that point.
type lockUse struct {
	lock types.Object
	held []types.Object
	node ast.Node
}

// callUse is a same-package call made while holding locks.
type callUse struct {
	callee types.Object
	held   []types.Object
	node   ast.Node
}

// funcSummary is the per-function fact: every lock the function may
// acquire, directly or through same-package calls (completed to a
// fixpoint in run).
type funcSummary struct {
	acquires map[types.Object]bool
	callees  map[types.Object]bool
}

// edge is one may-hold-while-acquiring observation.
type edge struct {
	from, to types.Object
	node     ast.Node
}

func run(pass *analysis.Pass) error {
	// Pass 1: scan every function body, collecting direct
	// acquisitions (with held sets), same-package calls under lock,
	// and per-function summaries.
	var uses []lockUse
	var calls []callUse
	names := make(map[types.Object]string)
	funcs := make(map[types.Object]*funcSummary)
	var funcOrder []types.Object

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sum := &funcSummary{
				acquires: make(map[types.Object]bool),
				callees:  make(map[types.Object]bool),
			}
			funcs[obj] = sum
			funcOrder = append(funcOrder, obj)
			s := &scanner{pass: pass, names: names, sum: sum}
			s.block(fd.Body.List, nil)
			// Function literals are separate execution contexts (they
			// mostly run on other goroutines or at defer time): scan
			// each with an empty held set. Their acquisitions go to a
			// throwaway summary — a goroutine's locks are not held by
			// the spawning function's callers.
			for len(s.lits) > 0 {
				lit := s.lits[0]
				s.lits = s.lits[1:]
				s.sum = &funcSummary{
					acquires: make(map[types.Object]bool),
					callees:  make(map[types.Object]bool),
				}
				s.block(lit.Body.List, nil)
			}
			uses = append(uses, s.uses...)
			calls = append(calls, s.calls...)
		}
	}

	// Pass 2: complete the summaries to a fixpoint so acquires covers
	// same-package transitive callees, and export them as facts.
	for changed := true; changed; {
		changed = false
		for _, fo := range funcOrder {
			sum := funcs[fo]
			for callee := range sum.callees {
				csum, ok := funcs[callee]
				if !ok {
					continue
				}
				for l := range csum.acquires {
					if !sum.acquires[l] {
						sum.acquires[l] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fo := range funcOrder {
		pass.ExportObjectFact(fo, funcs[fo])
	}

	// Pass 3: build the edge list — direct acquisitions under held
	// locks, plus every lock a callee may take while the caller holds
	// locks.
	var edges []edge
	for _, u := range uses {
		for _, h := range u.held {
			edges = append(edges, edge{from: h, to: u.lock, node: u.node})
		}
	}
	for _, c := range calls {
		sum, ok := funcs[c.callee]
		if !ok {
			continue
		}
		var acquired []types.Object
		for l := range sum.acquires {
			acquired = append(acquired, l)
		}
		sort.Slice(acquired, func(i, j int) bool { return names[acquired[i]] < names[acquired[j]] })
		for _, h := range c.held {
			for _, l := range acquired {
				edges = append(edges, edge{from: h, to: l, node: c.node})
			}
		}
	}

	// Pass 4: report each (from, to) pair that closes a cycle, once,
	// at its first observation site.
	adj := make(map[types.Object][]types.Object)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reported := make(map[[2]types.Object]bool)
	for _, e := range edges {
		key := [2]types.Object{e.from, e.to}
		if reported[key] {
			continue
		}
		if e.from == e.to {
			reported[key] = true
			pass.ReportRangef(e.node,
				"lock %s acquired while already held: self-deadlock on reentrant acquisition (or two instances locked hand-over-hand; //prestolint:allow lockorder -- reason if instances are provably distinct)",
				names[e.from])
			continue
		}
		if path := findPath(adj, e.to, e.from, names); path != nil {
			reported[key] = true
			pass.ReportRangef(e.node,
				"lock order cycle: %s acquired while holding %s, but elsewhere the order is reversed (cycle: %s) — inconsistent lock orderings deadlock under concurrency; pick one global order (or //prestolint:allow lockorder -- reason)",
				names[e.to], names[e.from], cycleString(e.from, path, names))
		}
	}
	return nil
}

// findPath returns a path from -> ... -> to through the acquisition
// graph (nil if unreachable), exploring neighbors in name order so
// reports are deterministic.
func findPath(adj map[types.Object][]types.Object, from, to types.Object, names map[types.Object]string) []types.Object {
	type item struct {
		node types.Object
		path []types.Object
	}
	seen := map[types.Object]bool{from: true}
	queue := []item{{from, []types.Object{from}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		next := append([]types.Object(nil), adj[it.node]...)
		sort.Slice(next, func(i, j int) bool { return names[next[i]] < names[next[j]] })
		for _, n := range next {
			if seen[n] {
				continue
			}
			path := append(append([]types.Object(nil), it.path...), n)
			if n == to {
				return path
			}
			seen[n] = true
			queue = append(queue, item{n, path})
		}
	}
	return nil
}

func cycleString(start types.Object, path []types.Object, names map[types.Object]string) string {
	var b strings.Builder
	b.WriteString(names[start])
	for _, p := range path {
		b.WriteString(" -> ")
		b.WriteString(names[p])
	}
	return b.String()
}

// scanner walks one function body tracking the held-lock set.
type scanner struct {
	pass  *analysis.Pass
	names map[types.Object]string
	sum   *funcSummary
	uses  []lockUse
	calls []callUse
	lits  []*ast.FuncLit
}

// block walks stmts sequentially, threading the held set through; the
// returned slice is the held set after the last statement.
func (s *scanner) block(stmts []ast.Stmt, held []types.Object) []types.Object {
	for _, st := range stmts {
		held = s.stmt(st, held)
	}
	return held
}

// stmt processes one statement. Branch bodies get copies of the held
// set (a lock/unlock pair inside a branch does not leak out); the
// straight-line held set is returned.
func (s *scanner) stmt(st ast.Stmt, held []types.Object) []types.Object {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.expr(st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			held = s.expr(e, held)
		}
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() holds to function end: no release. A
		// deferred closure is queued for later scanning; deferred
		// direct Lock calls are pathological and ignored.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.lits = append(s.lits, lit)
		}
		return held
	case *ast.GoStmt:
		// The spawned goroutine starts with an empty held set.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.lits = append(s.lits, lit)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			held = s.expr(e, held)
		}
		return held
	case *ast.BlockStmt:
		return s.block(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		held = s.expr(st.Cond, held)
		s.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, copyHeld(held))
		}
		return held
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Cond != nil {
			held = s.expr(st.Cond, held)
		}
		s.block(st.Body.List, copyHeld(held))
		return held
	case *ast.RangeStmt:
		held = s.expr(st.X, held)
		s.block(st.Body.List, copyHeld(held))
		return held
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			held = s.expr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.block(cc.Body, copyHeld(held))
			}
		}
		return held
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, held)
	}
	return held
}

// expr processes calls within one expression in evaluation order.
func (s *scanner) expr(e ast.Expr, held []types.Object) []types.Object {
	switch e := e.(type) {
	case *ast.CallExpr:
		for _, a := range e.Args {
			held = s.expr(a, held)
		}
		return s.call(e, held)
	case *ast.FuncLit:
		s.lits = append(s.lits, e)
		return held
	case *ast.BinaryExpr:
		held = s.expr(e.X, held)
		return s.expr(e.Y, held)
	case *ast.UnaryExpr:
		return s.expr(e.X, held)
	case *ast.ParenExpr:
		return s.expr(e.X, held)
	}
	return held
}

// call classifies one call: lock acquire, lock release, or a
// same-package call to fold in later.
func (s *scanner) call(call *ast.CallExpr, held []types.Object) []types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Plain ident call: same-package function?
		if id, ok := call.Fun.(*ast.Ident); ok {
			if fn, ok := s.pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == s.pass.Pkg {
				s.record(fn, call, held)
			}
		}
		return held
	}
	fn, ok := s.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return held
	}
	if lock, acquire := s.lockOp(sel, fn); lock != nil {
		if acquire {
			s.uses = append(s.uses, lockUse{lock: lock, held: copyHeld(held), node: call})
			s.sum.acquires[lock] = true
			return append(held, lock)
		}
		return release(held, lock)
	}
	if fn.Pkg() == s.pass.Pkg {
		s.record(fn, call, held)
	}
	return held
}

// record notes a same-package call (for interprocedural edges and
// summary fixpointing).
func (s *scanner) record(fn *types.Func, call *ast.CallExpr, held []types.Object) {
	s.sum.callees[fn] = true
	if len(held) > 0 {
		s.calls = append(s.calls, callUse{callee: fn, held: copyHeld(held), node: call})
	}
}

// lockOp reports whether sel.Sel is a sync mutex Lock/RLock (acquire
// true) or Unlock/RUnlock (acquire false) and resolves the lock's
// type-level identity. A nil lock means "not a mutex operation we can
// attribute" (locals, parameters, or not a mutex at all).
func (s *scanner) lockOp(sel *ast.SelectorExpr, fn *types.Func) (lock types.Object, acquire bool) {
	var isAcquire bool
	switch fn.Name() {
	case "Lock", "RLock":
		isAcquire = true
	case "Unlock", "RUnlock":
		isAcquire = false
	default:
		return nil, false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false
	}
	obj := s.lockIdent(sel)
	if obj == nil {
		return nil, false
	}
	if _, ok := s.names[obj]; !ok {
		s.names[obj] = displayName(obj)
	}
	return obj, isAcquire
}

// lockIdent resolves the identity of the mutex in `<expr>.Lock()`:
// the struct field object for field-held mutexes (including promoted
// methods of embedded mutexes), or the variable object for
// package-level mutexes. Locals and parameters return nil — their
// identity is call-site-specific and cannot be named at package level.
func (s *scanner) lockIdent(sel *ast.SelectorExpr) types.Object {
	// Promoted method of an embedded mutex: s.Lock() where the method
	// selection path runs through an embedded sync.Mutex field.
	if msel, ok := s.pass.TypesInfo.Selections[sel]; ok {
		idx := msel.Index()
		if len(idx) > 1 {
			// Walk the field path to the embedded mutex field.
			t := msel.Recv()
			var field *types.Var
			for _, i := range idx[:len(idx)-1] {
				st, ok := deref(t).Underlying().(*types.Struct)
				if !ok {
					return nil
				}
				field = st.Field(i)
				t = field.Type()
			}
			return field
		}
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		obj := s.pass.TypesInfo.Uses[x]
		if v, ok := obj.(*types.Var); ok {
			// Package-level mutex var: stable identity. Locals: skip.
			if v.Parent() == s.pass.Pkg.Scope() {
				return v
			}
		}
		return nil
	case *ast.SelectorExpr:
		// Field access s.mu (possibly chained s.broker.mu): identity is
		// the final field object.
		if fsel, ok := s.pass.TypesInfo.Selections[x]; ok && fsel.Kind() == types.FieldVal {
			return fsel.Obj()
		}
		if obj, ok := s.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return obj
		}
		return nil
	}
	return nil
}

// displayName renders a lock object for diagnostics: "Type.field" for
// struct-field mutexes, "pkg.var" for package-level ones.
func displayName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		// Find the struct type name via the field's position in its
		// owner; fall back to the bare field name.
		if named := fieldOwner(v); named != "" {
			return named + "." + v.Name()
		}
		return v.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// fieldOwner returns the name of the named type that declares field v,
// scanning the package scope ("" if not found — e.g. an anonymous
// struct).
func fieldOwner(v *types.Var) string {
	if v.Pkg() == nil {
		return ""
	}
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn.Name()
			}
		}
	}
	return ""
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func copyHeld(held []types.Object) []types.Object {
	return append([]types.Object(nil), held...)
}

// release removes the most recent acquisition of lock from held.
func release(held []types.Object, lock types.Object) []types.Object {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == lock {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
