// Package locks is the lockorder fixture: AB/BA cycles, a cycle split
// across helper functions, reentrant acquisition, and clean consistent
// orderings that must stay silent.
package locks

import "sync"

// Server nests two mutexes in opposite orders across its methods — the
// classic inconsistent-ordering deadlock.
type Server struct {
	a sync.Mutex
	b sync.RWMutex
}

func (s *Server) abPath() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock order cycle`
	defer s.b.Unlock()
}

func (s *Server) baPath() {
	s.b.RLock()
	defer s.b.RUnlock()
	s.a.Lock() // want `lock order cycle`
	defer s.a.Unlock()
}

// Pool splits its cycle across a helper: the mu->jobs edge only exists
// through the addJob call, so finding it needs the per-function
// acquisition facts.
type Pool struct {
	mu   sync.Mutex
	jobs sync.Mutex
}

func (p *Pool) lockJobsUnderMu() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addJob() // want `lock order cycle`
}

func (p *Pool) addJob() {
	p.jobs.Lock()
	defer p.jobs.Unlock()
}

func (p *Pool) lockMuUnderJobs() {
	p.jobs.Lock()
	p.mu.Lock() // want `lock order cycle`
	p.mu.Unlock()
	p.jobs.Unlock()
}

// Reentrant acquisition of the same (type-level) lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) incrTwice() {
	c.mu.Lock()
	c.mu.Lock() // want `acquired while already held`
	c.n += 2
	c.mu.Unlock()
	c.mu.Unlock()
}

// Clean holds two mutexes always in the same order — no cycle, no
// diagnostics — and demonstrates the patterns the scanner must not
// misread.
type Clean struct {
	c sync.Mutex
	d sync.Mutex
}

func (x *Clean) nestedConsistent() {
	x.c.Lock()
	defer x.c.Unlock()
	x.d.Lock()
	defer x.d.Unlock()
}

func (x *Clean) nestedConsistentAgain() {
	x.c.Lock()
	x.d.Lock()
	x.d.Unlock()
	x.c.Unlock()
}

// Sequential (non-nested) opposite-order acquisition is fine: d is
// released before c is taken.
func (x *Clean) sequential() {
	x.d.Lock()
	x.d.Unlock()
	x.c.Lock()
	x.c.Unlock()
}

// A goroutine starts with an empty held set: locking d on it while the
// spawner holds c is not a c->d edge from the caller's point of view,
// and crucially its acquisitions must not leak into this function's
// summary (callers of spawnWorker holding d would otherwise see a
// false d->c cycle via sequential+goroutine).
func (x *Clean) spawnWorker() {
	x.c.Lock()
	defer x.c.Unlock()
	go func() {
		x.d.Lock()
		x.d.Unlock()
	}()
}

// Embedded mutex: promoted Lock resolves to the embedded field.
type Registry struct {
	sync.Mutex
	entries map[string]int
}

func (r *Registry) add(k string) {
	r.Lock()
	defer r.Unlock()
	r.entries[k]++
}

// Package-level mutex ordered consistently against a field mutex.
var pkgMu sync.Mutex

func withPkg(x *Clean) {
	pkgMu.Lock()
	defer pkgMu.Unlock()
	x.c.Lock()
	defer x.c.Unlock()
}

// Local mutexes have no package-level identity and are skipped.
func local() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
