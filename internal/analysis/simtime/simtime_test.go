package simtime_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/simtime"
)

func TestSimtime(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer, "sim", "mixing")
}
