// Package mixing is a simtime fixture: raw conversions between
// sim.Time and wall-clock types are flagged outside the sim package.
package mixing

import (
	"time"

	"sim"
)

// Bad: direct conversions in both directions.

func ToSim(d time.Duration) sim.Time {
	return sim.Time(d) // want `direct conversion from time\.Duration to sim\.Time`
}

func ToWall(t sim.Time) time.Duration {
	return time.Duration(t) // want `direct conversion from sim\.Time to time\.Duration`
}

// Bad: laundering a duration through its integer accessor or an
// integer conversion does not hide the crossing.

func Laundered(d time.Duration) sim.Time {
	return sim.Time(d.Nanoseconds()) // want `laundered through an integer`
}

func LaunderedInt(d time.Duration) sim.Time {
	return sim.Time(int64(d)) // want `laundered through an integer`
}

// Good: the blessed helpers.

func Blessed(d time.Duration) sim.Time {
	return sim.FromDuration(d)
}

func BlessedBack(t sim.Time) time.Duration {
	return t.AsDuration()
}

// Good: conversions that never touch wall-clock types.

func Scale(t sim.Time) sim.Time {
	return sim.Time(int64(t) * 2)
}

func Literal() sim.Time {
	return sim.Time(42)
}

func Seconds(t sim.Time) float64 {
	return float64(t) / 1e9
}

// The escape hatch: an annotated conversion is not reported.

func Hatch(d time.Duration) sim.Time {
	return sim.Time(d) //prestolint:allow simtime -- fixture: documented exception
}
