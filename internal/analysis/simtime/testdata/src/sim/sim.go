// Package sim is a simtime fixture stand-in for the simulator's time
// package: it owns the Time type, so raw conversions here are blessed.
package sim

import "time"

// Time is a simulated timestamp in nanoseconds.
type Time int64

// FromDuration converts a wall-clock duration into simulated time —
// one of the two blessed crossing points.
func FromDuration(d time.Duration) Time {
	return Time(d)
}

// AsDuration converts simulated time into a wall-clock duration — the
// other blessed crossing point.
func (t Time) AsDuration() time.Duration {
	return time.Duration(t)
}
