// Package simtime forbids mixing sim.Time with wall-clock time types
// outside the blessed conversion helpers.
//
// sim.Time is a simulated nanosecond timestamp; time.Duration and
// time.Time are wall-clock quantities. A direct conversion between
// them — sim.Time(d), time.Duration(t), or laundering through an
// integer such as sim.Time(d.Nanoseconds()) — silently couples
// simulated results to wall-clock inputs and hides the unit change
// from reviewers. All conversions must go through the helpers the sim
// package itself exports (sim.FromDuration, sim.Time.AsDuration),
// which exist precisely so the crossing points are grep-able.
//
// The sim package (the type's owner) is the only blessed location for
// raw conversions.
package simtime

import (
	"go/ast"
	"go/types"
	"strings"

	"presto/internal/analysis"
)

// Analyzer is the simtime analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid converting between sim.Time and time.Duration/time.Time " +
		"(including laundering through integers or Nanoseconds()) outside " +
		"the sim package's blessed helpers sim.FromDuration and " +
		"sim.Time.AsDuration",
	Run: run,
}

// wallMethods are accessor methods on time.Duration/time.Time whose
// integer results are wall-clock quantities in disguise.
var wallMethods = map[string]bool{
	"Nanoseconds":  true,
	"Microseconds": true,
	"Milliseconds": true,
	"Seconds":      true,
	"Unix":         true,
	"UnixMilli":    true,
	"UnixMicro":    true,
	"UnixNano":     true,
}

func run(pass *analysis.Pass) error {
	// The sim package owns the type; its helpers are the blessed
	// conversion points.
	if strings.TrimSuffix(pass.Pkg.Name(), "_test") == "sim" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target := tv.Type
			arg := call.Args[0]
			argType := pass.TypesInfo.Types[arg].Type

			switch {
			case isSimTime(target) && isWallClock(argType):
				pass.Reportf(call.Pos(),
					"direct conversion from %s to sim.Time: use sim.FromDuration so wall-clock crossings stay explicit (or //prestolint:allow simtime -- reason)",
					typeName(argType))
			case isWallClock(target) && isSimTime(argType):
				pass.Reportf(call.Pos(),
					"direct conversion from sim.Time to %s: use sim.Time.AsDuration so wall-clock crossings stay explicit (or //prestolint:allow simtime -- reason)",
					typeName(target))
			case isSimTime(target) && laundersWallClock(pass, arg):
				pass.Reportf(call.Pos(),
					"wall-clock value laundered through an integer into sim.Time: use sim.FromDuration (or //prestolint:allow simtime -- reason)")
			}
			return true
		})
	}
	return nil
}

// laundersWallClock reports whether e, after peeling integer
// conversions, is an accessor call on a wall-clock value (e.g.
// d.Nanoseconds(), int64(d), t.UnixNano()).
func laundersWallClock(pass *analysis.Pass, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			if len(x.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsNumeric != 0 {
						inner := x.Args[0]
						if t := pass.TypesInfo.Types[inner].Type; t != nil && isWallClock(t) {
							return true
						}
						e = inner
						continue
					}
				}
			}
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !wallMethods[sel.Sel.Name] {
				return false
			}
			s, ok := pass.TypesInfo.Selections[sel]
			return ok && isWallClock(s.Recv())
		default:
			return false
		}
	}
}

func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		strings.TrimSuffix(obj.Pkg().Name(), "_test") == "sim"
}

func isWallClock(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return false
	}
	return obj.Name() == "Duration" || obj.Name() == "Time"
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			return pkg.Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
