// Package maporder flags ranging over a map when the loop body performs
// order-sensitive effects.
//
// Go randomizes map iteration order, so a map-range loop that emits
// telemetry events, writes to an encoder or writer, or appends to a
// slice the function returns produces a different artifact on every
// run — exactly the nondeterminism the campaign runner's byte-identical
// replay guarantee forbids. Order-insensitive bodies stay clean:
// reductions into scalars (+=, min/max, counting), writes into other
// maps, deletes, and the collect-keys-then-sort idiom — whether the
// sorted slice is consumed locally or returned, a sort after the loop
// erases the map's iteration order.
//
// The fix is mechanical: collect the keys, sort them, range over the
// sorted slice. Where iteration order provably cannot reach an
// artifact, annotate with //prestolint:allow maporder -- reason.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"presto/internal/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose body emits telemetry, writes to " +
		"encoders/writers, or appends to returned slices; map iteration order " +
		"is randomized, so such loops make run artifacts nondeterministic",
	// Test-failure message ordering is noise, not artifact
	// nondeterminism; results always flow through non-test code.
	SkipTestFiles: true,
	Run:           run,
}

// writerMethods are method names whose calls serialize data in call
// order (io.Writer, strings.Builder, json.Encoder, ...).
var writerMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Print":       true,
	"Printf":      true,
	"Println":     true,
}

// writerFuncs are package-level printing functions keyed by package
// path.
var writerFuncs = map[string]map[string]bool{
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
	},
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var funcStack []ast.Node // enclosing FuncDecl/FuncLit chain
		returned := make(map[ast.Node]map[types.Object]bool)

		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				var body *ast.BlockStmt
				if fd, ok := n.(*ast.FuncDecl); ok {
					body = fd.Body
				} else {
					body = n.(*ast.FuncLit).Body
				}
				returned[n] = returnedObjects(pass, n, body)
				if body != nil {
					ast.Inspect(body, walk)
				}
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				var ret map[types.Object]bool
				var encl ast.Node
				if len(funcStack) > 0 {
					encl = funcStack[len(funcStack)-1]
					ret = returned[encl]
				}
				checkBody(pass, n, ret, encl)
				return true
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

// returnedObjects collects the variables fn's result values can refer
// to: named results plus plain identifiers appearing in return
// statements. Appending to one of these inside a map-range loop bakes
// iteration order into the function's output.
func returnedObjects(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	var results *ast.FieldList
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		results = fn.Type.Results
	case *ast.FuncLit:
		results = fn.Type.Results
	}
	if results != nil {
		for _, field := range results.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	if body == nil {
		return objs
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested function's returns are its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					objs[obj] = true
				}
			}
		}
		return true
	})
	return objs
}

func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, returned map[types.Object]bool, encl ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.AssignStmt:
			checkAppend(pass, n, returned, rng, encl)
		}
		return true
	})
}

// checkCall flags telemetry emits and serializing writes.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		// Method call: check the receiver's defining package and the
		// method name.
		if named := namedOf(s.Recv()); named != nil {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Name() == "telemetry" {
				pass.Reportf(call.Pos(),
					"telemetry emit inside map iteration: %s.%s records events in randomized map order; iterate a sorted key slice (or //prestolint:allow maporder -- reason)",
					named.Obj().Name(), sel.Sel.Name)
				return
			}
		}
		if writerMethods[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"write inside map iteration: %s serializes in randomized map order; iterate a sorted key slice (or //prestolint:allow maporder -- reason)",
				sel.Sel.Name)
		}
		return
	}
	// Package-qualified call.
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Name() == "telemetry" {
		pass.Reportf(call.Pos(),
			"telemetry emit inside map iteration: %s.%s records events in randomized map order; iterate a sorted key slice (or //prestolint:allow maporder -- reason)",
			fn.Pkg().Name(), fn.Name())
		return
	}
	if names, ok := writerFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
		pass.Reportf(call.Pos(),
			"write inside map iteration: %s.%s emits output in randomized map order; iterate a sorted key slice (or //prestolint:allow maporder -- reason)",
			fn.Pkg().Name(), fn.Name())
	}
}

// checkAppend flags x = append(x, ...) where x escapes through a
// return statement, unless the function sorts x after the loop (the
// collect-keys-then-sort idiom applied to the returned slice itself).
func checkAppend(pass *analysis.Pass, assign *ast.AssignStmt, returned map[types.Object]bool, rng *ast.RangeStmt, encl ast.Node) {
	if len(returned) == 0 {
		return
	}
	for i, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			continue
		}
		if i >= len(assign.Lhs) {
			break
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj != nil && returned[obj] && !sortedAfter(pass, encl, rng.End(), obj) {
			pass.Reportf(assign.Pos(),
				"append to returned slice %s inside map iteration bakes randomized map order into the result; sort it before returning (or //prestolint:allow maporder -- reason)",
				id.Name)
		}
	}
}

// sortedAfter reports whether the enclosing function sorts obj after
// the map-range loop ends — a call into the sort or slices package
// whose first argument is obj (sort.Strings(x), sort.Slice(x, less),
// slices.SortFunc(x, cmp), ...). An intervening sort erases the map's
// iteration order, so the append is deterministic after all.
func sortedAfter(pass *analysis.Pass, encl ast.Node, after token.Pos, obj types.Object) bool {
	if encl == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
