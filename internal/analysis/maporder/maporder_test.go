package maporder_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "mapuse")
}
