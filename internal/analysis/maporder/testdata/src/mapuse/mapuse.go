// Package mapuse is a maporder fixture: map-range loops with
// order-sensitive bodies are flagged, order-insensitive ones are not.
package mapuse

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"telemetry"
)

// Bad: emitting telemetry in map order.
func EmitAll(tr *telemetry.Tracer, m map[string]int64) {
	for _, v := range m {
		tr.Emit(v) // want `telemetry emit inside map iteration`
	}
}

// Bad: serializing in map order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `write inside map iteration`
	}
}

// Bad: string assembly in map order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `write inside map iteration`
	}
	return b.String()
}

// Bad: the returned slice's element order is the map's iteration
// order.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to returned slice`
	}
	return keys
}

// Good: the canonical fix — collect, sort, then iterate.
func SortedKeys(m map[string]int) []string {
	collected := make([]string, 0, len(m))
	for k := range m {
		collected = append(collected, k)
	}
	sort.Strings(collected)
	out := make([]string, 0, len(collected))
	for _, k := range collected {
		out = append(out, k)
	}
	return out
}

// Good: appending to the returned slice is fine when an intervening
// sort erases the map's iteration order before the return.
func SortedReturn(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Good: sort.Slice with a comparator also counts as an intervening
// sort.
func SortedBySize(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool { return len(names[i]) < len(names[j]) })
	return names
}

// Good: order-insensitive reduction into a scalar.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Good: writing into another map is order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Good: deleting while sweeping is order-insensitive.
func Sweep(m map[string]int, limit int) {
	for k, v := range m {
		if v > limit {
			delete(m, k)
		}
	}
}

// The escape hatch: an annotated loop is not reported.
func Debug(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) //prestolint:allow maporder -- fixture: debug output, never an artifact
	}
}
