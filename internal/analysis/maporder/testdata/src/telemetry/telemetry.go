// Package telemetry is a fixture stand-in for the simulator's
// telemetry layer, used by the maporder fixtures.
package telemetry

// Tracer buffers events; nil is the disabled state.
type Tracer struct {
	events []int64
}

// Emit records one event.
func (t *Tracer) Emit(a int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, a)
}
