package hotalloc_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hot")
}
