// Package hotalloc makes zero-allocation invariants compile-time
// checkable: a function marked //prestolint:noalloc may not contain
// heap-escaping constructs.
//
// The repository's hot paths — the event engine's Schedule/dispatch,
// the Presto GRO flush walk, the telemetry ring emit — are bench-gated
// at 0 allocs/op (cmd/prestobench against BENCH_1.json). The bench
// gate catches a regression only after it lands and only for inputs
// the benchmark exercises; this analyzer rejects the constructs that
// cause such regressions at vet time:
//
//   - variable-capturing closures (the closure header escapes)
//   - implicit interface conversions of non-pointer values (boxing)
//   - fmt calls (format state, boxed arguments)
//   - append through a bare slice (may grow; append through an explicit
//     reslice like buf[:0], or a variable assigned from one, is the
//     sanctioned reuse idiom)
//   - map/slice composite literals, make, new, &composite{} (runtime
//     allocations)
//   - string concatenation and string<->[]byte conversions
//
// The check is syntactic and intentionally stricter than the escape
// analyzer: a construct the compiler happens to optimize today still
// reads as an allocation hazard tomorrow. Amortized growth paths that
// are measured at 0 allocs/op in steady state (arena/heap high-water
// growth) take //prestolint:allow hotalloc -- reason.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"presto/internal/analysis"
)

// Annotation marks a function whose body must be free of
// heap-escaping constructs.
const Annotation = "prestolint:noalloc"

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:    "hotalloc",
	Aliases: []string{"noalloc"},
	Doc: "forbid heap-escaping constructs (capturing closures, interface boxing, " +
		"fmt, growing append, map/slice literals, make/new, string building) in " +
		"functions annotated //prestolint:noalloc, so bench-gated 0 allocs/op " +
		"paths are enforced at vet time, not just at benchmark time",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			c := &checker{pass: pass, reuse: reuseSlices(pass, fd.Body)}
			c.check(fd.Body, fd.Type)
		}
	}
	return nil
}

// annotated reports whether fd carries the //prestolint:noalloc
// directive in its doc comment.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, Annotation) {
			return true
		}
	}
	return false
}

// reuseSlices collects variables assigned from a slice expression
// anywhere in body (kept := buf[:0] and the like): appending through
// them is the sanctioned backing-array reuse idiom.
func reuseSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if _, ok := rhs.(*ast.SliceExpr); !ok {
				continue
			}
			if i >= len(assign.Lhs) {
				break
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// checker walks one annotated function body. sig is the innermost
// function type, for return-statement conversion checks.
type checker struct {
	pass  *analysis.Pass
	reuse map[types.Object]bool
}

func (c *checker) check(body *ast.BlockStmt, ftyp *ast.FuncType) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if caps := c.captures(n); len(caps) > 0 {
				c.pass.ReportRangef(n,
					"noalloc function builds a variable-capturing closure (captures %s): the closure and its captures escape to the heap; hoist it to a method or bind state in a struct (or //prestolint:allow hotalloc -- reason)",
					strings.Join(caps, ", "))
			}
			// Still check the literal's body: it runs as part of this
			// hot path when invoked.
			c.check(n.Body, n.Type)
			return false
		case *ast.CallExpr:
			c.call(n)
		case *ast.CompositeLit:
			c.composite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.pass.ReportRangef(n,
						"noalloc function heap-allocates a composite literal with &: hoist it out of the hot path (or //prestolint:allow hotalloc -- reason)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				tv, ok := c.pass.TypesInfo.Types[n]
				if ok && tv.Value == nil && isString(tv.Type) {
					c.pass.ReportRangef(n,
						"noalloc function concatenates strings: + builds a fresh string on the heap (or //prestolint:allow hotalloc -- reason)")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					c.conversion(rhs, c.typeOf(n.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				target := c.pass.TypesInfo.Types[n.Type].Type
				for _, v := range n.Values {
					c.conversion(v, target)
				}
			}
		case *ast.ReturnStmt:
			if ftyp.Results != nil {
				var results []types.Type
				for _, f := range ftyp.Results.List {
					t := c.pass.TypesInfo.Types[f.Type].Type
					reps := len(f.Names)
					if reps == 0 {
						reps = 1
					}
					for i := 0; i < reps; i++ {
						results = append(results, t)
					}
				}
				if len(results) == len(n.Results) {
					for i, r := range n.Results {
						c.conversion(r, results[i])
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// captures returns the names of variables lit references that are
// declared outside it (and are not package-level).
func (c *checker) captures(lit *ast.FuncLit) []string {
	seen := make(map[types.Object]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if c.pass.Pkg != nil && v.Parent() == c.pass.Pkg.Scope() {
			return true // package-level: no capture needed
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own params/locals
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

// call classifies one call expression: builtin, conversion, fmt, or a
// regular call whose interface parameters box concrete arguments.
func (c *checker) call(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		c.conversionCall(call, tv.Type)
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			c.builtin(call, b.Name())
			return
		}
	}
	if fn := calleeFunc(c.pass, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		c.pass.ReportRangef(call,
			"noalloc function calls fmt.%s: fmt boxes its arguments and allocates format state; use strconv into a reused buffer off the hot path (or //prestolint:allow hotalloc -- reason)",
			fn.Name())
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread: the slice passes through unboxed
			}
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		c.conversion(arg, param)
	}
}

// builtin checks append/make/new.
func (c *checker) builtin(call *ast.CallExpr, name string) {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if c.isReuseTarget(call.Args[0]) {
			return
		}
		c.pass.ReportRangef(call,
			"noalloc function appends through a bare slice: growth reallocates the backing array; append through an explicit reslice (buf[:0]) of a preallocated buffer (or //prestolint:allow hotalloc -- reason)")
	case "make":
		c.pass.ReportRangef(call,
			"noalloc function calls make: allocate the buffer once outside the hot path and reuse it (or //prestolint:allow hotalloc -- reason)")
	case "new":
		c.pass.ReportRangef(call,
			"noalloc function calls new: heap allocation on the hot path (or //prestolint:allow hotalloc -- reason)")
	}
}

// isReuseTarget reports whether the first append argument is an
// explicit reslice or a variable assigned from one.
func (c *checker) isReuseTarget(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil && c.reuse[obj] {
			return true
		}
	}
	return false
}

// composite flags map and slice literals (runtime allocations); array
// and struct literals are value constructions and pass.
func (c *checker) composite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		c.pass.ReportRangef(lit,
			"noalloc function builds a map literal: map construction allocates; hoist it to initialization (or //prestolint:allow hotalloc -- reason)")
	case *types.Slice:
		c.pass.ReportRangef(lit,
			"noalloc function builds a slice literal: the backing array allocates; hoist it to initialization (or //prestolint:allow hotalloc -- reason)")
	}
}

// conversionCall checks an explicit conversion T(x).
func (c *checker) conversionCall(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	argTV, ok := c.pass.TypesInfo.Types[arg]
	if !ok {
		return
	}
	if isString(target) && isByteOrRuneSlice(argTV.Type) && argTV.Value == nil {
		c.pass.ReportRangef(call,
			"noalloc function converts []byte/[]rune to string: the conversion copies to the heap (or //prestolint:allow hotalloc -- reason)")
		return
	}
	if isByteOrRuneSlice(target) && isString(argTV.Type) && argTV.Value == nil {
		c.pass.ReportRangef(call,
			"noalloc function converts string to []byte/[]rune: the conversion copies to the heap (or //prestolint:allow hotalloc -- reason)")
		return
	}
	c.conversion(arg, target)
}

// conversion flags value -> interface boxing: converting a non-pointer
// concrete value to an interface type allocates.
func (c *checker) conversion(e ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants box to static interface data
	}
	if types.IsInterface(tv.Type) || pointerShaped(tv.Type) || isUntypedNil(tv.Type) {
		return
	}
	c.pass.ReportRangef(e,
		"noalloc function converts %s to interface %s: boxing a non-pointer value allocates (or //prestolint:allow hotalloc -- reason)",
		types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)),
		types.TypeString(target, types.RelativeTo(c.pass.Pkg)))
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit in an interface's data
// word without boxing: pointers, channels, maps, funcs, and
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
