// Package hot is the hotalloc fixture: every heap-escaping construct
// inside a //prestolint:noalloc function, plus the accepted shapes
// (reslice-append, pointer boxing, constants, unannotated functions).
package hot

import "fmt"

type ring struct {
	buf  []int
	segs []segment
}

type segment struct {
	id   int
	live bool
}

var sinkAny interface{}

//prestolint:noalloc
func Closure(r *ring) func() {
	n := 0
	return func() { n++ } // want `variable-capturing closure`
}

//prestolint:noalloc
func NoCapture() func() {
	return func() {} // capture-free closures are static; fine
}

//prestolint:noalloc
func Format(v int) {
	fmt.Println(v) // want `calls fmt.Println`
}

//prestolint:noalloc
func Boxing(v int, p *ring) {
	sinkAny = v // want `converts int to interface`
	sinkAny = p // pointer-shaped: fits the data word, no boxing
	sinkAny = 7 // constants box to static data
	take(v)     // want `converts int to interface`
	take(p)
}

func take(v interface{}) {}

//prestolint:noalloc
func Append(r *ring, v int) {
	r.buf = append(r.buf, v) // want `appends through a bare slice`
	kept := r.segs[:0]
	for _, s := range r.segs {
		if s.live {
			kept = append(kept, s) // reuse of the backing array: fine
		}
	}
	r.segs = kept
	r.buf = append(r.buf[:0], v) // explicit reslice: fine
}

//prestolint:noalloc
func Literals() {
	m := map[string]int{} // want `builds a map literal`
	s := []int{1, 2, 3}   // want `builds a slice literal`
	a := [2]int{1, 2}     // array literal is a value; fine
	v := segment{id: 1}   // struct literal is a value; fine
	p := &segment{id: 2}  // want `heap-allocates a composite literal`
	b := make([]byte, 64) // want `calls make`
	q := new(segment)     // want `calls new`
	_, _, _, _, _, _, _ = m, s, a, v, p, b, q
}

//prestolint:noalloc
func Strings(a, b string, raw []byte) {
	c := a + b          // want `concatenates strings`
	d := string(raw)    // want `converts \[\]byte/\[\]rune to string`
	e := []byte(a)      // want `converts string to \[\]byte/\[\]rune`
	const f = "x" + "y" // constant folding; fine
	_, _, _, _ = c, d, e, f
}

// Unannotated functions may allocate freely.
func Cold() interface{} {
	m := map[string]int{"a": 1}
	s := fmt.Sprint(m)
	return s
}
