// Package analysis is the core of prestolint, the repository's custom
// static-analysis suite. It is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis built entirely on the standard
// library's go/ast and go/types: the build environment pins third-party
// modules but the determinism invariants the suite enforces (no wall
// clock in simulator code, no order-sensitive map iteration feeding
// results, nil-receiver-safe telemetry, no sim.Time/wall-time mixing)
// must be checkable offline with nothing but the Go toolchain.
//
// The shape mirrors go/analysis deliberately — an Analyzer holds a Run
// function over a Pass; diagnostics carry token positions — so the
// suite can be ported to the upstream framework mechanically if the
// dependency ever becomes available.
//
// # Suppressions
//
// A finding is suppressed by a comment on the same line or the line
// directly above it:
//
//	//prestolint:allow <name>[,<name>...] [-- reason]
//
// where <name> is an analyzer name (simclock, maporder, niltracer,
// simtime, lockorder, goroleak, errdrop, hotalloc) or one of its
// aliases (e.g. "wallclock" for simclock). The "-- reason" tail is
// mandatory: a bare //prestolint:allow is itself reported as a
// diagnostic (see MissingReasonDiagnostics), because an exception that
// does not document why it is sound cannot be reviewed or retired.
// cmd/prestolint -suppressions lists every annotation in a tree so
// exceptions stay auditable, and -suppressions -budget enforces
// per-analyzer allow-counts so the exception list can only shrink
// without review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Aliases are additional names accepted in //prestolint:allow
	// comments (e.g. "wallclock" suppresses simclock).
	Aliases []string

	// SkipPkg, if non-nil, reports whether the package with the given
	// (normalized) import path is exempt from this analyzer.
	SkipPkg func(importPath string) bool

	// SkipTestFiles excludes _test.go files from analysis. Used by
	// analyzers whose invariant protects result artifacts rather than
	// test diagnostics (e.g. maporder: t.Errorf ordering inside a test
	// loop is noise, not nondeterminism in results).
	SkipTestFiles bool

	// Run performs the analysis and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportPath is the package path as reported by the build system
	// (already normalized; see NormalizeImportPath).
	ImportPath string

	diags *[]Diagnostic

	// Package-level facts (see ExportObjectFact). Facts never cross
	// package boundaries — the vettool's vetx files stay empty — but
	// within one package they let an analyzer summarize a function once
	// (locks it acquires, whether it can run forever) and consult that
	// summary from every call site.
	objFacts map[types.Object]Fact
	pkgFact  Fact
}

// A Fact is an analyzer-defined summary attached to a package-level
// object (usually a *types.Func) or to the package itself. Facts are
// scoped to a single analyzer's Pass over a single package: they exist
// so interprocedural analyzers (lockorder, goroleak) can reason across
// the functions of one package without re-walking callee bodies at
// every call site.
type Fact any

// ExportObjectFact attaches fact to obj for the remainder of this pass.
// A second export for the same object overwrites the first.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	if p.objFacts == nil {
		p.objFacts = make(map[types.Object]Fact)
	}
	p.objFacts[obj] = fact
}

// ObjectFact returns the fact attached to obj by ExportObjectFact, if
// any.
func (p *Pass) ObjectFact(obj types.Object) (Fact, bool) {
	f, ok := p.objFacts[obj]
	return f, ok
}

// ExportPackageFact attaches a single package-wide fact to this pass.
func (p *Pass) ExportPackageFact(fact Fact) { p.pkgFact = fact }

// PackageFact returns the fact attached by ExportPackageFact (nil if
// none was exported).
func (p *Pass) PackageFact() Fact { return p.pkgFact }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportRangef records a diagnostic spanning the node rng, carrying an
// end position so drivers (editors, the -json output) can highlight
// the whole construct rather than a single column.
func (p *Pass) ReportRangef(rng ast.Node, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      rng.Pos(),
		End:      rng.End(),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding. End is optional (token.NoPos when the
// analyzer reported a point position rather than a range).
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Analyzer string
	Message  string
}

// A Package bundles the inputs shared by every analyzer run on it.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	ImportPath string
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated, ready to pass to types.Config.Check.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers runs each analyzer over pkg (honoring SkipPkg and
// SkipTestFiles), drops suppressed findings, and returns the remainder
// sorted by position so output is deterministic regardless of analyzer
// registration or traversal order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	path := NormalizeImportPath(pkg.ImportPath)
	for _, az := range analyzers {
		if az.SkipPkg != nil && az.SkipPkg(path) {
			continue
		}
		files := pkg.Files
		if az.SkipTestFiles {
			files = nonTestFiles(pkg.Fset, files)
			if len(files) == 0 {
				continue
			}
		}
		pass := &Pass{
			Analyzer:   az,
			Fset:       pkg.Fset,
			Files:      files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			ImportPath: path,
			diags:      &diags,
		}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", az.Name, err)
		}
	}
	diags = filterSuppressed(pkg, analyzers, diags)
	diags = append(diags, MissingReasonDiagnostics(pkg.Fset, pkg.Files)...)
	SortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

// SuppressionAnalyzerName labels diagnostics produced by the framework
// itself about malformed //prestolint:allow comments. It is not a
// runnable analyzer and cannot be suppressed.
const SuppressionAnalyzerName = "suppression"

// MissingReasonDiagnostics reports every //prestolint:allow comment in
// files that lacks the "-- reason" tail. A suppression is a standing
// exception to an invariant; one that does not document why the
// exception is sound is itself a defect, so the bare form is a
// diagnostic rather than a style nit.
func MissingReasonDiagnostics(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, s := range CollectSuppressions(fset, files) {
		if s.Reason == "" {
			out = append(out, Diagnostic{
				Pos:      s.Pos,
				Analyzer: SuppressionAnalyzerName,
				Message:  "//prestolint:allow without a '-- reason' tail: every suppression must document why the exception is sound",
			})
		}
	}
	return out
}

// SortDiagnostics orders diags by (file, line, column, analyzer,
// message).
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	var out []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}

// NormalizeImportPath strips the decorations the build system adds to
// package paths so exemption matching sees the underlying package:
// the " [pkg.test]" test-variant suffix, the synthesized ".test" test
// main, and the "_test" external-test package suffix.
func NormalizeImportPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// HarnessExempt reports whether importPath belongs to the harness
// layer, which legitimately touches the wall clock: command-line
// drivers (cmd/*), runnable examples (examples/*), the campaign
// runner (internal/campaign), which times replicas and enforces
// wall-clock timeouts around the deterministic core, and the serving
// layer (internal/server), which stamps job lifecycles, TTL-expires
// artifacts, and measures HTTP request latencies for /metrics.
func HarnessExempt(importPath string) bool {
	for _, seg := range strings.Split(NormalizeImportPath(importPath), "/") {
		switch seg {
		case "cmd", "examples", "campaign", "server":
			return true
		}
	}
	return false
}

// A Suppression is one parsed //prestolint:allow comment.
type Suppression struct {
	Pos    token.Pos
	Line   int // line the suppression applies to (the comment's line)
	File   string
	Names  []string
	Reason string
}

const allowPrefix = "prestolint:allow"

// CollectSuppressions parses every //prestolint:allow comment in files.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				var reason string
				if i := strings.Index(rest, "--"); i >= 0 {
					reason = strings.TrimSpace(rest[i+2:])
					rest = strings.TrimSpace(rest[:i])
				}
				names := strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				})
				pos := fset.Position(c.Pos())
				out = append(out, Suppression{
					Pos:    c.Pos(),
					Line:   pos.Line,
					File:   pos.Filename,
					Names:  names,
					Reason: reason,
				})
			}
		}
	}
	return out
}

// filterSuppressed drops diagnostics that have a matching
// //prestolint:allow comment on their line or the line directly above.
func filterSuppressed(pkg *Package, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	sups := CollectSuppressions(pkg.Fset, pkg.Files)
	if len(sups) == 0 {
		return diags
	}
	aliases := make(map[string]string) // accepted token -> analyzer name
	for _, az := range analyzers {
		aliases[az.Name] = az.Name
		for _, a := range az.Aliases {
			aliases[a] = az.Name
		}
	}
	type key struct {
		file string
		line int
		name string
	}
	allowed := make(map[key]bool)
	for _, s := range sups {
		for _, n := range s.Names {
			name, ok := aliases[n]
			if !ok {
				continue
			}
			allowed[key{s.File, s.Line, name}] = true
			allowed[key{s.File, s.Line + 1, name}] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !allowed[key{pos.Filename, pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}
