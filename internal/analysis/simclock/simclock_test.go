package simclock_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/simclock"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, simclock.Analyzer, "simcore", "cmd/tool", "server/httpd")
}
