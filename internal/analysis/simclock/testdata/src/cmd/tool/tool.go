// Package tool is a simclock fixture for the harness exemption: under
// a cmd/ path, wall-clock use is allowed without annotations.
package tool

import "time"

// Elapsed measures real elapsed time, which a command-line driver may
// legitimately do.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp reads the wall clock for progress output.
func Stamp() int64 {
	return time.Now().UnixNano()
}
