// Package simcore is a simclock fixture: simulator-layer code where
// wall-clock time and global math/rand are forbidden.
package simcore

import (
	"math/rand"
	"time"
)

// Bad patterns: every wall-clock read or global rand draw is flagged.

func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

func Wait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since`
}

func Later() <-chan time.Time {
	return time.After(time.Second) // want `time\.After`
}

func Jitter() int {
	return rand.Intn(100) // want `rand\.Intn`
}

func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle`
}

// Permitted patterns: inert time values, explicitly seeded generators,
// and method calls on time types.

func Timeout() time.Duration {
	return 5 * time.Millisecond
}

func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func Millis(d time.Duration) float64 {
	return d.Seconds() * 1000
}

// The escape hatch: an annotated use is not reported.

func Profiled() int64 {
	//prestolint:allow wallclock -- fixture: profiling hook outside the event path
	return time.Now().UnixNano()
}
