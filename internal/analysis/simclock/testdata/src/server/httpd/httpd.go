// Package httpd is a simclock fixture for the serving-layer
// exemption: under a server/ path, wall-clock use is allowed without
// annotations (job lifecycle stamps, TTL expiry, request latencies).
package httpd

import "time"

// Submitted stamps a job's intake time.
func Submitted() time.Time {
	return time.Now()
}

// Expired reports whether an artifact written at t has outlived ttl.
func Expired(t time.Time, ttl time.Duration) bool {
	return time.Since(t) > ttl
}
