// Package simclock forbids wall-clock time and global math/rand state
// in simulator code.
//
// The simulator's reproducibility contract (same seed, byte-identical
// artifacts at any -parallel setting) holds only if every timestamp
// comes from sim.Engine.Now and every random draw from a sim.RNG
// derived from the run's seed. time.Now or a global rand.Intn anywhere
// in the event path silently breaks replay. The harness layer — cmd/*,
// examples/*, internal/campaign — legitimately measures wall time
// around the deterministic core and is exempt; anything else needs a
// //prestolint:allow wallclock annotation with a reason.
package simclock

import (
	"go/ast"
	"go/types"
	"strings"

	"presto/internal/analysis"
)

// Analyzer is the simclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name:    "simclock",
	Aliases: []string{"wallclock"},
	Doc: "forbid wall-clock time (time.Now, time.Since, time.Sleep, ...) and " +
		"global math/rand state in simulator packages; simulated time must come " +
		"from sim.Engine and randomness from a seeded sim.RNG",
	SkipPkg: analysis.HarnessExempt,
	Run:     run,
}

// bannedTime lists package-level time functions that read or wait on
// the wall clock. Pure types and constructors of inert values
// (time.Duration, time.Date, time.Unix) are fine.
var bannedTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // method, e.g. time.Duration.Seconds
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall clock in simulator code: time.%s breaks deterministic replay; use sim.Engine time (or //prestolint:allow wallclock -- reason)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Constructors (New, NewSource, NewPCG, ...) build
				// explicitly seeded generators and are fine; everything
				// else draws from the global, seed-independent stream.
				if !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(sel.Pos(),
						"global math/rand state in simulator code: rand.%s is not derived from the run seed; use a sim.RNG (or //prestolint:allow wallclock -- reason)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
