// Package drops is the errdrop fixture: discarded errors from the
// watched families (flush/close/spill/encode/write/sync) in statement,
// defer, and go position, plus the accepted shapes.
package drops

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
)

type sink struct{}

func (s *sink) Close() error              { return nil }
func (s *sink) Flush() error              { return nil }
func (s *sink) CloseSpill() error         { return nil }
func (s *sink) WriteJSONL(b []byte) error { return nil }
func (s *sink) SyncDir() error            { return nil }
func (s *sink) Deliver() error            { return nil } // not a watched family
func (s *sink) Closed() bool              { return true }
func (s *sink) WriteCount() (int, error)  { return 0, nil }
func spillTo(path string) error           { return nil }

func Bad(s *sink, f *os.File, enc *json.Encoder) {
	s.Close()         // want `discarded error from Close`
	s.Flush()         // want `discarded error from Flush`
	s.CloseSpill()    // want `discarded error from CloseSpill`
	s.WriteJSONL(nil) // want `discarded error from WriteJSONL`
	s.SyncDir()       // want `discarded error from SyncDir`
	s.WriteCount()    // want `discarded error from WriteCount`
	spillTo("/tmp/x") // want `discarded error from spillTo`
	enc.Encode(42)    // want `discarded error from Encode`
	defer f.Close()   // want `discarded error from defer Close`
	go s.Flush()      // want `discarded error from go Flush`
}

func Good(s *sink, f *os.File, enc *json.Encoder) error {
	if err := s.Close(); err != nil {
		return err
	}
	_ = s.Flush() // explicit discard is deliberate and greppable
	err := s.CloseSpill()

	// Non-error-returning and unwatched calls are never flagged.
	s.Deliver()
	_ = s.Closed()

	// bytes.Buffer and strings.Builder never fail.
	var buf bytes.Buffer
	buf.WriteString("x")
	buf.Write(nil)
	var sb strings.Builder
	sb.WriteString("y")

	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return err
}
