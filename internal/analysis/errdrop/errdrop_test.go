package errdrop_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "drops")
}
