// Package errdrop flags discarded error returns from the resource- and
// data-integrity-critical function families: flush, close, spill,
// encode, write, and sync.
//
// This is errcheck narrowed to the class that actually bit this
// repository: the PR 6 CloseSpill crash came from a flush error whose
// only signal was a return value nobody looked at. A dropped error
// from Close/Flush/Sync means acknowledged data loss (buffered bytes
// that never reached the file); from Encode/Write it means a truncated
// artifact that downstream tooling will half-parse.
//
// A call statement, `defer`, or `go` that ignores such a function's
// error is reported. Assigning the error away explicitly (`_ = f.Close()`)
// is accepted — it is greppable and visibly deliberate — as are the
// never-failing writers bytes.Buffer and strings.Builder. Sites where
// the drop is sound (e.g. closing a read-only file on an error path)
// take //prestolint:allow errdrop -- reason.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"presto/internal/analysis"
)

// Analyzer is the errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name:    "errdrop",
	Aliases: []string{"errcheck"},
	Doc: "flag discarded error returns from flush/close/spill/encode/write/sync " +
		"functions — the CloseSpill-crash class: a dropped flush or close error is " +
		"acknowledged data loss",
	SkipTestFiles: true,
	Run:           run,
}

// watchedPrefixes are the (lowercased) name prefixes whose error
// returns must be consumed.
var watchedPrefixes = []string{"flush", "close", "spill", "encode", "write", "sync"}

// neverFails lists receiver types (as "pkgpath.TypeName") whose
// watched methods are documented to always return a nil error.
var neverFails = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(pass, call, "")
				}
			case *ast.DeferStmt:
				check(pass, st.Call, "defer ")
			case *ast.GoStmt:
				check(pass, st.Call, "go ")
			}
			return true
		})
	}
	return nil
}

// check reports call if it discards a watched function's error.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := callee(pass, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if !watchedName(name) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return
	}
	if recv := sig.Recv(); recv != nil && isNeverFailing(recv.Type()) {
		return
	}
	pass.ReportRangef(call,
		"discarded error from %s%s: a dropped %s error is silent data loss (handle it, assign to _ explicitly, or //prestolint:allow errdrop -- reason)",
		how, name, familyOf(name))
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func watchedName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range watchedPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// familyOf returns the watched family a name belongs to, for the
// diagnostic text.
func familyOf(name string) string {
	lower := strings.ToLower(name)
	for _, p := range watchedPrefixes {
		if strings.HasPrefix(lower, p) {
			return p
		}
	}
	return "error"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Implements(res.At(res.Len()-1).Type(), errorIface)
}

// isNeverFailing reports whether t (the method receiver) is one of the
// stdlib types whose Write/WriteString/etc. errors are documented to
// always be nil.
func isNeverFailing(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return neverFails[key]
}
