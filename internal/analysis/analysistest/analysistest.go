// Package analysistest runs prestolint analyzers against fixture
// packages under testdata/src, checking reported diagnostics against
// `// want` comments — a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout mirrors the upstream tool: each fixture package lives in
// testdata/src/<importpath>/ and is loaded with a GOPATH-style
// resolver, so fixtures can import each other by bare path (e.g. a
// maporder fixture importing a local "telemetry" package). Standard
// library imports are type-checked from $GOROOT/src via the compiler
// "source" importer, which needs no pre-built export data and works
// offline.
//
// Expectations are written on the line they apply to:
//
//	time.Now() // want `time\.Now`
//
// Each backquoted or double-quoted string after `want` is a regexp
// that must match one diagnostic reported on that line; lines with no
// want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"presto/internal/analysis"
)

// Run loads each fixture package from testdata/src/<pkg> relative to
// the calling test's directory, runs az over it, and reports
// mismatches between diagnostics and want comments as test errors.
func Run(t *testing.T, az *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	l := newLoader(filepath.Join(testdata, "src"))
	for _, pkgPath := range pkgs {
		pkg, err := l.load(pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{az})
		if err != nil {
			t.Fatalf("running %s on %s: %v", az.Name, pkgPath, err)
		}
		check(t, l.fset, pkg, diags)
	}
}

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

func check(t *testing.T, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, rx := range parseWant(t, filename, fset.Position(c.Pos()).Line, c.Text) {
					k := lineKey{filename, fset.Position(c.Pos()).Line}
					wants[k] = append(wants[k], &expectation{rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		var found bool
		for _, exp := range wants[k] {
			if !exp.matched && exp.rx.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	var keys []lineKey
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q was not reported", k.file, k.line, exp.rx)
			}
		}
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

// parseWant extracts the quoted regexps from a `// want "..." ...`
// comment (nil if the comment is not a want comment).
func parseWant(t *testing.T, filename string, line int, comment string) []*regexp.Regexp {
	m := wantRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []*regexp.Regexp
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			t.Fatalf("%s:%d: malformed want comment at %q (expected quoted regexp)", filename, line, rest)
		}
		end := strings.IndexByte(rest[1:], rest[0])
		if end < 0 {
			t.Fatalf("%s:%d: unterminated quote in want comment", filename, line)
		}
		pattern := rest[1 : 1+end]
		rx, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, pattern, err)
		}
		out = append(out, rx)
		rest = strings.TrimSpace(rest[2+end:])
	}
	return out
}

// loader resolves fixture packages from a testdata/src root, falling
// back to the source importer for the standard library.
type loader struct {
	fset   *token.FileSet
	srcdir string
	std    types.Importer
	cache  map[string]*analysis.Package
	info   *types.Info
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcdir: srcdir,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*analysis.Package),
		info:   analysis.NewTypesInfo(),
	}
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &analysis.Package{
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       l.info,
		ImportPath: path,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: fixture-local packages win,
// everything else is standard library loaded from source.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.srcdir, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
