package niltracer_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/niltracer"
)

func TestNiltracer(t *testing.T) {
	analysistest.Run(t, niltracer.Analyzer, "telemetry")
}
