// Package niltracer enforces the telemetry layer's disabled-state
// contract: a nil *Tracer (and nil *Registry) is the off switch, so
// every exported method on a pointer receiver in the telemetry package
// must be safe to call on nil.
//
// A method satisfies the contract in one of two ways:
//
//   - it opens with a nil-receiver guard — its first statement is an
//     if whose condition checks `recv == nil` (alone or in a || chain)
//     and that returns; or
//   - it never dereferences the receiver: using it only as the
//     receiver of further method calls (delegation to a guarded
//     method, e.g. the typed emit helpers funneling into Emit),
//     comparing it to nil, or passing it as a plain argument are all
//     nil-safe.
//
// Anything else — reading a field before the guard — panics the first
// time a component runs with telemetry disabled, which is the default.
package niltracer

import (
	"go/ast"
	"go/token"
	"go/types"

	"presto/internal/analysis"
)

// Analyzer is the niltracer analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "niltracer",
	Doc: "every exported method on a pointer receiver in the telemetry " +
		"package must be nil-receiver-safe: open with a `if recv == nil` " +
		"guard or only delegate to methods that do",
	SkipTestFiles: true,
	Run:           run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "telemetry" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recv := fd.Recv.List[0]
			if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
				continue
			}
			if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
				continue // receiver unused; trivially nil-safe
			}
			obj := pass.TypesInfo.Defs[recv.Names[0]]
			if obj == nil {
				continue
			}
			if opensWithNilGuard(pass, fd.Body, obj) {
				continue
			}
			if use := firstDeref(pass, fd.Body, obj); use != token.NoPos {
				pos := pass.Fset.Position(use)
				pass.Reportf(fd.Name.Pos(),
					"exported method %s dereferences its pointer receiver (line %d) without opening with a nil-receiver guard; nil *%s is the disabled state and must be a no-op",
					fd.Name.Name, pos.Line, receiverTypeName(recv.Type))
			}
		}
	}
	return nil
}

// opensWithNilGuard reports whether body's first statement is
// `if recv == nil { ... return ... }` (the nil check may be one arm of
// a || chain).
func opensWithNilGuard(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || !condChecksNil(pass, ifStmt.Cond, recv) {
		return false
	}
	for _, s := range ifStmt.Body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

func condChecksNil(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(pass, e.X, recv)
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condChecksNil(pass, e.X, recv) || condChecksNil(pass, e.Y, recv)
		}
		if e.Op != token.EQL {
			return false
		}
		return (isRecv(pass, e.X, recv) && isNil(pass, e.Y)) ||
			(isRecv(pass, e.Y, recv) && isNil(pass, e.X))
	}
	return false
}

func isRecv(pass *analysis.Pass, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == recv
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// firstDeref returns the position of the first expression that would
// dereference recv: selecting a field, indexing, or an explicit *recv.
// Method calls through recv do not dereference (the method's own guard
// runs first), so delegation stays clean.
func firstDeref(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if !isRecv(pass, n.X, recv) {
				return true
			}
			if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
				found = n.Pos()
				return false
			}
		case *ast.StarExpr:
			if isRecv(pass, n.X, recv) {
				found = n.Pos()
				return false
			}
		case *ast.IndexExpr:
			if isRecv(pass, n.X, recv) {
				found = n.Pos()
				return false
			}
		}
		return true
	})
	return found
}

func receiverTypeName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "receiver"
}
