// Package telemetry is a niltracer fixture: exported methods on
// pointer receivers must be nil-receiver-safe, because the nil tracer
// is the disabled state.
package telemetry

// Tracer buffers events; nil is the disabled state.
type Tracer struct {
	limit  int
	events []int64
}

// Good: opens with the canonical guard.
func (t *Tracer) Emit(a int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, a)
}

// Good: the guard may be one arm of a || chain.
func (t *Tracer) SetLimit(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.limit = n
}

// Good: delegation — the receiver is only ever a method-call receiver,
// so the guarded callee handles nil.
func (t *Tracer) EmitPair(a, b int64) {
	t.Emit(a)
	t.Emit(b)
}

// Good: comparing the receiver to nil does not dereference it.
func (t *Tracer) Enabled() bool {
	return t != nil
}

// Good: a guard that returns a value still counts.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Bad: reads a field with no guard at all.
func (t *Tracer) Reset() { // want `must be a no-op`
	t.events = t.events[:0]
}

// Bad: the guard must be the first statement; a later guard leaves the
// first dereference unprotected.
func (t *Tracer) Push(a int64) { // want `must be a no-op`
	n := len(t.events)
	if t == nil {
		return
	}
	_ = n
	t.events = append(t.events, a)
}

// Bad: a guard that does not bail out does not protect what follows.
func (t *Tracer) Count() int { // want `must be a no-op`
	if t == nil {
		_ = 0
	}
	return len(t.events)
}

// Good: a guard that returns an error value (the spill/stream
// surfaces return errors rather than being void).
func (t *Tracer) Spill() error {
	if t == nil {
		return nil
	}
	t.events = nil
	return nil
}

// Bad: an index expression on a receiver field is a dereference (the
// ring buffer's overwrite-in-place path).
func (t *Tracer) Overwrite(i int, v int64) { // want `must be a no-op`
	t.events[i] = v
}

// Decoder reassembles streamed snapshot deltas; nil is a decoder that
// was never constructed and must read as empty.
type Decoder struct {
	seq   uint64
	state map[string]int64
}

// Good: guard first, then lazily initialize and mutate.
func (d *Decoder) Apply(k string, v int64) {
	if d == nil {
		return
	}
	if d.state == nil {
		d.state = map[string]int64{}
	}
	d.state[k] = v
	d.seq++
}

// Good: nil-compare only.
func (d *Decoder) Ready() bool { return d != nil }

// Bad: returns a field with no guard.
func (d *Decoder) Seq() uint64 { // want `must be a no-op`
	return d.seq
}

// Unexported methods are outside the contract (callers inside the
// package guard at the boundary).
func (t *Tracer) drain() []int64 {
	out := t.events
	t.events = nil
	return out
}

// Value receivers cannot be nil and are outside the contract.
type Kind uint8

// String is a value-receiver method.
func (k Kind) String() string {
	if k == 0 {
		return "none"
	}
	return "kind"
}
