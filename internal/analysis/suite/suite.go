// Package suite registers the full prestolint analyzer set. It exists
// as its own package (rather than a list in internal/analysis) so the
// framework does not import the analyzers that import it.
package suite

import (
	"presto/internal/analysis"
	"presto/internal/analysis/errdrop"
	"presto/internal/analysis/goroleak"
	"presto/internal/analysis/hotalloc"
	"presto/internal/analysis/lockorder"
	"presto/internal/analysis/maporder"
	"presto/internal/analysis/niltracer"
	"presto/internal/analysis/simclock"
	"presto/internal/analysis/simtime"
)

// Analyzers returns every analyzer in the suite, in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errdrop.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		niltracer.Analyzer,
		simclock.Analyzer,
		simtime.Analyzer,
	}
}
