package goroleak_test

import (
	"testing"

	"presto/internal/analysis/analysistest"
	"presto/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "goro")
}
