// Package goroleak flags goroutines with no reachable termination
// path.
//
// A goroutine whose body loops forever without a way out — no return,
// no break, no bounded range, no terminating call — outlives every
// shutdown mechanism: prestod's Drain waits for workers that never
// check a stop signal, tests leak runtimes, and -race reports become
// unattributable. The analyzer demands that every `go` statement's
// body (a function literal, or a same-package function resolved
// through package-level facts) can terminate: infinite `for {}` loops
// must contain a `return`, a `break` out of the loop, or a call that
// does not return (panic, os.Exit, runtime.Goexit, log.Fatal).
//
// The usual correct shapes all pass: `for { select { case <-ctx.Done():
// return ... } }`, `for v := range ch { ... }` (the producer closes
// ch), bounded loops, and straight-line goroutines. Fire-and-forget
// loops that are genuinely intended to live for the whole process
// (e.g. a signal handler in main) take
// //prestolint:allow goroleak -- reason.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"presto/internal/analysis"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name:    "goroleak",
	Aliases: []string{"leak"},
	Doc: "flag go statements whose body can never terminate (an infinite for-loop " +
		"with no return/break/terminating call, directly or through same-package " +
		"calls); such goroutines leak across Drain and test shutdown",
	SkipTestFiles: true,
	Run:           run,
}

// summary is the per-function fact: whether calling the function can
// never return (it contains an unexitable infinite loop, possibly via
// same-package callees).
type summary struct {
	Forever bool
}

func run(pass *analysis.Pass) error {
	// Index every function declaration and compute direct summaries.
	type info struct {
		forever bool
		callees map[*types.Func]bool
	}
	infos := make(map[*types.Func]*info)
	var order []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			infos[fn] = &info{
				forever: bodyLoopsForever(pass, fd.Body),
				callees: directCalls(pass, fd.Body),
			}
			order = append(order, fn)
		}
	}

	// Fixpoint: a function that unconditionally reaches a
	// never-returning same-package callee never returns either.
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			in := infos[fn]
			if in.forever {
				continue
			}
			for callee := range in.callees {
				if ci, ok := infos[callee]; ok && ci.forever {
					in.forever = true
					changed = true
					break
				}
			}
		}
	}
	for _, fn := range order {
		pass.ExportObjectFact(fn, summary{Forever: infos[fn].forever})
	}

	// Check every go statement.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var forever bool
			switch fun := gs.Call.Fun.(type) {
			case *ast.FuncLit:
				forever = bodyLoopsForever(pass, fun.Body)
				if !forever {
					for callee := range directCalls(pass, fun.Body) {
						if f, ok := pass.ObjectFact(callee); ok && f.(summary).Forever {
							forever = true
							break
						}
					}
				}
			default:
				if callee := calleeFunc(pass, gs.Call); callee != nil {
					if f, ok := pass.ObjectFact(callee); ok {
						forever = f.(summary).Forever
					}
				}
			}
			if forever {
				pass.ReportRangef(gs,
					"goroutine has no reachable termination path: its body loops forever with no return or break, so it leaks across Drain and test shutdown; add a stop-channel/ctx.Done select case that returns (or //prestolint:allow goroleak -- reason)")
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves the statically-known callee of call within this
// package (nil for func values, other packages, or builtins).
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// directCalls collects same-package functions called on body's own
// execution path: calls inside nested function literals or go
// statements belong to other goroutines/contexts and are excluded.
func directCalls(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil {
				out[fn] = true
			}
		}
		return true
	})
	return out
}

// bodyLoopsForever reports whether body contains an infinite for-loop
// (nil condition) with no way out. Nested function literals are
// separate bodies and are skipped.
func bodyLoopsForever(pass *analysis.Pass, body *ast.BlockStmt) bool {
	// Collect loop labels so labeled breaks can be matched to their
	// loops.
	labels := make(map[ast.Stmt]string)
	ast.Inspect(body, func(n ast.Node) bool {
		if ls, ok := n.(*ast.LabeledStmt); ok {
			labels[ls.Stmt] = ls.Label.Name
		}
		return true
	})
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(pass, n, labels[n]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopHasExit reports whether the infinite loop can be left: a return,
// a break that targets it (direct or labeled), a goto, or a
// never-returning call (panic, os.Exit, runtime.Goexit, log.Fatal*).
func loopHasExit(pass *analysis.Pass, loop *ast.ForStmt, label string) bool {
	has := false
	// depth counts break-absorbing constructs (for/range/switch/select)
	// between the loop and the statement under inspection: an unlabeled
	// break at depth 0 exits our loop, deeper ones exit something else.
	var scanStmt func(st ast.Stmt, depth int)
	scanList := func(stmts []ast.Stmt, depth int) {
		for _, st := range stmts {
			scanStmt(st, depth)
		}
	}
	scanStmt = func(st ast.Stmt, depth int) {
		if has || st == nil {
			return
		}
		switch st := st.(type) {
		case *ast.ReturnStmt:
			has = true
		case *ast.BranchStmt:
			switch st.Tok {
			case token.BREAK:
				if st.Label == nil && depth == 0 {
					has = true
				} else if st.Label != nil && label != "" && st.Label.Name == label {
					has = true
				}
			case token.GOTO:
				// Conservatively assume the target is outside the loop.
				has = true
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isTerminatingCall(pass, call) {
				has = true
			}
		case *ast.BlockStmt:
			scanList(st.List, depth)
		case *ast.IfStmt:
			scanStmt(st.Init, depth)
			scanList(st.Body.List, depth)
			scanStmt(st.Else, depth)
		case *ast.LabeledStmt:
			scanStmt(st.Stmt, depth)
		case *ast.ForStmt:
			scanList(st.Body.List, depth+1)
		case *ast.RangeStmt:
			scanList(st.Body.List, depth+1)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body, depth+1)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body, depth+1)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(cc.Body, depth+1)
				}
			}
		}
	}
	scanList(loop.Body.List, 0)
	return has
}

// isTerminatingCall reports whether call never returns: the panic
// builtin, os.Exit, runtime.Goexit, or log.Fatal*/log.Panic*.
func isTerminatingCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() {
		case "os":
			return fn.Name() == "Exit"
		case "runtime":
			return fn.Name() == "Goexit"
		case "log":
			switch fn.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}
