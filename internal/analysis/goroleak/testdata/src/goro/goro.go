// Package goro is the goroleak fixture: leaky forever-loops (direct,
// via select, via same-package calls) and the correct shapes that must
// stay silent.
package goro

import (
	"context"
	"os"
)

func work() {}

// A bare forever-loop worker: nothing ever stops it.
func SpawnLeaky() {
	go func() { // want `no reachable termination path`
		for {
			work()
		}
	}()
}

// A select loop with no returning case leaks too: when the channel
// closes it spins on zero values forever.
func SpawnSelectLeaky(ch chan int) {
	go func() { // want `no reachable termination path`
		for {
			select {
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// ctx.Done with a return is the canonical fix.
func SpawnCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Range over a channel terminates when the producer closes it.
func SpawnRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// An ok-check with break is a termination path.
func SpawnBreak(ch chan struct{}) {
	go func() {
		for {
			if _, ok := <-ch; !ok {
				break
			}
		}
	}()
}

type worker struct{}

func (w *worker) loop() {
	for {
		work()
	}
}

// run reaches loop unconditionally, so it never returns either — the
// fact has to propagate through the call.
func (w *worker) run() { w.loop() }

func SpawnNamedLeaky(w *worker) {
	go w.loop() // want `no reachable termination path`
}

func SpawnWrapped(w *worker) {
	go w.run() // want `no reachable termination path`
}

// Straight-line goroutines terminate on their own.
func SpawnFinite() {
	go work()
}

// A terminating call (os.Exit, panic, log.Fatal) is an exit.
func SpawnExit() {
	go func() {
		for {
			os.Exit(1)
		}
	}()
}

// break inside an inner switch exits the switch, not the loop: still a
// leak.
func SpawnInnerBreak(ch chan int) {
	go func() { // want `no reachable termination path`
		for {
			switch <-ch {
			case 1:
				break
			}
		}
	}()
}

// A labeled break out of the loop is a real exit.
func SpawnLabeledBreak(ch chan int) {
	go func() {
	outer:
		for {
			switch <-ch {
			case 1:
				break outer
			}
		}
	}()
}

// Bounded loops are fine.
func SpawnBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}
