package gro

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
)

func TestLROCoalescesInOrder(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	l := NewLRO(eng, NewPresto(eng, out, PrestoConfig{}))
	for i := 0; i < 8; i++ {
		l.Receive(pkt(i, 1))
	}
	l.Flush()
	data := out.dataSegs()
	if len(data) != 1 || data[0].Len() != 8*packet.MSS {
		t.Fatalf("LRO+GRO delivered %d segments", len(data))
	}
	if l.HWMerges != 7 {
		t.Fatalf("hardware merges = %d, want 7", l.HWMerges)
	}
}

func TestLRONeverMergesAcrossFlowcells(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	l := NewLRO(eng, NewPresto(eng, out, PrestoConfig{}))
	// Two flowcells, in order: LRO must flush at the boundary (TCP
	// option mismatch) so the inner GRO still sees per-flowcell units.
	for i := 0; i < 4; i++ {
		l.Receive(pkt(i, 1))
	}
	for i := 4; i < 8; i++ {
		l.Receive(pkt(i, 2))
	}
	l.Flush()
	data := out.dataSegs()
	if len(data) != 2 {
		t.Fatalf("delivered %d segments, want 2 (one per flowcell)", len(data))
	}
	for _, s := range data {
		if s.Len() != 4*packet.MSS {
			t.Fatalf("segment %v wrong size", s)
		}
	}
}

func TestLROStackedUnderPrestoMasksReordering(t *testing.T) {
	// The Figure 2 arrival order through LRO -> Presto GRO: the
	// hardware flushes on every discontinuity but the software layer
	// still reassembles everything in order.
	eng := sim.NewEngine()
	out := &sink{}
	l := NewLRO(eng, NewPresto(eng, out, PrestoConfig{}))
	order := []struct {
		i  int
		fc uint32
	}{{0, 1}, {1, 1}, {2, 1}, {5, 2}, {6, 2}, {3, 1}, {4, 1}, {7, 2}, {8, 2}}
	for _, x := range order {
		l.Receive(pkt(x.i, x.fc))
	}
	l.Flush()
	eng.RunAll()
	data := out.dataSegs()
	total := 0
	for i, s := range data {
		total += s.Len()
		if i > 0 && packet.SeqLT(s.StartSeq, data[i-1].StartSeq) {
			t.Fatal("reordering leaked through LRO+Presto GRO")
		}
	}
	if total != 9*packet.MSS {
		t.Fatalf("delivered %d bytes, want %d", total, 9*packet.MSS)
	}
}

func TestLROPreservesCEMarks(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	l := NewLRO(eng, NewOfficial(eng, out))
	a, b := pkt(0, 1), pkt(1, 1)
	a.CE, b.CE = true, true
	c := pkt(2, 1) // unmarked: must not merge into a CE super-packet
	l.Receive(a)
	l.Receive(b)
	l.Receive(c)
	l.Flush()
	ce := 0
	for _, s := range out.dataSegs() {
		ce += s.CEPackets
	}
	// Two marked MTU packets became one marked super-packet: the CE
	// byte-fraction is preserved only approximately (1 super-packet of
	// 2 MSS marked vs 1 unmarked MSS). The invariant: marks never
	// vanish and never contaminate unmarked data.
	if ce == 0 {
		t.Fatal("CE marks lost in hardware coalescing")
	}
}

// Property: LRO -> official GRO delivers the same bytes as official
// GRO alone for any interleaving.
func TestLROByteConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		outA, outB := &sink{}, &sink{}
		plain := NewOfficial(eng, outA)
		stacked := NewLRO(eng, NewOfficial(eng, outB))
		perm := rng.Perm(20)
		for _, i := range perm {
			fc := uint32(i/5 + 1)
			plain.Receive(pkt(i, fc))
			stacked.Receive(pkt(i, fc))
		}
		plain.Flush()
		stacked.Flush()
		sum := func(s *sink) int {
			n := 0
			for _, seg := range s.dataSegs() {
				n += seg.Len()
			}
			return n
		}
		return sum(outA) == 20*packet.MSS && sum(outB) == 20*packet.MSS
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
