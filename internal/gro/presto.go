package gro

import (
	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
)

// PrestoConfig tunes the Presto GRO handler. The paper sets Alpha and
// Beta to 2 and finds they work over a wide parameter range (§3.2).
type PrestoConfig struct {
	// Alpha scales the EWMA of observed reorder-resolution times into
	// the hold timeout applied at flowcell-boundary gaps.
	Alpha float64
	// Beta extends a timed-out segment's hold if a packet merged into
	// it within EWMA/Beta.
	Beta float64
	// InitialEWMA seeds the reorder-time estimate before any
	// observation.
	InitialEWMA sim.Time
	// MinEWMA floors the effective estimate so that a run of
	// instantly-resolved gaps cannot collapse the hold timeout to
	// zero (which would degenerate Presto GRO into immediate pushes).
	MinEWMA sim.Time
	// EWMAWeight is the smoothing factor for new observations.
	EWMAWeight float64
}

// DefaultPrestoConfig returns the paper's settings.
func DefaultPrestoConfig() PrestoConfig {
	// InitialEWMA starts above the worst path skew a loaded fabric
	// shows, so the estimator adapts *down* to observed resolution
	// times; starting low is a trap — gaps would time out before any
	// resolution could ever be observed, and the estimate could never
	// grow past alpha times itself.
	return PrestoConfig{
		Alpha: 2, Beta: 2,
		InitialEWMA: 500 * sim.Microsecond,
		MinEWMA:     20 * sim.Microsecond,
		EWMAWeight:  0.25,
	}
}

func (c *PrestoConfig) fill() {
	d := DefaultPrestoConfig()
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.Beta == 0 {
		c.Beta = d.Beta
	}
	if c.InitialEWMA == 0 {
		c.InitialEWMA = d.InitialEWMA
	}
	if c.MinEWMA == 0 {
		c.MinEWMA = d.MinEWMA
	}
	if c.EWMAWeight == 0 {
		c.EWMAWeight = d.EWMAWeight
	}
}

// prestoFlow is the per-flow state of Algorithm 2.
type prestoFlow struct {
	// segs is the segment_list, kept sorted ascending by StartSeq at
	// all times (binary insertion on arrival), so Flush walks it
	// directly instead of re-sorting every poll. Among equal start
	// sequences, newer segments sort first — the same order the
	// original head-prepend + stable-sort produced.
	segs []*packet.Segment

	init         bool
	lastFlowcell uint32 // flowcell of the most recent in-order byte
	expSeq       uint32 // next expected in-order sequence number

	// Reorder-time tracking: gapSince is when the current boundary gap
	// was first seen (valid only while gapActive); ewma estimates how
	// long reordering takes to resolve, and mdev its mean deviation.
	//
	// The deviation term is a robustness extension over the paper's
	// plain EWMA: resolution times on a loaded fabric are long-tailed
	// (path skew follows the queue-depth differential), and a hold of
	// alpha*mean alone misreads tail reordering as loss. Holding for
	// alpha*(mean + 8*mdev) — Jacobson's RTO estimator applied to
	// reorder gaps, with a wider deviation multiplier because gap
	// resolution skew is heavier-tailed than RTT noise — covers the
	// tail while adapting just as fast.
	gapActive bool
	gapSince  sim.Time
	ewma      metrics.EWMA
	mdev      metrics.EWMA
}

// observeResolution folds one gap-resolution duration into the flow's
// estimator.
func (f *prestoFlow) observeResolution(d float64) {
	if f.ewma.Initialized() {
		delta := d - f.ewma.Value()
		if delta < 0 {
			delta = -delta
		}
		f.mdev.Observe(delta)
	} else {
		f.mdev.Observe(d / 2)
	}
	f.ewma.Observe(d)
}

// insertSeg places s into the sorted segment list by binary insertion:
// before any existing segment with an equal StartSeq (newest-first
// among ties), after everything smaller.
func (f *prestoFlow) insertSeg(s *packet.Segment) {
	lo, hi := 0, len(f.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if packet.SeqLT(f.segs[mid].StartSeq, s.StartSeq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	f.segs = append(f.segs, nil)
	copy(f.segs[lo+1:], f.segs[lo:])
	f.segs[lo] = s
}

// Presto is the paper's modified GRO handler (Algorithm 2). It keeps
// multiple segments per flow so reordered packets can merge into
// earlier segments, uses flowcell IDs to separate loss (gap inside a
// flowcell: push immediately) from reordering (gap at a flowcell
// boundary: hold briefly), and adapts its hold timeout to observed
// reordering via an EWMA.
type Presto struct {
	Eng *sim.Engine
	Out Output
	cfg PrestoConfig

	flows map[packet.FlowKey]*prestoFlow
	order []packet.FlowKey
	timer *sim.Timer
	stats Stats
}

// NewPresto returns a Presto GRO handler.
func NewPresto(eng *sim.Engine, out Output, cfg PrestoConfig) *Presto {
	cfg.fill()
	p := &Presto{Eng: eng, Out: out, cfg: cfg, flows: make(map[packet.FlowKey]*prestoFlow)}
	p.timer = sim.NewTimer(eng, p.Flush)
	return p
}

// Receive implements Handler: merge p into an existing segment of its
// flow if contiguous within the same flowcell, else create a new
// segment at the head of the list (O(1) for the common in-order case,
// §3.2).
func (g *Presto) Receive(p *packet.Packet) {
	now := g.Eng.Now()
	if control(p) {
		g.stats.ControlOut++
		g.Out.DeliverSegment(segFromPacket(p, now))
		return
	}
	g.stats.PacketsIn++
	f, ok := g.flows[p.Flow]
	if !ok {
		f = &prestoFlow{}
		f.ewma.Alpha = g.cfg.EWMAWeight
		f.mdev.Alpha = g.cfg.EWMAWeight
		g.flows[p.Flow] = f
		g.order = append(g.order, p.Flow)
	}
	// Scan merge candidates from the highest start sequence down: the
	// common in-order packet extends the most recent (highest-seq)
	// segment, so the first probe usually hits.
	for i := len(f.segs) - 1; i >= 0; i-- {
		seg := f.segs[i]
		if mergeTail(seg, p, now) {
			g.stats.Merges++
			return
		}
		if mergeHead(seg, p, now) {
			g.stats.Merges++
			// The merge lowered seg.StartSeq; bubble it left to keep the
			// list sorted.
			for j := i; j > 0 && packet.SeqLT(f.segs[j].StartSeq, f.segs[j-1].StartSeq); j-- {
				f.segs[j], f.segs[j-1] = f.segs[j-1], f.segs[j]
			}
			return
		}
	}
	f.insertSeg(segFromPacket(p, now))
}

// Flush implements Handler: Algorithm 2's flush function, run at the
// end of every poll event (and again from a timer while segments are
// held).
//
//prestolint:noalloc
func (g *Presto) Flush() {
	now := g.Eng.Now()
	var nextDeadline sim.Time = -1
	held := false
	for _, key := range g.order {
		f := g.flows[key]
		if f == nil || len(f.segs) == 0 {
			continue
		}
		// The list is maintained sorted by start sequence on arrival
		// (insertSeg / the mergeHead bubble), so the walk needs no sort.
		if !f.init {
			// Seed flow state from the first (lowest-seq) segment.
			f.init = true
			f.lastFlowcell = f.segs[0].FlowcellID
			f.expSeq = f.segs[0].StartSeq
		}
		kept := f.segs[:0]
		e := g.holdBudget(f)
		for _, s := range f.segs {
			switch {
			case s.FlowcellID == f.lastFlowcell:
				// Lines 3-5: same flowcell. Any gap inside a flowcell is
				// loss (its packets share one path), so push immediately.
				reason := FlushInOrder
				if packet.SeqGT(s.StartSeq, f.expSeq) {
					reason = FlushLossGap
				}
				f.expSeq = packet.SeqMax(f.expSeq, s.EndSeq)
				g.stats.deliverData(g.Out, s, reason, now)
			case packet.SeqGT(s.FlowcellID, f.lastFlowcell):
				switch {
				case f.expSeq == s.StartSeq:
					// Lines 7-10: next flowcell starts exactly in order.
					if f.gapActive {
						// A boundary gap just resolved as pure reordering:
						// feed the resolution time into the estimator.
						f.observeResolution(float64(now - f.gapSince))
						f.gapActive = false
					}
					f.lastFlowcell = s.FlowcellID
					f.expSeq = s.EndSeq
					g.stats.deliverData(g.Out, s, FlushInOrder, now)
				case packet.SeqGT(f.expSeq, s.StartSeq):
					// Lines 11-13: overlap — a retransmitted first packet
					// of a new flowcell. Push so TCP reacts immediately.
					f.lastFlowcell = s.FlowcellID
					f.expSeq = packet.SeqMax(f.expSeq, s.EndSeq)
					g.stats.deliverData(g.Out, s, FlushOverlap, now)
				case now >= g.holdUntil(s, e):
					// Lines 14-18: held long enough — declare loss. The
					// elapsed hold still feeds the estimator: if this was
					// in fact slow reordering, the next hold is longer
					// (without this, the estimate could never grow past
					// alpha times itself and tail reordering would be
					// misread as loss forever).
					g.stats.TimeoutFires++
					if f.gapActive {
						f.observeResolution(float64(now - f.gapSince))
					}
					f.gapActive = false
					f.lastFlowcell = s.FlowcellID
					f.expSeq = s.EndSeq
					g.stats.deliverData(g.Out, s, FlushBoundaryTimeout, now)
				default:
					// Boundary gap, still within the adaptive hold: keep
					// the segment so in-flight packets can fill the gap.
					if !f.gapActive {
						f.gapActive = true
						f.gapSince = now
					}
					kept = append(kept, s)
					held = true
					if d := g.holdUntil(s, e); nextDeadline < 0 || d < nextDeadline {
						nextDeadline = d
					}
				}
			default:
				// Line 20: stale flowcell (late retransmission) — push
				// immediately.
				g.stats.deliverData(g.Out, s, FlushStale, now)
			}
		}
		f.segs = kept
	}
	if held {
		g.stats.ReorderHolds++
		delay := nextDeadline - now
		if delay < sim.Microsecond {
			delay = sim.Microsecond
		}
		if g.stats.tracer != nil {
			g.stats.tracer.GROHold(now, g.stats.host, g.HeldSegments(), now+delay)
		}
		g.timer.Reset(delay)
	} else {
		g.timer.Stop()
	}
}

// holdBudget returns the flow's effective reorder-time estimate: the
// Jacobson-style mean + 8·mdev once initialized, floored at MinEWMA.
// (A method, not a per-Flush closure, so the flush walk stays
// allocation-free.)
func (g *Presto) holdBudget(f *prestoFlow) sim.Time {
	e := g.cfg.InitialEWMA
	if f.ewma.Initialized() {
		e = sim.Time(f.ewma.Value() + 8*f.mdev.Value())
	}
	if e < g.cfg.MinEWMA {
		e = g.cfg.MinEWMA
	}
	return e
}

// holdUntil returns the instant segment s may be held to, given the
// flow's hold budget e: creation plus α·e, extended by the β merge
// bonus when a packet merged in recently.
func (g *Presto) holdUntil(s *packet.Segment, e sim.Time) sim.Time {
	deadline := s.CreatedAt + sim.Time(g.cfg.Alpha*float64(e))
	merged := s.LastMerge + sim.Time(float64(e)/g.cfg.Beta)
	if merged > deadline {
		return merged
	}
	return deadline
}

// Stats implements Handler.
func (g *Presto) Stats() *Stats { return &g.stats }

// HeldSegments returns the number of segments currently held across
// flows (zero when no reordering is in flight). Ranging over the flows
// map is safe here: += into a scalar is order-insensitive, so the
// result does not depend on map iteration order.
func (g *Presto) HeldSegments() int {
	n := 0
	for _, f := range g.flows {
		n += len(f.segs)
	}
	return n
}
