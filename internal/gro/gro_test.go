package gro

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
)

// sink collects delivered segments.
type sink struct {
	segs []*packet.Segment
}

func (s *sink) DeliverSegment(seg *packet.Segment) { s.segs = append(s.segs, seg) }

func (s *sink) dataSegs() []*packet.Segment {
	var out []*packet.Segment
	for _, seg := range s.segs {
		if seg.Len() > 0 {
			out = append(out, seg)
		}
	}
	return out
}

var testFlow = packet.FlowKey{
	Src: packet.Addr{Host: 1, Port: 4000},
	Dst: packet.Addr{Host: 2, Port: 5000},
}

// pkt builds a full-MSS data packet at index i (seq = i*MSS) in
// flowcell fc.
func pkt(i int, fc uint32) *packet.Packet {
	return &packet.Packet{
		Flow:       testFlow,
		Seq:        uint32(i * packet.MSS),
		Payload:    packet.MSS,
		FlowcellID: fc,
		Flags:      packet.FlagACK,
	}
}

func feed(h Handler, pkts ...*packet.Packet) {
	for _, p := range pkts {
		h.Receive(p)
	}
	h.Flush()
}

func TestOfficialInOrderMergesIntoOneSegment(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	o := NewOfficial(eng, out)
	feed(o, pkt(0, 1), pkt(1, 1), pkt(2, 1), pkt(3, 1))
	data := out.dataSegs()
	if len(data) != 1 {
		t.Fatalf("pushed %d segments, want 1", len(data))
	}
	if data[0].Packets != 4 || data[0].Len() != 4*packet.MSS {
		t.Fatalf("segment %v has %d packets", data[0], data[0].Packets)
	}
	if o.Stats().Merges != 3 {
		t.Fatalf("merges = %d, want 3", o.Stats().Merges)
	}
}

func TestOfficialSegmentCapAt64KB(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	o := NewOfficial(eng, out)
	// 50 MSS packets exceed 64 KB: expect 2 segments.
	var ps []*packet.Packet
	for i := 0; i < 50; i++ {
		ps = append(ps, pkt(i, 1))
	}
	feed(o, ps...)
	data := out.dataSegs()
	if len(data) != 2 {
		t.Fatalf("pushed %d segments, want 2", len(data))
	}
	if data[0].Len() > packet.MaxSegSize {
		t.Fatalf("segment exceeds 64KB: %d", data[0].Len())
	}
}

// TestOfficialGROSmallSegmentFlooding reproduces Figure 2: interleaved
// packets from two paths force official GRO to push small segments.
func TestOfficialGROSmallSegmentFlooding(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	o := NewOfficial(eng, out)
	// Arrival order from Figure 2: P0 P1 P2 P5 P6 P3 P4 P7 P8, where
	// P0-P4 are flowcell 1 and P5-P8 are flowcell 2.
	order := []struct {
		i  int
		fc uint32
	}{{0, 1}, {1, 1}, {2, 1}, {5, 2}, {6, 2}, {3, 1}, {4, 1}, {7, 2}, {8, 2}}
	for _, x := range order {
		o.Receive(pkt(x.i, x.fc))
	}
	o.Flush()
	data := out.dataSegs()
	// Official GRO pushes S1(P0-P2), S2(P5-P6), S3(P3), then flushes
	// S4(P4)... the exact grouping: every direction change ejects.
	if len(data) < 4 {
		t.Fatalf("official GRO pushed %d segments; expected the small-segment flood (>=4)", len(data))
	}
	// And the pushes are out of order (TCP would see reordering).
	sawOutOfOrder := false
	for i := 1; i < len(data); i++ {
		if packet.SeqLT(data[i].StartSeq, data[i-1].StartSeq) {
			sawOutOfOrder = true
		}
	}
	if !sawOutOfOrder {
		t.Fatal("official GRO did not expose reordering to the stack")
	}
}

// TestPrestoGROMasksReordering runs the same Figure 2 arrival order
// through Presto GRO: everything merges into two large in-order
// segments.
func TestPrestoGROMasksReordering(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{})
	order := []struct {
		i  int
		fc uint32
	}{{0, 1}, {1, 1}, {2, 1}, {5, 2}, {6, 2}, {3, 1}, {4, 1}, {7, 2}, {8, 2}}
	for _, x := range order {
		g.Receive(pkt(x.i, x.fc))
	}
	g.Flush()
	data := out.dataSegs()
	if len(data) != 2 {
		t.Fatalf("presto GRO pushed %d segments, want 2", len(data))
	}
	if data[0].Packets != 5 || data[1].Packets != 4 {
		t.Fatalf("segment packet counts %d,%d want 5,4", data[0].Packets, data[1].Packets)
	}
	// In order: no reordering exposed to TCP.
	if packet.SeqLT(data[1].StartSeq, data[0].StartSeq) {
		t.Fatal("presto GRO delivered out of order")
	}
	if g.HeldSegments() != 0 {
		t.Fatalf("%d segments still held", g.HeldSegments())
	}
}

func TestPrestoLossWithinFlowcellPushedImmediately(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{})
	// P0 P1 then P3 (P2 lost) — all flowcell 1: gap inside a flowcell
	// means loss, so both segments must be pushed at the next flush.
	feed(g, pkt(0, 1), pkt(1, 1), pkt(3, 1))
	data := out.dataSegs()
	if len(data) != 2 {
		t.Fatalf("pushed %d segments, want 2 (no holding on intra-flowcell loss)", len(data))
	}
	if g.HeldSegments() != 0 {
		t.Fatal("segments held despite intra-flowcell loss")
	}
}

func TestPrestoBoundaryGapHeldThenFilled(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{})
	// Flowcell 1 = P0..P2, flowcell 2 = P3... but P2 (tail of fc 1) is
	// delayed: arrival order P0 P1 | P3(fc2) | ... flush: fc2 held.
	g.Receive(pkt(0, 1))
	g.Receive(pkt(1, 1))
	g.Flush()
	g.Receive(pkt(3, 2))
	g.Flush()
	if len(out.dataSegs()) != 1 {
		t.Fatalf("pushed %d segments, want only the in-order fc1 prefix", len(out.dataSegs()))
	}
	if g.HeldSegments() != 1 {
		t.Fatalf("held %d segments, want 1", g.HeldSegments())
	}
	// The missing P2 arrives: next flush releases everything in order.
	g.Receive(pkt(2, 1))
	g.Flush()
	data := out.dataSegs()
	if len(data) != 3 {
		t.Fatalf("pushed %d segments after fill, want 3", len(data))
	}
	for i := 1; i < len(data); i++ {
		if packet.SeqLT(data[i].StartSeq, data[i-1].StartSeq) {
			t.Fatal("out-of-order delivery after gap fill")
		}
	}
	if g.Stats().TimeoutFires != 0 {
		t.Fatal("timeout fired for pure reordering")
	}
}

func TestPrestoBoundaryGapTimesOutAsLoss(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{InitialEWMA: 100 * sim.Microsecond})
	g.Receive(pkt(0, 1))
	g.Receive(pkt(1, 1))
	g.Flush()
	// fc2 arrives but the fc1 tail never does (lost).
	g.Receive(pkt(3, 2))
	g.Flush()
	if g.HeldSegments() != 1 {
		t.Fatalf("held %d, want 1", g.HeldSegments())
	}
	// The re-flush timer must fire on its own and declare loss after
	// alpha*EWMA = 200us.
	eng.RunAll()
	if g.HeldSegments() != 0 {
		t.Fatal("segment still held after timeout")
	}
	if g.Stats().TimeoutFires != 1 {
		t.Fatalf("timeout fires = %d, want 1", g.Stats().TimeoutFires)
	}
	if eng.Now() < 200*sim.Microsecond {
		t.Fatalf("timeout fired too early: %v", eng.Now())
	}
	if len(out.dataSegs()) != 2 {
		t.Fatalf("pushed %d segments, want 2", len(out.dataSegs()))
	}
}

func TestPrestoBetaHoldExtension(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	cfg := PrestoConfig{InitialEWMA: 100 * sim.Microsecond, Alpha: 2, Beta: 2}
	g := NewPresto(eng, out, cfg)
	g.Receive(pkt(0, 1))
	g.Flush()
	g.Receive(pkt(5, 2)) // boundary gap: fc2 held (P1..P4 of fc1 missing)
	g.Flush()
	// The base timeout is alpha*EWMA = 200us. Merge packets into the
	// held segment at 180/220/260us — each within EWMA/beta = 50us of
	// the previous deadline — so the beta rule keeps extending the
	// hold past the base timeout.
	for i := 1; i <= 3; i++ {
		i := i
		eng.Schedule(sim.Time(140+40*i)*sim.Microsecond, func() {
			g.Receive(pkt(5+i, 2)) // extends the held fc2 segment
			g.Flush()
		})
	}
	eng.Run(300 * sim.Microsecond)
	if g.Stats().TimeoutFires != 0 {
		t.Fatal("timeout fired despite recent merges (beta rule)")
	}
	if g.HeldSegments() != 1 {
		t.Fatalf("held %d, want 1", g.HeldSegments())
	}
	eng.RunAll()
	if g.Stats().TimeoutFires != 1 {
		t.Fatalf("timeout fires = %d, want 1 after merges stop", g.Stats().TimeoutFires)
	}
}

func TestPrestoStaleFlowcellPushedImmediately(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{})
	feed(g, pkt(0, 1), pkt(1, 1), pkt(2, 2), pkt(3, 2))
	n := len(out.dataSegs())
	// A late retransmission from flowcell 1 (stale): pushed at once.
	feed(g, pkt(1, 1))
	if len(out.dataSegs()) != n+1 {
		t.Fatal("stale flowcell packet was not pushed immediately")
	}
	if g.HeldSegments() != 0 {
		t.Fatal("stale packet held")
	}
}

func TestPrestoRetransmittedFirstPacketOfFlowcell(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{})
	// fc1 = P0,P1 delivered. fc2 starts at P2 but its first copy was
	// lost; TCP retransmits P2 (fc 2): expSeq(=P2.start) == start —
	// in-order case applies. Now simulate overlap: retransmission
	// covers P1..P2 (seq below expSeq): lines 11-13.
	feed(g, pkt(0, 1), pkt(1, 1))
	r := pkt(1, 2) // new flowcell whose first packet overlaps delivered data
	r.Retrans = true
	feed(g, r)
	if g.HeldSegments() != 0 {
		t.Fatal("overlapping retransmission was held")
	}
	data := out.dataSegs()
	if len(data) != 2 {
		t.Fatalf("pushed %d segments, want 2", len(data))
	}
}

func TestPrestoEWMAAdapts(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{InitialEWMA: 100 * sim.Microsecond})
	// Create a boundary gap, resolve it 40us later; the EWMA should
	// observe ~40us.
	g.Receive(pkt(0, 1))
	g.Flush()
	g.Receive(pkt(2, 2))
	g.Flush()
	eng.Schedule(40*sim.Microsecond, func() {
		g.Receive(pkt(1, 1)) // fills the fc1 tail
		g.Flush()
	})
	eng.Run(45 * sim.Microsecond)
	f := g.flows[testFlow]
	if !f.ewma.Initialized() {
		t.Fatal("EWMA not seeded by resolved reordering")
	}
	got := sim.Time(f.ewma.Value())
	if got < 35*sim.Microsecond || got > 45*sim.Microsecond {
		t.Fatalf("EWMA = %v, want ~40us", got)
	}
}

func TestControlPacketsBypassMerging(t *testing.T) {
	eng := sim.NewEngine()
	for _, h := range []Handler{
		NewNone(eng, &sink{}), NewOfficial(eng, &sink{}), NewPresto(eng, &sink{}, PrestoConfig{}),
	} {
		ack := &packet.Packet{Flow: testFlow, Flags: packet.FlagACK, Ack: 100}
		h.Receive(ack)
		if h.Stats().ControlOut != 1 {
			t.Errorf("%T: control packet not delivered immediately", h)
		}
	}
}

func TestNoneDeliversPerPacket(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	n := NewNone(eng, out)
	feed(n, pkt(0, 1), pkt(1, 1), pkt(2, 1))
	if len(out.dataSegs()) != 3 {
		t.Fatalf("None delivered %d segments, want 3", len(out.dataSegs()))
	}
}

func TestPrestoFlowcellIDWraparound(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	g := NewPresto(eng, out, PrestoConfig{})
	top := ^uint32(0)
	// Flowcell IDs top-1, top, 0, 1 in order; seqs also near wrap.
	base := top - uint32(2*packet.MSS)
	mk := func(off int, fc uint32) *packet.Packet {
		return &packet.Packet{
			Flow: testFlow, Seq: base + uint32(off*packet.MSS),
			Payload: packet.MSS, FlowcellID: fc, Flags: packet.FlagACK,
		}
	}
	feed(g, mk(0, top-1), mk(1, top-1), mk(2, top), mk(3, top), mk(4, 0), mk(5, 1))
	data := out.dataSegs()
	total := 0
	for _, s := range data {
		total += s.Len()
	}
	if total != 6*packet.MSS {
		t.Fatalf("delivered %d bytes across wraparound, want %d", total, 6*packet.MSS)
	}
	if g.HeldSegments() != 0 {
		t.Fatal("segments held across wraparound")
	}
	for i := 1; i < len(data); i++ {
		if packet.SeqLT(data[i].StartSeq, data[i-1].StartSeq) {
			t.Fatal("out-of-order delivery across wraparound")
		}
	}
}

// Property: spraying two flowcell streams with arbitrary interleaving
// (no loss) through Presto GRO delivers every byte exactly once and in
// order, with zero timeout fires.
func TestPrestoReorderingMaskProperty(t *testing.T) {
	prop := func(seed uint64, nCellsRaw uint8) bool {
		nCells := int(nCellsRaw)%6 + 2
		const pktsPerCell = 4
		eng := sim.NewEngine()
		out := &sink{}
		g := NewPresto(eng, out, PrestoConfig{InitialEWMA: sim.Millisecond})
		rng := sim.NewRNG(seed)

		// Two "paths": even cells on path A, odd on path B. Each path
		// preserves its own order; the interleaving across paths is
		// random (that is exactly what flowcell spraying produces).
		type item struct {
			idx int
			fc  uint32
		}
		var pathA, pathB []item
		k := 0
		for c := 0; c < nCells; c++ {
			for j := 0; j < pktsPerCell; j++ {
				it := item{idx: k, fc: uint32(c + 1)}
				if c%2 == 0 {
					pathA = append(pathA, it)
				} else {
					pathB = append(pathB, it)
				}
				k++
			}
		}
		// The very first data packet arrives first (TCP slow start
		// guarantees nothing else is in flight); the rest interleave
		// randomly across the two paths.
		arrival := []item{pathA[0]}
		a, b := 1, 0
		for a < len(pathA) || b < len(pathB) {
			if a < len(pathA) && (b >= len(pathB) || rng.Float64() < 0.5) {
				arrival = append(arrival, pathA[a])
				a++
			} else {
				arrival = append(arrival, pathB[b])
				b++
			}
		}
		// Feed in batches of 3 with flushes between (poll events).
		for i, it := range arrival {
			g.Receive(pkt(it.idx, it.fc))
			if i%3 == 2 {
				g.Flush()
			}
		}
		g.Flush()
		eng.RunAll() // drain any hold timers

		if g.Stats().TimeoutFires != 0 {
			return false
		}
		total := 0
		last := uint32(0)
		first := true
		for _, s := range out.dataSegs() {
			total += s.Len()
			if !first && packet.SeqLT(s.StartSeq, last) {
				return false
			}
			last = s.EndSeq
			first = false
		}
		return total == nCells*pktsPerCell*packet.MSS && g.HeldSegments() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: official GRO and Presto GRO deliver the same total bytes
// (conservation) for any interleaving; Presto just packages them
// better.
func TestGROByteConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		eng := sim.NewEngine()
		rng := sim.NewRNG(seed)
		outO, outP := &sink{}, &sink{}
		o := NewOfficial(eng, outO)
		g := NewPresto(eng, outP, PrestoConfig{InitialEWMA: sim.Millisecond})
		perm := rng.Perm(24)
		for _, i := range perm {
			fc := uint32(i/6 + 1)
			o.Receive(pkt(i, fc))
			g.Receive(pkt(i, fc))
		}
		o.Flush()
		g.Flush()
		eng.RunAll()
		sum := func(s *sink) int {
			n := 0
			for _, seg := range s.dataSegs() {
				n += seg.Len()
			}
			return n
		}
		return sum(outO) == 24*packet.MSS && sum(outP) == 24*packet.MSS
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOfficialEvictionAccounting(t *testing.T) {
	eng := sim.NewEngine()
	out := &sink{}
	o := NewOfficial(eng, out)
	// In-order run past the 64KB cap: pushes happen but none are
	// pathological evictions.
	for i := 0; i < 50; i++ {
		o.Receive(pkt(i, 1))
	}
	o.Flush()
	if o.Stats().Evictions != 0 {
		t.Fatalf("cap-completion counted as eviction: %d", o.Stats().Evictions)
	}
	// Reordered interleave: every direction switch is an eviction.
	o2 := NewOfficial(eng, &sink{})
	o2.Receive(pkt(100, 5))
	o2.Receive(pkt(200, 6)) // different flowcell, discontiguous
	o2.Receive(pkt(101, 5))
	if o2.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", o2.Stats().Evictions)
	}
}

func TestPrestoNeverEvicts(t *testing.T) {
	eng := sim.NewEngine()
	g := NewPresto(eng, &sink{}, PrestoConfig{})
	order := []struct {
		i  int
		fc uint32
	}{{0, 1}, {5, 2}, {1, 1}, {6, 2}, {2, 1}}
	for _, x := range order {
		g.Receive(pkt(x.i, x.fc))
	}
	g.Flush()
	if g.Stats().Evictions != 0 {
		t.Fatal("presto GRO should never evict")
	}
}
