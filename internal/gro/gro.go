// Package gro implements the receive-offload handlers at the heart of
// the paper: the kernel's stock GRO algorithm ("Official GRO", which
// collapses under reordering — the small segment flooding problem,
// §2.2), Presto's modified GRO (Algorithm 2: multiple segments per
// flow, flowcell-ID-based loss/reorder discrimination, adaptive
// α·EWMA timeout with the β merge-hold optimization, §3.2), and a
// pass-through used for the GRO-disabled baseline.
//
// All handlers consume MTU packets from the NIC's poll loop and emit
// packet.Segments to an Output (the host stack). Flush is invoked at
// the end of every poll event, exactly as the kernel calls the GRO
// flush at the end of a NAPI poll.
package gro

import (
	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
)

// Output receives segments pushed up the networking stack.
type Output interface {
	DeliverSegment(s *packet.Segment)
}

// Handler is a receive-offload engine hosted by the NIC.
type Handler interface {
	// Receive processes one packet from the current poll batch.
	Receive(p *packet.Packet)
	// Flush is called at the end of each poll event.
	Flush()
	// Stats exposes counters for CPU accounting and the Figure 5
	// microbenchmarks.
	Stats() *Stats
}

// FlushReason classifies why a data segment was pushed up the stack.
// Every deliverData call carries one, so the per-reason counters sum
// to SegmentsOut.
type FlushReason uint8

// The flush vocabulary across all handlers.
const (
	// FlushInOrder: in-order delivery (same flowcell, or the next
	// flowcell starting exactly in sequence).
	FlushInOrder FlushReason = iota
	// FlushLossGap: a sequence gap inside a flowcell — its packets
	// share one path, so the gap is loss; push immediately (Alg. 2
	// lines 3-5).
	FlushLossGap
	// FlushBoundaryTimeout: a flowcell-boundary gap held past the
	// adaptive α·EWMA (+β merge-hold) timeout — declared loss.
	FlushBoundaryTimeout
	// FlushOverlap: overlap with a retransmitted first packet of a new
	// flowcell — pushed so TCP reacts immediately.
	FlushOverlap
	// FlushStale: a stale flowcell (late retransmission).
	FlushStale
	// FlushSegFull: Official GRO completed an in-order segment at the
	// 64 KB cap.
	FlushSegFull
	// FlushEviction: Official GRO ejected a segment on a merge failure
	// (the small-segment-flooding path).
	FlushEviction
	// FlushPollEnd: Official GRO's end-of-poll flush.
	FlushPollEnd
	// FlushNoGRO: pass-through delivery with offload disabled.
	FlushNoGRO

	numFlushReasons
)

func (r FlushReason) String() string {
	switch r {
	case FlushInOrder:
		return "in-order"
	case FlushLossGap:
		return "loss-gap"
	case FlushBoundaryTimeout:
		return "boundary-timeout"
	case FlushOverlap:
		return "overlap-retrans"
	case FlushStale:
		return "stale-flowcell"
	case FlushSegFull:
		return "seg-full"
	case FlushEviction:
		return "eviction"
	case FlushPollEnd:
		return "poll-end"
	case FlushNoGRO:
		return "no-gro"
	}
	return "unknown"
}

// Stats counts handler activity. SegSizes records the payload size of
// every data segment pushed up (Figure 5b).
type Stats struct {
	PacketsIn    uint64 // data packets processed
	SegmentsOut  uint64 // data segments pushed up
	BytesOut     uint64 // payload bytes pushed up
	ControlOut   uint64 // control/ACK deliveries (not merged)
	Merges       uint64 // packet-into-segment merge operations
	Evictions    uint64 // Official: segments force-pushed by a merge failure
	TimeoutFires uint64 // Presto: boundary gaps declared lost
	ReorderHolds uint64 // Presto: flushes that held at least one segment

	// FlushReasons counts data-segment deliveries by cause; the entries
	// sum to SegmentsOut.
	FlushReasons [numFlushReasons]uint64

	SegSizes metrics.Dist

	tracer *telemetry.Tracer
	host   int32
}

// SetTracer attaches a structured event tracer (nil disables, the
// default) and the host actor for emitted events. For stacked handlers
// (LRO) this reaches the inner software handler, whose Stats are the
// shared ones.
func (s *Stats) SetTracer(tr *telemetry.Tracer, host int32) {
	s.tracer = tr
	s.host = host
}

// ReasonCounts returns the per-reason flush counts as a name→count
// map (zero entries omitted), for snapshot probes.
func (s *Stats) ReasonCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for r, n := range s.FlushReasons {
		if n > 0 {
			out[FlushReason(r).String()] = n
		}
	}
	return out
}

func (s *Stats) deliverData(out Output, seg *packet.Segment, reason FlushReason, at sim.Time) {
	s.SegmentsOut++
	s.FlushReasons[reason]++
	s.BytesOut += uint64(seg.Len())
	s.SegSizes.Add(float64(seg.Len()))
	s.tracer.GROFlush(at, s.host, seg.Len(), seg.Packets, reason.String())
	out.DeliverSegment(seg)
}

// control reports whether p must bypass merging: pure ACKs, probes,
// and connection-control packets.
func control(p *packet.Packet) bool {
	return p.Payload == 0 || p.Probe ||
		p.Flags.Has(packet.FlagSYN) || p.Flags.Has(packet.FlagFIN) || p.Flags.Has(packet.FlagRST)
}

func segFromPacket(p *packet.Packet, now sim.Time) *packet.Segment {
	ce := 0
	if p.CE {
		ce = 1
	}
	return &packet.Segment{
		CEPackets:  ce,
		EchoCE:     p.EchoCE,
		EchoTotal:  p.EchoTotal,
		Flow:       p.Flow,
		StartSeq:   p.Seq,
		EndSeq:     p.EndSeq(),
		FlowcellID: p.FlowcellID,
		Packets:    1,
		Retrans:    p.Retrans,
		CreatedAt:  now,
		LastMerge:  now,
		Flags:      p.Flags,
		Ack:        p.Ack,
		Sack:       p.Sack,
		SentAt:     p.SentAt,
		Probe:      p.Probe,
	}
}

// mergeTail appends p to seg if it is contiguous at the tail, within
// the same flowcell (TCP options must match to merge), and under the
// 64 KB segment cap. Reports whether the merge happened.
func mergeTail(seg *packet.Segment, p *packet.Packet, now sim.Time) bool {
	if p.FlowcellID != seg.FlowcellID || p.Seq != seg.EndSeq {
		return false
	}
	if seg.Len()+p.Payload > packet.MaxSegSize {
		return false
	}
	seg.EndSeq = p.EndSeq()
	seg.Packets++
	seg.LastMerge = now
	seg.Retrans = seg.Retrans || p.Retrans
	if p.CE {
		seg.CEPackets++
	}
	if packet.SeqGT(p.Ack, seg.Ack) {
		seg.Ack = p.Ack
	}
	seg.Flags |= p.Flags & packet.FlagPSH
	return true
}

// mergeHead prepends p to seg under the same constraints.
func mergeHead(seg *packet.Segment, p *packet.Packet, now sim.Time) bool {
	if p.FlowcellID != seg.FlowcellID || p.EndSeq() != seg.StartSeq {
		return false
	}
	if seg.Len()+p.Payload > packet.MaxSegSize {
		return false
	}
	seg.StartSeq = p.Seq
	seg.Packets++
	seg.LastMerge = now
	seg.Retrans = seg.Retrans || p.Retrans
	if p.CE {
		seg.CEPackets++
	}
	seg.SentAt = p.SentAt
	return true
}

// None is the GRO-disabled baseline: every packet is its own segment.
// With it, the receiver CPU must touch every MTU packet individually
// (the ~5.5-7 Gbps wall the paper cites from [34]).
type None struct {
	Eng   *sim.Engine
	Out   Output
	stats Stats
}

// NewNone returns a pass-through handler.
func NewNone(eng *sim.Engine, out Output) *None { return &None{Eng: eng, Out: out} }

// Receive implements Handler.
func (n *None) Receive(p *packet.Packet) {
	if control(p) {
		n.stats.ControlOut++
		n.Out.DeliverSegment(segFromPacket(p, n.Eng.Now()))
		return
	}
	n.stats.PacketsIn++
	n.stats.deliverData(n.Out, segFromPacket(p, n.Eng.Now()), FlushNoGRO, n.Eng.Now())
}

// Flush implements Handler.
func (n *None) Flush() {}

// Stats implements Handler.
func (n *None) Stats() *Stats { return &n.stats }
