package gro

import (
	"sort"
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
)

// FuzzPrestoGRO feeds randomized arrival orders, poll-batch splits,
// and inter-batch gaps into Presto GRO and checks its two safety
// properties: the reassembled byte stream is identical to what
// in-order delivery produces (every byte exactly once, no gaps, no
// overlaps), and no segment is left held once all timers drain.
//
// The fuzz input is a raw byte string consumed as a stream of
// decisions: packet count, flowcell width, a Fisher-Yates shuffle,
// then alternating batch sizes and inter-batch delays. Everything is
// derived from the input bytes, so each case replays deterministically.
func FuzzPrestoGRO(f *testing.F) {
	// The Figure 2 interleaving, a straight in-order run, and a
	// single-packet-batch tail-of-window case.
	f.Add([]byte{9, 5, 0, 1, 2, 5, 6, 3, 4, 7, 8, 9, 0})
	f.Add([]byte{16, 4})
	f.Add([]byte{24, 3, 0xff, 0x80, 0x40, 7, 1, 90, 1, 90, 1, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}

		n := int(next())%48 + 2   // packets in the window
		cell := int(next())%8 + 1 // full-MSS packets per flowcell

		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := int(next()) % (i + 1)
			order[i], order[j] = order[j], order[i]
		}

		eng := sim.NewEngine()
		out := &sink{}
		g := NewPresto(eng, out, PrestoConfig{InitialEWMA: 200 * sim.Microsecond})

		// Split the arrival order into poll batches at fuzz-chosen
		// boundaries and feed each at a fuzz-chosen simulated time, so
		// boundary gaps can resolve within a poll, across polls, or time
		// out as loss.
		at := sim.Time(0)
		for idx := 0; idx < n; {
			end := idx + int(next())%8 + 1
			if end > n {
				end = n
			}
			batch := order[idx:end]
			idx = end
			at += sim.Time(int(next())%100) * sim.Microsecond
			eng.At(at, func() {
				for _, i := range batch {
					g.Receive(pkt(i, uint32(1+i/cell)))
				}
				g.Flush()
			})
		}
		eng.RunAll() // drain every hold timer

		if held := g.HeldSegments(); held != 0 {
			t.Fatalf("held-segment leak: %d segments still buffered after all timers drained", held)
		}

		// Reference: the same window fed strictly in order.
		refEng := sim.NewEngine()
		refOut := &sink{}
		ref := NewPresto(refEng, refOut, PrestoConfig{InitialEWMA: 200 * sim.Microsecond})
		for i := 0; i < n; i++ {
			ref.Receive(pkt(i, uint32(1+i/cell)))
		}
		ref.Flush()
		refEng.RunAll()

		if got, want := coverage(t, out.dataSegs()), coverage(t, refOut.dataSegs()); got != want {
			t.Fatalf("reassembled stream %+v does not match in-order delivery %+v", got, want)
		}
	})
}

// extent is the byte range a delivered segment stream reassembles to.
type extent struct {
	start, end uint32
	bytes      int
}

// coverage sorts the delivered data segments by sequence and asserts
// they tile a contiguous byte range exactly once — no gap, no overlap,
// no duplicate delivery — returning that range.
func coverage(t *testing.T, segs []*packet.Segment) extent {
	t.Helper()
	if len(segs) == 0 {
		return extent{}
	}
	sorted := append([]*packet.Segment(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool {
		return packet.SeqLT(sorted[i].StartSeq, sorted[j].StartSeq)
	})
	ext := extent{start: sorted[0].StartSeq}
	nextSeq := sorted[0].StartSeq
	for _, s := range sorted {
		if s.StartSeq != nextSeq {
			t.Fatalf("stream not contiguous: segment [%d,%d) after byte %d", s.StartSeq, s.EndSeq, nextSeq)
		}
		nextSeq = s.EndSeq
		ext.bytes += s.Len()
	}
	ext.end = nextSeq
	return ext
}
