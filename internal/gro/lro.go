package gro

import (
	"presto/internal/packet"
	"presto/internal/sim"
)

// LRO models hardware Large Receive Offload in front of a software
// GRO handler — the stacking §2.2 calls out ("GRO can still be applied
// on packets pushed up from LRO, which means hardware doesn't have to
// be modified or made complex").
//
// Hardware LRO is stateless across interrupts and strictly in-order:
// within one interrupt window it coalesces consecutive same-flow
// packets into super-packets; any discontinuity (reordering, flowcell
// boundary — TCP options must match) flushes the current super-packet.
// The coalesced packets are handed to the inner handler (official or
// Presto GRO), which still sees flowcell IDs intact because LRO never
// merges across option boundaries.
type LRO struct {
	Eng   *sim.Engine
	Inner Handler

	// MaxSuper caps a super-packet's payload (hardware LRO typically
	// coalesces up to ~64 KB).
	MaxSuper int

	cur   map[packet.FlowKey]*packet.Packet
	order []packet.FlowKey

	// HWMerges counts packets coalesced in "hardware".
	HWMerges uint64
}

// NewLRO stacks hardware LRO in front of inner.
func NewLRO(eng *sim.Engine, inner Handler) *LRO {
	return &LRO{
		Eng:      eng,
		Inner:    inner,
		MaxSuper: packet.MaxSegSize,
		cur:      make(map[packet.FlowKey]*packet.Packet),
	}
}

// Receive implements Handler.
func (l *LRO) Receive(p *packet.Packet) {
	if control(p) {
		l.Inner.Receive(p)
		return
	}
	cur, ok := l.cur[p.Flow]
	if ok {
		if p.Seq == cur.EndSeq() && p.FlowcellID == cur.FlowcellID &&
			cur.Payload+p.Payload <= l.MaxSuper && p.CE == cur.CE {
			// In-order continuation: hardware coalesce.
			cur.Payload += p.Payload
			cur.Flags |= p.Flags & packet.FlagPSH
			if packet.SeqGT(p.Ack, cur.Ack) {
				cur.Ack = p.Ack
			}
			l.HWMerges++
			return
		}
		// Discontinuity: push the super-packet to software and restart.
		l.pushCur(p.Flow, cur)
	}
	l.put(p.Flow, p.Clone())
}

// Flush implements Handler: hardware state does not survive the
// interrupt — everything goes to software, then software flushes.
func (l *LRO) Flush() {
	for _, f := range l.order {
		if cur, ok := l.cur[f]; ok {
			delete(l.cur, f)
			l.Inner.Receive(cur)
		}
	}
	l.order = l.order[:0]
	l.Inner.Flush()
}

// Stats implements Handler, exposing the inner software handler's
// counters (hardware merges are reported separately via HWMerges).
func (l *LRO) Stats() *Stats { return l.Inner.Stats() }

func (l *LRO) put(f packet.FlowKey, p *packet.Packet) {
	l.cur[f] = p
	l.order = append(l.order, f)
}

func (l *LRO) pushCur(f packet.FlowKey, cur *packet.Packet) {
	delete(l.cur, f)
	for i, k := range l.order {
		if k == f {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	l.Inner.Receive(cur)
}
