package gro

import (
	"presto/internal/packet"
	"presto/internal/sim"
)

// Official models the stock kernel GRO algorithm described in §3.2:
// a gro_list holding at most one segment per flow. An in-order packet
// merges into its flow's segment; a packet that cannot be merged
// forces the existing segment to be pushed up and a new segment to be
// created. The end-of-poll flush pushes up everything.
//
// Under flowcell spraying this is exactly the small segment flooding
// failure mode (Figure 2): every reordered packet ejects the current
// segment, so the stack sees a storm of small segments.
type Official struct {
	Eng *sim.Engine
	Out Output

	segs  map[packet.FlowKey]*packet.Segment // gro_list: one per flow
	order []packet.FlowKey                   // deterministic flush order
	stats Stats
}

// NewOfficial returns a stock GRO handler.
func NewOfficial(eng *sim.Engine, out Output) *Official {
	return &Official{Eng: eng, Out: out, segs: make(map[packet.FlowKey]*packet.Segment)}
}

// Receive implements Handler.
func (o *Official) Receive(p *packet.Packet) {
	now := o.Eng.Now()
	if control(p) {
		o.stats.ControlOut++
		o.Out.DeliverSegment(segFromPacket(p, now))
		return
	}
	o.stats.PacketsIn++
	seg, ok := o.segs[p.Flow]
	if !ok {
		o.put(p.Flow, segFromPacket(p, now))
		return
	}
	if mergeTail(seg, p, now) {
		o.stats.Merges++
		return
	}
	// Cannot merge: push up the existing segment immediately and start
	// a new one. An in-order packet that merely hit the 64 KB cap is a
	// normal completion; anything else (reordering, option mismatch)
	// is a pathological eviction — the small-segment-flooding path.
	inOrderFull := p.Seq == seg.EndSeq && p.FlowcellID == seg.FlowcellID
	reason := FlushSegFull
	if !inOrderFull {
		o.stats.Evictions++
		reason = FlushEviction
	}
	o.evict(p.Flow, seg, reason)
	o.put(p.Flow, segFromPacket(p, now))
}

// Flush implements Handler: push up every segment in the gro_list.
func (o *Official) Flush() {
	for _, f := range o.order {
		if seg, ok := o.segs[f]; ok {
			delete(o.segs, f)
			o.stats.deliverData(o.Out, seg, FlushPollEnd, o.Eng.Now())
		}
	}
	o.order = o.order[:0]
}

// Stats implements Handler.
func (o *Official) Stats() *Stats { return &o.stats }

func (o *Official) put(f packet.FlowKey, seg *packet.Segment) {
	o.segs[f] = seg
	o.order = append(o.order, f)
}

func (o *Official) evict(f packet.FlowKey, seg *packet.Segment, reason FlushReason) {
	delete(o.segs, f)
	// The flow re-registers in order via put; drop its stale slot.
	for i, k := range o.order {
		if k == f {
			o.order = append(o.order[:i], o.order[i+1:]...)
			break
		}
	}
	o.stats.deliverData(o.Out, seg, reason, o.Eng.Now())
}
