// Package trace provides packet capture and offline analysis for the
// simulator: a classic libpcap-format writer/reader (so captures open
// in tcpdump/Wireshark), a capture tap that hooks a host's NIC, and
// the reordering/flowcell analyses behind Figures 1 and 5.
//
// Capture serializes packets with the canonical wire codec
// (internal/packet), so the bytes on disk are real Ethernet frames
// with the flowcell ID in its TCP option.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"presto/internal/packet"
	"presto/internal/sim"
)

// Classic pcap constants (microsecond resolution, LINKTYPE_ETHERNET).
const (
	pcapMagic   = 0xa1b2c3d4
	pcapVMajor  = 2
	pcapVMinor  = 4
	pcapEther   = 1
	pcapSnapLen = 65535
)

// Record is one captured packet.
type Record struct {
	At     sim.Time
	Packet *packet.Packet
}

// Writer emits a classic pcap stream.
type Writer struct {
	w      io.Writer
	header bool
	n      int
}

// NewWriter wraps w; the file header is emitted lazily on the first
// packet.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WritePacket appends one packet with the given simulated timestamp.
func (pw *Writer) WritePacket(at sim.Time, p *packet.Packet) error {
	if !pw.header {
		var h [24]byte
		binary.LittleEndian.PutUint32(h[0:4], pcapMagic)
		binary.LittleEndian.PutUint16(h[4:6], pcapVMajor)
		binary.LittleEndian.PutUint16(h[6:8], pcapVMinor)
		binary.LittleEndian.PutUint32(h[16:20], pcapSnapLen)
		binary.LittleEndian.PutUint32(h[20:24], pcapEther)
		if _, err := pw.w.Write(h[:]); err != nil {
			return err
		}
		pw.header = true
	}
	frame := packet.Marshal(p)
	var rec [16]byte
	us := int64(at) / int64(sim.Microsecond)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(us/1e6))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(us%1e6))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(frame)
	if err == nil {
		pw.n++
	}
	return err
}

// Count returns packets written.
func (pw *Writer) Count() int { return pw.n }

// ErrBadMagic marks a stream that is not classic little-endian pcap.
var ErrBadMagic = errors.New("trace: not a classic pcap stream")

// Reader parses a classic pcap stream written by Writer (or any
// little-endian microsecond pcap of Ethernet frames).
type Reader struct {
	r      io.Reader
	header bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadPacket returns the next record, or io.EOF.
func (pr *Reader) ReadPacket() (Record, error) {
	if !pr.header {
		var h [24]byte
		if _, err := io.ReadFull(pr.r, h[:]); err != nil {
			return Record{}, err
		}
		if binary.LittleEndian.Uint32(h[0:4]) != pcapMagic {
			return Record{}, ErrBadMagic
		}
		pr.header = true
	}
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		return Record{}, err
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	if capLen > pcapSnapLen {
		return Record{}, fmt.Errorf("trace: capture length %d exceeds snaplen", capLen)
	}
	frame := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return Record{}, err
	}
	p, err := packet.Unmarshal(frame)
	if err != nil {
		return Record{}, fmt.Errorf("trace: frame decode: %w", err)
	}
	at := sim.Time(int64(sec))*sim.Second + sim.Time(int64(usec))*sim.Microsecond
	return Record{At: at, Packet: p}, nil
}

// ReadAll drains the stream.
func (pr *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := pr.ReadPacket()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
