package trace

import (
	"sort"

	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
)

// FlowStats summarizes one unidirectional flow in a capture.
type FlowStats struct {
	Flow      packet.FlowKey
	Packets   int
	Bytes     int
	First     sim.Time
	Last      sim.Time
	Flowcells int
	// ReorderedPackets counts data packets whose sequence number is
	// below the highest seen so far and that are not retransmission
	// duplicates of delivered data (the §5 flowlet-analysis metric:
	// "13%-29% packets in the connection are reordered").
	ReorderedPackets int
	// Retransmissions counts packets whose exact range was seen before.
	Retransmissions int
}

// Goodput returns the flow's goodput in Gbps over its active span.
func (f *FlowStats) Goodput() float64 {
	span := f.Last - f.First
	if span <= 0 {
		return 0
	}
	return float64(f.Bytes) * 8 / span.Seconds() / 1e9
}

// ReorderFraction returns reordered packets / data packets.
func (f *FlowStats) ReorderFraction() float64 {
	if f.Packets == 0 {
		return 0
	}
	return float64(f.ReorderedPackets) / float64(f.Packets)
}

// Analysis is the result of scanning a capture.
type Analysis struct {
	Flows map[packet.FlowKey]*FlowStats
	// InterArrival is the distribution of data-packet inter-arrival
	// times (µs), the raw material of flowlet analysis.
	InterArrival metrics.Dist
	Total        int
}

type flowScan struct {
	stats   *FlowStats
	highSeq uint32
	seen    map[uint32]bool // start seqs observed (retransmission detection)
	cells   map[uint32]bool
	lastAt  sim.Time
}

// Analyze scans capture records into per-flow statistics. Records may
// arrive in any order; they are sorted by timestamp first.
func Analyze(recs []Record) *Analysis {
	sorted := append([]Record(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	a := &Analysis{Flows: make(map[packet.FlowKey]*FlowStats)}
	scans := make(map[packet.FlowKey]*flowScan)
	for _, rec := range sorted {
		p := rec.Packet
		if p.Payload == 0 {
			continue // pure ACKs are not data
		}
		a.Total++
		fs, ok := scans[p.Flow]
		if !ok {
			fs = &flowScan{
				stats: &FlowStats{Flow: p.Flow, First: rec.At},
				seen:  make(map[uint32]bool),
				cells: make(map[uint32]bool),
			}
			fs.highSeq = p.Seq
			fs.lastAt = rec.At
			scans[p.Flow] = fs
			a.Flows[p.Flow] = fs.stats
		} else {
			a.InterArrival.Add(sim.Time(rec.At - fs.lastAt).Microseconds())
			fs.lastAt = rec.At
		}
		st := fs.stats
		st.Packets++
		st.Bytes += p.Payload
		st.Last = rec.At
		if !fs.cells[p.FlowcellID] {
			fs.cells[p.FlowcellID] = true
			st.Flowcells++
		}
		switch {
		case fs.seen[p.Seq]:
			st.Retransmissions++
		case packet.SeqLT(p.Seq, fs.highSeq):
			st.ReorderedPackets++
		default:
			fs.highSeq = p.Seq
		}
		fs.seen[p.Seq] = true
	}
	return a
}

// Flowlets splits one flow's records into flowlets using the given
// inactivity gap and returns their sizes in bytes (Figure 1 computed
// offline from a capture instead of from the sender policy).
func Flowlets(recs []Record, flow packet.FlowKey, gap sim.Time) []int {
	var pts []Record
	for _, r := range recs {
		if r.Packet.Flow == flow && r.Packet.Payload > 0 {
			pts = append(pts, r)
		}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].At < pts[j].At })
	var sizes []int
	cur := 0
	var last sim.Time
	for i, r := range pts {
		if i > 0 && r.At-last > gap {
			sizes = append(sizes, cur)
			cur = 0
		}
		cur += r.Packet.Payload
		last = r.At
	}
	if cur > 0 {
		sizes = append(sizes, cur)
	}
	return sizes
}
