package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
)

func samplePkt(i int, fc uint32) *packet.Packet {
	return &packet.Packet{
		SrcMAC:     packet.HostMAC(1),
		DstMAC:     packet.HostMAC(2),
		Flow:       packet.FlowKey{Src: packet.Addr{Host: 1, Port: 40000}, Dst: packet.Addr{Host: 2, Port: 5001}},
		Seq:        uint32(1 + i*packet.MSS),
		Payload:    packet.MSS,
		Flags:      packet.FlagACK,
		FlowcellID: fc,
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	times := []sim.Time{0, 100 * sim.Microsecond, 3 * sim.Second}
	for i, at := range times {
		if err := w.WritePacket(at, samplePkt(i, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("wrote %d", w.Count())
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, r := range recs {
		if r.At/sim.Microsecond != times[i]/sim.Microsecond {
			t.Errorf("record %d at %v, want %v", i, r.At, times[i])
		}
		if r.Packet.Seq != uint32(1+i*packet.MSS) || r.Packet.FlowcellID != uint32(i) {
			t.Errorf("record %d mangled: %+v", i, r.Packet)
		}
	}
}

func TestPcapHeaderMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, samplePkt(0, 0)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < 24 || b[0] != 0xd4 || b[1] != 0xc3 || b[2] != 0xb2 || b[3] != 0xa1 {
		t.Fatalf("bad pcap magic: % x", b[:4])
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 64))).ReadPacket(); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)).ReadPacket(); err != io.EOF {
		t.Fatalf("empty stream err = %v, want EOF", err)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	var recs []Record
	at := sim.Time(0)
	// In-order flow: 10 packets, 2 flowcells, no reordering.
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{At: at, Packet: samplePkt(i, uint32(i/5))})
		at += 10 * sim.Microsecond
	}
	a := Analyze(recs)
	if a.Total != 10 || len(a.Flows) != 1 {
		t.Fatalf("total=%d flows=%d", a.Total, len(a.Flows))
	}
	for _, fs := range a.Flows {
		if fs.Packets != 10 || fs.Flowcells != 2 || fs.ReorderedPackets != 0 || fs.Retransmissions != 0 {
			t.Fatalf("stats: %+v", fs)
		}
		if fs.Goodput() <= 0 {
			t.Fatal("no goodput")
		}
	}
	if a.InterArrival.N() != 9 || a.InterArrival.Median() != 10 {
		t.Fatalf("inter-arrival: n=%d median=%v", a.InterArrival.N(), a.InterArrival.Median())
	}
}

func TestAnalyzeDetectsReorderingAndRetrans(t *testing.T) {
	mk := func(i int, at sim.Time) Record {
		return Record{At: at, Packet: samplePkt(i, 0)}
	}
	recs := []Record{
		mk(0, 0), mk(2, 1000), mk(1, 2000), // packet 1 reordered
		mk(2, 3000), // retransmission of packet 2
	}
	a := Analyze(recs)
	for _, fs := range a.Flows {
		if fs.ReorderedPackets != 1 {
			t.Fatalf("reordered = %d, want 1", fs.ReorderedPackets)
		}
		if fs.Retransmissions != 1 {
			t.Fatalf("retrans = %d, want 1", fs.Retransmissions)
		}
		if f := fs.ReorderFraction(); f <= 0 || f >= 1 {
			t.Fatalf("reorder fraction %v", f)
		}
	}
}

func TestFlowletsSplitOnGap(t *testing.T) {
	flow := samplePkt(0, 0).Flow
	var recs []Record
	at := sim.Time(0)
	// Burst of 3, 1ms gap, burst of 2.
	for i := 0; i < 3; i++ {
		recs = append(recs, Record{At: at, Packet: samplePkt(i, 0)})
		at += 50 * sim.Microsecond
	}
	at += sim.Millisecond
	for i := 3; i < 5; i++ {
		recs = append(recs, Record{At: at, Packet: samplePkt(i, 0)})
		at += 50 * sim.Microsecond
	}
	sizes := Flowlets(recs, flow, 500*sim.Microsecond)
	if len(sizes) != 2 || sizes[0] != 3*packet.MSS || sizes[1] != 2*packet.MSS {
		t.Fatalf("flowlets = %v", sizes)
	}
}

// Property: pcap round trip preserves every wire field for arbitrary
// packets.
func TestPcapRoundTripProperty(t *testing.T) {
	prop := func(seq, ack, fc uint32, payload uint16, sport, dport uint16) bool {
		p := &packet.Packet{
			SrcMAC:     packet.HostMAC(3),
			DstMAC:     packet.ShadowMAC(9, 4),
			Flow:       packet.FlowKey{Src: packet.Addr{Host: 3, Port: sport}, Dst: packet.Addr{Host: 9, Port: dport}},
			Seq:        seq,
			Ack:        ack,
			Flags:      packet.FlagACK,
			Payload:    int(payload) % (packet.MSS + 1),
			FlowcellID: fc,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WritePacket(42*sim.Microsecond, p); err != nil {
			return false
		}
		recs, err := NewReader(&buf).ReadAll()
		if err != nil || len(recs) != 1 {
			return false
		}
		q := recs[0].Packet
		return q.Flow == p.Flow && q.Seq == p.Seq && q.Ack == p.Ack &&
			q.Payload == p.Payload && q.FlowcellID == p.FlowcellID &&
			q.SrcMAC == p.SrcMAC && q.DstMAC == p.DstMAC
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
