package cluster

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

// Failure injection: transfers must survive arbitrary single-link
// failures (with or without restore) as long as the topology stays
// connected — fast failover, the controller update, TLP, and the RTO
// backstop together guarantee progress.

func TestTransferSurvivesFailureProperty(t *testing.T) {
	prop := func(seed uint64, linkPick uint8, restore bool) bool {
		c := New(Config{
			Topology: topo.TwoTierClos(3, 3, 1, 1, topo.LinkConfig{}),
			Scheme:   Presto,
			Seed:     seed,
		})
		conn := c.Dial(0, 2) // leaf0 -> leaf2
		const n = 2 << 20
		conn.Write(n)

		// Fail one random fabric (spine-leaf) link mid-transfer.
		var fabricLinks []topo.LinkID
		for _, l := range c.Topo.Links {
			a, b := c.Topo.Nodes[l.A].Kind, c.Topo.Nodes[l.B].Kind
			if a != topo.KindHost && b != topo.KindHost {
				fabricLinks = append(fabricLinks, l.ID)
			}
		}
		bad := fabricLinks[int(linkPick)%len(fabricLinks)]
		c.Eng.At(2*sim.Millisecond, func() { c.FailLink(bad) })
		if restore {
			c.Eng.At(400*sim.Millisecond, func() { c.RestoreLink(bad) })
		}
		c.Eng.Run(5 * sim.Second)
		return conn.Delivered() == n && conn.Done()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFailureStillConnected(t *testing.T) {
	// Fail two of three trees: the last one must carry everything.
	c := New(Config{
		Topology: topo.TwoTierClos(3, 2, 1, 1, topo.LinkConfig{}),
		Scheme:   Presto,
		Seed:     7,
	})
	conn := c.Dial(0, 1)
	conn.Write(1 << 20)
	trees := c.Ctrl.Trees()
	c.Eng.At(sim.Millisecond, func() {
		c.FailLink(trees[0].LeafLink[c.Topo.Leaves[0]])
		c.FailLink(trees[1].LeafLink[c.Topo.Leaves[1]])
	})
	c.Eng.Run(5 * sim.Second)
	if conn.Delivered() != 1<<20 {
		t.Fatalf("delivered %d with one tree left", conn.Delivered())
	}
}

func TestFailureDuringMice(t *testing.T) {
	// Mice flows launched right as the link dies: they must complete
	// (possibly slowly), never hang forever.
	c := New(Config{
		Topology: topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   Presto,
		Seed:     8,
	})
	done := 0
	for i := 0; i < 8; i++ {
		conn := c.Dial(packet.HostID(i%2), packet.HostID(2+i%2))
		conn.OnDelivered = func(total uint64) {
			if total >= 50_000 {
				done++
			}
		}
		c.Eng.At(sim.Time(i)*200*sim.Microsecond, func() { conn.Write(50_000) })
	}
	c.Eng.At(300*sim.Microsecond, func() {
		c.FailLink(c.Ctrl.Trees()[0].LeafLink[c.Topo.Leaves[0]])
	})
	c.Eng.Run(10 * sim.Second)
	if done != 8 {
		t.Fatalf("%d/8 mice completed after failure", done)
	}
}
