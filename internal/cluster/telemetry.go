package cluster

import (
	"fmt"

	"presto/internal/fabric"
	"presto/internal/tcp"
	"presto/internal/telemetry"
)

// wireTelemetry attaches the configured registry's tracer to every
// traced component and registers the per-component snapshot probes.
// Called once from New when Config.Telemetry is set; with it unset the
// cluster carries no telemetry state at all.
func (c *Cluster) wireTelemetry() {
	reg := c.cfg.Telemetry
	if reg == nil {
		return
	}
	prefix := reg.BeginRun(string(c.cfg.Scheme))
	tr := reg.Tracer()
	c.Net.SetTracer(tr)
	for _, h := range c.Hosts {
		h.VS.SetTracer(tr)
		h.NIC.SetTracer(tr)
	}

	reg.Register(prefix+"engine", func() map[string]any {
		return map[string]any{
			"now_ns":       int64(c.Eng.Now()),
			"events":       c.Eng.Executed,
			"peak_pending": c.Eng.PeakPending,
		}
	})
	reg.Register(prefix+"fabric", c.Net.TelemetrySnapshot)

	// The monitor only reads data-plane state, so sampling shifts event
	// sequence numbers without changing simulated outcomes (verified by
	// the determinism regression test).
	c.mon = fabric.NewMonitor(c.Net, c.cfg.MonitorInterval, 0)
	c.mon.Start()
	reg.Register(prefix+"links", c.mon.TelemetrySnapshot)

	for _, h := range c.Hosts {
		h := h
		reg.Register(fmt.Sprintf("%shost%d/vswitch", prefix, h.ID), h.VS.TelemetrySnapshot)
		reg.Register(fmt.Sprintf("%shost%d/nic", prefix, h.ID), h.NIC.TelemetrySnapshot)
	}

	reg.Register(prefix+"tcp", func() map[string]any {
		var sent, acked, retrans, timeouts, probes, dupacks, ooo uint64
		eps := 0
		each := func(e *tcp.Endpoint) {
			if e == nil {
				return
			}
			eps++
			sent += e.Stats.BytesSent
			acked += e.Stats.BytesAcked
			retrans += e.Stats.Retransmits
			timeouts += e.Stats.Timeouts
			probes += e.Stats.Probes
			dupacks += e.Stats.DupAcks
			ooo += e.Stats.OOOSegments
		}
		for _, conn := range c.conns {
			each(conn.fwd)
			each(conn.rev)
			for _, e := range conn.mfwd {
				each(e)
			}
			for _, e := range conn.mrev {
				each(e)
			}
		}
		return map[string]any{
			"endpoints":    eps,
			"bytes_sent":   sent,
			"bytes_acked":  acked,
			"retransmits":  retrans,
			"timeouts":     timeouts,
			"probes":       probes,
			"dup_acks":     dupacks,
			"ooo_segments": ooo,
		}
	})
}

// Monitor returns the fabric link monitor (nil unless telemetry is
// configured).
func (c *Cluster) Monitor() *fabric.Monitor { return c.mon }

// Telemetry returns the cluster's registry (nil when disabled).
func (c *Cluster) Telemetry() *telemetry.Registry { return c.cfg.Telemetry }
