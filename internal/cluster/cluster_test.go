package cluster

import (
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

func clos(spines, leaves, hostsPer int) *topo.Topology {
	return topo.TwoTierClos(spines, leaves, hostsPer, 1, topo.LinkConfig{})
}

func TestPrestoTransferAcrossClos(t *testing.T) {
	c := New(Config{Topology: clos(4, 4, 1), Scheme: Presto, Seed: 1, RecordFlowcells: true})
	conn := c.Dial(0, 2) // leaf 0 -> leaf 2
	const n = 4 << 20
	conn.Write(n)
	c.Eng.RunAll()
	if got := conn.Delivered(); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	// Flowcells must have sprayed across all four spines.
	for _, s := range c.Topo.Spines {
		if c.Net.Switch(s).RxPackets == 0 {
			t.Errorf("spine %v carried nothing — spraying broken", s)
		}
	}
	// Presto GRO must mask reordering from TCP: out-of-order counts
	// all zero and no spurious retransmits on a lossless fabric.
	for _, cnt := range conn.Receiver().OutOfOrderCounts() {
		if cnt != 0 {
			t.Fatalf("reordering leaked to TCP: %v", conn.Receiver().OutOfOrderCounts())
		}
	}
	if conn.Sender().Stats.Timeouts != 0 {
		t.Fatalf("timeouts on a lossless transfer: %+v", conn.Sender().Stats)
	}
}

func TestECMPTransferCompletes(t *testing.T) {
	c := New(Config{Topology: clos(4, 4, 1), Scheme: ECMP, Seed: 2})
	conn := c.Dial(0, 3)
	conn.Write(1 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 1<<20 || !conn.Done() {
		t.Fatalf("delivered %d", conn.Delivered())
	}
	// ECMP pins one path: exactly one spine carries the data.
	used := 0
	for _, s := range c.Topo.Spines {
		if c.Net.Switch(s).RxPackets > 50 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("ECMP data crossed %d spines, want 1", used)
	}
}

func TestMPTCPTransferCompletes(t *testing.T) {
	c := New(Config{Topology: clos(4, 2, 2), Scheme: MPTCP, Seed: 3})
	conn := c.Dial(0, 2)
	conn.Write(2 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 2<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
	// Subflows spread over spines.
	used := 0
	for _, s := range c.Topo.Spines {
		if c.Net.Switch(s).RxPackets > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("MPTCP subflows used %d spines", used)
	}
}

func TestOptimalSingleSwitch(t *testing.T) {
	c := New(Config{Topology: topo.SingleSwitch(4, topo.LinkConfig{}), Scheme: ECMP, Seed: 4})
	conn := c.Dial(0, 3)
	conn.Write(1 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 1<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
}

func TestFlowletScheme(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 1), Scheme: Flowlet, Seed: 5, FlowletGap: 100 * sim.Microsecond})
	conn := c.Dial(0, 1)
	conn.Write(1 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 1<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
}

func TestPrestoECMPScheme(t *testing.T) {
	c := New(Config{Topology: clos(4, 2, 1), Scheme: PrestoECMP, Seed: 6})
	conn := c.Dial(0, 1)
	conn.Write(2 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 2<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
	used := 0
	for _, s := range c.Topo.Spines {
		if c.Net.Switch(s).RxPackets > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("per-hop flowcell hashing used %d spines", used)
	}
}

func TestMiceFCTWithAppAck(t *testing.T) {
	c := New(Config{Topology: clos(4, 4, 1), Scheme: Presto, Seed: 7})
	conn := c.Dial(0, 2)
	var fct sim.Time
	conn.OnDelivered = func(total uint64) {
		if total >= 50_000 {
			conn.WriteReverse(100)
		}
	}
	conn.OnReverseDelivered = func(total uint64) {
		if total >= 100 && fct == 0 {
			fct = c.Eng.Now()
		}
	}
	conn.Write(50_000)
	c.Eng.RunAll()
	if fct == 0 {
		t.Fatal("mouse never completed")
	}
	if fct > 2*sim.Millisecond {
		t.Fatalf("idle-network mouse FCT = %v", fct)
	}
}

func TestProberMeasuresRTT(t *testing.T) {
	c := New(Config{Topology: clos(4, 4, 1), Scheme: Presto, Seed: 8})
	p := c.NewProber(0, 3, sim.Millisecond)
	p.Start()
	c.Eng.Run(20 * sim.Millisecond)
	p.Stop()
	c.Eng.RunAll()
	if p.Samples.N() < 10 {
		t.Fatalf("only %d RTT samples", p.Samples.N())
	}
	med := p.Samples.Median()
	if med <= 0 || med > 0.5 {
		t.Fatalf("idle RTT median = %vms, want < 0.5ms", med)
	}
}

func TestFailoverKeepsTrafficFlowing(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 1), Scheme: Presto, Seed: 9})
	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	c.Eng.Run(20 * sim.Millisecond)
	before := conn.Delivered()
	if before == 0 {
		t.Fatal("no traffic before failure")
	}
	// Fail tree 0's link at leaf 0.
	bad := c.Ctrl.Trees()[0].LeafLink[c.Topo.Leaves[0]]
	c.FailLink(bad)
	c.Eng.Run(200 * sim.Millisecond)
	after := conn.Delivered()
	if after <= before {
		t.Fatal("traffic stopped permanently after failure")
	}
	// Weighted stage: mapping pruned to one tree.
	if got := c.Hosts[0].VS.Mapping(1); len(got) != 1 {
		t.Fatalf("mapping not pruned: %d labels", len(got))
	}
	// And throughput in the weighted stage still moves bytes.
	mid := conn.Delivered()
	c.Eng.Run(250 * sim.Millisecond)
	if conn.Delivered() <= mid {
		t.Fatal("no progress in weighted stage")
	}
}

func TestTwoCompetingElephantsShareFairly(t *testing.T) {
	// Two senders into one receiver port: each should get ~half the
	// link.
	c := New(Config{Topology: clos(2, 2, 2), Scheme: Presto, Seed: 10})
	c1 := c.Dial(0, 2)
	c2 := c.Dial(1, 2)
	c1.SetUnlimited(true)
	c2.SetUnlimited(true)
	const dur = 100 * sim.Millisecond
	c.Eng.Run(dur)
	g1 := float64(c1.Delivered()) * 8 / dur.Seconds() / 1e9
	g2 := float64(c2.Delivered()) * 8 / dur.Seconds() / 1e9
	sum := g1 + g2
	if sum < 7 || sum > 10.2 {
		t.Fatalf("aggregate %.2f Gbps into one 10G port", sum)
	}
	ratio := g1 / g2
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("unfair split: %.2f vs %.2f Gbps", g1, g2)
	}
}

func TestElephantReachesNearLineRate(t *testing.T) {
	c := New(Config{Topology: clos(4, 2, 1), Scheme: Presto, Seed: 11})
	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	const dur = 100 * sim.Millisecond
	c.Eng.Run(dur)
	gbps := float64(conn.Delivered()) * 8 / dur.Seconds() / 1e9
	if gbps < 8.5 {
		t.Fatalf("single presto elephant = %.2f Gbps, want ~9.3", gbps)
	}
}

func TestConnCloseUnregisters(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 1), Scheme: Presto, Seed: 12})
	conn := c.Dial(0, 1)
	conn.Write(10_000)
	c.Eng.RunAll()
	conn.Close()
	// A fresh segment for the closed flow must be dropped, not
	// crash.
	c.Hosts[1].VS.DeliverSegment(&packet.Segment{
		Flow:     conn.flows[0],
		StartSeq: 1, EndSeq: 100, Flags: packet.FlagACK,
	})
}
