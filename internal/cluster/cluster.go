// Package cluster assembles a whole emulated testbed: a topology's
// fabric, one host per server (vSwitch + NIC + GRO + transport
// endpoints), the central controller, and helpers for opening
// connections, probing RTT, and failing links. This is the layer the
// experiment harness drives.
package cluster

import (
	"fmt"

	"presto/internal/controller"
	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/mptcp"
	"presto/internal/nic"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/tcp"
	"presto/internal/telemetry"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

// Scheme selects the load-balancing configuration under test (§4):
// the edge policy, the receive-offload algorithm, and the transport.
type Scheme int

const (
	// ECMP pins each flow to one random end-to-end path (the paper's
	// ECMP baseline), with official GRO.
	ECMP Scheme = iota
	// MPTCP runs 8 subflows per connection, each ECMP-pinned, with
	// coupled congestion control and official GRO.
	MPTCP
	// Presto sprays 64 KB flowcells round-robin over shadow-MAC
	// spanning trees with Presto GRO at receivers.
	Presto
	// Flowlet switches paths at inactivity gaps (see Config.FlowletGap)
	// with official GRO.
	Flowlet
	// PrestoECMP stamps flowcells but lets switches hash them per hop
	// (Figure 14's comparison).
	PrestoECMP
	// PerPacket sprays every MTU packet (TSO off) with Presto GRO —
	// the per-packet baseline of §2.1.
	PerPacket
)

func (s Scheme) String() string {
	switch s {
	case ECMP:
		return "ecmp"
	case MPTCP:
		return "mptcp"
	case Presto:
		return "presto"
	case Flowlet:
		return "flowlet"
	case PrestoECMP:
		return "presto-ecmp"
	case PerPacket:
		return "per-packet"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// GROKind overrides the receive-offload algorithm.
type GROKind int

const (
	// GROAuto picks the scheme's natural handler.
	GROAuto GROKind = iota
	// GROOfficial forces stock GRO.
	GROOfficial
	// GROPresto forces Presto GRO.
	GROPresto
	// GRONone disables receive offload.
	GRONone
	// GROLROOfficial stacks hardware LRO in front of official GRO.
	GROLROOfficial
	// GROLROPresto stacks hardware LRO in front of Presto GRO (§2.2:
	// the hardware stays simple, software handles reordering).
	GROLROPresto
)

// prestoGROOverhead is the extra per-packet CPU cost of Presto GRO's
// multi-segment bookkeeping (calibrated to Figure 6's +6%).
const prestoGROOverhead = 80 * sim.Nanosecond

// Config describes a testbed instance.
type Config struct {
	Topology *topo.Topology
	Scheme   Scheme
	Seed     uint64

	GRO        GROKind
	GROConfig  gro.PrestoConfig
	FlowletGap sim.Time // inactivity gap for Flowlet (default 500 µs)
	Subflows   int      // MPTCP subflows (default 8)
	// FlowcellBytes overrides the Presto policy's flowcell size
	// (default 64 KB, the max TSO segment) — the granularity ablation.
	FlowcellBytes int

	TCP    tcp.Config
	NIC    nic.Config
	Fabric fabric.Config
	Ctrl   controller.Config

	// RecordFlowcells enables per-receiver flowcell arrival logs
	// (Figure 5a).
	RecordFlowcells bool

	// Telemetry, when non-nil, wires the registry's tracer through every
	// component, registers snapshot probes, and starts the fabric link
	// monitor. Nil (the default) leaves the whole layer off.
	Telemetry *telemetry.Registry
	// MonitorInterval overrides the link monitor's sampling period
	// (default fabric.DefaultMonitorInterval). Only used with Telemetry.
	MonitorInterval sim.Time
}

// Host is one server: its edge datapath and interface.
type Host struct {
	ID  packet.HostID
	VS  *vswitch.VSwitch
	NIC *nic.NIC
}

// Cluster is a running testbed.
type Cluster struct {
	Eng   *sim.Engine
	Topo  *topo.Topology
	Net   *fabric.Network
	Ctrl  *controller.Controller
	Hosts []*Host

	cfg      Config
	rng      *sim.RNG
	nextPort uint16
	conns    []*Conn
	taps     map[packet.HostID]*tap
	mon      *fabric.Monitor
}

// New builds and wires a testbed. The controller's label state is
// installed immediately (the paper's preemptive push).
func New(cfg Config) *Cluster {
	if cfg.Topology == nil {
		panic("cluster: Config.Topology required")
	}
	if cfg.Subflows == 0 {
		cfg.Subflows = mptcp.DefaultSubflows
	}
	if cfg.FlowletGap == 0 {
		cfg.FlowletGap = 500 * sim.Microsecond
	}
	eng := sim.NewEngine()
	c := &Cluster{
		Eng:      eng,
		Topo:     cfg.Topology,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15),
		nextPort: 10000,
		taps:     make(map[packet.HostID]*tap),
	}
	c.Net = fabric.New(eng, cfg.Topology, cfg.Fabric)
	c.Ctrl = controller.New(eng, c.Net, cfg.Ctrl)

	for i := 0; i < cfg.Topology.NumHosts(); i++ {
		h := packet.HostID(i)
		vs := vswitch.New(eng, h, nil, c.newPolicy())
		nicCfg := cfg.NIC
		nicCfg.CPU.HandlerOverhead = 0
		kind := c.groKind()
		if kind == GROPresto || kind == GROLROPresto {
			base := nic.DefaultCPUConfig()
			if nicCfg.CPU != (nic.CPUConfig{}) {
				base = nicCfg.CPU
			}
			base.HandlerOverhead = prestoGROOverhead
			nicCfg.CPU = base
		}
		n := nic.New(eng, c.Net, h, vs, c.makeGRO(kind), nicCfg)
		vs.SetSender(n)
		c.Net.AttachHost(h, n)
		c.Ctrl.RegisterVSwitch(vs)
		c.Hosts = append(c.Hosts, &Host{ID: h, VS: vs, NIC: n})
	}
	c.Ctrl.InstallAll()
	c.wireTelemetry()
	return c
}

// groKind resolves the effective GRO algorithm.
func (c *Cluster) groKind() GROKind {
	if c.cfg.GRO != GROAuto {
		return c.cfg.GRO
	}
	switch c.cfg.Scheme {
	case Presto, PerPacket, PrestoECMP:
		return GROPresto
	default:
		return GROOfficial
	}
}

func (c *Cluster) makeGRO(kind GROKind) func(out gro.Output) gro.Handler {
	eng := c.Eng
	cfg := c.cfg.GROConfig
	return func(out gro.Output) gro.Handler {
		switch kind {
		case GROPresto:
			return gro.NewPresto(eng, out, cfg)
		case GRONone:
			return gro.NewNone(eng, out)
		case GROLROOfficial:
			return gro.NewLRO(eng, gro.NewOfficial(eng, out))
		case GROLROPresto:
			return gro.NewLRO(eng, gro.NewPresto(eng, out, cfg))
		default:
			return gro.NewOfficial(eng, out)
		}
	}
}

// newPolicy builds a fresh policy instance for one host.
func (c *Cluster) newPolicy() vswitch.Policy {
	switch c.cfg.Scheme {
	case Presto:
		if c.cfg.FlowcellBytes > 0 {
			return vswitch.NewPrestoThreshold(c.cfg.FlowcellBytes)
		}
		return vswitch.NewPresto()
	case Flowlet:
		return vswitch.NewFlowlet(c.cfg.FlowletGap)
	case PrestoECMP:
		return vswitch.NewPrestoECMP()
	case PerPacket:
		return vswitch.NewPerPacket()
	default: // ECMP, MPTCP
		return vswitch.NewECMP(c.rng.Fork())
	}
}

// tcpConfig returns the per-connection transport config for the
// scheme.
func (c *Cluster) tcpConfig() tcp.Config {
	cfg := c.cfg.TCP
	if c.cfg.Scheme == PerPacket {
		// TSO off: the stack hands down MSS-sized writes.
		cfg.MSS = packet.MSS
		cfg.MaxSeg = packet.MSS
	}
	if c.cfg.FlowcellBytes > 0 && c.cfg.FlowcellBytes < packet.MaxSegSize {
		// Algorithm 1 assigns whole skbs to flowcells, so a smaller
		// flowcell requires capping the TSO write size to match.
		cfg.MaxSeg = c.cfg.FlowcellBytes
	}
	cfg.RecordFlowcells = c.cfg.RecordFlowcells
	return cfg
}

// FailLink fails a link in the fabric and notifies the controller.
func (c *Cluster) FailLink(id topo.LinkID) {
	c.Net.FailLink(id)
	c.Ctrl.HandleLinkFailure(id)
}

// RestoreLink restores a link and notifies the controller.
func (c *Cluster) RestoreLink(id topo.LinkID) {
	c.Net.RestoreLink(id)
	c.Ctrl.HandleLinkRestore(id)
}

// RNG returns a forked random stream (deterministic per call order).
func (c *Cluster) RNG() *sim.RNG { return c.rng.Fork() }

// tap interposes a capture callback before a NIC.
type tap struct {
	eng  *sim.Engine
	next fabric.Handler
	fn   func(at sim.Time, p *packet.Packet)
}

func (t *tap) HandlePacket(p *packet.Packet) {
	t.fn(t.eng.Now(), p)
	t.next.HandlePacket(p)
}

// TapHost inserts a packet-capture callback in front of host h's NIC:
// every packet delivered to the host is reported (with its arrival
// time) before normal processing. Multiple taps stack.
func (c *Cluster) TapHost(h packet.HostID, fn func(at sim.Time, p *packet.Packet)) {
	var next fabric.Handler = c.Hosts[h].NIC
	if t, ok := c.taps[h]; ok {
		next = t
	}
	t := &tap{eng: c.Eng, next: next, fn: fn}
	c.taps[h] = t
	c.Net.AttachHost(h, t)
}

// Conns returns every connection opened on this cluster.
func (c *Cluster) Conns() []*Conn { return c.conns }

func (c *Cluster) allocPort() uint16 {
	p := c.nextPort
	c.nextPort++
	if c.nextPort < 10000 {
		c.nextPort = 10000
	}
	return p
}
