// Package cluster assembles a whole emulated testbed: a topology's
// fabric, one host per server (vSwitch + NIC + GRO + transport
// endpoints), the central controller, and helpers for opening
// connections, probing RTT, and failing links. This is the layer the
// experiment harness drives.
package cluster

import (
	"fmt"
	"sort"

	"presto/internal/controller"
	"presto/internal/fabric"
	"presto/internal/gro"
	"presto/internal/mptcp"
	"presto/internal/nic"
	"presto/internal/packet"
	"presto/internal/scheme"
	"presto/internal/sim"
	"presto/internal/tcp"
	"presto/internal/telemetry"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

// Scheme names the load-balancing configuration under test (§4): the
// edge policy, the receive-offload algorithm, and the transport. The
// value is a registry name from internal/scheme — any registered
// scheme works, the constants below are the paper's lineup. The
// zero value selects ECMP.
type Scheme string

const (
	// ECMP pins each flow to one random end-to-end path (the paper's
	// ECMP baseline), with official GRO.
	ECMP Scheme = "ecmp"
	// MPTCP runs 8 subflows per connection, each ECMP-pinned, with
	// coupled congestion control and official GRO.
	MPTCP Scheme = "mptcp"
	// Presto sprays 64 KB flowcells round-robin over shadow-MAC
	// spanning trees with Presto GRO at receivers.
	Presto Scheme = "presto"
	// Flowlet switches paths at inactivity gaps (see Config.FlowletGap)
	// with official GRO.
	Flowlet Scheme = "flowlet"
	// PrestoECMP stamps flowcells but lets switches hash them per hop
	// (Figure 14's comparison).
	PrestoECMP Scheme = "presto-ecmp"
	// PerPacket sprays every MTU packet (TSO off) with Presto GRO —
	// the per-packet baseline of §2.1.
	PerPacket Scheme = "per-packet"
)

// GROKind overrides the receive-offload algorithm.
type GROKind int

const (
	// GROAuto picks the scheme's natural handler.
	GROAuto GROKind = iota
	// GROOfficial forces stock GRO.
	GROOfficial
	// GROPresto forces Presto GRO.
	GROPresto
	// GRONone disables receive offload.
	GRONone
	// GROLROOfficial stacks hardware LRO in front of official GRO.
	GROLROOfficial
	// GROLROPresto stacks hardware LRO in front of Presto GRO (§2.2:
	// the hardware stays simple, software handles reordering).
	GROLROPresto
)

// prestoGROOverhead is the extra per-packet CPU cost of Presto GRO's
// multi-segment bookkeeping (calibrated to Figure 6's +6%).
const prestoGROOverhead = 80 * sim.Nanosecond

// Config describes a testbed instance.
type Config struct {
	Topology *topo.Topology
	Scheme   Scheme
	Seed     uint64

	// SchemeParams overrides the scheme's schema defaults (raw values,
	// validated against the registry schema: e.g. {"cell": "32KB"}).
	// The legacy knobs below (FlowletGap, Subflows, FlowcellBytes) fold
	// into the matching schema params when the scheme has them;
	// SchemeParams wins on conflict.
	SchemeParams map[string]string

	GRO        GROKind
	GROConfig  gro.PrestoConfig
	FlowletGap sim.Time // inactivity gap for Flowlet (default 500 µs)
	Subflows   int      // MPTCP subflows (default 8)
	// FlowcellBytes overrides the Presto policy's flowcell size
	// (default 64 KB, the max TSO segment) — the granularity ablation.
	FlowcellBytes int

	TCP    tcp.Config
	NIC    nic.Config
	Fabric fabric.Config
	Ctrl   controller.Config

	// RecordFlowcells enables per-receiver flowcell arrival logs
	// (Figure 5a).
	RecordFlowcells bool

	// Shards partitions the fabric into per-pod shards, each running
	// its own engine on its own goroutine with conservative lookahead
	// synchronization (the lookahead is the minimum propagation delay
	// across inter-pod links). Results are bit-identical to the serial
	// engine. 0 or 1 selects the serial engine; values above the
	// topology's pod count are capped. Sharded clusters reject
	// Telemetry, link failures, and Probers: those paths mutate or
	// read cross-shard state mid-run.
	Shards int

	// Telemetry, when non-nil, wires the registry's tracer through every
	// component, registers snapshot probes, and starts the fabric link
	// monitor. Nil (the default) leaves the whole layer off.
	Telemetry *telemetry.Registry
	// MonitorInterval overrides the link monitor's sampling period
	// (default fabric.DefaultMonitorInterval). Only used with Telemetry.
	MonitorInterval sim.Time
}

// Host is one server: its edge datapath and interface.
type Host struct {
	ID  packet.HostID
	VS  *vswitch.VSwitch
	NIC *nic.NIC
}

// Cluster is a running testbed.
type Cluster struct {
	// Eng is the single engine in serial mode; nil when sharded. Use
	// Run/RunAll/Now/StopRun to drive the cluster in either mode.
	Eng   *sim.Engine
	Topo  *topo.Topology
	Net   *fabric.Network
	Ctrl  *controller.Controller
	Hosts []*Host

	// group synchronizes the per-pod shard engines (nil when serial).
	group *sim.ShardGroup

	cfg      Config
	rng      *sim.RNG
	nextPort uint16
	conns    []*Conn
	taps     map[packet.HostID]*tap
	mon      *fabric.Monitor

	// Registry-resolved scheme state.
	def       *scheme.Scheme
	params    scheme.Resolved
	transport scheme.Transport
}

// New builds and wires a testbed. The controller's label state is
// installed immediately (the paper's preemptive push).
func New(cfg Config) *Cluster {
	if cfg.Topology == nil {
		panic("cluster: Config.Topology required")
	}
	if cfg.Scheme == "" {
		cfg.Scheme = ECMP
	}
	if cfg.Subflows == 0 {
		cfg.Subflows = mptcp.DefaultSubflows
	}
	if cfg.FlowletGap == 0 {
		cfg.FlowletGap = 500 * sim.Microsecond
	}
	c := &Cluster{
		Topo:     cfg.Topology,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15),
		nextPort: 10000,
		taps:     make(map[packet.HostID]*tap),
	}
	c.resolveScheme()
	if cfg.Ctrl.TreeWeights == nil {
		cfg.Ctrl.TreeWeights = c.def.Hooks.TreeWeights
		cfg.Ctrl.WeightSlots = c.def.Hooks.WeightSlots
		c.cfg.Ctrl = cfg.Ctrl
	}
	shards := cfg.Shards
	if shards > cfg.Topology.NumPods {
		shards = cfg.Topology.NumPods
	}
	if shards > 1 {
		if cfg.Telemetry != nil {
			panic("cluster: Telemetry requires Shards <= 1 (tracer state is cross-shard)")
		}
		shardOf, lookahead := shardPartition(cfg.Topology, shards)
		c.group = sim.NewShardGroup(shards, lookahead, cfg.Seed)
		c.Net = fabric.NewSharded(c.group, shardOf, cfg.Topology, cfg.Fabric)
	} else {
		c.Eng = sim.NewEngine()
		c.Net = fabric.New(c.Eng, cfg.Topology, cfg.Fabric)
	}
	// The controller only runs at install time and on link failures;
	// both are sequential-phase paths, so any engine's clock serves.
	c.Ctrl = controller.New(c.ctrlEngine(), c.Net, cfg.Ctrl)

	for i := 0; i < cfg.Topology.NumHosts(); i++ {
		h := packet.HostID(i)
		eng := c.engOf(h)
		vs := vswitch.New(eng, h, nil, c.newPolicy(h))
		nicCfg := cfg.NIC
		nicCfg.CPU.HandlerOverhead = 0
		kind := c.groKind()
		if kind == GROPresto || kind == GROLROPresto {
			base := nic.DefaultCPUConfig()
			if nicCfg.CPU != (nic.CPUConfig{}) {
				base = nicCfg.CPU
			}
			base.HandlerOverhead = prestoGROOverhead
			nicCfg.CPU = base
		}
		n := nic.New(eng, c.Net, h, vs, c.makeGRO(kind, eng), nicCfg)
		vs.SetSender(n)
		c.Net.AttachHost(h, n)
		c.Ctrl.RegisterVSwitch(vs)
		c.Hosts = append(c.Hosts, &Host{ID: h, VS: vs, NIC: n})
	}
	c.Ctrl.InstallAll()
	c.wireTelemetry()
	return c
}

// shardPartition maps every node to a shard (pod p → shard p mod
// count; pod-less core/spine nodes round-robin) and returns the
// conservative lookahead: the minimum propagation delay over links
// whose endpoints land on different shards.
func shardPartition(t *topo.Topology, count int) ([]int32, sim.Time) {
	shardOf := make([]int32, len(t.Nodes))
	rr := 0
	for id := range t.Nodes {
		if p := t.PodOf(topo.NodeID(id)); p >= 0 {
			shardOf[id] = int32(p % count)
		} else {
			shardOf[id] = int32(rr % count)
			rr++
		}
	}
	lookahead := sim.Time(0)
	for _, l := range t.Links {
		if shardOf[l.A] == shardOf[l.B] {
			continue
		}
		if lookahead == 0 || l.Propagation < lookahead {
			lookahead = l.Propagation
		}
	}
	if lookahead <= 0 {
		// Fully partitioned shards never exchange events; any positive
		// lookahead keeps the group windows legal.
		lookahead = 1
	}
	return shardOf, lookahead
}

// ctrlEngine picks the engine whose clock stamps controller actions.
func (c *Cluster) ctrlEngine() *sim.Engine {
	if c.group != nil {
		return c.group.Shard(0)
	}
	return c.Eng
}

// engOf returns the engine host h's edge components run on.
func (c *Cluster) engOf(h packet.HostID) *sim.Engine {
	return c.Net.EngineFor(c.Topo.HostNode(h))
}

// Group returns the shard group driving a sharded cluster (nil when
// serial).
func (c *Cluster) Group() *sim.ShardGroup { return c.group }

// Shards returns the number of engine shards (1 when serial).
func (c *Cluster) Shards() int {
	if c.group != nil {
		return c.group.Shards()
	}
	return 1
}

// Run advances simulated time to until in either mode and returns the
// new clock.
func (c *Cluster) Run(until sim.Time) sim.Time {
	if c.group != nil {
		return c.group.Run(until)
	}
	return c.Eng.Run(until)
}

// RunAll drains every pending event in either mode.
func (c *Cluster) RunAll() sim.Time {
	if c.group != nil {
		return c.group.RunAll()
	}
	return c.Eng.RunAll()
}

// Now returns the cluster's simulated clock.
func (c *Cluster) Now() sim.Time {
	if c.group != nil {
		return c.group.Now()
	}
	return c.Eng.Now()
}

// StopRun halts the in-progress Run from any goroutine (at the next
// window barrier when sharded).
func (c *Cluster) StopRun() {
	if c.group != nil {
		c.group.Stop()
		return
	}
	c.Eng.Stop()
}

// Executed returns the number of events executed across all engines.
func (c *Cluster) Executed() uint64 {
	if c.group != nil {
		return c.group.Executed()
	}
	return c.Eng.Executed
}

// resolveScheme looks the configured scheme up in the registry and
// resolves its parameters: schema defaults, overlaid with the legacy
// Config knobs when the schema has the matching param, overlaid with
// SchemeParams. Config errors panic — New has no error return, and
// front-ends validate specs via scheme.ParseSpec before building.
func (c *Cluster) resolveScheme() {
	def, err := scheme.Get(string(c.cfg.Scheme))
	if err != nil {
		panic("cluster: " + err.Error())
	}
	vals := make(map[string]string)
	if c.cfg.FlowletGap > 0 && def.HasParam("gap") {
		vals["gap"] = c.cfg.FlowletGap.AsDuration().String()
	}
	if c.cfg.FlowcellBytes > 0 && def.HasParam("cell") {
		vals["cell"] = fmt.Sprintf("%d", c.cfg.FlowcellBytes)
	}
	if c.cfg.Subflows > 0 && def.HasParam("subflows") {
		vals["subflows"] = fmt.Sprintf("%d", c.cfg.Subflows)
	}
	keys := make([]string, 0, len(c.cfg.SchemeParams))
	for k := range c.cfg.SchemeParams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals[k] = c.cfg.SchemeParams[k]
	}
	params, err := def.Resolve(vals)
	if err != nil {
		panic("cluster: " + err.Error())
	}
	c.def, c.params = def, params
	c.transport = def.TransportFor(params)
}

// SchemeInfo returns the resolved registry descriptor driving this
// cluster.
func (c *Cluster) SchemeInfo() *scheme.Scheme { return c.def }

// groKind resolves the effective GRO algorithm.
func (c *Cluster) groKind() GROKind {
	if c.cfg.GRO != GROAuto {
		return c.cfg.GRO
	}
	if c.def.GRO == scheme.GROPresto {
		return GROPresto
	}
	return GROOfficial
}

func (c *Cluster) makeGRO(kind GROKind, eng *sim.Engine) func(out gro.Output) gro.Handler {
	cfg := c.cfg.GROConfig
	return func(out gro.Output) gro.Handler {
		switch kind {
		case GROPresto:
			return gro.NewPresto(eng, out, cfg)
		case GRONone:
			return gro.NewNone(eng, out)
		case GROLROOfficial:
			return gro.NewLRO(eng, gro.NewOfficial(eng, out))
		case GROLROPresto:
			return gro.NewLRO(eng, gro.NewPresto(eng, out, cfg))
		default:
			return gro.NewOfficial(eng, out)
		}
	}
}

// newPolicy builds a fresh policy instance for one host via the
// scheme registry. The Fork closure is lazy: only constructors that
// need randomness draw from the cluster stream, so schemes that never
// forked before the registry existed still don't — keeping RNG
// consumption order (and every downstream fork) byte-identical.
func (c *Cluster) newPolicy(h packet.HostID) vswitch.Policy {
	return c.def.New(scheme.Host{
		ID:   h,
		Fork: func() *sim.RNG { return c.rng.Fork() },
	}, c.params)
}

// tcpConfig returns the per-connection transport config for the
// scheme.
func (c *Cluster) tcpConfig() tcp.Config {
	cfg := c.cfg.TCP
	if c.transport.MSSWrites {
		// TSO off: the stack hands down MSS-sized writes.
		cfg.MSS = packet.MSS
	}
	if c.transport.MaxSeg > 0 && c.transport.MaxSeg < packet.MaxSegSize {
		cfg.MaxSeg = c.transport.MaxSeg
	}
	if c.cfg.FlowcellBytes > 0 && c.cfg.FlowcellBytes < packet.MaxSegSize {
		// Algorithm 1 assigns whole skbs to flowcells, so a smaller
		// flowcell requires capping the TSO write size to match.
		cfg.MaxSeg = c.cfg.FlowcellBytes
	}
	cfg.RecordFlowcells = c.cfg.RecordFlowcells
	return cfg
}

// FailLink fails a link in the fabric and notifies the controller.
// Serial clusters only: the controller's deferred label push would
// mutate switch tables on every shard mid-run.
func (c *Cluster) FailLink(id topo.LinkID) {
	if c.group != nil {
		panic("cluster: FailLink requires Shards <= 1")
	}
	c.Net.FailLink(id)
	c.Ctrl.HandleLinkFailure(id)
}

// RestoreLink restores a link and notifies the controller. Serial
// clusters only, like FailLink.
func (c *Cluster) RestoreLink(id topo.LinkID) {
	if c.group != nil {
		panic("cluster: RestoreLink requires Shards <= 1")
	}
	c.Net.RestoreLink(id)
	c.Ctrl.HandleLinkRestore(id)
}

// RNG returns a forked random stream (deterministic per call order).
func (c *Cluster) RNG() *sim.RNG { return c.rng.Fork() }

// tap interposes a capture callback before a NIC.
type tap struct {
	eng  *sim.Engine
	next fabric.Handler
	fn   func(at sim.Time, p *packet.Packet)
}

func (t *tap) HandlePacket(p *packet.Packet) {
	t.fn(t.eng.Now(), p)
	t.next.HandlePacket(p)
}

// TapHost inserts a packet-capture callback in front of host h's NIC:
// every packet delivered to the host is reported (with its arrival
// time) before normal processing. Multiple taps stack.
func (c *Cluster) TapHost(h packet.HostID, fn func(at sim.Time, p *packet.Packet)) {
	var next fabric.Handler = c.Hosts[h].NIC
	if t, ok := c.taps[h]; ok {
		next = t
	}
	t := &tap{eng: c.engOf(h), next: next, fn: fn}
	c.taps[h] = t
	c.Net.AttachHost(h, t)
}

// Conns returns every connection opened on this cluster.
func (c *Cluster) Conns() []*Conn { return c.conns }

func (c *Cluster) allocPort() uint16 {
	p := c.nextPort
	c.nextPort++
	if c.nextPort < 10000 {
		c.nextPort = 10000
	}
	return p
}
