package cluster

import (
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
)

func TestGROOverrideOfficialWithPrestoSpray(t *testing.T) {
	// The Figure 5 configuration: Presto spraying but stock GRO.
	c := New(Config{
		Topology: clos(2, 2, 2), Scheme: Presto, Seed: 21,
		GRO: GROOfficial, RecordFlowcells: true,
	})
	conn := c.Dial(0, 2)
	conn.SetUnlimited(true)
	// A competing flow creates the path-skew that reorders flowcells.
	conn2 := c.Dial(1, 3)
	conn2.SetUnlimited(true)
	c.Eng.Run(30 * sim.Millisecond)
	if conn.Delivered() == 0 {
		t.Fatal("no progress")
	}
	// Official GRO must leak reordering under spraying.
	leaked := 0
	for _, n := range conn.Receiver().OutOfOrderCounts() {
		leaked += n
	}
	if leaked == 0 {
		t.Fatal("official GRO showed no reordering under flowcell spraying")
	}
}

func TestPerPacketSchemeCompletes(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 1), Scheme: PerPacket, Seed: 22})
	conn := c.Dial(0, 1)
	conn.Write(500_000)
	c.Eng.RunAll()
	if conn.Delivered() != 500_000 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
	// TSO off: the NIC only ever saw MSS-sized writes.
	if c.Hosts[0].NIC.Stats.TxSegments < c.Hosts[0].NIC.Stats.TxPackets {
		t.Fatal("per-packet scheme sent multi-packet TSO segments")
	}
}

func TestMPTCPMiceComplete(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 2), Scheme: MPTCP, Seed: 23})
	var fct sim.Time
	conn := c.Dial(0, 2)
	conn.OnDelivered = func(total uint64) {
		if total >= 50_000 {
			conn.WriteReverse(100)
		}
	}
	conn.OnReverseDelivered = func(total uint64) {
		if total >= 100 && fct == 0 {
			fct = c.Eng.Now()
		}
	}
	conn.Write(50_000)
	c.Eng.RunAll()
	if fct == 0 {
		t.Fatal("MPTCP mouse never completed")
	}
}

func TestWeightedMappingDistribution(t *testing.T) {
	// Push a duplicated label list (weights 1/2, 1/4, 1/4) and verify
	// the fabric sees that split.
	c := New(Config{Topology: clos(4, 2, 1), Scheme: Presto, Seed: 24})
	p0 := packet.ShadowMAC(1, 0)
	p1 := packet.ShadowMAC(1, 1)
	p2 := packet.ShadowMAC(1, 2)
	c.Hosts[0].VS.SetMapping(1, []packet.MAC{p0, p1, p0, p2})
	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	c.Eng.Run(30 * sim.Millisecond)

	rx := make(map[int]uint64)
	for i, s := range c.Topo.Spines {
		rx[i] = c.Net.Switch(s).RxPackets
	}
	total := rx[0] + rx[1] + rx[2] + rx[3]
	if total == 0 {
		t.Fatal("no fabric traffic")
	}
	frac0 := float64(rx[0]) / float64(total)
	if frac0 < 0.40 || frac0 > 0.60 {
		t.Fatalf("weighted tree 0 carried %.2f of traffic, want ~0.5", frac0)
	}
	if rx[3] != 0 {
		t.Fatalf("unmapped tree 3 carried %d packets", rx[3])
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() (uint64, uint64) {
		c := New(Config{Topology: clos(2, 2, 2), Scheme: Presto, Seed: 99})
		a := c.Dial(0, 2)
		b := c.Dial(1, 3)
		a.SetUnlimited(true)
		b.SetUnlimited(true)
		c.Eng.Run(25 * sim.Millisecond)
		return a.Delivered(), b.Delivered()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) uint64 {
		c := New(Config{Topology: clos(2, 2, 2), Scheme: ECMP, Seed: seed})
		a := c.Dial(0, 2)
		a.SetUnlimited(true)
		c.Eng.Run(10 * sim.Millisecond)
		return c.Net.Switch(c.Topo.Spines[0]).RxPackets
	}
	same := 0
	for seed := uint64(0); seed < 6; seed++ {
		if run(seed) == run(seed+100) {
			same++
		}
	}
	// ECMP path choice is random per seed; at least some pairs must
	// differ.
	if same == 6 {
		t.Fatal("ECMP path selection ignores the seed")
	}
}

func TestFlowcellThresholdOverride(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 1), Scheme: Presto, Seed: 25, FlowcellBytes: 16 << 10})
	conn := c.Dial(0, 1)
	conn.Write(1 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 1<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
	// 1 MB at 16 KB per flowcell: at least ~60 flowcell transitions.
	if got := c.Hosts[0].VS.Stats.Flowcells; got < 50 {
		t.Fatalf("only %d flowcell transitions with a 16KB threshold", got)
	}
}

func TestOptimalBaselineBeatsNothing(t *testing.T) {
	// Sanity: a single-switch cluster with ECMP scheme has zero shadow
	// rewrites (no labels exist).
	c := New(Config{Topology: topo.SingleSwitch(4, topo.LinkConfig{}), Scheme: ECMP, Seed: 26})
	conn := c.Dial(0, 1)
	conn.Write(100_000)
	c.Eng.RunAll()
	if c.Hosts[0].VS.Stats.MACRewrites != 0 {
		t.Fatal("labels used on a single switch")
	}
}

func TestPrestoOverTunnelMode(t *testing.T) {
	cfg := Config{Topology: clos(4, 4, 1), Scheme: Presto, Seed: 31}
	cfg.Ctrl.TunnelMode = true
	c := New(cfg)
	conn := c.Dial(0, 2)
	conn.Write(4 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 4<<20 {
		t.Fatalf("delivered %d over tunnels", conn.Delivered())
	}
	// All spines carried flowcells.
	for _, s := range c.Topo.Spines {
		if c.Net.Switch(s).RxPackets == 0 {
			t.Fatal("tunnel spraying missed a spine")
		}
	}
	if conn.Sender().Stats.Timeouts != 0 {
		t.Fatalf("timeouts over tunnels: %+v", conn.Sender().Stats)
	}
}

func TestTunnelModeFailover(t *testing.T) {
	cfg := Config{Topology: clos(2, 2, 1), Scheme: Presto, Seed: 32}
	cfg.Ctrl.TunnelMode = true
	c := New(cfg)
	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	c.Eng.Run(20 * sim.Millisecond)
	before := conn.Delivered()
	bad := c.Ctrl.Trees()[0].LeafLink[c.Topo.Leaves[0]]
	c.FailLink(bad)
	c.Eng.Run(300 * sim.Millisecond)
	if conn.Delivered() <= before {
		t.Fatal("tunnel-mode traffic died after failure")
	}
}

func TestPrestoOverThreeTier(t *testing.T) {
	// Full stack over a 3-tier fabric: flowcell spraying across cores,
	// Presto GRO masking, lossless completion.
	c := New(Config{
		Topology:        topo.ThreeTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:          Presto,
		Seed:            51,
		RecordFlowcells: true,
	})
	// Host 0 (pod 1) -> host 2 (pod 2): cross-pod, 5 hops.
	conn := c.Dial(0, 2)
	conn.Write(4 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 4<<20 {
		t.Fatalf("delivered %d over 3-tier", conn.Delivered())
	}
	// Both cores carried traffic (flowcells sprayed over both trees).
	for _, core := range c.Topo.Cores {
		if c.Net.Switch(core).RxPackets == 0 {
			t.Fatal("a core carried nothing — 3-tier spraying broken")
		}
	}
	for _, n := range conn.Receiver().OutOfOrderCounts() {
		if n != 0 {
			t.Fatalf("reordering leaked on 3-tier: %v", conn.Receiver().OutOfOrderCounts())
		}
	}
	if conn.Sender().Stats.Timeouts != 0 {
		t.Fatalf("timeouts: %+v", conn.Sender().Stats)
	}
}

func TestECMPOverThreeTier(t *testing.T) {
	c := New(Config{
		Topology: topo.ThreeTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   ECMP,
		Seed:     52,
	})
	conn := c.Dial(0, 3)
	conn.Write(1 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 1<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
}

func TestThreeTierSamePodStaysLocal(t *testing.T) {
	c := New(Config{
		Topology: topo.ThreeTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   Presto,
		Seed:     53,
	})
	// Hosts 0 and 1 are in the same pod but different leaves: traffic
	// crosses aggs, never cores.
	conn := c.Dial(0, 1)
	conn.Write(1 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 1<<20 {
		t.Fatalf("delivered %d", conn.Delivered())
	}
	for _, core := range c.Topo.Cores {
		if c.Net.Switch(core).RxPackets != 0 {
			t.Fatal("same-pod traffic crossed a core")
		}
	}
}

func TestThreeTierElephantNearLineRate(t *testing.T) {
	c := New(Config{
		Topology: topo.ThreeTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   Presto,
		Seed:     54,
	})
	conn := c.Dial(0, 2)
	conn.SetUnlimited(true)
	const dur = 60 * sim.Millisecond
	c.Eng.Run(dur)
	gbps := float64(conn.Delivered()) * 8 / dur.Seconds() / 1e9
	if gbps < 8 {
		t.Fatalf("3-tier presto elephant at %.2f Gbps", gbps)
	}
}

func TestPrestoOverLROStack(t *testing.T) {
	// Hardware LRO in front of Presto GRO: spraying still masked.
	c := New(Config{
		Topology: clos(4, 4, 1), Scheme: Presto, Seed: 61,
		GRO: GROLROPresto, RecordFlowcells: true,
	})
	conn := c.Dial(0, 2)
	conn.Write(4 << 20)
	c.Eng.RunAll()
	if conn.Delivered() != 4<<20 {
		t.Fatalf("delivered %d over LRO stack", conn.Delivered())
	}
	for _, n := range conn.Receiver().OutOfOrderCounts() {
		if n != 0 {
			t.Fatal("LRO+Presto GRO leaked reordering")
		}
	}
}

func TestGammaParallelLinks(t *testing.T) {
	// gamma=2 parallel links per spine-leaf pair: the controller
	// allocates 2x trees and Presto sprays over all of them.
	c := New(Config{
		Topology: topo.TwoTierClos(2, 2, 1, 2, topo.LinkConfig{}),
		Scheme:   Presto,
		Seed:     62,
	})
	if got := len(c.Ctrl.Trees()); got != 4 {
		t.Fatalf("gamma=2 allocated %d trees, want 4", got)
	}
	conn := c.Dial(0, 1)
	conn.SetUnlimited(true)
	c.Eng.Run(20 * sim.Millisecond)
	if conn.Delivered() == 0 {
		t.Fatal("no progress with parallel links")
	}
	// Both parallel links of each spine-leaf pair carry traffic.
	for _, s := range c.Topo.Spines {
		for _, leaf := range c.Topo.Leaves {
			for _, lid := range c.Topo.SpineLeafLinks(s, leaf) {
				fwd := c.Net.Pipe(lid, s).TxPackets + c.Net.Pipe(lid, leaf).TxPackets
				if fwd == 0 {
					t.Fatalf("parallel link %d idle", lid)
				}
			}
		}
	}
}

func TestHandshakeModeAddsRTTToMice(t *testing.T) {
	run := func(handshake bool) sim.Time {
		cfg := Config{Topology: clos(4, 4, 1), Scheme: Presto, Seed: 71}
		cfg.TCP.Handshake = handshake
		c := New(cfg)
		conn := c.Dial(0, 2)
		var fct sim.Time
		conn.OnDelivered = func(total uint64) {
			if total >= 50_000 {
				conn.WriteReverse(100)
			}
		}
		conn.OnReverseDelivered = func(total uint64) {
			if total >= 100 && fct == 0 {
				fct = c.Eng.Now()
			}
		}
		conn.Write(50_000)
		c.Eng.RunAll()
		return fct
	}
	warm := run(false)
	cold := run(true)
	if warm == 0 || cold == 0 {
		t.Fatal("mice never completed")
	}
	if cold <= warm {
		t.Fatalf("handshake FCT %v <= warm %v", cold, warm)
	}
	// The cold start costs roughly one extra RTT (tens of us here),
	// not an RTO.
	if cold-warm > 5*sim.Millisecond {
		t.Fatalf("handshake added %v — smells like a timeout", cold-warm)
	}
}
