package cluster

import (
	"presto/internal/metrics"
	"presto/internal/mptcp"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/tcp"
)

// Conn is an application-level connection from Src to Dst over the
// scheme's transport (plain TCP or MPTCP). The reverse direction
// carries ACKs and application responses (the paper's app-level
// acknowledgement for mice FCTs).
type Conn struct {
	c        *Cluster
	Src, Dst packet.HostID

	// Plain-TCP endpoints (nil when MPTCP).
	fwd *tcp.Endpoint // at Src: sends request data
	rev *tcp.Endpoint // at Dst: sends responses

	// MPTCP halves (nil when plain TCP).
	msend *mptcp.Sender
	mrecv *mptcp.Receiver
	mfwd  []*tcp.Endpoint // src-side subflow endpoints
	mrev  []*tcp.Endpoint // dst-side subflow endpoints

	flows []packet.FlowKey // forward flow key(s), for unregistering

	// OnDelivered fires at the destination as request bytes arrive
	// in order (connection total).
	OnDelivered func(total uint64)
	// OnReverseDelivered fires at the source as response bytes arrive.
	OnReverseDelivered func(total uint64)

	OpenedAt sim.Time
}

// Dial opens a connection between two hosts using the cluster's
// scheme.
func (c *Cluster) Dial(src, dst packet.HostID) *Conn {
	conn := &Conn{c: c, Src: src, Dst: dst, OpenedAt: c.Now()}
	cfg := c.tcpConfig()
	// Each endpoint runs on the engine of the host that owns it, so a
	// sharded cluster keeps every endpoint's timers shard-local.
	srcEng, dstEng := c.engOf(src), c.engOf(dst)
	// Endpoint trace events are attributed to the host whose stack runs
	// the endpoint: the forward sender lives at src, the reverse at dst.
	fwdCfg, revCfg := cfg, cfg
	fwdCfg.Tracer = c.cfg.Telemetry.Tracer()
	fwdCfg.TraceHost = int32(src)
	revCfg.Tracer = fwdCfg.Tracer
	revCfg.TraceHost = int32(dst)
	srcVS, dstVS := c.Hosts[src].VS, c.Hosts[dst].VS

	if c.transport.Subflows > 1 {
		for i := 0; i < c.transport.Subflows; i++ {
			f := packet.FlowKey{
				Src: packet.Addr{Host: src, Port: c.allocPort()},
				Dst: packet.Addr{Host: dst, Port: 5001},
			}
			fe := tcp.New(srcEng, f, srcVS, fwdCfg)
			re := tcp.New(dstEng, f.Reverse(), dstVS, revCfg)
			srcVS.Register(f, fe)
			dstVS.Register(f.Reverse(), re)
			conn.mfwd = append(conn.mfwd, fe)
			conn.mrev = append(conn.mrev, re)
			conn.flows = append(conn.flows, f)
		}
		conn.msend = mptcp.NewSender(srcEng, conn.mfwd)
		conn.mrecv = mptcp.NewReceiver(conn.mrev)
		conn.mrecv.OnDelivered = func(total uint64) {
			if conn.OnDelivered != nil {
				conn.OnDelivered(total)
			}
		}
		// Responses ride subflow 0's reverse direction.
		conn.mfwd[0].OnDelivered = func(total uint64) {
			if conn.OnReverseDelivered != nil {
				conn.OnReverseDelivered(total)
			}
		}
	} else {
		f := packet.FlowKey{
			Src: packet.Addr{Host: src, Port: c.allocPort()},
			Dst: packet.Addr{Host: dst, Port: 5001},
		}
		conn.fwd = tcp.New(srcEng, f, srcVS, fwdCfg)
		conn.rev = tcp.New(dstEng, f.Reverse(), dstVS, revCfg)
		srcVS.Register(f, conn.fwd)
		dstVS.Register(f.Reverse(), conn.rev)
		conn.flows = append(conn.flows, f)
		conn.rev.OnDelivered = func(total uint64) {
			if conn.OnDelivered != nil {
				conn.OnDelivered(total)
			}
		}
		conn.fwd.OnDelivered = func(total uint64) {
			if conn.OnReverseDelivered != nil {
				conn.OnReverseDelivered(total)
			}
		}
	}
	c.conns = append(c.conns, conn)
	return conn
}

// Write queues n request bytes at the source.
func (conn *Conn) Write(n int) {
	if conn.msend != nil {
		conn.msend.Write(n)
		return
	}
	conn.fwd.Write(n)
}

// WriteReverse queues n response bytes at the destination (the
// application-level acknowledgement).
func (conn *Conn) WriteReverse(n int) {
	if conn.mrev != nil {
		conn.mrev[0].Write(n)
		return
	}
	conn.rev.Write(n)
}

// SetUnlimited makes the forward direction an elephant.
func (conn *Conn) SetUnlimited(on bool) {
	if conn.msend != nil {
		conn.msend.SetUnlimited(on)
		return
	}
	conn.fwd.SetUnlimited(on)
}

// Delivered returns request bytes delivered in order at Dst.
func (conn *Conn) Delivered() uint64 {
	if conn.mrecv != nil {
		return conn.mrecv.Delivered()
	}
	return conn.rev.Delivered()
}

// Acked returns request bytes acknowledged at Src.
func (conn *Conn) Acked() uint64 {
	if conn.msend != nil {
		return conn.msend.Acked()
	}
	return conn.fwd.Acked()
}

// Done reports whether all written request bytes are acknowledged.
func (conn *Conn) Done() bool {
	if conn.msend != nil {
		return conn.msend.Done()
	}
	return conn.fwd.Done()
}

// SetProbe marks the connection's traffic as latency probes
// (single-packet sockperf-style measurements that bypass GRO
// merging). Plain-TCP connections only.
func (conn *Conn) SetProbe() {
	if conn.fwd != nil {
		conn.fwd.Probe = true
	}
	if conn.rev != nil {
		conn.rev.Probe = true
	}
}

// Receiver returns the destination-side endpoint of a plain-TCP
// connection (instrumentation access: flowcell logs, stats).
func (conn *Conn) Receiver() *tcp.Endpoint { return conn.rev }

// Sender returns the source-side endpoint of a plain-TCP connection.
func (conn *Conn) Sender() *tcp.Endpoint { return conn.fwd }

// Subflows returns the MPTCP sender subflows (nil for plain TCP).
func (conn *Conn) Subflows() []*tcp.Endpoint { return conn.mfwd }

// SenderTimeouts returns RTO fires across the forward direction.
func (conn *Conn) SenderTimeouts() uint64 {
	if conn.msend != nil {
		var t uint64
		for _, e := range conn.mfwd {
			t += e.Stats.Timeouts
		}
		return t
	}
	return conn.fwd.Stats.Timeouts
}

// Flows returns the forward flow key(s) of the connection (one for
// TCP, one per subflow for MPTCP).
func (conn *Conn) Flows() []packet.FlowKey { return conn.flows }

// Close unregisters the connection's flows from both edge tables.
func (conn *Conn) Close() {
	for _, f := range conn.flows {
		conn.c.Hosts[conn.Src].VS.Unregister(f)
		conn.c.Hosts[conn.Dst].VS.Unregister(f.Reverse())
	}
}

// Prober measures RTT sockperf-style: a 64-byte ping over a dedicated
// TCP connection, answered by a 64-byte application response; the
// round-trip is one sample. Probes repeat every Interval.
type Prober struct {
	Conn     *Conn
	Interval sim.Time
	Samples  metrics.Dist // milliseconds
	// RTTs and SampleAt record each sample and its completion time in
	// arrival order (Samples re-sorts internally, so stage-windowed
	// analyses like Figure 18 use these parallel slices).
	RTTs     []float64
	SampleAt []sim.Time

	c       *Cluster
	rounds  uint64
	sentAt  sim.Time
	stopped bool
}

// NewProber opens a probe connection between two hosts. Call Start to
// begin probing.
func (c *Cluster) NewProber(src, dst packet.HostID, interval sim.Time) *Prober {
	if c.group != nil {
		// The prober's sample bookkeeping is written from callbacks on
		// both hosts' engines, which may live on different shards.
		panic("cluster: Prober requires Shards <= 1")
	}
	p := &Prober{c: c, Interval: interval}
	p.Conn = c.Dial(src, dst)
	p.Conn.SetProbe()
	p.Conn.OnDelivered = func(total uint64) {
		// Every 64 request bytes completes a ping: answer it.
		if total >= (p.rounds+1)*64 {
			p.Conn.WriteReverse(64)
		}
	}
	p.Conn.OnReverseDelivered = func(total uint64) {
		if total >= (p.rounds+1)*64 {
			p.rounds++
			rtt := sim.Time(c.Eng.Now() - p.sentAt).Milliseconds()
			p.Samples.Add(rtt)
			p.RTTs = append(p.RTTs, rtt)
			p.SampleAt = append(p.SampleAt, c.Eng.Now())
			if !p.stopped {
				c.Eng.Schedule(p.Interval, p.ping)
			}
		}
	}
	return p
}

// Start begins probing now.
func (p *Prober) Start() { p.ping() }

// Stop ends probing after the in-flight round completes.
func (p *Prober) Stop() { p.stopped = true }

func (p *Prober) ping() {
	if p.stopped {
		return
	}
	p.sentAt = p.c.Eng.Now()
	p.Conn.Write(64)
}
