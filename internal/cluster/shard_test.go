package cluster

import (
	"fmt"
	"strings"
	"testing"

	"presto/internal/packet"
	"presto/internal/scheme"
	"presto/internal/telemetry"
	"presto/internal/topo"
)

// podScenarioFingerprint builds a 4-pod 3-tier cluster, drives cross-
// pod elephants plus intra-pod mice, and renders every observable the
// bit-identity contract covers — clocks, event counts, per-connection
// byte counts, aggregate fabric counters, and per-switch forwarding
// counts — into one canonical string.
func podScenarioFingerprint(t *testing.T, scheme Scheme, shards int) string {
	t.Helper()
	tt := topo.ThreeTierClos(4, 2, 2, 2, topo.LinkConfig{})
	c := New(Config{Topology: tt, Scheme: scheme, Seed: 7, Shards: shards})
	n := tt.NumHosts()
	hostsPerPod := n / 4
	var conns []*Conn
	for i := 0; i < n; i++ {
		// Cross-pod transfer: exercises the core tier and, when
		// sharded, the inter-shard handoff path.
		cross := c.Dial(packet.HostID(i), packet.HostID((i+hostsPerPod)%n))
		cross.Write(200 << 10)
		conns = append(conns, cross)
	}
	for i := 0; i+1 < n; i += 4 {
		// Intra-pod mouse: stays inside one shard end to end.
		m := c.Dial(packet.HostID(i), packet.HostID(i+1))
		m.Write(10 << 10)
		conns = append(conns, m)
	}
	c.RunAll()

	var b strings.Builder
	fmt.Fprintf(&b, "now=%v executed=%d delivered=%d drops=%d down=%d hop=%d loss=%g\n",
		c.Now(), c.Executed(), c.Net.TotalDelivered(), c.Net.TotalDrops(),
		c.Net.TotalDropsDown(), c.Net.TotalHopDrops(), c.Net.LossRate())
	for i, cn := range conns {
		fmt.Fprintf(&b, "conn%d acked=%d delivered=%d\n", i, cn.Acked(), cn.Delivered())
	}
	for _, nd := range tt.Nodes {
		if nd.Kind != topo.KindHost {
			fmt.Fprintf(&b, "sw%d rx=%d\n", nd.ID, c.Net.Switch(nd.ID).RxPackets)
		}
	}
	return b.String()
}

// TestShardedClusterMatchesSerial pins the tentpole invariant at the
// full-cluster level: a sharded run must be bit-identical to the
// serial engine — same clocks, same event counts, same per-connection
// and per-switch outcomes — for shard counts that both divide and
// straddle the pod count.
func TestShardedClusterMatchesSerial(t *testing.T) {
	for _, scheme := range []Scheme{Presto, ECMP} {
		want := podScenarioFingerprint(t, scheme, 1)
		for _, shards := range []int{2, 3, 4} {
			got := podScenarioFingerprint(t, scheme, shards)
			if got != want {
				t.Fatalf("%v with %d shards diverged from serial:\nserial:\n%s\nsharded:\n%s",
					scheme, shards, want, got)
			}
		}
	}
}

// TestShardedClusterRejectsCrossShardFacilities pins the guard rails:
// facilities whose state crosses shard boundaries mid-run must refuse
// to build rather than race.
func TestShardedClusterRejectsCrossShardFacilities(t *testing.T) {
	tt := topo.ThreeTierClos(2, 1, 1, 1, topo.LinkConfig{})
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("telemetry", func() {
		New(Config{Topology: tt, Shards: 2, Telemetry: telemetry.NewRegistry(nil)})
	})
	c := New(Config{Topology: tt, Shards: 2})
	if c.Group() == nil || c.Shards() != 2 {
		t.Fatalf("Shards() = %d with group %v, want 2 shards", c.Shards(), c.Group())
	}
	expectPanic("FailLink", func() { c.FailLink(tt.Links[0].ID) })
	expectPanic("Prober", func() { c.NewProber(0, 1, 1000) })
}

// TestShardsCappedAtPods checks that over-asking for shards falls back
// to the pod count instead of spinning up empty engines.
func TestShardsCappedAtPods(t *testing.T) {
	tt := topo.ThreeTierClos(2, 1, 1, 1, topo.LinkConfig{})
	c := New(Config{Topology: tt, Shards: 16})
	if c.Shards() != 2 {
		t.Fatalf("Shards() = %d, want capped at 2 pods", c.Shards())
	}
	one := New(Config{Topology: topo.SingleSwitch(4, topo.LinkConfig{}), Shards: 8})
	if one.Group() != nil || one.Eng == nil {
		t.Fatal("single-pod topology should fall back to the serial engine")
	}
}

// meshScenarioFingerprint drives cross-leaf traffic on a 4-leaf mesh
// (one pod per leaf) and renders the same observables as
// podScenarioFingerprint. The mesh's star trees route every pair
// through hub leaves, so sharded runs exercise inter-shard handoff on
// every transfer.
func meshScenarioFingerprint(t *testing.T, scheme Scheme, shards int) string {
	t.Helper()
	tt := topo.LeafMesh(4, 2, topo.LinkConfig{})
	c := New(Config{Topology: tt, Scheme: scheme, Seed: 11, Shards: shards})
	n := tt.NumHosts()
	var conns []*Conn
	for i := 0; i < n; i++ {
		cross := c.Dial(packet.HostID(i), packet.HostID((i+3)%n))
		cross.Write(100 << 10)
		conns = append(conns, cross)
	}
	c.RunAll()

	var b strings.Builder
	fmt.Fprintf(&b, "now=%v executed=%d delivered=%d drops=%d loss=%g\n",
		c.Now(), c.Executed(), c.Net.TotalDelivered(), c.Net.TotalDrops(), c.Net.LossRate())
	for i, cn := range conns {
		fmt.Fprintf(&b, "conn%d acked=%d delivered=%d\n", i, cn.Acked(), cn.Delivered())
	}
	for _, nd := range tt.Nodes {
		if nd.Kind != topo.KindHost {
			fmt.Fprintf(&b, "sw%d rx=%d\n", nd.ID, c.Net.Switch(nd.ID).RxPackets)
		}
	}
	return b.String()
}

// TestEveryRegisteredSchemeShardsBitIdentical is the registry
// completeness gate: every scheme in the registry — including ones
// added after this test was written — must produce bit-identical
// results serial vs sharded on a small mesh cluster. A scheme that
// breaks the determinism contract fails here by name.
func TestEveryRegisteredSchemeShardsBitIdentical(t *testing.T) {
	for _, name := range scheme.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			want := meshScenarioFingerprint(t, Scheme(name), 1)
			got := meshScenarioFingerprint(t, Scheme(name), 2)
			if got != want {
				t.Fatalf("scheme %s diverged between serial and 2 shards:\nserial:\n%s\nsharded:\n%s",
					name, want, got)
			}
		})
	}
}
