package cluster

import (
	"testing"

	"presto/internal/fabric"
	"presto/internal/sim"
	"presto/internal/tcp"
	"presto/internal/topo"
)

// DCTCP composes with Presto: ECN marking at switch queues plus the
// DCTCP window response keeps buffers shallow (short RTTs) at full
// throughput, while CUBIC fills the deep buffers. This is the
// Presto+DCTCP ablation DESIGN.md lists.

func dctcpCluster(cc string, seed uint64) *Cluster {
	return New(Config{
		Topology: topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   Presto,
		Seed:     seed,
		TCP:      tcp.Config{CC: cc},
		Fabric:   fabric.Config{ECNThresholdBytes: 200 * 1024},
	})
}

func TestDCTCPKeepsThroughput(t *testing.T) {
	c := dctcpCluster("dctcp", 41)
	conn := c.Dial(0, 2)
	conn.SetUnlimited(true)
	const dur = 60 * sim.Millisecond
	c.Eng.Run(dur)
	gbps := float64(conn.Delivered()) * 8 / dur.Seconds() / 1e9
	if gbps < 7.5 {
		t.Fatalf("DCTCP elephant at %.2f Gbps", gbps)
	}
}

func TestDCTCPShortensQueuesVsCubic(t *testing.T) {
	run := func(cc string) float64 {
		c := dctcpCluster(cc, 42)
		// Two senders into one receiver: persistent congestion at the
		// receiver's leaf port.
		a := c.Dial(0, 2)
		b := c.Dial(1, 2)
		a.SetUnlimited(true)
		b.SetUnlimited(true)
		p := c.NewProber(3, 2, sim.Millisecond)
		p.Start()
		c.Eng.Run(80 * sim.Millisecond)
		return p.Samples.Percentile(90)
	}
	cubic := run("cubic")
	dctcp := run("dctcp")
	if dctcp >= cubic {
		t.Fatalf("DCTCP RTT p90 %.3fms >= CUBIC %.3fms — ECN response not shortening queues", dctcp, cubic)
	}
	if dctcp > 0.5 {
		t.Fatalf("DCTCP p90 RTT %.3fms — queues not shallow", dctcp)
	}
}

func TestECNMarkingDisabledByDefault(t *testing.T) {
	c := New(Config{Topology: clos(2, 2, 2), Scheme: Presto, Seed: 43})
	a := c.Dial(0, 2)
	b := c.Dial(1, 2)
	a.SetUnlimited(true)
	b.SetUnlimited(true)
	c.Eng.Run(20 * sim.Millisecond)
	if a.Receiver().Stats.OOOSegments > 1<<30 {
		t.Fatal("unreachable")
	}
	// No threshold configured: no endpoint ever saw a CE mark.
	for _, conn := range []*Conn{a, b} {
		if got := conn.Receiver(); got != nil {
			// CE accounting is internal; assert via the DCTCP echo on a
			// fresh ACK path instead: with marking off, alpha must stay 0
			// on a dctcp endpoint too. Covered implicitly — this test
			// just pins that default-config runs have marking off.
			_ = got
		}
	}
	if c.cfg.Fabric.ECNThresholdBytes != 0 {
		t.Fatal("default fabric config enables ECN")
	}
}
