// Package topo describes static network topologies: the 2-tier Clos
// fabrics the paper evaluates on (Figure 3, Figure 4a, Figure 4b), the
// single non-blocking switch used as the Optimal baseline, plus path
// enumeration and disjoint spanning-tree computation (one tree per
// spine switch × parallel link, §3.1).
//
// A Topology is immutable once built; dynamic state (queues, failures)
// lives in package fabric.
package topo

import (
	"fmt"
	"sync"

	"presto/internal/packet"
	"presto/internal/sim"
)

// NodeKind distinguishes the three roles in a 2-tier Clos.
type NodeKind int

const (
	KindHost NodeKind = iota
	KindLeaf
	KindSpine
)

func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindLeaf:
		return "leaf"
	case KindSpine:
		return "spine"
	}
	return "?"
}

// NodeID indexes Topology.Nodes.
type NodeID int

// LinkID indexes Topology.Links.
type LinkID int

// Node is a host or switch.
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string
	// Host is the host identifier when Kind == KindHost.
	Host packet.HostID
	// Remote marks emulated remote users (north-south endpoints, §6)
	// that workload generators must not treat as servers.
	Remote bool
	// Pod is the node's pod index — the unit the sharded engine
	// partitions the fabric by. Hosts, leaves, and (3-tier) aggs belong
	// to their pod; 2-tier topologies treat each leaf plus its hosts as
	// a pod. Pod is -1 for nodes outside any pod (core switches and
	// 2-tier spines), which the shard map distributes round-robin.
	Pod int
}

// Link is a bidirectional cable between two nodes. The fabric simulates
// each direction with an independent queue.
type Link struct {
	ID          LinkID
	A, B        NodeID
	BitsPerSec  int64    // capacity of each direction
	Propagation sim.Time // one-way propagation + switch pipeline latency
}

// Other returns the endpoint of l that is not n.
func (l Link) Other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// LinkConfig sets speeds and delays for a topology build. Defaults
// (applied by fill) match the paper's testbed: 10 Gbps everywhere.
type LinkConfig struct {
	HostBitsPerSec   int64    // host <-> leaf
	FabricBitsPerSec int64    // leaf <-> spine (and agg <-> leaf in 3-tier)
	HostProp         sim.Time // host-leaf one-way latency
	FabricProp       sim.Time // leaf-spine one-way latency
	// Core link parameters apply to the agg <-> core tier of a 3-tier
	// Clos; zero values inherit the fabric settings. CoreProp is the
	// inter-pod latency — the sharded engine's conservative lookahead —
	// so a longer core propagation buys wider parallel windows.
	CoreBitsPerSec int64
	CoreProp       sim.Time
}

// DefaultLinkConfig matches the testbed: 10 Gbps links, sub-2 µs hops.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		HostBitsPerSec:   10e9,
		FabricBitsPerSec: 10e9,
		HostProp:         500 * sim.Nanosecond,
		FabricProp:       1500 * sim.Nanosecond,
	}
}

func (c *LinkConfig) fill() {
	d := DefaultLinkConfig()
	if c.HostBitsPerSec == 0 {
		c.HostBitsPerSec = d.HostBitsPerSec
	}
	if c.FabricBitsPerSec == 0 {
		c.FabricBitsPerSec = d.FabricBitsPerSec
	}
	if c.HostProp == 0 {
		c.HostProp = d.HostProp
	}
	if c.FabricProp == 0 {
		c.FabricProp = d.FabricProp
	}
	if c.CoreBitsPerSec == 0 {
		c.CoreBitsPerSec = c.FabricBitsPerSec
	}
	if c.CoreProp == 0 {
		c.CoreProp = c.FabricProp
	}
}

// Topology is an immutable graph of nodes and links.
type Topology struct {
	Nodes []Node
	Links []Link

	Hosts  []NodeID // all host nodes, indexed by HostID
	Leaves []NodeID
	Spines []NodeID
	// Aggs and Cores are populated by ThreeTierClos (empty for 2-tier
	// topologies, whose Spines play the root role).
	Aggs  []NodeID
	Cores []NodeID

	// Gamma is the number of parallel links between each spine-leaf
	// pair (γ in the paper).
	Gamma int

	// NumPods is the number of pods the topology partitions into (leaf
	// count for 2-tier, pod count for 3-tier, 1 for a single switch) —
	// the natural upper bound on engine shards.
	NumPods int

	// mesh marks a LeafMesh topology: no spine tier, leaves fully
	// meshed, spanning trees are per-leaf stars.
	mesh bool

	adj       map[NodeID][]LinkID
	hostLink  map[packet.HostID]LinkID
	hostLeaf  map[packet.HostID]NodeID
	spineLeaf map[[2]NodeID][]LinkID // [spine, leaf] -> γ parallel links

	// routeMu guards the lazily-filled routing caches below: shard
	// workers hit NextLinksTo concurrently for real-MAC forwarding, and
	// the memoized values are pure functions of the immutable graph, so
	// a mutex keeps the fill race-free without affecting determinism.
	routeMu   sync.Mutex
	nextCache map[NodeID][]int       // per-destination BFS distances
	candCache map[[2]NodeID][]LinkID // memoized equal-cost next hops
}

// NumHosts returns the number of hosts.
func (t *Topology) NumHosts() int { return len(t.Hosts) }

// HostNode returns the node of host h.
func (t *Topology) HostNode(h packet.HostID) NodeID { return t.Hosts[h] }

// HostLink returns the access link of host h.
func (t *Topology) HostLink(h packet.HostID) LinkID { return t.hostLink[h] }

// LeafOf returns the switch host h attaches to — a leaf for regular
// servers, a spine for "remote user" hosts added with AddSpineHost
// (the north-south experiment, §6).
func (t *Topology) LeafOf(h packet.HostID) NodeID { return t.hostLeaf[h] }

// SpineAttached reports whether host h hangs off a spine switch.
func (t *Topology) SpineAttached(h packet.HostID) bool {
	return t.Nodes[t.hostLeaf[h]].Kind == KindSpine
}

// AddLeafHost attaches an extra host to a leaf switch with a custom
// link speed (e.g. 100 Mbps WAN-limited users on the Optimal
// single-switch baseline of Table 2). Returns the new host's ID.
func (t *Topology) AddLeafHost(leaf NodeID, bps int64, prop sim.Time) packet.HostID {
	if t.Nodes[leaf].Kind != KindLeaf {
		panic("topo: AddLeafHost requires a leaf node")
	}
	h := packet.HostID(len(t.Hosts))
	hn := t.addNode(KindHost, fmt.Sprintf("h%d", h), h)
	t.Nodes[hn].Pod = t.Nodes[leaf].Pod
	t.Hosts = append(t.Hosts, hn)
	lid := t.addLink(hn, leaf, bps, prop)
	t.hostLink[h] = lid
	t.hostLeaf[h] = leaf
	return h
}

// AddSpineHost attaches an extra host directly to a spine switch with
// its own link speed — the paper's emulated remote users reachable at
// WAN rates (100 Mbps) through the spines. Returns the new host's ID.
func (t *Topology) AddSpineHost(spine NodeID, bps int64, prop sim.Time) packet.HostID {
	if t.Nodes[spine].Kind != KindSpine {
		panic("topo: AddSpineHost requires a spine node")
	}
	h := packet.HostID(len(t.Hosts))
	hn := t.addNode(KindHost, fmt.Sprintf("h%d", h), h)
	t.Nodes[hn].Remote = true
	t.Nodes[hn].Pod = t.Nodes[spine].Pod
	t.Hosts = append(t.Hosts, hn)
	lid := t.addLink(hn, spine, bps, prop)
	t.hostLink[h] = lid
	t.hostLeaf[h] = spine
	return h
}

// MarkRemote flags host h as a remote user (excluded from server
// workloads). AddSpineHost does this automatically; leaf-attached
// users (the Optimal north-south baseline) need it explicitly.
func (t *Topology) MarkRemote(h packet.HostID) { t.Nodes[t.Hosts[h]].Remote = true }

// IsRemote reports whether host h is a marked remote user.
func (t *Topology) IsRemote(h packet.HostID) bool { return t.Nodes[t.Hosts[h]].Remote }

// LinksAt returns the links incident to node n.
func (t *Topology) LinksAt(n NodeID) []LinkID { return t.adj[n] }

// SpineLeafLinks returns the γ parallel links between spine s and leaf l.
func (t *Topology) SpineLeafLinks(s, l NodeID) []LinkID { return t.spineLeaf[[2]NodeID{s, l}] }

// SameLeaf reports whether two hosts share a leaf (same "pod"/rack in
// the paper's workload definitions).
func (t *Topology) SameLeaf(a, b packet.HostID) bool { return t.hostLeaf[a] == t.hostLeaf[b] }

// PodOf returns node n's pod index, or -1 for nodes outside any pod
// (core switches, 2-tier spines).
func (t *Topology) PodOf(n NodeID) int { return t.Nodes[n].Pod }

func (t *Topology) addNode(kind NodeKind, name string, host packet.HostID) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Name: name, Host: host, Pod: -1})
	return id
}

func (t *Topology) addLink(a, b NodeID, bps int64, prop sim.Time) LinkID {
	id := LinkID(len(t.Links))
	t.Links = append(t.Links, Link{ID: id, A: a, B: b, BitsPerSec: bps, Propagation: prop})
	t.adj[a] = append(t.adj[a], id)
	t.adj[b] = append(t.adj[b], id)
	return id
}

func newTopology() *Topology {
	return &Topology{
		adj:       make(map[NodeID][]LinkID),
		hostLink:  make(map[packet.HostID]LinkID),
		hostLeaf:  make(map[packet.HostID]NodeID),
		spineLeaf: make(map[[2]NodeID][]LinkID),
	}
}

// TwoTierClos builds a 2-tier Clos (leaf-spine) network with the given
// number of spines, leaves, hosts per leaf, and gamma parallel links
// between every spine-leaf pair. gamma < 1 is treated as 1.
//
// The paper's testbed (Figure 3) is TwoTierClos(4, 4, 4, 1, cfg); the
// scalability benchmark (Figure 4a) varies spines with 2 leaves; the
// oversubscription benchmark (Figure 4b) is 2 spines and 2 leaves.
func TwoTierClos(spines, leaves, hostsPerLeaf, gamma int, cfg LinkConfig) *Topology {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 1 {
		panic("topo: TwoTierClos needs at least one of everything")
	}
	if gamma < 1 {
		gamma = 1
	}
	cfg.fill()
	t := newTopology()
	t.Gamma = gamma
	t.NumPods = leaves
	for i := 0; i < spines; i++ {
		t.Spines = append(t.Spines, t.addNode(KindSpine, fmt.Sprintf("S%d", i+1), -1))
	}
	for i := 0; i < leaves; i++ {
		leaf := t.addNode(KindLeaf, fmt.Sprintf("L%d", i+1), -1)
		t.Nodes[leaf].Pod = i
		t.Leaves = append(t.Leaves, leaf)
		for _, s := range t.Spines {
			for g := 0; g < gamma; g++ {
				id := t.addLink(s, leaf, cfg.FabricBitsPerSec, cfg.FabricProp)
				key := [2]NodeID{s, leaf}
				t.spineLeaf[key] = append(t.spineLeaf[key], id)
			}
		}
	}
	for li, leaf := range t.Leaves {
		for j := 0; j < hostsPerLeaf; j++ {
			h := packet.HostID(li*hostsPerLeaf + j)
			hn := t.addNode(KindHost, fmt.Sprintf("h%d", h), h)
			t.Nodes[hn].Pod = li
			t.Hosts = append(t.Hosts, hn)
			lid := t.addLink(hn, leaf, cfg.HostBitsPerSec, cfg.HostProp)
			t.hostLink[h] = lid
			t.hostLeaf[h] = leaf
		}
	}
	return t
}

// SingleSwitch builds the Optimal baseline: all hosts attached to one
// non-blocking switch (modeled as a single leaf).
func SingleSwitch(hosts int, cfg LinkConfig) *Topology {
	if hosts < 1 {
		panic("topo: SingleSwitch needs at least one host")
	}
	cfg.fill()
	t := newTopology()
	t.Gamma = 1
	t.NumPods = 1
	leaf := t.addNode(KindLeaf, "SW", -1)
	t.Nodes[leaf].Pod = 0
	t.Leaves = append(t.Leaves, leaf)
	for i := 0; i < hosts; i++ {
		h := packet.HostID(i)
		hn := t.addNode(KindHost, fmt.Sprintf("h%d", h), h)
		t.Nodes[hn].Pod = 0
		t.Hosts = append(t.Hosts, hn)
		lid := t.addLink(hn, leaf, cfg.HostBitsPerSec, cfg.HostProp)
		t.hostLink[h] = lid
		t.hostLeaf[h] = leaf
	}
	return t
}

// Tree is one spanning tree of a Clos topology: it routes through a
// single spine and uses exactly one of the γ parallel links to each
// leaf. Trees with distinct (spine, link-choice) pairs are link-disjoint
// in the fabric layer, which is what lets the controller allocate ν·γ
// disjoint trees (§3.1).
type Tree struct {
	Index int
	// Spine is the tree's root: a spine switch (2-tier) or a core
	// switch (3-tier).
	Spine NodeID
	// LeafLink maps each leaf to the link this tree uses between
	// Spine and that leaf (2-tier trees).
	LeafLink map[NodeID]LinkID
	// Route maps (switch → destination leaf → egress link) for rooted
	// trees of deeper topologies (3-tier); nil for 2-tier trees, whose
	// routing LeafLink fully determines. Use NextLink for both.
	Route map[NodeID]map[NodeID]LinkID
}

// Trees computes the disjoint spanning trees of a Clos topology,
// skipping any tree that would use a link in omit (the controller's
// pruning path after a failure). For a single-switch topology it
// returns one degenerate tree.
func (t *Topology) Trees(omit map[LinkID]bool) []Tree {
	if len(t.Spines) == 0 {
		return []Tree{{Index: 0, LeafLink: map[NodeID]LinkID{}}}
	}
	var trees []Tree
	idx := 0
	for _, s := range t.Spines {
		for g := 0; g < t.Gamma; g++ {
			tree := Tree{Index: idx, Spine: s, LeafLink: make(map[NodeID]LinkID, len(t.Leaves))}
			ok := true
			for _, l := range t.Leaves {
				links := t.SpineLeafLinks(s, l)
				if g >= len(links) || omit[links[g]] {
					ok = false
					break
				}
				tree.LeafLink[l] = links[g]
			}
			if ok {
				trees = append(trees, tree)
				idx++
			}
		}
	}
	return trees
}

// Path is a sequence of links from a source host to a destination host.
type Path []LinkID

// Paths enumerates every end-to-end path between two hosts: the access
// link, an uplink to some spine, a downlink to the destination leaf,
// and the destination access link. Hosts on the same leaf have exactly
// one path. This is what the ECMP baseline randomizes over (§4).
func (t *Topology) Paths(src, dst packet.HostID) []Path {
	sl, dl := t.LeafOf(src), t.LeafOf(dst)
	if sl == dl {
		return []Path{{t.HostLink(src), t.HostLink(dst)}}
	}
	var paths []Path
	for _, s := range t.Spines {
		for _, up := range t.SpineLeafLinks(s, sl) {
			for _, down := range t.SpineLeafLinks(s, dl) {
				paths = append(paths, Path{t.HostLink(src), up, down, t.HostLink(dst)})
			}
		}
	}
	return paths
}
