package topo

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
)

func TestTwoTierClosShape(t *testing.T) {
	// The paper's testbed: 4 spines, 4 leaves, 4 hosts per leaf.
	tp := TwoTierClos(4, 4, 4, 1, LinkConfig{})
	if got := tp.NumHosts(); got != 16 {
		t.Fatalf("hosts = %d, want 16", got)
	}
	if len(tp.Spines) != 4 || len(tp.Leaves) != 4 {
		t.Fatalf("spines/leaves = %d/%d", len(tp.Spines), len(tp.Leaves))
	}
	// 4*4 fabric links + 16 host links.
	if len(tp.Links) != 32 {
		t.Fatalf("links = %d, want 32", len(tp.Links))
	}
	// Every leaf has 4 uplinks and 4 host links.
	for _, l := range tp.Leaves {
		if deg := len(tp.LinksAt(l)); deg != 8 {
			t.Errorf("leaf %v degree %d, want 8", l, deg)
		}
	}
	for _, s := range tp.Spines {
		if deg := len(tp.LinksAt(s)); deg != 4 {
			t.Errorf("spine %v degree %d, want 4", s, deg)
		}
	}
}

func TestHostLeafAssignment(t *testing.T) {
	tp := TwoTierClos(2, 2, 4, 1, LinkConfig{})
	// Hosts 0-3 on leaf 0, hosts 4-7 on leaf 1.
	for h := packet.HostID(0); h < 4; h++ {
		if tp.LeafOf(h) != tp.Leaves[0] {
			t.Errorf("host %d on wrong leaf", h)
		}
	}
	for h := packet.HostID(4); h < 8; h++ {
		if tp.LeafOf(h) != tp.Leaves[1] {
			t.Errorf("host %d on wrong leaf", h)
		}
	}
	if !tp.SameLeaf(0, 3) || tp.SameLeaf(0, 4) {
		t.Error("SameLeaf wrong")
	}
}

func TestTreesAreDisjointAndCoverLeaves(t *testing.T) {
	for _, gamma := range []int{1, 2} {
		tp := TwoTierClos(4, 4, 2, gamma, LinkConfig{})
		trees := tp.Trees(nil)
		if want := 4 * gamma; len(trees) != want {
			t.Fatalf("gamma=%d: %d trees, want %d", gamma, len(trees), want)
		}
		used := map[LinkID]int{}
		for _, tr := range trees {
			if len(tr.LeafLink) != len(tp.Leaves) {
				t.Fatalf("tree %d covers %d leaves, want %d", tr.Index, len(tr.LeafLink), len(tp.Leaves))
			}
			for leaf, l := range tr.LeafLink {
				used[l]++
				link := tp.Links[l]
				if link.Other(tr.Spine) != leaf {
					t.Fatalf("tree %d leaf link %d does not connect spine to leaf", tr.Index, l)
				}
			}
		}
		// Disjoint: every fabric link belongs to at most one tree.
		for l, n := range used {
			if n > 1 {
				t.Fatalf("gamma=%d: link %d used by %d trees", gamma, l, n)
			}
		}
	}
}

func TestTreesPruneOmittedLinks(t *testing.T) {
	tp := TwoTierClos(4, 4, 2, 1, LinkConfig{})
	// Fail the link between spine 0 and leaf 0.
	bad := tp.SpineLeafLinks(tp.Spines[0], tp.Leaves[0])[0]
	trees := tp.Trees(map[LinkID]bool{bad: true})
	if len(trees) != 3 {
		t.Fatalf("%d trees after prune, want 3", len(trees))
	}
	for _, tr := range trees {
		for _, l := range tr.LeafLink {
			if l == bad {
				t.Fatal("pruned tree still uses failed link")
			}
		}
	}
}

func TestPathsCount(t *testing.T) {
	cases := []struct {
		spines, gamma, want int
	}{
		{2, 1, 2}, {4, 1, 4}, {8, 1, 8}, {2, 2, 8}, // γ² per spine
	}
	for _, c := range cases {
		tp := TwoTierClos(c.spines, 2, 2, c.gamma, LinkConfig{})
		paths := tp.Paths(0, 2) // host 0 on leaf 0, host 2 on leaf 1
		if len(paths) != c.want {
			t.Errorf("spines=%d gamma=%d: %d paths, want %d", c.spines, c.gamma, len(paths), c.want)
		}
		for _, p := range paths {
			if len(p) != 4 {
				t.Errorf("cross-leaf path has %d links, want 4", len(p))
			}
		}
	}
}

func TestPathsSameLeaf(t *testing.T) {
	tp := TwoTierClos(4, 2, 4, 1, LinkConfig{})
	paths := tp.Paths(0, 1)
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("same-leaf paths = %v", paths)
	}
}

func TestSingleSwitch(t *testing.T) {
	tp := SingleSwitch(16, LinkConfig{})
	if tp.NumHosts() != 16 || len(tp.Leaves) != 1 || len(tp.Spines) != 0 {
		t.Fatal("single switch shape wrong")
	}
	if len(tp.Links) != 16 {
		t.Fatalf("links = %d, want 16", len(tp.Links))
	}
	trees := tp.Trees(nil)
	if len(trees) != 1 {
		t.Fatalf("single switch should have 1 degenerate tree, got %d", len(trees))
	}
	paths := tp.Paths(0, 15)
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("single switch paths = %v", paths)
	}
}

func TestDefaultLinkConfigApplied(t *testing.T) {
	tp := TwoTierClos(1, 1, 1, 1, LinkConfig{})
	for _, l := range tp.Links {
		if l.BitsPerSec != 10e9 {
			t.Fatalf("link %d speed %d, want 10e9", l.ID, l.BitsPerSec)
		}
		if l.Propagation <= 0 {
			t.Fatalf("link %d has no propagation delay", l.ID)
		}
	}
}

// Property: every enumerated path starts at the source access link,
// ends at the destination access link, and alternates valid endpoints.
func TestPathsWellFormedProperty(t *testing.T) {
	prop := func(spinesRaw, leavesRaw, hostsRaw, srcRaw, dstRaw uint8) bool {
		spines := int(spinesRaw)%6 + 1
		leaves := int(leavesRaw)%4 + 2
		hostsPer := int(hostsRaw)%3 + 1
		tp := TwoTierClos(spines, leaves, hostsPer, 1, LinkConfig{})
		n := tp.NumHosts()
		src := packet.HostID(int(srcRaw) % n)
		dst := packet.HostID(int(dstRaw) % n)
		if src == dst {
			return true
		}
		for _, p := range tp.Paths(src, dst) {
			if p[0] != tp.HostLink(src) || p[len(p)-1] != tp.HostLink(dst) {
				return false
			}
			// Check connectivity: walk from the source host.
			at := tp.HostNode(src)
			for _, lid := range p {
				l := tp.Links[lid]
				if l.A != at && l.B != at {
					return false
				}
				at = l.Other(at)
			}
			if at != tp.HostNode(dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSpineHost(t *testing.T) {
	tp := TwoTierClos(2, 2, 2, 1, LinkConfig{})
	base := tp.NumHosts()
	h := tp.AddSpineHost(tp.Spines[0], 100e6, 0)
	if int(h) != base {
		t.Fatalf("new host id %d, want %d", h, base)
	}
	if !tp.SpineAttached(h) || tp.SpineAttached(0) {
		t.Fatal("SpineAttached wrong")
	}
	if tp.LeafOf(h) != tp.Spines[0] {
		t.Fatal("remote user not attached to spine")
	}
	if tp.Links[tp.HostLink(h)].BitsPerSec != 100e6 {
		t.Fatal("WAN rate not applied")
	}
}
