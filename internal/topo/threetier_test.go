package topo

import (
	"testing"

	"presto/internal/packet"
)

func TestThreeTierShape(t *testing.T) {
	// 2 pods x (2 aggs + 2 leaves x 2 hosts), 2 cores.
	tp := ThreeTierClos(2, 2, 2, 2, LinkConfig{})
	if len(tp.Cores) != 2 || len(tp.Aggs) != 4 || len(tp.Leaves) != 4 {
		t.Fatalf("cores/aggs/leaves = %d/%d/%d", len(tp.Cores), len(tp.Aggs), len(tp.Leaves))
	}
	if tp.NumHosts() != 8 {
		t.Fatalf("hosts = %d", tp.NumHosts())
	}
	// Links: core-agg 4, agg-leaf 2x2x2=8, host 8 -> 20.
	if len(tp.Links) != 20 {
		t.Fatalf("links = %d, want 20", len(tp.Links))
	}
	// Every leaf connects to both pod aggs plus two hosts.
	for _, l := range tp.Leaves {
		if deg := len(tp.LinksAt(l)); deg != 4 {
			t.Fatalf("leaf degree %d, want 4", deg)
		}
	}
}

func TestRootedTreesCoverAllLeafPairs(t *testing.T) {
	tp := ThreeTierClos(2, 2, 2, 1, LinkConfig{})
	trees := tp.RootedTrees()
	if len(trees) != 2 {
		t.Fatalf("%d trees, want one per core", len(trees))
	}
	for _, tr := range trees {
		for _, src := range tp.Leaves {
			for _, dst := range tp.Leaves {
				if src == dst {
					continue
				}
				// Walk the tree path; it must terminate at dst.
				at := src
				for hops := 0; at != dst && hops < 8; hops++ {
					lid, ok := tr.NextLink(at, dst)
					if !ok {
						t.Fatalf("tree %d has no route %v->%v at %v", tr.Index, src, dst, at)
					}
					at = tp.Links[lid].Other(at)
				}
				if at != dst {
					t.Fatalf("tree %d path %v->%v did not terminate", tr.Index, src, dst)
				}
			}
		}
	}
}

func TestRootedTreesDisjointAtCoreTier(t *testing.T) {
	tp := ThreeTierClos(3, 2, 2, 1, LinkConfig{})
	trees := tp.RootedTrees()
	used := map[LinkID]int{}
	for _, tr := range trees {
		seen := map[LinkID]bool{}
		for _, m := range tr.Route {
			for _, lid := range m {
				seen[lid] = true
			}
		}
		for lid := range seen {
			used[lid]++
		}
	}
	// Core-agg links belong to exactly one tree each.
	for lid, n := range used {
		l := tp.Links[lid]
		aIsCore := contains(tp.Cores, l.A)
		bIsCore := contains(tp.Cores, l.B)
		if (aIsCore || bIsCore) && n != 1 {
			t.Fatalf("core link %d shared by %d trees", lid, n)
		}
	}
}

func contains(xs []NodeID, x NodeID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestNextLinksToEqualCostSets(t *testing.T) {
	tp := ThreeTierClos(2, 2, 2, 1, LinkConfig{})
	// Leaf to a leaf in another pod: both pod aggs are equal-cost.
	src, dst := tp.Leaves[0], tp.Leaves[2]
	if got := len(tp.NextLinksTo(src, dst)); got != 2 {
		t.Fatalf("leaf has %d equal-cost uplinks, want 2", got)
	}
	// Agg to a cross-pod leaf: only its own core.
	agg := tp.Aggs[0]
	if got := len(tp.NextLinksTo(agg, dst)); got != 1 {
		t.Fatalf("agg has %d next hops toward a cross-pod leaf, want 1", got)
	}
	// Same-pod leaf from the agg: direct.
	if got := len(tp.NextLinksTo(agg, tp.Leaves[1])); got != 1 {
		t.Fatalf("agg->same-pod leaf candidates = %d", got)
	}
	// Two-tier topologies produce the classic sets too.
	two := TwoTierClos(4, 2, 1, 1, LinkConfig{})
	if got := len(two.NextLinksTo(two.Leaves[0], two.Leaves[1])); got != 4 {
		t.Fatalf("2-tier leaf has %d uplink candidates, want 4", got)
	}
	if host := two.HostNode(0); len(two.NextLinksTo(two.Leaves[1], host)) == 0 {
		t.Fatal("no route toward a host node")
	}
}

func TestThreeTierHostAssignment(t *testing.T) {
	tp := ThreeTierClos(2, 2, 2, 2, LinkConfig{})
	// Hosts fill leaves in order: 0,1 on leaf0; 2,3 on leaf1; ...
	for h := packet.HostID(0); h < 8; h++ {
		want := tp.Leaves[int(h)/2]
		if tp.LeafOf(h) != want {
			t.Fatalf("host %d on %v, want %v", h, tp.LeafOf(h), want)
		}
		if tp.SpineAttached(h) || tp.IsRemote(h) {
			t.Fatalf("host %d misclassified", h)
		}
	}
	if !tp.SameLeaf(0, 1) || tp.SameLeaf(1, 2) {
		t.Fatal("SameLeaf wrong on 3-tier")
	}
}
