package topo

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"presto/internal/packet"
)

// fingerprintRouting renders everything shard-vs-serial byte-identity
// depends on — equal-cost next-hop sets, rooted-tree route tables, and
// 2-tier spanning trees — into one canonical string. Map-backed tables
// are rendered by iterating ID-ordered slices (never by ranging the
// maps), so the fingerprint reflects the structures' contents and the
// *slice* orders the fabric consumes them in.
func fingerprintRouting(t *Topology) string {
	var b strings.Builder
	for from := NodeID(0); int(from) < len(t.Nodes); from++ {
		if t.Nodes[from].Kind == KindHost {
			continue
		}
		for _, dst := range t.Hosts {
			fmt.Fprintf(&b, "next %d->%d:%v\n", from, dst, t.NextLinksTo(from, dst))
		}
		for _, dst := range t.Leaves {
			fmt.Fprintf(&b, "next %d->%d:%v\n", from, dst, t.NextLinksTo(from, dst))
		}
	}
	for _, tr := range t.RootedTrees() {
		fmt.Fprintf(&b, "tree %d root %d\n", tr.Index, tr.Spine)
		for from := NodeID(0); int(from) < len(t.Nodes); from++ {
			for _, dstLeaf := range t.Leaves {
				if lid, ok := tr.NextLink(from, dstLeaf); ok {
					fmt.Fprintf(&b, "  %d->%d via %d\n", from, dstLeaf, lid)
				}
			}
		}
	}
	for _, tr := range t.Trees(nil) {
		fmt.Fprintf(&b, "flat tree %d root %d\n", tr.Index, tr.Spine)
		leaves := make([]int, 0, len(tr.LeafLink))
		for l := range tr.LeafLink {
			leaves = append(leaves, int(l))
		}
		sort.Ints(leaves)
		for _, l := range leaves {
			fmt.Fprintf(&b, "  leaf %d via %d\n", l, tr.LeafLink[NodeID(l)])
		}
	}
	return b.String()
}

// TestRoutingDeterminismAcrossRebuilds pins the equal-cost ordering
// audit: NextLinksTo, RootedTrees, and Trees must produce byte-
// identical results across 100 independent rebuilds of the same
// topology. Any map-range or append-order sensitivity in the builders
// or the routing computations would flip the fingerprint between
// rebuilds and break shard-vs-serial bit-identity.
func TestRoutingDeterminismAcrossRebuilds(t *testing.T) {
	builders := []struct {
		name  string
		build func() *Topology
	}{
		{"threetier", func() *Topology { return ThreeTierClos(4, 2, 2, 2, LinkConfig{}) }},
		{"twotier", func() *Topology { return TwoTierClos(4, 4, 4, 2, LinkConfig{}) }},
		{"single", func() *Topology { return SingleSwitch(8, LinkConfig{}) }},
	}
	for _, bc := range builders {
		name, build := bc.name, bc.build
		want := fingerprintRouting(build())
		for i := 1; i < 100; i++ {
			if got := fingerprintRouting(build()); got != want {
				t.Fatalf("%s: rebuild %d produced a different routing fingerprint", name, i)
			}
		}
	}
}

// TestPodMetadata pins the pod partition the shard map is built from.
func TestPodMetadata(t *testing.T) {
	tt := ThreeTierClos(3, 2, 2, 2, LinkConfig{})
	if tt.NumPods != 3 {
		t.Fatalf("ThreeTierClos NumPods = %d, want 3", tt.NumPods)
	}
	for _, c := range tt.Cores {
		if tt.PodOf(c) != -1 {
			t.Fatalf("core %d has pod %d, want -1", c, tt.PodOf(c))
		}
	}
	// Every non-core node must carry a valid pod, and every link must
	// either stay inside one pod or touch a core: the shard partition
	// relies on inter-pod traffic always crossing the core tier.
	for _, n := range tt.Nodes {
		if n.Kind != KindHost && n.Pod == -1 {
			continue // core
		}
		if n.Pod < 0 || n.Pod >= tt.NumPods {
			t.Fatalf("node %s has pod %d outside [0,%d)", n.Name, n.Pod, tt.NumPods)
		}
	}
	for _, l := range tt.Links {
		pa, pb := tt.PodOf(l.A), tt.PodOf(l.B)
		if pa != -1 && pb != -1 && pa != pb {
			t.Fatalf("link %d joins pod %d to pod %d without crossing a core", l.ID, pa, pb)
		}
	}
	// Hosts inherit their leaf's pod.
	for h, hn := range tt.Hosts {
		if tt.PodOf(hn) != tt.PodOf(tt.LeafOf(packet.HostID(h))) {
			t.Fatalf("host %d pod %d != its leaf's pod", h, tt.PodOf(hn))
		}
	}

	two := TwoTierClos(2, 3, 2, 1, LinkConfig{})
	if two.NumPods != 3 {
		t.Fatalf("TwoTierClos NumPods = %d, want 3 (one per leaf)", two.NumPods)
	}
	for _, s := range two.Spines {
		if two.PodOf(s) != -1 {
			t.Fatalf("2-tier spine %d has pod %d, want -1", s, two.PodOf(s))
		}
	}
	one := SingleSwitch(4, LinkConfig{})
	if one.NumPods != 1 || one.PodOf(one.Leaves[0]) != 0 {
		t.Fatal("SingleSwitch should be one pod")
	}
}

// TestCoreLinkConfig pins that 3-tier core links take the Core* knobs
// (and inherit fabric values when unset).
func TestCoreLinkConfig(t *testing.T) {
	cfg := LinkConfig{CoreBitsPerSec: 40e9, CoreProp: 5000}
	tt := ThreeTierClos(2, 2, 1, 1, cfg)
	coreLinks := 0
	for _, l := range tt.Links {
		aCore := tt.PodOf(l.A) == -1 && tt.Nodes[l.A].Kind == KindSpine
		bCore := tt.PodOf(l.B) == -1 && tt.Nodes[l.B].Kind == KindSpine
		if aCore || bCore {
			coreLinks++
			if l.BitsPerSec != 40e9 || l.Propagation != 5000 {
				t.Fatalf("core link %d: %d bps prop %v, want 40e9/5000ns", l.ID, l.BitsPerSec, l.Propagation)
			}
		}
	}
	if coreLinks != 4 {
		t.Fatalf("found %d core links, want 4", coreLinks)
	}
	def := ThreeTierClos(2, 1, 1, 1, LinkConfig{FabricProp: 2000})
	for _, l := range def.Links {
		if tcore := def.PodOf(l.A) == -1 || def.PodOf(l.B) == -1; tcore && def.Nodes[l.A].Kind != KindHost && def.Nodes[l.B].Kind != KindHost {
			if l.Propagation != 2000 {
				t.Fatalf("core link %d prop %v should inherit FabricProp 2000ns", l.ID, l.Propagation)
			}
		}
	}
}
