package topo

import "fmt"

// LeafMesh builds a low-diameter two-layer topology: every leaf
// switch is wired directly to every other leaf (a full mesh), hosts
// hang off leaves. There is no spine tier — any pair of leaves is one
// hop apart directly or two hops through an intermediate leaf, the
// setting path-aware schemes like Spritz target.
//
// Spanning trees are stars: tree i routes all traffic through hub
// leaf i (see meshTrees). With ν leaves that yields ν trees per
// destination — two of them one-hop (the hubs incident to the pair),
// the rest two-hop detours — so weighted multipathing, not tree
// disjointness, is what keeps load off the detours. Each leaf plus
// its hosts is one pod, and inter-pod links are the mesh links, so
// the sharded engine's lookahead is FabricProp.
func LeafMesh(leaves, hostsPerLeaf int, cfg LinkConfig) *Topology {
	if leaves < 2 || hostsPerLeaf < 1 {
		panic("topo: LeafMesh needs >= 2 leaves and >= 1 host per leaf")
	}
	cfg.fill()
	t := newTopology()
	t.Gamma = 1
	t.NumPods = leaves
	t.mesh = true
	for i := 0; i < leaves; i++ {
		leaf := t.addNode(KindLeaf, fmt.Sprintf("M%d", i+1), -1)
		t.Nodes[leaf].Pod = i
		t.Leaves = append(t.Leaves, leaf)
	}
	for i := 0; i < leaves; i++ {
		for j := i + 1; j < leaves; j++ {
			t.addLink(t.Leaves[i], t.Leaves[j], cfg.FabricBitsPerSec, cfg.FabricProp)
		}
	}
	for _, leaf := range t.Leaves {
		for h := 0; h < hostsPerLeaf; h++ {
			t.AddLeafHost(leaf, cfg.HostBitsPerSec, cfg.HostProp)
		}
	}
	return t
}

// Mesh reports whether the topology is a leaf mesh.
func (t *Topology) Mesh() bool { return t.mesh }

// HasFabric reports whether the topology has a multipath fabric tier
// (spines, cores, or a leaf mesh) — i.e. whether cross-leaf traffic
// has path diversity worth installing label mappings for.
func (t *Topology) HasFabric() bool {
	return len(t.Spines) > 0 || len(t.Cores) > 0 || t.mesh
}

// meshTrees returns one star tree per leaf: tree i's hub is leaf i,
// every other leaf reaches every destination leaf through the hub
// (or directly, when the hub is an endpoint). Routes are expressed
// through the rooted-tree Route table so NextLink, the controller's
// installer, and treeUsable all work unchanged.
func (t *Topology) meshTrees() []Tree {
	trees := make([]Tree, 0, len(t.Leaves))
	for i, hub := range t.Leaves {
		tr := Tree{Index: i, Spine: hub, Route: make(map[NodeID]map[NodeID]LinkID)}
		for _, dst := range t.Leaves {
			for _, at := range t.Leaves {
				if at == dst {
					continue
				}
				if at == hub {
					tr.setRoute(t, at, dst, dst)
				} else {
					tr.setRoute(t, at, dst, hub)
				}
			}
		}
		trees = append(trees, tr)
	}
	return trees
}
