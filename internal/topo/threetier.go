package topo

import (
	"fmt"

	"presto/internal/sim"
)

// ThreeTierClos builds a 3-tier (pod-based) Clos: each pod has
// aggPerPod aggregation switches and leafPerPod leaves (every leaf
// wired to every agg in its pod); aggPerPod core switches each connect
// to the same-indexed agg of every pod. Hosts hang off leaves.
//
// The paper's deployments are 2-tier (§3.1: "2-tier Clos networks
// cover the overwhelming majority of enterprise datacenter
// deployments"); this builder is the scalability extension. Spanning
// trees are rooted at cores; trees rooted at different cores are
// disjoint at the agg-core tier and, because core i only touches agg
// i, partition the leaf-agg tier by agg index.
func ThreeTierClos(pods, aggPerPod, leafPerPod, hostsPerLeaf int, cfg LinkConfig) *Topology {
	if pods < 1 || aggPerPod < 1 || leafPerPod < 1 || hostsPerLeaf < 1 {
		panic("topo: ThreeTierClos needs at least one of everything")
	}
	cfg.fill()
	t := newTopology()
	t.Gamma = 1
	t.NumPods = pods

	for c := 0; c < aggPerPod; c++ {
		t.Cores = append(t.Cores, t.addNode(KindSpine, fmt.Sprintf("C%d", c+1), -1))
	}
	for p := 0; p < pods; p++ {
		var podAggs []NodeID
		for a := 0; a < aggPerPod; a++ {
			agg := t.addNode(KindSpine, fmt.Sprintf("A%d.%d", p+1, a+1), -1)
			t.Nodes[agg].Pod = p
			podAggs = append(podAggs, agg)
			t.Aggs = append(t.Aggs, agg)
			// Agg-core links are the only inter-pod edges, so CoreProp
			// is the sharded engine's lookahead on this topology.
			t.addLink(t.Cores[a], agg, cfg.CoreBitsPerSec, cfg.CoreProp)
		}
		for l := 0; l < leafPerPod; l++ {
			leaf := t.addNode(KindLeaf, fmt.Sprintf("L%d.%d", p+1, l+1), -1)
			t.Nodes[leaf].Pod = p
			t.Leaves = append(t.Leaves, leaf)
			for _, agg := range podAggs {
				t.addLink(agg, leaf, cfg.FabricBitsPerSec, cfg.FabricProp)
			}
			for h := 0; h < hostsPerLeaf; h++ {
				host := t.AddLeafHost(leaf, cfg.HostBitsPerSec, cfg.HostProp)
				_ = host
			}
		}
	}
	return t
}

// linkBetween returns the (first) link between two nodes.
func (t *Topology) linkBetween(a, b NodeID) (LinkID, bool) {
	for _, lid := range t.adj[a] {
		if t.Links[lid].Other(a) == b {
			return lid, true
		}
	}
	return 0, false
}

// nextLinksTo returns every link out of `from` that lies on a shortest
// path to the destination node — the equal-cost set hardware ECMP
// hashes over. Distances are computed by one BFS per destination and
// cached (the graph is immutable).
func (t *Topology) nextLinksTo(from, dst NodeID) []LinkID {
	t.routeMu.Lock()
	defer t.routeMu.Unlock()
	if t.nextCache == nil {
		t.nextCache = make(map[NodeID][]int)
	}
	dist, ok := t.nextCache[dst]
	if !ok {
		dist = make([]int, len(t.Nodes))
		for i := range dist {
			dist[i] = -1
		}
		dist[dst] = 0
		queue := []NodeID{dst}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, lid := range t.adj[n] {
				o := t.Links[lid].Other(n)
				// Hosts do not transit traffic: only the destination
				// itself may be a host.
				if t.Nodes[o].Kind == KindHost {
					continue
				}
				if dist[o] < 0 {
					dist[o] = dist[n] + 1
					queue = append(queue, o)
				}
			}
		}
		t.nextCache[dst] = dist
	}
	if t.candCache == nil {
		t.candCache = make(map[[2]NodeID][]LinkID)
	}
	key := [2]NodeID{from, dst}
	if out, ok := t.candCache[key]; ok {
		return out
	}
	var out []LinkID
	if dist[from] > 0 {
		for _, lid := range t.adj[from] {
			o := t.Links[lid].Other(from)
			if t.Nodes[o].Kind == KindHost {
				if o == dst {
					out = []LinkID{lid}
					break
				}
				continue
			}
			if dist[o] == dist[from]-1 {
				out = append(out, lid)
			}
		}
	}
	t.candCache[key] = out
	return out
}

// NextLinksTo exposes the equal-cost next-hop set toward a destination
// node (for the fabric's real-MAC ECMP forwarding).
func (t *Topology) NextLinksTo(from, dst NodeID) []LinkID { return t.nextLinksTo(from, dst) }

// RootedTrees computes one spanning tree per core switch of a 3-tier
// topology, per-leaf star trees for a leaf mesh, and falls back to
// Trees for 2-tier/single-switch. Route-table trees map
// (switch → destination leaf → egress link).
func (t *Topology) RootedTrees() []Tree {
	if t.mesh {
		return t.meshTrees()
	}
	if len(t.Cores) == 0 {
		return t.Trees(nil)
	}
	var trees []Tree
	for i, core := range t.Cores {
		tr := Tree{Index: i, Spine: core, Route: make(map[NodeID]map[NodeID]LinkID)}
		// The tree uses agg index i in every pod: core i is wired to
		// exactly those aggs.
		var treeAggs []NodeID
		for _, lid := range t.adj[core] {
			treeAggs = append(treeAggs, t.Links[lid].Other(core))
		}
		aggOfLeaf := make(map[NodeID]NodeID)
		for _, leaf := range t.Leaves {
			for _, agg := range treeAggs {
				if _, ok := t.linkBetween(agg, leaf); ok {
					aggOfLeaf[leaf] = agg
					break
				}
			}
		}
		for _, dstLeaf := range t.Leaves {
			dstAgg := aggOfLeaf[dstLeaf]
			// Core: descend to the destination pod's agg.
			tr.setRoute(t, core, dstLeaf, dstAgg)
			for _, agg := range treeAggs {
				if agg == dstAgg {
					// Destination pod's agg: descend to the leaf.
					tr.setRoute(t, agg, dstLeaf, dstLeaf)
				} else {
					// Other pods' aggs: ascend to the core.
					tr.setRoute(t, agg, dstLeaf, core)
				}
			}
			for _, leaf := range t.Leaves {
				if leaf == dstLeaf {
					continue
				}
				// Every other leaf ascends to its pod's tree agg.
				tr.setRoute(t, leaf, dstLeaf, aggOfLeaf[leaf])
			}
		}
		trees = append(trees, tr)
	}
	return trees
}

// setRoute records (from → dstLeaf) via the direct link from→nexthop.
func (tr *Tree) setRoute(t *Topology, from, dstLeaf, nexthop NodeID) {
	lid, ok := t.linkBetween(from, nexthop)
	if !ok {
		return
	}
	if tr.Route[from] == nil {
		tr.Route[from] = make(map[NodeID]LinkID)
	}
	tr.Route[from][dstLeaf] = lid
}

// NextLink returns the tree's egress at `from` toward dstLeaf, using
// Route when present (3-tier) and LeafLink otherwise (2-tier).
func (tr *Tree) NextLink(from, dstLeaf NodeID) (LinkID, bool) {
	if tr.Route != nil {
		lid, ok := tr.Route[from][dstLeaf]
		return lid, ok
	}
	if from == tr.Spine {
		lid, ok := tr.LeafLink[dstLeaf]
		return lid, ok
	}
	lid, ok := tr.LeafLink[from]
	return lid, ok
}

var _ = sim.Time(0) // keep the sim import for the builder signature
