package topo

import (
	"testing"

	"presto/internal/packet"
)

func TestLeafMeshShape(t *testing.T) {
	tp := LeafMesh(4, 3, LinkConfig{})
	if got := len(tp.Leaves); got != 4 {
		t.Fatalf("%d leaves, want 4", got)
	}
	if tp.NumHosts() != 12 {
		t.Fatalf("%d hosts, want 12", tp.NumHosts())
	}
	if !tp.Mesh() || !tp.HasFabric() {
		t.Error("mesh topology not flagged as mesh/fabric")
	}
	if tp.NumPods != 4 {
		t.Errorf("NumPods = %d, want one pod per leaf", tp.NumPods)
	}
	// Full mesh: C(4,2)=6 inter-leaf links plus 12 host links.
	fabric := 0
	for _, l := range tp.Links {
		if tp.Nodes[l.A].Kind == KindLeaf && tp.Nodes[l.B].Kind == KindLeaf {
			fabric++
		}
	}
	if fabric != 6 {
		t.Errorf("%d inter-leaf links, want 6", fabric)
	}
	// Hosts are assigned to leaves in order.
	for h := 0; h < 12; h++ {
		want := tp.Leaves[h/3]
		if tp.LeafOf(packet.HostID(h)) != want {
			t.Errorf("host %d on leaf %v, want %v", h, tp.LeafOf(packet.HostID(h)), want)
		}
	}
}

func TestLeafMeshPanicsOnDegenerate(t *testing.T) {
	for _, bad := range [][2]int{{1, 2}, {0, 1}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LeafMesh(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			LeafMesh(bad[0], bad[1], LinkConfig{})
		}()
	}
}

// TestMeshTreesAreStars checks the star-tree structure: one tree per
// leaf, every leaf pair routed, hub trees one hop, others two.
func TestMeshTreesAreStars(t *testing.T) {
	tp := LeafMesh(4, 2, LinkConfig{})
	trees := tp.RootedTrees()
	if len(trees) != 4 {
		t.Fatalf("%d trees, want one per leaf", len(trees))
	}
	for i, tr := range trees {
		if tr.Spine != tp.Leaves[i] {
			t.Errorf("tree %d hub %v, want leaf %v", i, tr.Spine, tp.Leaves[i])
		}
		for _, src := range tp.Leaves {
			for _, dst := range tp.Leaves {
				if src == dst {
					continue
				}
				at := src
				hops := 0
				for ; at != dst && hops < 8; hops++ {
					lid, ok := tr.NextLink(at, dst)
					if !ok {
						t.Fatalf("tree %d has no route %v->%v at %v", i, src, dst, at)
					}
					at = tp.Links[lid].Other(at)
				}
				if at != dst {
					t.Fatalf("tree %d path %v->%v did not terminate", i, src, dst)
				}
				want := 2
				if src == tr.Spine || dst == tr.Spine {
					want = 1
				}
				if hops != want {
					t.Errorf("tree %d path %v->%v took %d hops, want %d", i, src, dst, hops, want)
				}
			}
		}
	}
}

// TestMeshPathsPerPair: every cross-leaf pair sees all ν trees as
// usable labels (no tree omits any pair), giving the controller ν-way
// multipathing to weight.
func TestMeshTreesRouteEveryPair(t *testing.T) {
	tp := LeafMesh(5, 1, LinkConfig{})
	trees := tp.RootedTrees()
	if len(trees) != 5 {
		t.Fatalf("%d trees, want 5", len(trees))
	}
	for _, tr := range trees {
		for _, src := range tp.Leaves {
			for _, dst := range tp.Leaves {
				if src == dst {
					continue
				}
				if _, ok := tr.NextLink(src, dst); !ok {
					t.Fatalf("tree %d misses %v->%v", tr.Index, src, dst)
				}
			}
		}
	}
}
