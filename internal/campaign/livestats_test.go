package campaign

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"presto/internal/metrics"
	"presto/internal/telemetry"
)

// statSpec builds a campaign whose replicas emit a deterministic
// "fct_ms" distribution derived from the seed.
func statSpec(stats *LiveStats, reg *telemetry.Registry, parallelism int) *Spec {
	cells := make([]Cell, 3)
	for i := range cells {
		ci := i
		cells[i] = Cell{
			Experiment: "live",
			ID:         fmt.Sprintf("live/cell=%d", ci),
			Run: func(seed uint64) (Result, error) {
				rng := rand.New(rand.NewSource(int64(seed) + int64(ci)<<8))
				d := &metrics.Dist{}
				for j := 0; j < 500; j++ {
					d.Add(rng.Float64() * 100)
				}
				return Result{
					Metrics: Values{"x": float64(seed)},
					Dists:   map[string]*metrics.Dist{"fct_ms": d},
				}, nil
			},
		}
	}
	return &Spec{
		Name:        "livestats",
		Cells:       cells,
		Seeds:       Seeds(1, 4),
		Parallelism: parallelism,
		Stats:       stats,
		Telemetry:   reg,
	}
}

func TestLiveStatsAccumulatesAndIsOrderIndependent(t *testing.T) {
	// Run the same campaign serially and at full parallelism: the
	// accumulated sketches must agree exactly despite different
	// completion orders (merge commutativity).
	s1 := NewLiveStats(0.01)
	if _, err := Run(statSpec(s1, nil, 1)); err != nil {
		t.Fatal(err)
	}
	s2 := NewLiveStats(0.01)
	if _, err := Run(statSpec(s2, nil, 8)); err != nil {
		t.Fatal(err)
	}

	if s1.Replicas() != 12 || s2.Replicas() != 12 {
		t.Fatalf("replicas observed: %d / %d, want 12", s1.Replicas(), s2.Replicas())
	}
	names := s1.Names()
	if len(names) != 1 || names[0] != "fct_ms" {
		t.Fatalf("names = %v", names)
	}
	q1 := s1.Quantiles(0.5, 0.95, 0.99, 0.999)["fct_ms"]
	q2 := s2.Quantiles(0.5, 0.95, 0.99, 0.999)["fct_ms"]
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("quantile %d diverged across parallelism: %v vs %v", i, q1[i], q2[i])
		}
	}
	if sk := s1.Sketch("fct_ms"); sk.N() != 12*500 {
		t.Fatalf("sketch N = %d, want %d", sk.N(), 12*500)
	}
	// Quantiles must be sane: monotone, within observed range.
	for i := 1; i < len(q1); i++ {
		if q1[i] < q1[i-1] {
			t.Fatalf("quantiles not monotone: %v", q1)
		}
	}
}

func TestLiveStatsProbeRegistered(t *testing.T) {
	reg := telemetry.NewRegistry(nil)
	ls := NewLiveStats(0.01)
	if _, err := Run(statSpec(ls, reg, 4)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(0)
	stats := snap.Components["stats"]
	if stats == nil {
		t.Fatal("no stats probe registered")
	}
	for _, k := range []string{"fct_ms.p50", "fct_ms.p95", "fct_ms.p99", "fct_ms.p999", "fct_ms.n", "replicas_observed"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("stats probe missing %q (have %v)", k, stats)
		}
	}
	if stats["replicas_observed"].(uint64) != 12 {
		t.Errorf("replicas_observed = %v", stats["replicas_observed"])
	}
}

// TestLiveStatsMixedAlphaReplicas: a replica whose Dist is
// sketch-backed at a different alpha must still fold into the
// accumulator (Dist.Sketch re-buckets to the accumulator's alpha)
// instead of silently dropping its samples on a Merge error.
func TestLiveStatsMixedAlphaReplicas(t *testing.T) {
	ls := NewLiveStats(0.01)
	raw := &metrics.Dist{}
	for i := 1; i <= 100; i++ {
		raw.Add(float64(i))
	}
	ls.observe(Result{Dists: map[string]*metrics.Dist{"fct_ms": raw}})

	coarse := metrics.NewSketchDist(0.05) // mismatched backing alpha
	for i := 1; i <= 100; i++ {
		coarse.Add(float64(i))
	}
	ls.observe(Result{Dists: map[string]*metrics.Dist{"fct_ms": coarse}})

	sk := ls.Sketch("fct_ms")
	if sk.N() != 200 {
		t.Fatalf("accumulated N = %d, want 200 (mismatched-alpha replica dropped)", sk.N())
	}
	if sk.Alpha() != 0.01 {
		t.Fatalf("accumulator alpha drifted to %v", sk.Alpha())
	}
	// p50 of 200 samples drawn twice from 1..100 is ~50; allow the
	// compounded re-bucketing error.
	if p50 := sk.Quantile(0.5); p50 < 45 || p50 > 55 {
		t.Fatalf("p50 = %v after mixed-alpha merge", p50)
	}
}

func TestLiveStatsNilSafe(t *testing.T) {
	var ls *LiveStats
	ls.observe(Result{})
	if ls.Names() != nil || ls.Quantiles(0.5) != nil || ls.Sketch("x") != nil ||
		ls.Replicas() != 0 || ls.Alpha() != 0 {
		t.Fatal("nil LiveStats recorded state")
	}
	// A spec with nil Stats runs unchanged.
	if _, err := Run(statSpec(nil, nil, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestReportCarriesSketches(t *testing.T) {
	rep, err := Run(statSpec(nil, nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cell("live/cell=0")
	if c == nil || c.Sketches["fct_ms"] == nil {
		t.Fatal("report cell missing fct_ms sketch")
	}
	sk := c.Sketches["fct_ms"]
	if sk.N() != 4*500 {
		t.Fatalf("cell sketch N = %d, want 2000", sk.N())
	}
	// Sketch percentiles must track the exact merged distribution.
	d := c.Dist("fct_ms")
	for _, p := range []float64{50, 95, 99} {
		got, want := sk.Percentile(p), d.Percentile(p)
		if want == 0 {
			continue
		}
		if re := (got - want) / want; re > 0.03 || re < -0.03 {
			t.Errorf("p%v: sketch %v vs exact %v", p, got, want)
		}
	}

	// The sketches survive the JSON artifact round trip.
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatal(err)
	}
	bc := back.Cell("live/cell=0")
	if bc == nil || bc.Sketches["fct_ms"] == nil {
		t.Fatal("decoded report lost sketches")
	}
	if bc.Sketches["fct_ms"].Quantile(0.99) != sk.Quantile(0.99) {
		t.Fatal("sketch quantiles drifted through report.json")
	}

	// And the bytes are identical across parallelism levels.
	rep2, err := Run(statSpec(nil, nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 strings.Builder
	if err := rep2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("report.json bytes differ across parallelism")
	}
}
