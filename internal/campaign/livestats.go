package campaign

import (
	"fmt"
	"sort"
	"sync"

	"presto/internal/metrics"
)

// LiveStats accumulates mergeable quantile sketches of every named
// distribution as replicas finish, so a long-running campaign can
// report p50/p95/p99/p999 mid-flight at O(buckets) memory. Sketch
// merging is commutative and associative, so the accumulated state —
// and every quantile read from it — is independent of worker
// completion order, preserving the campaign's determinism guarantee.
//
// A nil *LiveStats disables collection: every method is a
// nil-receiver-safe no-op. All methods are safe for concurrent use
// (workers observe while HTTP handlers read).
type LiveStats struct {
	mu       sync.Mutex
	alpha    float64
	dists    map[string]*metrics.Sketch
	replicas uint64
}

// NewLiveStats returns an empty accumulator with the given sketch
// relative-error bound (out-of-range alpha falls back to
// metrics.DefaultSketchAlpha).
func NewLiveStats(alpha float64) *LiveStats {
	if alpha <= 0 || alpha >= 1 {
		alpha = metrics.DefaultSketchAlpha
	}
	return &LiveStats{alpha: alpha, dists: make(map[string]*metrics.Sketch)}
}

// observe folds one successful replica's distributions into the
// accumulated sketches. Called by the campaign runner's workers.
func (ls *LiveStats) observe(res Result) {
	if ls == nil {
		return
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.replicas++
	for name, d := range res.Dists {
		if d == nil || d.N() == 0 {
			continue
		}
		sk := d.Sketch(ls.alpha)
		if sk == nil {
			continue
		}
		acc := ls.dists[name]
		if acc == nil {
			ls.dists[name] = sk
			continue
		}
		// Dist.Sketch re-buckets to ls.alpha, so Merge succeeds; the
		// fallback keeps a surprise mismatch from silently dropping a
		// replica's samples.
		if err := acc.Merge(sk); err != nil {
			acc.Merge(sk.Rebucket(acc.Alpha()))
		}
	}
}

// Alpha returns the accumulator's relative-error bound.
func (ls *LiveStats) Alpha() float64 {
	if ls == nil {
		return 0
	}
	return ls.alpha
}

// Replicas returns how many successful replicas have been observed.
func (ls *LiveStats) Replicas() uint64 {
	if ls == nil {
		return 0
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.replicas
}

// Names returns the observed distribution names, sorted.
func (ls *LiveStats) Names() []string {
	if ls == nil {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	names := make([]string, 0, len(ls.dists))
	for n := range ls.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sketch returns a clone of the named accumulated sketch, or nil.
func (ls *LiveStats) Sketch(name string) *metrics.Sketch {
	if ls == nil {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.dists[name].Clone()
}

// Quantiles evaluates qs (fractions in [0,1]) on every accumulated
// distribution: name → values in qs order. Names are not sorted in
// the map; use Names for deterministic iteration.
func (ls *LiveStats) Quantiles(qs ...float64) map[string][]float64 {
	if ls == nil {
		return nil
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	out := make(map[string][]float64, len(ls.dists))
	for name, sk := range ls.dists {
		vals := make([]float64, len(qs))
		for i, q := range qs {
			vals[i] = sk.Quantile(q)
		}
		out[name] = vals
	}
	return out
}

// probe reports live quantile gauges to the telemetry registry (the
// "stats" component): <dist>.p50/p95/p99/p999 plus sample counts.
func (ls *LiveStats) probe() map[string]any {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	m := map[string]any{"replicas_observed": ls.replicas}
	for name, sk := range ls.dists {
		m[fmt.Sprintf("%s.n", name)] = sk.N()
		m[fmt.Sprintf("%s.p50", name)] = sk.Quantile(0.50)
		m[fmt.Sprintf("%s.p95", name)] = sk.Quantile(0.95)
		m[fmt.Sprintf("%s.p99", name)] = sk.Quantile(0.99)
		m[fmt.Sprintf("%s.p999", name)] = sk.Quantile(0.999)
	}
	return m
}
