package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"

	"presto/internal/metrics"
)

// Envelope summarises one metric over a cell's successful seed
// replicas.
type Envelope struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      int     `json:"n"`
}

// String renders "mean" for a single replica and "mean ±stddev
// [min,max]" for seed-replicated envelopes.
func (e Envelope) String() string {
	if e.N <= 1 {
		return strconv.FormatFloat(e.Mean, 'g', -1, 64)
	}
	return fmt.Sprintf("%g ±%.3g [%g,%g]", e.Mean, e.Stddev, e.Min, e.Max)
}

// aggregate folds the successful replicas' metrics into envelopes,
// iterating in seed order so float accumulation is deterministic.
func aggregate(reps []ReplicaResult) map[string]Envelope {
	vals := make(map[string][]float64)
	for _, r := range reps {
		if r.Err != "" {
			continue
		}
		for k, v := range r.Metrics {
			vals[k] = append(vals[k], v)
		}
	}
	if len(vals) == 0 {
		return nil
	}
	out := make(map[string]Envelope, len(vals))
	for k, xs := range vals {
		out[k] = envelope(xs)
	}
	return out
}

func envelope(xs []float64) Envelope {
	e := Envelope{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		e.Min = math.Min(e.Min, x)
		e.Max = math.Max(e.Max, x)
	}
	e.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - e.Mean
		ss += d * d
	}
	e.Stddev = math.Sqrt(ss / float64(len(xs)))
	return e
}

// mergeDists appends every successful replica's named samples in seed
// order into one distribution per name.
func mergeDists(reps []ReplicaResult, raw []Result) map[string]*metrics.Dist {
	out := make(map[string]*metrics.Dist)
	for i, r := range raw {
		if reps[i].Err != "" {
			continue
		}
		for name, d := range r.Dists {
			if d == nil || d.N() == 0 {
				continue
			}
			m := out[name]
			if m == nil {
				m = &metrics.Dist{}
				out[name] = m
			}
			for _, v := range d.Samples() {
				m.Add(v)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sketchDists converts each merged distribution into a quantile
// sketch at the default relative-error bound, for the report
// artifact. Samples fold in stored (seed) order, and a sketch's JSON
// form sorts its buckets, so the output is deterministic.
func sketchDists(dists map[string]*metrics.Dist) map[string]*metrics.Sketch {
	if len(dists) == 0 {
		return nil
	}
	out := make(map[string]*metrics.Sketch, len(dists))
	for name, d := range dists {
		if sk := d.Sketch(metrics.DefaultSketchAlpha); sk != nil {
			out[name] = sk
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteJSON writes the report as indented JSON. encoding/json sorts
// map keys, and the report carries no timing, so the bytes depend only
// on the spec and seeds — not on parallelism.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes one row per (cell, metric) envelope, cells in spec
// order and metrics sorted, for spreadsheet-side analysis.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "cell", "metric", "mean", "stddev", "min", "max", "n"}); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range r.Cells {
		c := &r.Cells[i]
		names := make([]string, 0, len(c.Envelopes))
		for k := range c.Envelopes {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			e := c.Envelopes[k]
			err := cw.Write([]string{c.Experiment, c.ID, k, g(e.Mean), g(e.Stddev), g(e.Min), g(e.Max), strconv.Itoa(e.N)})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CellTiming is one manifest entry of per-cell wall clock.
type CellTiming struct {
	Cell   string  `json:"cell"`
	WallMS float64 `json:"wall_ms"`
}

// Manifest is the machine-readable record of how a campaign was
// executed: spec identity, environment, timings, and failures. Unlike
// the report it is NOT byte-stable across runs — that is its job.
type Manifest struct {
	Name        string    `json:"name"`
	SpecHash    string    `json:"spec_hash"`
	GitDescribe string    `json:"git_describe,omitempty"`
	GoVersion   string    `json:"go_version"`
	Started     time.Time `json:"started"`
	WallMS      float64   `json:"wall_ms"`
	Workers     int       `json:"workers"`
	Seeds       []uint64  `json:"seeds"`
	Cells       int       `json:"cells"`
	// Workloads lists the distinct workload-spec hashes the campaign's
	// cells ran (sorted; absent when every cell uses code-defined
	// traffic). Together with SpecHash this pins exactly which declared
	// workloads produced the artifacts.
	Workloads   []string        `json:"workloads,omitempty"`
	Replicas    int             `json:"replicas"`
	Failed      []FailedReplica `json:"failed,omitempty"`
	Utilization float64         `json:"worker_utilization"`
	SlowestMS   []CellTiming    `json:"slowest_cells"`
}

// Manifest assembles the execution manifest; gitDescribe may be empty
// when the caller has no repository context.
func (r *Report) Manifest(gitDescribe string) *Manifest {
	t := r.timing
	m := &Manifest{
		Name:        r.Name,
		SpecHash:    r.SpecHash,
		GitDescribe: gitDescribe,
		GoVersion:   runtime.Version(),
		Seeds:       r.Seeds,
		Cells:       len(r.Cells),
		Failed:      r.FailedReplicas(),
	}
	seenWl := map[string]bool{}
	for i := range r.Cells {
		if wl := r.Cells[i].Workload; wl != "" && !seenWl[wl] {
			seenWl[wl] = true
			m.Workloads = append(m.Workloads, wl)
		}
	}
	sort.Strings(m.Workloads)
	if t != nil {
		t.mu.Lock()
		m.Started = t.started
		m.WallMS = float64(t.wall) / 1e6
		m.Workers = t.workers
		m.Replicas = t.total
		m.Utilization = t.utilization()
		for _, s := range t.slowest(5) {
			m.SlowestMS = append(m.SlowestMS, CellTiming{Cell: s.Key, WallMS: float64(s.Wall) / 1e6})
		}
		t.mu.Unlock()
	}
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteArtifacts writes report.json, report.csv, and manifest.json
// into dir, creating it as needed.
func (r *Report) WriteArtifacts(dir, gitDescribe string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			_ = f.Close() // fn's failure is the one to report; close is best-effort cleanup
			return err
		}
		return f.Close()
	}
	if err := write("report.json", r.WriteJSON); err != nil {
		return err
	}
	if err := write("report.csv", r.WriteCSV); err != nil {
		return err
	}
	return write("manifest.json", r.Manifest(gitDescribe).WriteJSON)
}
