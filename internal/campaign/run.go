package campaign

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"presto/internal/metrics"
)

// ReplicaResult is one cell × seed execution as recorded in the
// report. It deliberately carries no wall-clock timing — timings live
// in the Manifest — so report artifacts are byte-identical regardless
// of parallelism or machine speed.
type ReplicaResult struct {
	Seed    uint64 `json:"seed"`
	Metrics Values `json:"metrics,omitempty"`
	// Err is the failure (panic value, timeout, or returned error);
	// empty on success.
	Err string `json:"error,omitempty"`
}

// CellResult aggregates one cell's seed replicas.
type CellResult struct {
	Experiment string `json:"experiment"`
	ID         string `json:"id"`
	// Workload is the workload-spec hash the cell ran (empty for
	// code-defined traffic); see Cell.Workload.
	Workload string          `json:"workload,omitempty"`
	Replicas []ReplicaResult `json:"replicas"`
	// Envelopes summarise each metric over the successful replicas.
	Envelopes map[string]Envelope `json:"envelopes,omitempty"`
	// Sketches carry each merged distribution as a quantile sketch at
	// metrics.DefaultSketchAlpha, so report.json stays O(buckets) per
	// distribution and downstream tools can re-derive any percentile.
	// Built from the seed-ordered merged samples, so the bytes are
	// deterministic at any parallelism.
	Sketches map[string]*metrics.Sketch `json:"sketches,omitempty"`

	dists map[string]*metrics.Dist
}

// Failed reports whether any replica of the cell failed.
func (c *CellResult) Failed() bool {
	for _, r := range c.Replicas {
		if r.Err != "" {
			return true
		}
	}
	return false
}

// Dist returns the named sample distribution merged across the cell's
// successful replicas in seed order, or nil.
func (c *CellResult) Dist(name string) *metrics.Dist { return c.dists[name] }

// DistNames returns the cell's merged distribution names, sorted.
func (c *CellResult) DistNames() []string {
	names := make([]string, 0, len(c.dists))
	for n := range c.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FailedReplica identifies one failed cell × seed execution.
type FailedReplica struct {
	Cell string `json:"cell"`
	Seed uint64 `json:"seed"`
	Err  string `json:"error"`
}

// Report is a campaign's deterministic output: cells in spec order,
// replicas in seed order, independent of worker scheduling.
type Report struct {
	Name     string       `json:"name"`
	SpecHash string       `json:"spec_hash"`
	Seeds    []uint64     `json:"seeds"`
	Cells    []CellResult `json:"cells"`

	timing *timing // manifest-only: wall clocks and pool stats
}

// Cell returns the result for the given cell ID, or nil.
func (r *Report) Cell(id string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].ID == id {
			return &r.Cells[i]
		}
	}
	return nil
}

// Envelope returns the aggregate for (cell, metric); ok is false when
// either is absent.
func (r *Report) Envelope(cellID, metric string) (Envelope, bool) {
	c := r.Cell(cellID)
	if c == nil {
		return Envelope{}, false
	}
	e, ok := c.Envelopes[metric]
	return e, ok
}

// FailedReplicas lists every failed cell × seed, in spec order.
func (r *Report) FailedReplicas() []FailedReplica {
	var out []FailedReplica
	for i := range r.Cells {
		for _, rep := range r.Cells[i].Replicas {
			if rep.Err != "" {
				out = append(out, FailedReplica{Cell: r.Cells[i].ID, Seed: rep.Seed, Err: rep.Err})
			}
		}
	}
	return out
}

// timing is the execution-side record kept out of the report.
// syncWriter serializes everything written to the progress stream:
// worker-pool finish lines (already serialized by the timing lock),
// replica panic reports — which fire on the replica's own goroutine
// and, for an abandoned (timed-out or cancelled) replica, possibly
// after the pool has moved on — and the final summary line. Each
// fmt.Fprint* issues a single Write, so lines stay whole.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

type timing struct {
	mu          sync.Mutex
	started     time.Time
	wall        time.Duration
	busy        time.Duration // summed replica wall clocks
	workers     int
	total, done int
	failed      int
	replicaWall map[string]time.Duration // "cell seed=N" → wall
	cellWall    map[string]time.Duration // cell ID → summed wall
}

// Run executes the spec and returns its report. The only returned
// errors are spec errors; replica failures are recorded in the report
// (see Report.FailedReplicas) so sibling cells always complete.
func Run(spec *Spec) (*Report, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cancellation: when ctx is cancelled the pool
// stops dispatching, in-flight replicas are abandoned (each replica
// goroutine still drains into its buffered channel and exits once its
// RunFunc returns, so nothing leaks), and the call returns
// context.Cause(ctx) with a nil report. Callers distinguish a
// cancelled campaign from a failed one with errors.Is(err,
// context.Canceled) (or DeadlineExceeded).
func RunContext(ctx context.Context, spec *Spec) (*Report, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	seeds := spec.seeds()
	workers := spec.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := len(spec.Cells) * len(seeds); workers > n {
		workers = n
	}

	// One serialized stream for all progress writers; see syncWriter.
	var progress io.Writer
	if spec.Progress != nil {
		progress = &syncWriter{w: spec.Progress}
	}

	tm := &timing{
		started:     time.Now(),
		workers:     workers,
		total:       len(spec.Cells) * len(seeds),
		replicaWall: make(map[string]time.Duration),
		cellWall:    make(map[string]time.Duration),
	}
	spec.Telemetry.Register("campaign", tm.probe)
	if spec.Stats != nil {
		spec.Telemetry.Register("stats", spec.Stats.probe)
	}

	// results[cell][seed] — indexed writes keep ordering deterministic
	// no matter which worker finishes when.
	results := make([][]ReplicaResult, len(spec.Cells))
	raw := make([][]Result, len(spec.Cells))
	for i := range results {
		results[i] = make([]ReplicaResult, len(seeds))
		raw[i] = make([]Result, len(seeds))
	}

	type job struct{ ci, si int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain the queue without running
				}
				cell := spec.Cells[j.ci]
				seed := seeds[j.si]
				start := time.Now()
				res, err := runReplica(ctx, cell, seed, spec.CellTimeout, progress)
				wall := time.Since(start)
				rr := ReplicaResult{Seed: seed, Metrics: res.Metrics}
				if err != nil {
					rr.Err = err.Error()
					rr.Metrics = nil
				}
				results[j.ci][j.si] = rr
				raw[j.ci][j.si] = res
				if err == nil {
					spec.Stats.observe(res)
				}
				tm.finish(progress, cell.ID, seed, wall, err)
			}
		}()
	}
dispatch:
	for ci := range spec.Cells {
		for si := range seeds {
			select {
			case jobs <- job{ci, si}:
			case <-ctx.Done():
				break dispatch
			}
		}
	}
	close(jobs)
	wg.Wait()
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	tm.mu.Lock()
	tm.wall = time.Since(tm.started)
	tm.mu.Unlock()

	rep := &Report{
		Name:     spec.Name,
		SpecHash: spec.Hash(),
		Seeds:    seeds,
		Cells:    make([]CellResult, len(spec.Cells)),
		timing:   tm,
	}
	for i, c := range spec.Cells {
		dists := mergeDists(results[i], raw[i])
		rep.Cells[i] = CellResult{
			Experiment: c.Experiment,
			ID:         c.ID,
			Workload:   c.Workload,
			Replicas:   results[i],
			Envelopes:  aggregate(results[i]),
			Sketches:   sketchDists(dists),
			dists:      dists,
		}
	}
	if progress != nil {
		fmt.Fprintf(progress, "[campaign] done: %d replicas (%d cells × %d seeds), %d failed, wall %v, workers=%d, utilization %.0f%%\n",
			tm.total, len(spec.Cells), len(seeds), tm.failed, tm.wall.Round(time.Millisecond), workers, tm.utilization()*100)
	}
	return rep, nil
}

// runReplica executes one cell × seed with panic capture, an optional
// wall-clock timeout, and cancellation. On timeout or cancel the
// replica's goroutine is abandoned: it cannot be preempted
// mid-simulation, so its eventual result (or panic) drains into a
// buffered channel — the goroutine exits on its own once RunFunc
// returns — and is dropped.
func runReplica(ctx context.Context, c Cell, seed uint64, timeout time.Duration, progress io.Writer) (Result, error) {
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				// The panic value alone is recorded (stable across runs);
				// the stack goes to the progress stream for debugging.
				if progress != nil {
					fmt.Fprintf(progress, "[campaign] panic in %s seed=%d: %v\n%s", c.ID, seed, p, debug.Stack())
				}
				ch <- outcome{err: fmt.Errorf("panic: %v", p)}
			}
		}()
		res, err := c.Run(seed)
		ch <- outcome{res: res, err: err}
	}()
	var timeoutCh <-chan time.Time // nil (never fires) when no timeout
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timeoutCh:
		return Result{}, fmt.Errorf("timeout after %v (replica abandoned)", timeout)
	case <-ctx.Done():
		return Result{}, fmt.Errorf("cancelled: %w", context.Cause(ctx))
	}
}

// finish updates the pool counters and streams one progress line.
func (t *timing) finish(progress io.Writer, cellID string, seed uint64, wall time.Duration, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	t.busy += wall
	key := fmt.Sprintf("%s seed=%d", cellID, seed)
	t.replicaWall[key] = wall
	t.cellWall[cellID] += wall
	status := "ok  "
	if err != nil {
		t.failed++
		status = "FAIL"
	}
	if progress == nil {
		return
	}
	line := fmt.Sprintf("[campaign] %*d/%d %s %s (%v)", len(fmt.Sprint(t.total)), t.done, t.total, status, key, wall.Round(time.Millisecond))
	if err != nil {
		line += ": " + err.Error()
	}
	fmt.Fprintln(progress, line)
}

// utilization is busy worker time over wall × workers; callers hold no
// lock (reads are post-Wait or under probe lock).
func (t *timing) utilization() float64 {
	wall := t.wall
	if wall == 0 {
		wall = time.Since(t.started)
	}
	if wall <= 0 || t.workers == 0 {
		return 0
	}
	u := float64(t.busy) / (float64(wall) * float64(t.workers))
	if u > 1 {
		u = 1
	}
	return u
}

// slowest returns the n largest replica wall clocks, descending.
func (t *timing) slowest(n int) []struct {
	Key  string
	Wall time.Duration
} {
	type kv struct {
		Key  string
		Wall time.Duration
	}
	all := make([]kv, 0, len(t.replicaWall))
	for k, v := range t.replicaWall {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Wall != all[j].Wall {
			return all[i].Wall > all[j].Wall
		}
		return all[i].Key < all[j].Key
	})
	if len(all) > n {
		all = all[:n]
	}
	out := make([]struct {
		Key  string
		Wall time.Duration
	}, len(all))
	for i, e := range all {
		out[i] = struct {
			Key  string
			Wall time.Duration
		}{e.Key, e.Wall}
	}
	return out
}

// probe reports the campaign's execution state to the telemetry
// registry ("campaign" component).
func (t *timing) probe() map[string]any {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := map[string]any{
		"replicas_total":  t.total,
		"replicas_done":   t.done,
		"replicas_failed": t.failed,
		"workers":         t.workers,
		"busy_ms":         float64(t.busy) / 1e6,
		"utilization":     t.utilization(),
	}
	for i, s := range t.slowest(3) {
		m[fmt.Sprintf("slowest.%d", i+1)] = fmt.Sprintf("%s (%v)", s.Key, s.Wall.Round(time.Millisecond))
	}
	return m
}
