package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// Golden is a checked-in envelope snapshot a fresh campaign run is
// gated against: per-cell per-metric means with tolerances. Regenerate
// with `cmd/experiments ... -gate <file> -update` after intentional
// behaviour changes.
type Golden struct {
	// SpecHash pins the spec (cells, seeds, params) the snapshot was
	// taken from; Check refuses a report with a different hash rather
	// than diffing incomparable numbers.
	SpecHash string `json:"spec_hash"`
	// DefaultTolerance is the relative drift allowed per metric when
	// Tolerances has no entry. When a golden value is 0 the comparison
	// is absolute instead.
	DefaultTolerance float64 `json:"default_tolerance"`
	// Tolerances overrides the default per metric name.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	// Cells maps cell ID → metric → golden mean.
	Cells map[string]map[string]float64 `json:"cells"`
}

// GoldenFromReport snapshots a report's envelope means.
func GoldenFromReport(r *Report, defaultTolerance float64) *Golden {
	g := &Golden{
		SpecHash:         r.SpecHash,
		DefaultTolerance: defaultTolerance,
		Cells:            make(map[string]map[string]float64, len(r.Cells)),
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if len(c.Envelopes) == 0 {
			continue
		}
		m := make(map[string]float64, len(c.Envelopes))
		for k, e := range c.Envelopes {
			m[k] = e.Mean
		}
		g.Cells[c.ID] = m
	}
	return g
}

// LoadGolden reads a golden file.
func LoadGolden(path string) (*Golden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := &Golden{}
	if err := json.Unmarshal(data, g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// WriteJSON writes the golden as indented JSON (deterministic: maps
// are key-sorted by encoding/json).
func (g *Golden) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Save writes the golden to path, creating parent directories.
func (g *Golden) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteJSON(f); err != nil {
		_ = f.Close() // the write failure is the one to report; close is best-effort cleanup
		return err
	}
	return f.Close()
}

// Drift is one golden violation.
type Drift struct {
	Cell, Metric string
	Golden, Got  float64
	// RelDiff is |got-golden|/|golden| (absolute diff when golden is 0).
	RelDiff   float64
	Tolerance float64
	// Missing means the fresh report lacks the cell or metric entirely
	// (e.g. the cell failed).
	Missing bool
}

func (d Drift) String() string {
	if d.Missing {
		return fmt.Sprintf("%s %s: missing from report (golden %g)", d.Cell, d.Metric, d.Golden)
	}
	return fmt.Sprintf("%s %s: golden=%g got=%g drift=%.2f%% (tolerance %.2f%%)",
		d.Cell, d.Metric, d.Golden, d.Got, d.RelDiff*100, d.Tolerance*100)
}

// tolerance resolves the allowed drift for a metric.
func (g *Golden) tolerance(metric string) float64 {
	if t, ok := g.Tolerances[metric]; ok {
		return t
	}
	return g.DefaultTolerance
}

// Check compares a fresh report against the golden envelopes and
// returns every per-metric drift beyond tolerance, in sorted (cell,
// metric) order. It errors without comparing when the report was
// produced by a different spec.
func (g *Golden) Check(r *Report) ([]Drift, error) {
	if g.SpecHash != "" && g.SpecHash != r.SpecHash {
		return nil, fmt.Errorf("spec hash mismatch: golden %s vs report %s (different -run/-seeds/-duration flags? regenerate with -update)",
			g.SpecHash, r.SpecHash)
	}
	var drifts []Drift
	cells := make([]string, 0, len(g.Cells))
	for id := range g.Cells {
		cells = append(cells, id)
	}
	sort.Strings(cells)
	for _, id := range cells {
		want := g.Cells[id]
		names := make([]string, 0, len(want))
		for k := range want {
			names = append(names, k)
		}
		sort.Strings(names)
		cell := r.Cell(id)
		for _, metric := range names {
			golden := want[metric]
			tol := g.tolerance(metric)
			if cell == nil {
				drifts = append(drifts, Drift{Cell: id, Metric: metric, Golden: golden, Tolerance: tol, Missing: true})
				continue
			}
			e, ok := cell.Envelopes[metric]
			if !ok {
				drifts = append(drifts, Drift{Cell: id, Metric: metric, Golden: golden, Tolerance: tol, Missing: true})
				continue
			}
			diff := math.Abs(e.Mean - golden)
			rel := diff
			if golden != 0 {
				rel = diff / math.Abs(golden)
			}
			if rel > tol {
				drifts = append(drifts, Drift{Cell: id, Metric: metric, Golden: golden, Got: e.Mean, RelDiff: rel, Tolerance: tol})
			}
		}
	}
	return drifts, nil
}
