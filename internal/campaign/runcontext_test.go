package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunContextCancel proves that cancelling a campaign mid-flight
// stops the pool promptly, returns context.Canceled (a cancelled
// campaign, not a failed one), and leaks no goroutines once in-flight
// replicas drain.
func TestRunContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()

	release := make(chan struct{})
	var started, ran atomic.Int32
	cells := make([]Cell, 8)
	for i := range cells {
		id := i
		cells[i] = Cell{
			Experiment: "cancel",
			ID:         "cancel/point=" + string(rune('a'+id)),
			Run: func(seed uint64) (Result, error) {
				started.Add(1)
				<-release // block until the test releases the replicas
				ran.Add(1)
				return Result{Metrics: Values{"v": 1}}, nil
			},
		}
	}
	spec := &Spec{Name: "cancel", Cells: cells, Parallelism: 2}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = RunContext(ctx, spec)
	}()

	// Wait until both workers hold a replica, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if started.Load() < 2 {
		t.Fatalf("workers never picked up replicas (started=%d)", started.Load())
	}
	cancel()

	// RunContext must return promptly — well before the replicas are
	// released — because runReplica selects on ctx.Done.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	if rep != nil {
		t.Errorf("cancelled campaign returned a report: %+v", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}

	// Release the abandoned replicas; their goroutines drain into the
	// buffered outcome channels and exit, restoring the goroutine count.
	close(release)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked after cancel: before=%d after=%d", before, n)
	}
	// Only the two in-flight replicas ever ran; cancellation stopped
	// the remaining six from being dispatched.
	if got := started.Load(); got != 2 {
		t.Errorf("replicas started = %d, want 2 (dispatch must stop on cancel)", got)
	}
}

// TestRunContextDeadline exercises the deadline path: a campaign whose
// context expires reports DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	spec := &Spec{
		Name: "deadline",
		Cells: []Cell{{
			Experiment: "deadline",
			ID:         "deadline/0",
			Run: func(seed uint64) (Result, error) {
				<-block
				return Result{}, nil
			},
		}},
		Parallelism: 1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rep, err := RunContext(ctx, spec)
	if rep != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RunContext = (%v, %v), want (nil, DeadlineExceeded)", rep, err)
	}
}

// TestRunIsRunContextBackground pins the wrapper relationship: Run on
// an uncancellable context completes normally.
func TestRunIsRunContextBackground(t *testing.T) {
	spec := synthSpec(2, []uint64{1}, 2)
	rep, err := Run(spec)
	if err != nil || rep == nil || len(rep.Cells) != 2 {
		t.Fatalf("Run = (%v, %v), want 2-cell report", rep, err)
	}
}
