package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"presto/internal/metrics"
	"presto/internal/telemetry"
)

// synthCell builds a deterministic cell whose metrics are a pure
// function of (id, seed), with a scheduling-dependent sleep to shake
// out ordering races under parallelism.
func synthCell(exp string, i int) Cell {
	id := fmt.Sprintf("%s/point=%d", exp, i)
	return Cell{
		Experiment: exp,
		ID:         id,
		Run: func(seed uint64) (Result, error) {
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			base := float64(i+1) * 10
			d := &metrics.Dist{}
			for k := 0; k < 5; k++ {
				d.Add(base + float64(seed) + float64(k))
			}
			return Result{
				Metrics: Values{
					"tput":  base + float64(seed)*0.5,
					"loss":  math.Mod(float64(seed)*0.01, 1),
					"const": 42,
				},
				Dists: map[string]*metrics.Dist{"rtt": d},
			}, nil
		},
	}
}

func synthSpec(n int, seeds []uint64, parallelism int) *Spec {
	cells := make([]Cell, 0, n)
	for i := 0; i < n; i++ {
		cells = append(cells, synthCell("synth", i))
	}
	return &Spec{Name: "synth", Cells: cells, Seeds: seeds, Parallelism: parallelism}
}

// artifactBytes renders the byte-stable artifacts (report JSON + CSV).
func artifactBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicAcrossParallelism pins the tentpole invariant:
// aggregated artifacts are byte-identical no matter how many workers
// executed the grid. Run under -race in CI.
func TestDeterministicAcrossParallelism(t *testing.T) {
	seeds := Seeds(7, 3)
	serial, err := Run(synthSpec(24, seeds, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := artifactBytes(t, serial)
	for _, workers := range []int{2, 8} {
		par, err := Run(synthSpec(24, seeds, workers))
		if err != nil {
			t.Fatal(err)
		}
		if got := artifactBytes(t, par); !bytes.Equal(got, want) {
			t.Errorf("parallel=%d artifacts differ from serial (%d vs %d bytes)", workers, len(got), len(want))
		}
	}
}

func TestEnvelopeAggregation(t *testing.T) {
	e := envelope([]float64{1, 2, 3, 4})
	if e.Mean != 2.5 || e.Min != 1 || e.Max != 4 || e.N != 4 {
		t.Errorf("envelope = %+v", e)
	}
	if want := math.Sqrt(1.25); math.Abs(e.Stddev-want) > 1e-12 {
		t.Errorf("stddev %g, want %g", e.Stddev, want)
	}
	if got := envelope([]float64{5}).String(); got != "5" {
		t.Errorf("single-replica string %q", got)
	}
}

func TestMergedDistsAcrossSeeds(t *testing.T) {
	rep, err := Run(synthSpec(1, Seeds(1, 4), 4))
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Cells[0].Dist("rtt")
	if d == nil || d.N() != 20 {
		t.Fatalf("merged dist n=%v, want 20 (5 samples × 4 seeds)", d.N())
	}
	if names := rep.Cells[0].DistNames(); len(names) != 1 || names[0] != "rtt" {
		t.Errorf("dist names %v", names)
	}
}

// TestPanicDoesNotTakeDownSiblings covers the worker-pool failure
// path: a panicking replica is recorded with its error while every
// sibling cell completes normally.
func TestPanicDoesNotTakeDownSiblings(t *testing.T) {
	spec := synthSpec(6, Seeds(1, 2), 4)
	spec.Cells[2].Run = func(seed uint64) (Result, error) {
		if seed == 2 {
			panic("boom")
		}
		return Result{Metrics: Values{"tput": 1}}, nil
	}
	var progress bytes.Buffer
	spec.Progress = &progress
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	failed := rep.FailedReplicas()
	if len(failed) != 1 {
		t.Fatalf("failed = %+v, want exactly the panicking replica", failed)
	}
	f := failed[0]
	if f.Cell != spec.Cells[2].ID || f.Seed != 2 || !strings.Contains(f.Err, "panic: boom") {
		t.Errorf("failure record = %+v", f)
	}
	if !rep.Cells[2].Failed() {
		t.Error("cell with panicking replica not marked failed")
	}
	// The cell's surviving seed still aggregates.
	if e, ok := rep.Envelope(spec.Cells[2].ID, "tput"); !ok || e.N != 1 {
		t.Errorf("surviving replica envelope = %+v ok=%v", e, ok)
	}
	for i, c := range rep.Cells {
		if i != 2 && c.Failed() {
			t.Errorf("sibling cell %s failed", c.ID)
		}
	}
	if !strings.Contains(progress.String(), "FAIL") {
		t.Error("progress stream missing FAIL line")
	}
	// The failure lands in the manifest too.
	m := rep.Manifest("")
	if len(m.Failed) != 1 || m.Failed[0].Cell != spec.Cells[2].ID {
		t.Errorf("manifest failed = %+v", m.Failed)
	}
}

// TestTimeoutReportedAsFailure covers the other failure path: a
// replica exceeding CellTimeout is abandoned and recorded, siblings
// unaffected.
func TestTimeoutReportedAsFailure(t *testing.T) {
	spec := synthSpec(3, nil, 3)
	release := make(chan struct{})
	spec.Cells[1].Run = func(seed uint64) (Result, error) {
		<-release
		return Result{}, nil
	}
	spec.CellTimeout = 20 * time.Millisecond
	rep, err := Run(spec)
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	failed := rep.FailedReplicas()
	if len(failed) != 1 || failed[0].Cell != spec.Cells[1].ID || !strings.Contains(failed[0].Err, "timeout") {
		t.Fatalf("failed = %+v, want one timeout on cell 1", failed)
	}
	if rep.Cells[0].Failed() || rep.Cells[2].Failed() {
		t.Error("sibling cells affected by timeout")
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(&Spec{Name: "empty"}); err == nil {
		t.Error("empty spec accepted")
	}
	dup := synthSpec(2, nil, 1)
	dup.Cells[1].ID = dup.Cells[0].ID
	if _, err := Run(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate IDs accepted (err=%v)", err)
	}
}

func TestSeedsHelper(t *testing.T) {
	got := Seeds(5, 3)
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("Seeds(5,3) = %v", got)
	}
	if got := Seeds(1, 0); len(got) != 1 {
		t.Errorf("Seeds(1,0) = %v", got)
	}
}

func TestSpecHashSensitivity(t *testing.T) {
	a := synthSpec(3, Seeds(1, 2), 1)
	b := synthSpec(3, Seeds(1, 2), 8) // execution knob: same hash
	if a.Hash() != b.Hash() {
		t.Error("parallelism changed the spec hash")
	}
	c := synthSpec(4, Seeds(1, 2), 1) // extra cell: new hash
	if a.Hash() == c.Hash() {
		t.Error("cell grid change did not change the spec hash")
	}
	d := synthSpec(3, Seeds(2, 2), 1) // different seeds: new hash
	if a.Hash() == d.Hash() {
		t.Error("seed change did not change the spec hash")
	}
	e := synthSpec(3, Seeds(1, 2), 1)
	e.Params = map[string]string{"duration": "40ms"}
	if a.Hash() == e.Hash() {
		t.Error("param change did not change the spec hash")
	}
}

func TestGoldenGate(t *testing.T) {
	rep, err := Run(synthSpec(4, Seeds(1, 2), 2))
	if err != nil {
		t.Fatal(err)
	}
	g := GoldenFromReport(rep, 0.02)

	// A fresh identical run passes.
	drifts, err := g.Check(rep)
	if err != nil || len(drifts) != 0 {
		t.Fatalf("self-check: drifts=%v err=%v", drifts, err)
	}

	// Round-trip through JSON.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := &Golden{}
	if err := json.Unmarshal(buf.Bytes(), g2); err != nil {
		t.Fatal(err)
	}

	// Perturb one golden value beyond tolerance: exactly that metric
	// drifts, with a populated diff.
	id := rep.Cells[1].ID
	g2.Cells[id]["tput"] *= 1.10
	drifts, err = g2.Check(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(drifts) != 1 || drifts[0].Cell != id || drifts[0].Metric != "tput" {
		t.Fatalf("drifts = %+v, want one on %s/tput", drifts, id)
	}
	if d := drifts[0]; d.RelDiff < 0.05 || d.Tolerance != 0.02 || d.Missing {
		t.Errorf("drift detail = %+v", d)
	}
	if s := drifts[0].String(); !strings.Contains(s, "tput") || !strings.Contains(s, "tolerance") {
		t.Errorf("drift string %q", s)
	}

	// A per-metric tolerance override absorbs the same perturbation.
	g2.Tolerances = map[string]float64{"tput": 0.25}
	if drifts, _ := g2.Check(rep); len(drifts) != 0 {
		t.Errorf("tolerance override ignored: %v", drifts)
	}

	// Golden rows missing from the report are drifts too.
	g3 := GoldenFromReport(rep, 0.02)
	g3.Cells["synth/point=0"]["vanished"] = 1
	drifts, _ = g3.Check(rep)
	if len(drifts) != 1 || !drifts[0].Missing {
		t.Errorf("missing metric not flagged: %v", drifts)
	}

	// A report from a different spec is refused outright.
	other, err := Run(synthSpec(5, Seeds(1, 2), 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Check(other); err == nil {
		t.Error("spec hash mismatch not detected")
	}
}

func TestGoldenZeroValueIsAbsolute(t *testing.T) {
	g := &Golden{DefaultTolerance: 0.05, Cells: map[string]map[string]float64{"c": {"m": 0}}}
	rep := &Report{Cells: []CellResult{{ID: "c", Envelopes: map[string]Envelope{"m": {Mean: 0.04, N: 1}}}}}
	if drifts, _ := g.Check(rep); len(drifts) != 0 {
		t.Errorf("0.04 vs golden 0 at abs tol 0.05 drifted: %v", drifts)
	}
	rep.Cells[0].Envelopes["m"] = Envelope{Mean: 0.06, N: 1}
	if drifts, _ := g.Check(rep); len(drifts) != 1 {
		t.Errorf("0.06 vs golden 0 at abs tol 0.05 passed")
	}
}

func TestCSVParses(t *testing.T) {
	rep, err := Run(synthSpec(3, Seeds(1, 2), 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 cells × 3 metrics
	if len(rows) != 1+9 {
		t.Errorf("csv rows = %d, want 10", len(rows))
	}
	if rows[0][0] != "experiment" || len(rows[0]) != 8 {
		t.Errorf("csv header = %v", rows[0])
	}
}

func TestTelemetryProbe(t *testing.T) {
	reg := telemetry.NewRegistry(nil)
	spec := synthSpec(4, Seeds(1, 2), 2)
	spec.Telemetry = reg
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot(0)
	probe, ok := snap.Components["campaign"]
	if !ok {
		t.Fatal("no campaign probe registered")
	}
	if probe["replicas_done"] != 8 || probe["replicas_failed"] != 0 {
		t.Errorf("probe = %v", probe)
	}
	if _, ok := probe["slowest.1"]; !ok {
		t.Errorf("probe missing slowest cells: %v", probe)
	}
	u, _ := probe["utilization"].(float64)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}

func TestWriteArtifacts(t *testing.T) {
	rep, err := Run(synthSpec(2, nil, 1))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := rep.WriteArtifacts(dir, "v1.2.3-test"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"report.json", "report.csv", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		t.Fatal(err)
	}
	if m.GitDescribe != "v1.2.3-test" || m.Replicas != 2 || m.Cells != 2 || m.Workers != 1 {
		t.Errorf("manifest = %+v", m)
	}
}
