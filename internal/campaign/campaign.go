// Package campaign executes declarative experiment campaigns: a grid
// of cells (experiment × parameter point) × N seeds fanned out over a
// bounded worker pool, with per-replica panic capture and wall-clock
// timeouts. Seed replicas are aggregated into per-metric
// mean/stddev/min–max envelopes, exported as machine-readable JSON and
// CSV artifacts plus a run manifest, and optionally gated against
// golden envelopes checked into the repository (see gate.go).
//
// Result ordering is fully determined by the spec — cell order × seed
// order — never by worker scheduling, so the aggregated artifacts of a
// campaign are byte-identical at any parallelism level.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"time"

	"presto/internal/metrics"
	"presto/internal/telemetry"
)

// Values maps metric names to scalar measurements for one replica.
type Values map[string]float64

// Result is what one replica (one cell at one seed) produces: scalar
// metrics, aggregated into envelopes across seeds, and optional named
// sample distributions, merged across seeds (for CDF export).
type Result struct {
	Metrics Values
	Dists   map[string]*metrics.Dist
}

// RunFunc executes one replica of a cell. It must be self-contained:
// every invocation builds its own engine state from the seed, shares
// nothing with sibling replicas, and is safe to run concurrently with
// them.
type RunFunc func(seed uint64) (Result, error)

// Cell is one point of the campaign grid.
type Cell struct {
	// Experiment groups cells for rendering ("fig7", "table1", ...).
	Experiment string
	// ID uniquely names the cell within the spec, conventionally
	// "<experiment>/<param>=<value>/..."; it keys golden envelopes and
	// artifact rows, so it must be stable across runs.
	ID string
	// Workload, when non-empty, is the workload-spec hash
	// (spec.Spec.Hash) the cell's traffic was compiled from. It is
	// folded into Spec.Hash and recorded in the report and manifest, so
	// artifacts (and any future result cache) key on the exact
	// workload. Empty for cells with code-defined traffic.
	Workload string
	// Run executes the cell at one seed.
	Run RunFunc
}

// Spec is a declarative campaign: the cell grid, the seeds to
// replicate each cell over, and the execution envelope.
type Spec struct {
	Name  string
	Cells []Cell
	// Seeds are run per cell, in order. Empty defaults to {1}.
	Seeds []uint64
	// Params are extra spec-identity entries (durations, workload
	// knobs) folded into Hash so a golden envelope can detect being
	// compared against a differently-parameterised run.
	Params map[string]string

	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallelism int
	// CellTimeout is the wall-clock budget per replica; a replica that
	// exceeds it is recorded as failed and abandoned (its goroutine's
	// eventual result is discarded). <= 0 disables the timeout.
	CellTimeout time.Duration
	// Progress, when non-nil, receives one line per completed replica
	// plus a summary line. It is written to from worker goroutines
	// under an internal lock.
	Progress io.Writer
	// Telemetry, when non-nil, gets a "campaign" probe (replicas
	// completed/failed, worker utilization, slowest replicas).
	Telemetry *telemetry.Registry
	// Stats, when non-nil, accumulates mergeable quantile sketches of
	// every replica distribution as replicas finish, for live
	// percentile reporting (see LiveStats). When Telemetry is also
	// set, the accumulator is registered as the "stats" probe.
	Stats *LiveStats
}

// Seeds returns n consecutive seeds starting at base — the common
// replication pattern.
func Seeds(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// seeds returns the spec's effective seed list.
func (s *Spec) seeds() []uint64 {
	if len(s.Seeds) == 0 {
		return []uint64{1}
	}
	return s.Seeds
}

// Hash fingerprints the spec's result-determining identity — name,
// cell IDs, seeds, and params — excluding execution knobs
// (parallelism, timeout) that cannot change results. Golden envelopes
// record it to refuse comparison against a different spec.
func (s *Spec) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign/v1\nname=%s\nseeds=%v\n", s.Name, s.seeds())
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "param:%s=%s\n", k, s.Params[k])
	}
	for _, c := range s.Cells {
		// Cells without a workload hash keep the historical encoding so
		// committed golden spec hashes stay valid.
		if c.Workload == "" {
			fmt.Fprintf(h, "cell=%s\n", c.ID)
		} else {
			fmt.Fprintf(h, "cell=%s workload=%s\n", c.ID, c.Workload)
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// validate rejects specs the runner cannot execute deterministically.
func (s *Spec) validate() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("campaign %q: no cells", s.Name)
	}
	seen := make(map[string]bool, len(s.Cells))
	for _, c := range s.Cells {
		if c.ID == "" {
			return fmt.Errorf("campaign %q: cell with empty ID", s.Name)
		}
		if seen[c.ID] {
			return fmt.Errorf("campaign %q: duplicate cell ID %q", s.Name, c.ID)
		}
		if c.Run == nil {
			return fmt.Errorf("campaign %q: cell %q has no Run", s.Name, c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}
