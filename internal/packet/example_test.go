package packet_test

import (
	"fmt"

	"presto/internal/packet"
)

func ExampleShadowMAC() {
	label := packet.ShadowMAC(12, 3) // host 12 via spanning tree 3
	fmt.Println(label, label.IsShadow(), label.ShadowTree(), label.Host())
	// Output: 0a:03:00:00:00:0c true 3 12
}

func ExampleMarshal() {
	p := &packet.Packet{
		SrcMAC:     packet.HostMAC(1),
		DstMAC:     packet.ShadowMAC(2, 0),
		Flow:       packet.FlowKey{Src: packet.Addr{Host: 1, Port: 4000}, Dst: packet.Addr{Host: 2, Port: 5001}},
		Seq:        1,
		Flags:      packet.FlagACK,
		Payload:    1000,
		FlowcellID: 7,
	}
	frame := packet.Marshal(p)
	q, _ := packet.Unmarshal(frame)
	fmt.Println(len(frame), q.FlowcellID, q.Flow)
	// Output: 1062 7 h1:4000->h2:5001
}

func ExampleSeqLT() {
	top := ^uint32(0)
	fmt.Println(packet.SeqLT(top-1, 2), packet.SeqDiff(2, top-1))
	// Output: true 4
}
