package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire codec: Ethernet II + IPv4 + TCP with the flowcell ID carried in
// an experimental TCP option (kind 253), exactly the encoding strategy
// the paper's implementation uses. The simulator's hot path moves
// Packet structs, but this codec is the canonical on-the-wire form: it
// is exercised by the vSwitch encapsulation tests, the trace dumper,
// and anything that wants pcap-style bytes.

const (
	etherTypeIPv4 = 0x0800
	protoTCP      = 6

	optKindEnd      = 0
	optKindNop      = 1
	optKindSack     = 5
	optKindFlowcell = 253 // RFC 4727 experimental option
)

// Errors returned by Unmarshal.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrNotIPv4     = errors.New("packet: not IPv4")
	ErrNotTCP      = errors.New("packet: not TCP")
	ErrBadChecksum = errors.New("packet: bad checksum")
)

// hostIP maps a HostID into 10.0.0.0/8.
func hostIP(h HostID) [4]byte {
	return [4]byte{10, byte(h >> 16), byte(h >> 8), byte(h)}
}

func ipHost(ip [4]byte) HostID {
	return HostID(uint32(ip[1])<<16 | uint32(ip[2])<<8 | uint32(ip[3]))
}

// Marshal serializes p into wire bytes (Ethernet frame without FCS).
// The payload is emitted as p.Payload zero bytes: the simulator tracks
// lengths, not application data.
func Marshal(p *Packet) []byte {
	// TCP options: flowcell option always present, SACK if any.
	optLen := FlowcellOptLen
	if n := len(p.Sack); n > 0 {
		optLen += 2 + 8*n
		optLen = (optLen + 3) &^ 3 // pad to 32-bit boundary
	}
	tcpLen := TCPHeaderLen + optLen // base 20 + options
	ipTotal := IPHeaderLen + tcpLen + p.Payload
	buf := make([]byte, EthHeaderLen+ipTotal)

	// Ethernet.
	copy(buf[0:6], p.DstMAC[:])
	copy(buf[6:12], p.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	// IPv4.
	ip := buf[EthHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	ip[9] = protoTCP
	src, dst := hostIP(p.Flow.Src.Host), hostIP(p.Flow.Dst.Host)
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPHeaderLen]))

	// TCP.
	tcp := ip[IPHeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], p.Flow.Src.Port)
	binary.BigEndian.PutUint16(tcp[2:4], p.Flow.Dst.Port)
	binary.BigEndian.PutUint32(tcp[4:8], p.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], p.Ack)
	dataOff := (20 + optLen) / 4
	tcp[12] = byte(dataOff << 4)
	tcp[13] = tcpFlagByte(p.Flags)
	binary.BigEndian.PutUint16(tcp[14:16], 0xffff) // advertised window (scaled elsewhere)

	// Options.
	opt := tcp[20:]
	opt[0] = optKindFlowcell
	opt[1] = FlowcellOptLen
	// two bytes of padding inside the option keep it 32-bit aligned
	binary.BigEndian.PutUint32(opt[4:8], p.FlowcellID)
	opt = opt[FlowcellOptLen:]
	if n := len(p.Sack); n > 0 {
		opt[0] = optKindSack
		opt[1] = byte(2 + 8*n)
		o := opt[2:]
		for _, b := range p.Sack {
			binary.BigEndian.PutUint32(o[0:4], b.Start)
			binary.BigEndian.PutUint32(o[4:8], b.End)
			o = o[8:]
		}
		// Remaining bytes up to the padded boundary are already zero
		// (optKindEnd).
	}
	binary.BigEndian.PutUint16(tcp[16:18], tcpChecksum(src, dst, tcp[:tcpLen+p.Payload]))
	return buf
}

// Unmarshal parses wire bytes produced by Marshal (or compatible) back
// into a Packet. Checksum failures are reported but parsing continues
// only for valid structure.
func Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < EthHeaderLen+IPHeaderLen+TCPHeaderLen {
		return nil, ErrTruncated
	}
	p := &Packet{}
	copy(p.DstMAC[:], buf[0:6])
	copy(p.SrcMAC[:], buf[6:12])
	if binary.BigEndian.Uint16(buf[12:14]) != etherTypeIPv4 {
		return nil, ErrNotIPv4
	}
	ip := buf[EthHeaderLen:]
	if ip[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(ip[0]&0xf) * 4
	if ihl < IPHeaderLen || len(ip) < ihl {
		return nil, ErrTruncated
	}
	if ipChecksum(ip[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	if ip[9] != protoTCP {
		return nil, ErrNotTCP
	}
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	if len(ip) < total {
		return nil, ErrTruncated
	}
	var sip, dip [4]byte
	copy(sip[:], ip[12:16])
	copy(dip[:], ip[16:20])
	p.Flow.Src.Host = ipHost(sip)
	p.Flow.Dst.Host = ipHost(dip)

	tcp := ip[ihl:total]
	if len(tcp) < 20 {
		return nil, ErrTruncated
	}
	p.Flow.Src.Port = binary.BigEndian.Uint16(tcp[0:2])
	p.Flow.Dst.Port = binary.BigEndian.Uint16(tcp[2:4])
	p.Seq = binary.BigEndian.Uint32(tcp[4:8])
	p.Ack = binary.BigEndian.Uint32(tcp[8:12])
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < 20 || len(tcp) < dataOff {
		return nil, ErrTruncated
	}
	p.Flags = tcpFlagsFromByte(tcp[13])
	p.Payload = len(tcp) - dataOff

	// Parse options.
	opt := tcp[20:dataOff]
	for len(opt) > 0 {
		switch opt[0] {
		case optKindEnd:
			opt = nil
		case optKindNop:
			opt = opt[1:]
		default:
			if len(opt) < 2 || int(opt[1]) < 2 || len(opt) < int(opt[1]) {
				return nil, fmt.Errorf("packet: malformed option kind %d", opt[0])
			}
			body := opt[:opt[1]]
			switch opt[0] {
			case optKindFlowcell:
				if len(body) == FlowcellOptLen {
					p.FlowcellID = binary.BigEndian.Uint32(body[4:8])
				}
			case optKindSack:
				for o := body[2:]; len(o) >= 8; o = o[8:] {
					p.Sack = append(p.Sack, SackBlock{
						Start: binary.BigEndian.Uint32(o[0:4]),
						End:   binary.BigEndian.Uint32(o[4:8]),
					})
				}
			}
			opt = opt[opt[1]:]
		}
	}
	if tcpChecksum(sip, dip, tcp) != 0 {
		return nil, ErrBadChecksum
	}
	return p, nil
}

func tcpFlagByte(f Flags) byte {
	var b byte
	if f.Has(FlagFIN) {
		b |= 0x01
	}
	if f.Has(FlagSYN) {
		b |= 0x02
	}
	if f.Has(FlagRST) {
		b |= 0x04
	}
	if f.Has(FlagPSH) {
		b |= 0x08
	}
	if f.Has(FlagACK) {
		b |= 0x10
	}
	return b
}

func tcpFlagsFromByte(b byte) Flags {
	var f Flags
	if b&0x01 != 0 {
		f |= FlagFIN
	}
	if b&0x02 != 0 {
		f |= FlagSYN
	}
	if b&0x04 != 0 {
		f |= FlagRST
	}
	if b&0x08 != 0 {
		f |= FlagPSH
	}
	if b&0x10 != 0 {
		f |= FlagACK
	}
	return f
}

// ipChecksum computes the Internet checksum over hdr. Computing it over
// a header whose checksum field holds the correct value yields 0.
func ipChecksum(hdr []byte) uint16 {
	return onesComplement(sum16(hdr, 0))
}

// tcpChecksum computes the TCP checksum including the IPv4
// pseudo-header. Computing it over a segment whose checksum field holds
// the correct value yields 0.
func tcpChecksum(src, dst [4]byte, tcp []byte) uint16 {
	var s uint32
	s = sum16(src[:], s)
	s = sum16(dst[:], s)
	s += protoTCP
	s += uint32(len(tcp))
	s = sum16(tcp, s)
	return onesComplement(s)
}

func sum16(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func onesComplement(s uint32) uint16 {
	for s>>16 != 0 {
		s = (s & 0xffff) + (s >> 16)
	}
	return ^uint16(s)
}
