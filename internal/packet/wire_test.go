package packet

import (
	"testing"
	"testing/quick"
)

func samplePacket() *Packet {
	return &Packet{
		SrcMAC:     HostMAC(3),
		DstMAC:     ShadowMAC(7, 2),
		Flow:       FlowKey{Src: Addr{3, 40000}, Dst: Addr{7, 5001}},
		Seq:        123456789,
		Ack:        987654321,
		Flags:      FlagACK | FlagPSH,
		Payload:    1000,
		FlowcellID: 42,
		Sack:       []SackBlock{{100, 200}, {300, 400}},
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := samplePacket()
	buf := Marshal(p)
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.Flow != p.Flow || q.Seq != p.Seq || q.Ack != p.Ack || q.Flags != p.Flags ||
		q.Payload != p.Payload || q.FlowcellID != p.FlowcellID ||
		q.SrcMAC != p.SrcMAC || q.DstMAC != p.DstMAC {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", p, q)
	}
	if len(q.Sack) != 2 || q.Sack[0] != p.Sack[0] || q.Sack[1] != p.Sack[1] {
		t.Fatalf("SACK round trip mismatch: %v", q.Sack)
	}
}

func TestWireRoundTripNoSack(t *testing.T) {
	p := samplePacket()
	p.Sack = nil
	q, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Sack) != 0 || q.FlowcellID != 42 {
		t.Fatalf("no-SACK round trip: %+v", q)
	}
}

func TestWireChecksumDetectsCorruption(t *testing.T) {
	buf := Marshal(samplePacket())
	// Corrupt a TCP header byte (the seq field).
	buf[EthHeaderLen+IPHeaderLen+5] ^= 0xff
	if _, err := Unmarshal(buf); err != ErrBadChecksum {
		t.Fatalf("corrupted TCP accepted: err=%v", err)
	}
	// Corrupt the IP header.
	buf2 := Marshal(samplePacket())
	buf2[EthHeaderLen+8] ^= 0x01 // TTL
	if _, err := Unmarshal(buf2); err != ErrBadChecksum {
		t.Fatalf("corrupted IP accepted: err=%v", err)
	}
}

func TestWireTruncated(t *testing.T) {
	buf := Marshal(samplePacket())
	for _, n := range []int{0, 10, EthHeaderLen, EthHeaderLen + 10, EthHeaderLen + IPHeaderLen + 5} {
		if _, err := Unmarshal(buf[:n]); err == nil {
			t.Errorf("Unmarshal accepted %d-byte truncation", n)
		}
	}
}

func TestWireNotIPv4(t *testing.T) {
	buf := Marshal(samplePacket())
	buf[12], buf[13] = 0x86, 0xdd // EtherType IPv6
	if _, err := Unmarshal(buf); err != ErrNotIPv4 {
		t.Fatalf("err = %v, want ErrNotIPv4", err)
	}
}

// Property: Marshal/Unmarshal is the identity on wire-visible fields.
func TestWireRoundTripProperty(t *testing.T) {
	prop := func(srcHost, dstHost uint16, sport, dport uint16, seq, ack, fc uint32, payload uint16, flagBits uint8) bool {
		p := &Packet{
			SrcMAC:     HostMAC(HostID(srcHost)),
			DstMAC:     HostMAC(HostID(dstHost)),
			Flow:       FlowKey{Src: Addr{HostID(srcHost), sport}, Dst: Addr{HostID(dstHost), dport}},
			Seq:        seq,
			Ack:        ack,
			Flags:      Flags(flagBits) & (FlagSYN | FlagACK | FlagFIN | FlagRST | FlagPSH),
			Payload:    int(payload) % (MSS + 1),
			FlowcellID: fc,
		}
		q, err := Unmarshal(Marshal(p))
		if err != nil {
			return false
		}
		return q.Flow == p.Flow && q.Seq == p.Seq && q.Ack == p.Ack &&
			q.Flags == p.Flags && q.Payload == p.Payload && q.FlowcellID == p.FlowcellID
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIPChecksumSelfVerifies(t *testing.T) {
	buf := Marshal(samplePacket())
	ip := buf[EthHeaderLen : EthHeaderLen+IPHeaderLen]
	if ipChecksum(ip) != 0 {
		t.Fatal("IP checksum over valid header should be 0")
	}
}
