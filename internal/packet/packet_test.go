package packet

import (
	"testing"
	"testing/quick"
)

func TestHostMACRoundTrip(t *testing.T) {
	for _, h := range []HostID{0, 1, 15, 255, 70000} {
		m := HostMAC(h)
		if m.IsShadow() {
			t.Errorf("HostMAC(%d) claims to be shadow", h)
		}
		if m.Host() != h {
			t.Errorf("HostMAC(%d).Host() = %d", h, m.Host())
		}
	}
}

func TestShadowMACRoundTrip(t *testing.T) {
	for _, h := range []HostID{0, 3, 1000} {
		for _, tree := range []int{0, 1, 7, 255} {
			m := ShadowMAC(h, tree)
			if !m.IsShadow() {
				t.Errorf("ShadowMAC(%d,%d) not shadow", h, tree)
			}
			if m.Host() != h || m.ShadowTree() != tree {
				t.Errorf("ShadowMAC(%d,%d) decoded as host=%d tree=%d", h, tree, m.Host(), m.ShadowTree())
			}
		}
	}
}

func TestShadowAndRealMACsDistinct(t *testing.T) {
	if HostMAC(5) == ShadowMAC(5, 0) {
		t.Fatal("host MAC and shadow MAC collide")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	f := FlowKey{Src: Addr{1, 100}, Dst: Addr{2, 200}}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Fatal("Reverse wrong")
	}
	if r.Reverse() != f {
		t.Fatal("double Reverse not identity")
	}
}

func TestFlowKeyHashSpread(t *testing.T) {
	seen := map[uint32]bool{}
	collisions := 0
	for h := HostID(0); h < 64; h++ {
		for p := uint16(0); p < 64; p++ {
			k := FlowKey{Src: Addr{h, 1000 + p}, Dst: Addr{h + 1, 80}}.Hash()
			if seen[k] {
				collisions++
			}
			seen[k] = true
		}
	}
	if collisions > 4 {
		t.Fatalf("%d hash collisions over 4096 flows", collisions)
	}
}

func TestSeqArithmeticWraparound(t *testing.T) {
	const top = ^uint32(0)
	if !SeqLT(top-5, 3) {
		t.Error("wraparound: top-5 should be < 3")
	}
	if !SeqGT(3, top-5) {
		t.Error("wraparound: 3 should be > top-5")
	}
	if SeqMax(top-5, 3) != 3 {
		t.Error("SeqMax across wrap wrong")
	}
	if SeqDiff(3, top-5) != 9 {
		t.Errorf("SeqDiff(3, top-5) = %d, want 9", SeqDiff(3, top-5))
	}
	if !SeqLEQ(7, 7) || !SeqGEQ(7, 7) {
		t.Error("equality cases wrong")
	}
}

// Property: SeqLT is a strict order on any window smaller than 2^31.
func TestSeqOrderProperty(t *testing.T) {
	prop := func(base uint32, a, b uint16) bool {
		x, y := base+uint32(a), base+uint32(b)
		if a == b {
			return !SeqLT(x, y) && !SeqGT(x, y) && SeqLEQ(x, y)
		}
		if a < b {
			return SeqLT(x, y) && !SeqLT(y, x) && SeqMax(x, y) == y
		}
		return SeqGT(x, y) && SeqMax(x, y) == x
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketWireSize(t *testing.T) {
	p := &Packet{Payload: MSS}
	if p.WireSize() != EthOverhead+HeaderLen+MSS {
		t.Fatalf("WireSize = %d", p.WireSize())
	}
	if MSS <= 1400 || MSS >= MTU {
		t.Fatalf("MSS = %d looks wrong", MSS)
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Seq: 5, Sack: []SackBlock{{1, 2}}}
	q := p.Clone()
	q.Sack[0].Start = 99
	if p.Sack[0].Start != 1 {
		t.Fatal("Clone shares SACK storage")
	}
}

func TestSegmentLen(t *testing.T) {
	s := &Segment{StartSeq: ^uint32(0) - 9, EndSeq: 10}
	if s.Len() != 20 {
		t.Fatalf("wraparound segment Len = %d, want 20", s.Len())
	}
}

func TestFlagsString(t *testing.T) {
	if (FlagSYN | FlagACK).String() != "SA" {
		t.Fatalf("flags string: %q", (FlagSYN | FlagACK).String())
	}
	if Flags(0).String() != "." {
		t.Fatalf("zero flags string: %q", Flags(0).String())
	}
}
