package packet

import (
	"testing"
	"testing/quick"
)

func sampleVXLAN() *VXLAN {
	return &VXLAN{
		OuterSrc:     HostMAC(1),
		OuterDst:     ShadowMAC(7, 3), // label on the outer header
		OuterSrcHost: 1,
		OuterDstHost: 7,
		VNI:          0xABCDE,
		FlowcellID:   0x123456,
		Inner:        samplePacket(),
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	v := sampleVXLAN()
	buf := MarshalVXLAN(v)
	got, err := UnmarshalVXLAN(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.OuterSrc != v.OuterSrc || got.OuterDst != v.OuterDst ||
		got.OuterSrcHost != v.OuterSrcHost || got.OuterDstHost != v.OuterDstHost {
		t.Fatalf("outer mismatch: %+v", got)
	}
	if got.VNI != v.VNI {
		t.Fatalf("VNI = %x, want %x", got.VNI, v.VNI)
	}
	if got.FlowcellID != v.FlowcellID {
		t.Fatalf("flowcell = %x, want %x", got.FlowcellID, v.FlowcellID)
	}
	in := got.Inner
	if in.Flow != v.Inner.Flow || in.Seq != v.Inner.Seq || in.Payload != v.Inner.Payload {
		t.Fatalf("inner mismatch: %+v", in)
	}
	// The label rides the OUTER header; the inner frame keeps real
	// MACs (the paper's virtualization-compat argument).
	if !got.OuterDst.IsShadow() {
		t.Fatal("outer label lost")
	}
}

func TestVXLANOverheadConstant(t *testing.T) {
	v := sampleVXLAN()
	inner := Marshal(v.Inner)
	outer := MarshalVXLAN(v)
	if len(outer)-len(inner) != OuterOverhead {
		t.Fatalf("overhead = %d, want %d", len(outer)-len(inner), OuterOverhead)
	}
	// 50 bytes: the standard VXLAN encapsulation cost.
	if OuterOverhead != 50 {
		t.Fatalf("OuterOverhead = %d, want 50", OuterOverhead)
	}
}

func TestVXLANRejectsNonVXLAN(t *testing.T) {
	// A plain TCP frame is not VXLAN.
	if _, err := UnmarshalVXLAN(Marshal(samplePacket())); err == nil {
		t.Fatal("plain frame accepted as VXLAN")
	}
	// Truncation.
	buf := MarshalVXLAN(sampleVXLAN())
	if _, err := UnmarshalVXLAN(buf[:30]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Corrupt outer IP.
	buf2 := MarshalVXLAN(sampleVXLAN())
	buf2[EthHeaderLen+8] ^= 1
	if _, err := UnmarshalVXLAN(buf2); err != ErrBadChecksum {
		t.Fatalf("corrupt outer accepted: %v", err)
	}
}

func TestVXLANEntropySourcePort(t *testing.T) {
	a, b := sampleVXLAN(), sampleVXLAN()
	b.Inner = samplePacket()
	b.Inner.Flow.Src.Port = 12345
	fa := MarshalVXLAN(a)
	fb := MarshalVXLAN(b)
	spA := uint16(fa[EthHeaderLen+IPHeaderLen])<<8 | uint16(fa[EthHeaderLen+IPHeaderLen+1])
	spB := uint16(fb[EthHeaderLen+IPHeaderLen])<<8 | uint16(fb[EthHeaderLen+IPHeaderLen+1])
	if spA == spB {
		t.Fatal("different inner flows produced the same outer entropy port")
	}
}

// Property: VXLAN round trip preserves VNI, flowcell ID, and the inner
// packet for arbitrary values.
func TestVXLANRoundTripProperty(t *testing.T) {
	prop := func(vni, fc uint32, seq uint32, payload uint16) bool {
		v := &VXLAN{
			OuterSrc:     HostMAC(2),
			OuterDst:     ShadowMAC(5, 1),
			OuterSrcHost: 2,
			OuterDstHost: 5,
			VNI:          vni & 0xFFFFFF,
			FlowcellID:   fc & 0xFFFFFF,
			Inner: &Packet{
				SrcMAC:  HostMAC(2),
				DstMAC:  HostMAC(5),
				Flow:    FlowKey{Src: Addr{2, 100}, Dst: Addr{5, 200}},
				Seq:     seq,
				Flags:   FlagACK,
				Payload: int(payload) % (MSS + 1),
			},
		}
		got, err := UnmarshalVXLAN(MarshalVXLAN(v))
		if err != nil {
			return false
		}
		return got.VNI == v.VNI && got.FlowcellID == v.FlowcellID &&
			got.Inner.Seq == seq && got.Inner.Payload == v.Inner.Payload
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
