package packet

import (
	"encoding/binary"
	"errors"
)

// VXLAN encapsulation, per the paper's network-virtualization
// discussion (§3.1): tenant traffic is wrapped in an outer
// Ethernet/IPv4/UDP/VXLAN header; the shadow-MAC label rides the
// *outer* destination MAC so path selection works unchanged, and the
// flowcell ID can ride the VXLAN header's reserved bits (the
// draft-chen-nvo3 scheme the paper cites [26]).

// VXLANPort is the IANA-assigned UDP port.
const VXLANPort = 4789

const (
	udpHeaderLen   = 8
	vxlanHeaderLen = 8
	vxlanFlagVNI   = 0x08
	// OuterOverhead is the total encapsulation overhead.
	OuterOverhead = EthHeaderLen + IPHeaderLen + udpHeaderLen + vxlanHeaderLen
)

// Errors for VXLAN decapsulation.
var (
	ErrNotVXLAN = errors.New("packet: not a VXLAN frame")
)

// VXLAN is a decoded encapsulation.
type VXLAN struct {
	// Outer Ethernet: OuterDst carries the shadow-MAC label in a
	// Presto deployment.
	OuterSrc, OuterDst MAC
	// Outer IP endpoints (the VTEPs).
	OuterSrcHost, OuterDstHost HostID
	// VNI is the 24-bit virtual network identifier.
	VNI uint32
	// FlowcellID stashed in the reserved bits (16 bits in the first
	// reserved field + 8 in the trailing reserved byte).
	FlowcellID uint32
	// Inner is the tenant frame.
	Inner *Packet
}

// MarshalVXLAN serializes the encapsulation around the inner packet's
// canonical wire form.
func MarshalVXLAN(v *VXLAN) []byte {
	inner := Marshal(v.Inner)
	buf := make([]byte, OuterOverhead+len(inner))

	// Outer Ethernet.
	copy(buf[0:6], v.OuterDst[:])
	copy(buf[6:12], v.OuterSrc[:])
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	// Outer IPv4 (UDP).
	ip := buf[EthHeaderLen:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPHeaderLen+udpHeaderLen+vxlanHeaderLen+len(inner)))
	ip[8] = 64
	ip[9] = 17 // UDP
	src, dst := hostIP(v.OuterSrcHost), hostIP(v.OuterDstHost)
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	binary.BigEndian.PutUint16(ip[10:12], ipChecksum(ip[:IPHeaderLen]))

	// UDP: the source port carries an entropy hash in real
	// deployments; here we derive it from the inner flow so per-hop
	// ECMP on the outer 5-tuple still sees flow affinity.
	udp := ip[IPHeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], uint16(0xC000|(v.Inner.Flow.Hash()&0x3FFF)))
	binary.BigEndian.PutUint16(udp[2:4], VXLANPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpHeaderLen+vxlanHeaderLen+len(inner)))
	// UDP checksum optional over IPv4 for VXLAN: leave zero, as most
	// deployments do.

	// VXLAN header: flags(1) reserved(3) vni(3) reserved(1); the
	// reserved fields carry the flowcell ID (24 bits: 16+8).
	vx := udp[udpHeaderLen:]
	vx[0] = vxlanFlagVNI
	binary.BigEndian.PutUint16(vx[1:3], uint16(v.FlowcellID>>8))
	vx[3] = 0
	vx[4] = byte(v.VNI >> 16)
	vx[5] = byte(v.VNI >> 8)
	vx[6] = byte(v.VNI)
	vx[7] = byte(v.FlowcellID)

	copy(vx[vxlanHeaderLen:], inner)
	return buf
}

// UnmarshalVXLAN parses an encapsulated frame.
func UnmarshalVXLAN(buf []byte) (*VXLAN, error) {
	if len(buf) < OuterOverhead {
		return nil, ErrTruncated
	}
	v := &VXLAN{}
	copy(v.OuterDst[:], buf[0:6])
	copy(v.OuterSrc[:], buf[6:12])
	if binary.BigEndian.Uint16(buf[12:14]) != etherTypeIPv4 {
		return nil, ErrNotVXLAN
	}
	ip := buf[EthHeaderLen:]
	if ip[0]>>4 != 4 || ip[9] != 17 {
		return nil, ErrNotVXLAN
	}
	if ipChecksum(ip[:IPHeaderLen]) != 0 {
		return nil, ErrBadChecksum
	}
	var sip, dip [4]byte
	copy(sip[:], ip[12:16])
	copy(dip[:], ip[16:20])
	v.OuterSrcHost = ipHost(sip)
	v.OuterDstHost = ipHost(dip)

	udp := ip[IPHeaderLen:]
	if binary.BigEndian.Uint16(udp[2:4]) != VXLANPort {
		return nil, ErrNotVXLAN
	}
	vx := udp[udpHeaderLen:]
	if vx[0]&vxlanFlagVNI == 0 {
		return nil, ErrNotVXLAN
	}
	v.VNI = uint32(vx[4])<<16 | uint32(vx[5])<<8 | uint32(vx[6])
	v.FlowcellID = uint32(binary.BigEndian.Uint16(vx[1:3]))<<8 | uint32(vx[7])

	inner, err := Unmarshal(vx[vxlanHeaderLen:])
	if err != nil {
		return nil, err
	}
	v.Inner = inner
	return v, nil
}
