// Package packet defines the data-plane objects the simulator moves
// around: MTU-sized packets, TSO/GRO segments, flow keys, MAC addresses
// and shadow-MAC labels, and wraparound-safe TCP sequence arithmetic.
//
// The design follows the paper's own encoding choices: the destination
// MAC carries the shadow-MAC forwarding label, the flowcell ID rides in
// a TCP option (the paper's implementation choice, §3.1 footnote 1),
// and TSO replicates both onto every derived MTU packet.
package packet

import (
	"fmt"

	"presto/internal/sim"
)

// MTU and header sizes (bytes), matching the paper's 1500-byte-MTU
// 10 GbE testbed.
const (
	MTU            = 1500                      // IP MTU
	EthHeaderLen   = 14                        // Ethernet II header
	EthOverhead    = EthHeaderLen + 4 + 8 + 12 // header + FCS + preamble + IFG, for wire-time accounting
	IPHeaderLen    = 20                        // IPv4 without options
	TCPHeaderLen   = 20                        // TCP without options
	FlowcellOptLen = 8                         // kind(1) + len(1) + pad(2) + flowcell ID(4)
	HeaderLen      = IPHeaderLen + TCPHeaderLen + FlowcellOptLen
	MSS            = MTU - HeaderLen // max TCP payload per packet
	MaxSegSize     = 64 * 1024       // max TSO/GRO segment payload (the flowcell size)
)

// HostID identifies a host (server) in the topology.
type HostID int32

// Addr is a transport endpoint.
type Addr struct {
	Host HostID
	Port uint16
}

func (a Addr) String() string { return fmt.Sprintf("h%d:%d", a.Host, a.Port) }

// FlowKey identifies a unidirectional TCP flow. It is comparable and
// used as a map key throughout the receive path (the GRO hash table is
// keyed on it, as in the kernel).
type FlowKey struct {
	Src, Dst Addr
}

// Reverse returns the flow key of the opposite direction.
func (f FlowKey) Reverse() FlowKey { return FlowKey{Src: f.Dst, Dst: f.Src} }

func (f FlowKey) String() string { return fmt.Sprintf("%v->%v", f.Src, f.Dst) }

// Hash returns a fast non-cryptographic hash of the flow key, used by
// ECMP-style hashing. FNV-1a over the tuple bytes.
func (f FlowKey) Hash() uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint32(f.Src.Host))
	mix(uint32(f.Dst.Host))
	mix(uint32(f.Src.Port)<<16 | uint32(f.Dst.Port))
	return h
}

// MAC is a 48-bit Ethernet address. Real host MACs and shadow-MAC
// forwarding labels share this type; IsShadow distinguishes them.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Locally-administered address prefixes: 0x02 for real host MACs,
// 0x0a for per-host shadow-MAC labels, 0x0e for switch-to-switch
// tunnel labels.
const (
	realMACPrefix   = 0x02
	shadowMACPrefix = 0x0a
	tunnelMACPrefix = 0x0e
)

// HostMAC returns the real MAC of host h.
func HostMAC(h HostID) MAC {
	return MAC{realMACPrefix, 0, byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
}

// ShadowMAC returns the shadow-MAC label that routes to host h along
// spanning tree t. One label exists per (vSwitch, tree), exactly as in
// the paper (§3.1).
func ShadowMAC(h HostID, tree int) MAC {
	return MAC{shadowMACPrefix, byte(tree), byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h)}
}

// TunnelMAC returns the switch-to-switch tunnel label that routes to
// destination leaf index leaf along spanning tree t. Tunneling needs
// O(|switches| x |paths|) rules instead of O(|vSwitches| x |paths|)
// (§3.1's scalability extension); the terminal leaf forwards on L3.
func TunnelMAC(leaf int, tree int) MAC {
	return MAC{tunnelMACPrefix, byte(tree), 0, 0, byte(leaf >> 8), byte(leaf)}
}

// IsShadow reports whether m is a per-host shadow-MAC label.
func (m MAC) IsShadow() bool { return m[0] == shadowMACPrefix }

// IsTunnel reports whether m is a switch-to-switch tunnel label.
func (m MAC) IsTunnel() bool { return m[0] == tunnelMACPrefix }

// IsLabel reports whether m is any forwarding label.
func (m MAC) IsLabel() bool { return m.IsShadow() || m.IsTunnel() }

// TunnelLeaf returns the destination leaf index of a tunnel label.
func (m MAC) TunnelLeaf() int { return int(m[4])<<8 | int(m[5]) }

// ShadowTree returns the spanning-tree index encoded in a shadow or
// tunnel MAC.
func (m MAC) ShadowTree() int { return int(m[1]) }

// MACHost extracts the host ID from either a real or shadow MAC.
func (m MAC) Host() HostID {
	return HostID(uint32(m[2])<<24 | uint32(m[3])<<16 | uint32(m[4])<<8 | uint32(m[5]))
}

// Flags are TCP flags.
type Flags uint8

const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

func (f Flags) Has(x Flags) bool { return f&x == x }

func (f Flags) String() string {
	s := ""
	if f.Has(FlagSYN) {
		s += "S"
	}
	if f.Has(FlagACK) {
		s += "A"
	}
	if f.Has(FlagFIN) {
		s += "F"
	}
	if f.Has(FlagRST) {
		s += "R"
	}
	if f.Has(FlagPSH) {
		s += "P"
	}
	if s == "" {
		s = "."
	}
	return s
}

// SackBlock is one SACK range [Start, End) in sequence space.
type SackBlock struct {
	Start, End uint32
}

// Packet is one MTU-sized (or smaller) packet on the wire. Packets are
// passed by pointer and owned by the receiver after handoff.
type Packet struct {
	// L2: DstMAC carries the shadow-MAC label while in the fabric; the
	// destination vSwitch rewrites it back to the real MAC.
	SrcMAC, DstMAC MAC

	// L3/L4.
	Flow    FlowKey
	Seq     uint32 // first payload byte, or probe/control seq
	Ack     uint32 // cumulative ACK (valid if FlagACK)
	Flags   Flags
	Sack    []SackBlock
	Payload int // TCP payload bytes in this packet

	// FlowcellID is the sequentially increasing flowcell number assigned
	// by the sending vSwitch (TCP option in the paper's implementation).
	FlowcellID uint32

	// CE is the ECN Congestion Experienced mark, set by switches whose
	// queue exceeds the marking threshold (DCTCP support).
	CE bool
	// EchoCE/EchoTotal ride on ACKs: the receiver's cumulative CE and
	// total data-packet counts (the simulator's condensed form of
	// DCTCP's per-ACK ECE echo state machine).
	EchoCE, EchoTotal uint64

	// Bookkeeping (not on the wire).
	SentAt  sim.Time // transmit timestamp for RTT estimation
	Retrans bool     // retransmitted data (pushed up GRO immediately)
	Probe   bool     // single-packet RTT probe (sockperf-like)
	Hops    int      // number of switch hops taken, for loop detection
}

// WireSize returns the bytes this packet occupies on the wire,
// including all L2 overhead (preamble, FCS, inter-frame gap), which is
// what link serialization time is computed from.
func (p *Packet) WireSize() int {
	return EthOverhead + HeaderLen + p.Payload
}

// EndSeq returns the sequence number just past this packet's payload.
func (p *Packet) EndSeq() uint32 { return p.Seq + uint32(p.Payload) }

func (p *Packet) String() string {
	return fmt.Sprintf("%v %v seq=%d len=%d ack=%d fc=%d", p.Flow, p.Flags, p.Seq, p.Payload, p.Ack, p.FlowcellID)
}

// Clone returns a deep copy (SACK list included).
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Sack != nil {
		q.Sack = append([]SackBlock(nil), p.Sack...)
	}
	return &q
}

// Segment is a contiguous run of TCP payload for one flow — the unit
// TSO accepts from the stack on send and GRO pushes up on receive. A
// segment never spans a flowcell boundary (the flowcell ID is a TCP
// option, and packets whose options differ do not merge).
type Segment struct {
	// SrcMAC and DstMAC are set by the sending vSwitch (DstMAC carries
	// the shadow-MAC label); TSO replicates them onto every derived
	// packet. Unused on the receive path.
	SrcMAC, DstMAC MAC

	Flow       FlowKey
	StartSeq   uint32 // first byte
	EndSeq     uint32 // one past last byte
	FlowcellID uint32
	Packets    int      // MTU packets merged into this segment
	Retrans    bool     // contains retransmitted data
	CreatedAt  sim.Time // when the segment was created in GRO
	LastMerge  sim.Time // when a packet last merged into it
	Flags      Flags
	Ack        uint32
	Sack       []SackBlock
	SentAt     sim.Time // earliest packet timestamp (RTT)
	Probe      bool

	// CEPackets counts CE-marked packets merged into this segment
	// (receive path), so DCTCP's mark fraction survives GRO.
	CEPackets int
	// EchoCE/EchoTotal ride on ACKs: cumulative CE-marked and total
	// data packets the receiver has seen (the simulator's stand-in for
	// DCTCP's ECE echo state machine).
	EchoCE    uint64
	EchoTotal uint64
}

// Len returns the payload length in bytes (wraparound-safe).
func (s *Segment) Len() int { return int(SeqDiff(s.EndSeq, s.StartSeq)) }

func (s *Segment) String() string {
	return fmt.Sprintf("%v [%d,%d) fc=%d pkts=%d", s.Flow, s.StartSeq, s.EndSeq, s.FlowcellID, s.Packets)
}

// Sequence-number arithmetic, wraparound-safe (RFC 1982-style serial
// number comparison over uint32). The paper notes "we ensure overflow
// is handled properly in all cases" — these helpers are used for both
// TCP sequence numbers and flowcell IDs.

// SeqLT reports a < b in modular sequence space.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in modular sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports a > b in modular sequence space.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports a >= b in modular sequence space.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqMax returns the later of a and b in modular sequence space.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqDiff returns a-b as a signed distance (positive if a is after b).
func SeqDiff(a, b uint32) int32 { return int32(a - b) }
