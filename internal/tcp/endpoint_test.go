package tcp

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
)

// pair wires two endpoints through an ideal (infinite-bandwidth) link
// with a fixed one-way delay and an optional drop/mangle filter.
type pair struct {
	eng   *sim.Engine
	delay sim.Time
	a, b  *Endpoint
	// filter returns false to drop a segment. Applied on every send.
	filter func(*packet.Segment) bool
}

type pairEnd struct {
	p    *pair
	peer **Endpoint
}

func (d *pairEnd) Send(seg *packet.Segment) {
	if d.p.filter != nil && !d.p.filter(seg) {
		return
	}
	d.p.eng.Schedule(d.p.delay, func() { (*d.peer).DeliverSegment(seg) })
}

func newPair(eng *sim.Engine, delay sim.Time, cfg Config) *pair {
	p := &pair{eng: eng, delay: delay}
	fa := packet.FlowKey{Src: packet.Addr{Host: 1, Port: 10}, Dst: packet.Addr{Host: 2, Port: 20}}
	p.a = New(eng, fa, &pairEnd{p: p, peer: &p.b}, cfg)
	p.b = New(eng, fa.Reverse(), &pairEnd{p: p, peer: &p.a}, cfg)
	return p
}

func TestBasicTransfer(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 10*sim.Microsecond, Config{})
	const n = 1 << 20
	p.a.Write(n)
	eng.RunAll()
	if got := p.b.Delivered(); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	if got := p.a.Acked(); got != n {
		t.Fatalf("acked %d, want %d", got, n)
	}
	if !p.a.Done() {
		t.Fatal("sender not done")
	}
	if p.a.Stats.Timeouts != 0 || p.a.Stats.Retransmits != 0 {
		t.Fatalf("lossless transfer saw recovery: %+v", p.a.Stats)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 50*sim.Microsecond, Config{})
	p.a.SetUnlimited(true)
	w0 := p.a.Cwnd()
	eng.Run(210 * sim.Microsecond) // ~2 RTTs (RTT = 100us)
	if p.a.Cwnd() < 3*w0 {
		t.Fatalf("cwnd after 2 RTTs = %v, want >= 3x initial %v", p.a.Cwnd(), w0)
	}
	if !p.a.InSlowStart() {
		t.Fatal("should still be in slow start with no loss and large ssthresh")
	}
}

func TestRTTEstimation(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 50*sim.Microsecond, Config{})
	p.a.Write(200_000)
	eng.RunAll()
	srtt := p.a.SRTT()
	if srtt < 90*sim.Microsecond || srtt > 150*sim.Microsecond {
		t.Fatalf("srtt = %v, want ~100us", srtt)
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	eng := sim.NewEngine()
	// Per-MSS segments so a drop is one packet, not a whole window
	// (the fabric layer is what normally packetizes TSO writes).
	p := newPair(eng, 20*sim.Microsecond, Config{MaxSeg: packet.MSS})
	dropped := false
	p.filter = func(s *packet.Segment) bool {
		// Drop the first data segment that starts at byte 30000+1.
		if !dropped && s.Len() > 0 && !s.Retrans && packet.SeqGEQ(s.StartSeq, 30001) {
			dropped = true
			return false
		}
		return true
	}
	const n = 400_000
	p.a.Write(n)
	eng.RunAll()
	if !dropped {
		t.Fatal("filter never dropped")
	}
	if p.b.Delivered() != n || p.a.Acked() != n {
		t.Fatalf("delivered/acked = %d/%d, want %d", p.b.Delivered(), p.a.Acked(), n)
	}
	if p.a.Stats.Retransmits == 0 {
		t.Fatal("no fast retransmit for the dropped segment")
	}
	if p.a.Stats.Timeouts != 0 {
		t.Fatalf("needed %d RTOs; SACK recovery should have sufficed", p.a.Stats.Timeouts)
	}
	if eng.Now() > 50*sim.Millisecond {
		t.Fatalf("recovery took %v — smells like an RTO", eng.Now())
	}
}

func TestRTOOnBlackout(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 20*sim.Microsecond, Config{})
	blackout := true
	p.filter = func(s *packet.Segment) bool {
		if blackout && s.Len() > 0 && packet.SeqGT(s.StartSeq, 50000) {
			return false
		}
		return true
	}
	eng.Schedule(500*sim.Millisecond, func() { blackout = false })
	const n = 200_000
	p.a.Write(n)
	eng.RunAll()
	if p.a.Stats.Timeouts == 0 {
		t.Fatal("blackout should force an RTO")
	}
	if p.b.Delivered() != n {
		t.Fatalf("delivered %d, want %d after recovery", p.b.Delivered(), n)
	}
	// The first RTO must respect MinRTO (200ms).
	if eng.Now() < 200*sim.Millisecond {
		t.Fatalf("finished at %v, before MinRTO could have fired", eng.Now())
	}
}

func TestCwndCollapsesOnTimeout(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 20*sim.Microsecond, Config{})
	p.a.SetUnlimited(true)
	eng.Run(5 * sim.Millisecond) // grow the window
	grown := p.a.Cwnd()
	p.a.onRTO()
	if p.a.Cwnd() >= grown || p.a.Cwnd() > float64(2*p.a.MSS()) {
		t.Fatalf("cwnd after RTO = %v (was %v), want ~1 MSS", p.a.Cwnd(), grown)
	}
}

func TestReorderingTriggersSpuriousRetransmit(t *testing.T) {
	// Deliver data segments with the 2nd..4th segments swapped far
	// enough ahead that dup-ACKs/FACK fire: TCP misreads reordering as
	// loss (§2.2). This is the pathology Presto GRO exists to prevent.
	eng := sim.NewEngine()
	cfg := Config{MaxSeg: packet.MSS} // force per-MSS segments
	p := newPair(eng, 10*sim.Microsecond, cfg)
	var held []*packet.Segment
	delayCount := 0
	p.filter = func(s *packet.Segment) bool {
		if s.Len() > 0 && !s.Retrans && packet.SeqGT(s.StartSeq, 1) && delayCount < 1 && s.Flow == p.a.Flow() {
			// Hold the 2nd segment and release it after 6 more pass.
			delayCount++
			held = append(held, s)
			eng.Schedule(400*sim.Microsecond, func() {
				for _, h := range held {
					p.b.DeliverSegment(h)
				}
			})
			return false
		}
		return true
	}
	p.a.Write(100_000)
	eng.RunAll()
	if p.b.Delivered() != 100_000 {
		t.Fatalf("delivered %d", p.b.Delivered())
	}
	if p.a.Stats.Retransmits == 0 {
		t.Fatal("reordering did not trigger a (spurious) fast retransmit — dup-ACK path broken")
	}
}

func TestReceiverReassemblyOutOfOrder(t *testing.T) {
	eng := sim.NewEngine()
	f := packet.FlowKey{Src: packet.Addr{Host: 9, Port: 1}, Dst: packet.Addr{Host: 8, Port: 2}}
	sink := &captureDown{}
	e := New(eng, f.Reverse(), sink, Config{})
	seg := func(start, end uint32) *packet.Segment {
		return &packet.Segment{Flow: f, StartSeq: start, EndSeq: end, Flags: packet.FlagACK, Ack: 1}
	}
	e.DeliverSegment(seg(2001, 3001)) // out of order
	if e.Delivered() != 0 {
		t.Fatal("delivered advanced past a hole")
	}
	if e.Stats.OOOSegments != 1 {
		t.Fatal("OOO segment not counted")
	}
	e.DeliverSegment(seg(1, 2001)) // fills the head
	if e.Delivered() != 3000 {
		t.Fatalf("delivered = %d, want 3000", e.Delivered())
	}
	// The out-of-order ACK must have carried a SACK block.
	foundSack := false
	for _, s := range sink.segs {
		if len(s.Sack) > 0 {
			foundSack = true
		}
	}
	if !foundSack {
		t.Fatal("no SACK advertised for out-of-order data")
	}
}

type captureDown struct{ segs []*packet.Segment }

func (c *captureDown) Send(s *packet.Segment) { c.segs = append(c.segs, s) }

func TestCallbacks(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 10*sim.Microsecond, Config{})
	var deliveredAt, ackedAt sim.Time
	p.b.OnDelivered = func(total uint64) {
		if total >= 50_000 && deliveredAt == 0 {
			deliveredAt = eng.Now()
		}
	}
	p.a.OnAcked = func(total uint64) {
		if total >= 50_000 && ackedAt == 0 {
			ackedAt = eng.Now()
		}
	}
	p.a.Write(50_000)
	eng.RunAll()
	if deliveredAt == 0 || ackedAt == 0 {
		t.Fatal("callbacks did not fire")
	}
	if ackedAt < deliveredAt {
		t.Fatal("acked before delivered?")
	}
}

func TestMicePingPong(t *testing.T) {
	// 50KB request + app-level 100B response, the paper's mice FCT
	// definition.
	eng := sim.NewEngine()
	p := newPair(eng, 25*sim.Microsecond, Config{})
	var fct sim.Time
	p.b.OnDelivered = func(total uint64) {
		if total >= 50_000 {
			p.b.Write(100) // app-level ack on the reverse direction
		}
	}
	p.a.OnDelivered = func(total uint64) {
		if total >= 100 && fct == 0 {
			fct = eng.Now()
		}
	}
	p.a.Write(50_000)
	eng.RunAll()
	if fct == 0 {
		t.Fatal("no app-level response")
	}
	if fct > 2*sim.Millisecond {
		t.Fatalf("mice FCT = %v, absurdly slow for an idle path", fct)
	}
}

func TestOutOfOrderCounts(t *testing.T) {
	e := &Endpoint{}
	e.fcLog = []uint32{1, 1, 2, 1, 2, 3, 3}
	counts := e.OutOfOrderCounts()
	// fc1 spans idx0-3 with one foreign (idx2); fc2 spans idx2-4 with
	// one foreign (idx3); fc3 spans idx5-6 with none.
	total := 0
	for _, c := range counts {
		total += c
	}
	if len(counts) != 3 || total != 2 {
		t.Fatalf("counts = %v, want three flowcells totalling 2", counts)
	}
}

func TestProbeSegmentsMarked(t *testing.T) {
	eng := sim.NewEngine()
	sink := &captureDown{}
	f := packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 2, Port: 2}}
	e := New(eng, f, sink, Config{})
	e.Probe = true
	e.Write(64)
	if len(sink.segs) == 0 || !sink.segs[0].Probe {
		t.Fatal("probe flag not propagated to segments")
	}
}

// Property: random single-segment drops anywhere in the stream never
// prevent full, exactly-once delivery.
func TestLossRecoveryProperty(t *testing.T) {
	prop := func(seed uint64, sizeRaw uint16, dropsRaw uint8) bool {
		eng := sim.NewEngine()
		p := newPair(eng, 15*sim.Microsecond, Config{})
		rng := sim.NewRNG(seed)
		n := (int(sizeRaw)%300 + 20) * 1000 // 20KB..320KB
		dropProb := float64(dropsRaw%10) / 100
		p.filter = func(s *packet.Segment) bool {
			if s.Len() > 0 && rng.Float64() < dropProb {
				return false
			}
			return true
		}
		p.a.Write(n)
		eng.RunAll()
		return p.b.Delivered() == uint64(n) && p.a.Acked() == uint64(n) && p.a.Done()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scoreboard stays sorted and non-overlapping under
// arbitrary insertions, and contains() agrees with the inserted set.
func TestScoreboardProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		rng := sim.NewRNG(seed)
		var sb scoreboard
		covered := map[uint32]bool{}
		for i := 0; i < int(nRaw%40)+1; i++ {
			start := uint32(rng.Intn(500))
			l := uint32(rng.Intn(50) + 1)
			sb.add(start, start+l)
			for s := start; s < start+l; s++ {
				covered[s] = true
			}
		}
		// Sorted, non-overlapping.
		for i := 1; i < len(sb.blocks); i++ {
			if !packet.SeqLT(sb.blocks[i-1].End, sb.blocks[i].Start) {
				return false
			}
		}
		// Membership matches.
		for s := uint32(0); s < 600; s++ {
			if sb.contains(s) != covered[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreboardFirstHole(t *testing.T) {
	var sb scoreboard
	if _, _, ok := sb.firstHole(100); ok {
		t.Fatal("empty scoreboard has no hole")
	}
	sb.add(200, 300)
	start, end, ok := sb.firstHole(100)
	if !ok || start != 100 || end != 200 {
		t.Fatalf("hole = [%d,%d) ok=%v, want [100,200)", start, end, ok)
	}
	sb.add(100, 200) // fill it
	if _, _, ok := sb.firstHole(100); ok {
		t.Fatal("hole reported after fill")
	}
	sb.add(400, 500)
	start, end, _ = sb.firstHole(100)
	if start != 300 || end != 400 {
		t.Fatalf("second hole = [%d,%d), want [300,400)", start, end)
	}
}

func TestScoreboardPrune(t *testing.T) {
	var sb scoreboard
	sb.add(100, 200)
	sb.add(300, 400)
	sb.prune(150)
	if sb.contains(120) || !sb.contains(160) || !sb.contains(350) {
		t.Fatalf("prune wrong: %v", sb.blocks)
	}
	if got := sb.sackedAbove(150); got != 150 {
		t.Fatalf("sackedAbove = %d, want 150", got)
	}
}

func TestCubicGrowsAfterLoss(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 100*sim.Microsecond, Config{CC: "cubic"})
	p.a.SetUnlimited(true)
	eng.Run(20 * sim.Millisecond)
	before := p.a.Cwnd()
	// Synthesize a loss event.
	p.a.enterRecovery()
	p.a.inRec = false
	atLoss := p.a.Cwnd()
	if atLoss >= before {
		t.Fatalf("no multiplicative decrease: %v -> %v", before, atLoss)
	}
	eng.Run(120 * sim.Millisecond)
	if p.a.Cwnd() <= atLoss {
		t.Fatalf("cubic did not regrow: %v", p.a.Cwnd())
	}
}

func TestRenoVsCubicSelection(t *testing.T) {
	if NewCC("reno").Name() != "reno" {
		t.Fatal("reno not selected")
	}
	if NewCC("cubic").Name() != "cubic" {
		t.Fatal("cubic not selected")
	}
	if NewCC("").Name() != "cubic" {
		t.Fatal("default should be cubic")
	}
}
