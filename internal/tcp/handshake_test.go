package tcp

import (
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
)

func TestHandshakeAddsOneRTT(t *testing.T) {
	const delay = 100 * sim.Microsecond
	run := func(handshake bool) sim.Time {
		eng := sim.NewEngine()
		p := newPair(eng, delay, Config{Handshake: handshake})
		var done sim.Time
		p.b.OnDelivered = func(total uint64) {
			if total >= 10_000 && done == 0 {
				done = eng.Now()
			}
		}
		p.a.Write(10_000)
		eng.RunAll()
		if done == 0 {
			t.Fatal("transfer never completed")
		}
		return done
	}
	warm := run(false)
	cold := run(true)
	extra := cold - warm
	// The handshake should cost almost exactly one RTT (2*delay).
	if extra < 2*delay-10*sim.Microsecond || extra > 2*delay+50*sim.Microsecond {
		t.Fatalf("handshake added %v, want ~%v", extra, 2*delay)
	}
}

func TestHandshakeQueuesEarlyWrites(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 50*sim.Microsecond, Config{Handshake: true})
	p.a.Write(5000)
	p.a.Write(5000) // both land before establishment
	if p.a.Established() {
		t.Fatal("established before SYN-ACK")
	}
	eng.RunAll()
	if !p.a.Established() {
		t.Fatal("never established")
	}
	if p.b.Delivered() != 10_000 {
		t.Fatalf("delivered %d", p.b.Delivered())
	}
}

func TestLostSYNRetransmitted(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 50*sim.Microsecond, Config{Handshake: true})
	dropped := false
	p.filter = func(s *packet.Segment) bool {
		if s.Flags.Has(packet.FlagSYN) && !s.Flags.Has(packet.FlagACK) && !dropped {
			dropped = true
			return false
		}
		return true
	}
	p.a.Write(20_000)
	eng.RunAll()
	if !dropped {
		t.Fatal("SYN never dropped")
	}
	if p.b.Delivered() != 20_000 {
		t.Fatalf("delivered %d after lost SYN", p.b.Delivered())
	}
	if p.a.Stats.Timeouts == 0 {
		t.Fatal("SYN loss did not count a timeout")
	}
	// Linux retries SYN after 1s; our model uses the endpoint RTO
	// (MinRTO 200ms) — completion must be after one backoff period.
	if eng.Now() < 200*sim.Millisecond {
		t.Fatalf("finished at %v, too early for a SYN retry", eng.Now())
	}
}

func TestShutdownFIN(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 20*sim.Microsecond, Config{})
	closed := false
	p.a.Write(30_000)
	p.a.Shutdown(func() { closed = true })
	eng.RunAll()
	if p.b.Delivered() != 30_000 {
		t.Fatalf("delivered %d", p.b.Delivered())
	}
	if !closed {
		t.Fatal("shutdown callback never fired")
	}
}

func TestShutdownWaitsForData(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 20*sim.Microsecond, Config{})
	var closedAt, deliveredAt sim.Time
	p.b.OnDelivered = func(total uint64) {
		if total >= 100_000 && deliveredAt == 0 {
			deliveredAt = eng.Now()
		}
	}
	p.a.Write(100_000)
	p.a.Shutdown(func() { closedAt = eng.Now() })
	eng.RunAll()
	if closedAt == 0 || deliveredAt == 0 {
		t.Fatal("missing events")
	}
	if closedAt < deliveredAt {
		t.Fatalf("FIN completed at %v before data at %v", closedAt, deliveredAt)
	}
}

func TestHandshakeDefaultOff(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 10*sim.Microsecond, Config{})
	if !p.a.Established() {
		t.Fatal("default connections must be pre-established")
	}
}
