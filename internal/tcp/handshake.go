package tcp

import (
	"presto/internal/packet"
	"presto/internal/sim"
)

// Connection lifecycle: the experiments run over pre-established
// long-lived connections (§4/§6: "each server establishes a long-lived
// TCP connection with every other server"), so handshakes are off by
// default. Enabling Config.Handshake makes an endpoint complete a
// SYN / SYN-ACK exchange before data flows — adding the real extra RTT
// to cold-start flows — and Shutdown sends FIN once all data is acked.
//
// The model is deliberately compact: SYN consumes one sequence number,
// the three-way handshake's final ACK is the first data packet (or a
// bare ACK for an idle connection), and simultaneous-open/half-close
// subtleties that the evaluation never exercises are out of scope.

// handshakeState tracks connection establishment.
type handshakeState int

const (
	// hsEstablished is the default (pre-established) state.
	hsEstablished handshakeState = iota
	hsIdle                       // handshake mode, nothing sent yet
	hsSynSent                    // active opener, SYN in flight
	hsSynReceived                // passive opener, SYN-ACK in flight
)

// StartHandshake puts the endpoint into handshake mode: data written
// before the SYN-ACK arrives is queued, not sent. Call on the active
// opener; the passive side responds automatically.
func (e *Endpoint) StartHandshake() {
	e.hs = hsIdle
}

// Established reports whether data transfer may proceed.
func (e *Endpoint) Established() bool { return e.hs == hsEstablished }

// sendSYN emits the active opener's SYN.
func (e *Endpoint) sendSYN() {
	e.hs = hsSynSent
	now := e.eng.Now()
	e.down.Send(&packet.Segment{
		Flow:      e.flow,
		StartSeq:  e.iss - 1, // SYN occupies the sequence number before ISS
		EndSeq:    e.iss - 1,
		CreatedAt: now,
		LastMerge: now,
		Flags:     packet.FlagSYN,
		SentAt:    now,
		Probe:     e.Probe,
	})
	e.rtoTimer.Reset(e.rto())
}

// handleHandshake processes SYN and SYN-ACK segments. It returns true
// when the segment was consumed by handshake logic.
func (e *Endpoint) handleHandshake(s *packet.Segment) bool {
	switch {
	case s.Flags.Has(packet.FlagSYN) && s.Flags.Has(packet.FlagACK):
		// Active opener receiving SYN-ACK: established; push any queued
		// data out.
		if e.hs == hsSynSent {
			e.hs = hsEstablished
			e.sampleHandshakeRTT(s)
			e.rtoTimer.Stop()
			e.sendAck()
			e.trySend()
		}
		return true
	case s.Flags.Has(packet.FlagSYN):
		// Passive opener: answer with SYN-ACK. Established optimistically
		// (the final ACK of the three-way handshake is implicit in the
		// first data or ACK segment that follows).
		e.hs = hsEstablished
		now := e.eng.Now()
		e.down.Send(&packet.Segment{
			Flow:      e.flow,
			StartSeq:  e.iss - 1,
			EndSeq:    e.iss - 1,
			CreatedAt: now,
			LastMerge: now,
			Flags:     packet.FlagSYN | packet.FlagACK,
			Ack:       e.rcvNxt,
			SentAt:    now,
			Probe:     e.Probe,
		})
		return true
	}
	return false
}

// sampleHandshakeRTT seeds SRTT from the SYN round trip.
func (e *Endpoint) sampleHandshakeRTT(s *packet.Segment) {
	if s.SentAt <= 0 {
		return
	}
	// SentAt is the peer's SYN-ACK transmit time, not ours; fall back
	// to a direct measure only when the engine time moved.
	if e.srtt == 0 && e.hsSentAt > 0 {
		sample := e.eng.Now() - e.hsSentAt
		if sample > 0 {
			e.srtt = sample
			e.rttvar = sample / 2
		}
	}
}

// Shutdown sends FIN after all written data is acknowledged and
// invokes done when the peer's FIN-ACK arrives. Idempotent.
func (e *Endpoint) Shutdown(done func()) {
	e.onShutdown = done
	e.maybeFIN()
}

func (e *Endpoint) maybeFIN() {
	if e.onShutdown == nil || e.finSent || e.unlimited || e.sndUna != e.appLimit {
		return
	}
	e.finSent = true
	now := e.eng.Now()
	e.down.Send(&packet.Segment{
		Flow:      e.flow,
		StartSeq:  e.sndNxt,
		EndSeq:    e.sndNxt,
		CreatedAt: now,
		LastMerge: now,
		Flags:     packet.FlagFIN | packet.FlagACK,
		Ack:       e.rcvNxt,
		SentAt:    now,
		Probe:     e.Probe,
	})
}

// handleFIN processes a peer FIN: if we have not sent our own FIN yet,
// answer with one (full close — the passive close of a typical
// request/response exchange); either way, a pending Shutdown completes
// once the peer's FIN arrives.
func (e *Endpoint) handleFIN(s *packet.Segment) {
	if !e.finSent {
		e.finSent = true
		now := e.eng.Now()
		e.down.Send(&packet.Segment{
			Flow:      e.flow,
			StartSeq:  e.sndNxt,
			EndSeq:    e.sndNxt,
			CreatedAt: now,
			LastMerge: now,
			Flags:     packet.FlagFIN | packet.FlagACK,
			Ack:       e.rcvNxt,
			SentAt:    now,
			Probe:     e.Probe,
		})
	} else {
		e.sendAck()
	}
	if e.onShutdown != nil {
		cb := e.onShutdown
		e.onShutdown = nil
		cb()
	}
}

var _ = sim.Time(0)
