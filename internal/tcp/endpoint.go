// Package tcp implements the transport endpoints the simulator's hosts
// run: a TCP sender/receiver with CUBIC or Reno congestion control,
// SACK-based recovery, duplicate-ACK fast retransmit, FACK, and
// RFC 6298 retransmission timeouts (200 ms minimum, the Linux default
// the paper's mice-flow timeouts hinge on).
//
// Endpoints hand TSO-sized segments (≤64 KB) to a Downstream — the
// vSwitch, which runs Algorithm 1 over them — and receive segments
// pushed up by GRO. Reordering therefore affects the endpoint exactly
// as it does real TCP: dup-ACKs, spurious fast retransmits, and FACK
// mis-inference, unless the GRO layer masks it (§2.2).
package tcp

import (
	"fmt"
	"sort"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
)

// Downstream accepts outgoing segments from an endpoint (the vSwitch
// datapath on a host).
type Downstream interface {
	Send(seg *packet.Segment)
}

// Config tunes an Endpoint. Zero fields take defaults matching the
// paper's testbed settings (CUBIC, SACK+FACK on).
type Config struct {
	MSS          int      // payload per MTU packet
	MaxSeg       int      // max TSO write (the 64 KB flowcell size)
	InitCwndMSS  int      // initial window in MSS (Linux: 10)
	MaxCwnd      int      // cwnd/receive-window cap in bytes
	MinRTO       sim.Time // Linux default 200 ms
	DupAckThresh int      // classic 3
	FACK         bool     // tcp_fack=1 (§4): infer loss from SACK holes
	CC           string   // "cubic" (default), "reno", or "dctcp"
	// Handshake requires a SYN/SYN-ACK exchange before data flows
	// (default off: the paper's experiments use pre-established
	// long-lived connections).
	Handshake bool
	// ISS is the initial sequence number (default 1). Set near 2^32 to
	// exercise wraparound end to end.
	ISS uint32

	// RecordFlowcells logs the flowcell ID of every received data
	// segment for the Figure 5a out-of-order analysis.
	RecordFlowcells bool

	// Tracer, when non-nil, receives retransmit and cwnd trace events,
	// attributed to TraceHost (the sending host of this endpoint).
	Tracer    *telemetry.Tracer
	TraceHost int32
}

// DefaultConfig returns the experiment settings from §4.
func DefaultConfig() Config {
	return Config{
		MSS:          packet.MSS,
		MaxSeg:       packet.MaxSegSize,
		InitCwndMSS:  10,
		MaxCwnd:      1 << 20,
		MinRTO:       200 * sim.Millisecond,
		DupAckThresh: 3,
		FACK:         true,
		CC:           "cubic",
	}
}

func (c *Config) fill() {
	d := DefaultConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.MaxSeg == 0 {
		c.MaxSeg = d.MaxSeg
	}
	if c.InitCwndMSS == 0 {
		c.InitCwndMSS = d.InitCwndMSS
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = d.MaxCwnd
	}
	if c.MinRTO == 0 {
		c.MinRTO = d.MinRTO
	}
	if c.DupAckThresh == 0 {
		c.DupAckThresh = d.DupAckThresh
	}
	if c.CC == "" {
		c.CC = d.CC
	}
}

// Stats counts endpoint activity.
type Stats struct {
	BytesSent       uint64 // first-transmission payload bytes
	BytesAcked      uint64 // cumulatively acknowledged payload bytes
	BytesDelivered  uint64 // in-order payload bytes delivered to the app
	SegmentsSent    uint64
	Retransmits     uint64 // fast retransmissions
	Timeouts        uint64 // RTO fires
	Probes          uint64 // tail-loss probes sent
	DupAcks         uint64 // duplicate ACKs received
	OOOSegments     uint64 // data segments arriving out of order
	AcksSent        uint64
	SpuriousRecover uint64 // recoveries entered while reordering only
}

type sentRec struct {
	endSeq uint32
	at     sim.Time
}

// Endpoint is one direction of a TCP connection: it sends data on
// flow and receives data+ACKs on flow.Reverse(). A bidirectional
// connection is a pair of endpoints.
type Endpoint struct {
	eng  *sim.Engine
	cfg  Config
	flow packet.FlowKey
	down Downstream
	cc   CongestionControl

	// Sender state.
	iss         uint32
	sndUna      uint32
	sndNxt      uint32
	appLimit    uint32 // one past the last byte the app has written
	unlimited   bool
	cwnd        float64
	ssthresh    float64
	dupacks     int
	sacks       scoreboard
	inRec       bool
	recoverPt   uint32
	rexmitHint  uint32   // next seq eligible for retransmission this recovery
	unaRexmitAt sim.Time // when the hole at snd.una was last retransmitted
	rtoTimer    *sim.Timer
	backoff     uint
	probeTimer  *sim.Timer // tail loss probe (TLP), kernel 3.10+
	ptoBackoff  uint
	srtt        sim.Time
	rttvar      sim.Time
	timings     []sentRec
	karnUntil   uint32 // samples at or below this endSeq are ambiguous

	// Receiver state.
	rcvNxt uint32
	ooo    scoreboard
	// ECN accounting (DCTCP): data packets seen and how many carried
	// CE, echoed back on every ACK.
	rcvTotalPkts uint64
	rcvCEPkts    uint64

	// DCTCP sender state (active when cfg.CC == "dctcp").
	dctcp        bool
	dctcpAlpha   float64
	lastEchoCE   uint64
	lastEchoTot  uint64
	dctcpWindEnd uint32

	// Connection lifecycle (handshake.go).
	hs         handshakeState
	hsSentAt   sim.Time
	finSent    bool
	onShutdown func()

	// Probe marks all outgoing segments as latency probes (sockperf
	// style), which bypass GRO merging.
	Probe bool

	// OnDelivered fires whenever in-order delivery advances, with the
	// total bytes delivered so far (app-level ACK hooks, FCT timing).
	OnDelivered func(total uint64)
	// OnAcked fires when cumulative ACK advances, with total bytes
	// acked.
	OnAcked func(total uint64)

	Stats Stats
	fcLog []uint32
}

// New creates an endpoint sending on flow through down.
func New(eng *sim.Engine, flow packet.FlowKey, down Downstream, cfg Config) *Endpoint {
	cfg.fill()
	iss := cfg.ISS
	if iss == 0 {
		iss = 1
	}
	e := &Endpoint{
		eng:      eng,
		cfg:      cfg,
		flow:     flow,
		down:     down,
		cc:       NewCC(cfg.CC),
		iss:      iss,
		sndUna:   iss,
		sndNxt:   iss,
		appLimit: iss,
		rcvNxt:   iss,
		cwnd:     float64(cfg.InitCwndMSS * cfg.MSS),
		ssthresh: float64(cfg.MaxCwnd),
	}
	e.rtoTimer = sim.NewTimer(eng, e.onRTO)
	e.probeTimer = sim.NewTimer(eng, e.onProbeTimeout)
	e.dctcp = cfg.CC == "dctcp"
	if cfg.Handshake {
		e.hs = hsIdle
	}
	return e
}

// Flow returns the endpoint's outgoing flow key.
func (e *Endpoint) Flow() packet.FlowKey { return e.flow }

// Cwnd returns the congestion window in bytes.
func (e *Endpoint) Cwnd() float64 { return e.cwnd }

// SetCwnd overrides the congestion window (used by coupled controllers).
func (e *Endpoint) SetCwnd(w float64) {
	if w < float64(e.cfg.MSS) {
		w = float64(e.cfg.MSS)
	}
	e.cwnd = w
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (e *Endpoint) SRTT() sim.Time { return e.srtt }

// SetCongestionControl swaps the congestion controller (used by MPTCP
// to couple subflows). Call before any data is in flight.
func (e *Endpoint) SetCongestionControl(cc CongestionControl) { e.cc = cc }

// Inflight returns the estimated outstanding (un-SACKed) bytes.
func (e *Endpoint) Inflight() int { return e.inflight() }

// Unsent returns bytes written by the app but not yet transmitted.
func (e *Endpoint) Unsent() int {
	if e.unlimited {
		return 1 << 30
	}
	n := int(packet.SeqDiff(e.appLimit, e.sndNxt))
	if n < 0 {
		n = 0
	}
	return n
}

// MSS returns the configured MSS.
func (e *Endpoint) MSS() int { return e.cfg.MSS }

// InSlowStart reports whether the sender is below ssthresh.
func (e *Endpoint) InSlowStart() bool { return e.cwnd < e.ssthresh }

// Write appends n bytes of application data to the send stream.
func (e *Endpoint) Write(n int) {
	e.appLimit += uint32(n)
	e.trySend()
}

// SetUnlimited makes the endpoint an elephant: it always has data to
// send.
func (e *Endpoint) SetUnlimited(on bool) {
	e.unlimited = on
	if on {
		e.trySend()
	}
}

// Delivered returns in-order bytes delivered to the application.
func (e *Endpoint) Delivered() uint64 { return e.Stats.BytesDelivered }

// Acked returns cumulatively acknowledged bytes.
func (e *Endpoint) Acked() uint64 { return e.Stats.BytesAcked }

// Done reports whether all written data has been acknowledged.
func (e *Endpoint) Done() bool { return !e.unlimited && e.sndUna == e.appLimit }

// inflight estimates outstanding bytes not yet SACKed (the pipe).
func (e *Endpoint) inflight() int {
	out := int(packet.SeqDiff(e.sndNxt, e.sndUna))
	out -= e.sacks.sackedAbove(e.sndUna)
	if out < 0 {
		out = 0
	}
	return out
}

// trySend transmits new data while the window allows.
func (e *Endpoint) trySend() {
	switch e.hs {
	case hsIdle:
		// First send in handshake mode: open the connection instead.
		e.hsSentAt = e.eng.Now()
		e.sendSYN()
		return
	case hsSynSent:
		return // data queues until the SYN-ACK arrives
	}
	for {
		var remaining int
		if e.unlimited {
			remaining = e.cfg.MaxSeg
		} else {
			remaining = int(packet.SeqDiff(e.appLimit, e.sndNxt))
		}
		if remaining <= 0 {
			break
		}
		avail := int(e.cwnd) - e.inflight()
		if avail <= 0 {
			break
		}
		n := remaining
		if n > e.cfg.MaxSeg {
			n = e.cfg.MaxSeg
		}
		if n > avail {
			// Send a partial segment only if nothing is outstanding or
			// at least an MSS fits (avoid silly-window dribble).
			if avail < e.cfg.MSS && e.inflight() > 0 {
				break
			}
			n = avail
		}
		e.sendData(e.sndNxt, n, false)
		e.sndNxt += uint32(n)
		e.Stats.BytesSent += uint64(n)
	}
	e.armRTO()
}

// sendData emits one TSO segment [seq, seq+n).
func (e *Endpoint) sendData(seq uint32, n int, retrans bool) {
	now := e.eng.Now()
	seg := &packet.Segment{
		Flow:      e.flow,
		StartSeq:  seq,
		EndSeq:    seq + uint32(n),
		Packets:   (n + e.cfg.MSS - 1) / e.cfg.MSS,
		Retrans:   retrans,
		CreatedAt: now,
		LastMerge: now,
		Flags:     packet.FlagACK,
		Ack:       e.rcvNxt,
		SentAt:    now,
		Probe:     e.Probe,
	}
	e.Stats.SegmentsSent++
	if retrans {
		if packet.SeqGT(seg.EndSeq, e.karnUntil) {
			e.karnUntil = seg.EndSeq
		}
		if seq == e.sndUna {
			e.unaRexmitAt = now
		}
	} else {
		e.timings = append(e.timings, sentRec{endSeq: seg.EndSeq, at: now})
		if len(e.timings) > 4096 {
			e.timings = e.timings[1024:]
		}
	}
	e.down.Send(seg)
}

// sendAck emits a pure ACK reflecting the current receive state.
func (e *Endpoint) sendAck() {
	e.Stats.AcksSent++
	now := e.eng.Now()
	e.down.Send(&packet.Segment{
		Flow:      e.flow,
		StartSeq:  e.sndNxt,
		EndSeq:    e.sndNxt,
		CreatedAt: now,
		LastMerge: now,
		Flags:     packet.FlagACK,
		Ack:       e.rcvNxt,
		Sack:      e.ooo.recent(3),
		SentAt:    now,
		Probe:     e.Probe,
		EchoCE:    e.rcvCEPkts,
		EchoTotal: e.rcvTotalPkts,
	})
}

// DeliverSegment is the receive entry point: GRO (or the host stack)
// pushes segments of the reverse flow here.
func (e *Endpoint) DeliverSegment(s *packet.Segment) {
	if s.Flags.Has(packet.FlagSYN) {
		if e.handleHandshake(s) {
			return
		}
	}
	if s.Len() > 0 {
		e.receiveData(s)
	}
	if s.Flags.Has(packet.FlagACK) {
		e.processAck(s)
	}
	if s.Flags.Has(packet.FlagFIN) {
		e.handleFIN(s)
	}
}

func (e *Endpoint) receiveData(s *packet.Segment) {
	if e.cfg.RecordFlowcells {
		e.fcLog = append(e.fcLog, s.FlowcellID)
	}
	e.rcvTotalPkts += uint64(s.Packets)
	e.rcvCEPkts += uint64(s.CEPackets)
	start, end := s.StartSeq, s.EndSeq
	if packet.SeqLEQ(end, e.rcvNxt) {
		// Entirely duplicate: ACK again so the sender sees progress.
		e.sendAck()
		return
	}
	if packet.SeqLT(start, e.rcvNxt) {
		start = e.rcvNxt
	}
	if start == e.rcvNxt {
		e.rcvNxt = end
		// Pull any out-of-order ranges that are now contiguous.
		e.ooo.prune(e.rcvNxt)
		for {
			if len(e.ooo.blocks) == 0 || e.ooo.blocks[0].Start != e.rcvNxt {
				break
			}
			e.rcvNxt = e.ooo.blocks[0].End
			e.ooo.prune(e.rcvNxt)
		}
		delivered := uint64(packet.SeqDiff(e.rcvNxt, e.iss))
		e.Stats.BytesDelivered = delivered
		if e.OnDelivered != nil {
			e.OnDelivered(delivered)
		}
	} else {
		e.Stats.OOOSegments++
		e.ooo.add(start, end)
	}
	e.sendAck()
}

func (e *Endpoint) processAck(s *packet.Segment) {
	ack := s.Ack
	for _, b := range s.Sack {
		e.sacks.add(b.Start, b.End)
	}
	if e.dctcp {
		e.dctcpUpdate(s, ack)
	}
	switch {
	case packet.SeqGT(ack, e.sndUna):
		acked := int(packet.SeqDiff(ack, e.sndUna))
		e.sndUna = ack
		e.dupacks = 0
		e.sacks.prune(ack)
		e.sampleRTT(ack)
		e.backoff = 0
		e.ptoBackoff = 0
		e.Stats.BytesAcked = uint64(packet.SeqDiff(e.sndUna, e.iss))

		if e.inRec {
			if packet.SeqGEQ(ack, e.recoverPt) {
				e.inRec = false
				e.cwnd = e.ssthresh
			} else {
				// Partial ACK: the hole right at the new snd.una is lost
				// too — retransmit it immediately (NewReno).
				if packet.SeqLT(e.rexmitHint, ack) {
					e.rexmitHint = ack
				}
				e.retransmitHole()
			}
		} else if e.cwnd < e.ssthresh {
			// Slow start.
			e.cwnd += float64(acked)
			if e.cwnd > e.ssthresh {
				e.cwnd = e.ssthresh
			}
		} else {
			e.cwnd = e.cc.OnAck(e, acked)
		}
		e.clampCwnd()
		if e.OnAcked != nil {
			e.OnAcked(e.Stats.BytesAcked)
		}
		e.maybeFIN()
		if e.sndUna == e.sndNxt {
			e.rtoTimer.Stop()
			e.probeTimer.Stop()
		} else {
			e.armRTO()
		}
		e.trySend()

	case ack == e.sndUna && packet.SeqGT(e.sndNxt, e.sndUna) && s.Len() == 0:
		// Pure duplicate ACK with data outstanding.
		e.dupacks++
		e.Stats.DupAcks++
		trigger := e.dupacks >= e.cfg.DupAckThresh
		if !trigger && e.cfg.FACK {
			// FACK: treat the gap implied by the highest SACK as loss
			// once it exceeds the dup-ACK threshold's worth of data.
			if hi, ok := e.sacks.highestEnd(); ok {
				holeAndSacked := int(packet.SeqDiff(hi, e.sndUna))
				sacked := e.sacks.sackedAbove(e.sndUna)
				if holeAndSacked-sacked > e.cfg.DupAckThresh*e.cfg.MSS && sacked > 0 {
					trigger = true
				}
			}
		}
		if trigger && !e.inRec {
			e.enterRecovery()
		} else if e.inRec {
			// Window inflation keeps the pipe full during recovery.
			e.cwnd += float64(e.cfg.MSS)
			e.clampCwnd()
			// Lost-retransmission heuristic (RACK-style): dup-ACKs keep
			// arriving but the front hole hasn't budged for well over an
			// RTT since we last resent it — the retransmission itself
			// died. Resend it instead of stalling until the RTO.
			if wait := 2 * e.srtt; wait > 0 && e.eng.Now()-e.unaRexmitAt > wait && packet.SeqGT(e.rexmitHint, e.sndUna) {
				e.rexmitHint = e.sndUna
			}
			e.retransmitHole()
			e.trySend()
		}
	}
}

// dctcpUpdate implements DCTCP's ECN response (Alizadeh et al.): fold
// the CE fraction of each ACK into alpha (g = 1/16) and, once per
// window, scale cwnd by (1 - alpha/2). Loss still halves via the
// normal recovery path.
func (e *Endpoint) dctcpUpdate(s *packet.Segment, ack uint32) {
	if s.EchoTotal == 0 {
		return
	}
	dTot := s.EchoTotal - e.lastEchoTot
	dCE := s.EchoCE - e.lastEchoCE
	if dTot == 0 || s.EchoTotal < e.lastEchoTot {
		return
	}
	e.lastEchoTot = s.EchoTotal
	e.lastEchoCE = s.EchoCE
	const g = 1.0 / 16
	frac := float64(dCE) / float64(dTot)
	e.dctcpAlpha = (1-g)*e.dctcpAlpha + g*frac
	if packet.SeqGEQ(ack, e.dctcpWindEnd) {
		if e.dctcpAlpha > 1e-6 {
			e.cwnd *= 1 - e.dctcpAlpha/2
			e.clampCwnd()
			if e.cwnd < e.ssthresh {
				e.ssthresh = e.cwnd
			}
		}
		e.dctcpWindEnd = e.sndNxt
	}
}

func (e *Endpoint) enterRecovery() {
	e.inRec = true
	e.recoverPt = e.sndNxt
	e.rexmitHint = e.sndUna
	e.ssthresh = e.cc.OnLoss(e)
	if e.ssthresh < 2*float64(e.cfg.MSS) {
		e.ssthresh = 2 * float64(e.cfg.MSS)
	}
	e.cwnd = e.ssthresh + float64(e.cfg.DupAckThresh*e.cfg.MSS)
	e.clampCwnd()
	e.Stats.Retransmits++
	e.cfg.Tracer.Retransmit(e.eng.Now(), e.cfg.TraceHost, e.sndUna, int64(e.cwnd), "fast")
	e.retransmitHole()
}

// retransmitHole resends the next unSACKed, not-yet-retransmitted
// range (one MSS at a time, SACK pipe style): each dup-ACK advances
// through the holes instead of re-sending the first one forever.
func (e *Endpoint) retransmitHole() {
	from := e.rexmitHint
	if packet.SeqLT(from, e.sndUna) {
		from = e.sndUna
	}
	start, end, ok := e.sacks.firstHole(from)
	if !ok {
		if from != e.sndUna {
			// Every known hole this recovery has been retransmitted;
			// wait for partial ACKs or the RTO backstop.
			return
		}
		start, end = e.sndUna, e.sndUna+uint32(e.cfg.MSS)
		if packet.SeqGT(start+uint32(e.cfg.MSS), e.sndNxt) {
			end = e.sndNxt
		}
	}
	n := int(packet.SeqDiff(end, start))
	if n > e.cfg.MSS {
		n = e.cfg.MSS
	}
	if n <= 0 {
		return
	}
	e.sendData(start, n, true)
	e.rexmitHint = start + uint32(n)
	e.armRTO()
}

func (e *Endpoint) onRTO() {
	if e.hs == hsSynSent {
		// Lost SYN: resend with backoff.
		e.Stats.Timeouts++
		if e.backoff < 12 {
			e.backoff++
		}
		e.sendSYN()
		return
	}
	if e.sndUna == e.sndNxt {
		return
	}
	e.Stats.Timeouts++
	e.cfg.Tracer.Retransmit(e.eng.Now(), e.cfg.TraceHost, e.sndUna, int64(e.cwnd), "rto")
	e.ssthresh = e.cwnd / 2
	if e.ssthresh < 2*float64(e.cfg.MSS) {
		e.ssthresh = 2 * float64(e.cfg.MSS)
	}
	e.cwnd = float64(e.cfg.MSS)
	e.cc.OnTimeout(e)
	e.inRec = false
	e.dupacks = 0
	// Conservative: forget SACK state (reneging-safe) and rewind
	// snd.nxt to snd.una — everything outstanding is presumed lost and
	// will be resent under slow start as ACKs return (go-back-N, the
	// pre-RACK Linux behaviour). Karn's rule voids RTT samples for the
	// rewound range.
	e.sacks.clear()
	if packet.SeqGT(e.sndNxt, e.karnUntil) {
		e.karnUntil = e.sndNxt
	}
	e.sndNxt = e.sndUna
	e.timings = e.timings[:0]
	n := e.cfg.MSS
	if e.unlimited || int(packet.SeqDiff(e.appLimit, e.sndNxt)) >= n {
		e.sendData(e.sndNxt, n, true)
		e.sndNxt += uint32(n)
	} else if rem := int(packet.SeqDiff(e.appLimit, e.sndNxt)); rem > 0 {
		e.sendData(e.sndNxt, rem, true)
		e.sndNxt += uint32(rem)
	}
	if e.backoff < 12 {
		e.backoff++
	}
	e.armRTO()
}

func (e *Endpoint) armRTO() {
	if e.sndUna == e.sndNxt {
		return
	}
	e.rtoTimer.Reset(e.rto())
	e.probeTimer.Reset(e.pto())
}

// pto returns the tail-loss-probe timeout: max(2·SRTT, 10 ms), 40 ms
// with no RTT sample yet (Linux TLP constants), doubled per
// consecutive probe without progress.
func (e *Endpoint) pto() sim.Time {
	pto := 40 * sim.Millisecond
	if e.srtt > 0 {
		pto = 2 * e.srtt
		if pto < 10*sim.Millisecond {
			pto = 10 * sim.Millisecond
		}
	}
	return pto << e.ptoBackoff
}

// onProbeTimeout fires when ACKs have stopped with data outstanding —
// the pipe drained with losses unrepaired (e.g. the whole tail of a
// window died, or a retransmission died and dup-ACKs ran out). Probe
// by resending the first hole: its delivery restarts the ACK clock
// and SACK-driven recovery, long before the RTO backstop.
func (e *Endpoint) onProbeTimeout() {
	if e.sndUna == e.sndNxt {
		return
	}
	e.Stats.Probes++
	e.cfg.Tracer.Retransmit(e.eng.Now(), e.cfg.TraceHost, e.sndUna, int64(e.cwnd), "probe")
	n := int(packet.SeqDiff(e.sndNxt, e.sndUna))
	if n > e.cfg.MSS {
		n = e.cfg.MSS
	}
	e.sendData(e.sndUna, n, true)
	if e.ptoBackoff < 8 {
		e.ptoBackoff++
	}
	e.probeTimer.Reset(e.pto())
}

func (e *Endpoint) rto() sim.Time {
	rto := e.cfg.MinRTO
	if e.srtt > 0 {
		est := e.srtt + 4*e.rttvar
		if est > rto {
			rto = est
		}
	}
	return rto << e.backoff
}

func (e *Endpoint) sampleRTT(ack uint32) {
	now := e.eng.Now()
	var sample sim.Time = -1
	i := 0
	for ; i < len(e.timings); i++ {
		rec := e.timings[i]
		if packet.SeqGT(rec.endSeq, ack) {
			break
		}
		if packet.SeqGT(rec.endSeq, e.karnUntil) {
			sample = now - rec.at
		}
	}
	e.timings = e.timings[i:]
	if sample < 0 {
		return
	}
	if e.srtt == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
		e.cfg.Tracer.Cwnd(now, e.cfg.TraceHost, int64(e.cwnd), e.srtt)
		return
	}
	// RFC 6298 smoothing.
	d := e.srtt - sample
	if d < 0 {
		d = -d
	}
	e.rttvar = (3*e.rttvar + d) / 4
	e.srtt = (7*e.srtt + sample) / 8
	e.cfg.Tracer.Cwnd(now, e.cfg.TraceHost, int64(e.cwnd), e.srtt)
}

func (e *Endpoint) clampCwnd() {
	if e.cwnd > float64(e.cfg.MaxCwnd) {
		e.cwnd = float64(e.cfg.MaxCwnd)
	}
	if e.cwnd < float64(e.cfg.MSS) {
		e.cwnd = float64(e.cfg.MSS)
	}
}

// FlowcellLog returns the recorded flowcell IDs of received data
// segments (RecordFlowcells must be set).
func (e *Endpoint) FlowcellLog() []uint32 { return e.fcLog }

// ResetFlowcellLog clears the recorded log (e.g. to exclude warmup
// from an out-of-order analysis).
func (e *Endpoint) ResetFlowcellLog() { e.fcLog = e.fcLog[:0] }

// OutOfOrderCounts computes, per flowcell, how many segments from
// other flowcells arrived between its first and last segment — the
// metric of Figure 5a (0 means reordering was fully masked).
func (e *Endpoint) OutOfOrderCounts() []int {
	type span struct{ first, last int }
	spans := make(map[uint32]*span)
	for i, fc := range e.fcLog {
		if s, ok := spans[fc]; ok {
			s.last = i
		} else {
			spans[fc] = &span{first: i, last: i}
		}
	}
	// Report spans in order of first appearance in the log, not map
	// iteration order, so the counts are deterministic across runs.
	fcs := make([]uint32, 0, len(spans))
	for fc := range spans {
		fcs = append(fcs, fc)
	}
	sort.Slice(fcs, func(i, j int) bool { return spans[fcs[i]].first < spans[fcs[j]].first })
	var out []int
	for _, fc := range fcs {
		s := spans[fc]
		n := 0
		for i := s.first; i <= s.last; i++ {
			if e.fcLog[i] != fc {
				n++
			}
		}
		out = append(out, n)
	}
	return out
}

// DebugDCTCP summarizes ECN state for tests.
func (e *Endpoint) DebugDCTCP() string {
	return fmt.Sprintf("dctcp=%v alpha=%.3f lastEchoCE=%d lastEchoTot=%d rcvCE=%d rcvTot=%d cwnd=%.0f",
		e.dctcp, e.dctcpAlpha, e.lastEchoCE, e.lastEchoTot, e.rcvCEPkts, e.rcvTotalPkts, e.cwnd)
}
