package tcp

import (
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
)

// cubicEndpoint builds an endpoint with a controlled cwnd for direct
// CC-math tests.
func cubicEndpoint(eng *sim.Engine) *Endpoint {
	f := packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 2, Port: 2}}
	return New(eng, f, &captureDown{}, Config{CC: "cubic"})
}

func TestCubicConcaveGrowthTowardWmax(t *testing.T) {
	eng := sim.NewEngine()
	e := cubicEndpoint(eng)
	c := &Cubic{}
	e.SetCongestionControl(c)
	e.SetCwnd(float64(200 * e.MSS()))

	// A loss fixes wMax at the current window and shrinks cwnd.
	after := c.OnLoss(e)
	if after >= e.Cwnd() {
		t.Fatalf("no decrease: %v -> %v", e.Cwnd(), after)
	}
	if after < 0.6*e.Cwnd() || after > 0.8*e.Cwnd() {
		t.Fatalf("beta decrease = %v of %v, want ~0.7", after, e.Cwnd())
	}
	e.SetCwnd(after)

	// Growth right after the loss is fast, then flattens approaching
	// wMax (concave region).
	w := e.Cwnd()
	growthEarly := 0.0
	for i := 0; i < 50; i++ {
		nw := c.OnAck(e, e.MSS())
		growthEarly += nw - e.Cwnd()
		e.SetCwnd(nw)
	}
	eng.Schedule(50*sim.Millisecond, func() {})
	eng.RunAll()
	growthLate := 0.0
	for i := 0; i < 50; i++ {
		nw := c.OnAck(e, e.MSS())
		growthLate += nw - e.Cwnd()
		e.SetCwnd(nw)
	}
	if e.Cwnd() <= w {
		t.Fatalf("cubic did not grow after loss: %v -> %v", w, e.Cwnd())
	}
	_ = growthEarly
	_ = growthLate
}

func TestCubicFastConvergence(t *testing.T) {
	eng := sim.NewEngine()
	e := cubicEndpoint(eng)
	c := &Cubic{}
	e.SetCongestionControl(c)
	// First loss at a high window.
	e.SetCwnd(float64(400 * e.MSS()))
	c.OnLoss(e)
	firstWmax := c.wMax
	// Second loss at a lower window: fast convergence sets wMax below
	// the current window.
	e.SetCwnd(float64(200 * e.MSS()))
	c.OnLoss(e)
	if c.wMax >= firstWmax {
		t.Fatalf("fast convergence did not lower wMax: %v -> %v", firstWmax, c.wMax)
	}
	if c.wMax > e.Cwnd() {
		t.Fatalf("wMax %v above the window %v at loss", c.wMax, e.Cwnd())
	}
}

func TestCubicGrowthBoundedPerAck(t *testing.T) {
	eng := sim.NewEngine()
	e := cubicEndpoint(eng)
	c := &Cubic{}
	e.SetCongestionControl(c)
	e.SetCwnd(float64(10 * e.MSS()))
	// Long idle epoch would make the cubic target enormous; per-ACK
	// growth must still be bounded by the bytes acked.
	c.OnAck(e, e.MSS())
	eng.Schedule(2*sim.Second, func() {})
	eng.RunAll()
	nw := c.OnAck(e, e.MSS())
	if nw-e.Cwnd() > float64(e.MSS())+1 {
		t.Fatalf("per-ack growth %v exceeds acked bytes", nw-e.Cwnd())
	}
}

func TestRenoByteCounting(t *testing.T) {
	eng := sim.NewEngine()
	f := packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 2, Port: 2}}
	e := New(eng, f, &captureDown{}, Config{CC: "reno"})
	e.SetCwnd(float64(100 * e.MSS()))
	// One full window of acks should grow cwnd by about one MSS.
	grown := 0.0
	for acked := 0; acked < int(e.Cwnd()); acked += e.MSS() {
		nw := Reno{}.OnAck(e, e.MSS())
		grown += nw - e.Cwnd()
	}
	if grown < 0.8*float64(e.MSS()) || grown > 1.3*float64(e.MSS()) {
		t.Fatalf("reno grew %v per RTT, want ~1 MSS (%d)", grown, e.MSS())
	}
}
