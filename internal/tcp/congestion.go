package tcp

import (
	"math"

	"presto/internal/sim"
)

// CongestionControl is the pluggable congestion-avoidance policy of an
// Endpoint. Slow start, fast retransmit, and RTO machinery live in the
// endpoint; the CC decides window growth in congestion avoidance and
// the multiplicative decrease on loss. MPTCP's coupled controller
// implements this interface over a set of subflows.
type CongestionControl interface {
	Name() string
	// OnAck is called for every ACK that advances snd.una while in
	// congestion avoidance; it returns the new cwnd in bytes.
	OnAck(e *Endpoint, ackedBytes int) float64
	// OnLoss is called on a fast-retransmit loss event; it returns the
	// new ssthresh in bytes.
	OnLoss(e *Endpoint) float64
	// OnTimeout is called on RTO.
	OnTimeout(e *Endpoint)
}

// Reno is NewReno-style congestion avoidance: +1 MSS per RTT, halve on
// loss.
type Reno struct{}

// Name implements CongestionControl.
func (Reno) Name() string { return "reno" }

// OnAck implements CongestionControl.
func (Reno) OnAck(e *Endpoint, ackedBytes int) float64 {
	// cwnd += MSS * (MSS/cwnd) per acked MSS: standard byte-counting.
	inc := float64(e.cfg.MSS) * float64(ackedBytes) / e.cwnd
	if inc > float64(ackedBytes) {
		inc = float64(ackedBytes)
	}
	return e.cwnd + inc
}

// OnLoss implements CongestionControl.
func (Reno) OnLoss(e *Endpoint) float64 { return e.cwnd / 2 }

// OnTimeout implements CongestionControl.
func (Reno) OnTimeout(e *Endpoint) {}

// Cubic implements TCP CUBIC (the paper's testbed default), following
// Ha, Rhee, Xu (2008): W(t) = C·(t-K)³ + Wmax with fast convergence
// and a Reno-friendly region.
type Cubic struct {
	wMax       float64  // cwnd before the last reduction (bytes)
	epochStart sim.Time // start of the current growth epoch; 0 = unset
	k          float64  // seconds to reach wMax
	wTCP       float64  // Reno-friendly estimate
}

// CUBIC constants (standard): C in MSS/sec³ units, beta multiplicative
// decrease.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Name implements CongestionControl.
func (c *Cubic) Name() string { return "cubic" }

// OnAck implements CongestionControl.
func (c *Cubic) OnAck(e *Endpoint, ackedBytes int) float64 {
	now := e.eng.Now()
	mss := float64(e.cfg.MSS)
	if c.epochStart == 0 {
		c.epochStart = now
		if c.wMax < e.cwnd {
			c.wMax = e.cwnd
			c.k = 0
		} else {
			c.k = math.Cbrt((c.wMax - e.cwnd) / mss / cubicC)
		}
		c.wTCP = e.cwnd
	}
	t := sim.Time(now - c.epochStart).Seconds()
	target := c.wMax + cubicC*math.Pow(t-c.k, 3)*mss
	// Reno-friendly region: grow at least as fast as Reno would.
	c.wTCP += mss * float64(ackedBytes) / e.cwnd * 3 * (1 - cubicBeta) / (1 + cubicBeta)
	if target < c.wTCP {
		target = c.wTCP
	}
	if target <= e.cwnd {
		// Gentle growth toward (and past) the plateau.
		return e.cwnd + mss*float64(ackedBytes)/e.cwnd*0.01
	}
	// Approach the cubic target over roughly one RTT of ACKs.
	inc := (target - e.cwnd) * float64(ackedBytes) / e.cwnd
	if inc > float64(ackedBytes) {
		inc = float64(ackedBytes)
	}
	return e.cwnd + inc
}

// OnLoss implements CongestionControl.
func (c *Cubic) OnLoss(e *Endpoint) float64 {
	// Fast convergence: release bandwidth faster when below the
	// previous plateau.
	if e.cwnd < c.wMax {
		c.wMax = e.cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = e.cwnd
	}
	c.epochStart = 0
	return e.cwnd * cubicBeta
}

// OnTimeout implements CongestionControl.
func (c *Cubic) OnTimeout(e *Endpoint) {
	c.epochStart = 0
	c.wMax = e.cwnd
}

// NewCC builds a congestion controller by name: "cubic" (default),
// "reno", or "dctcp" (Reno-style growth; the ECN response lives in
// the endpoint's dctcpUpdate).
func NewCC(name string) CongestionControl {
	switch name {
	case "reno", "dctcp":
		return Reno{}
	default:
		return &Cubic{}
	}
}
