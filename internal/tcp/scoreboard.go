package tcp

import "presto/internal/packet"

// scoreboard tracks SACKed ranges above the cumulative ACK point on
// the sender side, and doubles as the receiver's out-of-order range
// set. Ranges are kept sorted and coalesced; all arithmetic is
// wraparound-safe.
type scoreboard struct {
	blocks []packet.SackBlock // sorted by Start, non-overlapping
}

// add inserts [start, end) and coalesces neighbours.
func (s *scoreboard) add(start, end uint32) {
	if packet.SeqGEQ(start, end) {
		return
	}
	// Find insertion position.
	i := 0
	for i < len(s.blocks) && packet.SeqLT(s.blocks[i].Start, start) {
		i++
	}
	s.blocks = append(s.blocks, packet.SackBlock{})
	copy(s.blocks[i+1:], s.blocks[i:])
	s.blocks[i] = packet.SackBlock{Start: start, End: end}
	// Coalesce around i.
	j := i
	if j > 0 && packet.SeqGEQ(s.blocks[j-1].End, s.blocks[j].Start) {
		j--
	}
	for j+1 < len(s.blocks) && packet.SeqGEQ(s.blocks[j].End, s.blocks[j+1].Start) {
		if packet.SeqGT(s.blocks[j+1].End, s.blocks[j].End) {
			s.blocks[j].End = s.blocks[j+1].End
		}
		s.blocks = append(s.blocks[:j+1], s.blocks[j+2:]...)
	}
}

// prune drops everything at or below una (cumulatively acked).
func (s *scoreboard) prune(una uint32) {
	out := s.blocks[:0]
	for _, b := range s.blocks {
		if packet.SeqLEQ(b.End, una) {
			continue
		}
		if packet.SeqLT(b.Start, una) {
			b.Start = una
		}
		out = append(out, b)
	}
	s.blocks = out
}

// contains reports whether seq is inside a recorded range.
func (s *scoreboard) contains(seq uint32) bool {
	for _, b := range s.blocks {
		if packet.SeqGEQ(seq, b.Start) && packet.SeqLT(seq, b.End) {
			return true
		}
	}
	return false
}

// firstHole returns the first unrecorded gap at or above una, bounded
// by the highest recorded byte. ok is false when nothing is recorded
// above una (no hole known).
func (s *scoreboard) firstHole(una uint32) (start, end uint32, ok bool) {
	if len(s.blocks) == 0 {
		return 0, 0, false
	}
	start = una
	for _, b := range s.blocks {
		if packet.SeqGT(b.Start, start) {
			return start, b.Start, true
		}
		if packet.SeqGT(b.End, start) {
			start = b.End
		}
	}
	return 0, 0, false
}

// highestEnd returns one past the highest recorded byte.
func (s *scoreboard) highestEnd() (uint32, bool) {
	if len(s.blocks) == 0 {
		return 0, false
	}
	return s.blocks[len(s.blocks)-1].End, true
}

// sackedAbove counts recorded bytes at or above seq.
func (s *scoreboard) sackedAbove(seq uint32) int {
	n := 0
	for _, b := range s.blocks {
		if packet.SeqGEQ(b.Start, seq) {
			n += int(packet.SeqDiff(b.End, b.Start))
		} else if packet.SeqGT(b.End, seq) {
			n += int(packet.SeqDiff(b.End, seq))
		}
	}
	return n
}

// clear resets the scoreboard.
func (s *scoreboard) clear() { s.blocks = s.blocks[:0] }

// recent returns up to max blocks, highest (most recently useful)
// first, for advertising in outgoing ACKs.
func (s *scoreboard) recent(max int) []packet.SackBlock {
	if len(s.blocks) == 0 {
		return nil
	}
	n := len(s.blocks)
	if n > max {
		n = max
	}
	out := make([]packet.SackBlock, 0, n)
	for i := len(s.blocks) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, s.blocks[i])
	}
	return out
}
