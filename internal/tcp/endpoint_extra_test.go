package tcp

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
)

func TestSequenceWraparoundTransfer(t *testing.T) {
	// Start 100 KB below the 2^32 wrap and transfer 1 MB across it.
	eng := sim.NewEngine()
	cfg := Config{ISS: ^uint32(0) - 100_000}
	p := newPair(eng, 20*sim.Microsecond, cfg)
	const n = 1 << 20
	p.a.Write(n)
	eng.RunAll()
	if p.b.Delivered() != n || p.a.Acked() != n {
		t.Fatalf("wraparound transfer: delivered=%d acked=%d", p.b.Delivered(), p.a.Acked())
	}
	if p.a.Stats.Timeouts != 0 {
		t.Fatalf("timeouts across wraparound: %d", p.a.Stats.Timeouts)
	}
}

func TestSequenceWraparoundWithLoss(t *testing.T) {
	eng := sim.NewEngine()
	cfg := Config{ISS: ^uint32(0) - 50_000, MaxSeg: packet.MSS}
	p := newPair(eng, 20*sim.Microsecond, cfg)
	rng := sim.NewRNG(3)
	p.filter = func(s *packet.Segment) bool {
		return !(s.Len() > 0 && rng.Float64() < 0.03)
	}
	const n = 400_000
	p.a.Write(n)
	eng.RunAll()
	if p.b.Delivered() != n || !p.a.Done() {
		t.Fatalf("lossy wraparound: delivered=%d", p.b.Delivered())
	}
}

func TestTailLossProbeRescuesLastSegment(t *testing.T) {
	// Drop the final segment of a flow: no dup-ACKs can follow, so
	// only the TLP (or the 200 ms RTO) can recover it. With TLP, the
	// flow finishes in tens of ms, not 200+.
	eng := sim.NewEngine()
	p := newPair(eng, 20*sim.Microsecond, Config{MaxSeg: packet.MSS})
	const n = 50 * packet.MSS
	dropped := false
	p.filter = func(s *packet.Segment) bool {
		if s.Len() > 0 && !s.Retrans && s.EndSeq == uint32(1+n) && !dropped {
			dropped = true
			return false
		}
		return true
	}
	p.a.Write(n)
	eng.RunAll()
	if !dropped {
		t.Fatal("tail segment never dropped")
	}
	if p.b.Delivered() != n {
		t.Fatalf("delivered %d", p.b.Delivered())
	}
	if p.a.Stats.Probes == 0 {
		t.Fatal("no tail loss probe fired")
	}
	if p.a.Stats.Timeouts != 0 {
		t.Fatalf("RTO fired despite TLP: finished at %v", eng.Now())
	}
	if eng.Now() > 100*sim.Millisecond {
		t.Fatalf("tail loss recovery took %v", eng.Now())
	}
}

func TestProbeTimerStopsWhenIdle(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 10*sim.Microsecond, Config{})
	p.a.Write(10_000)
	eng.RunAll()
	if p.a.Stats.Probes != 0 {
		t.Fatalf("probes fired on a clean transfer: %d", p.a.Stats.Probes)
	}
	// Engine fully drained: no stray timers.
	if eng.Pending() != 0 {
		t.Fatalf("%d events pending after idle", eng.Pending())
	}
}

func TestFACKTriggersEarlyRecovery(t *testing.T) {
	// With FACK, a large SACKed gap triggers recovery before 3
	// dup-ACKs.
	mk := func(fack bool) uint64 {
		eng := sim.NewEngine()
		cfg := Config{MaxSeg: packet.MSS, FACK: fack, DupAckThresh: 30}
		p := newPair(eng, 20*sim.Microsecond, cfg)
		dropped := false
		p.filter = func(s *packet.Segment) bool {
			if s.Len() > 0 && !s.Retrans && packet.SeqGEQ(s.StartSeq, 60001) && !dropped {
				dropped = true
				return false
			}
			return true
		}
		p.a.Write(200_000)
		eng.Run(150 * sim.Millisecond)
		return p.a.Stats.Retransmits
	}
	// DupAckThresh is set absurdly high (30) so classic dup-ACK
	// counting cannot trigger; only FACK's hole-size rule can.
	if got := mk(true); got == 0 {
		t.Fatal("FACK did not trigger early recovery")
	}
}

func TestKarnRTTSamplesSkipRetransmissions(t *testing.T) {
	eng := sim.NewEngine()
	p := newPair(eng, 100*sim.Microsecond, Config{MaxSeg: packet.MSS})
	// Establish a clean SRTT first.
	p.a.Write(20_000)
	eng.RunAll()
	srtt := p.a.SRTT()
	if srtt < 190*sim.Microsecond || srtt > 300*sim.Microsecond {
		t.Fatalf("baseline srtt = %v", srtt)
	}
	// Now delay a retransmitted segment by 50ms; Karn's rule must keep
	// the sample out of SRTT.
	dropped := false
	p.filter = func(s *packet.Segment) bool {
		if s.Len() > 0 && !s.Retrans && packet.SeqGEQ(s.StartSeq, 25001) && !dropped {
			dropped = true
			return false
		}
		return true
	}
	p.a.Write(30_000)
	eng.RunAll()
	after := p.a.SRTT()
	if after > 2*srtt {
		t.Fatalf("retransmission polluted SRTT: %v -> %v", srtt, after)
	}
}

func TestDupAckRequiresPureAck(t *testing.T) {
	// Data-bearing segments carrying the same cumulative ACK must not
	// count as duplicate ACKs.
	eng := sim.NewEngine()
	sink := &captureDown{}
	f := packet.FlowKey{Src: packet.Addr{Host: 1, Port: 1}, Dst: packet.Addr{Host: 2, Port: 2}}
	e := New(eng, f, sink, Config{})
	e.SetUnlimited(true) // outstanding data exists
	for i := 0; i < 5; i++ {
		e.DeliverSegment(&packet.Segment{
			Flow:     f.Reverse(),
			StartSeq: uint32(1 + i*1000), EndSeq: uint32(1 + (i+1)*1000),
			Flags: packet.FlagACK, Ack: 1,
		})
	}
	if e.Stats.DupAcks != 0 {
		t.Fatalf("data segments counted as dup-ACKs: %d", e.Stats.DupAcks)
	}
}

// Property: transfers complete for any ISS, including wrap-adjacent
// values, with random loss.
func TestISSProperty(t *testing.T) {
	prop := func(issRaw uint32, seed uint64) bool {
		eng := sim.NewEngine()
		p := newPair(eng, 10*sim.Microsecond, Config{ISS: issRaw})
		rng := sim.NewRNG(seed)
		p.filter = func(s *packet.Segment) bool {
			return !(s.Len() > 0 && rng.Float64() < 0.02)
		}
		const n = 150_000
		p.a.Write(n)
		eng.RunAll()
		return p.b.Delivered() == n && p.a.Done()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
