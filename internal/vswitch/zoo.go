package vswitch

import (
	"presto/internal/packet"
	"presto/internal/sim"
)

// This file holds the scheme-zoo policies beyond the paper's own
// lineup: DiffFlow, Sprinklers, RDNA Balance, and Spritz. Each reuses
// the same datapath seams as the Presto policy (controller label
// lists, noteFlowcell accounting, idle flow-table GC) so they compose
// with weighted multipathing, sharding, and telemetry unchanged.

// diffFlowState tracks one flow's byte count and spray cursor.
type diffFlowState struct {
	bytes      int // lifetime bytes (elephant detection)
	cellBytes  int // bytes in the current flowcell
	macIdx     int
	flowcellID uint32
	pinned     bool
	lastSeen   sim.Time
}

func (s *diffFlowState) idleSince() sim.Time { return s.lastSeen }

// DiffFlow implements the size-threshold split of DiffFlow (Carpa et
// al.): flows start as mice and are sprayed per-flowcell exactly like
// Presto; once a flow's byte count crosses Threshold it is an elephant
// and gets pinned to a single ECMP path (chosen by flow hash), so long
// transfers stop paying reordering costs while short flows keep the
// low-latency spread.
type DiffFlow struct {
	// Threshold is the elephant-detection byte count.
	Threshold int
	// Cell is the flowcell size mice are sprayed at.
	Cell int

	flows map[packet.FlowKey]*diffFlowState
}

// NewDiffFlow returns a DiffFlow policy splitting at threshold bytes,
// spraying mice in cell-sized flowcells.
func NewDiffFlow(threshold, cell int) *DiffFlow {
	if threshold <= 0 {
		threshold = 1 << 20
	}
	if cell <= 0 {
		cell = packet.MaxSegSize
	}
	return &DiffFlow{Threshold: threshold, Cell: cell, flows: make(map[packet.FlowKey]*diffFlowState)}
}

// Name implements Policy.
func (d *DiffFlow) Name() string { return "diffflow" }

// Select implements Policy.
func (d *DiffFlow) Select(vs *VSwitch, seg *packet.Segment) {
	macs := vs.Mapping(seg.Flow.Dst.Host)
	st, ok := d.flows[seg.Flow]
	if !ok {
		if len(d.flows) >= policyGCThreshold {
			sweepIdle(vs.Eng.Now(), d.flows)
		}
		st = &diffFlowState{}
		d.flows[seg.Flow] = st
		vs.noteFlowcell(pathIndex(macs, 0), 0)
	}
	st.lastSeen = vs.Eng.Now()
	n := seg.Len()
	st.bytes += n
	switch {
	case st.pinned:
		// Elephant: everything stays on the pinned path.
	case st.bytes > d.Threshold:
		// Crossing the threshold: pin to the hash-chosen ECMP path.
		// The transition is one final flowcell boundary so a Presto GRO
		// receiver sees a clean cut, deterministic without RNG.
		st.pinned = true
		st.flowcellID++
		if len(macs) > 0 {
			st.macIdx = int(seg.Flow.Hash() % uint32(len(macs)))
		}
		vs.noteFlowcell(pathIndex(macs, st.macIdx), st.flowcellID)
		st.cellBytes = n
	case st.cellBytes+n > d.Cell:
		// Mouse: Presto-style flowcell spray.
		st.cellBytes = n
		st.macIdx++
		st.flowcellID++
		vs.noteFlowcell(pathIndex(macs, st.macIdx), st.flowcellID)
	default:
		st.cellBytes += n
	}
	seg.FlowcellID = st.flowcellID
	stampLabel(seg, macs, st.macIdx)
}

// sprinklerDest is one destination's striping cursor: Sprinklers
// stripes per destination (all flows to the same host share the
// cursor), not per flow.
type sprinklerDest struct {
	macIdx    int
	remaining int // bytes left in the current stripe
	stripeID  uint32
}

// Sprinklers implements randomized variable-size striping (Kandula et
// al.'s Sprinklers): each sender stripes its aggregate traffic toward
// a destination across the label list in contiguous runs whose sizes
// are drawn uniformly from [MinStripe, MaxStripe]. Randomizing stripe
// sizes per (sender, destination) desynchronizes senders so stripes
// don't beat against each other; large stripes make the scheme
// reordering-free in practice, so it pairs with official GRO.
type Sprinklers struct {
	MinStripe int
	MaxStripe int

	rng   *sim.RNG
	dests map[packet.HostID]*sprinklerDest
}

// NewSprinklers returns a Sprinklers policy drawing stripe sizes from
// [minStripe, maxStripe] using the per-host stream rng.
func NewSprinklers(rng *sim.RNG, minStripe, maxStripe int) *Sprinklers {
	if minStripe <= 0 {
		minStripe = 256 << 10
	}
	if maxStripe < minStripe {
		maxStripe = 4 * minStripe
	}
	return &Sprinklers{
		MinStripe: minStripe,
		MaxStripe: maxStripe,
		rng:       rng,
		dests:     make(map[packet.HostID]*sprinklerDest),
	}
}

// Name implements Policy.
func (s *Sprinklers) Name() string { return "sprinklers" }

// drawStripe samples the next stripe size.
func (s *Sprinklers) drawStripe() int {
	return s.MinStripe + s.rng.Intn(s.MaxStripe-s.MinStripe+1)
}

// Select implements Policy.
func (s *Sprinklers) Select(vs *VSwitch, seg *packet.Segment) {
	macs := vs.Mapping(seg.Flow.Dst.Host)
	dst := seg.Flow.Dst.Host
	d, ok := s.dests[dst]
	if !ok {
		d = &sprinklerDest{remaining: s.drawStripe()}
		s.dests[dst] = d
		vs.noteFlowcell(pathIndex(macs, 0), 0)
	}
	n := seg.Len()
	if d.remaining < n {
		// Stripe exhausted: advance to the next label and redraw.
		d.macIdx++
		d.stripeID++
		d.remaining = s.drawStripe()
		vs.noteFlowcell(pathIndex(macs, d.macIdx), d.stripeID)
	}
	d.remaining -= n
	seg.FlowcellID = d.stripeID
	stampLabel(seg, macs, d.macIdx)
}

// rdnaState mirrors diffFlowState for the RDNA policy.
type rdnaState struct {
	bytes      int
	cellBytes  int
	macIdx     int
	flowcellID uint32
	isolated   bool
	lastSeen   sim.Time
}

func (s *rdnaState) idleSince() sim.Time { return s.lastSeen }

// RDNABalance implements RDNA Balance-style elephant isolation: the
// label list is partitioned into a mice subset and a dedicated
// elephant subset (the last ceil(IsolatedFrac·len) labels). Mice spray
// flowcells round-robin over the mice subset; once a flow crosses
// ElephantBytes it is strict-source-routed onto one label of the
// elephant subset (each shadow-MAC label is exactly one deterministic
// path through its spanning tree), so elephants cannot queue behind
// mice on the shared labels.
type RDNABalance struct {
	// ElephantBytes is the isolation threshold.
	ElephantBytes int
	// Cell is the mice flowcell size.
	Cell int
	// IsolatedFrac is the fraction of the label list reserved for
	// elephants (at least one label when the list has ≥ 2 entries).
	IsolatedFrac float64

	flows map[packet.FlowKey]*rdnaState
}

// NewRDNABalance returns an RDNA Balance policy.
func NewRDNABalance(elephantBytes, cell int, isolatedFrac float64) *RDNABalance {
	if elephantBytes <= 0 {
		elephantBytes = 1 << 20
	}
	if cell <= 0 {
		cell = packet.MaxSegSize
	}
	if isolatedFrac <= 0 || isolatedFrac >= 1 {
		isolatedFrac = 0.25
	}
	return &RDNABalance{
		ElephantBytes: elephantBytes,
		Cell:          cell,
		IsolatedFrac:  isolatedFrac,
		flows:         make(map[packet.FlowKey]*rdnaState),
	}
}

// Name implements Policy.
func (r *RDNABalance) Name() string { return "rdna-balance" }

// split returns the sizes of the mice prefix and elephant suffix of an
// n-label list. Lists too short to partition (< 2) keep everything in
// the mice subset.
func (r *RDNABalance) split(n int) (mice, elephants int) {
	if n < 2 {
		return n, 0
	}
	elephants = int(float64(n)*r.IsolatedFrac + 0.5)
	if elephants < 1 {
		elephants = 1
	}
	if elephants >= n {
		elephants = n - 1
	}
	return n - elephants, elephants
}

// Select implements Policy.
func (r *RDNABalance) Select(vs *VSwitch, seg *packet.Segment) {
	macs := vs.Mapping(seg.Flow.Dst.Host)
	mice, eleph := r.split(len(macs))
	st, ok := r.flows[seg.Flow]
	if !ok {
		if len(r.flows) >= policyGCThreshold {
			sweepIdle(vs.Eng.Now(), r.flows)
		}
		st = &rdnaState{}
		r.flows[seg.Flow] = st
		vs.noteFlowcell(pathIndex(macs, 0), 0)
	}
	st.lastSeen = vs.Eng.Now()
	n := seg.Len()
	st.bytes += n
	switch {
	case st.isolated:
	case st.bytes > r.ElephantBytes && eleph > 0:
		// Promote: strict source route onto one dedicated label.
		st.isolated = true
		st.flowcellID++
		st.macIdx = mice + int(seg.Flow.Hash()%uint32(eleph))
		vs.noteFlowcell(pathIndex(macs, st.macIdx), st.flowcellID)
	case st.cellBytes+n > r.Cell:
		// Mice spray over the shared subset only.
		st.cellBytes = n
		st.macIdx++
		st.flowcellID++
		vs.noteFlowcell(r.micePath(macs, mice, st.macIdx), st.flowcellID)
	default:
		st.cellBytes += n
	}
	seg.FlowcellID = st.flowcellID
	if !st.isolated && mice > 0 && len(macs) > 0 {
		seg.DstMAC = macs[st.macIdx%mice]
		return
	}
	stampLabel(seg, macs, st.macIdx)
}

// micePath is pathIndex restricted to the mice subset.
func (r *RDNABalance) micePath(macs []packet.MAC, mice, macIdx int) int {
	if mice <= 0 {
		return pathIndex(macs, macIdx)
	}
	return macIdx % mice
}

// spritzFlow tracks one flow's flowcell accumulation; the label choice
// itself is per destination (spritzSched).
type spritzFlow struct {
	cellBytes  int
	mac        packet.MAC
	flowcellID uint32
	lastSeen   sim.Time
}

func (s *spritzFlow) idleSince() sim.Time { return s.lastSeen }

// spritzSched is a smooth weighted round-robin over the distinct
// labels of a mapping, weighted by each label's multiplicity (the
// controller's §3.3 duplication encodes its link-load weights). Smooth
// WRR spreads a weight-3 label as A..A..A.. rather than AAA...,
// avoiding the burst clustering plain list iteration produces.
type spritzSched struct {
	labels  []packet.MAC
	weights []int
	credit  []int
	total   int
}

// rebuild recomputes distinct labels and multiplicities from macs.
func (sc *spritzSched) rebuild(macs []packet.MAC) {
	sc.labels = sc.labels[:0]
	sc.weights = sc.weights[:0]
	sc.total = 0
	for _, m := range macs {
		found := false
		for i, l := range sc.labels {
			if l == m {
				sc.weights[i]++
				found = true
				break
			}
		}
		if !found {
			sc.labels = append(sc.labels, m)
			sc.weights = append(sc.weights, 1)
		}
		sc.total++
	}
	sc.credit = make([]int, len(sc.labels))
}

// matches reports whether the schedule was built from an equivalent
// mapping (same length and same distinct-label multiset in order).
func (sc *spritzSched) matches(macs []packet.MAC) bool {
	if sc.total != len(macs) {
		return false
	}
	n := 0
	for i := range sc.labels {
		n += sc.weights[i]
	}
	return n == len(macs)
}

// next picks the label with the highest credit (ties to the lowest
// index), then charges it the total weight — classic smooth WRR.
func (sc *spritzSched) next() (packet.MAC, int) {
	best := 0
	for i := range sc.credit {
		sc.credit[i] += sc.weights[i]
		if sc.credit[i] > sc.credit[best] {
			best = i
		}
	}
	sc.credit[best] -= sc.total
	return sc.labels[best], best
}

// Spritz implements path-aware weighted flowcell spraying for
// low-diameter topologies (Spritz: De Marchi et al.): the controller's
// per-tree link-load weights arrive as duplicated labels in the
// mapping (§3.3); the policy runs a smooth weighted round-robin over
// the distinct labels at flowcell granularity, so direct (1-hop) mesh
// paths carry proportionally more flowcells than 2-hop detours.
type Spritz struct {
	// Cell is the flowcell size.
	Cell int

	flows  map[packet.FlowKey]*spritzFlow
	scheds map[packet.HostID]*spritzSched
}

// NewSpritz returns a Spritz policy spraying cell-sized flowcells.
func NewSpritz(cell int) *Spritz {
	if cell <= 0 {
		cell = packet.MaxSegSize
	}
	return &Spritz{
		Cell:   cell,
		flows:  make(map[packet.FlowKey]*spritzFlow),
		scheds: make(map[packet.HostID]*spritzSched),
	}
}

// Name implements Policy.
func (s *Spritz) Name() string { return "spritz" }

// sched returns the destination's WRR schedule, rebuilding it when the
// controller has pushed a new mapping.
func (s *Spritz) sched(dst packet.HostID, macs []packet.MAC) *spritzSched {
	sc, ok := s.scheds[dst]
	if !ok {
		sc = &spritzSched{}
		sc.rebuild(macs)
		s.scheds[dst] = sc
	} else if !sc.matches(macs) {
		sc.rebuild(macs)
	}
	return sc
}

// Select implements Policy.
func (s *Spritz) Select(vs *VSwitch, seg *packet.Segment) {
	macs := vs.Mapping(seg.Flow.Dst.Host)
	st, ok := s.flows[seg.Flow]
	if !ok {
		if len(s.flows) >= policyGCThreshold {
			sweepIdle(vs.Eng.Now(), s.flows)
		}
		st = &spritzFlow{}
		s.flows[seg.Flow] = st
		st.mac, _ = s.pick(vs, seg, macs, 0)
	}
	st.lastSeen = vs.Eng.Now()
	n := seg.Len()
	if st.cellBytes+n > s.Cell {
		st.cellBytes = n
		st.flowcellID++
		st.mac, _ = s.pick(vs, seg, macs, st.flowcellID)
	} else {
		st.cellBytes += n
	}
	seg.FlowcellID = st.flowcellID
	if len(macs) == 0 {
		seg.DstMAC = packet.HostMAC(seg.Flow.Dst.Host)
		return
	}
	seg.DstMAC = st.mac
}

// pick selects the next flowcell's label through the destination's WRR
// schedule and records the per-path accounting.
func (s *Spritz) pick(vs *VSwitch, seg *packet.Segment, macs []packet.MAC, cell uint32) (packet.MAC, int) {
	if len(macs) == 0 {
		vs.noteFlowcell(0, cell)
		return packet.HostMAC(seg.Flow.Dst.Host), 0
	}
	sc := s.sched(seg.Flow.Dst.Host, macs)
	mac, idx := sc.next()
	vs.noteFlowcell(idx, cell)
	return mac, idx
}
