// Package vswitch models the soft edge the paper builds Presto into:
// an Open vSwitch-like datapath on each host that monitors outgoing
// traffic, chops flows into flowcells (Algorithm 1), rewrites
// destination MACs to controller-supplied shadow-MAC labels, and on
// receive restores real MACs and demultiplexes segments to transport
// endpoints.
//
// Load-balancing behaviour is pluggable: Presto round-robin flowcell
// spraying (with weighted multipathing via duplicated labels, §3.3),
// per-flow ECMP path pinning (the paper's ECMP baseline), flowlet
// switching with a configurable inactivity gap (§5), per-packet
// spraying, and Presto+ECMP per-hop hashing (Figure 14).
package vswitch

import (
	"fmt"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/telemetry"
)

// SegmentSender is the layer below the vSwitch (the NIC's TSO entry).
type SegmentSender interface {
	SendSegment(seg *packet.Segment)
}

// Endpoint receives segments destined to a local transport endpoint.
type Endpoint interface {
	DeliverSegment(seg *packet.Segment)
}

// Policy decides each outgoing segment's destination MAC (label) and
// flowcell ID.
type Policy interface {
	Name() string
	// Select stamps seg (DstMAC, FlowcellID) for the given vSwitch.
	Select(vs *VSwitch, seg *packet.Segment)
}

// Stats counts datapath activity.
type Stats struct {
	SegmentsOut uint64
	SegmentsIn  uint64
	MACRewrites uint64 // shadow-MAC stampings (one memcpy each, §5)
	MACRestores uint64 // receive-side label→real rewrites
	Flowcells   uint64 // flowcells emitted (each flow's first + every transition)
}

// VSwitch is one host's edge datapath.
type VSwitch struct {
	Eng  *sim.Engine
	Host packet.HostID

	out    SegmentSender
	policy Policy

	// mappings: destination host → list of shadow MACs, one per
	// spanning tree, pushed by the controller. Duplicated entries
	// realize path weights. An empty list means "use the real MAC"
	// (same-leaf destinations, single-switch topologies).
	mappings map[packet.HostID][]packet.MAC

	// table demultiplexes received segments to local endpoints, keyed
	// by the flow the endpoint *sends* on.
	table map[packet.FlowKey]Endpoint

	// pathCells counts flowcells emitted per path index (position in
	// the label list); sums to Stats.Flowcells.
	pathCells []uint64
	tracer    *telemetry.Tracer

	Stats Stats
}

// New creates a vSwitch for host h with the given policy.
func New(eng *sim.Engine, h packet.HostID, out SegmentSender, policy Policy) *VSwitch {
	return &VSwitch{
		Eng:      eng,
		Host:     h,
		out:      out,
		policy:   policy,
		mappings: make(map[packet.HostID][]packet.MAC),
		table:    make(map[packet.FlowKey]Endpoint),
	}
}

// Policy returns the active load-balancing policy.
func (vs *VSwitch) Policy() Policy { return vs.policy }

// SetTracer attaches a structured event tracer (nil disables tracing,
// the default).
func (vs *VSwitch) SetTracer(tr *telemetry.Tracer) { vs.tracer = tr }

// noteFlowcell records that a new flowcell started on path pathIdx.
// Policies call it for each flow's first flowcell and every
// transition, so per-path counts sum to Stats.Flowcells.
func (vs *VSwitch) noteFlowcell(pathIdx int, cell uint32) {
	vs.Stats.Flowcells++
	if pathIdx >= len(vs.pathCells) {
		grown := make([]uint64, pathIdx+1)
		copy(grown, vs.pathCells)
		vs.pathCells = grown
	}
	vs.pathCells[pathIdx]++
	vs.tracer.FlowcellEmit(vs.Eng.Now(), int32(vs.Host), cell, pathIdx)
}

// PathFlowcells returns the per-path flowcell counts (index = position
// in the controller's label list; index 0 also covers unmapped
// destinations).
func (vs *VSwitch) PathFlowcells() []uint64 {
	return append([]uint64(nil), vs.pathCells...)
}

// TelemetrySnapshot implements a telemetry probe over the datapath
// counters.
func (vs *VSwitch) TelemetrySnapshot() map[string]any {
	perPath := make(map[string]any, len(vs.pathCells))
	for i, n := range vs.pathCells {
		perPath[fmt.Sprintf("%d", i)] = n
	}
	return map[string]any{
		"policy":           vs.policy.Name(),
		"segments_out":     vs.Stats.SegmentsOut,
		"segments_in":      vs.Stats.SegmentsIn,
		"mac_rewrites":     vs.Stats.MACRewrites,
		"mac_restores":     vs.Stats.MACRestores,
		"flowcells":        vs.Stats.Flowcells,
		"path_flowcells":   perPath,
		"registered_flows": uint64(len(vs.table)),
	}
}

// SetSender installs the layer below (the NIC). Used at wiring time
// when the NIC is constructed after the vSwitch.
func (vs *VSwitch) SetSender(out SegmentSender) { vs.out = out }

// SetMapping installs (or replaces) the controller-supplied shadow-MAC
// list for a destination host.
func (vs *VSwitch) SetMapping(dst packet.HostID, macs []packet.MAC) {
	vs.mappings[dst] = macs
}

// Mapping returns the label list for dst (nil if none installed).
func (vs *VSwitch) Mapping(dst packet.HostID) []packet.MAC { return vs.mappings[dst] }

// Register binds a local endpoint to the flow it sends on, so
// segments of the reverse flow reach it.
func (vs *VSwitch) Register(sendFlow packet.FlowKey, ep Endpoint) {
	vs.table[sendFlow] = ep
}

// Unregister removes a flow binding.
func (vs *VSwitch) Unregister(sendFlow packet.FlowKey) { delete(vs.table, sendFlow) }

// Send implements tcp.Downstream: the host stack hands a ≤64 KB TSO
// write to the datapath, which stamps it and passes it to the NIC.
func (vs *VSwitch) Send(seg *packet.Segment) {
	seg.SrcMAC = packet.HostMAC(vs.Host)
	vs.policy.Select(vs, seg)
	vs.Stats.SegmentsOut++
	if seg.DstMAC.IsLabel() {
		vs.Stats.MACRewrites++
	}
	vs.out.SendSegment(seg)
}

// DeliverSegment is the receive path: GRO pushes merged segments here;
// the vSwitch conceptually restores the real destination MAC (the one
// memcpy the paper counts) and hands the segment to the owning
// endpoint.
func (vs *VSwitch) DeliverSegment(seg *packet.Segment) {
	vs.Stats.SegmentsIn++
	if seg.DstMAC.IsLabel() {
		seg.DstMAC = packet.HostMAC(vs.Host)
		vs.Stats.MACRestores++
	}
	if ep, ok := vs.table[seg.Flow.Reverse()]; ok {
		ep.DeliverSegment(seg)
	}
}
