// Package vswitch models the soft edge the paper builds Presto into:
// an Open vSwitch-like datapath on each host that monitors outgoing
// traffic, chops flows into flowcells (Algorithm 1), rewrites
// destination MACs to controller-supplied shadow-MAC labels, and on
// receive restores real MACs and demultiplexes segments to transport
// endpoints.
//
// Load-balancing behaviour is pluggable: Presto round-robin flowcell
// spraying (with weighted multipathing via duplicated labels, §3.3),
// per-flow ECMP path pinning (the paper's ECMP baseline), flowlet
// switching with a configurable inactivity gap (§5), per-packet
// spraying, and Presto+ECMP per-hop hashing (Figure 14).
package vswitch

import (
	"presto/internal/packet"
	"presto/internal/sim"
)

// SegmentSender is the layer below the vSwitch (the NIC's TSO entry).
type SegmentSender interface {
	SendSegment(seg *packet.Segment)
}

// Endpoint receives segments destined to a local transport endpoint.
type Endpoint interface {
	DeliverSegment(seg *packet.Segment)
}

// Policy decides each outgoing segment's destination MAC (label) and
// flowcell ID.
type Policy interface {
	Name() string
	// Select stamps seg (DstMAC, FlowcellID) for the given vSwitch.
	Select(vs *VSwitch, seg *packet.Segment)
}

// Stats counts datapath activity.
type Stats struct {
	SegmentsOut uint64
	SegmentsIn  uint64
	MACRewrites uint64 // shadow-MAC stampings (one memcpy each, §5)
	MACRestores uint64 // receive-side label→real rewrites
	Flowcells   uint64 // flowcell transitions observed
}

// VSwitch is one host's edge datapath.
type VSwitch struct {
	Eng  *sim.Engine
	Host packet.HostID

	out    SegmentSender
	policy Policy

	// mappings: destination host → list of shadow MACs, one per
	// spanning tree, pushed by the controller. Duplicated entries
	// realize path weights. An empty list means "use the real MAC"
	// (same-leaf destinations, single-switch topologies).
	mappings map[packet.HostID][]packet.MAC

	// table demultiplexes received segments to local endpoints, keyed
	// by the flow the endpoint *sends* on.
	table map[packet.FlowKey]Endpoint

	Stats Stats
}

// New creates a vSwitch for host h with the given policy.
func New(eng *sim.Engine, h packet.HostID, out SegmentSender, policy Policy) *VSwitch {
	return &VSwitch{
		Eng:      eng,
		Host:     h,
		out:      out,
		policy:   policy,
		mappings: make(map[packet.HostID][]packet.MAC),
		table:    make(map[packet.FlowKey]Endpoint),
	}
}

// Policy returns the active load-balancing policy.
func (vs *VSwitch) Policy() Policy { return vs.policy }

// SetSender installs the layer below (the NIC). Used at wiring time
// when the NIC is constructed after the vSwitch.
func (vs *VSwitch) SetSender(out SegmentSender) { vs.out = out }

// SetMapping installs (or replaces) the controller-supplied shadow-MAC
// list for a destination host.
func (vs *VSwitch) SetMapping(dst packet.HostID, macs []packet.MAC) {
	vs.mappings[dst] = macs
}

// Mapping returns the label list for dst (nil if none installed).
func (vs *VSwitch) Mapping(dst packet.HostID) []packet.MAC { return vs.mappings[dst] }

// Register binds a local endpoint to the flow it sends on, so
// segments of the reverse flow reach it.
func (vs *VSwitch) Register(sendFlow packet.FlowKey, ep Endpoint) {
	vs.table[sendFlow] = ep
}

// Unregister removes a flow binding.
func (vs *VSwitch) Unregister(sendFlow packet.FlowKey) { delete(vs.table, sendFlow) }

// Send implements tcp.Downstream: the host stack hands a ≤64 KB TSO
// write to the datapath, which stamps it and passes it to the NIC.
func (vs *VSwitch) Send(seg *packet.Segment) {
	seg.SrcMAC = packet.HostMAC(vs.Host)
	vs.policy.Select(vs, seg)
	vs.Stats.SegmentsOut++
	if seg.DstMAC.IsLabel() {
		vs.Stats.MACRewrites++
	}
	vs.out.SendSegment(seg)
}

// DeliverSegment is the receive path: GRO pushes merged segments here;
// the vSwitch conceptually restores the real destination MAC (the one
// memcpy the paper counts) and hands the segment to the owning
// endpoint.
func (vs *VSwitch) DeliverSegment(seg *packet.Segment) {
	vs.Stats.SegmentsIn++
	if seg.DstMAC.IsLabel() {
		seg.DstMAC = packet.HostMAC(vs.Host)
		vs.Stats.MACRestores++
	}
	if ep, ok := vs.table[seg.Flow.Reverse()]; ok {
		ep.DeliverSegment(seg)
	}
}
