package vswitch

import (
	"testing"
	"testing/quick"

	"presto/internal/packet"
	"presto/internal/sim"
)

type capture struct{ segs []*packet.Segment }

func (c *capture) SendSegment(s *packet.Segment) { c.segs = append(c.segs, s) }

type epCapture struct{ segs []*packet.Segment }

func (c *epCapture) DeliverSegment(s *packet.Segment) { c.segs = append(c.segs, s) }

var flowAB = packet.FlowKey{
	Src: packet.Addr{Host: 0, Port: 1000},
	Dst: packet.Addr{Host: 4, Port: 2000},
}

func seg(startKB, lenKB int) *packet.Segment {
	return &packet.Segment{
		Flow:     flowAB,
		StartSeq: uint32(startKB * 1024),
		EndSeq:   uint32((startKB + lenKB) * 1024),
		Flags:    packet.FlagACK,
	}
}

func labelSet(n int) []packet.MAC {
	macs := make([]packet.MAC, n)
	for i := range macs {
		macs[i] = packet.ShadowMAC(4, i)
	}
	return macs
}

func TestPrestoAlgorithm1RoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPresto())
	vs.SetMapping(4, labelSet(4))

	// 8 segments of 64KB: each fills one flowcell, so labels rotate
	// every segment and flowcell IDs increase sequentially.
	for i := 0; i < 8; i++ {
		vs.Send(seg(i*64, 64))
	}
	if len(out.segs) != 8 {
		t.Fatalf("sent %d", len(out.segs))
	}
	for i, s := range out.segs {
		wantTree := i % 4
		if s.DstMAC.ShadowTree() != wantTree {
			t.Errorf("segment %d on tree %d, want %d", i, s.DstMAC.ShadowTree(), wantTree)
		}
		if int(s.FlowcellID) != i {
			t.Errorf("segment %d flowcell %d, want %d", i, s.FlowcellID, i)
		}
	}
}

func TestPrestoSmallSegmentsShareFlowcell(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPresto())
	vs.SetMapping(4, labelSet(2))
	// 16KB segments: four fit in one 64KB flowcell.
	for i := 0; i < 8; i++ {
		vs.Send(seg(i*16, 16))
	}
	fcs := map[uint32]int{}
	for _, s := range out.segs {
		fcs[s.FlowcellID]++
	}
	if len(fcs) != 2 || fcs[0] != 4 || fcs[1] != 4 {
		t.Fatalf("flowcell grouping = %v, want two flowcells of 4 segments", fcs)
	}
	// Both segments of one flowcell share a label.
	if out.segs[0].DstMAC != out.segs[3].DstMAC {
		t.Error("same flowcell used different labels")
	}
	if out.segs[0].DstMAC == out.segs[4].DstMAC {
		t.Error("consecutive flowcells did not rotate labels")
	}
}

func TestPrestoMiceStayInOneFlowcell(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPresto())
	vs.SetMapping(4, labelSet(8))
	// A 50KB mouse: one flowcell, one path — no reordering exposure
	// (§2.1).
	vs.Send(seg(0, 50))
	if out.segs[0].FlowcellID != 0 {
		t.Fatal("mouse split across flowcells")
	}
}

func TestPrestoWeightedMultipathing(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPresto())
	// Weights 0.25/0.5/0.25 via the duplicated sequence p1,p2,p3,p2
	// from §3.3.
	p1, p2, p3 := packet.ShadowMAC(4, 0), packet.ShadowMAC(4, 1), packet.ShadowMAC(4, 2)
	vs.SetMapping(4, []packet.MAC{p1, p2, p3, p2})
	counts := map[packet.MAC]int{}
	for i := 0; i < 64; i++ {
		vs.Send(seg(i*64, 64))
	}
	for _, s := range out.segs {
		counts[s.DstMAC]++
	}
	if counts[p1] != 16 || counts[p2] != 32 || counts[p3] != 16 {
		t.Fatalf("weighted split %v, want 16/32/16", counts)
	}
}

func TestPrestoNoMappingUsesRealMAC(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPresto())
	vs.Send(seg(0, 64))
	if out.segs[0].DstMAC != packet.HostMAC(4) {
		t.Fatal("expected real MAC without mappings")
	}
}

func TestECMPPinsFlowToOnePath(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewECMP(sim.NewRNG(7)))
	vs.SetMapping(4, labelSet(4))
	for i := 0; i < 20; i++ {
		vs.Send(seg(i*64, 64))
	}
	first := out.segs[0].DstMAC
	for i, s := range out.segs {
		if s.DstMAC != first {
			t.Fatalf("segment %d changed path under ECMP", i)
		}
		if s.FlowcellID != 0 {
			t.Fatalf("ECMP stamped flowcell %d", s.FlowcellID)
		}
	}
}

func TestECMPDifferentFlowsCanDiffer(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewECMP(sim.NewRNG(1)))
	vs.SetMapping(4, labelSet(8))
	seen := map[packet.MAC]bool{}
	for p := 0; p < 64; p++ {
		s := seg(0, 64)
		s.Flow.Src.Port = uint16(1000 + p)
		vs.Send(s)
		seen[s.DstMAC] = true
	}
	if len(seen) < 3 {
		t.Fatalf("64 flows hashed onto %d paths; expected spread", len(seen))
	}
}

func TestFlowletGapDetection(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	fl := NewFlowlet(500 * sim.Microsecond)
	vs := New(eng, 0, out, fl)
	vs.SetMapping(4, labelSet(4))

	send := func(at sim.Time, s *packet.Segment) {
		eng.At(at, func() { vs.Send(s) })
	}
	// Burst 1 at t=0: two segments, same flowlet.
	send(0, seg(0, 64))
	send(100*sim.Microsecond, seg(64, 64))
	// Burst 2 after a 1ms gap: new flowlet, next path.
	send(1100*sim.Microsecond, seg(128, 64))
	eng.RunAll()

	if out.segs[0].DstMAC != out.segs[1].DstMAC {
		t.Fatal("segments within the gap switched paths")
	}
	if out.segs[2].DstMAC == out.segs[1].DstMAC {
		t.Fatal("flowlet boundary did not switch paths")
	}
	sizes := fl.FlowletSizes(flowAB)
	if len(sizes) != 2 || sizes[0] != 2*64*1024 || sizes[1] != 64*1024 {
		t.Fatalf("flowlet sizes = %v", sizes)
	}
}

func TestPrestoECMPKeepsRealMAC(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPrestoECMP())
	vs.SetMapping(4, labelSet(4))
	vs.Send(seg(0, 64))
	vs.Send(seg(64, 64))
	if out.segs[0].DstMAC.IsShadow() {
		t.Fatal("presto-ecmp must not use labels")
	}
	if out.segs[1].FlowcellID != 1 {
		t.Fatal("presto-ecmp must still stamp flowcells")
	}
}

func TestPerPacketRotatesEveryMSS(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	vs := New(eng, 0, out, NewPerPacket())
	vs.SetMapping(4, labelSet(4))
	for i := 0; i < 4; i++ {
		s := &packet.Segment{
			Flow:     flowAB,
			StartSeq: uint32(1 + i*packet.MSS),
			EndSeq:   uint32(1 + (i+1)*packet.MSS),
			Flags:    packet.FlagACK,
		}
		vs.Send(s)
	}
	fcs := map[uint32]bool{}
	for _, s := range out.segs {
		fcs[s.FlowcellID] = true
	}
	if len(fcs) != 4 {
		t.Fatalf("per-packet produced %d flowcells over 4 MSS, want 4", len(fcs))
	}
}

func TestReceiveDemuxAndMACRestore(t *testing.T) {
	eng := sim.NewEngine()
	vs := New(eng, 4, &capture{}, NewPresto())
	ep := &epCapture{}
	// Local endpoint sends on the reverse of flowAB.
	vs.Register(flowAB.Reverse(), ep)
	in := &packet.Segment{
		Flow:     flowAB,
		StartSeq: 1, EndSeq: 1001,
		DstMAC: packet.ShadowMAC(4, 2),
		Flags:  packet.FlagACK,
	}
	vs.DeliverSegment(in)
	if len(ep.segs) != 1 {
		t.Fatal("segment not demuxed to endpoint")
	}
	if ep.segs[0].DstMAC != packet.HostMAC(4) {
		t.Fatal("shadow MAC not restored to real MAC")
	}
	if vs.Stats.MACRestores != 1 {
		t.Fatal("restore not counted")
	}
	// Unknown flow: dropped silently.
	vs.DeliverSegment(&packet.Segment{Flow: flowAB.Reverse(), Flags: packet.FlagACK})
	if len(ep.segs) != 1 {
		t.Fatal("unknown flow misdelivered")
	}
}

// Property: for any segment size pattern, Algorithm 1 produces
// monotonically non-decreasing flowcell IDs, never exceeds the
// threshold per flowcell (for segments below the threshold), and uses
// exactly one label per flowcell.
func TestPrestoFlowcellInvariantProperty(t *testing.T) {
	prop := func(seed uint64, sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 {
			return true
		}
		eng := sim.NewEngine()
		out := &capture{}
		vs := New(eng, 0, out, NewPresto())
		vs.SetMapping(4, labelSet(4))
		start := 0
		for _, r := range sizesRaw {
			n := int(r)%packet.MaxSegSize + 1
			s := &packet.Segment{
				Flow:     flowAB,
				StartSeq: uint32(start),
				EndSeq:   uint32(start + n),
				Flags:    packet.FlagACK,
			}
			start += n
			vs.Send(s)
		}
		byFC := map[uint32]int{}
		fcMac := map[uint32]packet.MAC{}
		lastFC := uint32(0)
		for _, s := range out.segs {
			if packet.SeqLT(s.FlowcellID, lastFC) {
				return false
			}
			lastFC = s.FlowcellID
			byFC[s.FlowcellID] += s.Len()
			if m, ok := fcMac[s.FlowcellID]; ok && m != s.DstMAC {
				return false
			}
			fcMac[s.FlowcellID] = s.DstMAC
		}
		for _, total := range byFC {
			// A single oversized segment can exceed the threshold, but
			// multi-segment flowcells cannot blow past it by more than
			// one segment's worth.
			if total > 2*packet.MaxSegSize {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyFlowStateGC(t *testing.T) {
	eng := sim.NewEngine()
	out := &capture{}
	p := NewPresto()
	vs := New(eng, 0, out, p)
	vs.SetMapping(4, labelSet(2))
	// Create more flows than the GC threshold, spaced in time so the
	// early ones go idle.
	for i := 0; i < policyGCThreshold+100; i++ {
		s := seg(0, 1)
		s.Flow.Src.Port = uint16(i)
		s.Flow.Dst.Port = uint16(i >> 16)
		eng.At(sim.Time(i)*20*sim.Millisecond, func() { vs.Send(s) })
	}
	eng.RunAll()
	if len(p.flows) > policyGCThreshold {
		t.Fatalf("flow table grew to %d entries; GC did not run", len(p.flows))
	}
}

// TestPolicyGCShrinksDeterministically pushes more distinct flows than
// the GC threshold through every stateful policy, advances simulated
// time past the idle horizon, and checks that (a) the flow table was
// swept back under the threshold and (b) the label sequence is
// identical across two runs — GC must not perturb path selection.
func TestPolicyGCShrinksDeterministically(t *testing.T) {
	const flows = policyGCThreshold + 300
	cases := []struct {
		name  string
		build func() (Policy, func() int)
	}{
		{"presto", func() (Policy, func() int) {
			p := NewPresto()
			return p, func() int { return len(p.flows) }
		}},
		{"flowlet", func() (Policy, func() int) {
			f := NewFlowlet(500 * sim.Microsecond)
			return f, func() int { return len(f.flows) }
		}},
		{"ecmp", func() (Policy, func() int) {
			e := NewECMP(sim.NewRNG(7))
			return e, func() int { return len(e.pinned) }
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func() ([]packet.MAC, int) {
				eng := sim.NewEngine()
				out := &capture{}
				p, tableLen := tc.build()
				vs := New(eng, 0, out, p)
				vs.SetMapping(4, labelSet(4))
				for i := 0; i < flows; i++ {
					s := seg(0, 1)
					s.Flow.Src.Port = uint16(i)
					s.Flow.Dst.Port = uint16(i >> 16)
					// 5ms spacing: by the time the table fills, the
					// early flows are idle far past policyGCIdle.
					eng.At(sim.Time(i)*5*sim.Millisecond, func() { vs.Send(s) })
				}
				eng.RunAll()
				macs := make([]packet.MAC, len(out.segs))
				for i, s := range out.segs {
					macs[i] = s.DstMAC
				}
				return macs, tableLen()
			}
			macs1, size1 := run()
			macs2, size2 := run()
			if size1 > policyGCThreshold {
				t.Errorf("table holds %d entries after %d idle flows; GC did not shrink it", size1, flows)
			}
			if size1 != size2 {
				t.Errorf("table size differs across runs: %d vs %d", size1, size2)
			}
			if len(macs1) != len(macs2) {
				t.Fatalf("output length differs: %d vs %d", len(macs1), len(macs2))
			}
			for i := range macs1 {
				if macs1[i] != macs2[i] {
					t.Fatalf("label %d differs across identical runs: %v vs %v", i, macs1[i], macs2[i])
				}
			}
		})
	}
}
