package vswitch

import (
	"presto/internal/packet"
	"presto/internal/sim"
)

// prestoFlowState is Algorithm 1's per-flow datapath counter.
type prestoFlowState struct {
	bytecount  int
	macIdx     int
	flowcellID uint32
	lastSeen   sim.Time
}

// policyGCThreshold bounds per-flow datapath state: once a policy's
// flow table exceeds this, entries idle longer than policyGCIdle are
// swept (OVS ages datapath flows the same way).
const (
	policyGCThreshold = 4096
	policyGCIdle      = sim.Time(10 * sim.Second)
)

// pathIndex maps a policy's label cursor onto the per-path accounting
// index used by noteFlowcell (index 0 also covers destinations with no
// mapping installed).
func pathIndex(macs []packet.MAC, macIdx int) int {
	if len(macs) == 0 {
		return 0
	}
	return macIdx % len(macs)
}

// labelAt returns the macIdx'th label of the mapping (wrapping), or the
// destination's real MAC when no mapping is installed (same-leaf
// destinations, single-switch topologies). Every policy funnels its
// label choice through here so none can get the empty-mapping edge
// case wrong.
func labelAt(macs []packet.MAC, macIdx int, dst packet.HostID) packet.MAC {
	if len(macs) == 0 {
		return packet.HostMAC(dst)
	}
	return macs[macIdx%len(macs)]
}

// stampLabel writes the macIdx'th label (or the real-MAC fallback) onto
// the segment.
func stampLabel(seg *packet.Segment, macs []packet.MAC, macIdx int) {
	seg.DstMAC = labelAt(macs, macIdx, seg.Flow.Dst.Host)
}

// Presto implements Algorithm 1: assign the same shadow MAC to
// consecutive segments until 64 KB accumulates, then advance to the
// next label round-robin and bump the flowcell ID. Weighted
// multipathing falls out of duplicated labels in the mapping list.
type Presto struct {
	// Threshold is the flowcell size (default: the 64 KB max TSO
	// size). Exposed for the flowcell-granularity ablation.
	Threshold int

	flows map[packet.FlowKey]*prestoFlowState
}

// NewPresto returns the paper's sender policy.
func NewPresto() *Presto {
	return &Presto{Threshold: packet.MaxSegSize, flows: make(map[packet.FlowKey]*prestoFlowState)}
}

// NewPrestoThreshold returns a Presto policy with a custom flowcell
// size (ablation).
func NewPrestoThreshold(threshold int) *Presto {
	p := NewPresto()
	if threshold > 0 {
		p.Threshold = threshold
	}
	return p
}

// Name implements Policy.
func (p *Presto) Name() string { return "presto" }

// Select implements Policy — the pseudo-code of Algorithm 1. Note that
// retransmitted TCP segments run through this code again, exactly as
// in the paper's OVS datapath.
func (p *Presto) Select(vs *VSwitch, seg *packet.Segment) {
	macs := vs.Mapping(seg.Flow.Dst.Host)
	st, ok := p.flows[seg.Flow]
	if !ok {
		if len(p.flows) >= policyGCThreshold {
			sweepIdle(vs.Eng.Now(), p.flows)
		}
		st = &prestoFlowState{}
		p.flows[seg.Flow] = st
		vs.noteFlowcell(pathIndex(macs, 0), 0)
	}
	st.lastSeen = vs.Eng.Now()
	n := seg.Len()
	if st.bytecount+n > p.Threshold {
		st.bytecount = n
		st.macIdx++
		st.flowcellID++
		vs.noteFlowcell(pathIndex(macs, st.macIdx), st.flowcellID)
	} else {
		st.bytecount += n
	}
	seg.FlowcellID = st.flowcellID
	stampLabel(seg, macs, st.macIdx)
}

// ecmpEntry is one flow's pinned path plus the idle timestamp the GC
// sweeps on.
type ecmpEntry struct {
	mac      packet.MAC
	lastSeen sim.Time
}

func (s *ecmpEntry) idleSince() sim.Time { return s.lastSeen }

// ECMP is the paper's ECMP baseline: enumerate the end-to-end paths
// (the controller's label list) and pin each flow to one of them,
// chosen by hash. Flowcell IDs stay at zero — the whole flow is one
// unit.
type ECMP struct {
	rng *sim.RNG
	// pinned remembers each flow's choice so it never changes while the
	// flow is live. Entries idle past policyGCIdle are swept like every
	// other policy's flow table — pinning is re-derivable, so eviction
	// only re-rolls truly idle flows.
	pinned map[packet.FlowKey]*ecmpEntry
}

// NewECMP returns a per-flow random path policy seeded by rng.
func NewECMP(rng *sim.RNG) *ECMP {
	return &ECMP{rng: rng, pinned: make(map[packet.FlowKey]*ecmpEntry)}
}

// Name implements Policy.
func (e *ECMP) Name() string { return "ecmp" }

// Select implements Policy.
func (e *ECMP) Select(vs *VSwitch, seg *packet.Segment) {
	now := vs.Eng.Now()
	if st, ok := e.pinned[seg.Flow]; ok {
		st.lastSeen = now
		seg.DstMAC = st.mac
		return
	}
	if len(e.pinned) >= policyGCThreshold {
		sweepIdle(now, e.pinned)
	}
	macs := vs.Mapping(seg.Flow.Dst.Host)
	idx := 0
	if len(macs) > 0 {
		idx = e.rng.Intn(len(macs))
	}
	mac := labelAt(macs, idx, seg.Flow.Dst.Host)
	e.pinned[seg.Flow] = &ecmpEntry{mac: mac, lastSeen: now}
	seg.DstMAC = mac
}

// flowletState tracks one flow's flowlet detection.
type flowletState struct {
	lastSeen  sim.Time
	macIdx    int
	flowletID uint32
	bytes     int
	// Sizes records completed flowlet sizes in bytes (Figure 1).
	sizes []int
}

// Flowlet implements flowlet switching at the software edge (§5's
// comparison): a new flowlet starts when the inter-segment gap
// exceeds Gap; flowlets are scheduled round-robin over the label
// list. The receiver pairs this with official GRO.
type Flowlet struct {
	Gap sim.Time

	flows map[packet.FlowKey]*flowletState
}

// NewFlowlet returns a flowlet policy with the given inactivity gap
// (the paper evaluates 100 µs and 500 µs).
func NewFlowlet(gap sim.Time) *Flowlet {
	return &Flowlet{Gap: gap, flows: make(map[packet.FlowKey]*flowletState)}
}

// sweepIdle deletes flow entries idle past the GC threshold.
func sweepIdle[V interface{ idleSince() sim.Time }](now sim.Time, m map[packet.FlowKey]V) {
	for k, v := range m {
		if now-v.idleSince() > policyGCIdle {
			delete(m, k)
		}
	}
}

func (s *prestoFlowState) idleSince() sim.Time { return s.lastSeen }
func (s *flowletState) idleSince() sim.Time    { return s.lastSeen }

// Name implements Policy.
func (f *Flowlet) Name() string { return "flowlet" }

// Select implements Policy.
func (f *Flowlet) Select(vs *VSwitch, seg *packet.Segment) {
	now := vs.Eng.Now()
	macs := vs.Mapping(seg.Flow.Dst.Host)
	st, ok := f.flows[seg.Flow]
	if !ok {
		if len(f.flows) >= policyGCThreshold {
			sweepIdle(now, f.flows)
		}
		st = &flowletState{lastSeen: now}
		f.flows[seg.Flow] = st
		vs.noteFlowcell(pathIndex(macs, 0), 0)
	} else if now-st.lastSeen > f.Gap {
		// Inactivity gap: close the current flowlet, start the next.
		st.sizes = append(st.sizes, st.bytes)
		st.bytes = 0
		st.macIdx++
		st.flowletID++
		vs.noteFlowcell(pathIndex(macs, st.macIdx), st.flowletID)
	}
	st.lastSeen = now
	st.bytes += seg.Len()
	seg.FlowcellID = st.flowletID
	stampLabel(seg, macs, st.macIdx)
}

// FlowletSizes returns the completed flowlet sizes (bytes) of a flow,
// including the currently open flowlet.
func (f *Flowlet) FlowletSizes(flow packet.FlowKey) []int {
	st, ok := f.flows[flow]
	if !ok {
		return nil
	}
	out := append([]int(nil), st.sizes...)
	if st.bytes > 0 {
		out = append(out, st.bytes)
	}
	return out
}

// PrestoECMP stamps flowcells with Algorithm 1 but keeps the real
// destination MAC, so the fabric's per-hop ECMP groups hash on
// (flow, flowcell ID) — the Figure 14 comparison against end-to-end
// shadow-MAC multipathing.
type PrestoECMP struct {
	inner *Presto
}

// NewPrestoECMP returns the per-hop variant.
func NewPrestoECMP() *PrestoECMP { return &PrestoECMP{inner: NewPresto()} }

// Name implements Policy.
func (p *PrestoECMP) Name() string { return "presto-ecmp" }

// Select implements Policy.
func (p *PrestoECMP) Select(vs *VSwitch, seg *packet.Segment) {
	p.inner.Select(vs, seg)
	// Discard the label: per-hop hashing forwards on the real MAC.
	seg.DstMAC = packet.HostMAC(seg.Flow.Dst.Host)
}

// PerPacket sprays every MTU packet independently: flowcell threshold
// of one MSS. Pair it with a transport MaxSeg of one MSS (TSO off) to
// reproduce the per-packet schemes the paper argues cannot scale
// (§2.1).
type PerPacket struct {
	inner *Presto
}

// NewPerPacket returns a per-packet spraying policy.
func NewPerPacket() *PerPacket {
	return &PerPacket{inner: NewPrestoThreshold(packet.MSS)}
}

// Name implements Policy.
func (p *PerPacket) Name() string { return "per-packet" }

// Select implements Policy.
func (p *PerPacket) Select(vs *VSwitch, seg *packet.Segment) { p.inner.Select(vs, seg) }
