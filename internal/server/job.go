package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"presto/internal/campaign"
	"presto/internal/metrics"
	"presto/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Duration is a time.Duration that marshals as a Go duration string
// ("150ms") and unmarshals from either a string or a bare nanosecond
// count, so job specs stay human-writable.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings or integer nanoseconds;
// null leaves the duration unset.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if bytes.Equal(b, []byte("null")) {
		return nil
	}
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// JobRequest is the wire form of a campaign submission (POST
// /v1/jobs). It carries exactly the knobs cmd/experiments exposes, so
// any campaign runnable from the CLI can be submitted to the daemon
// unchanged; the server's SpecBuilder maps it onto a campaign.Spec.
type JobRequest struct {
	// Experiments selects the cells: "all" or a comma-separated list of
	// experiment IDs (fig1, fig5, ..., table1, table2, ablations).
	// Exactly one of Experiments and Workload must be set.
	Experiments string `json:"experiments,omitempty"`
	// Workload runs a declarative workload spec across the system
	// lineup instead of a named experiment: either an inline
	// presto-workload/1 spec object, or a quoted string naming a
	// preset (elephants, mice-heavy, incast32, trace) or a spec file
	// readable by the daemon. The spec's hash lands in the job's
	// report cells and manifest.
	Workload json.RawMessage `json:"workload,omitempty"`
	// Scheme is a comma-separated list of scheme registry specs
	// (name, optionally name:k=v,... e.g. "diffflow:threshold=512KB").
	// With Workload it replaces the default system lineup; with
	// Experiments "scheme-matrix" it restricts the matrix grid. It is
	// an error with any other Experiments selection.
	Scheme string `json:"scheme,omitempty"`
	// Seed is the base random seed; replicas use seed, seed+1, ...
	// (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Seeds is the number of seed replicas per cell (default 1).
	Seeds int `json:"seeds,omitempty"`
	// Parallelism bounds the job's worker pool; 0 means GOMAXPROCS.
	// Results are byte-identical at any setting.
	Parallelism int `json:"parallelism,omitempty"`
	// CellTimeout is the wall-clock budget per replica (0 = server
	// default).
	CellTimeout Duration `json:"cell_timeout,omitempty"`
	// Duration and Warmup are the per-run simulated windows (0 = the
	// experiment defaults).
	Duration Duration `json:"duration,omitempty"`
	Warmup   Duration `json:"warmup,omitempty"`
}

// JobStatus is the wire form of a job's state (GET /v1/jobs/{id}).
type JobStatus struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Request  JobRequest `json:"request"`
	SpecHash string     `json:"spec_hash,omitempty"`
	Cells    int        `json:"cells"`
	Replicas int        `json:"replicas"`
	// ReplicasDone/Failed track live progress (from the job's campaign
	// telemetry probe while running, final counts afterwards).
	ReplicasDone   int        `json:"replicas_done"`
	ReplicasFailed int        `json:"replicas_failed"`
	Error          string     `json:"error,omitempty"`
	Submitted      time.Time  `json:"submitted"`
	Started        *time.Time `json:"started,omitempty"`
	Finished       *time.Time `json:"finished,omitempty"`
	// Artifacts lists the files servable under
	// /v1/jobs/{id}/artifacts/ once the job is done.
	Artifacts []string   `json:"artifacts,omitempty"`
	ExpiresAt *time.Time `json:"expires_at,omitempty"`
}

// job is the server-side record of one submitted campaign.
type job struct {
	id       string
	req      JobRequest
	spec     *campaign.Spec
	specHash string
	cells    int
	replicas int
	reg      *telemetry.Registry // per-job registry: campaign probe
	stats    *campaign.LiveStats // live quantile sketches per distribution
	events   *broker
	dir      string // artifact directory

	mu        sync.Mutex
	state     State
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	artifacts []string
	cancel    context.CancelCauseFunc // set while running

	// Artifact-fetch coordination (also guarded by mu): fetchers counts
	// in-flight GETs of this job's artifact files; gone is set by the
	// janitor once the TTL expires, after which new fetches are refused
	// (410) and the directory is removed only when fetchers drains to
	// zero — so a slow reader mid-download never has the file deleted
	// out from under it.
	fetchers  int
	gone      bool
	fetchIdle chan struct{} // non-nil while gone with fetches in flight
}

// newJob wires a validated spec into a job record: the spec's progress
// stream and telemetry registry are owned by the server so events and
// live counters flow through the job regardless of what the builder
// set.
func newJob(id string, req JobRequest, spec *campaign.Spec, dir string) *job {
	nseeds := len(spec.Seeds)
	if nseeds == 0 {
		nseeds = 1
	}
	j := &job{
		id:        id,
		req:       req,
		spec:      spec,
		specHash:  spec.Hash(),
		cells:     len(spec.Cells),
		replicas:  len(spec.Cells) * nseeds,
		reg:       telemetry.NewRegistry(nil),
		stats:     campaign.NewLiveStats(metrics.DefaultSketchAlpha),
		events:    newBroker(),
		dir:       dir,
		state:     StatePending,
		submitted: time.Now(),
	}
	spec.Telemetry = j.reg
	spec.Stats = j.stats
	spec.Progress = &progressWriter{job: id, events: j.events}
	j.events.publish(Event{Job: id, Type: "state", State: StatePending})
	return j
}

// begin transitions pending → running; false means the job was
// cancelled while queued and must not run.
func (j *job) begin(cancel context.CancelCauseFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StatePending {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records a terminal state and closes the event stream. A job
// already terminal (cancelled while pending) is left untouched.
func (j *job) finish(state State, errmsg string, artifacts []string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.err = errmsg
	j.finished = time.Now()
	j.artifacts = artifacts
	j.cancel = nil
	j.mu.Unlock()
	j.events.publish(Event{Job: j.id, Type: "state", State: state, Error: errmsg, Artifacts: artifacts})
	j.events.close()
}

// requestCancel cancels the job: a pending job terminates immediately,
// a running one has its context cancelled (the campaign pool stops
// dispatching and abandons in-flight replicas, which drain on their
// own). reason is surfaced in the job's error field.
func (j *job) requestCancel(reason string) {
	j.doCancel(reason, false)
}

// cancelIfPending cancels the job only while it is still pending.
// Drain uses it so a job a worker dequeued between Drain's snapshot
// and this call is left to finish within the drain deadline instead of
// having its context cancelled the moment it starts.
func (j *job) cancelIfPending(reason string) {
	j.doCancel(reason, true)
}

func (j *job) doCancel(reason string, pendingOnly bool) {
	j.mu.Lock()
	switch j.state {
	case StatePending:
		j.state = StateCancelled
		j.err = reason
		j.finished = time.Now()
		j.mu.Unlock()
		j.events.publish(Event{Job: j.id, Type: "state", State: StateCancelled, Error: reason})
		j.events.close()
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if pendingOnly || cancel == nil {
			return
		}
		// Wrap Canceled so campaign.RunContext's returned cause still
		// satisfies errors.Is(err, context.Canceled) while carrying
		// the human-readable reason.
		cancel(fmt.Errorf("%s: %w", reason, context.Canceled))
	default:
		j.mu.Unlock()
	}
}

// progress reads the live replica counters from the job's campaign
// telemetry probe (registered by campaign.RunContext).
func (j *job) progress() (done, failed int) {
	snap := j.reg.Snapshot(0)
	if snap == nil {
		return 0, 0
	}
	c, ok := snap.Components["campaign"]
	if !ok {
		return 0, 0
	}
	return asInt(c["replicas_done"]), asInt(c["replicas_failed"])
}

// status snapshots the job's wire representation. ttl > 0 computes the
// artifact expiry for terminal jobs.
func (j *job) status(ttl time.Duration) *JobStatus {
	done, failed := j.progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:             j.id,
		State:          j.state,
		Request:        j.req,
		SpecHash:       j.specHash,
		Cells:          j.cells,
		Replicas:       j.replicas,
		ReplicasDone:   done,
		ReplicasFailed: failed,
		Error:          j.err,
		Submitted:      j.submitted,
		Artifacts:      append([]string(nil), j.artifacts...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state.Terminal() && ttl > 0 {
		t := j.finished.Add(ttl)
		st.ExpiresAt = &t
	}
	return st
}

// stateNow returns the current state.
func (j *job) stateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// acquireArtifacts registers an in-flight artifact fetch, pinning the
// job's directory against janitor removal until the matching
// releaseArtifacts. It returns false once the janitor has retired the
// job — the handler answers 410 Gone instead of racing the delete.
func (j *job) acquireArtifacts() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.gone {
		return false
	}
	j.fetchers++
	return true
}

// releaseArtifacts ends an in-flight fetch; the last one out of a
// retired job signals the janitor's removal goroutine.
func (j *job) releaseArtifacts() {
	j.mu.Lock()
	j.fetchers--
	if j.fetchers == 0 && j.gone && j.fetchIdle != nil {
		close(j.fetchIdle)
		j.fetchIdle = nil
	}
	j.mu.Unlock()
}

// retire marks the job's artifacts gone (new fetches are refused from
// this point on). It returns nil when no fetch is in flight — the
// caller may remove the directory immediately — or a channel that is
// closed once the last in-flight fetch completes.
func (j *job) retire() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.gone = true
	if j.fetchers == 0 {
		return nil
	}
	if j.fetchIdle == nil {
		j.fetchIdle = make(chan struct{})
	}
	return j.fetchIdle
}

// expired reports whether the job's artifacts have outlived ttl.
func (j *job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal() && ttl > 0 && now.Sub(j.finished) >= ttl
}

// asInt coerces probe values (int, int64, uint64, float64) to int.
func asInt(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case int64:
		return int(x)
	case uint64:
		return int(x)
	case float64:
		return int(x)
	}
	return 0
}
