package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"presto/internal/campaign"
	"presto/internal/metrics"
)

// synthSpec is the shared two-cell test campaign: metrics are a pure
// function of (cell, seed), so any two executions of the same request
// produce byte-identical artifacts regardless of worker scheduling.
func synthSpec(req JobRequest) (*campaign.Spec, error) {
	if req.Experiments != "synth" {
		return nil, fmt.Errorf("unknown experiments %q (this server only runs: synth)", req.Experiments)
	}
	cell := func(id string, base float64) campaign.Cell {
		return campaign.Cell{
			Experiment: "synth",
			ID:         "synth/" + id,
			Run: func(seed uint64) (campaign.Result, error) {
				d := &metrics.Dist{}
				for k := 0; k < 4; k++ {
					d.Add(base + float64(seed) + float64(k))
				}
				return campaign.Result{
					Metrics: campaign.Values{"v": base * float64(seed), "const": 7},
					Dists:   map[string]*metrics.Dist{"lat": d},
				}, nil
			},
		}
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	nseeds := req.Seeds
	if nseeds <= 0 {
		nseeds = 1
	}
	return &campaign.Spec{
		Name:        "synth",
		Cells:       []campaign.Cell{cell("a", 3), cell("b", 11)},
		Seeds:       campaign.Seeds(seed, nseeds),
		Parallelism: req.Parallelism,
		CellTimeout: time.Duration(req.CellTimeout),
	}, nil
}

// blockingBuilder returns a builder whose single cell blocks on
// release, plus the release channel — for backpressure/cancel/drain
// tests that need a job to stay running until told otherwise.
func blockingBuilder(release chan struct{}) func(JobRequest) (*campaign.Spec, error) {
	return func(req JobRequest) (*campaign.Spec, error) {
		return &campaign.Spec{
			Name: "block",
			Cells: []campaign.Cell{{
				Experiment: "block",
				ID:         "block/0",
				Run: func(seed uint64) (campaign.Result, error) {
					<-release
					return campaign.Result{Metrics: campaign.Values{"v": 1}}, nil
				},
			}},
			Parallelism: 1,
			CellTimeout: time.Duration(req.CellTimeout),
		}, nil
	}
}

// newTestServer stands up a Server behind httptest and returns it with
// a wired client.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		_ = s.Close()
		ts.Close()
	})
	return s, &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
}

func ctx(t *testing.T) context.Context {
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

// TestSubmitStreamFetchByteIdentical is the end-to-end determinism
// test: submit a two-cell campaign, stream its events, fetch
// report.json/report.csv, and assert they are byte-identical to a
// direct campaign.Run of the same spec at a different parallelism.
func TestSubmitStreamFetchByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec, Workers: 2})
	req := JobRequest{Experiments: "synth", Seeds: 3, Parallelism: 4}

	st, err := c.Submit(ctx(t), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StatePending && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("submit state = %q", st.State)
	}
	if st.Cells != 2 || st.Replicas != 6 {
		t.Fatalf("submit status cells=%d replicas=%d, want 2/6", st.Cells, st.Replicas)
	}

	// Stream the full event history: lifecycle states plus one
	// progress line per replica and the summary line.
	var states []State
	var progress int
	err = c.Events(ctx(t), st.ID, 0, func(ev Event) error {
		switch ev.Type {
		case "state":
			states = append(states, ev.State)
		case "progress":
			progress++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	wantStates := []State{StatePending, StateRunning, StateDone}
	if fmt.Sprint(states) != fmt.Sprint(wantStates) {
		t.Errorf("state events = %v, want %v", states, wantStates)
	}
	if progress != 6+1 { // one per replica + summary
		t.Errorf("progress events = %d, want 7", progress)
	}

	final, err := c.Wait(ctx(t), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.ReplicasDone != 6 || final.ReplicasFailed != 0 {
		t.Fatalf("final status = %+v, want done 6/0", final)
	}

	// The served artifacts must be the exact bytes a direct run of the
	// same spec writes — at any parallelism.
	spec, err := synthSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallelism = 1
	rep, err := campaign.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := rep.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := c.Artifact(ctx(t), st.ID, "report.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON.Bytes()) {
		t.Errorf("report.json differs between server run and direct run:\nserver: %s\ndirect: %s", gotJSON, wantJSON.Bytes())
	}
	gotCSV, err := c.Artifact(ctx(t), st.ID, "report.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV, wantCSV.Bytes()) {
		t.Errorf("report.csv differs between server run and direct run")
	}

	names, err := c.Artifacts(ctx(t), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != fmt.Sprint([]string{"manifest.json", "report.csv", "report.json"}) {
		t.Errorf("artifact names = %v", names)
	}
}

// TestEventsSSE checks the Accept: text/event-stream rendering of the
// same stream.
func TestEventsSSE(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequestWithContext(ctx(t), http.MethodGet, c.BaseURL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.HTTPClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "event: state\n") || !strings.Contains(body.String(), "event: progress\n") {
		t.Errorf("SSE body missing event framing:\n%s", body.String())
	}
}

// TestBackpressure asserts the queue-full contract: with one worker
// occupied and a depth-1 queue, the third submission gets 429 with a
// Retry-After hint, and previously accepted jobs still complete.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	_, c := newTestServer(t, Config{
		SpecBuilder: blockingBuilder(release),
		Workers:     1,
		QueueDepth:  1,
		RetryAfter:  3 * time.Second,
	})

	a, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked A up, so B occupies the queue slot.
	waitState(t, c, a.ID, StateRunning)
	b, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Submit(ctx(t), JobRequest{Experiments: "block"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit err = %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Errorf("Retry-After = %v, want 3s", apiErr.RetryAfter)
	}

	close(release)
	for _, id := range []string{a.ID, b.ID} {
		st, err := c.Wait(ctx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s = %s, want done", id, st.State)
		}
	}
}

// TestCancelRunningJob is the DELETE contract: cancelling a running
// job returns well within the replica cell-timeout, the job lands in
// cancelled (not failed), and no goroutines leak once the abandoned
// replica drains.
func TestCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	_, c := newTestServer(t, Config{SpecBuilder: blockingBuilder(release)})

	// Warm up the transport so the goroutine baseline includes idle
	// keep-alive connections.
	warm, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, warm.ID, StateRunning)
	before := runtime.NumGoroutine()

	st, err := c.Submit(ctx(t), JobRequest{Experiments: "block", CellTimeout: Duration(30 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}

	deleteStart := time.Now()
	if _, err := c.Cancel(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(deleteStart); d > 5*time.Second {
		t.Errorf("DELETE took %v, want well under the 30s cell-timeout", d)
	}
	final, err := c.Wait(ctx(t), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("cancelled job state = %s (err %q), want cancelled", final.State, final.Error)
	}
	if final.Error == "" || !strings.Contains(final.Error, "cancel") {
		t.Errorf("cancelled job error = %q, want a cancellation reason", final.Error)
	}

	// Release the blocked replicas (the warm-up job finishes, the
	// abandoned replica of the cancelled job drains) and require the
	// goroutine count to return to its pre-submission baseline.
	close(release)
	if _, err := c.Wait(ctx(t), warm.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked after cancel: before=%d after=%d", before, n)
	}
}

// TestCancelPendingJob: a queued job dies immediately and never runs.
func TestCancelPendingJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, c := newTestServer(t, Config{SpecBuilder: blockingBuilder(release), Workers: 1, QueueDepth: 2})

	a, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, a.ID, StateRunning)
	b, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx(t), b.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx(t), b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled || final.Started != nil {
		t.Errorf("pending cancel: state=%s started=%v, want cancelled/never-started", final.State, final.Started)
	}
}

// TestDrain is the SIGTERM semantics test: draining flips readyz and
// submissions to 503, cancels queued jobs, lets the running one finish,
// and never drops its artifacts.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	s, c := newTestServer(t, Config{SpecBuilder: blockingBuilder(release), Workers: 1, QueueDepth: 2})

	run, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, run.ID, StateRunning)
	queued, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}

	drainErr := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drainErr <- s.Drain(dctx)
	}()

	// Draining: readyz 503, new submissions 503, queued job cancelled.
	waitReadyz(t, c, http.StatusServiceUnavailable)
	_, err = c.Submit(ctx(t), JobRequest{Experiments: "block"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain err = %v, want 503", err)
	}
	qs, err := c.Wait(ctx(t), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if qs.State != StateCancelled {
		t.Errorf("queued job during drain = %s, want cancelled", qs.State)
	}
	// healthz stays 200 while draining (liveness vs readiness).
	resp, err := c.HTTPClient.Get(c.BaseURL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %v %v, want 200", resp, err)
	}
	if resp != nil {
		resp.Body.Close()
	}

	// Let the running job finish: drain completes cleanly and the
	// finished job's artifacts survive.
	close(release)
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	rs, err := c.Wait(ctx(t), run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rs.State != StateDone {
		t.Fatalf("running job after drain = %s, want done", rs.State)
	}
	if _, err := c.Artifact(ctx(t), run.ID, "report.json"); err != nil {
		t.Errorf("artifacts dropped by drain: %v", err)
	}
}

// TestDrainDeadlineCancelsStragglers: when the drain deadline passes,
// running jobs are cancelled rather than awaited forever.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, c := newTestServer(t, Config{SpecBuilder: blockingBuilder(release)})
	run, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, run.ID, StateRunning)

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); err == nil {
		t.Fatal("forced drain returned nil error")
	}
	st, err := c.Wait(ctx(t), run.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Errorf("straggler after forced drain = %s, want cancelled", st.State)
	}
}

// TestHealthAndMetricsWhileRunning: /healthz, /readyz and /metrics all
// answer correctly while a job is in flight, and the Prometheus text
// carries the server probe set.
func TestHealthAndMetricsWhileRunning(t *testing.T) {
	release := make(chan struct{})
	_, c := newTestServer(t, Config{SpecBuilder: blockingBuilder(release)})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := c.HTTPClient.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d while job running, want 200", path, resp.StatusCode)
		}
	}
	resp, err := c.HTTPClient.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"presto_server_jobs_running 1",
		"presto_server_workers_busy 1",
		"presto_server_queue_depth 0",
		"presto_server_draining 0",
		"presto_http_submit_count",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body.String())
		}
	}
	close(release)
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
}

// TestArtifactGC: a terminal job's record and directory disappear once
// its TTL elapses.
func TestArtifactGC(t *testing.T) {
	s, c := newTestServer(t, Config{SpecBuilder: synthSpec, ArtifactTTL: time.Hour})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	dir := s.jobs[st.ID].dir
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("artifact dir missing after done: %v", err)
	}
	if n := s.gc(time.Now()); n != 0 {
		t.Fatalf("gc before TTL removed %d jobs", n)
	}
	if n := s.gc(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("gc after TTL removed %d jobs, want 1", n)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("artifact dir survived GC: %v", err)
	}
	if _, err := c.Job(ctx(t), st.ID); err == nil {
		t.Error("expired job still resolvable")
	}
}

// TestSlowArtifactReaderSurvivesGC pins the janitor/fetch race: a GET
// mid-download holds the job's fetch refcount, so when the TTL fires
// the janitor retires the job (refusing new fetches) but defers the
// directory removal until the reader has streamed the complete file.
func TestSlowArtifactReaderSurvivesGC(t *testing.T) {
	s, c := newTestServer(t, Config{SpecBuilder: synthSpec, ArtifactTTL: time.Hour})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	j := s.jobs[st.ID]

	// Inflate report.csv past the loopback socket buffers so the
	// handler is genuinely mid-io.Copy while the janitor fires below.
	path := filepath.Join(j.dir, "report.csv")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	pad := bytes.Repeat([]byte("x"), 1<<20)
	for i := 0; i < 16; i++ {
		if _, err := f.Write(pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.HTTPClient.Get(c.BaseURL + "/v1/jobs/" + st.ID + "/artifacts/report.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact GET status %d, want 200", resp.StatusCode)
	}
	head := make([]byte, 1024)
	if _, err := io.ReadFull(resp.Body, head); err != nil {
		t.Fatal(err)
	}

	// TTL elapses with the reader stalled after 1 KB: the job record
	// must be collected, but the directory must survive the sweep.
	if n := s.gc(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("gc removed %d jobs, want 1", n)
	}
	if j.acquireArtifacts() {
		t.Fatal("acquireArtifacts succeeded on a retired job; want 410 path")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact removed with a reader mid-stream: %v", err)
	}

	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading artifact tail after gc: %v", err)
	}
	got := append(head, rest...)
	if !bytes.Equal(got, want) {
		t.Fatalf("slow reader got %d bytes, want %d (content mismatch)", len(got), len(want))
	}

	// The last reader is out: the deferred removal must now land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(j.dir); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("artifact dir survived after the in-flight fetch drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBadRequests covers the 4xx surface.
func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec})
	// Unknown experiment selection → 400 from the builder.
	_, err := c.Submit(ctx(t), JobRequest{Experiments: "nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec err = %v, want 400", err)
	}
	// Unknown job → 404 everywhere.
	if _, err := c.Job(ctx(t), "job-999999"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job err = %v, want 404", err)
	}
	if err := c.Events(ctx(t), "job-999999", 0, func(Event) error { return nil }); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events err = %v, want 404", err)
	}
	// Unknown artifact name → 404 (path traversal is unrepresentable:
	// only whitelisted names resolve).
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Artifact(ctx(t), st.ID, "secrets.txt"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact err = %v, want 404", err)
	}
}

// TestDurationJSON pins the wire format of Duration.
func TestDurationJSON(t *testing.T) {
	var req JobRequest
	if err := jsonUnmarshal(`{"experiments":"x","duration":"150ms","warmup":50000000}`, &req); err != nil {
		t.Fatal(err)
	}
	if time.Duration(req.Duration) != 150*time.Millisecond || time.Duration(req.Warmup) != 50*time.Millisecond {
		t.Errorf("decoded durations = %v, %v", req.Duration, req.Warmup)
	}
	b, err := req.Duration.MarshalJSON()
	if err != nil || string(b) != `"150ms"` {
		t.Errorf("marshal = %s, %v", b, err)
	}
	if err := jsonUnmarshal(`{"experiments":"x","cell_timeout":null}`, &req); err != nil {
		t.Errorf("null duration rejected: %v", err)
	}
	if req.CellTimeout != 0 {
		t.Errorf("null cell_timeout = %v, want 0", req.CellTimeout)
	}
}

func jsonUnmarshal(s string, v any) error {
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// waitState polls a job until it reaches state (or is past it).
func waitState(t *testing.T, c *Client, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Job(ctx(t), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want || st.State.Terminal() {
			if st.State != want {
				t.Fatalf("job %s reached %s while waiting for %s", id, st.State, want)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// waitReadyz polls /readyz until it returns code.
func waitReadyz(t *testing.T, c *Client, code int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := c.HTTPClient.Get(c.BaseURL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == code {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("/readyz never returned %d", code)
}
