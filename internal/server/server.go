// Package server implements prestod, the campaign-serving daemon: an
// HTTP API that accepts declarative campaign specs as JSON, schedules
// them on a bounded job queue + worker pool with explicit backpressure
// (queue full ⇒ 429 + Retry-After), streams per-replica progress as
// NDJSON or SSE, and serves the finished campaign artifacts
// (report.json, report.csv, manifest.json) verbatim — so a campaign
// executed through the daemon is byte-identical to the same spec run
// through cmd/experiments, at any worker count.
//
// The API surface:
//
//	POST   /v1/jobs                       submit a JobRequest → 202 JobStatus (429 when the queue is full, 503 while draining)
//	GET    /v1/jobs                       list jobs in submission order
//	GET    /v1/jobs/{id}                  one job's status
//	DELETE /v1/jobs/{id}                  cancel (pending jobs die immediately; running ones have their context cancelled)
//	GET    /v1/jobs/{id}/events[?since=N] stream events: NDJSON, or SSE with Accept: text/event-stream
//	GET    /v1/jobs/{id}/stats            live sketch-derived percentiles (one frame; ?follow=1 streams until terminal)
//	GET    /v1/jobs/{id}/artifacts        list artifact names
//	GET    /v1/jobs/{id}/artifacts/{name} serve one artifact verbatim
//	GET    /healthz                       liveness (200 while the process runs)
//	GET    /readyz                        readiness (503 once draining)
//	GET    /metrics                       Prometheus text: queue depth, jobs by state, worker utilization, request latencies
//
// Lifecycle: pending → running → done | failed | cancelled. Artifacts
// of terminal jobs are garbage-collected after Config.ArtifactTTL.
// Drain stops intake, lets running jobs finish within a deadline, then
// cancels stragglers — completed jobs' artifacts are never dropped.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"presto/internal/campaign"
	"presto/internal/telemetry"
)

// artifactNames are the files a completed campaign serves, in sorted
// order (what campaign.Report.WriteArtifacts produces).
var artifactNames = []string{"manifest.json", "report.csv", "report.json"}

// Config parameterizes a Server.
type Config struct {
	// SpecBuilder maps a submitted JobRequest onto an executable
	// campaign spec. Required. The server overwrites the returned
	// spec's Progress and Telemetry fields to wire the job's event
	// stream and live counters; everything else (cells, seeds,
	// parallelism, cell timeout) is the builder's to fill.
	SpecBuilder func(req JobRequest) (*campaign.Spec, error)

	// DataDir is the artifact root (one subdirectory per job). Empty
	// means a fresh temporary directory.
	DataDir string

	// QueueDepth bounds the number of jobs waiting to run (running
	// jobs excluded); a full queue rejects submissions with 429.
	// Default 8.
	QueueDepth int

	// Workers is the number of jobs executed concurrently (each job
	// runs its own replica pool sized by its spec). Default 1.
	Workers int

	// ArtifactTTL is how long a terminal job's record and artifacts
	// are retained. 0 means the 1 h default; negative disables GC.
	ArtifactTTL time.Duration

	// RequestTimeout bounds non-streaming API requests. 0 means the
	// 30 s default.
	RequestTimeout time.Duration

	// RetryAfter is the hint returned with 429 responses. 0 means 2 s.
	RetryAfter time.Duration

	// GitDescribe stamps job manifests (may be empty).
	GitDescribe string

	// Logf, when non-nil, receives one line per job state transition.
	Logf func(format string, args ...any)
}

// Server is the campaign-serving daemon core. It implements
// http.Handler; run it under any http.Server.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	mux   *http.ServeMux
	stats *requestStats

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order
	queue    chan *job
	nextID   int
	draining bool
	busy     int // workers currently executing a job

	workers  sync.WaitGroup
	removals sync.WaitGroup // deferred artifact removals awaiting in-flight fetches
	gcStop   chan struct{}
	gcDone   chan struct{}
}

// New builds a Server and starts its worker pool (and artifact
// janitor, unless ArtifactTTL < 0).
func New(cfg Config) (*Server, error) {
	if cfg.SpecBuilder == nil {
		return nil, errors.New("server: Config.SpecBuilder is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ArtifactTTL == 0 {
		cfg.ArtifactTTL = time.Hour
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	if cfg.DataDir == "" {
		dir, err := os.MkdirTemp("", "prestod-*")
		if err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
		cfg.DataDir = dir
	} else if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: data dir: %w", err)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	s := &Server{
		cfg:    cfg,
		stats:  newRequestStats(),
		jobs:   make(map[string]*job),
		queue:  make(chan *job, cfg.QueueDepth),
		gcStop: make(chan struct{}),
		gcDone: make(chan struct{}),
	}
	s.reg = telemetry.NewRegistry(nil)
	s.reg.Register("server", s.probe)
	s.reg.Register("http", s.stats.probe)
	s.reg.Register("stats", s.statsProbe)
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	if cfg.ArtifactTTL > 0 {
		go s.janitor()
	} else {
		close(s.gcDone)
	}
	return s, nil
}

// DataDir returns the artifact root (useful when it was auto-created).
func (s *Server) DataDir() string { return s.cfg.DataDir }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// routes registers the API. Streaming endpoints skip the per-request
// timeout; everything else is bounded by Config.RequestTimeout.
func (s *Server) routes() {
	s.handle("GET /healthz", "healthz", true, s.handleHealthz)
	s.handle("GET /readyz", "readyz", true, s.handleReadyz)
	s.handle("GET /metrics", "metrics", true, s.handleMetrics)
	s.handle("POST /v1/jobs", "submit", true, s.handleSubmit)
	s.handle("GET /v1/jobs", "list", true, s.handleList)
	s.handle("GET /v1/jobs/{id}", "status", true, s.handleStatus)
	s.handle("DELETE /v1/jobs/{id}", "cancel", true, s.handleCancel)
	s.handle("GET /v1/jobs/{id}/events", "events", false, s.handleEvents)
	s.handle("GET /v1/jobs/{id}/stats", "stats", false, s.handleStats)
	s.handle("GET /v1/jobs/{id}/artifacts", "artifact-list", true, s.handleArtifactList)
	s.handle("GET /v1/jobs/{id}/artifacts/{name}", "artifact", true, s.handleArtifact)
}

// handle wraps a handler with latency instrumentation and (optionally)
// the per-request timeout.
func (s *Server) handle(pattern, route string, withTimeout bool, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if withTimeout && s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.stats.observe(route, rec.code, time.Since(start))
	})
}

// statusRecorder captures the response code for instrumentation while
// passing Flush through for streaming handlers.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSON responds with v as JSON.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError responds with the API's JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued := len(s.queue)
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "queued": queued})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot(0)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = writePrometheus(w, snap)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
		return
	}
	spec, err := s.cfg.SpecBuilder(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting jobs")
		return
	}
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	j := newJob(id, req, spec, filepath.Join(s.cfg.DataDir, id))
	select {
	case s.queue <- j:
		s.jobs[id] = j
		s.order = append(s.order, id)
	default:
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "job queue full (depth %d); retry later", cap(s.queue))
		return
	}
	s.mu.Unlock()
	sel := fmt.Sprintf("experiments=%q", req.Experiments)
	if len(req.Workload) > 0 {
		sel = "workload spec"
	}
	s.cfg.Logf("job %s submitted: %s seeds=%d parallelism=%d", id, sel, req.Seeds, req.Parallelism)
	writeJSON(w, http.StatusAccepted, j.status(s.cfg.ArtifactTTL))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(s.cfg.ArtifactTTL)
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves {id}, writing 404 when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status(s.cfg.ArtifactTTL))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.requestCancel("cancelled by client")
	s.cfg.Logf("job %s: cancel requested", j.id)
	writeJSON(w, http.StatusOK, j.status(s.cfg.ArtifactTTL))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	cursor := 0
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad since=%q", q)
			return
		}
		cursor = n
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, done := j.events.wait(r.Context(), cursor)
		for _, ev := range evs {
			if sse {
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
					return
				}
			} else if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		cursor += len(evs)
		if done || r.Context().Err() != nil {
			return
		}
	}
}

func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	st := j.status(s.cfg.ArtifactTTL)
	writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "state": st.State, "artifacts": st.Artifacts})
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	name := r.PathValue("name")
	ok := false
	for _, n := range artifactNames {
		if n == name {
			ok = true
			break
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown artifact %q (have: %s)", name, strings.Join(artifactNames, ", "))
		return
	}
	if st := j.stateNow(); st != StateDone {
		writeError(w, http.StatusConflict, "job %s is %s; artifacts exist only for done jobs", j.id, st)
		return
	}
	// Pin the artifact directory for the whole response: the janitor
	// defers removal until the last in-flight fetch releases, so a slow
	// reader streams the complete file. Once the job is retired the
	// fetch is refused with 410 rather than racing the delete.
	if !j.acquireArtifacts() {
		writeError(w, http.StatusGone, "job %s: artifacts expired and were removed", j.id)
		return
	}
	defer j.releaseArtifacts()
	f, err := os.Open(filepath.Join(j.dir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, "artifact %s: %v", name, err)
		return
	}
	defer f.Close() //prestolint:allow errdrop -- artifact opened read-only for serving; close cannot lose data
	if strings.HasSuffix(name, ".json") {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/csv")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = io.Copy(w, f)
}

// worker executes queued jobs until the queue closes (drain).
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through its lifecycle: run the campaign with a
// cancellable context, write artifacts on success, and map a cancelled
// context to the cancelled (not failed) state.
func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	if !j.begin(cancel) {
		return // cancelled while queued
	}
	s.mu.Lock()
	s.busy++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.busy--
		s.mu.Unlock()
	}()
	j.events.publish(Event{Job: j.id, Type: "state", State: StateRunning})
	s.cfg.Logf("job %s: running (%d cells × %d replicas)", j.id, j.cells, j.replicas)

	rep, err := campaign.RunContext(ctx, j.spec)
	switch {
	case err == nil:
		if werr := rep.WriteArtifacts(j.dir, s.cfg.GitDescribe); werr != nil {
			j.finish(StateFailed, fmt.Sprintf("writing artifacts: %v", werr), nil)
		} else {
			j.finish(StateDone, "", append([]string(nil), artifactNames...))
		}
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, err.Error(), nil)
	default:
		j.finish(StateFailed, err.Error(), nil)
	}
	s.cfg.Logf("job %s: %s", j.id, j.stateNow())
}

// Drain stops intake (readyz and POST turn 503), cancels still-queued
// jobs, and waits for running ones. When ctx expires first, running
// jobs have their contexts cancelled — the campaign pool stops within
// one replica — and the pool is awaited regardless, so artifacts
// already written are never dropped. Idempotent: later calls just wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	if first {
		s.draining = true
		close(s.queue)
	}
	var pending []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j.stateNow() == StatePending {
			pending = append(pending, j)
		}
	}
	s.mu.Unlock()
	// cancelIfPending re-checks state under the job lock: a job a
	// worker dequeued since the snapshot above is now running, and
	// running jobs get the full drain deadline rather than an
	// immediate context cancellation.
	for _, j := range pending {
		j.cancelIfPending("server draining")
	}

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	var running []*job
	for _, id := range s.order {
		if j := s.jobs[id]; j.stateNow() == StateRunning {
			running = append(running, j)
		}
	}
	s.mu.Unlock()
	for _, j := range running {
		j.requestCancel("drain deadline exceeded")
	}
	<-done
	if len(running) > 0 {
		return fmt.Errorf("drain deadline exceeded; cancelled %d running job(s)", len(running))
	}
	return nil
}

// Close force-drains (cancelling running jobs) and stops the janitor.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(ctx)
	s.mu.Lock()
	stopped := s.gcStop == nil
	if !stopped {
		close(s.gcStop)
		s.gcStop = nil
	}
	s.mu.Unlock()
	if !stopped {
		<-s.gcDone
	}
	// Deferred removals are bounded by their readers' connections, which
	// the HTTP server tears down before Close is reached in practice.
	s.removals.Wait()
	return err
}

// janitor garbage-collects expired jobs' records and artifact
// directories on a cadence derived from the TTL.
func (s *Server) janitor() {
	defer close(s.gcDone)
	interval := s.cfg.ArtifactTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	s.mu.Lock()
	stop := s.gcStop
	s.mu.Unlock()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.gc(time.Now())
		}
	}
}

// gc removes jobs whose artifacts outlived the TTL; returns how many.
func (s *Server) gc(now time.Time) int {
	s.mu.Lock()
	var expired []*job
	keep := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if j.expired(now, s.cfg.ArtifactTTL) {
			expired = append(expired, j)
			delete(s.jobs, id)
		} else {
			keep = append(keep, id)
		}
	}
	s.order = keep
	s.mu.Unlock()
	for _, j := range expired {
		// retire refuses new fetches; removal waits for in-flight ones.
		// The common no-readers case removes synchronously so the TTL is
		// honored promptly; with a fetch mid-stream, a goroutine removes
		// the directory the moment the last reader finishes.
		if idle := j.retire(); idle != nil {
			s.removals.Add(1)
			go func(j *job, idle <-chan struct{}) {
				defer s.removals.Done()
				<-idle
				_ = os.RemoveAll(j.dir)
				s.cfg.Logf("job %s: expired; artifacts removed after in-flight fetch drained", j.id)
			}(j, idle)
			continue
		}
		_ = os.RemoveAll(j.dir)
		s.cfg.Logf("job %s: expired; artifacts removed", j.id)
	}
	return len(expired)
}

// probe reports the server's execution state ("server" component of
// /metrics): queue occupancy, jobs by state, worker utilization, and
// replica totals across all retained jobs.
func (s *Server) probe() map[string]any {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	m := map[string]any{
		"queue_depth":  len(s.queue),
		"queue_cap":    cap(s.queue),
		"workers":      s.cfg.Workers,
		"workers_busy": s.busy,
		"draining":     s.draining,
		"jobs_total":   len(s.order),
	}
	s.mu.Unlock()

	byState := map[State]int{}
	var done, failed int
	for _, j := range jobs {
		byState[j.stateNow()]++
		d, f := j.progress()
		done += d
		failed += f
	}
	for _, st := range []State{StatePending, StateRunning, StateDone, StateFailed, StateCancelled} {
		m["jobs_"+string(st)] = byState[st]
	}
	m["replicas_done_total"] = done
	m["replicas_failed_total"] = failed
	return m
}
