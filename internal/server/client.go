package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the Go client for a prestod daemon — the programmatic
// face of cmd/prestoctl and examples/serving. The zero value is not
// usable; set BaseURL.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Event streams are
	// long-lived, so any custom client must not set a global Timeout;
	// bound calls with the context instead.
	HTTPClient *http.Client
}

// APIError is a non-2xx daemon response.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's backpressure hint on 429 responses.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("prestod: %s (HTTP %d)", e.Message, e.StatusCode)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (when
// non-nil), mapping non-2xx responses to *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //prestolint:allow errdrop -- response body is read-only; close on the read side cannot lose data
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError decodes the server's {"error": ...} envelope.
func apiError(resp *http.Response) error {
	e := &APIError{StatusCode: resp.StatusCode}
	var envelope struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&envelope); err == nil && envelope.Error != "" {
		e.Message = envelope.Error
	} else {
		e.Message = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// Submit posts a job; the returned status carries the assigned ID.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every retained job in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests cancellation and returns the job's status after the
// request was registered (the state may still be "running" while the
// campaign pool unwinds; Wait for the terminal state).
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Events streams the job's events from seq `since`, invoking fn for
// each. It returns nil when the stream ends (the job reached a
// terminal state), fn's error if it aborts the stream, or the
// transport/ctx error.
func (c *Client) Events(ctx context.Context, id string, since int, fn func(Event) error) error {
	path := "/v1/jobs/" + id + "/events"
	if since > 0 {
		path += "?since=" + strconv.Itoa(since)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //prestolint:allow errdrop -- response body is read-only; close on the read side cannot lose data
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("decoding event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// Stats fetches the job's live percentile frames. With follow false a
// single frame is delivered; with follow true frames arrive at the
// server's cadence (or every interval, when > 0) until the job is
// terminal — the last frame has Final set. fn's error aborts the
// stream and is returned.
func (c *Client) Stats(ctx context.Context, id string, follow bool, interval time.Duration, fn func(StatsFrame) error) error {
	path := "/v1/jobs/" + id + "/stats"
	var params []string
	if follow {
		params = append(params, "follow=1")
	}
	if interval > 0 {
		params = append(params, "interval="+interval.String())
	}
	if len(params) > 0 {
		path += "?" + strings.Join(params, "&")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //prestolint:allow errdrop -- response body is read-only; close on the read side cannot lose data
	if resp.StatusCode >= 300 {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var f StatsFrame
		if err := json.Unmarshal(line, &f); err != nil {
			return fmt.Errorf("decoding stats frame: %w", err)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// Artifacts lists a job's servable artifact names.
func (c *Client) Artifacts(ctx context.Context, id string) ([]string, error) {
	var out struct {
		Artifacts []string `json:"artifacts"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/artifacts", nil, &out); err != nil {
		return nil, err
	}
	return out.Artifacts, nil
}

// Artifact fetches one artifact verbatim (the exact bytes the
// campaign wrote).
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/artifacts/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //prestolint:allow errdrop -- response body is read-only; close on the read side cannot lose data
	if resp.StatusCode >= 300 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Wait blocks until the job reaches a terminal state, riding the
// event stream (with a polling fallback if the stream ends early) and
// returning the final status.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	for {
		if err := c.Events(ctx, id, 0, func(Event) error { return nil }); err != nil {
			return nil, err
		}
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
