package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"presto/internal/telemetry"
)

// requestStats aggregates HTTP request latencies per route for the
// "http" server probe (and through it /metrics).
type requestStats struct {
	mu      sync.Mutex
	byRoute map[string]*routeStats
}

type routeStats struct {
	count   uint64
	errors  uint64 // responses with status >= 400
	totalMS float64
	maxMS   float64
}

func newRequestStats() *requestStats {
	return &requestStats{byRoute: make(map[string]*routeStats)}
}

func (s *requestStats) observe(route string, code int, d time.Duration) {
	ms := float64(d) / 1e6
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.byRoute[route]
	if rs == nil {
		rs = &routeStats{}
		s.byRoute[route] = rs
	}
	rs.count++
	if code >= 400 {
		rs.errors++
	}
	rs.totalMS += ms
	if ms > rs.maxMS {
		rs.maxMS = ms
	}
}

// probe reports per-route request counters as a nested map
// (route → counters), flattened to dotted keys by the snapshot layer.
func (s *requestStats) probe() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]any, len(s.byRoute))
	for route, rs := range s.byRoute {
		m := map[string]any{
			"count":    rs.count,
			"errors":   rs.errors,
			"total_ms": rs.totalMS,
			"max_ms":   rs.maxMS,
		}
		if rs.count > 0 {
			m["mean_ms"] = rs.totalMS / float64(rs.count)
		}
		out[route] = m
	}
	return out
}

// writePrometheus renders a telemetry snapshot in Prometheus text
// exposition format: every numeric probe value becomes one gauge named
// presto_<component>_<metric>, names sanitized to the metric charset
// and emitted in sorted order so the endpoint is deterministic for a
// given snapshot.
func writePrometheus(w io.Writer, snap *telemetry.Snapshot) error {
	type metric struct {
		name  string
		value float64
	}
	var metrics []metric
	for comp, probe := range snap.Components {
		flat := make(map[string]float64)
		flattenNumeric("", probe, flat)
		for k, v := range flat {
			metrics = append(metrics, metric{promName(comp + "_" + k), v})
		}
	}
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", m.name, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

// flattenNumeric walks a probe map, keeping numeric (and boolean)
// leaves under dotted keys; strings and other values are skipped.
func flattenNumeric(prefix string, m map[string]any, out map[string]float64) {
	for k, v := range m {
		key := k
		if prefix != "" {
			key = prefix + "." + k
		}
		switch x := v.(type) {
		case map[string]any:
			flattenNumeric(key, x, out)
		case bool:
			if x {
				out[key] = 1
			} else {
				out[key] = 0
			}
		case int:
			out[key] = float64(x)
		case int64:
			out[key] = float64(x)
		case uint64:
			out[key] = float64(x)
		case float64:
			out[key] = x
		}
	}
}

// promName maps a component/metric key to the Prometheus metric
// charset [a-zA-Z0-9_], prefixed presto_.
func promName(s string) string {
	var b strings.Builder
	b.WriteString("presto_")
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
