package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"presto/internal/metrics"
)

// DistStats is one distribution's live sketch-derived tail summary.
type DistStats struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// StatsFrame is one frame of a job's live-percentile stream (GET
// /v1/jobs/{id}/stats): the job's progress plus p50/p95/p99/p999 of
// every distribution observed so far, derived from mergeable quantile
// sketches as replicas finish — available mid-run, long before
// report.json exists. The closing frame of a followed stream has
// Final set.
type StatsFrame struct {
	Job            string      `json:"job"`
	State          State       `json:"state"`
	ReplicasDone   int         `json:"replicas_done"`
	ReplicasFailed int         `json:"replicas_failed"`
	Final          bool        `json:"final,omitempty"`
	Dists          []DistStats `json:"dists"`
}

// statsFrame snapshots the job's live percentiles.
func (j *job) statsFrame(final bool) StatsFrame {
	done, failed := j.progress()
	f := StatsFrame{
		Job:            j.id,
		State:          j.stateNow(),
		ReplicasDone:   done,
		ReplicasFailed: failed,
		Final:          final,
		Dists:          []DistStats{},
	}
	for _, name := range j.stats.Names() {
		sk := j.stats.Sketch(name)
		if sk == nil {
			continue
		}
		f.Dists = append(f.Dists, DistStats{
			Name: name,
			N:    sk.N(),
			P50:  sk.Quantile(0.50),
			P95:  sk.Quantile(0.95),
			P99:  sk.Quantile(0.99),
			P999: sk.Quantile(0.999),
		})
	}
	return f
}

// handleStats serves GET /v1/jobs/{id}/stats: one frame of live
// percentiles, or — with ?follow=1 — a stream of frames every
// ?interval (default 500ms, floor 20ms) until the job reaches a
// terminal state, closing with a Final frame. NDJSON by default, SSE
// with Accept: text/event-stream.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	q := r.URL.Query()
	follow := q.Get("follow") != "" && q.Get("follow") != "0" && q.Get("follow") != "false"
	interval := 500 * time.Millisecond
	if v := q.Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad interval=%q", v)
			return
		}
		if d < 20*time.Millisecond {
			d = 20 * time.Millisecond
		}
		interval = d
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emit := func(f StatsFrame) error {
		if sse {
			data, err := json.Marshal(f)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "event: stats\ndata: %s\n\n", data); err != nil {
				return err
			}
		} else if err := enc.Encode(f); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	terminal := frameIsFinal(j)
	if err := emit(j.statsFrame(terminal)); err != nil || !follow || terminal {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
		terminal := frameIsFinal(j)
		if err := emit(j.statsFrame(terminal)); err != nil || terminal {
			return
		}
	}
}

// frameIsFinal reports whether the job has reached a terminal state —
// the frame emitted now reflects every replica that will ever run.
func frameIsFinal(j *job) bool { return j.stateNow().Terminal() }

// statsProbe merges live sketches across every retained job into one
// quantile gauge set per distribution name — the "stats" component of
// the server registry, surfacing presto_stats_<dist>_p99-style gauges
// on /metrics. Sketch merging is order-independent, so the gauges are
// deterministic for a given set of observed replicas.
func (s *Server) statsProbe() map[string]any {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	merged := make(map[string]*metrics.Sketch)
	var replicas uint64
	for _, j := range jobs {
		replicas += j.stats.Replicas()
		for _, name := range j.stats.Names() {
			sk := j.stats.Sketch(name)
			if sk == nil {
				continue
			}
			if acc := merged[name]; acc == nil {
				merged[name] = sk
			} else if err := acc.Merge(sk); err != nil {
				// Jobs may run at different sketch alphas; re-bucket
				// rather than silently dropping the job's samples.
				acc.Merge(sk.Rebucket(acc.Alpha()))
			}
		}
	}
	m := map[string]any{"replicas_observed": replicas}
	for name, sk := range merged {
		m[name+".n"] = sk.N()
		m[name+".p50"] = sk.Quantile(0.50)
		m[name+".p95"] = sk.Quantile(0.95)
		m[name+".p99"] = sk.Quantile(0.99)
		m[name+".p999"] = sk.Quantile(0.999)
	}
	return m
}
