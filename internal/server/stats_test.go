package server

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"presto/internal/campaign"
	"presto/internal/metrics"
)

// statsBuilder returns a two-cell spec where the first cell finishes
// immediately (emitting a "lat" distribution) and the second blocks on
// release — so a follower can observe live percentiles mid-run.
func statsBuilder(release chan struct{}) func(JobRequest) (*campaign.Spec, error) {
	return func(req JobRequest) (*campaign.Spec, error) {
		mkCell := func(id string, block bool) campaign.Cell {
			return campaign.Cell{
				Experiment: "stats",
				ID:         "stats/" + id,
				Run: func(seed uint64) (campaign.Result, error) {
					if block {
						<-release
					}
					d := &metrics.Dist{}
					for k := 0; k < 100; k++ {
						d.Add(float64(seed) + float64(k))
					}
					return campaign.Result{
						Metrics: campaign.Values{"v": 1},
						Dists:   map[string]*metrics.Dist{"lat": d},
					}, nil
				},
			}
		}
		return &campaign.Spec{
			Name:        "stats",
			Cells:       []campaign.Cell{mkCell("fast", false), mkCell("slow", true)},
			Parallelism: 1,
		}, nil
	}
}

func TestStatsSingleFrameAfterDone(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec, Workers: 1})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth", Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	var frames []StatsFrame
	err = c.Stats(ctx(t), st.ID, false, 0, func(f StatsFrame) error {
		frames = append(frames, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1", len(frames))
	}
	f := frames[0]
	if f.State != StateDone || !f.Final {
		t.Fatalf("frame = %+v, want done/final", f)
	}
	// 2 cells × 2 seeds × 4 samples.
	if len(f.Dists) != 1 || f.Dists[0].Name != "lat" || f.Dists[0].N != 16 {
		t.Fatalf("dists = %+v", f.Dists)
	}
	d := f.Dists[0]
	if !(d.P50 <= d.P95 && d.P95 <= d.P99 && d.P99 <= d.P999) {
		t.Fatalf("percentiles not monotone: %+v", d)
	}
	if d.P50 <= 0 {
		t.Fatalf("p50 = %v, want > 0", d.P50)
	}
}

func TestStatsFollowStreamsMidRun(t *testing.T) {
	release := make(chan struct{})
	done := false
	releaseOnce := func() {
		if !done {
			done = true
			close(release)
		}
	}
	defer releaseOnce()
	_, c := newTestServer(t, Config{SpecBuilder: statsBuilder(release)})

	st, err := c.Submit(ctx(t), JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	var sawLive, sawFinal bool
	err = c.Stats(ctx(t), st.ID, true, 20*time.Millisecond, func(f StatsFrame) error {
		if !f.Final && f.State == StateRunning && len(f.Dists) > 0 && f.Dists[0].N == 100 {
			// Live mid-run percentiles from the first replica while the
			// second still blocks.
			sawLive = true
			if f.Dists[0].P99 < f.Dists[0].P50 {
				t.Errorf("bad live frame: %+v", f.Dists[0])
			}
			releaseOnce()
		}
		if f.Final {
			sawFinal = true
			if f.State != StateDone || len(f.Dists) != 1 || f.Dists[0].N != 200 {
				t.Errorf("bad final frame: %+v", f)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawLive {
		t.Fatal("never observed a live mid-run stats frame")
	}
	if !sawFinal {
		t.Fatal("stream ended without a final frame")
	}
}

func TestStatsSSE(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequestWithContext(ctx(t), http.MethodGet, c.BaseURL+"/v1/jobs/"+st.ID+"/stats", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if event != "stats" || !strings.Contains(data, `"p99"`) {
		t.Fatalf("SSE frame: event=%q data=%q", event, data)
	}
}

func TestStatsUnknownJobAndBadInterval(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec})
	err := c.Stats(ctx(t), "job-999999", false, 0, func(StatsFrame) error { return nil })
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v", err)
	}
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http().Get(c.BaseURL + "/v1/jobs/" + st.ID + "/stats?interval=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad interval -> %d, want 400", resp.StatusCode)
	}
}

// TestMetricsCarriesQuantileGauges checks the Prometheus endpoint
// exposes the merged live-stats quantiles.
func TestMetricsCarriesQuantileGauges(t *testing.T) {
	_, c := newTestServer(t, Config{SpecBuilder: synthSpec})
	st, err := c.Submit(ctx(t), JobRequest{Experiments: "synth", Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx(t), st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := c.http().Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"presto_stats_lat_p50",
		"presto_stats_lat_p95",
		"presto_stats_lat_p99",
		"presto_stats_lat_p999",
		"presto_stats_lat_n 16",
		"presto_stats_replicas_observed 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// asAPIError unwraps err into *APIError (errors.As without the import
// dance in table helpers).
func asAPIError(err error, out **APIError) bool {
	if e, ok := err.(*APIError); ok {
		*out = e
		return true
	}
	return false
}
