package server

import (
	"bytes"
	"context"
	"sync"
)

// Event is one entry of a job's event stream (GET
// /v1/jobs/{id}/events). Type "state" marks lifecycle transitions
// (the terminal one carries the artifact list), "progress" carries one
// campaign progress line (one per completed replica plus the summary).
type Event struct {
	// Seq is the event's position in the job's stream, starting at 0.
	// ?since=<seq> names the first event to deliver (inclusive), so a
	// client resuming a dropped stream passes lastSeq+1 to avoid
	// re-processing the last event it already received.
	Seq       int      `json:"seq"`
	Job       string   `json:"job"`
	Type      string   `json:"type"`
	State     State    `json:"state,omitempty"`
	Line      string   `json:"line,omitempty"`
	Error     string   `json:"error,omitempty"`
	Artifacts []string `json:"artifacts,omitempty"`
}

// broker is a per-job event log with blocking subscribers: the full
// history is retained (a campaign emits one progress line per replica,
// so it is small and bounded by the spec), late subscribers replay it
// from any cursor, and live ones block for more.
type broker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

func newBroker() *broker {
	b := &broker{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// publish appends an event (stamping its Seq) and wakes subscribers.
// Events after close are dropped.
func (b *broker) publish(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	e.Seq = len(b.events)
	b.events = append(b.events, e)
	b.cond.Broadcast()
}

// close ends the stream; subscribers drain the history and stop.
func (b *broker) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// wait returns the events at and after cursor, blocking until at least
// one exists, the stream closes, or ctx is done. done reports that the
// stream is closed and the returned slice reaches its end.
func (b *broker) wait(ctx context.Context, cursor int) (evs []Event, done bool) {
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for cursor >= len(b.events) && !b.closed && ctx.Err() == nil {
		b.cond.Wait()
	}
	if cursor < len(b.events) {
		evs = append([]Event(nil), b.events[cursor:]...)
	}
	return evs, b.closed
}

// progressWriter adapts the campaign's Progress io.Writer into
// per-line broker events. The campaign writes progress lines under its
// own lock but panic backtraces come straight from replica goroutines,
// so the writer carries its own mutex.
type progressWriter struct {
	job    string
	events *broker

	mu  sync.Mutex
	buf []byte
}

func (w *progressWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf, p...)
	for {
		i := bytes.IndexByte(w.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := string(w.buf[:i])
		w.buf = w.buf[i+1:]
		if line != "" {
			w.events.publish(Event{Job: w.job, Type: "progress", Line: line})
		}
	}
}
