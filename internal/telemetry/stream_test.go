package telemetry

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"presto/internal/sim"
)

// --- tracer ring mode -------------------------------------------------

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer()
	tr.SetRing(4)
	for i := 0; i < 10; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := sim.Time(6 + i); ev.At != want {
			t.Fatalf("event %d at %d, want %d (newest four, in order)", i, ev.At, want)
		}
	}
	if tr.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", tr.Overwritten())
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring mode must not count drops, got %d", tr.Dropped())
	}
	if got := tr.CountKind(KindRingDrop); got != 4 {
		t.Fatalf("CountKind = %d, want 4", got)
	}
}

func TestTracerRingKeepsNewestOnShrink(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 6; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	tr.SetRing(3)
	evs := tr.Events()
	if len(evs) != 3 || evs[0].At != 3 || evs[2].At != 5 {
		t.Fatalf("SetRing kept wrong events: %+v", evs)
	}
}

// TestTracerRingEmitAllocs pins the bounded-memory guarantee: once the
// ring is primed, emitting overwrites slots in place with zero
// allocations.
func TestTracerRingEmitAllocs(t *testing.T) {
	tr := NewTracer()
	tr.SetRing(64)
	for i := 0; i < 64; i++ {
		tr.GROFlush(sim.Time(i), 2, 1500, 1, "in-order")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.GROFlush(1, 2, 1500, 1, "in-order")
	})
	if allocs != 0 {
		t.Fatalf("ring emit allocates %v per op, want 0", allocs)
	}
}

func TestTracerRingJSONLOrder(t *testing.T) {
	tr := NewTracer()
	tr.SetRing(3)
	for i := 0; i < 5; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var ts []float64
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		ts = append(ts, rec["ts_ns"].(float64))
	}
	if !reflect.DeepEqual(ts, []float64{2, 3, 4}) {
		t.Fatalf("JSONL order after wrap = %v, want [2 3 4]", ts)
	}
}

// --- tracer spill -----------------------------------------------------

// readSpill decodes a gzip-JSONL spill file into records.
func readSpill(t *testing.T, path string) []map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("spill file is not gzip: %v", err)
	}
	defer gz.Close()
	var recs []map[string]any
	sc := bufio.NewScanner(gz)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid spill line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestTracerSpillKeepsEveryEvent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl.gz")
	tr := NewTracer()
	tr.SetRing(8)
	if err := tr.SpillTo(path); err != nil {
		t.Fatal(err)
	}
	const total = 100
	for i := 0; i < total; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	if tr.Overwritten() != 0 {
		t.Fatalf("spill armed but %d events overwritten", tr.Overwritten())
	}
	if int(tr.Spilled())+len(tr.Events()) != total {
		t.Fatalf("spilled %d + buffered %d != %d", tr.Spilled(), len(tr.Events()), total)
	}
	if err := tr.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events()) != 0 {
		t.Fatal("CloseSpill must drain the buffer")
	}
	recs := readSpill(t, path)
	if len(recs) != total {
		t.Fatalf("spill file has %d events, want %d", len(recs), total)
	}
	for i, rec := range recs {
		if int(rec["ts_ns"].(float64)) != i {
			t.Fatalf("spill out of order at %d: %v", i, rec)
		}
	}
}

func TestTracerSpillWithPlainLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl.gz")
	tr := NewTracer()
	tr.SetLimit(4)
	if err := tr.SpillTo(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("spill armed but %d events dropped", tr.Dropped())
	}
	if err := tr.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	if got := len(readSpill(t, path)); got != 11 {
		t.Fatalf("spill file has %d events, want 11", got)
	}
}

// TestTracerSpillCloseAfterWriteError: a write error during the final
// flush (e.g. disk full at trace finalization) must surface as an
// error from CloseSpill, not a nil-pointer panic — flushToSpill
// detaches the sink on error, and CloseSpill must tolerate that.
func TestTracerSpillCloseAfterWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl.gz")
	tr := NewTracer()
	if err := tr.SpillTo(path); err != nil {
		t.Fatal(err)
	}
	// Make every subsequent sink write fail, as a full disk would.
	tr.spill.f.Close()
	// Buffer enough events that draining them overflows the sink's
	// 64 KiB buffer mid-flush, hitting the dead file descriptor.
	for i := 0; i < 4000; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	if err := tr.CloseSpill(); err == nil {
		t.Fatal("CloseSpill must surface the flush error")
	}
	if tr.SpillError() == nil {
		t.Fatal("flush error was not recorded")
	}
	if err := tr.CloseSpill(); err == nil {
		t.Fatal("repeated CloseSpill must keep reporting the error")
	}
}

// TestTracerSetLimitInRingModeResizes: SetLimit after SetRing must
// resize the ring consistently (buffer, head, wrapped) instead of
// letting Emit append past the fixed ring and scramble event order.
func TestTracerSetLimitInRingModeResizes(t *testing.T) {
	tr := NewTracer()
	tr.SetRing(4)
	tr.SetLimit(8)
	for i := 0; i < 20; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := sim.Time(12 + i); ev.At != want {
			t.Fatalf("event %d at %d, want %d (order broken after wrap)", i, ev.At, want)
		}
	}
	if tr.Overwritten() != 12 {
		t.Fatalf("overwritten = %d, want 12", tr.Overwritten())
	}
}

func TestTracerSpillNilSafe(t *testing.T) {
	var tr *Tracer
	if err := tr.SpillTo("/nonexistent/x"); err != nil {
		t.Fatal("nil tracer SpillTo must be a no-op")
	}
	if err := tr.CloseSpill(); err != nil {
		t.Fatal(err)
	}
	if tr.Spilled() != 0 || tr.Overwritten() != 0 || tr.SpillError() != nil {
		t.Fatal("nil tracer recorded spill state")
	}
	tr.SetRing(8)
}

// --- incremental snapshot stream --------------------------------------

// countingRegistry builds a registry whose probe values the test can
// mutate between frames.
func countingRegistry() (*Registry, map[string]any) {
	vals := map[string]any{
		"flowcells": uint64(0),
		"drops":     uint64(0),
		"nested":    map[string]any{"deep": 1},
	}
	r := NewRegistry(nil)
	r.Register("host0/vswitch", func() map[string]any {
		out := make(map[string]any, len(vals))
		for k, v := range vals {
			out[k] = v
		}
		return out
	})
	r.Register("engine", func() map[string]any {
		return map[string]any{"events": uint64(42)}
	})
	return r, vals
}

func TestSnapshotStreamDeltasAndKeyframes(t *testing.T) {
	r, vals := countingRegistry()
	ss := r.Stream(3)

	d1 := ss.Next(100)
	if !d1.Keyframe || d1.Seq != 1 {
		t.Fatalf("first frame must be a keyframe: %+v", d1)
	}
	if len(d1.Keys) != 4 { // flowcells, drops, nested.deep, events
		t.Fatalf("keyframe carries %d keys, want 4: %v", len(d1.Keys), d1.Keys)
	}

	// Nothing changed: the delta must be empty.
	d2 := ss.Next(200)
	if d2.Keyframe || len(d2.Keys) != 0 || len(d2.RemovedKeys) != 0 {
		t.Fatalf("idle delta not empty: %+v", d2)
	}
	if d2.Base != 1 || d2.Seq != 2 {
		t.Fatalf("chaining wrong: %+v", d2)
	}

	// One value changed: exactly one column entry.
	vals["flowcells"] = uint64(7)
	d3 := ss.Next(300)
	if len(d3.Keys) != 1 || d3.Keys[0] != "flowcells" || d3.Components[0] != "host0/vswitch" {
		t.Fatalf("delta = %+v, want single flowcells change", d3)
	}
	if d3.Values[0].(uint64) != 7 {
		t.Fatalf("delta value = %v", d3.Values[0])
	}

	// Fourth frame: keyframe cadence (every 3) restates everything.
	d4 := ss.Next(400)
	if !d4.Keyframe || len(d4.Keys) != 4 {
		t.Fatalf("frame 4 should be a full keyframe: %+v", d4)
	}
}

func TestSnapshotStreamDecoderReassembles(t *testing.T) {
	r, vals := countingRegistry()
	ss := r.Stream(4)
	dec := NewStreamDecoder()

	for i := 0; i < 10; i++ {
		vals["flowcells"] = uint64(i * 3)
		if i == 5 {
			vals["drops"] = uint64(99)
		}
		d := ss.Next(sim.Time(i * 100))
		if err := dec.Apply(d); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// The reconstructed state must equal a fresh full snapshot.
	want := r.Snapshot(0).Flat()
	if !reflect.DeepEqual(dec.State(), want) {
		t.Fatalf("decoder state diverged:\n got %v\nwant %v", dec.State(), want)
	}
	if dec.Seq() != 10 || dec.TakenAtNs() != 900 {
		t.Fatalf("decoder cursor wrong: seq=%d at=%d", dec.Seq(), dec.TakenAtNs())
	}
}

func TestSnapshotStreamRemovedKeys(t *testing.T) {
	vals := map[string]any{"a": 1, "b": 2}
	r := NewRegistry(nil)
	r.Register("p", func() map[string]any {
		out := make(map[string]any, len(vals))
		for k, v := range vals {
			out[k] = v
		}
		return out
	})
	ss := r.Stream(0)
	dec := NewStreamDecoder()
	if err := dec.Apply(ss.Next(1)); err != nil {
		t.Fatal(err)
	}
	delete(vals, "b")
	d := ss.Next(2)
	if len(d.RemovedKeys) != 1 || d.RemovedKeys[0] != "b" || d.RemovedComponents[0] != "p" {
		t.Fatalf("removal not tracked: %+v", d)
	}
	if err := dec.Apply(d); err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.State()["p"]["b"]; ok {
		t.Fatal("decoder kept removed key")
	}
}

func TestSnapshotStreamJSONRoundTrip(t *testing.T) {
	r, vals := countingRegistry()
	ss := r.Stream(2)
	var frames [][]byte
	for i := 0; i < 5; i++ {
		vals["flowcells"] = uint64(i)
		data, err := json.Marshal(ss.Next(sim.Time(i)))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, data)
	}
	// Decode through JSON and reassemble; compare against the direct
	// state normalized the same way (JSON erases Go integer types).
	dec := NewStreamDecoder()
	for _, data := range frames {
		var d Delta
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatal(err)
		}
		if err := dec.Apply(&d); err != nil {
			t.Fatal(err)
		}
	}
	normalize := func(m map[string]map[string]any) map[string]map[string]any {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]map[string]any
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := normalize(r.Snapshot(0).Flat())
	if got := normalize(dec.State()); !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round-trip diverged:\n got %v\nwant %v", got, want)
	}
}

func TestSnapshotStreamDecoderRejectsGap(t *testing.T) {
	r, vals := countingRegistry()
	ss := r.Stream(0)
	dec := NewStreamDecoder()
	if err := dec.Apply(ss.Next(1)); err != nil {
		t.Fatal(err)
	}
	vals["flowcells"] = uint64(1)
	_ = ss.Next(2) // skipped frame
	vals["flowcells"] = uint64(2)
	d3 := ss.Next(3)
	if err := dec.Apply(d3); err == nil {
		t.Fatal("decoder accepted a frame with a gap")
	}
	// A later keyframe resynchronizes.
	vals["flowcells"] = uint64(3)
	kf := ss.Next(4)
	kf.Keyframe = true // simulate a mid-stream keyframe join
	// Rebuild as full restatement for the joined reader.
	full := r.Stream(0).Next(4)
	full.Seq = kf.Seq
	if err := dec.Apply(full); err != nil {
		t.Fatalf("keyframe join failed: %v", err)
	}
}

func TestSnapshotStreamNilSafe(t *testing.T) {
	var r *Registry
	if r.Stream(3) != nil {
		t.Fatal("nil registry returned a stream")
	}
	var ss *SnapshotStream
	if ss.Next(0) != nil {
		t.Fatal("nil stream returned a frame")
	}
	var dec *StreamDecoder
	if err := dec.Apply(&Delta{}); err != nil {
		t.Fatal(err)
	}
	if dec.State() != nil || dec.Seq() != 0 || dec.TakenAtNs() != 0 {
		t.Fatal("nil decoder recorded state")
	}
	var s *Snapshot
	if s.Flat() != nil {
		t.Fatal("nil snapshot flattened")
	}
}

func TestStreamDecoderRejectsRaggedColumns(t *testing.T) {
	dec := NewStreamDecoder()
	bad := &Delta{Seq: 1, Keyframe: true, Components: []string{"a"}, Keys: []string{"k", "extra"}, Values: []any{1, 2}}
	if err := dec.Apply(bad); err == nil {
		t.Fatal("accepted ragged columns")
	}
	bad2 := &Delta{Seq: 1, Keyframe: true, RemovedComponents: []string{"a"}}
	if err := dec.Apply(bad2); err == nil {
		t.Fatal("accepted ragged removed columns")
	}
}
