package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"presto/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(0, KindGROFlush, Host(1), 1, 2, "x")
	tr.FlowcellEmit(0, 1, 2, 3)
	tr.GROFlush(0, 1, 2, 3, "in-order")
	tr.QueueDrop(0, 1, 2, "tail-drop")
	tr.SetLimit(10)
	if tr.Events() != nil || tr.Dropped() != 0 || tr.CountKind(KindGROFlush) != 0 {
		t.Fatal("nil tracer recorded state")
	}
	if tr.BeginRun("x") != 0 || tr.RunLabel(0) != "" {
		t.Fatal("nil tracer run scoping not inert")
	}
}

// TestNilTracerEmitAllocs pins the zero-overhead guarantee: the
// disabled emit path must not allocate. All helper signatures take only
// scalars, so there is no interface boxing to hide.
func TestNilTracerEmitAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.FlowcellEmit(1, 2, 3, 4)
		tr.GROFlush(1, 2, 3, 4, "in-order")
		tr.GROHold(1, 2, 3, 4)
		tr.QueueDrop(1, 2, 3, "tail-drop")
		tr.RingDrop(1, 2, 3)
		tr.Retransmit(1, 2, 3, 4, "fast")
		tr.Cwnd(1, 2, 3, 4)
		tr.LinkDown(1, 2)
		tr.LinkUp(1, 2)
		tr.FailoverSwitch(1, 2, 3, 4)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer emit path allocates %v per run, want 0", allocs)
	}
}

func TestTracerRecordsAndCounts(t *testing.T) {
	tr := NewTracer()
	tr.FlowcellEmit(10, 3, 7, 1)
	tr.GROFlush(20, 3, 1500, 1, "in-order")
	tr.GROFlush(30, 4, 3000, 2, "loss-gap")
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindFlowcellEmit || evs[0].A != 7 || evs[0].B != 1 {
		t.Fatalf("bad flowcell event: %+v", evs[0])
	}
	if got := tr.CountKind(KindGROFlush); got != 2 {
		t.Fatalf("CountKind(GROFlush)=%d, want 2", got)
	}
	if evs[2].Reason != "loss-gap" {
		t.Fatalf("reason=%q, want loss-gap", evs[2].Reason)
	}
}

func TestTracerLimit(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	for i := 0; i < 5; i++ {
		tr.RingDrop(sim.Time(i), 0, i)
	}
	if len(tr.Events()) != 2 {
		t.Fatalf("buffered %d events, want 2", len(tr.Events()))
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped=%d, want 3", tr.Dropped())
	}
}

func TestBeginRunScoping(t *testing.T) {
	tr := NewTracer()
	if id := tr.BeginRun("first"); id != 0 {
		t.Fatalf("first BeginRun -> run %d, want 0 (renames implicit run)", id)
	}
	tr.LinkDown(1, 0)
	if id := tr.BeginRun("second"); id != 1 {
		t.Fatalf("second BeginRun -> run %d, want 1", id)
	}
	tr.LinkDown(2, 0)
	evs := tr.Events()
	if evs[0].Run != 0 || evs[1].Run != 1 {
		t.Fatalf("run stamps = %d,%d, want 0,1", evs[0].Run, evs[1].Run)
	}
	if tr.RunLabel(0) != "first" || tr.RunLabel(1) != "second" {
		t.Fatalf("labels = %q,%q", tr.RunLabel(0), tr.RunLabel(1))
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.FlowcellEmit(1500, 2, 9, 3)
	tr.GROFlush(2500, 2, 64000, 44, "boundary-timeout")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["event"] != "FlowcellEmit" || lines[0]["flowcell"].(float64) != 9 || lines[0]["path"].(float64) != 3 {
		t.Fatalf("bad flowcell line: %v", lines[0])
	}
	if lines[1]["reason"] != "boundary-timeout" || lines[1]["actor"] != "host2" {
		t.Fatalf("bad flush line: %v", lines[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	tr.BeginRun("presto")
	tr.FlowcellEmit(1000, 0, 1, 0)
	tr.QueueDrop(2000, 5, 4096, "tail-drop")
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			PID   int32          `json:"pid"`
			TID   int32          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	var procName, hostLane, linkLane, instants bool
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "process_name":
			if ev.Args["name"] == "presto" {
				procName = true
			}
		case ev.Phase == "M" && ev.Name == "thread_name":
			if ev.Args["name"] == "host0" && ev.TID == 0 {
				hostLane = true
			}
			if ev.Args["name"] == "link5" && ev.TID == 20005 {
				linkLane = true
			}
		case ev.Phase == "i":
			instants = true
			if ev.Name == "FlowcellEmit" && ev.TS != 1.0 {
				t.Fatalf("ts=%v µs, want 1.0", ev.TS)
			}
		}
	}
	if !procName || !hostLane || !linkLane || !instants {
		t.Fatalf("missing trace parts: proc=%v host=%v link=%v instants=%v",
			procName, hostLane, linkLane, instants)
	}
}

func TestRegistrySnapshotAndSummary(t *testing.T) {
	r := NewRegistry(nil)
	r.Register("alpha", func() map[string]any {
		return map[string]any{"x": uint64(3), "nested": map[string]any{"y": 4}}
	})
	r.Register("beta", func() map[string]any {
		return map[string]any{"reasons": map[string]uint64{"in-order": 9}}
	})
	snap := r.Snapshot(12345)
	if snap.TakenAtNs != 12345 {
		t.Fatalf("TakenAtNs=%d", snap.TakenAtNs)
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if len(parsed.Components) != 2 {
		t.Fatalf("components=%d, want 2", len(parsed.Components))
	}
	sum := snap.Summary()
	for _, want := range []string{"alpha", "nested.y", "reasons.in-order", "9"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Register("x", func() map[string]any { return nil })
	if r.Snapshot(0) != nil {
		t.Fatal("nil registry returned a snapshot")
	}
	if r.Tracer() != nil {
		t.Fatal("nil registry returned a tracer")
	}
	if r.BeginRun("x") != "" {
		t.Fatal("nil registry returned a prefix")
	}
	var s *Snapshot
	if got := s.Summary(); !strings.Contains(got, "no telemetry") {
		t.Fatalf("nil snapshot summary = %q", got)
	}
}

func TestRegistryRunPrefixes(t *testing.T) {
	r := NewRegistry(NewTracer())
	if p := r.BeginRun("a"); p != "" {
		t.Fatalf("run 0 prefix = %q, want empty", p)
	}
	if p := r.BeginRun("b"); p != "run1/" {
		t.Fatalf("run 1 prefix = %q, want run1/", p)
	}
	if got := r.Tracer().RunLabel(1); got != "b" {
		t.Fatalf("tracer run 1 label = %q, want b", got)
	}
}
