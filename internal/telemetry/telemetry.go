// Package telemetry is the simulator's observability layer: a
// structured event tracer, a registry of per-component snapshot
// probes, and exporters (JSON Lines, Chrome trace-event format, and a
// human-readable summary table).
//
// The entire layer is opt-in and zero-overhead when disabled: every
// component holds a possibly-nil *Tracer, and all Tracer methods are
// nil-receiver-safe no-ops that take only scalar arguments, so the
// disabled path performs no allocations, schedules no events, and
// draws no randomness — a run with telemetry off is bit-identical to
// one with telemetry on (see the determinism regression test).
package telemetry

import (
	"presto/internal/sim"
)

// Kind identifies the type of a traced event.
type Kind uint8

// The event vocabulary. Each kind documents its A/B scalar arguments.
const (
	// KindFlowcellEmit: the edge vSwitch started a new flowcell.
	// A=flowcell ID, B=path index (position in the label list).
	KindFlowcellEmit Kind = iota
	// KindGROFlush: a GRO handler pushed a data segment up the stack.
	// A=payload bytes, B=packets merged; Reason is the flush cause.
	KindGROFlush
	// KindGROHold: Presto GRO held segments at a flowcell-boundary gap.
	// A=held segments, B=hold deadline (ns).
	KindGROHold
	// KindQueueDrop: a link queue dropped a packet.
	// A=link ID, B=queued bytes at drop; Reason is "tail-drop" or
	// "link-down".
	KindQueueDrop
	// KindRingDrop: a NIC RX ring overflowed (receiver livelock).
	// A=ring occupancy.
	KindRingDrop
	// KindRetransmit: TCP retransmitted. A=sequence number, B=cwnd in
	// bytes; Reason is "fast", "rto", or "probe".
	KindRetransmit
	// KindCwnd: a TCP RTT sample completed. A=cwnd bytes, B=SRTT ns.
	KindCwnd
	// KindLinkDown: a fabric link failed. A=link ID.
	KindLinkDown
	// KindLinkUp: a fabric link was restored. A=link ID.
	KindLinkUp
	// KindFailoverSwitch: a switch rewrote a packet's label to a backup
	// spanning tree. A=dead link ID, B=backup tree index.
	KindFailoverSwitch

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindFlowcellEmit:
		return "FlowcellEmit"
	case KindGROFlush:
		return "GROFlush"
	case KindGROHold:
		return "GROHold"
	case KindQueueDrop:
		return "QueueDrop"
	case KindRingDrop:
		return "RingDrop"
	case KindRetransmit:
		return "Retransmit"
	case KindCwnd:
		return "Cwnd"
	case KindLinkDown:
		return "LinkDown"
	case KindLinkUp:
		return "LinkUp"
	case KindFailoverSwitch:
		return "FailoverSwitch"
	}
	return "Unknown"
}

// argNames returns the JSON field names of the A and B scalars.
func (k Kind) argNames() (a, b string) {
	switch k {
	case KindFlowcellEmit:
		return "flowcell", "path"
	case KindGROFlush:
		return "bytes", "packets"
	case KindGROHold:
		return "held", "deadline_ns"
	case KindQueueDrop:
		return "link", "queued_bytes"
	case KindRingDrop:
		return "ring_len", "b"
	case KindRetransmit:
		return "seq", "cwnd"
	case KindCwnd:
		return "cwnd", "srtt_ns"
	case KindLinkDown, KindLinkUp:
		return "link", "b"
	case KindFailoverSwitch:
		return "link", "tree"
	}
	return "a", "b"
}

// ActorKind classifies the component an event is attributed to.
type ActorKind uint8

// Actor kinds: hosts (NIC/vSwitch/GRO/TCP events), switches, and
// links.
const (
	ActorNone ActorKind = iota
	ActorHost
	ActorSwitch
	ActorLink
)

func (k ActorKind) String() string {
	switch k {
	case ActorHost:
		return "host"
	case ActorSwitch:
		return "switch"
	case ActorLink:
		return "link"
	}
	return "none"
}

// Actor identifies the component an event belongs to. In the Chrome
// trace export each actor becomes one lane (thread) within its run's
// process.
type Actor struct {
	Kind ActorKind
	ID   int32
}

// Host returns the actor for host id.
func Host(id int32) Actor { return Actor{ActorHost, id} }

// SwitchNode returns the actor for the switch at node id.
func SwitchNode(id int32) Actor { return Actor{ActorSwitch, id} }

// Link returns the actor for link id.
func Link(id int32) Actor { return Actor{ActorLink, id} }

// Event is one traced occurrence. A and B are kind-specific scalars
// (see the Kind constants); Reason is a kind-specific label and must
// be a static string on hot paths.
type Event struct {
	At     sim.Time
	Run    int32
	Kind   Kind
	Actor  Actor
	A, B   int64
	Reason string
}

// DefaultEventLimit caps a Tracer's buffered events; past it, events
// are counted as dropped rather than buffered (an OOM guard for long
// traced runs).
const DefaultEventLimit = 1 << 21

// Tracer buffers structured events for one or more runs. The nil
// *Tracer is the disabled state: every method on it is a no-op, and
// the emit path performs zero allocations (guaranteed by a
// testing.AllocsPerRun regression test).
//
// Memory is bounded one of three ways:
//
//   - default: buffer up to the event limit, then count further events
//     as dropped (SetLimit adjusts the cap);
//   - ring mode (SetRing): hold the newest n events in a fixed ring,
//     overwriting the oldest once full — steady-state emission writes
//     into pre-allocated slots and performs zero allocations;
//   - spill mode (SpillTo, composable with either of the above): when
//     the buffer fills, flush the whole chunk to a gzip-compressed
//     JSON-Lines file and reset the buffer, so no event is lost and
//     resident memory stays O(buffer).
//
// Tracers are not safe for concurrent use; the simulator is
// single-threaded by construction.
type Tracer struct {
	limit   int
	events  []Event
	dropped uint64
	run     int32
	labels  []string // one per run, index = run ID

	// Ring mode: events is a fixed-capacity circular buffer. head is
	// the next overwrite slot; wrapped is set once the ring has lapped.
	ring        bool
	head        int
	wrapped     bool
	overwritten uint64

	// Spill mode: full buffers are flushed here as gzip JSONL chunks.
	spill    *spillSink
	spilled  uint64
	spillErr error
}

// NewTracer returns an enabled tracer with the default event limit.
func NewTracer() *Tracer {
	return &Tracer{limit: DefaultEventLimit, labels: []string{"run0"}}
}

// SetLimit overrides the buffered-event cap. In ring mode the ring is
// resized via SetRing so the buffer and head/wrapped bookkeeping stay
// consistent.
func (t *Tracer) SetLimit(n int) {
	if t == nil || n <= 0 {
		return
	}
	if t.ring {
		t.SetRing(n)
		return
	}
	t.limit = n
}

// SetRing switches the tracer to bounded ring-buffer mode holding the
// newest n events. Once the ring is full, new events overwrite the
// oldest (counted by Overwritten) unless a spill sink is armed, in
// which case the full ring is flushed to disk and reset instead. The
// steady-state emit path writes into pre-allocated slots and performs
// zero allocations. Existing buffered events are retained (the newest
// n of them if more are held).
func (t *Tracer) SetRing(n int) {
	if t == nil || n <= 0 {
		return
	}
	held := t.Events()
	if len(held) > n {
		held = held[len(held)-n:]
	}
	buf := make([]Event, 0, n)
	buf = append(buf, held...)
	t.events = buf
	t.limit = n
	t.ring = true
	t.head = 0
	t.wrapped = false
}

// SpillTo arms a spill sink at path: whenever the event buffer fills
// (ring mode or the plain limit), the buffered chunk is appended to
// the file as gzip-compressed JSON Lines — the same record schema as
// WriteJSONL — and the in-memory buffer resets, so long traced runs
// keep every event at O(buffer) resident memory. Call CloseSpill when
// the run ends to flush the tail and finalize the file. Replaces any
// previously armed sink (closing it).
func (t *Tracer) SpillTo(path string) error {
	if t == nil {
		return nil
	}
	s, err := newSpillSink(path)
	if err != nil {
		return err
	}
	if t.spill != nil {
		if err := t.spill.close(); err != nil && t.spillErr == nil {
			t.spillErr = err
		}
	}
	t.spill = s
	return nil
}

// CloseSpill flushes any still-buffered events to the armed spill
// sink, empties the in-memory buffer, and finalizes the file, making
// it the complete in-order trace. Returns the first error the sink
// hit (including mid-run flush failures). A no-op when no sink is
// armed.
func (t *Tracer) CloseSpill() error {
	if t == nil {
		return nil
	}
	if t.spill == nil {
		return t.spillErr
	}
	// flushToSpill detaches the sink on a write error, so re-check
	// before closing: a disk-full final flush must degrade, not panic.
	t.flushToSpill()
	var err error
	if t.spill != nil {
		err = t.spill.close()
		t.spill = nil
	}
	if t.spillErr != nil {
		return t.spillErr
	}
	return err
}

// Spilled returns the number of events written to the spill sink.
func (t *Tracer) Spilled() uint64 {
	if t == nil {
		return 0
	}
	return t.spilled
}

// Overwritten returns the number of events overwritten in ring mode.
func (t *Tracer) Overwritten() uint64 {
	if t == nil {
		return 0
	}
	return t.overwritten
}

// SpillError returns the first error the spill sink hit, if any.
// After a flush error the sink is closed and the tracer falls back to
// its in-memory policy (ring overwrite or drop).
func (t *Tracer) SpillError() error {
	if t == nil {
		return nil
	}
	return t.spillErr
}

// flushToSpill writes the buffered events, in order, to the spill
// sink and resets the buffer in place. On error the sink is closed
// and detached so the tracer degrades to its in-memory policy.
func (t *Tracer) flushToSpill() {
	if t.spill == nil {
		return
	}
	start := 0
	if t.wrapped {
		start = t.head
	}
	n := len(t.events)
	for i := 0; i < n; i++ {
		ev := &t.events[(start+i)%n]
		if err := t.spill.writeEvent(ev); err != nil {
			if t.spillErr == nil {
				t.spillErr = err
			}
			_ = t.spill.close() // the write error is already in spillErr; close is best-effort
			t.spill = nil
			return
		}
		t.spilled++
	}
	t.events = t.events[:0]
	t.head = 0
	t.wrapped = false
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// BeginRun marks the start of a new run scope (one simulation engine's
// lifetime); subsequent events are stamped with its ID. Run 0 exists
// implicitly. It returns the new run's ID.
func (t *Tracer) BeginRun(label string) int32 {
	if t == nil {
		return 0
	}
	if len(t.labels) == 1 && t.events == nil && t.labels[0] == "run0" {
		// First BeginRun names the implicit run 0 instead of opening a
		// second scope.
		t.labels[0] = label
		return 0
	}
	t.run = int32(len(t.labels))
	t.labels = append(t.labels, label)
	return t.run
}

// Events returns the buffered events in emission order (oldest
// first). In unwrapped buffers this is the live slice and callers
// must not modify it; once a ring has wrapped, a fresh unrolled copy
// is returned. Events already spilled to disk are not included.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Dropped returns the number of events discarded after the buffer
// limit was reached.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// RunLabel returns the label of run id ("" if unknown).
func (t *Tracer) RunLabel(id int32) string {
	if t == nil || int(id) >= len(t.labels) || id < 0 {
		return ""
	}
	return t.labels[id]
}

// Emit records one event. This is the single low-level entry point all
// typed helpers funnel through; on a nil tracer it returns
// immediately.
//
//prestolint:noalloc
func (t *Tracer) Emit(at sim.Time, k Kind, actor Actor, a, b int64, reason string) {
	if t == nil {
		return
	}
	if len(t.events) >= t.limit {
		if t.spill != nil {
			t.flushToSpill()
		}
		if len(t.events) >= t.limit {
			if t.ring {
				// Overwrite the oldest slot in place: no allocation.
				t.events[t.head] = Event{At: at, Run: t.run, Kind: k, Actor: actor, A: a, B: b, Reason: reason}
				t.head++
				if t.head == len(t.events) {
					t.head = 0
				}
				t.wrapped = true
				t.overwritten++
			} else {
				t.dropped++
			}
			return
		}
	}
	//prestolint:allow hotalloc -- buffered (non-ring) mode grows to its limit once; the bench-gated ring path overwrites in place and never reaches this append
	t.events = append(t.events, Event{At: at, Run: t.run, Kind: k, Actor: actor, A: a, B: b, Reason: reason})
}

// FlowcellEmit records a new flowcell starting on path pathIdx.
func (t *Tracer) FlowcellEmit(at sim.Time, host int32, cell uint32, pathIdx int) {
	t.Emit(at, KindFlowcellEmit, Actor{ActorHost, host}, int64(cell), int64(pathIdx), "")
}

// GROFlush records a data segment pushed up the stack with the reason
// it was flushed.
func (t *Tracer) GROFlush(at sim.Time, host int32, bytes, packets int, reason string) {
	t.Emit(at, KindGROFlush, Actor{ActorHost, host}, int64(bytes), int64(packets), reason)
}

// GROHold records segments held at a flowcell-boundary gap.
func (t *Tracer) GROHold(at sim.Time, host int32, held int, deadline sim.Time) {
	t.Emit(at, KindGROHold, Actor{ActorHost, host}, int64(held), int64(deadline), "")
}

// QueueDrop records a link-queue packet drop.
func (t *Tracer) QueueDrop(at sim.Time, link int32, queuedBytes int, reason string) {
	t.Emit(at, KindQueueDrop, Actor{ActorLink, link}, int64(link), int64(queuedBytes), reason)
}

// RingDrop records a NIC RX-ring overflow drop.
func (t *Tracer) RingDrop(at sim.Time, host int32, ringLen int) {
	t.Emit(at, KindRingDrop, Actor{ActorHost, host}, int64(ringLen), 0, "")
}

// Retransmit records a TCP retransmission.
func (t *Tracer) Retransmit(at sim.Time, host int32, seq uint32, cwnd int64, reason string) {
	t.Emit(at, KindRetransmit, Actor{ActorHost, host}, int64(seq), cwnd, reason)
}

// Cwnd records a congestion-window sample at an RTT measurement.
func (t *Tracer) Cwnd(at sim.Time, host int32, cwnd int64, srtt sim.Time) {
	t.Emit(at, KindCwnd, Actor{ActorHost, host}, cwnd, int64(srtt), "")
}

// LinkDown records a link failure.
func (t *Tracer) LinkDown(at sim.Time, link int32) {
	t.Emit(at, KindLinkDown, Actor{ActorLink, link}, int64(link), 0, "")
}

// LinkUp records a link restoration.
func (t *Tracer) LinkUp(at sim.Time, link int32) {
	t.Emit(at, KindLinkUp, Actor{ActorLink, link}, int64(link), 0, "")
}

// FailoverSwitch records a fast-failover label rewrite to a backup
// tree at a switch.
func (t *Tracer) FailoverSwitch(at sim.Time, node int32, deadLink int32, tree int) {
	t.Emit(at, KindFailoverSwitch, Actor{ActorSwitch, node}, int64(deadLink), int64(tree), "backup-tree")
}

// CountKind returns the number of buffered events of kind k.
func (t *Tracer) CountKind(k Kind) int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.events {
		if t.events[i].Kind == k {
			n++
		}
	}
	return n
}
