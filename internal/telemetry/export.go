package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// eventRecord builds the self-describing JSONL record for one event —
// the schema shared by WriteJSONL and the tracer's spill sink.
func eventRecord(ev *Event) map[string]any {
	an, bn := ev.Kind.argNames()
	rec := map[string]any{
		"ts_ns": int64(ev.At),
		"run":   ev.Run,
		"event": ev.Kind.String(),
		"actor": fmt.Sprintf("%s%d", ev.Actor.Kind, ev.Actor.ID),
		an:      ev.A,
		bn:      ev.B,
	}
	if ev.Reason != "" {
		rec["reason"] = ev.Reason
	}
	return rec
}

// WriteJSONL writes the buffered events as JSON Lines: one
// self-describing object per line, in emission order. A nil Tracer is
// the disabled state and writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	events := t.Events()
	for i := range events {
		line, err := json.Marshal(eventRecord(&events[i]))
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTID flattens an actor to a stable lane ID: hosts occupy
// [0,10000), switches [10000,20000), links [20000,...).
func chromeTID(a Actor) int32 {
	switch a.Kind {
	case ActorSwitch:
		return 10000 + a.ID
	case ActorLink:
		return 20000 + a.ID
	}
	return a.ID
}

// WriteChromeTrace writes the buffered events in Chrome trace-event
// format: one process per run, one thread lane per actor, instant
// events carrying the typed arguments. The output opens directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: make([]chromeEvent, 0, len(events)+64)}

	// Metadata: name each run's process and each actor's lane.
	type lane struct {
		run int32
		a   Actor
	}
	seen := map[lane]bool{}
	for i := range events {
		ev := &events[i]
		l := lane{ev.Run, ev.Actor}
		if !seen[l] {
			seen[l] = true
		}
	}
	lanes := make([]lane, 0, len(seen))
	for l := range seen {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].run != lanes[j].run {
			return lanes[i].run < lanes[j].run
		}
		return chromeTID(lanes[i].a) < chromeTID(lanes[j].a)
	})
	runsSeen := map[int32]bool{}
	for _, l := range lanes {
		if !runsSeen[l.run] {
			runsSeen[l.run] = true
			name := t.RunLabel(l.run)
			if name == "" {
				name = fmt.Sprintf("run%d", l.run)
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Phase: "M", PID: l.run,
				Args: map[string]any{"name": name},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: l.run, TID: chromeTID(l.a),
			Args: map[string]any{"name": fmt.Sprintf("%s%d", l.a.Kind, l.a.ID)},
		})
	}

	for i := range events {
		ev := &events[i]
		an, bn := ev.Kind.argNames()
		args := map[string]any{an: ev.A, bn: ev.B}
		if ev.Reason != "" {
			args["reason"] = ev.Reason
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			Scope: "t",
			TS:    float64(ev.At) / 1e3,
			PID:   ev.Run,
			TID:   chromeTID(ev.Actor),
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes fn's output to path (a small helper shared by the
// CLIs).
func WriteFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		_ = f.Close() // fn's failure is the one to report; close is best-effort cleanup
		return err
	}
	return f.Close()
}
