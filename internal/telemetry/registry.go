package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"presto/internal/metrics"
	"presto/internal/sim"
)

// ProbeFunc reports a component's current state as a flat (or
// one-level-nested) map of JSON-marshalable values. Probes run only
// when a snapshot is taken, so they may compute derived values.
type ProbeFunc func() map[string]any

// Registry is the central collection point for per-component probes
// and the (optional) event tracer. A nil *Registry disables the whole
// layer: every method is a nil-receiver-safe no-op.
//
// Registration and snapshots are safe for concurrent use: the
// campaign runner registers its probe from a worker goroutine while
// prestod's HTTP handlers snapshot live progress. Probe functions run
// under the registry lock and must not call back into it.
type Registry struct {
	mu     sync.Mutex
	tracer *Tracer
	names  []string
	probes map[string]ProbeFunc
	runs   int
}

// NewRegistry returns a registry carrying tr (which may be nil when
// only snapshots are wanted).
func NewRegistry(tr *Tracer) *Registry {
	return &Registry{tracer: tr, probes: make(map[string]ProbeFunc)}
}

// Tracer returns the registry's tracer (nil when disabled or when the
// registry itself is nil).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// BeginRun opens a new run scope: probes registered until the next
// BeginRun are namespaced under it, and traced events are stamped with
// its ID. The first run's probes keep bare names; later runs get a
// "run<N>/" prefix so repeated builds on one registry (cmd/experiments
// -run all) do not collide. Returns the run's prefix.
func (r *Registry) BeginRun(label string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracer.BeginRun(label)
	r.runs++
	if r.runs == 1 {
		return ""
	}
	return fmt.Sprintf("run%d/", r.runs-1)
}

// Register adds a named probe. Re-registering a name replaces it.
func (r *Registry) Register(name string, fn ProbeFunc) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.probes[name]; !dup {
		r.names = append(r.names, name)
	}
	r.probes[name] = fn
}

// Snapshot is a point-in-time JSON document of every registered
// probe's state — the run's "black box recorder" dump.
type Snapshot struct {
	TakenAtNs  int64                     `json:"taken_at_ns"`
	Components map[string]map[string]any `json:"components"`
}

// Snapshot runs every probe and collects the results. Returns nil on a
// nil registry.
func (r *Registry) Snapshot(now sim.Time) *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{TakenAtNs: int64(now), Components: make(map[string]map[string]any, len(r.names))}
	for _, name := range r.names {
		s.Components[name] = r.probes[name]()
	}
	return s
}

// Flat returns the snapshot with each component's (possibly nested)
// values flattened into dotted keys — the canonical form the
// incremental snapshot stream diffs and reassembles. Returns nil on a
// nil snapshot.
func (s *Snapshot) Flat() map[string]map[string]any {
	if s == nil {
		return nil
	}
	out := make(map[string]map[string]any, len(s.Components))
	for name, comp := range s.Components {
		flat := make(map[string]any, len(comp))
		flatten("", comp, flat)
		out[name] = flat
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON (encoding/json sorts
// map keys, so output is deterministic).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Summary renders the snapshot as an aligned three-column table
// (component, metric, value) with nested maps flattened into dotted
// keys — the -v output of the CLIs. Rendering is deterministic:
// component names and flattened metric keys are collected and sorted
// before any row is written, so map iteration order never reaches the
// output.
func (s *Snapshot) Summary() string {
	if s == nil {
		return "(no telemetry)\n"
	}
	tbl := &metrics.Table{Header: []string{"component", "metric", "value"}}
	comps := make([]string, 0, len(s.Components))
	for name := range s.Components {
		comps = append(comps, name)
	}
	sort.Strings(comps)
	for _, name := range comps {
		flat := map[string]any{}
		flatten("", s.Components[name], flat)
		keys := make([]string, 0, len(flat))
		for k := range flat {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tbl.AddRow(name, k, formatValue(flat[k]))
		}
	}
	return tbl.String()
}

// flatten expands nested map values into dotted keys. It writes into
// another map, which is order-insensitive; Summary sorts the flattened
// keys before rendering.
func flatten(prefix string, m map[string]any, out map[string]any) {
	for k, v := range m {
		key := k
		if prefix != "" {
			key = prefix + "." + k
		}
		if sub, ok := v.(map[string]any); ok {
			flatten(key, sub, out)
			continue
		}
		if sub, ok := v.(map[string]uint64); ok {
			for kk, vv := range sub {
				out[key+"."+kk] = vv
			}
			continue
		}
		out[key] = v
	}
}

func formatValue(v any) string {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) && x < 1e15 && x > -1e15 {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%.4g", x)
	case string:
		return x
	default:
		return strings.TrimSpace(fmt.Sprintf("%v", x))
	}
}
