package telemetry

import (
	"fmt"
	"reflect"
	"sort"

	"presto/internal/sim"
)

// Delta is one frame of an incremental snapshot stream: the values
// that changed since the frame it chains from (Base), in columnar
// form — parallel Components/Keys/Values arrays of flattened dotted
// metric keys, sorted by component then key so the encoding is
// deterministic. A keyframe carries the complete state and resets the
// chain, so a reader can join mid-stream at any keyframe.
type Delta struct {
	Seq       uint64 `json:"seq"`
	Base      uint64 `json:"base"`
	Keyframe  bool   `json:"keyframe,omitempty"`
	TakenAtNs int64  `json:"taken_at_ns"`

	Components []string `json:"components"`
	Keys       []string `json:"keys"`
	Values     []any    `json:"values"`

	// Keys present in frame Base but absent now (rare: a probe stopped
	// reporting a metric). Parallel arrays, same ordering rule.
	RemovedComponents []string `json:"removed_components,omitempty"`
	RemovedKeys       []string `json:"removed_keys,omitempty"`
}

// SnapshotStream turns a registry's probes into a sequence of Deltas:
// each Next() runs the probes once and emits only what changed since
// the previous frame, with a full keyframe first and then every
// keyframeEvery frames. Like the registry itself, a nil stream is a
// disabled no-op. Not safe for concurrent use.
type SnapshotStream struct {
	reg      *Registry
	every    int
	seq      uint64
	sinceKey int
	state    map[string]map[string]any // flattened previous frame
}

// Stream returns an incremental snapshot stream over r's probes,
// emitting a full keyframe every keyframeEvery frames (<= 0 means
// only the initial keyframe). Returns nil on a nil registry.
func (r *Registry) Stream(keyframeEvery int) *SnapshotStream {
	if r == nil {
		return nil
	}
	return &SnapshotStream{reg: r, every: keyframeEvery}
}

// Next runs every probe and returns the next frame: a keyframe when
// due, otherwise only the values that changed since the previous
// frame. Returns nil on a nil stream.
func (ss *SnapshotStream) Next(now sim.Time) *Delta {
	if ss == nil {
		return nil
	}
	flat := ss.reg.Snapshot(now).Flat()
	ss.seq++
	key := ss.seq == 1 || (ss.every > 0 && ss.sinceKey+1 >= ss.every)
	if key {
		ss.sinceKey = 0
	} else {
		ss.sinceKey++
	}

	d := &Delta{Seq: ss.seq, Base: ss.seq - 1, Keyframe: key, TakenAtNs: int64(now)}
	comps := make([]string, 0, len(flat))
	for name := range flat {
		comps = append(comps, name)
	}
	sort.Strings(comps)
	for _, name := range comps {
		m := flat[name]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		prev := ss.state[name]
		for _, k := range keys {
			v := m[k]
			if !key {
				if pv, ok := prev[k]; ok && reflect.DeepEqual(pv, v) {
					continue
				}
			}
			d.Components = append(d.Components, name)
			d.Keys = append(d.Keys, k)
			d.Values = append(d.Values, v)
		}
	}

	// Keys that vanished since the previous frame (skip on keyframes:
	// the full restatement already excludes them).
	if !key {
		prevComps := make([]string, 0, len(ss.state))
		for name := range ss.state {
			prevComps = append(prevComps, name)
		}
		sort.Strings(prevComps)
		for _, name := range prevComps {
			cur := flat[name]
			keys := make([]string, 0, len(ss.state[name]))
			for k := range ss.state[name] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, ok := cur[k]; !ok {
					d.RemovedComponents = append(d.RemovedComponents, name)
					d.RemovedKeys = append(d.RemovedKeys, k)
				}
			}
		}
	}

	ss.state = flat
	return d
}

// StreamDecoder reassembles a Delta sequence back into full flattened
// state. It verifies frame chaining: a non-keyframe whose Base does
// not match the last applied Seq is rejected, and a keyframe resets
// the state so a decoder can join a stream at any keyframe.
type StreamDecoder struct {
	seq   uint64
	at    int64
	state map[string]map[string]any
}

// NewStreamDecoder returns an empty decoder.
func NewStreamDecoder() *StreamDecoder {
	return &StreamDecoder{state: make(map[string]map[string]any)}
}

// Apply folds one frame into the decoder's state. Returns an error on
// a chaining gap or malformed columns; nil frames and nil decoders
// are no-ops.
func (sd *StreamDecoder) Apply(d *Delta) error {
	if sd == nil || d == nil {
		return nil
	}
	if len(d.Components) != len(d.Keys) || len(d.Keys) != len(d.Values) {
		return fmt.Errorf("telemetry: delta seq %d has ragged columns (%d/%d/%d)",
			d.Seq, len(d.Components), len(d.Keys), len(d.Values))
	}
	if len(d.RemovedComponents) != len(d.RemovedKeys) {
		return fmt.Errorf("telemetry: delta seq %d has ragged removed columns", d.Seq)
	}
	if d.Keyframe {
		sd.state = make(map[string]map[string]any)
	} else if d.Base != sd.seq {
		return fmt.Errorf("telemetry: delta gap: decoder at seq %d, frame chains from %d", sd.seq, d.Base)
	}
	for i, name := range d.Components {
		m := sd.state[name]
		if m == nil {
			m = make(map[string]any)
			sd.state[name] = m
		}
		m[d.Keys[i]] = d.Values[i]
	}
	for i, name := range d.RemovedComponents {
		if m := sd.state[name]; m != nil {
			delete(m, d.RemovedKeys[i])
			if len(m) == 0 {
				delete(sd.state, name)
			}
		}
	}
	sd.seq = d.Seq
	sd.at = d.TakenAtNs
	return nil
}

// Seq returns the sequence number of the last applied frame.
func (sd *StreamDecoder) Seq() uint64 {
	if sd == nil {
		return 0
	}
	return sd.seq
}

// TakenAtNs returns the timestamp of the last applied frame.
func (sd *StreamDecoder) TakenAtNs() int64 {
	if sd == nil {
		return 0
	}
	return sd.at
}

// State returns the reconstructed flattened state (component →
// flattened metric key → value). The returned maps are the decoder's
// live state; callers must not modify them.
func (sd *StreamDecoder) State() map[string]map[string]any {
	if sd == nil {
		return nil
	}
	return sd.state
}
