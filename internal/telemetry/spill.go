package telemetry

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"os"
)

// spillSink is the tracer's on-disk overflow: gzip-compressed JSON
// Lines, one eventRecord object per line, in emission order. Chunks
// are appended whenever the in-memory buffer fills, so the file plus
// the remaining buffer always hold the full trace (CloseSpill drains
// the remainder to make the file complete on its own).
type spillSink struct {
	f  *os.File
	gz *gzip.Writer
	bw *bufio.Writer
}

func newSpillSink(path string) (*spillSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	gz := gzip.NewWriter(f)
	return &spillSink{f: f, gz: gz, bw: bufio.NewWriterSize(gz, 64<<10)}, nil
}

func (s *spillSink) writeEvent(ev *Event) error {
	line, err := json.Marshal(eventRecord(ev))
	if err != nil {
		return err
	}
	if _, err := s.bw.Write(line); err != nil {
		return err
	}
	return s.bw.WriteByte('\n')
}

// close flushes all layers and closes the file, returning the first
// error encountered.
func (s *spillSink) close() error {
	err := s.bw.Flush()
	if e := s.gz.Close(); err == nil {
		err = e
	}
	if e := s.f.Close(); err == nil {
		err = e
	}
	return err
}
