package telemetry

import "testing"

// BenchmarkEmitDisabled measures the nil-tracer fast path every
// component pays when telemetry is off — it must be a few nanoseconds
// and allocation-free (see TestNilTracerEmitAllocs).
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.GROFlush(1, 2, 1500, 1, "in-order")
	}
}

// BenchmarkEmitEnabled measures the recording path (amortized append
// into the event buffer).
func BenchmarkEmitEnabled(b *testing.B) {
	tr := NewTracer()
	tr.SetLimit(1 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.GROFlush(1, 2, 1500, 1, "in-order")
	}
}
