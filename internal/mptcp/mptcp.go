// Package mptcp models Multipath TCP the way the paper's baseline
// runs it: 8 subflows per connection, each hashed onto a path by
// per-flow ECMP (distinct source ports), with coupled congestion
// control so the connection as a whole is no more aggressive than one
// TCP flow. Loss on one subflow halves only that subflow — the
// behaviour behind MPTCP's higher loss rates in §5 ("when a single
// loss occurs, only one subflow reduces its rate").
//
// Substitution note (DESIGN.md): the paper runs OLIA; this package
// implements LIA-style coupling (Wischik et al.), which shares OLIA's
// essential property — coupled increase, per-subflow decrease — and
// reproduces the bursty, loss-tolerant behaviour the paper measures.
// The connection-level scheduler assigns application bytes to
// subflows by available window, and delivery is tracked as the sum of
// subflow streams.
package mptcp

import (
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/tcp"
)

// DefaultSubflows is the paper's subflow count (§4).
const DefaultSubflows = 8

// Sender is the sending half of an MPTCP connection.
type Sender struct {
	eng     *sim.Engine
	subs    []*tcp.Endpoint
	pending int
	total   int
	// OnAcked fires with the connection-level total of acked bytes.
	OnAcked func(total uint64)
}

// NewSender couples the given subflow endpoints into one MPTCP
// connection. The endpoints must be freshly created (no data in
// flight); their congestion controllers are replaced with the coupled
// one.
func NewSender(eng *sim.Engine, subs []*tcp.Endpoint) *Sender {
	s := &Sender{eng: eng, subs: subs}
	cc := &coupled{conn: s}
	for _, e := range subs {
		e.SetCongestionControl(cc)
		e.OnAcked = func(uint64) {
			s.pump()
			if s.OnAcked != nil {
				s.OnAcked(s.Acked())
			}
		}
	}
	return s
}

// Subflows returns the sender-side endpoints.
func (s *Sender) Subflows() []*tcp.Endpoint { return s.subs }

// Write queues n bytes on the connection; the scheduler spreads them
// over subflows as window space opens.
func (s *Sender) Write(n int) {
	s.pending += n
	s.total += n
	s.pump()
}

// SetUnlimited turns the connection into an elephant.
func (s *Sender) SetUnlimited(on bool) {
	for _, e := range s.subs {
		e.SetUnlimited(on)
	}
}

// Acked returns connection-level acknowledged bytes (sum over
// subflows).
func (s *Sender) Acked() uint64 {
	var t uint64
	for _, e := range s.subs {
		t += e.Acked()
	}
	return t
}

// Done reports whether every queued byte has been assigned and acked.
func (s *Sender) Done() bool {
	if s.pending > 0 {
		return false
	}
	for _, e := range s.subs {
		if !e.Done() {
			return false
		}
	}
	return true
}

// pump assigns pending bytes to subflows with open window, preferring
// the subflow with the most free space (a min-RTT scheduler needs RTT
// samples; free-window is the standard cold-start heuristic and
// behaves like Linux's default once windows differentiate).
func (s *Sender) pump() {
	for s.pending > 0 {
		best := -1
		bestSpace := 0
		for i, e := range s.subs {
			space := int(e.Cwnd()) - e.Inflight() - e.Unsent()
			if space > bestSpace {
				best, bestSpace = i, space
			}
		}
		if best < 0 {
			// No window anywhere: leave the rest queued; subflow ACK
			// callbacks re-pump. Push a minimal chunk onto subflow 0 if
			// absolutely nothing is outstanding (deadlock guard for
			// fresh connections).
			idle := true
			for _, e := range s.subs {
				if e.Inflight() > 0 || e.Unsent() > 0 {
					idle = false
					break
				}
			}
			if idle {
				n := s.pending
				if n > packet.MaxSegSize {
					n = packet.MaxSegSize
				}
				s.subs[0].Write(n)
				s.pending -= n
				continue
			}
			return
		}
		n := s.pending
		if n > bestSpace {
			n = bestSpace
		}
		if n > packet.MaxSegSize {
			n = packet.MaxSegSize
		}
		s.subs[best].Write(n)
		s.pending -= n
	}
}

// Receiver aggregates the receive side of an MPTCP connection.
type Receiver struct {
	subs []*tcp.Endpoint
	// OnDelivered fires with connection-level delivered bytes.
	OnDelivered func(total uint64)
}

// NewReceiver couples receiver-side endpoints.
func NewReceiver(subs []*tcp.Endpoint) *Receiver {
	r := &Receiver{subs: subs}
	for _, e := range subs {
		e.OnDelivered = func(uint64) {
			if r.OnDelivered != nil {
				r.OnDelivered(r.Delivered())
			}
		}
	}
	return r
}

// Delivered returns connection-level delivered bytes.
func (r *Receiver) Delivered() uint64 {
	var t uint64
	for _, e := range r.subs {
		t += e.Delivered()
	}
	return t
}

// Subflows returns the receiver-side endpoints.
func (r *Receiver) Subflows() []*tcp.Endpoint { return r.subs }

// coupled implements LIA coupling: the per-ACK increase of subflow i
// is min(alpha/w_total, 1/w_i), with alpha chosen so the aggregate
// matches a single TCP flow on the best path. Decrease stays
// per-subflow.
type coupled struct {
	conn *Sender
}

// Name implements tcp.CongestionControl.
func (c *coupled) Name() string { return "mptcp-coupled" }

// OnAck implements tcp.CongestionControl.
func (c *coupled) OnAck(e *tcp.Endpoint, acked int) float64 {
	mss := float64(e.MSS())
	totalW := 0.0
	var num, den float64
	for _, s := range c.conn.subs {
		w := s.Cwnd()
		totalW += w
		rtt := s.SRTT().Seconds()
		if rtt <= 0 {
			rtt = 1e-3
		}
		r := w / mss / rtt
		if v := (w / mss) / (rtt * rtt); v > num {
			num = v
		}
		den += r
	}
	if den == 0 {
		den = 1
	}
	alpha := totalW / mss * num / (den * den)
	perByte := alpha / (totalW / mss)
	if own := 1 / (e.Cwnd() / mss); own < perByte {
		perByte = own
	}
	inc := mss * float64(acked) / mss * perByte // bytes
	if inc > float64(acked) {
		inc = float64(acked)
	}
	return e.Cwnd() + inc
}

// OnLoss implements tcp.CongestionControl: per-subflow halving.
func (c *coupled) OnLoss(e *tcp.Endpoint) float64 { return e.Cwnd() / 2 }

// OnTimeout implements tcp.CongestionControl.
func (c *coupled) OnTimeout(e *tcp.Endpoint) {}
