package mptcp

import (
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/tcp"
)

// rig wires n subflow endpoint pairs through an ideal link.
type rig struct {
	eng   *sim.Engine
	delay sim.Time
	send  []*tcp.Endpoint
	recv  []*tcp.Endpoint
	// drop, if set, filters segments (false = drop).
	drop func(*packet.Segment) bool
}

type rigDown struct {
	r    *rig
	peer func() *tcp.Endpoint
}

func (d *rigDown) Send(seg *packet.Segment) {
	if d.r.drop != nil && !d.r.drop(seg) {
		return
	}
	d.r.eng.Schedule(d.r.delay, func() { d.peer().DeliverSegment(seg) })
}

func newRig(n int, delay sim.Time, cfg tcp.Config) *rig {
	r := &rig{eng: sim.NewEngine(), delay: delay}
	for i := 0; i < n; i++ {
		i := i
		f := packet.FlowKey{
			Src: packet.Addr{Host: 1, Port: uint16(1000 + i)},
			Dst: packet.Addr{Host: 2, Port: 5001},
		}
		r.send = append(r.send, tcp.New(r.eng, f, &rigDown{r: r, peer: func() *tcp.Endpoint { return r.recv[i] }}, cfg))
		r.recv = append(r.recv, tcp.New(r.eng, f.Reverse(), &rigDown{r: r, peer: func() *tcp.Endpoint { return r.send[i] }}, cfg))
	}
	return r
}

func TestMPTCPTransferCompletes(t *testing.T) {
	r := newRig(DefaultSubflows, 20*sim.Microsecond, tcp.Config{})
	s := NewSender(r.eng, r.send)
	rx := NewReceiver(r.recv)
	const n = 2 << 20
	s.Write(n)
	r.eng.RunAll()
	if rx.Delivered() != n {
		t.Fatalf("delivered %d, want %d", rx.Delivered(), n)
	}
	if s.Acked() != n || !s.Done() {
		t.Fatalf("acked %d done=%v", s.Acked(), s.Done())
	}
}

func TestMPTCPUsesMultipleSubflows(t *testing.T) {
	r := newRig(DefaultSubflows, 20*sim.Microsecond, tcp.Config{MaxCwnd: 128 << 10})
	s := NewSender(r.eng, r.send)
	NewReceiver(r.recv)
	s.SetUnlimited(true)
	r.eng.Run(2 * sim.Millisecond)
	used := 0
	for _, e := range r.send {
		if e.Stats.BytesSent > 0 {
			used++
		}
	}
	if used != DefaultSubflows {
		t.Fatalf("%d subflows carried data, want %d", used, DefaultSubflows)
	}
}

func TestCoupledIncreaseIsBounded(t *testing.T) {
	// Direct unit test of the LIA math: with 8 equal subflows in
	// congestion avoidance, the per-ACK increase on one subflow must
	// be well below what uncoupled Reno would give it, and the
	// aggregate increase across all subflows must be on the order of
	// a single flow's increase.
	r := newRig(DefaultSubflows, 100*sim.Microsecond, tcp.Config{CC: "reno"})
	s := NewSender(r.eng, r.send)
	NewReceiver(r.recv)
	cc := &coupled{conn: s}
	mss := r.send[0].MSS()
	for _, e := range r.send {
		e.SetCwnd(float64(100 * mss))
	}
	acked := mss
	e0 := r.send[0]
	coupledInc := cc.OnAck(e0, acked) - e0.Cwnd()
	renoInc := tcp.Reno{}.OnAck(e0, acked) - e0.Cwnd()
	if coupledInc <= 0 {
		t.Fatalf("coupled increase = %v, want positive", coupledInc)
	}
	// Equal windows and RTTs: LIA gives each subflow ~1/8 of Reno's
	// increase, so the aggregate behaves like one flow.
	if coupledInc > renoInc/4 {
		t.Fatalf("coupled inc %v vs reno %v: not meaningfully coupled", coupledInc, renoInc)
	}
	if agg := coupledInc * DefaultSubflows; agg > 2*renoInc {
		t.Fatalf("aggregate coupled increase %v exceeds 2x single-flow %v", agg, renoInc)
	}
	// Decrease stays per-subflow (halving).
	if got := cc.OnLoss(e0); got != e0.Cwnd()/2 {
		t.Fatalf("OnLoss = %v, want half of %v", got, e0.Cwnd())
	}
}

func TestLossHalvesOnlyOneSubflow(t *testing.T) {
	r := newRig(2, 50*sim.Microsecond, tcp.Config{MaxSeg: packet.MSS, CC: "reno", MaxCwnd: 512 << 10})
	s := NewSender(r.eng, r.send)
	NewReceiver(r.recv)
	s.SetUnlimited(true)
	r.eng.Run(8 * sim.Millisecond)
	w0, w1 := r.send[0].Cwnd(), r.send[1].Cwnd()
	// Drop a burst on subflow 0 only.
	dropped := 0
	r.drop = func(seg *packet.Segment) bool {
		if seg.Flow == r.send[0].Flow() && seg.Len() > 0 && !seg.Retrans && dropped < 1 {
			dropped++
			return false
		}
		return true
	}
	r.eng.Run(11 * sim.Millisecond)
	if r.send[0].Stats.Retransmits == 0 {
		t.Fatal("subflow 0 never recovered a loss")
	}
	if r.send[0].Cwnd() >= w0 {
		t.Fatalf("subflow 0 cwnd did not decrease: %v -> %v", w0, r.send[0].Cwnd())
	}
	if r.send[1].Cwnd() < w1 {
		t.Fatalf("subflow 1 cwnd decreased on subflow 0's loss: %v -> %v", w1, r.send[1].Cwnd())
	}
}

func TestMiceOverMPTCP(t *testing.T) {
	// Small flows: the scheduler must not strand bytes.
	r := newRig(DefaultSubflows, 20*sim.Microsecond, tcp.Config{})
	s := NewSender(r.eng, r.send)
	rx := NewReceiver(r.recv)
	var doneAt sim.Time
	rx.OnDelivered = func(total uint64) {
		if total >= 50_000 && doneAt == 0 {
			doneAt = r.eng.Now()
		}
	}
	s.Write(50_000)
	r.eng.RunAll()
	if rx.Delivered() != 50_000 {
		t.Fatalf("delivered %d", rx.Delivered())
	}
	if doneAt == 0 || doneAt > sim.Millisecond {
		t.Fatalf("mouse FCT = %v", doneAt)
	}
}

func TestSequentialWrites(t *testing.T) {
	r := newRig(4, 10*sim.Microsecond, tcp.Config{})
	s := NewSender(r.eng, r.send)
	rx := NewReceiver(r.recv)
	for i := 0; i < 10; i++ {
		i := i
		r.eng.At(sim.Time(i)*sim.Millisecond, func() { s.Write(10_000) })
	}
	r.eng.RunAll()
	if rx.Delivered() != 100_000 {
		t.Fatalf("delivered %d, want 100000", rx.Delivered())
	}
	if !s.Done() {
		t.Fatal("sender not done")
	}
}
