package scheme

import (
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

// The built-in scheme lineup. Names are the historical
// cluster.Scheme strings — campaign cell IDs hash these, so they are
// frozen. Adding a scheme is one Register call in one file: the
// descriptor carries everything the cluster needs (policy
// constructor, transport caps, GRO requirement, controller hooks).
func init() {
	Register(&Scheme{
		Name:        "ecmp",
		Description: "pin each flow to one random end-to-end path (official GRO)",
		Paper:       "Hopps, RFC 2992 (baseline in Presto §4)",
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewECMP(h.Fork())
		},
	})
	Register(&Scheme{
		Name:        "mptcp",
		Description: "ECMP-pinned MPTCP subflows with coupled congestion control",
		Paper:       "Raiciu et al., NSDI 2011 (baseline in Presto §4)",
		Params: []Param{
			{Name: "subflows", Kind: KindInt, Default: "8", Min: 1, Max: 64,
				Help: "subflows per connection"},
		},
		Transport: func(p Resolved) Transport {
			return Transport{Subflows: p.Int("subflows")}
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			// Subflow placement is the ECMP roll per subflow flow key.
			return vswitch.NewECMP(h.Fork())
		},
	})
	Register(&Scheme{
		Name:        "presto",
		Description: "spray flowcells round-robin over shadow-MAC trees (Presto GRO)",
		Paper:       "He et al., SIGCOMM 2015 (Algorithm 1)",
		Params: []Param{
			{Name: "cell", Kind: KindBytes, Default: "64KB", Min: float64(packet.MSS), Max: 1 << 20,
				Help: "flowcell size in bytes"},
		},
		GRO: GROPresto,
		Transport: func(p Resolved) Transport {
			if cell := p.Bytes("cell"); cell < packet.MaxSegSize {
				// Algorithm 1 assigns whole skbs to flowcells, so a
				// smaller flowcell caps the TSO write size to match.
				return Transport{MaxSeg: cell}
			}
			return Transport{}
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewPrestoThreshold(p.Bytes("cell"))
		},
	})
	Register(&Scheme{
		Name:        "flowlet",
		Description: "switch paths at inactivity gaps (official GRO)",
		Paper:       "Kandula et al., FDNA 2004 (comparison in Presto §5)",
		Params: []Param{
			{Name: "gap", Kind: KindDuration, Default: "500us",
				Min: float64(sim.Microsecond), Max: float64(sim.Second),
				Help: "flowlet inactivity gap"},
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewFlowlet(p.Duration("gap"))
		},
	})
	Register(&Scheme{
		Name:        "presto-ecmp",
		Description: "stamp flowcells but let switches hash per hop (Figure 14)",
		Paper:       "He et al., SIGCOMM 2015 (§4.4)",
		GRO:         GROPresto,
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewPrestoECMP()
		},
	})
	Register(&Scheme{
		Name:        "per-packet",
		Description: "spray every MTU packet (TSO off, Presto GRO)",
		Paper:       "He et al., SIGCOMM 2015 (§2.1 baseline)",
		GRO:         GROPresto,
		Transport: func(p Resolved) Transport {
			return Transport{MaxSeg: packet.MSS, MSSWrites: true}
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewPerPacket()
		},
	})
	Register(&Scheme{
		Name:        "diffflow",
		Description: "spray mice per-flowcell, pin elephants to hashed ECMP paths",
		Paper:       "Carpa et al., DiffFlow (CCGrid 2017)",
		Params: []Param{
			{Name: "threshold", Kind: KindBytes, Default: "1MB", Min: float64(packet.MSS), Max: 1 << 30,
				Help: "bytes before a flow is classified as an elephant"},
			{Name: "cell", Kind: KindBytes, Default: "64KB", Min: float64(packet.MSS), Max: 1 << 20,
				Help: "flowcell size for the mice phase"},
		},
		GRO: GROPresto,
		Hooks: Hooks{
			ElephantBytes: func(p Resolved) int { return p.Bytes("threshold") },
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewDiffFlow(p.Bytes("threshold"), p.Bytes("cell"))
		},
	})
	Register(&Scheme{
		Name:        "sprinklers",
		Description: "per-destination randomized stripe sizes, reordering-free",
		Paper:       "Cao, Xu, Li — Sprinklers (CoNEXT 2013)",
		Params: []Param{
			{Name: "min-stripe", Kind: KindBytes, Default: "256KB", Min: float64(packet.MSS), Max: 1 << 30,
				Help: "minimum stripe size"},
			{Name: "max-stripe", Kind: KindBytes, Default: "1MB", Min: float64(packet.MSS), Max: 1 << 30,
				Help: "maximum stripe size"},
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewSprinklers(h.Fork(), p.Bytes("min-stripe"), p.Bytes("max-stripe"))
		},
	})
	Register(&Scheme{
		Name:        "rdna-balance",
		Description: "isolate elephants on a dedicated label subset via strict source routing",
		Paper:       "Liberato et al., RDNA (IEEE TNSM 2018)",
		Params: []Param{
			{Name: "elephant", Kind: KindBytes, Default: "1MB", Min: float64(packet.MSS), Max: 1 << 30,
				Help: "bytes before a flow is isolated as an elephant"},
			{Name: "cell", Kind: KindBytes, Default: "64KB", Min: float64(packet.MSS), Max: 1 << 20,
				Help: "flowcell size for mice spraying"},
			{Name: "isolated-frac", Kind: KindFloat, Default: "0.25", Min: 0.01, Max: 0.9,
				Help: "fraction of labels reserved for elephants"},
		},
		GRO: GROPresto,
		Hooks: Hooks{
			ElephantBytes: func(p Resolved) int { return p.Bytes("elephant") },
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewRDNABalance(p.Bytes("elephant"), p.Bytes("cell"), p.Float("isolated-frac"))
		},
	})
	Register(&Scheme{
		Name:        "spritz",
		Description: "path-aware weighted flowcell spraying on low-diameter fabrics",
		Paper:       "Spritz-style path-aware balancing (low-diameter topologies)",
		Params: []Param{
			{Name: "cell", Kind: KindBytes, Default: "64KB", Min: float64(packet.MSS), Max: 1 << 20,
				Help: "flowcell size"},
		},
		GRO: GROPresto,
		Hooks: Hooks{
			TreeWeights: TreeHopWeights,
			WeightSlots: 16,
		},
		New: func(h Host, p Resolved) vswitch.Policy {
			return vswitch.NewSpritz(p.Bytes("cell"))
		},
	})
}

// TreeHopWeights weights each tree by the inverse of its (source
// leaf → destination leaf) hop count: on a low-diameter mesh the
// direct one-hop tree gets twice the share of any two-hop detour.
// Unreachable trees get weight zero (the controller drops them).
func TreeHopWeights(tp *topo.Topology, trees []topo.Tree, srcLeaf, dstLeaf topo.NodeID) []float64 {
	w := make([]float64, len(trees))
	for i, tr := range trees {
		hops := treeHops(tp, tr, srcLeaf, dstLeaf)
		if hops > 0 {
			w[i] = 1 / float64(hops)
		}
	}
	return w
}

// treeHops walks tree next-links from src to dst, returning the hop
// count (0 when src == dst, -1 when the tree has no path).
func treeHops(tp *topo.Topology, tr topo.Tree, src, dst topo.NodeID) int {
	if src == dst {
		return 0
	}
	at := src
	for hops := 1; hops <= 8; hops++ {
		lid, ok := tr.NextLink(at, dst)
		if !ok {
			return -1
		}
		l := tp.Links[lid]
		next := l.A
		if next == at {
			next = l.B
		}
		if next == dst {
			return hops
		}
		at = next
	}
	return -1
}
