package scheme

import (
	"sort"
	"strings"
	"testing"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/vswitch"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int{
		"65536": 65536, "64KB": 64 << 10, "64kb": 64 << 10,
		"1MB": 1 << 20, "2GB": 2 << 30, "128B": 128, " 16KB ": 16 << 10,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "KB", "12.5KB", "x"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) accepted", bad)
		}
	}
}

func TestResolveDefaultsAndBounds(t *testing.T) {
	s := &Scheme{
		Name: "t",
		Params: []Param{
			{Name: "cell", Kind: KindBytes, Default: "64KB", Min: 1024, Max: 1 << 20},
			{Name: "gap", Kind: KindDuration, Default: "500us", Min: 1000},
			{Name: "frac", Kind: KindFloat, Default: "0.25", Min: 0.01, Max: 1},
			{Name: "n", Kind: KindInt, Default: "8", Min: 1, Max: 64},
		},
	}
	r, err := s.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes("cell") != 64<<10 || r.Duration("gap") != 500*sim.Microsecond ||
		r.Float("frac") != 0.25 || r.Int("n") != 8 {
		t.Errorf("defaults wrong: %v %v %v %v", r.Bytes("cell"), r.Duration("gap"), r.Float("frac"), r.Int("n"))
	}
	r, err = s.Resolve(map[string]string{"cell": "16KB", "n": "2"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes("cell") != 16<<10 || r.Int("n") != 2 {
		t.Error("overrides not applied")
	}
	// Out of bounds.
	if _, err := s.Resolve(map[string]string{"cell": "512"}); err == nil {
		t.Error("below-min value accepted")
	}
	if _, err := s.Resolve(map[string]string{"n": "65"}); err == nil {
		t.Error("above-max value accepted")
	}
	// Unknown key.
	if _, err := s.Resolve(map[string]string{"nope": "1"}); err == nil {
		t.Error("unknown key accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown-key error does not name the key: %v", err)
	}
}

func TestParseSpecAndCanonical(t *testing.T) {
	name, vals, err := ParseSpec("presto")
	if err != nil || name != "presto" || len(vals) != 0 {
		t.Fatalf("ParseSpec(presto) = %q, %v, %v", name, vals, err)
	}
	name, vals, err = ParseSpec("diffflow:threshold=512KB, cell=32KB")
	if err != nil || name != "diffflow" {
		t.Fatalf("ParseSpec(diffflow:...) = %q, %v", name, err)
	}
	if vals["threshold"] != "512KB" || vals["cell"] != "32KB" {
		t.Errorf("params = %v", vals)
	}
	if got := CanonicalSpec(name, vals); got != "diffflow:cell=32KB,threshold=512KB" {
		t.Errorf("CanonicalSpec = %q", got)
	}
	if CanonicalSpec("ecmp", nil) != "ecmp" {
		t.Error("CanonicalSpec without params should be the bare name")
	}
	// Bad specs are rejected with validation.
	for _, bad := range []string{"nosuch", "presto:bogus=1", "presto:cell", "flowlet:gap=zzz", "presto:cell=4GB"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
	for _, want := range []string{
		"ecmp", "mptcp", "presto", "flowlet", "presto-ecmp", "per-packet",
		"diffflow", "sprinklers", "rdna-balance", "spritz",
	} {
		if _, err := Get(want); err != nil {
			t.Errorf("scheme %q missing from registry", want)
		}
	}
}

// TestBuiltinsConstruct instantiates every registered scheme with
// default params and checks the constructor returns a live policy
// without consuming randomness unless it forks.
func TestBuiltinsConstruct(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Resolve(nil)
		if err != nil {
			t.Fatalf("%s: resolve defaults: %v", name, err)
		}
		forks := 0
		h := Host{ID: 3, Fork: func() *sim.RNG { forks++; return sim.NewRNG(1) }}
		p := s.New(h, r)
		if p == nil {
			t.Fatalf("%s: New returned nil", name)
		}
		if p.Name() == "" {
			t.Errorf("%s: policy has no name", name)
		}
		if forks > 1 {
			t.Errorf("%s: constructor forked the RNG %d times (max one)", name, forks)
		}
		tr := s.TransportFor(r)
		if tr.MaxSeg < 0 || tr.Subflows < 0 {
			t.Errorf("%s: nonsense transport %+v", name, tr)
		}
		if tr.MaxSeg > 0 && tr.MaxSeg < packet.MSS {
			t.Errorf("%s: MaxSeg %d below one MSS", name, tr.MaxSeg)
		}
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(what string, s *Scheme) {
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%s) did not panic", what)
			}
		}()
		Register(s)
	}
	newP := func(Host, Resolved) vswitch.Policy { return vswitch.NewPresto() }
	mustPanic("no name", &Scheme{New: newP})
	mustPanic("no constructor", &Scheme{Name: "x-no-new"})
	mustPanic("duplicate", &Scheme{Name: "presto", New: newP})
	mustPanic("bad default", &Scheme{
		Name: "x-bad-default", New: newP,
		Params: []Param{{Name: "cell", Kind: KindBytes, Default: "oops"}},
	})
}

// TestElephantHooks checks the elephant-detection hook surfaces the
// resolved threshold for the schemes that advertise one.
func TestElephantHooks(t *testing.T) {
	for name, want := range map[string]int{"diffflow": 1 << 20, "rdna-balance": 1 << 20} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Hooks.ElephantBytes == nil {
			t.Errorf("%s: no ElephantBytes hook", name)
			continue
		}
		r, err := s.Resolve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Hooks.ElephantBytes(r); got != want {
			t.Errorf("%s: default elephant threshold %d, want %d", name, got, want)
		}
	}
}
