// Package scheme is the load-balancer plugin registry: every
// balancing scheme the testbed can run — the paper's own lineup and
// the competitor zoo — is a self-describing entry carrying its
// constructor, parameter schema, required transport/GRO configuration,
// and optional controller hooks. internal/cluster builds policies by
// registry lookup instead of a hard-coded switch, and every front-end
// (prestosim, cmd/experiments, prestod) resolves `-scheme` strings
// through ParseSpec, so adding a scheme is one file registering
// itself here.
//
// The registry is deterministic: Names iterates in sorted order, and
// per-host randomness comes only from the Host.Fork stream the cluster
// hands each constructor (forked from the run seed in host order).
package scheme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/topo"
	"presto/internal/vswitch"
)

// ParamKind types a scheme parameter.
type ParamKind int

const (
	// KindBytes is a byte count; values accept plain integers or
	// KB/MB/GB suffixes (binary: 64KB = 65536).
	KindBytes ParamKind = iota
	// KindDuration is a simulated duration in Go syntax ("500us").
	KindDuration
	// KindFloat is a floating-point value.
	KindFloat
	// KindInt is a plain integer.
	KindInt
)

func (k ParamKind) String() string {
	switch k {
	case KindBytes:
		return "bytes"
	case KindDuration:
		return "duration"
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	}
	return "?"
}

// Param is one schema entry: name, type, default, and bounds.
type Param struct {
	Name    string
	Kind    ParamKind
	Default string
	// Min and Max bound the parsed numeric value (nanoseconds for
	// durations); zero leaves that side unbounded.
	Min, Max float64
	Help     string
}

// parse converts a raw value to the param's native representation,
// enforcing bounds.
func (p Param) parse(raw string) (any, error) {
	var v any
	var n float64
	switch p.Kind {
	case KindBytes:
		b, err := parseBytes(raw)
		if err != nil {
			return nil, err
		}
		v, n = b, float64(b)
	case KindDuration:
		d, err := time.ParseDuration(raw)
		if err != nil {
			return nil, err
		}
		t := sim.FromDuration(d)
		v, n = t, float64(t)
	case KindFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, err
		}
		v, n = f, f
	case KindInt:
		i, err := strconv.Atoi(raw)
		if err != nil {
			return nil, err
		}
		v, n = i, float64(i)
	default:
		return nil, fmt.Errorf("unknown param kind %d", p.Kind)
	}
	if (p.Min != 0 && n < p.Min) || (p.Max != 0 && n > p.Max) {
		return nil, fmt.Errorf("value %s out of range [%g, %g]", raw, p.Min, p.Max)
	}
	return v, nil
}

// parseBytes parses "65536", "64KB", "1MB", "2GB" (binary multiples).
func parseBytes(s string) (int, error) {
	t := strings.TrimSpace(s)
	mult := 1
	upper := strings.ToUpper(t)
	switch {
	case strings.HasSuffix(upper, "KB"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(upper, "GB"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(upper, "B"):
		t = t[:len(t)-1]
	}
	n, err := strconv.Atoi(strings.TrimSpace(t))
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}

// Resolved is a validated, fully-defaulted parameter set.
type Resolved struct {
	vals map[string]any
}

// Bytes returns a KindBytes param's value.
func (r Resolved) Bytes(name string) int { return r.vals[name].(int) }

// Duration returns a KindDuration param's value.
func (r Resolved) Duration(name string) sim.Time { return r.vals[name].(sim.Time) }

// Float returns a KindFloat param's value.
func (r Resolved) Float(name string) float64 { return r.vals[name].(float64) }

// Int returns a KindInt param's value.
func (r Resolved) Int(name string) int { return r.vals[name].(int) }

// GRO is the receive-offload algorithm a scheme requires.
type GRO int

const (
	// GROOfficial: the scheme is reordering-free (or tolerates stock
	// coalescing), so receivers run official GRO.
	GROOfficial GRO = iota
	// GROPresto: the scheme sprays below flow granularity, so receivers
	// need the reorder-tolerant Presto GRO (Algorithm 2).
	GROPresto
)

func (g GRO) String() string {
	if g == GROPresto {
		return "presto"
	}
	return "official"
}

// Transport is the sender-stack configuration a scheme requires.
type Transport struct {
	// MaxSeg caps TSO write size in bytes (0 = the stack's 64 KB max).
	MaxSeg int
	// MSSWrites forces MSS-sized stack writes (TSO off).
	MSSWrites bool
	// Subflows > 1 opens that many ECMP-pinned MPTCP subflows per
	// connection instead of one TCP flow.
	Subflows int
}

// Host is what a scheme constructor gets for one host.
type Host struct {
	ID packet.HostID
	// Fork returns a fresh deterministic random stream forked from the
	// run seed. Constructors that need randomness call it (at most
	// once); those that don't must not, so RNG consumption — and thus
	// every downstream fork — stays byte-identical across schemes that
	// never drew randomness before the registry existed.
	Fork func() *sim.RNG
}

// Hooks are optional controller-side extensions.
type Hooks struct {
	// TreeWeights computes per-tree path weights for a (source leaf,
	// destination leaf) pair; the controller encodes them as duplicated
	// labels in the pushed mapping (§3.3 weighted multipathing). Trees
	// are the usable subset for the pair, in controller order.
	TreeWeights func(tp *topo.Topology, trees []topo.Tree, srcLeaf, dstLeaf topo.NodeID) []float64
	// WeightSlots bounds the expanded label list length (0 = 16).
	WeightSlots int
	// ElephantBytes reports the scheme's edge elephant-detection
	// threshold given resolved params (nil/0 = no elephant detection).
	ElephantBytes func(p Resolved) int
}

// Scheme is one registered load-balancing scheme.
type Scheme struct {
	// Name is the registry key (also the historical cluster.Scheme
	// string: "ecmp", "presto", ...).
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Paper cites the scheme's source.
	Paper string
	// Params is the parameter schema; unknown keys are rejected.
	Params []Param
	// GRO is the required receiver offload.
	GRO GRO
	// Transport derives the required sender-stack configuration from
	// resolved params (nil = all defaults).
	Transport func(p Resolved) Transport
	// Hooks are optional controller extensions.
	Hooks Hooks
	// New constructs the per-host policy.
	New func(h Host, p Resolved) vswitch.Policy
}

// HasParam reports whether the schema has a parameter named name.
func (s *Scheme) HasParam(name string) bool {
	for _, p := range s.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Resolve validates raw values against the schema and fills defaults.
func (s *Scheme) Resolve(values map[string]string) (Resolved, error) {
	r := Resolved{vals: make(map[string]any, len(s.Params))}
	for _, p := range s.Params {
		raw, ok := values[p.Name]
		if !ok {
			raw = p.Default
		}
		v, err := p.parse(raw)
		if err != nil {
			return Resolved{}, fmt.Errorf("scheme %s: param %s: %w", s.Name, p.Name, err)
		}
		r.vals[p.Name] = v
	}
	// Reject unknown keys (sorted for a deterministic message).
	var unknown []string
	for k := range values {
		if !s.HasParam(k) {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return Resolved{}, fmt.Errorf("scheme %s: unknown param(s) %s (schema: %s)",
			s.Name, strings.Join(unknown, ", "), s.schemaNames())
	}
	return r, nil
}

// TransportFor returns the scheme's transport requirements for
// resolved params.
func (s *Scheme) TransportFor(p Resolved) Transport {
	if s.Transport == nil {
		return Transport{}
	}
	return s.Transport(p)
}

func (s *Scheme) schemaNames() string {
	if len(s.Params) == 0 {
		return "(none)"
	}
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// registry holds every registered scheme, keyed by name.
var registry = make(map[string]*Scheme)

// Register adds a scheme to the registry. It panics on duplicate or
// malformed registrations — registration happens at init time, so a
// bad plugin should fail loudly and immediately.
func Register(s *Scheme) {
	if s.Name == "" || s.New == nil {
		panic("scheme: Register needs a Name and a New constructor")
	}
	if _, dup := registry[s.Name]; dup {
		panic("scheme: duplicate registration of " + s.Name)
	}
	for _, p := range s.Params {
		if _, err := p.parse(p.Default); err != nil {
			panic(fmt.Sprintf("scheme %s: bad default for param %s: %v", s.Name, p.Name, err))
		}
	}
	registry[s.Name] = s
}

// Get returns the named scheme.
func Get(name string) (*Scheme, error) {
	s, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Names lists every registered scheme, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseSpec splits a "name" or "name:k=v,k=v" scheme spec into the
// registry name and raw parameter values, validating both against the
// registry (params are resolved to check types/bounds, then the raw
// map is returned so callers can carry it in configs).
func ParseSpec(spec string) (string, map[string]string, error) {
	name := spec
	var rest string
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, rest = spec[:i], spec[i+1:]
	}
	name = strings.TrimSpace(name)
	s, err := Get(name)
	if err != nil {
		return "", nil, err
	}
	var vals map[string]string
	if rest != "" {
		vals = make(map[string]string)
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			eq := strings.IndexByte(kv, '=')
			if eq <= 0 {
				return "", nil, fmt.Errorf("scheme %s: bad param %q (want k=v)", name, kv)
			}
			vals[strings.TrimSpace(kv[:eq])] = strings.TrimSpace(kv[eq+1:])
		}
	}
	if _, err := s.Resolve(vals); err != nil {
		return "", nil, err
	}
	return name, vals, nil
}

// CanonicalSpec renders a (name, params) pair back into the canonical
// spec string: params in sorted key order, so equal configurations
// produce byte-equal strings (cell IDs, hashes).
func CanonicalSpec(name string, params map[string]string) string {
	if len(params) == 0 {
		return name
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + params[k]
	}
	return name + ":" + strings.Join(parts, ",")
}
