package spec

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validSpec returns a minimal valid spec for mutation-based tests.
func validSpec() *Spec {
	return &Spec{
		Version:       Version,
		Name:          "test",
		AggregateRate: 1000,
		Clients: []Client{{
			ID:           "mice",
			RateFraction: 1,
			Arrival:      Arrival{Process: ProcPoisson},
			Size:         SizeDist{Kind: SizeFixed, Bytes: 1000},
			Select:       Select{Kind: SelRandom},
		}},
	}
}

func TestValidSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestValidateRejections drives the loader through a table of
// malformed specs, asserting each is rejected with an error naming the
// offending field path.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string // substring the error must contain
	}{
		{"bad version", func(s *Spec) { s.Version = "presto-workload/9" }, "version"},
		{"no clients", func(s *Spec) { s.Clients = nil }, "clients"},
		{"missing id", func(s *Spec) { s.Clients[0].ID = "" }, "clients[0].id"},
		{"duplicate id", func(s *Spec) {
			s.Clients = append(s.Clients, s.Clients[0])
			s.Clients[0].RateFraction = 0.5
			s.Clients[1].RateFraction = 0.5
			s.Clients[1].ID = "mice"
		}, "clients[1].id"},
		{"unknown process", func(s *Spec) { s.Clients[0].Arrival.Process = "zeta" }, "clients[0].arrival.process"},
		{"missing process", func(s *Spec) { s.Clients[0].Arrival.Process = "" }, "clients[0].arrival.process"},
		{"fractions not summing", func(s *Spec) { s.Clients[0].RateFraction = 0.7 }, "rate fractions sum to 0.7"},
		{"fraction above one", func(s *Spec) { s.Clients[0].RateFraction = 1.5 }, "clients[0].rate_fraction"},
		{"fraction without aggregate", func(s *Spec) { s.AggregateRate = 0 }, "clients[0].rate_fraction"},
		{"both rates", func(s *Spec) { s.Clients[0].Rate = 10 }, "clients[0].rate"},
		{"no rate", func(s *Spec) { s.Clients[0].RateFraction = 0 }, "clients[0].rate"},
		{"nan rate", func(s *Spec) { s.Clients[0].RateFraction = 0; s.Clients[0].Rate = math.NaN() }, "clients[0].rate"},
		{"inf aggregate", func(s *Spec) { s.AggregateRate = math.Inf(1) }, "aggregate_rate"},
		{"nan sigma", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizeLognormal, MedianBytes: 1000, Sigma: math.NaN()}
		}, "clients[0].size"},
		{"unknown size kind", func(s *Spec) { s.Clients[0].Size.Kind = "zipf" }, "clients[0].size.kind"},
		{"fixed without bytes", func(s *Spec) { s.Clients[0].Size.Bytes = 0 }, "clients[0].size.bytes"},
		{"pareto missing alpha", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizePareto, ScaleBytes: 1000}
		}, "clients[0].size.alpha"},
		{"inverted bounds", func(s *Spec) {
			s.Clients[0].Size.Min = 5000
			s.Clients[0].Size.Max = 100
		}, "inverted bounds"},
		{"negative bound", func(s *Spec) { s.Clients[0].Size.Min = -1 }, "clients[0].size.min"},
		{"short cdf", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizeEmpirical, CDF: []CDFPoint{{Bytes: 1, Frac: 1}}}
		}, "clients[0].size.cdf"},
		{"cdf not ascending", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizeEmpirical, CDF: []CDFPoint{
				{Bytes: 1000, Frac: 0.5}, {Bytes: 500, Frac: 1},
			}}
		}, "clients[0].size.cdf[1]"},
		{"cdf not ending at 1", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizeEmpirical, CDF: []CDFPoint{
				{Bytes: 500, Frac: 0.5}, {Bytes: 1000, Frac: 0.9},
			}}
		}, "clients[0].size.cdf[1].frac"},
		{"cdf nan bytes", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizeEmpirical, CDF: []CDFPoint{
				{Bytes: math.NaN(), Frac: 0.5}, {Bytes: 1000, Frac: 1},
			}}
		}, "clients[0].size.cdf[0]"},
		{"unknown selection", func(s *Spec) { s.Clients[0].Select.Kind = "mesh" }, "clients[0].select.kind"},
		{"incast tiny fanin", func(s *Spec) {
			s.Clients[0].Select = Select{Kind: SelIncast, FanIn: 1}
		}, "clients[0].select.fan_in"},
		{"pairs empty", func(s *Spec) { s.Clients[0].Select = Select{Kind: SelPairs} }, "clients[0].select.pairs"},
		{"pair self loop", func(s *Spec) {
			s.Clients[0].Select = Select{Kind: SelPairs, Pairs: [][2]int{{3, 3}}}
		}, "clients[0].select.pairs[0]"},
		{"negative stride", func(s *Spec) {
			s.Clients[0].Select = Select{Kind: SelStride, Stride: -1}
		}, "clients[0].select.stride"},
		{"onoff without windows", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: ProcOnOff}
		}, "clients[0].arrival.on"},
		{"inverted window", func(s *Spec) {
			s.Clients[0].Start = 100
			s.Clients[0].Stop = 50
		}, "clients[0].stop"},
		{"unlimited without once", func(s *Spec) {
			s.Clients[0].Size = SizeDist{Kind: SizeUnlimited}
		}, "clients[0].size.kind"},
		{"once with random", func(s *Spec) {
			s.Clients[0].RateFraction = 0
			s.Clients[0].Arrival = Arrival{Process: ProcOnce}
		}, "clients[0].select.kind"},
		{"once with rate", func(s *Spec) {
			s.Clients[0].Arrival = Arrival{Process: ProcOnce}
			s.Clients[0].Select = Select{Kind: SelStride}
		}, "clients[0].rate"},
		{"trace plus arrival", func(s *Spec) {
			s.Clients[0].Trace = &TraceSource{Inline: []FlowStart{{Src: 0, Dst: 1, Bytes: 10}}}
		}, "clients[0].trace"},
		{"trace neither source", func(s *Spec) {
			s.Clients[0] = Client{ID: "t", Trace: &TraceSource{}}
		}, "clients[0].trace"},
		{"trace both sources", func(s *Spec) {
			s.Clients[0] = Client{ID: "t", Trace: &TraceSource{
				Path:   "x.csv",
				Inline: []FlowStart{{Src: 0, Dst: 1, Bytes: 10}},
			}}
		}, "clients[0].trace"},
		{"trace bad flow", func(s *Spec) {
			s.Clients[0] = Client{ID: "t", Trace: &TraceSource{
				Inline: []FlowStart{{Src: 2, Dst: 2, Bytes: 10}},
			}}
		}, "clients[0].trace.inline[0]"},
		{"trace zero bytes", func(s *Spec) {
			s.Clients[0] = Client{ID: "t", Trace: &TraceSource{
				Inline: []FlowStart{{Src: 0, Dst: 1, Bytes: 0}},
			}}
		}, "clients[0].trace.inline[0].bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("malformed spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantPath) {
				t.Fatalf("error %q does not name field path %q", err, tc.wantPath)
			}
		})
	}
}

// TestParseStrict pins that unknown fields and syntax errors fail
// loudly.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"version":"presto-workload/1","clients":[],"typo_field":1}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	if _, err := Parse([]byte(`{not json`)); err == nil {
		t.Fatal("syntax error accepted")
	}
}

// TestDurationJSON pins the Duration wire forms: strings, integer ns,
// and null.
func TestDurationJSON(t *testing.T) {
	var d Duration
	for _, tc := range []struct {
		in   string
		want int64 // ns
	}{{`"150ms"`, 150e6}, {`"1.5us"`, 1500}, {`2000`, 2000}, {`null`, 0}} {
		d = 0
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if int64(d) != tc.want {
			t.Fatalf("%s parsed to %d ns, want %d", tc.in, int64(d), tc.want)
		}
	}
	out, err := json.Marshal(Duration(150e6))
	if err != nil || string(out) != `"150ms"` {
		t.Fatalf("marshal = %s, %v", out, err)
	}
	if err := json.Unmarshal([]byte(`"nonsense"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
}

// TestPresets pins that every named preset validates, carries its own
// name, and round-trips through the JSON loader unchanged.
func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("preset %s has Name %q", name, s.Name)
		}
		back, err := Parse(s.Canonical())
		if err != nil {
			t.Fatalf("preset %s does not round-trip: %v", name, err)
		}
		if back.Hash() != s.Hash() {
			t.Errorf("preset %s hash changed across round-trip", name)
		}
		if !IsPreset(name) {
			t.Errorf("IsPreset(%s) = false", name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if IsPreset("nope") {
		t.Fatal("IsPreset(nope) = true")
	}
}

// TestHashStability pins that the hash depends on content, not
// incidental formatting, and changes when the workload changes.
func TestHashStability(t *testing.T) {
	a := validSpec()
	b := validSpec()
	if a.Hash() != b.Hash() {
		t.Fatal("identical specs hash differently")
	}
	b.Clients[0].Size.Bytes = 2000
	if a.Hash() == b.Hash() {
		t.Fatal("different specs share a hash")
	}
	// Reparsing the canonical form preserves the hash.
	back, err := Parse(a.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != a.Hash() {
		t.Fatal("hash not stable across encode/decode")
	}
}

// TestResolve pins preset-name vs file-path resolution and the
// ResolveJSON wire forms.
func TestResolve(t *testing.T) {
	s, err := Resolve("elephants")
	if err != nil || s.Name != "elephants" {
		t.Fatalf("Resolve(elephants) = %v, %v", s, err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "wl.json")
	if err := os.WriteFile(path, validSpec().Canonical(), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Resolve(path)
	if err != nil || s.Name != "test" {
		t.Fatalf("Resolve(path) = %v, %v", s, err)
	}
	if _, err := Resolve(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}

	// ResolveJSON: quoted string → preset, object → inline spec.
	s, err = ResolveJSON([]byte(`"incast32"`))
	if err != nil || s.Name != "incast32" {
		t.Fatalf("ResolveJSON(preset) = %v, %v", s, err)
	}
	s, err = ResolveJSON(validSpec().Canonical())
	if err != nil || s.Name != "test" {
		t.Fatalf("ResolveJSON(inline) = %v, %v", s, err)
	}
	if _, err := ResolveJSON([]byte(`  `)); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := ResolveJSON([]byte(`42`)); err == nil {
		t.Fatal("numeric workload accepted")
	}
}

// TestNeedsRemotes pins remote detection for front-end topology setup.
func TestNeedsRemotes(t *testing.T) {
	s := validSpec()
	if s.NeedsRemotes() {
		t.Fatal("random workload claims to need remotes")
	}
	s.Clients[0].Select = Select{Kind: SelNorthSouth}
	if !s.NeedsRemotes() {
		t.Fatal("northsouth workload does not need remotes")
	}
}
