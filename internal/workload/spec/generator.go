package spec

import (
	"fmt"
	"hash/fnv"
	"math"

	"presto/internal/cluster"
	"presto/internal/metrics"
	"presto/internal/packet"
	"presto/internal/sim"
	"presto/internal/workload"
)

// Generator is a compiled workload spec bound to a cluster: an
// event-driven traffic source whose every random draw comes from
// per-client RNG streams derived from (run seed, spec seed, client),
// so the generated event sequence is a pure function of spec + seed —
// independent of campaign parallelism or event interleaving elsewhere
// in the run.
type Generator struct {
	// Spec is the validated spec this generator was compiled from.
	Spec *Spec

	// OnFlowStart, when set before Start, observes every sized flow
	// the generator opens (FlowStart.At is absolute simulation time).
	// cmd/capture uses it to emit replayable flow logs.
	OnFlowStart func(FlowStart)

	c       *cluster.Cluster
	clients []*clientRun
	started bool
}

// ClientResult aggregates one client's traffic outcomes.
type ClientResult struct {
	// ID is the client's spec ID.
	ID string
	// Started/Finished count flows opened and completed; Timeouts
	// counts finished flows whose sender hit at least one RTO.
	Started  int
	Finished int
	Timeouts int
	// BytesMoved sums the sizes of completed flows.
	BytesMoved uint64
	// FCT holds completion times of finished sized flows, in
	// milliseconds. Unlimited (elephant) clients have none.
	FCT *metrics.Dist
	// Tput is the mean per-flow goodput in Gbps for unlimited clients
	// (0 for sized clients); filled by Results.
	Tput float64
}

// clientRun is the per-client runtime state.
type clientRun struct {
	cfg *Client
	rng *sim.RNG
	res ClientResult
	// eleph tracks unlimited once-flows (throughput-measured).
	eleph *workload.Elephants
	// pairs is the enumerable pair set for pairs/stride/bijection.
	pairs [][2]packet.HostID
	// remotes are the north-south destinations.
	remotes []packet.HostID
	// trace holds the resolved flow-start log for trace clients.
	trace []FlowStart
	// rate is the resolved arrival rate in flows/sec.
	rate float64
}

// clientStream derives the client's RNG seed by mixing the run seed,
// the spec seed, and the client's identity. Hashing the ID (not just
// the index) means reordering unrelated clients in a spec does not
// silently reshuffle a client's stream.
func clientStream(runSeed, specSeed uint64, idx int, id string) *sim.RNG {
	h := fnv.New64a()
	h.Write([]byte(id)) //prestolint:allow errdrop -- hash.Hash.Write is documented to never return an error
	mixed := runSeed
	mixed ^= specSeed * 0x9e3779b97f4a7c15
	mixed ^= uint64(idx+1) * 0xbf58476d1ce4e5b9
	mixed ^= h.Sum64()
	return sim.NewRNG(mixed)
}

// serverCount counts server hosts, excluding spine-attached and
// marked-remote (north-south) endpoints.
func serverCount(c *cluster.Cluster) int {
	n := 0
	for i := 0; i < c.Topo.NumHosts(); i++ {
		h := packet.HostID(i)
		if !c.Topo.SpineAttached(h) && !c.Topo.IsRemote(h) {
			n++
		}
	}
	return n
}

// crossPod reports whether (src, dst) is a valid cross-pod pair,
// degenerating to src != dst on single-leaf topologies (mirrors
// workload.crossPod).
func crossPod(c *cluster.Cluster, src, dst packet.HostID) bool {
	if src == dst {
		return false
	}
	if len(c.Topo.Leaves) < 2 {
		return true
	}
	return !c.Topo.SameLeaf(src, dst)
}

// randomCrossPodDst draws a cross-pod destination with a bounded draw
// loop and deterministic fallback scan; ok=false when none exists.
func randomCrossPodDst(c *cluster.Cluster, rng *sim.RNG, src packet.HostID, n int) (packet.HostID, bool) {
	const maxDraws = 200
	for attempt := 0; attempt < maxDraws; attempt++ {
		d := packet.HostID(rng.Intn(n))
		if crossPod(c, src, d) {
			return d, true
		}
	}
	for d := 0; d < n; d++ {
		if crossPod(c, src, packet.HostID(d)) {
			return packet.HostID(d), true
		}
	}
	return 0, false
}

// Compile binds a validated spec to a cluster, running the
// topology-dependent checks Validate cannot (host IDs in range,
// remotes present for north-south, incast fan-in vs fabric size) and
// deriving each client's RNG stream from seed. The generator is inert
// until Start.
func Compile(ws *Spec, c *cluster.Cluster, seed uint64) (*Generator, error) {
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	n := serverCount(c)
	if n < 2 {
		return nil, fmt.Errorf("workload %q: topology has %d servers; need >= 2", ws.Name, n)
	}
	g := &Generator{Spec: ws, c: c}
	for i := range ws.Clients {
		cfg := &ws.Clients[i]
		cr := &clientRun{
			cfg: cfg,
			rng: clientStream(seed, ws.Seed, i, cfg.ID),
			res: ClientResult{ID: cfg.ID, FCT: &metrics.Dist{}},
		}
		path := fmt.Sprintf("clients[%d]", i)
		if cfg.Trace != nil {
			flows, err := resolveTrace(cfg.Trace, c.Topo.NumHosts())
			if err != nil {
				return nil, fmt.Errorf("%s.trace: %w", path, err)
			}
			cr.trace = flows
		} else {
			if err := compileSelect(cr, c, n, path); err != nil {
				return nil, err
			}
			cr.rate = cfg.Rate
			if cr.rate == 0 {
				cr.rate = cfg.RateFraction * ws.AggregateRate
			}
			if cfg.Arrival.Process != ProcOnce && cr.rate <= 0 {
				return nil, fmt.Errorf("%s: resolved arrival rate is 0", path)
			}
		}
		g.clients = append(g.clients, cr)
	}
	return g, nil
}

// compileSelect materializes a client's selection policy against the
// topology.
func compileSelect(cr *clientRun, c *cluster.Cluster, n int, path string) error {
	sel := &cr.cfg.Select
	switch sel.Kind {
	case SelPairs:
		for i, p := range sel.Pairs {
			if p[0] >= c.Topo.NumHosts() || p[1] >= c.Topo.NumHosts() {
				return fmt.Errorf("%s.select.pairs[%d]: host (%d, %d) out of range (topology has %d hosts)",
					path, i, p[0], p[1], c.Topo.NumHosts())
			}
			cr.pairs = append(cr.pairs, [2]packet.HostID{packet.HostID(p[0]), packet.HostID(p[1])})
		}
	case SelStride:
		k := sel.Stride
		if k == 0 {
			k = n / 2
		}
		for i := 0; i < n; i++ {
			d := (i + k) % n
			if d == i {
				continue
			}
			cr.pairs = append(cr.pairs, [2]packet.HostID{packet.HostID(i), packet.HostID(d)})
		}
		if len(cr.pairs) == 0 {
			return fmt.Errorf("%s.select.stride: stride %d yields no pairs on %d servers", path, sel.Stride, n)
		}
	case SelBijection:
		perm := crossPodPermutation(c, cr.rng, n)
		for i, d := range perm {
			if i == d {
				continue
			}
			cr.pairs = append(cr.pairs, [2]packet.HostID{packet.HostID(i), packet.HostID(d)})
		}
		if len(cr.pairs) == 0 {
			return fmt.Errorf("%s.select.bijection: no valid cross-pod pairing on this topology", path)
		}
	case SelRandom:
		// Pairs drawn per arrival.
	case SelIncast:
		// Fan-in is capped by available distinct sources; a 32-way
		// incast spec still runs on a 16-host testbed as 15-way.
		if n-1 < 2 {
			return fmt.Errorf("%s.select.incast: topology has %d servers; incast needs >= 3", path, n)
		}
	case SelNorthSouth:
		for i := 0; i < c.Topo.NumHosts(); i++ {
			h := packet.HostID(i)
			if c.Topo.IsRemote(h) || c.Topo.SpineAttached(h) {
				cr.remotes = append(cr.remotes, h)
			}
		}
		if len(cr.remotes) == 0 {
			return fmt.Errorf("%s.select.northsouth: topology has no remote users (attach spine hosts or MarkRemote first)", path)
		}
	}
	return nil
}

// crossPodPermutation draws permutations until one is fully cross-pod,
// falling back to a deterministic rotation (mirrors the workload
// package's bounded search).
func crossPodPermutation(c *cluster.Cluster, rng *sim.RNG, n int) []int {
	for attempt := 0; attempt < 200; attempt++ {
		p := rng.Perm(n)
		ok := true
		for i, d := range p {
			if !crossPod(c, packet.HostID(i), packet.HostID(d)) {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	rotation := func(k int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = (i + k) % n
		}
		return p
	}
	allCrossPod := func(p []int) bool {
		for i, d := range p {
			if !crossPod(c, packet.HostID(i), packet.HostID(d)) {
				return false
			}
		}
		return true
	}
	if n <= 1 {
		return make([]int, n)
	}
	if p := rotation(n / 2); allCrossPod(p) {
		return p
	}
	for k := 1; k < n; k++ {
		if k == n/2 {
			continue
		}
		if p := rotation(k); allCrossPod(p) {
			return p
		}
	}
	return rotation(1)
}

// resolveTrace loads and bounds-checks a trace source.
func resolveTrace(t *TraceSource, numHosts int) ([]FlowStart, error) {
	flows := t.Inline
	if t.Path != "" {
		var err error
		flows, err = ParseFlowLog(t.Path)
		if err != nil {
			return nil, err
		}
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("trace has no flows")
	}
	scale := t.TimeScale
	if scale == 0 {
		scale = 1
	}
	out := make([]FlowStart, len(flows))
	prev := Duration(-1)
	for i, f := range flows {
		if f.Src >= numHosts || f.Dst >= numHosts {
			return nil, fmt.Errorf("flow %d: host (%d, %d) out of range (topology has %d hosts)", i, f.Src, f.Dst, numHosts)
		}
		f.At = Duration(float64(f.At) * scale)
		if f.At < prev {
			return nil, fmt.Errorf("flow %d: timestamps must be non-decreasing", i)
		}
		prev = f.At
		out[i] = f
	}
	return out, nil
}

// Start schedules every client's traffic, running until each client's
// window closes or until, whichever is first. Call exactly once,
// before the measurement run.
func (g *Generator) Start(until sim.Time) {
	if g.started {
		panic("spec: Generator.Start called twice")
	}
	g.started = true
	base := g.c.Eng.Now()
	for _, cr := range g.clients {
		stop := until
		if cr.cfg.Stop != 0 && base+sim.Time(cr.cfg.Stop) < stop {
			stop = base + sim.Time(cr.cfg.Stop)
		}
		start := sim.Time(cr.cfg.Start)
		launch := func(cr *clientRun, stop sim.Time) func() {
			return func() { g.launchClient(cr, stop) }
		}(cr, stop)
		if start == 0 {
			launch()
		} else {
			g.c.Eng.Schedule(start, launch)
		}
	}
}

// launchClient starts one client's arrival loop at the current time.
func (g *Generator) launchClient(cr *clientRun, stop sim.Time) {
	if g.c.Eng.Now() >= stop {
		return
	}
	switch {
	case cr.cfg.Trace != nil:
		g.runTrace(cr, stop)
	case cr.cfg.Arrival.Process == ProcOnce:
		g.runOnce(cr, stop)
	default:
		g.runArrivals(cr, stop)
	}
}

// runOnce opens one flow per pair at window start: unlimited flows
// become throughput-tracked elephants; sized flows complete like any
// other.
func (g *Generator) runOnce(cr *clientRun, stop sim.Time) {
	if cr.cfg.Size.Kind == SizeUnlimited {
		cr.eleph = workload.Pairs(g.c, cr.pairs)
		cr.res.Started += len(cr.pairs)
		return
	}
	for _, p := range cr.pairs {
		g.openFlow(cr, p[0], p[1], sampleSize(&cr.cfg.Size, cr.rng))
	}
}

// runArrivals drives a rate-based arrival process: each tick opens the
// flows for one arrival, then schedules the next by the process's gap
// distribution.
func (g *Generator) runArrivals(cr *clientRun, stop sim.Time) {
	mean := sim.Time(1e9 / cr.rate) // mean inter-arrival, ns
	if mean <= 0 {
		mean = sim.Microsecond
	}
	var tick func()
	tick = func() {
		if g.c.Eng.Now() >= stop {
			return
		}
		g.arrive(cr)
		gap := arrivalGap(&cr.cfg.Arrival, cr.rng, mean)
		if cr.cfg.Arrival.Process == ProcOnOff {
			gap = onOffShift(g.c.Eng.Now(), gap, &cr.cfg.Arrival)
		}
		g.c.Eng.Schedule(gap, tick)
	}
	// Stagger the first arrival uniformly within one mean gap so
	// clients don't synchronize at t=0.
	g.c.Eng.Schedule(cr.rng.Duration(mean), tick)
}

// arrive opens the flows for one arrival event per the client's
// selection policy.
func (g *Generator) arrive(cr *clientRun) {
	n := serverCount(g.c)
	switch cr.cfg.Select.Kind {
	case SelPairs, SelStride, SelBijection:
		p := cr.pairs[cr.rng.Intn(len(cr.pairs))]
		g.openFlow(cr, p[0], p[1], sampleSize(&cr.cfg.Size, cr.rng))
	case SelRandom:
		src := packet.HostID(cr.rng.Intn(n))
		if dst, ok := randomCrossPodDst(g.c, cr.rng, src, n); ok {
			g.openFlow(cr, src, dst, sampleSize(&cr.cfg.Size, cr.rng))
		}
	case SelIncast:
		g.arriveIncast(cr, n)
	case SelNorthSouth:
		src := packet.HostID(cr.rng.Intn(n))
		dst := cr.remotes[cr.rng.Intn(len(cr.remotes))]
		g.openFlow(cr, src, dst, sampleSize(&cr.cfg.Size, cr.rng))
	}
}

// arriveIncast opens one fan-in burst: FanIn distinct sources (capped
// at n-1) each send one flow to a random destination simultaneously —
// the partition-aggregate pattern.
func (g *Generator) arriveIncast(cr *clientRun, n int) {
	dst := packet.HostID(cr.rng.Intn(n))
	fan := cr.cfg.Select.FanIn
	if fan > n-1 {
		fan = n - 1
	}
	// Draw FanIn distinct sources != dst via a partial shuffle.
	srcs := cr.rng.Perm(n)
	opened := 0
	for _, s := range srcs {
		if opened == fan {
			break
		}
		if packet.HostID(s) == dst {
			continue
		}
		g.openFlow(cr, packet.HostID(s), dst, sampleSize(&cr.cfg.Size, cr.rng))
		opened++
	}
}

// runTrace replays the client's recorded flow starts, optionally
// looping until the window closes.
func (g *Generator) runTrace(cr *clientRun, stop sim.Time) {
	base := g.c.Eng.Now()
	span := sim.Time(cr.trace[len(cr.trace)-1].At)
	if span <= 0 {
		span = sim.Millisecond
	}
	var lap func(offset sim.Time)
	lap = func(offset sim.Time) {
		for _, f := range cr.trace {
			at := base + offset + sim.Time(f.At)
			if at >= stop {
				return
			}
			flow := f
			g.c.Eng.Schedule(at-g.c.Eng.Now(), func() {
				if g.c.Eng.Now() >= stop {
					return
				}
				g.openFlow(cr, packet.HostID(flow.Src), packet.HostID(flow.Dst), flow.Bytes)
			})
		}
		if cr.cfg.Trace.Loop {
			next := offset + span
			if base+next < stop {
				g.c.Eng.Schedule(base+next-g.c.Eng.Now(), func() { lap(next) })
			}
		}
	}
	lap(0)
}

// openFlow opens one sized flow and records its completion.
func (g *Generator) openFlow(cr *clientRun, src, dst packet.HostID, size int) {
	if size <= 0 || src == dst {
		return
	}
	if g.OnFlowStart != nil {
		g.OnFlowStart(FlowStart{At: Duration(g.c.Eng.Now()), Src: int(src), Dst: int(dst), Bytes: size})
	}
	cr.res.Started++
	conn := g.c.Dial(src, dst)
	start := g.c.Eng.Now()
	conn.OnDelivered = func(total uint64) {
		if total >= uint64(size) {
			conn.OnDelivered = nil
			cr.res.Finished++
			cr.res.BytesMoved += uint64(size)
			if conn.SenderTimeouts() > 0 {
				cr.res.Timeouts++
			}
			cr.res.FCT.Add(sim.Time(g.c.Eng.Now() - start).Milliseconds())
			conn.Close()
		}
	}
	conn.Write(size)
}

// sampleSize draws one flow size in bytes from the client's
// distribution, applying the spec's bounds and a 1-byte floor.
func sampleSize(d *SizeDist, rng *sim.RNG) int {
	var size float64
	switch d.Kind {
	case SizeFixed:
		size = float64(d.Bytes)
	case SizeLognormal:
		size = d.MedianBytes * math.Exp(d.Sigma*rng.NormFloat64())
	case SizePareto:
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		size = d.ScaleBytes * math.Pow(u, -1/d.Alpha)
	case SizeEmpirical:
		size = sampleCDF(d.CDF, rng.Float64())
	default:
		return 0
	}
	if d.Min > 0 && size < float64(d.Min) {
		size = float64(d.Min)
	}
	if d.Max > 0 && size > float64(d.Max) {
		size = float64(d.Max)
	}
	if size < 1 {
		size = 1
	}
	if size > 1e9 {
		size = 1e9
	}
	return int(size)
}

// sampleCDF inverts an empirical CDF at u by linear interpolation
// between its points (below the first point, sizes interpolate from 0
// mass at the first point's bytes).
func sampleCDF(cdf []CDFPoint, u float64) float64 {
	if u <= cdf[0].Frac {
		return cdf[0].Bytes
	}
	for i := 1; i < len(cdf); i++ {
		if u <= cdf[i].Frac {
			lo, hi := cdf[i-1], cdf[i]
			t := (u - lo.Frac) / (hi.Frac - lo.Frac)
			return lo.Bytes + t*(hi.Bytes-lo.Bytes)
		}
	}
	return cdf[len(cdf)-1].Bytes
}

// arrivalGap draws one inter-arrival gap for the process, floored at
// 1µs so a heavy-tailed draw near zero cannot schedule an event storm.
func arrivalGap(a *Arrival, rng *sim.RNG, mean sim.Time) sim.Time {
	var gap float64
	switch a.Process {
	case ProcPoisson, ProcOnOff:
		gap = float64(mean) * rng.ExpFloat64()
	case ProcGamma:
		cv := a.CV
		if cv == 0 {
			cv = 1
		}
		k := 1 / (cv * cv)
		gap = float64(mean) / k * gammaSample(rng, k)
	case ProcWeibull:
		shape := a.Shape
		if shape == 0 {
			shape = 1
		}
		lambda := float64(mean) / math.Gamma(1+1/shape)
		u := rng.Float64()
		if u >= 1 {
			u = 1 - 1e-16
		}
		gap = lambda * math.Pow(-math.Log(1-u), 1/shape)
	default:
		gap = float64(mean)
	}
	t := sim.Time(gap)
	if t < sim.Microsecond {
		t = sim.Microsecond
	}
	return t
}

// gammaSample draws from Gamma(k, 1) via Marsaglia–Tsang. The
// rejection loop is deterministic (same RNG stream → same draws) and
// bounded; exhausting it falls back to the mean.
func gammaSample(rng *sim.RNG, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		if u < 1e-16 {
			u = 1e-16
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
	return k
}

// onOffShift maps a drawn gap through the client's on/off duty cycle:
// time only accrues during on-windows, so an arrival whose gap crosses
// the window boundary slides past the off period. Cycle phase is
// anchored at t=0 of the run.
func onOffShift(now sim.Time, gap sim.Time, a *Arrival) sim.Time {
	on, off := sim.Time(a.On), sim.Time(a.Off)
	period := on + off
	t := now
	remaining := gap
	for remaining > 0 {
		pos := t % period
		if pos >= on {
			// In an off-window: slide to the next on-window.
			t += period - pos
			continue
		}
		avail := on - pos
		if remaining <= avail {
			t += remaining
			remaining = 0
		} else {
			t += avail
			remaining -= avail
		}
	}
	return t - now
}

// ResetBaseline restarts measurement at now: elephant throughput
// baselines reset and per-client FCT distributions and counters clear,
// so warmup traffic does not pollute the measured window.
func (g *Generator) ResetBaseline(now sim.Time) {
	for _, cr := range g.clients {
		if cr.eleph != nil {
			cr.eleph.ResetBaseline(now)
		}
		cr.res.FCT = &metrics.Dist{}
		cr.res.Started, cr.res.Finished, cr.res.Timeouts = 0, 0, 0
		cr.res.BytesMoved = 0
	}
}

// elephantTputs collects per-flow goodputs across all unlimited
// clients.
func (g *Generator) elephantTputs(now sim.Time) []float64 {
	var all []float64
	for _, cr := range g.clients {
		if cr.eleph != nil {
			all = append(all, cr.eleph.Throughputs(now)...)
		}
	}
	return all
}

// MeanTput returns the mean per-flow elephant goodput in Gbps since
// the last baseline (0 if the spec has no unlimited clients).
func (g *Generator) MeanTput(now sim.Time) float64 {
	ts := g.elephantTputs(now)
	if len(ts) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range ts {
		sum += t
	}
	return sum / float64(len(ts))
}

// Fairness returns Jain's index over all elephant flows (0 if none).
func (g *Generator) Fairness(now sim.Time) float64 {
	return metrics.JainIndex(g.elephantTputs(now))
}

// Results snapshots per-client outcomes at now, in spec order.
func (g *Generator) Results(now sim.Time) []ClientResult {
	out := make([]ClientResult, len(g.clients))
	for i, cr := range g.clients {
		out[i] = cr.res
		if cr.eleph != nil {
			out[i].Tput = cr.eleph.Mean(now)
		}
	}
	return out
}
