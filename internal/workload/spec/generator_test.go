package spec

import (
	"fmt"
	"testing"

	"presto/internal/cluster"
	"presto/internal/sim"
	"presto/internal/topo"
)

func testCluster(seed uint64) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Topology: topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{}),
		Scheme:   cluster.Presto,
		Seed:     seed,
	})
}

// compileRun compiles ws on a fresh cluster, runs for d, and returns
// the generator plus the cluster.
func compileRun(t *testing.T, ws *Spec, seed uint64, d sim.Time) (*Generator, *cluster.Cluster) {
	t.Helper()
	c := testCluster(seed)
	g, err := Compile(ws, c, seed)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	g.Start(d)
	c.Eng.Run(d)
	return g, c
}

func TestGeneratorPoissonRandom(t *testing.T) {
	ws := validSpec() // poisson, 1000 flows/s, random cross-pod, 1 KB
	g, c := compileRun(t, ws, 7, 100*sim.Millisecond)
	res := g.Results(c.Eng.Now())
	if len(res) != 1 {
		t.Fatalf("%d client results", len(res))
	}
	r := res[0]
	// 1000 flows/s over 100 ms ≈ 100 arrivals; allow wide slack.
	if r.Started < 50 || r.Started > 200 {
		t.Fatalf("started %d flows, want ~100", r.Started)
	}
	if r.Finished == 0 || r.FCT.N() == 0 {
		t.Fatalf("no flows finished: %+v", r)
	}
	if r.BytesMoved != uint64(r.Finished)*1000 {
		t.Fatalf("BytesMoved %d for %d finished 1 KB flows", r.BytesMoved, r.Finished)
	}
}

// TestGeneratorDeterminism pins the core invariant: same spec + seed →
// identical traffic, regardless of how many times it runs.
func TestGeneratorDeterminism(t *testing.T) {
	ws, err := Preset("mice-heavy")
	if err != nil {
		t.Fatal(err)
	}
	summary := func() string {
		g, c := compileRun(t, ws, 42, 60*sim.Millisecond)
		out := ""
		for _, r := range g.Results(c.Eng.Now()) {
			out += fmt.Sprintf("%s:%d/%d/%d/%d/%.6f;", r.ID, r.Started, r.Finished, r.Timeouts, r.BytesMoved, r.FCT.Mean())
		}
		return out
	}
	a, b := summary(), summary()
	if a != b {
		t.Fatalf("same spec+seed diverged:\n%s\n%s", a, b)
	}
	// And a different seed produces different traffic.
	g, c := compileRun(t, ws, 43, 60*sim.Millisecond)
	diff := ""
	for _, r := range g.Results(c.Eng.Now()) {
		diff += fmt.Sprintf("%s:%d/%d/%d/%d/%.6f;", r.ID, r.Started, r.Finished, r.Timeouts, r.BytesMoved, r.FCT.Mean())
	}
	if diff == a {
		t.Fatal("different seeds produced identical traffic")
	}
}

// TestGeneratorElephants pins the once+unlimited path: throughput and
// fairness come from the elephant tracker.
func TestGeneratorElephants(t *testing.T) {
	ws, err := Preset("elephants")
	if err != nil {
		t.Fatal(err)
	}
	g, c := compileRun(t, ws, 5, 50*sim.Millisecond)
	if tput := g.MeanTput(c.Eng.Now()); tput < 1 {
		t.Fatalf("elephant throughput %.2f Gbps", tput)
	}
	if f := g.Fairness(c.Eng.Now()); f < 0.5 {
		t.Fatalf("fairness %.2f", f)
	}
	if res := g.Results(c.Eng.Now()); res[0].Tput < 1 {
		t.Fatalf("client Tput %.2f", res[0].Tput)
	}
}

// TestGeneratorIncastClamp pins that a 32-way incast spec runs on a
// 4-host fabric with fan-in capped at N-1.
func TestGeneratorIncastClamp(t *testing.T) {
	ws, err := Preset("incast32")
	if err != nil {
		t.Fatal(err)
	}
	g, c := compileRun(t, ws, 9, 100*sim.Millisecond)
	r := g.Results(c.Eng.Now())[0]
	if r.Started == 0 {
		t.Fatal("no incast flows started")
	}
	// Each arrival opens exactly min(32, n-1) = 3 flows.
	if r.Started%3 != 0 {
		t.Fatalf("started %d flows; want a multiple of clamped fan-in 3", r.Started)
	}
}

// TestGeneratorTraceReplay pins trace scheduling: flows start at the
// recorded offsets and looping repeats the pattern.
func TestGeneratorTraceReplay(t *testing.T) {
	ms := func(v int64) Duration { return Duration(v * 1_000_000) }
	ws := &Spec{
		Version: Version,
		Name:    "replay-test",
		Clients: []Client{{
			ID: "replay",
			Trace: &TraceSource{
				Inline: []FlowStart{
					{At: ms(0), Src: 0, Dst: 2, Bytes: 10_000},
					{At: ms(2), Src: 1, Dst: 3, Bytes: 10_000},
					{At: ms(4), Src: 2, Dst: 0, Bytes: 10_000},
				},
			},
		}},
	}
	g, c := compileRun(t, ws, 3, 50*sim.Millisecond)
	r := g.Results(c.Eng.Now())[0]
	if r.Started != 3 {
		t.Fatalf("started %d flows, want 3 (no loop)", r.Started)
	}
	if r.Finished != 3 {
		t.Fatalf("finished %d flows, want 3", r.Finished)
	}

	// Looped, the trace repeats every span until the window closes.
	ws.Clients[0].Trace.Loop = true
	g, c = compileRun(t, ws, 3, 50*sim.Millisecond)
	r = g.Results(c.Eng.Now())[0]
	if r.Started <= 3 {
		t.Fatalf("looped trace started only %d flows", r.Started)
	}
}

// TestGeneratorWindows pins start/stop windows: a client stops opening
// flows after its window closes.
func TestGeneratorWindows(t *testing.T) {
	ws := validSpec()
	ws.Clients[0].Start = Duration(10 * sim.Millisecond)
	ws.Clients[0].Stop = Duration(30 * sim.Millisecond)
	g, c := compileRun(t, ws, 11, 100*sim.Millisecond)
	r := g.Results(c.Eng.Now())[0]
	// ~20 ms active at 1000 flows/s ≈ 20 arrivals.
	if r.Started < 5 || r.Started > 60 {
		t.Fatalf("windowed client started %d flows, want ~20", r.Started)
	}
}

// TestGeneratorOnOff pins the duty-cycle process: arrivals only accrue
// during on-windows, so an on-off client emits fewer flows than a
// continuous one at the same rate.
func TestGeneratorOnOff(t *testing.T) {
	base := validSpec()
	onoff := validSpec()
	onoff.Clients[0].Arrival = Arrival{
		Process: ProcOnOff,
		On:      Duration(5 * sim.Millisecond),
		Off:     Duration(15 * sim.Millisecond),
	}
	gB, cB := compileRun(t, base, 13, 100*sim.Millisecond)
	gO, cO := compileRun(t, onoff, 13, 100*sim.Millisecond)
	nB := gB.Results(cB.Eng.Now())[0].Started
	nO := gO.Results(cO.Eng.Now())[0].Started
	if nO == 0 {
		t.Fatal("on-off client never fired")
	}
	// 25% duty cycle: expect roughly a quarter of the continuous count.
	if nO*2 >= nB {
		t.Fatalf("on-off started %d vs continuous %d; duty cycle not applied", nO, nB)
	}
}

// TestGeneratorResetBaseline pins that warmup traffic clears.
func TestGeneratorResetBaseline(t *testing.T) {
	ws := validSpec()
	c := testCluster(21)
	g, err := Compile(ws, c, 21)
	if err != nil {
		t.Fatal(err)
	}
	g.Start(100 * sim.Millisecond)
	c.Eng.Run(50 * sim.Millisecond)
	if g.Results(c.Eng.Now())[0].Started == 0 {
		t.Fatal("no warmup flows")
	}
	g.ResetBaseline(c.Eng.Now())
	if r := g.Results(c.Eng.Now())[0]; r.Started != 0 || r.FCT.N() != 0 {
		t.Fatalf("baseline reset left %d started, %d FCT samples", r.Started, r.FCT.N())
	}
	c.Eng.Run(100 * sim.Millisecond)
	if g.Results(c.Eng.Now())[0].Started == 0 {
		t.Fatal("no flows after baseline reset")
	}
}

// TestCompileTopologyChecks pins Compile's topology-dependent
// validation.
func TestCompileTopologyChecks(t *testing.T) {
	c := testCluster(1)

	ws := validSpec()
	ws.Clients[0].Select = Select{Kind: SelPairs, Pairs: [][2]int{{0, 99}}}
	if _, err := Compile(ws, c, 1); err == nil {
		t.Fatal("out-of-range pair accepted")
	}

	ws = validSpec()
	ws.Clients[0].Select = Select{Kind: SelNorthSouth}
	if _, err := Compile(ws, c, 1); err == nil {
		t.Fatal("northsouth accepted without remotes")
	}

	ws = validSpec()
	ws.Clients[0] = Client{ID: "t", Trace: &TraceSource{
		Inline: []FlowStart{{Src: 0, Dst: 99, Bytes: 10}},
	}}
	if _, err := Compile(ws, c, 1); err == nil {
		t.Fatal("out-of-range trace host accepted")
	}

	ws = validSpec()
	ws.Clients[0] = Client{ID: "t", Trace: &TraceSource{
		Inline: []FlowStart{
			{At: Duration(2 * sim.Millisecond), Src: 0, Dst: 1, Bytes: 10},
			{At: Duration(1 * sim.Millisecond), Src: 0, Dst: 1, Bytes: 10},
		},
	}}
	if _, err := Compile(ws, c, 1); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}

// TestGeneratorNorthSouth pins the north-south path against a topology
// with spine-attached remote users.
func TestGeneratorNorthSouth(t *testing.T) {
	tp := topo.TwoTierClos(2, 2, 2, 1, topo.LinkConfig{})
	for s := 0; s < 2; s++ {
		tp.AddSpineHost(tp.Spines[s], 100e6, 5*sim.Microsecond)
	}
	c := cluster.New(cluster.Config{Topology: tp, Scheme: cluster.Presto, Seed: 2})
	ws := validSpec()
	ws.Clients[0].Select = Select{Kind: SelNorthSouth}
	ws.Clients[0].Size = SizeDist{Kind: SizeFixed, Bytes: 2000}
	g, err := Compile(ws, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Start(100 * sim.Millisecond)
	c.Eng.Run(100 * sim.Millisecond)
	r := g.Results(c.Eng.Now())[0]
	if r.Finished == 0 {
		t.Fatalf("no north-south flows finished: %+v", r)
	}
}

// TestArrivalGapDistributions sanity-checks the gap samplers' means.
func TestArrivalGapDistributions(t *testing.T) {
	mean := sim.Time(1 * sim.Millisecond)
	for _, tc := range []struct {
		name string
		a    Arrival
	}{
		{"poisson", Arrival{Process: ProcPoisson}},
		{"gamma cv2", Arrival{Process: ProcGamma, CV: 2}},
		{"gamma cv0.5", Arrival{Process: ProcGamma, CV: 0.5}},
		{"weibull heavy", Arrival{Process: ProcWeibull, Shape: 0.7}},
		{"weibull regular", Arrival{Process: ProcWeibull, Shape: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRNG(99)
			const n = 20000
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += float64(arrivalGap(&tc.a, rng, mean))
			}
			got := sum / n / float64(mean)
			if got < 0.9 || got > 1.1 {
				t.Fatalf("mean gap %.3f× the target", got)
			}
		})
	}
}

// TestSampleSizeBounds pins clamping and the empirical sampler.
func TestSampleSizeBounds(t *testing.T) {
	rng := sim.NewRNG(123)
	d := &SizeDist{Kind: SizePareto, ScaleBytes: 1000, Alpha: 1.1, Min: 2000, Max: 50_000}
	for i := 0; i < 1000; i++ {
		s := sampleSize(d, rng)
		if s < 2000 || s > 50_000 {
			t.Fatalf("sample %d outside [2000, 50000]", s)
		}
	}
	e := &SizeDist{Kind: SizeEmpirical, CDF: []CDFPoint{
		{Bytes: 100, Frac: 0.5}, {Bytes: 1000, Frac: 1},
	}}
	lo, hi := 0, 0
	for i := 0; i < 2000; i++ {
		s := sampleSize(e, rng)
		if s < 100 || s > 1000 {
			t.Fatalf("empirical sample %d outside CDF support", s)
		}
		if s == 100 {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("empirical sampler degenerate: lo=%d hi=%d", lo, hi)
	}
}
