package spec

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"presto/internal/sim"
)

// Flow-start logs are the replayable trace format closing the
// capture→replay loop: cmd/capture emits them, and a spec's trace
// source feeds them back through the generator. Two encodings share
// one record shape (time, src, dst, bytes):
//
// CSV, with a fixed header (times are integer nanoseconds so replay is
// exact):
//
//	at_ns,src,dst,bytes
//	0,0,2,1000000
//	1500000,1,3,50000
//
// JSONL, one FlowStart object per line (times are Go duration strings
// or integer nanoseconds):
//
//	{"at":"0s","src":0,"dst":2,"bytes":1000000}
//	{"at":"1.5ms","src":1,"dst":3,"bytes":50000}
//
// Readers auto-detect the encoding by the first non-space byte ('{' →
// JSONL, else CSV).

// flowLogHeader is the required CSV header row.
var flowLogHeader = []string{"at_ns", "src", "dst", "bytes"}

// ParseFlowLog reads a flow-start log from a CSV or JSONL file.
func ParseFlowLog(path string) ([]FlowStart, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	flows, err := ReadFlowLog(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return flows, nil
}

// ReadFlowLog decodes a flow-start log, auto-detecting CSV vs JSONL.
func ReadFlowLog(r io.Reader) ([]FlowStart, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			return nil, fmt.Errorf("flow log: empty input")
		}
		if b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r' {
			_, _ = br.ReadByte()
			continue
		}
		if b[0] == '{' {
			return readFlowLogJSONL(br)
		}
		return readFlowLogCSV(br)
	}
}

// readFlowLogCSV decodes the CSV encoding, enforcing the header.
func readFlowLogCSV(r io.Reader) ([]FlowStart, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(flowLogHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flow log: reading header: %w", err)
	}
	for i, want := range flowLogHeader {
		if header[i] != want {
			return nil, fmt.Errorf("flow log: header column %d is %q, want %q", i, header[i], want)
		}
	}
	var flows []FlowStart
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flow log: %w", err)
		}
		vals := make([]int64, len(rec))
		for i, s := range rec {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("flow log line %d: column %s: %w", line, flowLogHeader[i], err)
			}
			vals[i] = v
		}
		f := FlowStart{
			At:    Duration(sim.Time(vals[0])),
			Src:   int(vals[1]),
			Dst:   int(vals[2]),
			Bytes: int(vals[3]),
		}
		if err := validateFlowStart(fmt.Sprintf("line %d", line), f); err != nil {
			return nil, fmt.Errorf("flow log: %w", err)
		}
		flows = append(flows, f)
	}
	return flows, nil
}

// readFlowLogJSONL decodes the JSONL encoding.
func readFlowLogJSONL(r io.Reader) ([]FlowStart, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var flows []FlowStart
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(text))
		dec.DisallowUnknownFields()
		var f FlowStart
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("flow log line %d: %w", line, err)
		}
		if err := validateFlowStart(fmt.Sprintf("line %d", line), f); err != nil {
			return nil, fmt.Errorf("flow log: %w", err)
		}
		flows = append(flows, f)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flow log: %w", err)
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("flow log: no flows")
	}
	return flows, nil
}

// WriteFlowLogCSV encodes flows in the CSV form cmd/capture emits.
func WriteFlowLogCSV(w io.Writer, flows []FlowStart) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(flowLogHeader); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatInt(int64(f.At), 10),
			strconv.Itoa(f.Src),
			strconv.Itoa(f.Dst),
			strconv.Itoa(f.Bytes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFlowLogJSONL encodes flows as JSONL.
func WriteFlowLogJSONL(w io.Writer, flows []FlowStart) error {
	enc := json.NewEncoder(w)
	for _, f := range flows {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}
