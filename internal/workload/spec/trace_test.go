package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"presto/internal/sim"
)

func sampleFlows() []FlowStart {
	return []FlowStart{
		{At: Duration(0), Src: 0, Dst: 2, Bytes: 1_000_000},
		{At: Duration(1500 * sim.Microsecond), Src: 1, Dst: 3, Bytes: 50_000},
		{At: Duration(3 * sim.Millisecond), Src: 2, Dst: 0, Bytes: 700},
	}
}

// TestFlowLogRoundTripCSV pins the CSV encoding byte-exactly through a
// write/read cycle.
func TestFlowLogRoundTripCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFlowLogCSV(&buf, sampleFlows()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "at_ns,src,dst,bytes\n") {
		t.Fatalf("missing header: %q", buf.String())
	}
	got, err := ReadFlowLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleFlows()
	if len(got) != len(want) {
		t.Fatalf("%d flows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flow %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestFlowLogRoundTripJSONL pins the JSONL encoding and auto-detection.
func TestFlowLogRoundTripJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFlowLogJSONL(&buf, sampleFlows()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlowLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := sampleFlows()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flow %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestParseFlowLogFile pins the file entry point both encodings share.
func TestParseFlowLogFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "flows.csv")
	var buf bytes.Buffer
	if err := WriteFlowLogCSV(&buf, sampleFlows()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csvPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	flows, err := ParseFlowLog(csvPath)
	if err != nil || len(flows) != 3 {
		t.Fatalf("ParseFlowLog = %d flows, %v", len(flows), err)
	}
	if _, err := ParseFlowLog(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestFlowLogRejections pins malformed-input errors.
func TestFlowLogRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong header", "time,src,dst,bytes\n0,0,1,10\n"},
		{"non-numeric", "at_ns,src,dst,bytes\nzero,0,1,10\n"},
		{"self loop", "at_ns,src,dst,bytes\n0,1,1,10\n"},
		{"zero bytes", "at_ns,src,dst,bytes\n0,0,1,0\n"},
		{"negative time", "at_ns,src,dst,bytes\n-5,0,1,10\n"},
		{"short row", "at_ns,src,dst,bytes\n0,0,1\n"},
		{"jsonl unknown field", `{"at":"0s","src":0,"dst":1,"bytes":10,"huh":1}`},
		{"jsonl bad flow", `{"at":"0s","src":1,"dst":1,"bytes":10}`},
		{"jsonl syntax", `{"at":`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadFlowLog(strings.NewReader(tc.in)); err == nil {
				t.Fatal("malformed flow log accepted")
			}
		})
	}
}

// TestTraceSpecFromFile pins the full loop: spec referencing a flow-log
// file compiles and replays it.
func TestTraceSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flows.csv")
	var buf bytes.Buffer
	if err := WriteFlowLogCSV(&buf, sampleFlows()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	ws := &Spec{
		Version: Version,
		Name:    "file-replay",
		Clients: []Client{{ID: "replay", Trace: &TraceSource{Path: path}}},
	}
	g, c := compileRun(t, ws, 17, 50*sim.Millisecond)
	if r := g.Results(c.Eng.Now())[0]; r.Started != 3 {
		t.Fatalf("file-backed trace started %d flows, want 3", r.Started)
	}
}
